package epoch

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func newTestChain() (*Chain, *atomic.Int64) {
	var seq atomic.Int64
	return NewChain(func() int64 { return seq.Add(1) }), &seq
}

func TestInsertAndAdjustments(t *testing.T) {
	ch, _ := newTestChain()
	for _, v := range []int64{5, 1, 9, 5} {
		if _, ok := ch.Insert(v); !ok {
			t.Fatalf("Insert(%d) rejected on an open chain", v)
		}
	}
	if adj, n := ch.CountAdj(0, 10); adj != 4 || n != 1 {
		t.Errorf("CountAdj(0,10) = %d over %d epochs, want 4 over 1", adj, n)
	}
	if adj, _ := ch.CountAdj(5, 6); adj != 2 {
		t.Errorf("CountAdj(5,6) = %d, want 2", adj)
	}
	if adj, _ := ch.SumAdj(0, 10); adj != 20 {
		t.Errorf("SumAdj(0,10) = %d, want 20", adj)
	}
	ins, del := ch.Pending()
	if ins != 4 || del != 0 {
		t.Errorf("Pending() = %d/%d, want 4/0", ins, del)
	}
}

func TestDeleteChecksLogicalExistence(t *testing.T) {
	ch, _ := newTestChain()
	ch.Insert(7)
	// One base instance + one pending insert = two logical instances.
	if _, deleted, ok := ch.Delete(7, 1); !ok || !deleted {
		t.Fatalf("Delete(7) = deleted=%v ok=%v, want both true", deleted, ok)
	}
	if _, deleted, _ := ch.Delete(7, 1); !deleted {
		t.Fatal("second Delete(7) should cancel the base instance")
	}
	if _, deleted, _ := ch.Delete(7, 1); deleted {
		t.Fatal("third Delete(7) deleted a non-existent instance")
	}
	if adj, _ := ch.CountAdj(7, 8); adj != -1 {
		t.Errorf("net adjustment = %d, want -1 (1 insert - 2 deletes)", adj)
	}
}

func TestSealRollsWritersToNextEpoch(t *testing.T) {
	ch, _ := newTestChain()
	ch.Insert(1)
	first := ch.OpenID()
	info, ok := ch.Seal()
	if !ok || info.ID != first || info.Ins != 1 {
		t.Fatalf("Seal() = %+v ok=%v, want id=%d ins=1", info, ok, first)
	}
	// Writers continue without parking: the insert lands in the new epoch.
	eid, ok := ch.Insert(2)
	if !ok || eid <= first {
		t.Fatalf("post-seal Insert landed in epoch %d (ok=%v), want > %d", eid, ok, first)
	}
	// Both epochs stay visible to readers.
	if adj, n := ch.CountAdj(math.MinInt64, math.MaxInt64); adj != 2 || n != 2 {
		t.Errorf("CountAdj = %d over %d epochs, want 2 over 2", adj, n)
	}
}

func TestSealEmptyEpochIsNoOp(t *testing.T) {
	ch, _ := newTestChain()
	if _, ok := ch.Seal(); ok {
		t.Error("Seal() of an empty open epoch reported work")
	}
	if ch.Len() != 1 {
		t.Errorf("chain length = %d after no-op seal, want 1", ch.Len())
	}
}

func TestRollRenumbersEmptyEpoch(t *testing.T) {
	ch, seq := newTestChain()
	before := ch.OpenID()
	ch.Roll()
	if ch.Len() != 1 {
		t.Fatalf("Roll of an empty chain churned a file: len=%d", ch.Len())
	}
	if after := ch.OpenID(); after <= before {
		t.Errorf("empty open epoch not renumbered past the cut: %d -> %d", before, after)
	}
	// Non-empty: must seal, not renumber.
	ch.Insert(3)
	w := seq.Load()
	ch.Roll()
	if ch.Len() != 2 {
		t.Fatalf("Roll of a non-empty chain did not seal: len=%d", ch.Len())
	}
	if open := ch.OpenID(); open <= w {
		t.Errorf("new open epoch id %d not beyond the cut %d", open, w)
	}
}

func TestSealedSnapshotAndFork(t *testing.T) {
	ch, _ := newTestChain()
	ch.Insert(1)
	ch.Insert(2)
	ch.Seal()
	ch.Insert(3)
	ch.Seal()
	ch.Insert(4) // open epoch

	ins, del, watermark, n := ch.SealedSnapshot()
	if len(ins) != 3 || len(del) != 0 || n != 2 {
		t.Fatalf("SealedSnapshot = %d ins / %d del over %d epochs, want 3/0 over 2", len(ins), len(del), n)
	}
	fk := ch.Fork(watermark)
	if fk.Len() != 1 {
		t.Fatalf("forked chain has %d epochs, want 1 (the open one)", fk.Len())
	}
	if adj, _ := fk.CountAdj(math.MinInt64, math.MaxInt64); adj != 1 {
		t.Errorf("forked chain adjustment = %d, want 1 (only the open epoch)", adj)
	}
	// The open epoch file is shared: a write through the OLD chain is
	// visible through the fork (a stale part reference mid-publish).
	if _, ok := ch.Insert(5); !ok {
		t.Fatal("insert through the pre-fork chain rejected")
	}
	if adj, _ := fk.CountAdj(5, 6); adj != 1 {
		t.Error("write through the pre-fork chain invisible through the fork")
	}
}

func TestForkAfterEverythingSealedOpensFresh(t *testing.T) {
	ch, _ := newTestChain()
	ch.Insert(1)
	ch.Close() // seal the open epoch with no successor
	fk := ch.Fork(math.MaxInt64)
	if fk.Len() != 1 {
		t.Fatalf("fork of a fully-applied chain has %d epochs, want 1 fresh", fk.Len())
	}
	if _, ok := fk.Insert(2); !ok {
		t.Error("fresh forked chain rejected an insert")
	}
}

func TestCloseCutsWritersReopenRestores(t *testing.T) {
	ch, _ := newTestChain()
	ch.Insert(1)
	ch.Close()
	if _, ok := ch.Insert(2); ok {
		t.Fatal("insert accepted on a closed chain")
	}
	if _, _, ok := ch.Delete(1, 0); ok {
		t.Fatal("delete accepted on a closed chain")
	}
	ch.Reopen()
	if _, ok := ch.Insert(2); !ok {
		t.Fatal("insert rejected after Reopen")
	}
}

func TestCollectHonorsWatermark(t *testing.T) {
	ch, seq := newTestChain()
	ch.Insert(1)
	w := seq.Load() // the cut is taken BEFORE the roll (as SealAllEpochs does)
	ch.Roll()
	ch.Insert(2) // beyond the cut
	ins, del := ch.Collect(w)
	if len(ins) != 1 || ins[0] != 1 || len(del) != 0 {
		t.Errorf("Collect(%d) = %v/%v, want [1]/[]", w, ins, del)
	}
	ins, _ = ch.Collect(math.MaxInt64)
	if len(ins) != 2 {
		t.Errorf("Collect(max) = %v, want both epochs", ins)
	}
}

// TestConcurrentWritersAcrossSeals hammers one chain from many
// goroutines while the main goroutine seals repeatedly; every write
// must land exactly once (run under -race).
func TestConcurrentWritersAcrossSeals(t *testing.T) {
	ch, _ := newTestChain()
	const writers, perW = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				for {
					if _, ok := ch.Insert(int64(w*perW + i)); ok {
						break
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			ch.Seal()
		}
	}()
	wg.Wait()
	<-done
	if adj, _ := ch.CountAdj(math.MinInt64, math.MaxInt64); adj != writers*perW {
		t.Errorf("net count = %d, want %d", adj, writers*perW)
	}
	ins, del := ch.Pending()
	if ins != writers*perW || del != 0 {
		t.Errorf("Pending = %d/%d, want %d/0", ins, del, writers*perW)
	}
}
