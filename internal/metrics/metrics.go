// Package metrics provides the measurement kernel for the experiments:
// atomic counters, per-query cost breakdowns (wait vs refinement vs scan
// time), running averages, and simple series formatting.
//
// The paper's Figure 15 plots, per query in the sequence, the time spent
// waiting on latches versus the time spent refining the index; Figure 13
// measures the administration overhead of the concurrency-control
// machinery itself. Both require instrumentation inside the latch and
// cracking paths, which this package supplies with minimal overhead.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// DurationCounter accumulates elapsed time atomically (nanoseconds).
type DurationCounter struct {
	ns atomic.Int64
}

// Add accumulates d.
func (d *DurationCounter) Add(dur time.Duration) { d.ns.Add(int64(dur)) }

// Load returns the accumulated duration.
func (d *DurationCounter) Load() time.Duration { return time.Duration(d.ns.Load()) }

// QueryCost is the per-query breakdown recorded by the harness.
type QueryCost struct {
	// Seq is the global sequence number of the query (arrival order
	// across all clients, 0-based).
	Seq int
	// Client identifies the submitting client (0-based).
	Client int
	// Response is the end-to-end latency of the query.
	Response time.Duration
	// Wait is the total time spent blocked acquiring latches (both
	// write latches for cracking and read latches for aggregation).
	Wait time.Duration
	// Crack is the time spent physically refining the index (in-place
	// partitioning plus table-of-contents updates), under write latches.
	Crack time.Duration
	// Critical is the fan-out critical path: the slowest per-shard
	// sub-query's elapsed time (zero for single-domain engines). Wait
	// and Crack sum total work across cores; Critical is what a
	// latency-oriented experiment should plot instead.
	Critical time.Duration
	// Conflicts is the number of latch acquisitions that could not be
	// granted immediately.
	Conflicts int64
	// Skipped reports whether the query forwent refinement due to a
	// conflict (conflict-avoidance mode).
	Skipped bool
}

// Series is an ordered collection of per-query costs.
type Series struct {
	Costs []QueryCost
}

// Total returns the sum of response times (NOT wall-clock; use the
// harness elapsed time for concurrent runs).
func (s *Series) Total() time.Duration {
	var t time.Duration
	for _, c := range s.Costs {
		t += c.Response
	}
	return t
}

// RunningAverage returns the running average response time after each
// query, i.e. the series of Figure 11(b).
func (s *Series) RunningAverage() []time.Duration {
	out := make([]time.Duration, len(s.Costs))
	var sum time.Duration
	for i, c := range s.Costs {
		sum += c.Response
		out[i] = sum / time.Duration(i+1)
	}
	return out
}

// SortBySeq orders the costs by global sequence number.
func (s *Series) SortBySeq() {
	sort.Slice(s.Costs, func(i, j int) bool { return s.Costs[i].Seq < s.Costs[j].Seq })
}

// TotalWait returns the summed latch wait time across all queries.
func (s *Series) TotalWait() time.Duration {
	var t time.Duration
	for _, c := range s.Costs {
		t += c.Wait
	}
	return t
}

// TotalCrack returns the summed index-refinement time across all queries.
func (s *Series) TotalCrack() time.Duration {
	var t time.Duration
	for _, c := range s.Costs {
		t += c.Crack
	}
	return t
}

// TotalCritical returns the summed fan-out critical-path time across
// all queries (the latency-oriented counterpart of TotalWait +
// TotalCrack, which measure total work).
func (s *Series) TotalCritical() time.Duration {
	var t time.Duration
	for _, c := range s.Costs {
		t += c.Critical
	}
	return t
}

// TotalConflicts returns the summed conflict count.
func (s *Series) TotalConflicts() int64 {
	var n int64
	for _, c := range s.Costs {
		n += c.Conflicts
	}
	return n
}

// Table renders rows of (label, value) series as an aligned ASCII table,
// used by cmd/figures to print paper-shaped output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FormatDuration renders d with 3 significant decimals in the most
// readable unit, for table output.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.3fus", float64(d.Nanoseconds())/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
