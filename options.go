package adaptix

import (
	"fmt"
	"time"

	"adaptix/internal/amerge"
	"adaptix/internal/health"
	"adaptix/internal/hybrid"
	"adaptix/internal/ingest"
	"adaptix/internal/metrics"
	"adaptix/internal/shard"
	"adaptix/internal/wcapture"
)

// Method selects the adaptive-indexing algorithm behind an Index. All
// five methods share the same query, write, and durability surface;
// they differ only in how each shard physically refines itself (paper
// §2 and §6 compare them head to head).
type Method int

const (
	// Crack is database cracking (paper §5): each query partitions the
	// touched pieces of a cracker array around its predicate bounds.
	// Cheap first touch, lazy convergence. The default.
	Crack Method = iota
	// AMerge is adaptive merging (paper §2/§4): sorted runs in a
	// partitioned B-tree, one merge step per query in the requested
	// key range. Expensive first touch, fast convergence.
	AMerge
	// Hybrid is the hybrid crack-sort (paper §2, Figure 4): unsorted
	// initial partitions cracked per query, qualifying values moved to
	// a sorted final partition. Cheap first touch, fast convergence.
	Hybrid
	// Sort is the full-indexing baseline: the first query sorts the
	// whole column, later queries binary-search.
	Sort
	// Scan is the no-indexing baseline: every query scans the column.
	Scan
)

// String returns the method's experiment-output name.
func (m Method) String() string {
	switch m {
	case Crack:
		return "crack"
	case AMerge:
		return "amerge"
	case Hybrid:
		return "hybrid"
	case Sort:
		return "sort"
	case Scan:
		return "scan"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// config is the resolved option set of one New/Open call.
type config struct {
	method Method
	shards int
	shard  shard.Options
	ingest ingest.Options
	merge  amerge.Options
	hybrid hybrid.Options

	// Durability (Open only).
	values          []int64
	segmentBytes    int64
	checkpointEvery int
	logWrites       bool
	syncEvery       int
	syncInterval    time.Duration
	noSync          bool
	// durableOnly names the first Open-only option a New call used, so
	// New can reject it instead of silently ignoring it.
	durableOnly string

	// Observability (WithObservability). The observer itself always
	// exists — counters and the flight recorder are always on; tracing
	// is what the option enables.
	obs     ObsOptions
	tracing bool

	// Health watchdog (WithHealth). The watchdog itself always exists
	// — /health and Index.Health evaluate on demand regardless; the
	// option tunes the thresholds and enables the background loop.
	health    HealthOptions
	healthSet bool

	// Workload capture (WithWorkloadCapture). The recorder itself
	// always exists — Stats().Workload and /workload serve a
	// schema-complete zero signature regardless; the option is what
	// arms recording (and the optional on-disk trace).
	capture    CaptureOptions
	captureSet bool
}

// Option configures New and Open.
type Option func(*config) error

func buildConfig(opts []Option) (*config, error) {
	cfg := &config{}
	for _, o := range opts {
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.method < Crack || cfg.method > Scan {
		return nil, fmt.Errorf("adaptix: unknown method %v", cfg.method)
	}
	return cfg, nil
}

// shardOptions resolves the shard.Options for the configured method;
// ob and cap are threaded down so every layer under the column records
// into the handle's one observer and one workload recorder.
func (c *config) shardOptions(ob *metrics.Observer, cap *wcapture.Recorder) shard.Options {
	s := c.shard
	if c.shards != 0 {
		s.Shards = c.shards
	}
	s.Source = c.newSource()
	s.Obs = ob
	s.Capture = cap
	return s
}

// newRecorder builds the handle's workload recorder: armed (ring,
// sampling, optional sink) under WithWorkloadCapture, otherwise a
// disabled recorder that still serves the zero signature.
func (c *config) newRecorder(ob *metrics.Observer) (*wcapture.Recorder, error) {
	return wcapture.New(wcapture.Options{
		SampleEvery: c.capture.SampleEvery,
		Ring:        c.capture.Ring,
		Sink:        c.capture.Sink,
		MaxBytes:    c.capture.MaxBytes,
	}, c.captureSet, ob)
}

// newObserver builds the handle's observer from the resolved config.
func (c *config) newObserver() *metrics.Observer {
	ob := metrics.NewObserver(metrics.ObserverOptions{
		SampleEvery:    c.obs.SampleEvery,
		StallThreshold: c.obs.StallThreshold,
		FlightEvents:   c.obs.FlightEvents,
	})
	ob.EnableTracing(c.tracing)
	return ob
}

// WithMethod selects the adaptive-indexing method (default Crack).
func WithMethod(m Method) Option {
	return func(c *config) error {
		if m < Crack || m > Scan {
			return fmt.Errorf("adaptix: unknown method %v", m)
		}
		c.method = m
		return nil
	}
}

// WithShards sets the number of range partitions P (default
// runtime.GOMAXPROCS): queries fan out to the overlapping shards in
// parallel, writes route to the owning shard's epoch chain, and each
// shard is an independent latch domain. Use 1 for a single-domain
// index (the paper's original setting).
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("adaptix: WithShards(%d): need at least one shard", n)
		}
		c.shards = n
		return nil
	}
}

// WithWorkers bounds the number of fan-out sub-queries executing
// concurrently across all queries on the index (default: the shard
// count). Client goroutines themselves are never throttled.
func WithWorkers(n int) Option {
	return func(c *config) error {
		c.shard.Workers = n
		return nil
	}
}

// WithSampleSize sets the number of seeded sample points used to
// choose shard boundaries (default 1024).
func WithSampleSize(n int) Option {
	return func(c *config) error {
		c.shard.SampleSize = n
		return nil
	}
}

// WithSeed drives the shard-boundary sample (default 1), making
// partitioning deterministic per seed.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.shard.Seed = seed
		return nil
	}
}

// WithCrackOptions configures the per-shard cracked indexes of a Crack
// index: latching mode, layout, scheduling, conflict policy, parallel
// bound cracking, group cracking, stochastic cracking, tracing. It
// has no effect on other methods.
func WithCrackOptions(o CrackOptions) Option {
	return func(c *config) error {
		c.shard.Index = o
		return nil
	}
}

// WithMergeOptions configures the per-shard adaptive-merging indexes
// of an AMerge index (run size, merge budget, conflict policy). It
// has no effect on other methods.
func WithMergeOptions(o MergeOptions) Option {
	return func(c *config) error {
		c.merge = o
		return nil
	}
}

// WithHybridOptions configures the per-shard hybrid crack-sort
// indexes of a Hybrid index (partition size, layout, conflict
// policy). It has no effect on other methods.
func WithHybridOptions(o HybridOptions) Option {
	return func(c *config) error {
		c.hybrid = o
		return nil
	}
}

// WithIngestOptions configures the write path: group-apply thresholds,
// rebalancing factors (split/merge/load weighting), maintenance
// cadence, the structural log, and the transaction manager. Open
// overrides the fields it owns (Log, Sink, SnapshotWriter,
// CheckpointEvery).
func WithIngestOptions(o IngestOptions) Option {
	return func(c *config) error {
		c.ingest = o
		return nil
	}
}

// WithValues supplies the initial contents of a durable store created
// by Open. Once the store has taken its first checkpoint the snapshot
// wins and WithValues is ignored on reopen. New rejects it — pass the
// values to New directly.
func WithValues(values []int64) Option {
	return func(c *config) error {
		c.values = values
		return nil
	}
}

// WithSegmentBytes sets the WAL segment rotation threshold of a
// durable store (default 1 MiB). Open only.
func WithSegmentBytes(n int64) Option {
	return func(c *config) error {
		c.segmentBytes = n
		c.setDurableOnly("WithSegmentBytes")
		return nil
	}
}

// WithCheckpointEvery sets the number of committed structural
// operations between automatic checkpoints of a durable store
// (default 8). Open only.
func WithCheckpointEvery(n int) Option {
	return func(c *config) error {
		c.checkpointEvery = n
		c.setDurableOnly("WithCheckpointEvery")
		return nil
	}
}

// WithLogWrites enables data-tail durability on a durable store: every
// routed write is logged as an autonomous logical record (value + op +
// epoch id) and replayed past the checkpoint's epoch watermark on
// reopen, so a crash loses at most the not-yet-fsynced log tail
// instead of everything since the last checkpoint. Open only.
func WithLogWrites() Option {
	return func(c *config) error {
		c.logWrites = true
		c.setDurableOnly("WithLogWrites")
		return nil
	}
}

// WithSyncEvery bounds the crash loss window by record count: with
// WithLogWrites, the log is group-commit fsynced after every n logical
// records, so a crash loses at most n-1 of the newest writes. Zero
// (the default) fsyncs with the next system-transaction commit. Open
// only.
func WithSyncEvery(n int) Option {
	return func(c *config) error {
		c.syncEvery = n
		c.setDurableOnly("WithSyncEvery")
		return nil
	}
}

// WithSyncInterval bounds the crash loss window in time: unsynced
// logical records are fsynced at least every d, even when the write
// rate never reaches WithSyncEvery. Open only.
func WithSyncInterval(d time.Duration) Option {
	return func(c *config) error {
		c.syncInterval = d
		c.setDurableOnly("WithSyncInterval")
		return nil
	}
}

// WithNoSync disables fsync on the WAL and snapshots (tests and
// benchmarks). A store written with WithNoSync is not crash-durable.
// Open only.
func WithNoSync() Option {
	return func(c *config) error {
		c.noSync = true
		c.setDurableOnly("WithNoSync")
		return nil
	}
}

// ObsOptions tunes the observability layer (WithObservability).
// Zero values take the defaults noted on each field.
type ObsOptions struct {
	// SampleEvery traces 1 in N queries end to end while tracing is
	// enabled (default 1: every query). The sampled spans feed the
	// end-to-end latency histogram and the flight recorder; the core
	// per-query histograms (wait, crack, critical path) record every
	// query regardless.
	SampleEvery int
	// StallThreshold classifies latch waits and writer parks as stall
	// events in the flight recorder (default 1ms).
	StallThreshold time.Duration
	// FlightEvents is the flight-recorder ring capacity (default 4096).
	FlightEvents int
}

// WithObservability enables per-query span tracing and tunes the
// observability knobs. Every index is observable without it — the
// lock-free histograms, stall detection, and the flight recorder are
// always on, and Observe() always serves — but end-to-end query spans
// (adaptix_query_latency_ns and the flight recorder's query events)
// are recorded only when tracing is enabled. Disabled tracing costs
// nothing measurable on the query path.
func WithObservability(o ObsOptions) Option {
	return func(c *config) error {
		if o.SampleEvery < 0 {
			return fmt.Errorf("adaptix: WithObservability: SampleEvery %d must be >= 0", o.SampleEvery)
		}
		if o.FlightEvents < 0 {
			return fmt.Errorf("adaptix: WithObservability: FlightEvents %d must be >= 0", o.FlightEvents)
		}
		c.obs = o
		c.tracing = true
		return nil
	}
}

// CaptureOptions tunes the workload recorder (WithWorkloadCapture).
// Zero values take the defaults noted on each field.
type CaptureOptions struct {
	// SampleEvery captures 1 in N operations (default 1: every
	// operation). Sampled-out operations cost one atomic add and
	// allocate nothing.
	SampleEvery int
	// Ring is the capture ring capacity in records — also the
	// in-memory retention WorkloadTrace() serves (default 8192,
	// minimum 64).
	Ring int
	// Sink, when non-empty, is the path of an on-disk binary trace
	// file the capture stream is persisted to (see
	// docs/OBSERVABILITY.md for the record format); load it back with
	// ReadWorkloadTrace or cmd/adaptixreplay. Empty keeps capture
	// in-memory only.
	Sink string
	// MaxBytes rotates the sink file when it exceeds this size (the
	// previous rotation is replaced, bounding disk use at about twice
	// MaxBytes). Default 256 MiB.
	MaxBytes int64
}

// WithWorkloadCapture arms the workload recorder: every sampled query
// (bounds, ctx tag, answer checksum, touched rows, epoch depth) and
// every sampled write (routed key, delete flag, found flag) is pushed
// through a lock-free ring into in-memory retention and, with
// CaptureOptions.Sink, an on-disk trace replayable by cmd/adaptixreplay
// or ReplayTrace. Every index carries a disabled recorder without this
// option — Stats().Workload and the endpoint's /workload route always
// serve — and the disabled path stays allocation-free inside the
// observability overhead budget.
func WithWorkloadCapture(o CaptureOptions) Option {
	return func(c *config) error {
		if o.SampleEvery < 0 {
			return fmt.Errorf("adaptix: WithWorkloadCapture: SampleEvery %d must be >= 0", o.SampleEvery)
		}
		if o.Ring < 0 {
			return fmt.Errorf("adaptix: WithWorkloadCapture: Ring %d must be >= 0", o.Ring)
		}
		if o.MaxBytes < 0 {
			return fmt.Errorf("adaptix: WithWorkloadCapture: MaxBytes %d must be >= 0", o.MaxBytes)
		}
		c.capture = o
		c.captureSet = true
		return nil
	}
}

// WithHealth tunes the health watchdog's rule thresholds and enables
// its background evaluation loop (HealthOptions.Interval, default 5s).
// Every index has a watchdog without it — Index.Health and the
// endpoint's /health route evaluate the rule catalog on demand either
// way — but only WithHealth starts periodic evaluation, which is what
// keeps the flight recorder's health-transition events timely when
// nobody is scraping.
func WithHealth(o HealthOptions) Option {
	return func(c *config) error {
		if o.StagnationWindows == 1 {
			return fmt.Errorf("adaptix: WithHealth: StagnationWindows 1 cannot split into early/late halves (use 0 for the default)")
		}
		c.health = o
		c.healthSet = true
		return nil
	}
}

// healthOptions resolves the watchdog configuration: the user's
// thresholds under WithHealth, otherwise defaults with the background
// loop disabled (on-demand evaluation only).
func (c *config) healthOptions() health.Options {
	if c.healthSet {
		return c.health
	}
	return health.Options{Interval: -1}
}

func (c *config) setDurableOnly(name string) {
	if c.durableOnly == "" {
		c.durableOnly = name
	}
}
