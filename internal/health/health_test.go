package health

import (
	"testing"
	"time"

	"adaptix/internal/metrics"
)

func newObserver() *metrics.Observer {
	return metrics.NewObserver(metrics.ObserverOptions{})
}

// healthTransitions extracts the (rule, degraded) pairs of the EvHealth
// events in the flight recorder, oldest first.
func healthTransitions(ob *metrics.Observer) [][2]int64 {
	var out [][2]int64
	for _, ev := range ob.Flight().Dump() {
		if ev.Kind == metrics.EvHealth {
			out = append(out, [2]int64{ev.A, ev.B})
		}
	}
	return out
}

func ruleByName(t *testing.T, rep Report, name string) RuleResult {
	t.Helper()
	for _, r := range rep.Rules {
		if r.Rule == name {
			return r
		}
	}
	t.Fatalf("report has no rule %q: %+v", name, rep.Rules)
	return RuleResult{}
}

func TestIdleObserverPassesEveryRule(t *testing.T) {
	w := New(Options{}, newObserver(), nil)
	rep := w.Eval()
	if !rep.OK() || rep.Status != OK {
		t.Fatalf("idle report degraded: %+v", rep)
	}
	want := []string{RuleWriterStall, RuleEpochChain, RuleSealedBacklog,
		RuleWALGrowth, RuleLatchStorm, RuleConvergence}
	if len(rep.Rules) != len(want) {
		t.Fatalf("%d rules, want %d", len(rep.Rules), len(want))
	}
	for i, r := range rep.Rules {
		if r.Rule != want[i] {
			t.Fatalf("rule %d = %q, want %q (catalog order is the flight ordinal)", i, r.Rule, want[i])
		}
		if r.Status != OK || r.Reason != "" {
			t.Fatalf("rule %q: %+v, want ok with no reason", r.Rule, r)
		}
		if r.Evidence == nil {
			t.Fatalf("rule %q carries no evidence while ok", r.Rule)
		}
	}
	if n := len(healthTransitions(w.ob)); n != 0 {
		t.Fatalf("%d health transitions recorded for an all-ok eval, want 0", n)
	}
}

func TestWriterStallRuleDegrades(t *testing.T) {
	ob := newObserver()
	for i := 0; i < 32; i++ {
		ob.RecordWriterPark(0, 200*time.Millisecond)
	}
	w := New(Options{}, ob, nil)
	rep := w.Eval()
	if rep.OK() {
		t.Fatalf("report ok despite 200ms writer parks: %+v", rep)
	}
	r := ruleByName(t, rep, RuleWriterStall)
	if r.Status != Degraded || r.Reason == "" {
		t.Fatalf("writer-stall rule = %+v, want degraded with reason", r)
	}
	if r.Evidence["p99_ns"] < int64(100*time.Millisecond) {
		t.Fatalf("evidence p99 %d below the threshold that fired", r.Evidence["p99_ns"])
	}
	// The transition (ordinal 0, degraded) must be in the flight ring,
	// and a second eval in the same state must not duplicate it.
	w.Eval()
	if tr := healthTransitions(ob); len(tr) != 1 || tr[0] != [2]int64{0, 1} {
		t.Fatalf("health transitions = %v, want exactly [[0 1]]", tr)
	}
}

func TestEpochRulesUseDepthSamplerAndSetGauges(t *testing.T) {
	ob := newObserver()
	w := New(Options{}, ob, func() (int64, int64) { return 100, 200 })
	rep := w.Eval()
	if ruleByName(t, rep, RuleEpochChain).Status != Degraded {
		t.Fatal("epoch-chain rule ok at depth 100 (threshold 32)")
	}
	if ruleByName(t, rep, RuleSealedBacklog).Status != Degraded {
		t.Fatal("sealed-backlog rule ok at 200 (threshold 64)")
	}
	if chain, sealed := ob.EpochDepth(); chain != 100 || sealed != 200 {
		t.Fatalf("eval did not refresh the depth gauges: chain %d sealed %d", chain, sealed)
	}
}

func TestWALGrowthRuleDegradesAndRecovers(t *testing.T) {
	ob := newObserver()
	ob.AddWALSince(300<<20, 10)
	w := New(Options{}, ob, nil)
	rep := w.Eval()
	r := ruleByName(t, rep, RuleWALGrowth)
	if r.Status != Degraded {
		t.Fatalf("wal-growth rule ok at 300 MiB since checkpoint: %+v", r)
	}
	if r.Evidence["records_since_checkpoint"] != 10 {
		t.Fatalf("evidence records = %d, want 10", r.Evidence["records_since_checkpoint"])
	}
	// A checkpoint resets the gauges; the rule must recover and the
	// recovery transition must be recorded.
	ob.ResetWALSince()
	rep = w.Eval()
	if ruleByName(t, rep, RuleWALGrowth).Status != OK {
		t.Fatal("wal-growth rule still degraded after checkpoint reset")
	}
	tr := healthTransitions(ob)
	if len(tr) != 2 || tr[0] != [2]int64{3, 1} || tr[1] != [2]int64{3, 0} {
		t.Fatalf("health transitions = %v, want [[3 1] [3 0]]", tr)
	}
}

func TestLatchStormRuleUsesRateBetweenEvals(t *testing.T) {
	ob := newObserver()
	w := New(Options{}, ob, nil)
	w.Eval() // establish the rate baseline
	for i := 0; i < 5000; i++ {
		ob.RecordLatchWait(5*time.Millisecond, true)
	}
	time.Sleep(20 * time.Millisecond)
	rep := w.Eval()
	r := ruleByName(t, rep, RuleLatchStorm)
	if r.Status != Degraded {
		t.Fatalf("latch-storm rule ok at ~250k stalls/s: %+v", r)
	}
	// With no new stalls the rate collapses and the rule recovers.
	time.Sleep(20 * time.Millisecond)
	if r := ruleByName(t, w.Eval(), RuleLatchStorm); r.Status != OK {
		t.Fatalf("latch-storm rule did not recover: %+v", r)
	}
}

func TestConvergenceRuleFiresOnFlatSeries(t *testing.T) {
	ob := newObserver()
	// Two full windows of a flat, high rows-touched series.
	for i := 0; i < 2*metrics.ConvWindow; i++ {
		ob.RecordTouched(50_000)
	}
	w := New(Options{StagnationWindows: 2, StagnationMinRows: 1}, ob, nil)
	r := ruleByName(t, w.Eval(), RuleConvergence)
	if r.Status != Degraded {
		t.Fatalf("convergence rule ok on a flat 50k-row series: %+v", r)
	}
	if r.Evidence["late_mean_rows"] < 49_000 {
		t.Fatalf("late mean evidence = %d, want ~50000", r.Evidence["late_mean_rows"])
	}
}

func TestConvergenceRulePassesOnDecayingSeries(t *testing.T) {
	ob := newObserver()
	// First window means ~50k, second ~5k: a healthy decay.
	for i := 0; i < metrics.ConvWindow; i++ {
		ob.RecordTouched(50_000)
	}
	for i := 0; i < metrics.ConvWindow; i++ {
		ob.RecordTouched(5_000)
	}
	w := New(Options{StagnationWindows: 2, StagnationMinRows: 1}, ob, nil)
	if r := ruleByName(t, w.Eval(), RuleConvergence); r.Status != OK {
		t.Fatalf("convergence rule fired on a decaying series: %+v", r)
	}
}

func TestStagnating(t *testing.T) {
	cases := []struct {
		name    string
		series  []int64
		windows int
		minRows int64
		want    bool
	}{
		{"too-few-points", []int64{10, 10}, 4, 1, false},
		{"flat-high", []int64{100, 100, 100, 100}, 4, 1, true},
		{"decaying", []int64{100, 100, 10, 10}, 4, 1, false},
		{"flat-but-converged", []int64{100, 100, 100, 100}, 4, 100, false},
		{"rising", []int64{10, 10, 100, 100}, 4, 1, true},
	}
	for _, c := range cases {
		if got, _, _ := stagnating(c.series, c.windows, c.minRows); got != c.want {
			t.Errorf("%s: stagnating = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStartStopLifecycle(t *testing.T) {
	ob := newObserver()
	w := New(Options{Interval: time.Millisecond}, ob, nil)
	w.Start()
	deadline := time.Now().Add(2 * time.Second)
	for w.last.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background loop never published a report")
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	w.Stop() // idempotent

	// Stop without Start must not hang; on-demand Eval works regardless.
	w2 := New(Options{Interval: -1}, ob, nil)
	w2.Start() // negative interval: no goroutine
	if rep := w2.Last(); len(rep.Rules) != 6 {
		t.Fatalf("on-demand Last: %d rules, want 6", len(rep.Rules))
	}
	w2.Stop()
	New(Options{}, ob, nil).Stop()
}
