// Package durable is the crash-recoverable persistence layer over the
// sharded adaptive index: a directory-backed store that survives
// process death with its refinement knowledge intact.
//
// The paper's §4.2 insight is that adaptive-index logging is cheap
// because the log carries *structure*, not contents: crack boundaries,
// shard cuts, merge steps. This package completes that story end to
// end. A store directory holds
//
//   - base.snap — the column's logical contents as of the newest
//     checkpoint (written atomically: temp file + rename);
//   - wal-*.seg — CRC-framed structural log segments (wal.FileSink),
//     fsynced on every system-transaction commit.
//
// The ingest coordinator periodically checkpoints: it snapshots the
// data, serializes the shard cuts and every shard's crack boundaries
// into wal.Checkpoint records inside one committed system transaction,
// and truncates the now-dead log prefix. Open recovers by reading the
// snapshot, folding the checkpoint and all later committed structural
// records into a wal.Catalog, and rebuilding the column with
// shard.NewWithBoundsAndCracks — pre-cracked to everything the crashed
// process had learned, so the first query after reopen pays
// steady-state cost, not cold-start cost.
//
// Durability unit: the checkpoint. Structural operations are durable
// as soon as they commit (fsync-on-commit); logical contents and crack
// boundaries are durable as of the last checkpoint (Close always takes
// a final one, so a clean shutdown loses nothing). Updates routed
// after the last checkpoint are lost on a crash — in the paper's
// architecture the base table has its own recovery log and the
// adaptive index is re-creatable knowledge, so losing the index tail
// is always safe and never affects correctness of what remains.
//
// A store directory must be owned by one process at a time; no lock
// file is taken.
package durable

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/shard"
	"adaptix/internal/wal"
)

// Options configures Open.
type Options struct {
	// Values is the column's initial contents when the directory holds
	// no data snapshot yet (a fresh store, or one that crashed before
	// its first checkpoint completed). Once a snapshot exists it wins
	// and Values is ignored.
	Values []int64
	// Shard configures the sharded column (shard count, workers,
	// per-shard index options, ...).
	Shard shard.Options
	// Ingest configures the write-path coordinator (thresholds,
	// rebalancing factors, Name, Txns). Log, Sink, SnapshotWriter and
	// CheckpointEvery are owned by the store and overwritten.
	Ingest ingest.Options
	// SegmentBytes is the WAL segment rotation threshold. Default 1 MiB.
	SegmentBytes int64
	// CheckpointEvery is the number of committed structural operations
	// between automatic checkpoints. Default 8.
	CheckpointEvery int
	// LogWrites enables data-tail durability (ingest
	// Options.LogWrites): routed writes are logged as logical records
	// and replayed past the checkpoint's epoch watermark on reopen, so
	// a crash loses at most the not-yet-fsynced log tail instead of
	// everything since the last checkpoint.
	LogWrites bool
	// SyncEvery bounds the not-yet-fsynced tail by record count: with
	// LogWrites, the log is group-commit fsynced after every SyncEvery
	// logical records (see ingest Options.SyncEvery). Zero keeps
	// fsync-on-next-commit.
	SyncEvery int
	// SyncInterval bounds the tail in time: unsynced logical records
	// are fsynced at least every SyncInterval (see ingest
	// Options.SyncInterval). Zero disables the ticker.
	SyncInterval time.Duration
	// NoSync disables fsync on the WAL and the snapshot (tests). A
	// store written with NoSync is not crash-durable.
	NoSync bool
}

// Column is a durable sharded adaptive index: a shard.Column plus its
// ingest.Coordinator, wired to a file-backed WAL and checkpointed data
// snapshots in one directory. Reads go straight to the column; writes
// route through the coordinator. Safe for concurrent use.
type Column struct {
	dir       string
	col       *shard.Column
	ing       *ingest.Coordinator
	sink      *wal.FileSink
	recovered bool
	recovery  RecoveryBreakdown
	closed    atomic.Bool
}

// RecoveryBreakdown is the wall-clock cost of the three Open phases:
// loading and validating the checkpoint's data snapshot, scanning and
// folding the structural WAL, and rebuilding the column (warm crack
// replay plus the logged data tail). Open also publishes the three
// durations as observer gauges (adaptix_recovery_*_ns), so the cost of
// the last recovery is scrapeable at /metrics.
type RecoveryBreakdown struct {
	// CheckpointLoad is the time spent reading base.snap.
	CheckpointLoad time.Duration
	// WALScan is the time spent reading the log segments and folding
	// them into the recovery catalog.
	WALScan time.Duration
	// Replay is the time spent rebuilding the column: shard
	// partitioning, warm crack-boundary replay, and the logged data
	// tail.
	Replay time.Duration
}

// Open opens the store in dir, creating it (with opts.Values as
// initial contents) when no store exists, or recovering it from the
// snapshot and the structural log when one does. The returned column
// has background maintenance started and an initial checkpoint taken,
// so a freshly opened store is durable immediately.
func Open(dir string, opts Options) (*Column, error) {
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	name := opts.Ingest.Name
	if name == "" {
		name = "sharded"
	}

	var bd RecoveryBreakdown
	t0 := time.Now()
	values, haveSnap, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	bd.CheckpointLoad = time.Since(t0)
	t0 = time.Now()
	raw, err := wal.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	if !haveSnap {
		// No snapshot means creation never reached its first durable
		// point (a crash can leave bootstrap WAL records behind before
		// the initial checkpoint's snapshot rename): the authoritative
		// contents are still the caller's. Any recovered structure is
		// applied on top of them below.
		values = opts.Values
	}

	var col *shard.Column
	recovered := haveSnap
	if len(raw) > 0 || haveSnap {
		cat, err := wal.Recover(raw)
		if err != nil {
			return nil, fmt.Errorf("durable: recover: %w", err)
		}
		bd.WALScan = time.Since(t0)
		t0 = time.Now()
		col = shard.NewWithBoundsAndCracks(values, cat.ShardBounds[name], cat.ShardCracks[name], opts.Shard)
		// Epoch ids must stay monotonic across incarnations: reissuing
		// low ids would let old-incarnation records in stale segments
		// (a failed post-checkpoint truncation) alias into the new
		// epoch namespace and replay writes the snapshot already
		// contains.
		col.AdvanceEpoch(maxRecoveredEpoch(cat, name))
		replayTail(col, cat.TailWrites[name])
	} else {
		bd.WALScan = time.Since(t0)
		t0 = time.Now()
		col = shard.New(values, opts.Shard)
	}
	bd.Replay = time.Since(t0)
	opts.Shard.Obs.RecordRecovery(bd.CheckpointLoad, bd.WALScan, bd.Replay)

	sink, err := wal.NewFileSink(dir, wal.SinkOptions{
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		// One observer spans the store: the column's (Options.Shard.Obs)
		// also times the sink's fsyncs and the coordinator's writes.
		Obs: opts.Shard.Obs,
	})
	if err != nil {
		return nil, err
	}
	iopts := opts.Ingest
	iopts.Name = name
	if iopts.Obs == nil {
		iopts.Obs = opts.Shard.Obs
	}
	iopts.Log = wal.New(sink)
	iopts.Sink = sink
	iopts.CheckpointEvery = opts.CheckpointEvery
	iopts.LogWrites = opts.LogWrites || iopts.LogWrites
	if opts.SyncEvery > 0 {
		iopts.SyncEvery = opts.SyncEvery
	}
	if opts.SyncInterval > 0 {
		iopts.SyncInterval = opts.SyncInterval
	}
	iopts.SnapshotWriter = func(vals []int64) error {
		return writeSnapshot(dir, vals, !opts.NoSync)
	}
	ing := ingest.New(col, iopts)
	c := &Column{dir: dir, col: col, ing: ing, sink: sink, recovered: recovered, recovery: bd}
	// Checkpoint immediately: the fresh log is self-contained from its
	// first segment, and recovered refinement is re-persisted into it.
	if !ing.Checkpoint() {
		sink.Close()
		return nil, errors.New("durable: initial checkpoint failed")
	}
	ing.Start()
	return c, nil
}

// Dir returns the store directory.
func (c *Column) Dir() string { return c.dir }

// Recovered reports whether Open found an existing store — a durable
// data snapshot — in the directory (as opposed to creating a fresh
// one from Options.Values).
func (c *Column) Recovered() bool { return c.recovered }

// Recovery returns the wall-clock breakdown of the Open that produced
// this column (all zeros never occur: even a fresh store pays the
// three phases, if only to find them empty).
func (c *Column) Recovery() RecoveryBreakdown { return c.recovery }

// Column returns the underlying sharded column (the read surface;
// useful for Snapshot, Validate, or wrapping in an Engine).
func (c *Column) Column() *shard.Column { return c.col }

// Ingestor returns the underlying write-path coordinator (stats,
// manual Maintain).
func (c *Column) Ingestor() *ingest.Coordinator { return c.ing }

// Count evaluates Q1: select count(*) where lo <= A < hi.
func (c *Column) Count(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error) {
	return c.col.Count(ctx, lo, hi)
}

// Sum evaluates Q2: select sum(A) where lo <= A < hi.
func (c *Column) Sum(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error) {
	return c.col.Sum(ctx, lo, hi)
}

// Insert routes one insert through the coordinator.
func (c *Column) Insert(ctx context.Context, v int64) error { return c.ing.Insert(ctx, v) }

// DeleteValue routes one delete, reporting whether an instance existed.
func (c *Column) DeleteValue(ctx context.Context, v int64) (bool, error) {
	return c.ing.DeleteValue(ctx, v)
}

// Apply routes a batch of write operations (see ingest.Coordinator.Apply).
func (c *Column) Apply(ctx context.Context, batch []ingest.Op) (int, error) {
	return c.ing.Apply(ctx, batch)
}

// Checkpoint forces a checkpoint now: data snapshot, crack-boundary
// records, log-prefix truncation. Everything up to this call is
// durable once it returns true.
func (c *Column) Checkpoint() bool { return c.ing.Checkpoint() }

// Close stops background maintenance, takes a final checkpoint, and
// closes the log. A cleanly closed store reopens with zero loss.
// Idempotent and safe for concurrent use (exactly one caller runs the
// shutdown; the others return nil immediately).
func (c *Column) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.ing.Close() // final maintain + checkpoint
	return c.sink.Close()
}

// maxRecoveredEpoch returns the highest epoch id the recovered log
// mentions for name: the checkpoint watermark, sealed and applied
// ids, and every tail write's tag.
func maxRecoveredEpoch(cat *wal.Catalog, name string) int64 {
	m := cat.EpochWatermark[name]
	if v := cat.AppliedEpoch[name]; v > m {
		m = v
	}
	for _, id := range cat.SealedEpochs[name] {
		if id > m {
			m = id
		}
	}
	for _, tw := range cat.TailWrites[name] {
		if tw.Epoch > m {
			m = tw.Epoch
		}
	}
	return m
}

// replayTail re-applies the recovered data tail (Options.LogWrites):
// the snapshot holds the contents up to the checkpoint's epoch
// watermark; the logical records beyond it — including those of any
// half-applied epoch whose merge never committed — re-apply in log
// order. Without logged writes the tail is simply absent, which is
// the paper's model (the base table has its own log) and never
// affects the correctness of what remains.
//
// Autonomous logical records can land in the log slightly out of
// order relative to the in-memory interleaving (the routed write and
// its record are not appended atomically), so a delete's record may
// precede the record of the very insert whose instance it observed.
// A delete that finds nothing to cancel is therefore paired with a
// later insert of the same value when one exists in the tail — both
// are skipped, reconstructing the pre-crash net effect — and only
// dropped outright (the lost-witness case: the insert's record never
// became durable) when no such insert follows.
func replayTail(col *shard.Column, tail []wal.TailWrite) {
	remainingIns := map[int64]int{}
	for _, tw := range tail {
		if !tw.Delete {
			remainingIns[tw.Value]++
		}
	}
	debt := map[int64]int{}
	for _, tw := range tail {
		if tw.Delete {
			// Debt is capped by the inserts actually still ahead, so
			// every debt is consumed and a delete beyond that cap is
			// dropped as witness-less.
			if deleted, _ := col.DeleteValue(context.Background(), tw.Value); !deleted && debt[tw.Value] < remainingIns[tw.Value] {
				debt[tw.Value]++
			}
			continue
		}
		remainingIns[tw.Value]--
		if debt[tw.Value] > 0 {
			debt[tw.Value]--
			continue
		}
		_ = col.Insert(context.Background(), tw.Value)
	}
}

// Snapshot file format: magic, value count, values, CRC-32 of all
// preceding bytes — one self-validating file, replaced atomically.
const snapMagic = "ADXSNAP1"

func snapPath(dir string) string { return filepath.Join(dir, "base.snap") }

// writeSnapshot atomically replaces the store's data snapshot.
func writeSnapshot(dir string, values []int64, sync bool) error {
	buf := make([]byte, 0, len(snapMagic)+8+8*len(values)+4)
	buf = append(buf, snapMagic...)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(values)))
	buf = append(buf, tmp[:]...)
	for _, v := range values {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crc[:]...)

	tmpPath := snapPath(dir) + ".tmp"
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, snapPath(dir)); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if sync {
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	return nil
}

// readSnapshot loads and validates the data snapshot; ok is false when
// none exists yet.
func readSnapshot(dir string) (values []int64, ok bool, err error) {
	buf, err := os.ReadFile(snapPath(dir))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("durable: snapshot: %w", err)
	}
	if len(buf) < len(snapMagic)+8+4 || string(buf[:len(snapMagic)]) != snapMagic {
		return nil, false, errors.New("durable: snapshot: bad header")
	}
	body, crc := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, false, errors.New("durable: snapshot: checksum mismatch")
	}
	n := binary.LittleEndian.Uint64(body[len(snapMagic):])
	if uint64(len(body)-len(snapMagic)-8) != 8*n {
		return nil, false, errors.New("durable: snapshot: length mismatch")
	}
	values = make([]int64, n)
	p := len(snapMagic) + 8
	for i := range values {
		values[i] = int64(binary.LittleEndian.Uint64(body[p+8*i:]))
	}
	return values, true, nil
}
