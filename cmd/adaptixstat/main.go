// Command adaptixstat scrapes a live adaptix observability endpoint
// (Index.Observe served over HTTP) and pretty-prints a snapshot:
// throughput counters, the latency quantiles of the always-on
// histograms, and optionally the flight-recorder tail.
//
// Usage:
//
//	adaptixstat [-addr http://localhost:6060] [-watch 2s] [-flight 10]
//
// With -watch the snapshot refreshes in place at the given interval
// until interrupted; counters are shown both as lifetime totals and as
// per-second rates over the interval.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"adaptix"
)

func main() {
	addr := flag.String("addr", "http://localhost:6060", "observability endpoint base URL")
	watch := flag.Duration("watch", 0, "refresh interval (0: print once and exit)")
	flight := flag.Int("flight", 0, "also print the last N flight-recorder events")
	flag.Parse()

	var prev *adaptix.ObsSnapshot
	var prevAt time.Time
	for {
		snap, err := scrape[adaptix.ObsSnapshot](*addr + "/snapshot")
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptixstat: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		print(snap, prev, now.Sub(prevAt))
		if *flight > 0 {
			evs, err := scrape[[]adaptix.FlightEvent](*addr + "/flight")
			if err != nil {
				fmt.Fprintf(os.Stderr, "adaptixstat: %v\n", err)
				os.Exit(1)
			}
			printFlight(evs, *flight)
		}
		if *watch <= 0 {
			return
		}
		prev, prevAt = &snap, now
		time.Sleep(*watch)
		fmt.Println()
	}
}

func scrape[T any](url string) (T, error) {
	var v T
	resp, err := http.Get(url)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

func print(s adaptix.ObsSnapshot, prev *adaptix.ObsSnapshot, dt time.Duration) {
	fmt.Printf("adaptix %s  rows=%d  shards=%d\n", s.Method, s.Rows, s.Shards)

	rate := func(cur, old int64) string {
		if prev == nil || dt <= 0 {
			return ""
		}
		return fmt.Sprintf("  (%.0f/s)", float64(cur-old)/dt.Seconds())
	}
	var po adaptix.ObsStats
	if prev != nil {
		po = prev.Obs
	}
	o := s.Obs
	fmt.Printf("  queries  %-12d%s\n", o.Queries, rate(o.Queries, po.Queries))
	fmt.Printf("  writes   %-12d%s\n", o.Writes, rate(o.Writes, po.Writes))
	fmt.Printf("  stalls   latch=%d writer=%d  sampled-spans=%d\n",
		o.LatchStalls, o.WriterStalls, o.SampledSpans)

	fmt.Println("  latency quantiles:")
	row := func(name string, ds ...time.Duration) {
		fmt.Printf("    %-16s", name)
		for _, d := range ds {
			fmt.Printf(" %12s", fmtDur(d))
		}
		fmt.Println()
	}
	fmt.Printf("    %-16s %12s %12s %12s\n", "", "p50", "p99", "p999")
	row("query e2e", o.QueryLatencyP50, o.QueryLatencyP99, o.QueryLatencyP999)
	row("critical path", o.CriticalPathP50, o.CriticalPathP99, o.CriticalPathP999)
	row("writer stall", o.WriterStallP50, o.WriterStallP99, o.WriterStallP999)
	fmt.Printf("    %-16s %12s (wait) %8s (crack) %8s (latch) %8s (fsync)\n",
		"p99 breakdown", fmtDur(o.QueryWaitP99), fmtDur(o.QueryCrackP99),
		fmtDur(o.LatchWaitP99), fmtDur(o.FsyncP99))

	in := s.Ingest
	fmt.Printf("  ingest: %+v\n", in)
}

func printFlight(evs []adaptix.FlightEvent, n int) {
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	fmt.Printf("  flight (last %d):\n", len(evs))
	for _, e := range evs {
		fmt.Printf("    %s  %-12s shard=%-3d dur=%s\n",
			e.When.Format("15:04:05.000"), e.KindName, e.Shard, fmtDur(e.Dur))
	}
}

// fmtDur renders a duration compactly with µs resolution below 1ms.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return d.Round(time.Millisecond).String()
	}
}
