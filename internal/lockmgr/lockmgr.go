// Package lockmgr implements the transactional lock manager of the
// paper's Table 1: locks (as opposed to latches) separate user
// transactions, protect logical database contents, are held for whole
// transactions, come in the rich mode set (shared, exclusive, update,
// intention, ...), are kept in a lock manager's hash table, and handle
// deadlocks by detection and resolution over a waits-for graph.
//
// Adaptive indexing's system transactions never acquire these locks:
// they only *verify* that no conflicting user lock exists (the
// HasConflicting probe) and otherwise forgo their optional refinement
// (paper §3.3, "Concurrency Control by Latching" / "Conflict
// Avoidance"). User transactions in turn use hierarchical locking:
// locking a key requires intention locks along the containment
// hierarchy (§3.2).
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
)

// Mode is a transactional lock mode.
type Mode int

const (
	// IS is intention-shared: intent to take S locks below.
	IS Mode = iota
	// IX is intention-exclusive: intent to take X locks below.
	IX
	// S is shared.
	S
	// SIX is shared plus intention-exclusive.
	SIX
	// U is update: read now, possibly convert to X later; compatible
	// with readers but not with other U/X.
	U
	// X is exclusive.
	X
	numModes
)

// String returns the lock mode's Table 1 name.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case U:
		return "U"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compat[a][b] reports whether a granted lock in mode a is compatible
// with a request in mode b (standard multi-granularity matrix).
var compat = [numModes][numModes]bool{
	IS:  {IS: true, IX: true, S: true, SIX: true, U: true},
	IX:  {IS: true, IX: true},
	S:   {IS: true, S: true, U: true},
	SIX: {IS: true},
	U:   {IS: true, S: true},
	X:   {},
}

// Compatible reports whether modes a and b can be held simultaneously
// by different transactions.
func Compatible(a, b Mode) bool { return compat[a][b] }

// sup[a][b] is the weakest mode at least as strong as both a and b,
// used for lock conversions (upgrades).
var sup = [numModes][numModes]Mode{
	IS:  {IS: IS, IX: IX, S: S, SIX: SIX, U: U, X: X},
	IX:  {IS: IX, IX: IX, S: SIX, SIX: SIX, U: X, X: X},
	S:   {IS: S, IX: SIX, S: S, SIX: SIX, U: U, X: X},
	SIX: {IS: SIX, IX: SIX, S: SIX, SIX: SIX, U: SIX, X: X},
	U:   {IS: U, IX: X, S: U, SIX: SIX, U: U, X: X},
	X:   {IS: X, IX: X, S: X, SIX: X, U: X, X: X},
}

// Supremum returns the weakest mode covering both a and b.
func Supremum(a, b Mode) Mode { return sup[a][b] }

// intentionFor returns the intention mode required on ancestors when
// locking a descendant in leaf mode.
func intentionFor(leaf Mode) Mode {
	switch leaf {
	case S, IS:
		return IS
	case U:
		return IS
	default:
		return IX
	}
}

// TxnID identifies a transaction.
type TxnID uint64

// ErrDeadlock is returned to the victim of a deadlock; the caller is
// expected to abort (or partially roll back) the transaction.
var ErrDeadlock = errors.New("lockmgr: deadlock detected")

type request struct {
	txn     TxnID
	mode    Mode
	granted bool
	convert bool // conversion request (queued at the front)
	ready   chan error
}

type lockHead struct {
	queue []*request // granted requests first, then waiters in order
}

// Manager is the lock manager: a hash table of lock queues plus a
// waits-for graph for deadlock detection.
type Manager struct {
	mu    sync.Mutex
	table map[string]*lockHead
	// held tracks, per transaction, the resources it has requests on.
	held map[TxnID]map[string]bool
	// order tracks, per transaction, the resources in first-request
	// order; it drives partial rollback (Table 1 lists "partial
	// rollback" among the lock-deadlock resolution mechanisms).
	order map[TxnID][]string
	// Stats.
	acquired  int64
	waited    int64
	deadlocks int64
}

// New creates an empty lock manager.
func New() *Manager {
	return &Manager{
		table: make(map[string]*lockHead),
		held:  make(map[TxnID]map[string]bool),
		order: make(map[TxnID][]string),
	}
}

// Lock acquires res in mode for txn, blocking while incompatible locks
// are held. If the transaction already holds the resource, the request
// is treated as a conversion to Supremum(held, mode). Returns
// ErrDeadlock if waiting would close a cycle in the waits-for graph;
// the requester is the victim and acquires nothing.
func (m *Manager) Lock(txn TxnID, res string, mode Mode) error {
	m.mu.Lock()
	h := m.table[res]
	if h == nil {
		h = &lockHead{}
		m.table[res] = h
	}

	// Conversion: the txn already has a request on this resource.
	for _, r := range h.queue {
		if r.txn == txn {
			return m.convertLocked(h, r, res, mode)
		}
	}

	req := &request{txn: txn, mode: mode, ready: make(chan error, 1)}
	if m.grantableLocked(h, req) {
		req.granted = true
		h.queue = append(h.queue, req)
		m.noteHeld(txn, res)
		m.acquired++
		m.mu.Unlock()
		return nil
	}
	// Must wait: deadlock check first.
	if m.wouldDeadlockLocked(h, req) {
		m.deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	h.queue = append(h.queue, req)
	m.noteHeld(txn, res)
	m.waited++
	m.mu.Unlock()
	return <-req.ready
}

// convertLocked handles a lock conversion; m.mu is held on entry and
// released before any blocking.
func (m *Manager) convertLocked(h *lockHead, r *request, res string, mode Mode) error {
	target := Supremum(r.mode, mode)
	if target == r.mode {
		m.mu.Unlock()
		return nil
	}
	if !r.granted {
		// Still waiting: just strengthen the pending request.
		r.mode = target
		m.mu.Unlock()
		return errors.New("lockmgr: conversion requested while original request still waiting")
	}
	// Compatible with all OTHER granted requests?
	ok := true
	for _, o := range h.queue {
		if o != r && o.granted && !Compatible(o.mode, target) {
			ok = false
			break
		}
	}
	if ok {
		r.mode = target
		m.acquired++
		m.mu.Unlock()
		return nil
	}
	// Queue the conversion with priority: insert right after the
	// granted prefix.
	conv := &request{txn: r.txn, mode: target, convert: true, ready: make(chan error, 1)}
	if m.wouldDeadlockLocked(h, conv) {
		m.deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	i := 0
	for i < len(h.queue) && h.queue[i].granted {
		i++
	}
	h.queue = append(h.queue, nil)
	copy(h.queue[i+1:], h.queue[i:])
	h.queue[i] = conv
	m.waited++
	m.mu.Unlock()
	return <-conv.ready
}

// grantableLocked reports whether req can be granted now: compatible
// with every granted request and no earlier waiter (FIFO, to avoid
// starvation).
func (m *Manager) grantableLocked(h *lockHead, req *request) bool {
	for _, o := range h.queue {
		if o.txn == req.txn {
			continue
		}
		if o.granted {
			if !Compatible(o.mode, req.mode) {
				return false
			}
		} else {
			// An earlier waiter exists; FIFO fairness says queue behind.
			return false
		}
	}
	return true
}

// wouldDeadlockLocked checks whether txn waiting on the holders of h
// would close a cycle. Edges: waiter -> every incompatible granted
// holder, plus existing wait edges derived from all queues.
func (m *Manager) wouldDeadlockLocked(h *lockHead, req *request) bool {
	// Build the waits-for graph.
	edges := make(map[TxnID][]TxnID)
	addEdges := func(head *lockHead) {
		for i, r := range head.queue {
			if r.granted {
				continue
			}
			// A waiter waits for every granted incompatible request and
			// every earlier incompatible waiter.
			for j := 0; j < i; j++ {
				o := head.queue[j]
				if o.txn != r.txn && !Compatible(o.mode, r.mode) {
					edges[r.txn] = append(edges[r.txn], o.txn)
				}
			}
			for _, o := range head.queue {
				if o.granted && o.txn != r.txn && !Compatible(o.mode, r.mode) {
					edges[r.txn] = append(edges[r.txn], o.txn)
				}
			}
		}
	}
	for _, head := range m.table {
		addEdges(head)
	}
	// Add the hypothetical edges for req.
	for _, o := range h.queue {
		if o.txn != req.txn && (o.granted || !req.convert) && !Compatible(o.mode, req.mode) {
			edges[req.txn] = append(edges[req.txn], o.txn)
		}
	}
	// DFS from req.txn looking for a cycle back to req.txn.
	seen := make(map[TxnID]bool)
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		for _, next := range edges[t] {
			if next == req.txn {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(req.txn)
}

func (m *Manager) noteHeld(txn TxnID, res string) {
	set := m.held[txn]
	if set == nil {
		set = make(map[string]bool)
		m.held[txn] = set
	}
	if !set[res] {
		m.order[txn] = append(m.order[txn], res)
	}
	set[res] = true
}

// ReleaseAll releases every lock and pending request of txn (commit or
// abort), granting any newly compatible waiters.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res := range m.held[txn] {
		m.releaseOneLocked(txn, res)
	}
	delete(m.held, txn)
	delete(m.order, txn)
}

// releaseOneLocked removes txn's requests on res; caller holds m.mu.
func (m *Manager) releaseOneLocked(txn TxnID, res string) {
	h := m.table[res]
	if h == nil {
		return
	}
	kept := h.queue[:0]
	for _, r := range h.queue {
		if r.txn == txn {
			if !r.granted {
				r.ready <- errors.New("lockmgr: request cancelled by release")
			}
			continue
		}
		kept = append(kept, r)
	}
	h.queue = kept
	m.grantWaitersLocked(h)
	if len(h.queue) == 0 {
		delete(m.table, res)
	}
}

// Savepoint returns a marker identifying how many distinct resources
// txn has locked so far; pass it to ReleaseAfter for partial rollback.
func (m *Manager) Savepoint(txn TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order[txn])
}

// ReleaseAfter releases every lock txn acquired after the given
// savepoint, in reverse acquisition order — the lock-side effect of a
// partial rollback (Table 1). Locks held at the savepoint are kept;
// conversions performed after the savepoint on pre-savepoint resources
// are NOT downgraded (the common, conservative implementation choice).
func (m *Manager) ReleaseAfter(txn TxnID, savepoint int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ord := m.order[txn]
	if savepoint < 0 {
		savepoint = 0
	}
	if savepoint >= len(ord) {
		return
	}
	for i := len(ord) - 1; i >= savepoint; i-- {
		res := ord[i]
		m.releaseOneLocked(txn, res)
		delete(m.held[txn], res)
	}
	m.order[txn] = ord[:savepoint]
}

// grantWaitersLocked promotes waiters that are now compatible,
// honouring conversion priority and FIFO order.
func (m *Manager) grantWaitersLocked(h *lockHead) {
	for {
		progressed := false
		for _, r := range h.queue {
			if r.granted {
				continue
			}
			ok := true
			for _, o := range h.queue {
				if o != r && o.granted && o.txn != r.txn && !Compatible(o.mode, r.mode) {
					ok = false
					break
				}
			}
			if !ok {
				break // FIFO: do not grant later waiters past a blocked one
			}
			if r.convert {
				// Merge the conversion into the original granted request.
				for _, o := range h.queue {
					if o != r && o.txn == r.txn && o.granted {
						o.mode = r.mode
						break
					}
				}
				// Remove the conversion placeholder.
				for i, o := range h.queue {
					if o == r {
						h.queue = append(h.queue[:i], h.queue[i+1:]...)
						break
					}
				}
			} else {
				r.granted = true
			}
			m.acquired++
			r.ready <- nil
			progressed = true
			break
		}
		if !progressed {
			return
		}
	}
}

// HasConflicting reports whether any transaction other than except
// holds (has been granted) a lock on res incompatible with mode. This
// is the verification probe used by adaptive indexing's system
// transactions: they never acquire locks, they only check for
// conflicts and skip the optional refinement if one exists (§3.3).
func (m *Manager) HasConflicting(res string, mode Mode, except TxnID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.table[res]
	if h == nil {
		return false
	}
	for _, r := range h.queue {
		if r.granted && r.txn != except && !Compatible(r.mode, mode) {
			return true
		}
	}
	return false
}

// LockHierarchy acquires intention locks along path[0:len-1] and the
// leaf mode on the last element, implementing hierarchical locking
// (§3.2): "database objects must be locked according to their
// containment hierarchies". On any failure the transaction keeps the
// locks it acquired so far (caller aborts via ReleaseAll).
func (m *Manager) LockHierarchy(txn TxnID, path []string, leaf Mode) error {
	if len(path) == 0 {
		return errors.New("lockmgr: empty hierarchy path")
	}
	intent := intentionFor(leaf)
	for _, res := range path[:len(path)-1] {
		if err := m.Lock(txn, res, intent); err != nil {
			return err
		}
	}
	return m.Lock(txn, path[len(path)-1], leaf)
}

// HeldModes returns the modes txn currently holds, keyed by resource.
func (m *Manager) HeldModes(txn TxnID) map[string]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Mode)
	for res := range m.held[txn] {
		h := m.table[res]
		if h == nil {
			continue
		}
		for _, r := range h.queue {
			if r.txn == txn && r.granted {
				out[res] = r.mode
			}
		}
	}
	return out
}

// Stats returns (granted, waited, deadlocks) counters.
func (m *Manager) Stats() (acquired, waited, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquired, m.waited, m.deadlocks
}
