// Crack-boundary checkpoints: periodically serialize the column's
// complete refinement knowledge — the shard-map cuts and every shard's
// crack boundaries — into wal.Checkpoint records, so recovery restores
// piece-level refinement instead of only the shard map. A checkpoint
// is one system transaction (fsynced on commit like every structural
// commit); once it is durable, the log prefix before it is dead and is
// truncated through the sink (wal.SegmentTruncator).
package ingest

import (
	"time"

	"adaptix/internal/metrics"
	"adaptix/internal/wal"
)

// Checkpoint serializes the column's current shard cuts and per-shard
// crack boundaries into one committed checkpoint transaction, and
// truncates the dead log prefix when a truncating sink is configured.
// The checkpoint names the epoch it captured (wal.CkptEpoch): every
// open epoch is sealed first, so the accompanying data snapshot is an
// exact cut at the watermark and recovery can discard half-applied
// epochs and replay only the logical records beyond it. When a
// SnapshotWriter is configured it receives the column's logical
// contents as of the watermark first, so the data snapshot on disk is
// always at least as new as the newest committed checkpoint. Reports
// whether a checkpoint was written (false when no Log is configured or
// a step failed).
//
// Checkpoint serializes with Maintain: both hold the maintenance lock,
// so no structural operation can commit between the snapshot and the
// checkpoint records that describe it.
func (g *Coordinator) Checkpoint() bool {
	g.maintMu.Lock()
	defer g.maintMu.Unlock()
	return g.checkpointLocked()
}

// checkpointLocked is Checkpoint under an already-held maintenance
// lock (Maintain's periodic trigger).
func (g *Coordinator) checkpointLocked() bool {
	if g.opts.Log == nil {
		return false
	}
	t0 := time.Now()
	// Epoch cut first: roll every shard's open epoch so the snapshot
	// has an exact watermark — contents up to epoch W, nothing beyond.
	// Writers racing the checkpoint roll over to fresh epochs (they
	// never park) and their writes, tagged with ids above W, stay out
	// of the snapshot deterministically; with LogWrites they replay
	// from their LogicalWrite records instead.
	watermark := g.col.SealAllEpochs()
	if g.opts.SnapshotWriter != nil {
		if err := g.opts.SnapshotWriter(g.col.ValuesAt(watermark)); err != nil {
			return false
		}
	}
	// Rotate first: the checkpoint records open a fresh segment, so
	// every earlier segment is superseded once they commit.
	seg := 0
	if g.opts.Sink != nil {
		var err error
		if seg, err = g.opts.Sink.MarkCheckpoint(); err != nil {
			return false
		}
	}
	seq := g.ckpts.Load() + 1 // counted only once durably committed
	bounds := g.col.Bounds()
	cracks := g.col.CrackBoundaries()
	ok := g.structural(func() ([]wal.Record, bool) {
		n := 2 + len(bounds)
		for _, set := range cracks {
			n += len(set)
		}
		recs := make([]wal.Record, 0, n)
		recs = append(recs, wal.Record{
			Kind: wal.Checkpoint, C: wal.CkptHeader,
			A: int64(len(cracks)), B: seq,
		})
		recs = append(recs, wal.Record{
			Kind: wal.Checkpoint, C: wal.CkptEpoch, A: watermark,
		})
		for _, cut := range bounds {
			recs = append(recs, wal.Record{Kind: wal.Checkpoint, C: wal.CkptCut, A: cut})
		}
		for shardOrd, set := range cracks {
			for _, b := range set {
				recs = append(recs, wal.Record{
					Kind: wal.Checkpoint, C: wal.CkptCrack,
					A: int64(shardOrd), B: b,
				})
			}
		}
		return recs, true
	})
	if !ok {
		// The checkpoint never durably committed (structural reports
		// append/fsync failures): the previous checkpoint stands and
		// its segments are untouched.
		return false
	}
	g.ckpts.Store(seq)
	if g.opts.Sink != nil {
		// The checkpoint has durably committed (fsync-on-commit), so
		// the prefix is dead; failure to delete it only wastes space —
		// a stale segment cannot mask later ones (wal.ReadDir resumes
		// at segment boundaries past damaged tails).
		_ = g.opts.Sink.ReleaseBefore(seg)
	}
	g.sinceCkpt.Store(0)
	// The log prefix before the checkpoint is dead: restart the
	// WAL-growth gauges the watchdog's wal-since-checkpoint rule reads.
	g.opts.Obs.ResetWALSince()
	g.opts.Obs.RecordStructural(metrics.EvCheckpoint, -1, time.Since(t0), 0)
	return true
}

// maybeCheckpoint runs a checkpoint when CheckpointEvery structural
// operations have accumulated since the last one. Caller must hold the
// maintenance lock.
func (g *Coordinator) maybeCheckpoint(structuralOps int) {
	if g.opts.CheckpointEvery <= 0 || structuralOps == 0 {
		return
	}
	if g.sinceCkpt.Add(int64(structuralOps)) >= int64(g.opts.CheckpointEvery) {
		g.checkpointLocked()
	}
}
