// Package shard implements a range-partitioned, sharded adaptive
// index: the base column is split into P contiguous value ranges, each
// backed by its own cracked-column index (internal/crackindex) with
// independent piece latches, and range queries fan out to the
// overlapping shards in parallel.
//
// The paper's concurrency-control techniques let many clients refine
// one cracked column safely, but that column remains a single latch
// domain and a single memory region; on a multi-core machine the
// structure latch and the hot head pieces serialize early refinement
// ("Main Memory Adaptive Indexing for Multi-core Systems", Alvarez et
// al., 2014, makes the same observation). Range partitioning removes
// the shared bottleneck at its root: queries whose ranges fall into
// different shards never touch a common latch, and a single broad
// query recruits several cores through the fan-out executor
// (executor.go). Within each shard the full per-piece protocol of the
// paper still applies, so per-shard refinement stays robust under
// skewed ranges (compare "Stochastic Database Cracking", Halim et al.,
// 2012 — stochastic cracking can be enabled per shard through
// Options.Index).
//
// Shard boundaries are chosen from a seeded sample of the input
// (quantile cuts), so shards are balanced for any input distribution
// without a full sort. The column is mutable and self-adjusting: the
// write path (update.go) routes inserts and deletes to the owning
// shard's epoch chain (internal/epoch) — an append-only chain of
// versioned differential files — and structural operations swap parts
// of the shard map atomically, reusing the piece-latch discipline one
// level up: readers navigate an immutable map snapshot and never block
// on a structural change, the same way piece readers never block on a
// crack of another piece. A group-apply merge seals only the shard's
// current epoch, so writers never park either: they roll over to the
// next epoch while the sealed prefix merges into the cracker array in
// the background. Online shard splits and merges cut the epoch chains
// consistently (every pending write folds into the successors' bases).
// Orchestration of those structural operations (thresholds, system
// transactions, WAL records) lives in internal/ingest.
package shard

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"adaptix/internal/crackindex"
	"adaptix/internal/engine"
	"adaptix/internal/epoch"
	"adaptix/internal/kernel"
	"adaptix/internal/metrics"
	"adaptix/internal/wcapture"
	"adaptix/internal/workload"
)

// Sentinel value bounds of the first and last shards.
const (
	minKey = math.MinInt64
	maxKey = math.MaxInt64
)

// Options configures a sharded column.
type Options struct {
	// Shards is the number of range partitions P. Default
	// runtime.GOMAXPROCS(0). Duplicate quantile cuts (heavily skewed or
	// tiny inputs) can reduce the effective count below P.
	Shards int
	// Workers bounds the number of fan-out sub-queries executing
	// concurrently across ALL queries on this column (the caller's own
	// goroutine runs one sub-query per query without a slot, so client
	// concurrency itself is never throttled). Default Shards.
	Workers int
	// SampleSize is the number of seeded sample points used to choose
	// the shard boundaries. Default 1024.
	SampleSize int
	// Seed drives the boundary sample. Default 1.
	Seed uint64
	// Index configures every per-shard cracked index (latching mode,
	// layout, scheduling, conflict policy, stochastic cracking, ...).
	// Ignored when Source is set.
	Index crackindex.Options
	// Source, when non-nil, builds each per-shard index from the
	// shard's value slice instead of the default cracked index, so the
	// fan-out executor can drive any engine.AggregateSource — sharded
	// adaptive merging, sharded hybrid crack-sort (adapt an Engine with
	// engine.SourceFromEngine). Custom-source shards carry the same
	// epoch-chain write surface as cracked shards: Insert and
	// DeleteValue route into the owning shard's differential epochs,
	// group-applies rebuild the shard through the Source factory, and
	// splits/merges work unchanged — every method is writable. Only
	// crack-boundary warm replay is specific to cracked shards.
	Source func(values []int64) engine.AggregateSource
	// Obs, when non-nil, receives the column's runtime observations:
	// per-query cost breakdowns, writer parks, and structural-operation
	// durations. It is also propagated into every per-shard cracked
	// index (Index.Obs) so latch waits are observed at the source.
	Obs *metrics.Observer
	// Capture, when non-nil and active, receives the workload stream:
	// every successful query's bounds, ctx tag, answer checksum,
	// touched rows, and epoch depth (the write-side records come from
	// internal/ingest). Nil-safe and disabled-by-default — the facade
	// threads a recorder through unconditionally.
	Capture *wcapture.Recorder
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Workers <= 0 {
		o.Workers = o.Shards
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 1024
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Obs != nil && o.Index.Obs == nil {
		o.Index.Obs = o.Obs
	}
	return o
}

// partAgg holds one shard lineage's mutable aggregates. rows and
// total are exact logical values (base plus the net epoch chain);
// minA/maxA only ever widen, which keeps pruning and the
// fully-covered fast path conservative but correct (a deleted
// extremum leaves them stale-wide).
//
// The struct is shared by pointer between a part and the successor a
// group-apply publishes: the merge changes the physical layout, never
// the logical contents, so the aggregates carry over exactly and a
// writer racing the publish updates the same counters either way.
// Split, merge, and the parked apply — which drain writers first —
// compute fresh exact aggregates instead.
type partAgg struct {
	rows  atomic.Int64
	total atomic.Int64
	minA  atomic.Int64 // maxKey while the shard is empty
	maxA  atomic.Int64 // minKey while the shard is empty
}

// part is one shard: a contiguous value range [loVal, hiVal) backed by
// its own index. The assigned range, the base slice and the index
// identity are immutable after the part is published in a shard map;
// contents change only through the epoch-chain write path, and the
// precomputed aggregates track them atomically (see update.go for the
// ordering contract readers rely on).
type part struct {
	loVal, hiVal int64                  // assigned range [loVal, hiVal); sentinels at the ends
	base         []int64                // slice the index was built over (immutable)
	ix           *crackindex.Index      // nil for custom-source shards
	src          engine.AggregateSource // query surface (adapts ix for cracked shards)

	// chain is the shard's versioned differential: pending writes in
	// an append-only chain of epoch files (every shard has one,
	// including custom-source shards). baseEpoch is the epoch
	// watermark the base slice incorporates: the chain holds exactly
	// the epochs after it.
	chain     *epoch.Chain
	baseEpoch int64

	// agg is shared with the successor across a group-apply (see
	// partAgg).
	agg *partAgg

	// Write gate. Writers hold wmu.RLock around a routed update and
	// re-check sealed; a structural operation that must reroute
	// writers (split, merge, parked apply — NOT the epoch-chain
	// group-apply) seals the part (blocking until in-flight writers
	// drain), rebuilds a successor, publishes the new shard map, and
	// closes replaced to wake parked writers.
	wmu      sync.RWMutex
	sealed   bool
	replaced chan struct{}
}

// shardMap is one immutable snapshot of the shard layout: shard i
// holds values in [bounds[i-1], bounds[i]) with sentinels at the ends.
// Structural operations build a new snapshot and swap the Column's
// pointer; readers load it once per query and keep a consistent view.
type shardMap struct {
	bounds []int64 // len(shards)-1 strictly increasing cut values
	shards []*part
}

// route returns the ordinal of the shard owning value v.
func (m *shardMap) route(v int64) int {
	return sort.Search(len(m.bounds), func(i int) bool { return m.bounds[i] > v })
}

// Column is a range-partitioned adaptive index over one column.
// It is safe for concurrent use, including concurrent updates and
// structural reorganization.
type Column struct {
	opts Options
	m    atomic.Pointer[shardMap]
	sem  chan struct{} // bounds extra fan-out workers (see Options.Workers)

	// epochSeq allocates epoch ids: one monotonic counter per column,
	// so a single watermark orders every epoch of every shard (the
	// checkpoint cut recovery relies on).
	epochSeq atomic.Int64

	// structMu serializes structural operations (SealEpoch, ApplyShard,
	// SplitShard, MergeShards, SealAllEpochs). Queries and routed
	// updates never take it.
	structMu sync.Mutex
}

// nextEpochID allocates the next epoch id.
func (c *Column) nextEpochID() int64 { return c.epochSeq.Add(1) }

// AdvanceEpoch raises the epoch-id counter to at least seq. Recovery
// calls this with the highest epoch id the recovered log mentions
// (watermark, sealed/applied ids, logical-write tags), so ids stay
// monotonic across process incarnations: without it, a reopened
// column would reissue low ids, and stale log segments surviving a
// failed truncation could alias old-incarnation records into the new
// epoch namespace (re-admitting already-snapshotted writes).
func (c *Column) AdvanceEpoch(seq int64) {
	for {
		cur := c.epochSeq.Load()
		if cur >= seq || c.epochSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// New builds a sharded column over values. Boundary selection samples
// the input (O(SampleSize log SampleSize)) and partitioning copies each
// value into its shard's slice (O(n log P)); the per-shard cracker
// arrays themselves are built lazily by the first query touching each
// shard, preserving the paper's "index initialization is a query side
// effect" discipline per shard.
func New(values []int64, opts Options) *Column {
	opts = opts.withDefaults()
	return build(values, chooseBounds(values, opts.Shards, opts.SampleSize, opts.Seed), opts)
}

// NewWithBounds builds a sharded column with an explicit shard map:
// shard i holds values in [bounds[i-1], bounds[i]). This is the
// recovery path — a shard map recovered from the structural WAL
// (wal.Recover) rebuilds the column with the boundary knowledge
// earlier splits and merges earned. Bounds are sanitized (sorted,
// deduplicated) first.
func NewWithBounds(values []int64, bounds []int64, opts Options) *Column {
	opts = opts.withDefaults()
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	dedup := b[:0]
	for _, v := range b {
		if len(dedup) == 0 || v > dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return build(values, dedup, opts)
}

// NewWithBoundsAndCracks builds a sharded column with an explicit
// shard map AND pre-cracks each shard to a set of crack boundaries —
// the checkpoint-recovery path. cracks holds one boundary list per
// shard in ordinal order (wal.Recover's Catalog.ShardCracks); each
// boundary is routed to the shard whose recovered range contains it,
// so a misaligned or flattened list still lands correctly. The first
// query after reopen finds the refinement earned before the crash
// already in place instead of starting from one monolithic piece per
// shard (paper §4.2: "the side effects of earlier queries may be
// re-created in the new index even without merging").
func NewWithBoundsAndCracks(values []int64, bounds []int64, cracks [][]int64, opts Options) *Column {
	c := NewWithBounds(values, bounds, opts)
	if c.opts.Source != nil {
		return c
	}
	m := c.m.Load()
	for _, set := range cracks {
		for _, b := range set {
			i := m.route(b)
			m.shards[i].ix.CrackAt(b)
			// A boundary exactly at a shard cut is also the left
			// neighbor's top edge (newPart's warm replay is inclusive
			// of shard edges for the same reason): replaying it there
			// spares that shard's first edge-clamped query a partition
			// pass. CrackAt is idempotent, so a boundary both shards
			// checkpointed costs only a second TOC lookup.
			if i > 0 && b == m.shards[i].loVal {
				m.shards[i-1].ix.CrackAt(b)
			}
		}
	}
	return c
}

func build(values []int64, bounds []int64, opts Options) *Column {
	n := len(bounds) + 1

	// Two passes: exact per-shard counts, then fill.
	route := func(v int64) int {
		return sort.Search(len(bounds), func(i int) bool { return bounds[i] > v })
	}
	counts := make([]int, n)
	for _, v := range values {
		counts[route(v)]++
	}
	slices := make([][]int64, n)
	for i := range slices {
		slices[i] = make([]int64, 0, counts[i])
	}
	for _, v := range values {
		i := route(v)
		slices[i] = append(slices[i], v)
	}

	c := &Column{
		opts: opts,
		sem:  make(chan struct{}, opts.Workers),
	}
	shards := make([]*part, n)
	for i := range shards {
		lo, hi := int64(minKey), int64(maxKey)
		if i > 0 {
			lo = bounds[i-1]
		}
		if i < len(bounds) {
			hi = bounds[i]
		}
		shards[i] = c.newPart(lo, hi, slices[i], nil)
	}
	c.m.Store(&shardMap{bounds: bounds, shards: shards})
	return c
}

// newPart builds one shard over vals with assigned range [loVal,
// hiVal), computing exact aggregates. warm, when non-empty, is a list
// of crack-boundary values replayed into the fresh index so the
// refinement knowledge of a predecessor part survives a rebuild
// (paper §4.2: "the side effects of earlier queries may be re-created
// in the new index").
func (c *Column) newPart(loVal, hiVal int64, vals []int64, warm []int64) *part {
	p := &part{
		loVal: loVal, hiVal: hiVal,
		base:     vals,
		agg:      new(partAgg),
		replaced: make(chan struct{}),
	}
	p.agg.minA.Store(maxKey)
	p.agg.maxA.Store(minKey)
	if len(vals) > 0 {
		mn, mx, total := kernel.MinMaxSum(vals)
		p.agg.rows.Store(int64(len(vals)))
		p.agg.total.Store(total)
		p.agg.minA.Store(mn)
		p.agg.maxA.Store(mx)
	}
	p.chain = epoch.NewChain(c.nextEpochID)
	p.baseEpoch = p.chain.OpenID() - 1
	if c.opts.Source != nil {
		p.src = c.opts.Source(vals)
		return p
	}
	p.buildIndex(vals, warm, c.opts.Index)
	return p
}

// buildIndex builds the part's cracked index over vals and warm-replays
// the given crack boundaries into it.
func (p *part) buildIndex(vals []int64, warm []int64, opts crackindex.Options) {
	p.ix = crackindex.New(vals, opts)
	p.src = engine.SourceFromIndex(p.ix)
	for _, b := range warm {
		// Inclusive of the shard edges: queries clamped at loVal/hiVal
		// crack exactly there (an empty edge piece), and replaying that
		// boundary spares the successor a full partition pass on its
		// first edge-clamped query.
		if b >= p.loVal && b <= p.hiVal {
			p.ix.CrackAt(b)
		}
	}
}

// chooseBounds picks up to shards-1 strictly increasing cut values
// from a seeded sample of values (equi-depth quantiles of the sample).
// Duplicate quantiles — skewed data, tiny inputs — are dropped, so the
// effective shard count can be smaller than requested but every range
// is non-degenerate.
func chooseBounds(values []int64, shards, sampleSize int, seed uint64) []int64 {
	if shards <= 1 || len(values) == 0 {
		return nil
	}
	var sample []int64
	if len(values) <= sampleSize {
		sample = append([]int64(nil), values...)
	} else {
		r := workload.NewRNG(seed)
		sample = make([]int64, sampleSize)
		for i := range sample {
			sample[i] = values[r.Intn(len(values))]
		}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	cuts := make([]int64, 0, shards-1)
	for i := 1; i < shards; i++ {
		cut := sample[i*len(sample)/shards]
		// A cut at the sample minimum would leave the first shard
		// empty; duplicate cuts would leave middle shards empty.
		if cut > sample[0] && (len(cuts) == 0 || cut > cuts[len(cuts)-1]) {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}

// NumShards returns the current number of shards (smaller than
// Options.Shards when quantile cuts collapsed; changes over time under
// rebalancing).
func (c *Column) NumShards() int { return len(c.m.Load().shards) }

// Bounds returns a copy of the strictly increasing shard cut values;
// shard i holds values in [Bounds()[i-1], Bounds()[i]) with sentinels
// at the ends.
func (c *Column) Bounds() []int64 {
	return append([]int64(nil), c.m.Load().bounds...)
}

// Rows returns the total number of logical rows across all shards.
func (c *Column) Rows() int {
	var n int64
	for _, s := range c.m.Load().shards {
		n += s.agg.rows.Load()
	}
	return int(n)
}

// Options returns the column configuration (with defaults applied).
func (c *Column) Options() Options { return c.opts }

// KeyDomain returns the smallest and largest key the per-shard
// aggregates currently track (conservative: a deleted extremum leaves
// the bounds stale-wide, and later inserts can widen them). ok is
// false while the column is empty. The facade uses this to size the
// key-range heatmap's fixed buckets.
func (c *Column) KeyDomain() (lo, hi int64, ok bool) {
	lo, hi = maxKey, minKey
	for _, s := range c.m.Load().shards {
		if s.agg.rows.Load() == 0 {
			continue
		}
		if mn := s.agg.minA.Load(); mn < lo {
			lo = mn
		}
		if mx := s.agg.maxA.Load(); mx > hi {
			hi = mx
		}
	}
	return lo, hi, lo <= hi
}

// ShardStat is an observability snapshot of one shard's refinement
// state.
type ShardStat struct {
	// Shard is the shard's ordinal (0-based, in value order).
	Shard int
	// LoVal and HiVal are the assigned value range [LoVal, HiVal);
	// the first and last shards carry math.MinInt64 / math.MaxInt64
	// sentinels.
	LoVal, HiVal int64
	// Rows is the number of logical rows in the shard (base plus net
	// differential updates).
	Rows int
	// PendingInserts and PendingDeletes count differential updates not
	// yet group-applied into the shard's cracker array, across every
	// epoch of the shard's chain (sealed and open).
	PendingInserts, PendingDeletes int
	// Epochs is the number of live epoch files in the shard's
	// differential chain (sealed-unapplied plus the open one).
	Epochs int
	// SealedEpochs is the number of sealed epochs awaiting a
	// group-apply merge.
	SealedEpochs int
	// OpenEpoch is the open epoch's id (monotonic per column; the last
	// sealed epoch's id in the transient window where a structural
	// operation has closed the chain).
	OpenEpoch int64
	// BaseEpoch is the epoch watermark the shard's base array
	// incorporates: every epoch up to it has been applied.
	BaseEpoch int64
	// EpochStats is the per-epoch breakdown of the chain, in chain
	// order (id, pending counts, sealed flag).
	EpochStats []epoch.Stat
	// Pieces is the current piece count of the shard's cracked index
	// (0 until the first query initializes it, and for custom-source
	// shards).
	Pieces int
	// Cracks counts the shard's physical reorganization actions.
	Cracks int64
	// Boundaries counts crack boundaries inserted into the shard's TOC.
	Boundaries int64
	// Conflicts counts latch acquisitions that blocked or failed.
	Conflicts int64
	// Skipped counts refinements forgone under conflict avoidance.
	Skipped int64
	// Depth is the refinement depth: the height of the binary
	// partitioning tree that would produce the current piece count
	// (ceil(log2(Pieces)); 0 for an unrefined shard).
	Depth int
	// MaxPiece is the widest index piece in rows (0 until the index
	// initializes; convergence telemetry).
	MaxPiece int
	// MaxPieceFrac is MaxPiece as a fraction of the shard's indexed
	// rows: near 1 means one unrefined piece still dominates the shard
	// (the stagnation signature under sequential workloads).
	MaxPieceFrac float64
	// PieceEntropy is the normalized Shannon entropy of the
	// piece-size distribution (1 = perfectly uniform pieces).
	PieceEntropy float64
}

// CrackBoundaries returns every shard's current crack boundary values
// in shard ordinal order (nil for uninitialized or custom-source
// shards). This is the structure a checkpoint persists: together with
// Bounds it captures the column's complete refinement knowledge, and
// NewWithBoundsAndCracks rebuilds an equivalent column from the two.
// Each shard's list is an atomic snapshot; concurrent queries may add
// boundaries between shards.
func (c *Column) CrackBoundaries() [][]int64 {
	m := c.m.Load()
	out := make([][]int64, len(m.shards))
	for i, s := range m.shards {
		if s.ix != nil {
			out[i] = s.ix.Boundaries()
		}
	}
	return out
}

// Values materializes the column's logical contents: every shard's
// base slice with its full epoch chain applied, concatenated in shard
// order. Each shard's contribution is internally consistent (each
// epoch file is snapshotted under its latch); a writer racing with the
// dump is either fully included or fully excluded per shard.
func (c *Column) Values() []int64 {
	return c.ValuesAt(math.MaxInt64)
}

// ValuesAt materializes the column's logical contents as of the epoch
// watermark: every shard's base slice plus only the epochs with id <=
// maxEpoch. With maxEpoch from SealAllEpochs the cut is exact — every
// epoch at or below the watermark is sealed (immutable), every write
// beyond it is excluded deterministically — which is what makes the
// checkpoint snapshot and the logical-record replay after it
// (wal.Recover's TailWrites) partition the write history without gap
// or overlap. The checkpoint writer persists this as the base snapshot
// accompanying a checkpoint.
func (c *Column) ValuesAt(maxEpoch int64) []int64 {
	m := c.m.Load()
	out := make([]int64, 0, c.Rows())
	for _, p := range m.shards {
		if p.chain == nil {
			out = append(out, p.base...)
			continue
		}
		ins, del := p.chain.Collect(maxEpoch)
		out = append(out, p.mergedValues(ins, del)...)
	}
	return out
}

// SealAllEpochs rolls every shard's open epoch past a common cut and
// returns the watermark: every write already routed lives in an epoch
// at or below it, every future write lands above it. Writers never
// park — they roll over to the fresh epochs — and empty open epochs
// are renumbered rather than churned. The checkpoint writer calls this
// before snapshotting (ValuesAt) so the persisted cut is exact.
func (c *Column) SealAllEpochs() int64 {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	w := c.epochSeq.Load()
	for _, p := range c.m.Load().shards {
		if p.chain != nil {
			p.chain.Roll()
		}
	}
	return w
}

// StatView is a statistics view of the whole column taken against ONE
// shard-map snapshot: bounds, per-shard stats, and the row total all
// describe the same shard-map epoch, so a split or merge racing the
// read can neither double-count nor drop a shard (separate Bounds() /
// Rows() / Snapshot() calls each load the map anew and can disagree).
type StatView struct {
	// Bounds is the shard cut values of the observed map (see Bounds).
	Bounds []int64
	// Rows is the total logical rows summed over the observed shards.
	Rows int
	// Shards is the per-shard breakdown, in shard order.
	Shards []ShardStat
}

// StatView returns a statistics view whose bounds, row total, and
// per-shard stats are all read against one shard-map snapshot.
func (c *Column) StatView() StatView {
	m := c.m.Load()
	v := StatView{
		Bounds: append([]int64(nil), m.bounds...),
		Shards: snapshotOf(m),
	}
	for i := range v.Shards {
		v.Rows += v.Shards[i].Rows
	}
	return v
}

// Snapshot returns a per-shard statistics snapshot, in shard order.
func (c *Column) Snapshot() []ShardStat {
	return snapshotOf(c.m.Load())
}

func snapshotOf(m *shardMap) []ShardStat {
	out := make([]ShardStat, len(m.shards))
	for i, s := range m.shards {
		st := ShardStat{
			Shard: i, LoVal: s.loVal, HiVal: s.hiVal,
			Rows: int(s.agg.rows.Load()),
		}
		if s.chain != nil {
			// One consistent pass over the chain: counts derive from
			// the per-file sealed flags, so the stat stays truthful
			// even in the transient window where a structural
			// operation has closed the chain (no open epoch).
			st.EpochStats = s.chain.Stats()
			st.Epochs = len(st.EpochStats)
			for _, es := range st.EpochStats {
				st.PendingInserts += es.Ins
				st.PendingDeletes += es.Del
				if es.Sealed {
					st.SealedEpochs++
				}
				st.OpenEpoch = es.ID
			}
			st.BaseEpoch = s.baseEpoch
		}
		if s.ix != nil {
			ixStats := s.ix.Stats()
			st.Pieces = s.ix.NumPieces()
			st.Cracks = ixStats.Cracks.Load()
			st.Boundaries = ixStats.Boundaries.Load()
			st.Conflicts = ixStats.Conflicts.Load()
			st.Skipped = ixStats.Skipped.Load()
			if st.Pieces > 1 {
				st.Depth = bits.Len(uint(st.Pieces - 1))
			}
			pr := s.ix.Profile()
			st.MaxPiece = pr.MaxPiece
			st.MaxPieceFrac = pr.MaxPieceFrac
			st.PieceEntropy = pr.Entropy
		}
		out[i] = st
	}
	return out
}

// Validate checks the partitioning invariants and every shard's index
// invariants; it must be called while no queries, updates, or
// structural operations are in flight.
func (c *Column) Validate() error {
	m := c.m.Load()
	if len(m.shards) != len(m.bounds)+1 {
		return fmt.Errorf("shard: %d shards for %d bounds", len(m.shards), len(m.bounds))
	}
	for i := 1; i < len(m.bounds); i++ {
		if m.bounds[i] <= m.bounds[i-1] {
			return fmt.Errorf("shard: bounds not strictly increasing at %d", i)
		}
	}
	for i, s := range m.shards {
		wantLo, wantHi := int64(minKey), int64(maxKey)
		if i > 0 {
			wantLo = m.bounds[i-1]
		}
		if i < len(m.bounds) {
			wantHi = m.bounds[i]
		}
		if s.loVal != wantLo || s.hiVal != wantHi {
			return fmt.Errorf("shard %d: range [%d,%d) disagrees with bounds [%d,%d)",
				i, s.loVal, s.hiVal, wantLo, wantHi)
		}
		if s.agg.rows.Load() > 0 && (s.agg.minA.Load() < s.loVal || s.agg.maxA.Load() >= s.hiVal) {
			return fmt.Errorf("shard %d: data [%d,%d] outside assigned range [%d,%d)",
				i, s.agg.minA.Load(), s.agg.maxA.Load(), s.loVal, s.hiVal)
		}
		if s.chain != nil {
			nIns, nDel := s.chain.Pending()
			if want := int64(len(s.base) + nIns - nDel); s.agg.rows.Load() != want {
				return fmt.Errorf("shard %d: rows %d, base %d + %d pending inserts - %d pending deletes = %d",
					i, s.agg.rows.Load(), len(s.base), nIns, nDel, want)
			}
		}
		if s.ix != nil {
			if err := s.ix.Validate(); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	return nil
}
