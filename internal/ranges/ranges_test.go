package ranges

import (
	"testing"
	"testing/quick"
)

func TestAddAndCovers(t *testing.T) {
	var s Set
	if !s.Covers(5, 5) {
		t.Fatal("empty range not covered")
	}
	if s.Covers(0, 1) {
		t.Fatal("empty set covers something")
	}
	s.Add(10, 20)
	s.Add(30, 40)
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{10, 20, true}, {12, 18, true}, {10, 11, true}, {19, 20, true},
		{9, 20, false}, {10, 21, false}, {15, 35, false}, {20, 30, false},
		{30, 40, true}, {25, 26, false},
	}
	for _, c := range cases {
		if got := s.Covers(c.lo, c.hi); got != c.want {
			t.Fatalf("Covers(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	if s.Len() != 2 || s.Total() != 20 {
		t.Fatalf("Len=%d Total=%d", s.Len(), s.Total())
	}
}

func TestAddCoalesces(t *testing.T) {
	var s Set
	s.Add(10, 20)
	s.Add(20, 30) // adjacent
	if s.Len() != 1 || !s.Covers(10, 30) {
		t.Fatalf("adjacent intervals not coalesced: len=%d", s.Len())
	}
	s.Add(5, 15) // overlapping left
	if s.Len() != 1 || !s.Covers(5, 30) {
		t.Fatal("left overlap not coalesced")
	}
	s.Add(50, 60)
	s.Add(40, 70) // engulfing
	if s.Len() != 2 || !s.Covers(40, 70) {
		t.Fatal("engulfing add broken")
	}
	s.Add(0, 100) // engulf everything
	if s.Len() != 1 || !s.Covers(0, 100) {
		t.Fatal("total engulf broken")
	}
	s.Add(10, 5) // empty add ignored
	if s.Len() != 1 {
		t.Fatal("empty add changed the set")
	}
}

func TestGaps(t *testing.T) {
	var s Set
	g := s.Gaps(0, 10)
	if len(g) != 1 || g[0] != [2]int64{0, 10} {
		t.Fatalf("gaps of empty set = %v", g)
	}
	s.Add(10, 20)
	s.Add(30, 40)
	cases := []struct {
		lo, hi int64
		want   [][2]int64
	}{
		{0, 50, [][2]int64{{0, 10}, {20, 30}, {40, 50}}},
		{10, 20, nil},
		{15, 35, [][2]int64{{20, 30}}},
		{20, 30, [][2]int64{{20, 30}}},
		{12, 18, nil},
		{5, 5, nil},
	}
	for _, c := range cases {
		got := s.Gaps(c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Fatalf("Gaps(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Gaps(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
}

func TestClone(t *testing.T) {
	var s Set
	s.Add(1, 5)
	c := s.Clone()
	c.Add(10, 20)
	if s.Covers(10, 20) {
		t.Fatal("clone shares storage with original")
	}
	if !c.Covers(1, 5) {
		t.Fatal("clone lost intervals")
	}
}

// TestQuickAgainstBitmap cross-checks Add/Covers/Gaps against a naive
// boolean-array implementation on a small domain.
func TestQuickAgainstBitmap(t *testing.T) {
	const domain = 64
	f := func(ops []uint16, probes []uint16) bool {
		var s Set
		var bm [domain]bool
		for _, op := range ops {
			lo := int64(op % domain)
			hi := int64((op >> 6) % domain)
			if lo > hi {
				lo, hi = hi, lo
			}
			s.Add(lo, hi)
			for i := lo; i < hi; i++ {
				bm[i] = true
			}
		}
		for _, pr := range probes {
			lo := int64(pr % domain)
			hi := int64((pr >> 6) % domain)
			if lo > hi {
				lo, hi = hi, lo
			}
			want := true
			for i := lo; i < hi; i++ {
				if !bm[i] {
					want = false
					break
				}
			}
			if s.Covers(lo, hi) != want {
				return false
			}
			// Gaps must exactly complement the bitmap within [lo,hi).
			gapped := make([]bool, domain)
			for _, g := range s.Gaps(lo, hi) {
				if g[0] >= g[1] {
					return false
				}
				for i := g[0]; i < g[1]; i++ {
					gapped[i] = true
				}
			}
			for i := lo; i < hi; i++ {
				if gapped[i] == bm[i] { // gap iff not covered
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
