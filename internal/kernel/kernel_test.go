package kernel

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// refCount/refSum/refMinMaxSum are the naive scalar references the
// chunked kernels are differentially tested against.
func refCount(v []int64, lo, hi int64) int64 {
	var c int64
	for _, x := range v {
		if x >= lo && x < hi {
			c++
		}
	}
	return c
}

func refSum(v []int64, lo, hi int64) int64 {
	var s int64
	for _, x := range v {
		if x >= lo && x < hi {
			s += x
		}
	}
	return s
}

func refMinMaxSum(v []int64) (int64, int64, int64) {
	mn, mx, s := int64(math.MaxInt64), int64(math.MinInt64), int64(0)
	for _, x := range v {
		s += x
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx, s
}

// checkAll cross-checks every kernel against the scalar reference on
// one (values, bounds) case.
func checkAll(t *testing.T, v []int64, lo, hi int64) {
	t.Helper()
	if got, want := CountRange(v, lo, hi), refCount(v, lo, hi); got != want {
		t.Errorf("CountRange(%d values, [%d,%d)) = %d, want %d", len(v), lo, hi, got, want)
	}
	if got, want := SumRange(v, lo, hi), refSum(v, lo, hi); got != want {
		t.Errorf("SumRange(%d values, [%d,%d)) = %d, want %d", len(v), lo, hi, got, want)
	}
	var plain int64
	for _, x := range v {
		plain += x
	}
	if got := Sum(v); got != plain {
		t.Errorf("Sum(%d values) = %d, want %d", len(v), got, plain)
	}
	mn, mx, s := MinMaxSum(v)
	wmn, wmx, ws := refMinMaxSum(v)
	if mn != wmn || mx != wmx || s != ws {
		t.Errorf("MinMaxSum = (%d,%d,%d), want (%d,%d,%d)", mn, mx, s, wmn, wmx, ws)
	}
	if Min(v) != wmn || Max(v) != wmx {
		t.Errorf("Min/Max = (%d,%d), want (%d,%d)", Min(v), Max(v), wmn, wmx)
	}
}

func TestKernelsEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		v      []int64
		lo, hi int64
	}{
		{"empty", nil, 0, 10},
		{"empty-inverted", []int64{}, 10, 0},
		{"one-in", []int64{5}, 5, 6},
		{"one-out", []int64{5}, 6, 7},
		{"max-bound", []int64{math.MaxInt64, math.MaxInt64 - 1, 0, -1}, math.MaxInt64 - 1, math.MaxInt64},
		{"min-bound", []int64{math.MinInt64, math.MinInt64 + 1, 0}, math.MinInt64, math.MinInt64 + 1},
		{"full-domain", []int64{math.MinInt64, -7, 0, 7, math.MaxInt64}, math.MinInt64, math.MaxInt64},
		{"inverted", []int64{1, 2, 3}, 3, 1},
		{"chunk-exact", seq(ChunkSize), 10, 50},
		{"chunk-plus-one", seq(ChunkSize + 1), 0, ChunkSize + 1},
		{"chunk-minus-one", seq(ChunkSize - 1), -5, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkAll(t, c.v, c.lo, c.hi) })
	}
}

func seq(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	return v
}

func TestMask64(t *testing.T) {
	v := seq(ChunkSize)
	m := Mask64(v, 8, 24)
	for j := range v {
		want := v[j] >= 8 && v[j] < 24
		if got := m>>uint(j)&1 == 1; got != want {
			t.Fatalf("bit %d = %v, want %v", j, got, want)
		}
	}
	// Short chunks leave high bits clear.
	if m := Mask64(v[:3], math.MinInt64, math.MaxInt64); m != 0b111 {
		t.Fatalf("short-chunk mask = %b, want 111", m)
	}
	if bits.OnesCount64(Mask64(nil, 0, 1)) != 0 {
		t.Fatal("empty mask not zero")
	}
}

// TestDifferentialWorkloads is the property-based harness: the chunked
// kernels must agree with the scalar reference on every generated
// workload shape — random, sequential, skewed, duplicate-heavy — for
// random bounds including extreme ones.
func TestDifferentialWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gens := map[string]func(n int) []int64{
		"random": func(n int) []int64 {
			v := make([]int64, n)
			for i := range v {
				v[i] = int64(rng.Uint64())
			}
			return v
		},
		"sequential": func(n int) []int64 {
			v := make([]int64, n)
			for i := range v {
				v[i] = int64(i) - int64(n/2)
			}
			return v
		},
		"skewed": func(n int) []int64 {
			// Zipf-ish: most values near zero, a heavy tail.
			z := rand.NewZipf(rng, 1.2, 8, uint64(math.MaxUint32))
			v := make([]int64, n)
			for i := range v {
				x := int64(z.Uint64())
				if rng.Intn(2) == 0 {
					x = -x
				}
				v[i] = x
			}
			return v
		},
		"duplicate-heavy": func(n int) []int64 {
			v := make([]int64, n)
			for i := range v {
				v[i] = int64(rng.Intn(4)) // 4 distinct values
			}
			return v
		},
	}
	bounds := func(v []int64) (int64, int64) {
		switch rng.Intn(4) {
		case 0:
			return math.MinInt64, math.MaxInt64
		case 1:
			return math.MaxInt64 - 1, math.MaxInt64
		default:
			a, b := int64(rng.Uint64()), int64(rng.Uint64())
			if len(v) > 0 && rng.Intn(2) == 0 {
				a, b = v[rng.Intn(len(v))], v[rng.Intn(len(v))]+1
			}
			if a > b {
				a, b = b, a
			}
			return a, b
		}
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 3, ChunkSize - 1, ChunkSize, ChunkSize + 1, 255, 1024, 4097} {
				v := gen(n)
				for trial := 0; trial < 8; trial++ {
					lo, hi := bounds(v)
					checkAll(t, v, lo, hi)
				}
			}
		})
	}
}

// TestKernelsDoNotAllocate pins the kernels' own allocation behavior
// independently of any caller.
func TestKernelsDoNotAllocate(t *testing.T) {
	v := seq(4096)
	var sink int64
	if a := testing.AllocsPerRun(50, func() {
		sink += CountRange(v, 100, 4000)
		sink += SumRange(v, 100, 4000)
		sink += Sum(v)
		mn, mx, s := MinMaxSum(v)
		sink += mn + mx + s
	}); a != 0 {
		t.Fatalf("kernels allocated %.1f times per run, want 0", a)
	}
	_ = sink
}
