package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	var allZero = true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestInt64nBounds(t *testing.T) {
	f := func(seed uint64, n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Int64n(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64nRoughUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, buckets, draws = 1000, 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Int64n(n)/(n/buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("bucket %d count %d outside 20%% of expected %d", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	out := make([]int64, 1000)
	NewRNG(11).Perm(out)
	seen := make(map[int64]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= int64(len(out)) || seen[v] {
			t.Fatalf("value %d out of range or duplicated", v)
		}
		seen[v] = true
	}
	// Sanity: the permutation should not be identity.
	identity := true
	for i, v := range out {
		if int64(i) != v {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("Perm returned the identity permutation")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestDatasetUniqueUniform(t *testing.T) {
	d := NewUniqueUniform(5000, 3)
	if d.Domain != 5000 || len(d.Values) != 5000 {
		t.Fatalf("bad dataset shape: domain=%d len=%d", d.Domain, len(d.Values))
	}
	seen := make(map[int64]bool)
	for _, v := range d.Values {
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestDatasetClosedFormAggregates(t *testing.T) {
	// Unique 0..n-1 values: count and sum over [lo, hi) have closed forms.
	d := NewUniqueUniform(1000, 9)
	lo, hi := int64(100), int64(350)
	if got, want := d.TrueCount(lo, hi), hi-lo; got != want {
		t.Fatalf("TrueCount = %d, want %d", got, want)
	}
	want := (hi - 1 + lo) * (hi - lo) / 2
	if got := d.TrueSum(lo, hi); got != want {
		t.Fatalf("TrueSum = %d, want %d", got, want)
	}
}

func TestDuplicatesDataset(t *testing.T) {
	d := NewDuplicates(10000, 100, 1)
	if len(d.Values) != 10000 {
		t.Fatal("bad length")
	}
	for _, v := range d.Values {
		if v < 0 || v >= 100 {
			t.Fatalf("value %d outside domain", v)
		}
	}
	// With 10000 draws over 100 values duplicates are certain.
	if d.TrueCount(0, 100) != 10000 {
		t.Fatal("TrueCount over whole domain must equal n")
	}
}

func TestUniformGeneratorSelectivity(t *testing.T) {
	const domain = 1 << 20
	for _, sel := range []float64{0.0001, 0.01, 0.1, 0.5, 0.9} {
		g := NewUniform(Count, domain, sel, 17)
		want := int64(sel * domain)
		for i := 0; i < 200; i++ {
			q := g.Next()
			if q.Hi-q.Lo != want {
				t.Fatalf("sel %v: width %d, want %d", sel, q.Hi-q.Lo, want)
			}
			if q.Lo < 0 || q.Hi > domain {
				t.Fatalf("sel %v: range [%d,%d) outside domain", sel, q.Lo, q.Hi)
			}
		}
	}
}

func TestUniformGeneratorFullSelectivity(t *testing.T) {
	g := NewUniform(Sum, 1000, 1.0, 2)
	q := g.Next()
	if q.Lo != 0 || q.Hi != 1000 {
		t.Fatalf("100%% selectivity should cover the domain, got [%d,%d)", q.Lo, q.Hi)
	}
}

func TestUniformGeneratorPanicsOnBadSelectivity(t *testing.T) {
	for _, sel := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("selectivity %v did not panic", sel)
				}
			}()
			NewUniform(Count, 1000, sel, 1)
		}()
	}
}

func TestSequentialGeneratorSweeps(t *testing.T) {
	g := NewSequential(Count, 100, 0.1)
	for rep := 0; rep < 3; rep++ {
		for i := int64(0); i < 10; i++ {
			q := g.Next()
			if q.Lo != i*10 || q.Hi != (i+1)*10 {
				t.Fatalf("rep %d step %d: got [%d,%d)", rep, i, q.Lo, q.Hi)
			}
		}
	}
}

func TestZipfGeneratorBoundsAndSkew(t *testing.T) {
	const domain = 1 << 16
	g := NewZipf(Sum, domain, 0.01, 1.0, 23)
	firstBucket := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		q := g.Next()
		if q.Lo < 0 || q.Hi > domain || q.Hi-q.Lo <= 0 {
			t.Fatalf("bad range [%d,%d)", q.Lo, q.Hi)
		}
		if q.Lo < domain/64 {
			firstBucket++
		}
	}
	// Bucket 0 has weight 1/H(64) ~ 21%; uniform would give ~1.6%.
	if firstBucket < draws/10 {
		t.Fatalf("zipf skew too weak: %d/%d draws in the hottest bucket", firstBucket, draws)
	}
}

func TestFixedReplaysDeterministically(t *testing.T) {
	a := Fixed(NewUniform(Sum, 1<<20, 0.01, 99), 256)
	b := Fixed(NewUniform(Sum, 1<<20, 0.01, 99), 256)
	if len(a) != 256 {
		t.Fatal("wrong length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPeriodicGeneratorCycles(t *testing.T) {
	const domain = 1000
	g := NewPeriodic(Count, domain, 0.01, 4, 5, 3)
	winSize := int64(domain / 4)
	// First burst stays in window 0, second in window 1, etc.
	for burst := 0; burst < 8; burst++ {
		wantWin := int64(burst % 4)
		for i := 0; i < 5; i++ {
			q := g.Next()
			if q.Lo < wantWin*winSize || q.Lo >= (wantWin+1)*winSize {
				t.Fatalf("burst %d query %d: lo %d outside window %d", burst, i, q.Lo, wantWin)
			}
			if q.Hi > domain || q.Hi <= q.Lo {
				t.Fatalf("bad range [%d,%d)", q.Lo, q.Hi)
			}
		}
	}
}

func TestPeriodicGeneratorClamps(t *testing.T) {
	g := NewPeriodic(Sum, 100, 0.5, 0, 0, 1) // degenerate params clamped
	for i := 0; i < 10; i++ {
		q := g.Next()
		if q.Lo < 0 || q.Hi > 100 || q.Lo >= q.Hi {
			t.Fatalf("bad range [%d,%d)", q.Lo, q.Hi)
		}
	}
}

func TestShiftingGeneratorDrifts(t *testing.T) {
	const domain = 100000
	g := NewShifting(Count, domain, 0.001, 0.05, 500, 7)
	var first, last int64
	const n = 100
	for i := 0; i < n; i++ {
		q := g.Next()
		if q.Lo < 0 || q.Hi > domain {
			t.Fatalf("range [%d,%d) outside domain", q.Lo, q.Hi)
		}
		if i < 10 {
			first += q.Lo
		}
		if i >= n-10 {
			last += q.Lo
		}
	}
	// The window slid right: late los are larger on average.
	if last <= first {
		t.Fatalf("window did not drift: first-10 sum %d, last-10 sum %d", first, last)
	}
}

func TestQueryKindString(t *testing.T) {
	if Count.String() != "count" || Sum.String() != "sum" {
		t.Fatal("bad QueryKind strings")
	}
	if QueryKind(99).String() != "unknown" {
		t.Fatal("bad unknown QueryKind string")
	}
}
