package serve

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/ingest"
	"adaptix/internal/metrics"
	"adaptix/internal/shard"
)

// Tunable defaults.
const (
	// DefaultMaxInFlight is the default global in-flight request budget.
	DefaultMaxInFlight = 1024
	// DefaultConnQuota is the default per-connection in-flight quota.
	DefaultConnQuota = 256
	// DefaultFrameTimeout is the default budget for finishing a frame
	// once its first byte has arrived (slow-loris defense; waiting for a
	// frame to START is unbounded — an idle pipelined connection is
	// legitimate).
	DefaultFrameTimeout = 10 * time.Second
)

// ErrOverloaded is the admission-control fast reject: the global
// in-flight budget or a connection quota is exhausted. The wire
// carries it as StatusOverloaded.
var ErrOverloaded = errors.New("serve: overloaded")

// Backend is the engine surface the server fronts. Col and Ing are
// required; Obs may be nil (instruments fall back to private,
// unexported histograms so the scheduler never branches).
type Backend struct {
	// Col executes queries (with fan-out, covered aggregates, and crack
	// refinement).
	Col *shard.Column
	// Ing routes writes into per-shard differential epochs.
	Ing *ingest.Coordinator
	// Obs, when non-nil, receives the serving instruments in its
	// registry (adaptix_serve_* series on /metrics).
	Obs *metrics.Observer
}

// Options tunes the server. The zero value gives the defaults.
type Options struct {
	// Window is the batching window: queries arriving within one window
	// for the same home shard coalesce into one dispatch. 0 means
	// DefaultWindow; negative disables batching entirely (every query
	// dispatches immediately on its own goroutine — the unbatched
	// baseline the ServeBatching experiment compares against).
	Window time.Duration
	// MaxInFlight is the global admitted-but-unanswered request budget
	// (0 = DefaultMaxInFlight). Requests beyond it are rejected with
	// StatusOverloaded without queueing.
	MaxInFlight int
	// ConnQuota is the per-connection in-flight cap (0 =
	// DefaultConnQuota): one greedy pipelined connection cannot consume
	// the whole global budget.
	ConnQuota int
	// FrameTimeout bounds how long a started frame may take to finish
	// arriving (0 = DefaultFrameTimeout). Connections that exceed it
	// are closed (slow-loris defense).
	FrameTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	if o.ConnQuota == 0 {
		o.ConnQuota = DefaultConnQuota
	}
	if o.FrameTimeout == 0 {
		o.FrameTimeout = DefaultFrameTimeout
	}
	return o
}

// Server is the serving front: it owns a listener, speaks the frame
// protocol with any number of pipelined connections, batches queries
// through the per-shard scheduler, and enforces the admission budget.
// Create one with New; stop it with Drain (graceful) or Close (abrupt).
type Server struct {
	b  Backend
	o  Options
	ln net.Listener
	sc *scheduler

	start    time.Time
	inflight atomic.Int64 // admitted and not yet answered
	draining atomic.Bool

	reqWG  sync.WaitGroup // admitted requests
	connWG sync.WaitGroup // accept loop + connection goroutines

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	// Serving counters (cache-local atomics exposed as CounterFuncs).
	requests atomic.Int64 // frames decoded into requests
	served   atomic.Int64 // responses written with any status
	rejects  atomic.Int64 // StatusOverloaded fast rejects
	batches  atomic.Int64 // scheduler dispatches
	batched  atomic.Int64 // requests that went through a batch
	coal     atomic.Int64 // requests answered by a batch-mate's execution

	batchSize  *metrics.Histogram
	queueDepth *metrics.Histogram
}

// New starts a server over ln. It takes ownership of the listener and
// begins accepting immediately; callers that need the bound address
// (e.g. ":0" listeners in tests) read it from Addr.
func New(b Backend, ln net.Listener, o Options) *Server {
	o = o.withDefaults()
	s := &Server{
		b:     b,
		o:     o,
		ln:    ln,
		start: time.Now(),
		conns: make(map[*conn]struct{}),
	}
	if reg := b.Obs.Registry(); reg != nil {
		s.batchSize = reg.Histogram("adaptix_serve_batch_size",
			"Requests per batch-scheduler dispatch.")
		s.queueDepth = reg.Histogram("adaptix_serve_queue_depth",
			"Queries parked in the batch scheduler after a dispatch.")
		reg.CounterFunc("adaptix_serve_requests_total",
			"Requests decoded off the wire.", s.requests.Load)
		reg.CounterFunc("adaptix_serve_served_total",
			"Responses written, any status (the served-qps source).", s.served.Load)
		reg.CounterFunc("adaptix_serve_rejects_total",
			"Admission-control fast rejects (StatusOverloaded).", s.rejects.Load)
		reg.CounterFunc("adaptix_serve_batches_total",
			"Batch-scheduler dispatches.", s.batches.Load)
		reg.CounterFunc("adaptix_serve_coalesced_total",
			"Requests answered by a batch-mate's execution (exact-duplicate bounds).", s.coal.Load)
		reg.CounterFunc("adaptix_serve_inflight",
			"Requests admitted and not yet answered.", s.inflight.Load)
	} else {
		s.batchSize = &metrics.Histogram{}
		s.queueDepth = &metrics.Histogram{}
	}
	if o.Window > 0 {
		s.sc = &scheduler{
			col:        b.Col,
			window:     o.Window,
			pending:    make(map[int]*batch),
			batchSize:  s.batchSize,
			queueDepth: s.queueDepth,
			batches:    &s.batches,
			batchedReq: &s.batched,
			coalesced:  &s.coal,
		}
	}
	s.connWG.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Stats is the server's live serving readout (the `serve` block of the
// /snapshot document, and what cmd/adaptixstat renders as the serving
// panel).
type Stats struct {
	// Addr is the listener's bound address.
	Addr string `json:"addr"`
	// WindowUS is the batching window in microseconds (0 = batching
	// disabled).
	WindowUS int64 `json:"window_us"`
	// Conns is the number of live connections.
	Conns int `json:"conns"`
	// InFlight is the number of admitted, unanswered requests.
	InFlight int64 `json:"in_flight"`
	// Requests, Served, and Rejected count requests decoded, responses
	// written (any status), and admission fast rejects.
	Requests int64 `json:"requests"`
	Served   int64 `json:"served"`
	Rejected int64 `json:"rejected"`
	// QPS is responses written per second of server uptime.
	QPS float64 `json:"qps"`
	// Batches and Batched count scheduler dispatches and the requests
	// they carried; Coalesced of those were answered by a batch-mate's
	// execution (exact-duplicate bounds). CoalesceRate is
	// Coalesced/Batched.
	Batches      int64   `json:"batches"`
	Batched      int64   `json:"batched"`
	Coalesced    int64   `json:"coalesced"`
	CoalesceRate float64 `json:"coalesce_rate"`
	// BatchP50 and BatchP99 are batch-size quantiles; QueueP50 and
	// QueueP99 are scheduler queue-depth quantiles.
	BatchP50 int64 `json:"batch_p50"`
	BatchP99 int64 `json:"batch_p99"`
	QueueP50 int64 `json:"queue_p50"`
	QueueP99 int64 `json:"queue_p99"`
	// Draining reports whether the server has begun graceful drain.
	Draining bool `json:"draining"`
}

// Stats returns the live serving readout.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	bs := s.batchSize.Snapshot()
	qd := s.queueDepth.Snapshot()
	st := Stats{
		Addr:      s.ln.Addr().String(),
		WindowUS:  0,
		Conns:     conns,
		InFlight:  s.inflight.Load(),
		Requests:  s.requests.Load(),
		Served:    s.served.Load(),
		Rejected:  s.rejects.Load(),
		Batches:   s.batches.Load(),
		Batched:   s.batched.Load(),
		Coalesced: s.coal.Load(),
		BatchP50:  bs.Quantile(0.50),
		BatchP99:  bs.Quantile(0.99),
		QueueP50:  qd.Quantile(0.50),
		QueueP99:  qd.Quantile(0.99),
		Draining:  s.draining.Load(),
	}
	if s.o.Window > 0 {
		st.WindowUS = s.o.Window.Microseconds()
	}
	if up := time.Since(s.start).Seconds(); up > 0 {
		st.QPS = float64(st.Served) / up
	}
	if st.Batched > 0 {
		st.CoalesceRate = float64(st.Coalesced) / float64(st.Batched)
	}
	return st
}

// Drain shuts the server down gracefully: stop accepting, reject new
// requests with StatusDraining, flush pending batches, wait for
// admitted requests to finish (bounded by ctx), then close all
// connections. It returns ctx.Err() if in-flight work outlived the
// context, nil otherwise. Final durability (checkpointing) is the
// owner's job — the facade layers it on top.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close() // unblocks the accept loop
	if s.sc != nil {
		s.sc.flush()
	}
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeConns(true)
	s.connWG.Wait()
	return err
}

// Close shuts the server down abruptly: the listener and every
// connection close now; in-flight requests are abandoned mid-frame.
func (s *Server) Close() error {
	s.draining.Store(true)
	err := s.ln.Close()
	s.closeConns(false)
	s.connWG.Wait()
	return err
}

// closeConns closes every live connection; graceful lets each writer
// flush its queued responses first (drained requests get their
// answers), abrupt cuts the sockets now.
func (s *Server) closeConns(graceful bool) {
	s.mu.Lock()
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		if graceful {
			c.shutdown()
		} else {
			c.kill()
		}
	}
}

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Drain/Close)
		}
		c := &conn{
			s:    s,
			nc:   nc,
			out:  make(chan Response, 64),
			dead: make(chan struct{}),
			clsq: make(chan struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// conn is the per-connection state: the response channel feeding the
// writer goroutine, the quota, and the dead signal that unblocks
// anyone trying to reply after the connection failed.
type conn struct {
	s       *Server
	nc      net.Conn
	out     chan Response
	dead    chan struct{} // closed by kill: connection is gone
	clsq    chan struct{} // closed by shutdown: flush queued responses, then die
	killOn  sync.Once
	closeOn sync.Once
	quota   atomic.Int64
}

func (s *Server) serveConn(c *conn) {
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		c.writeLoop()
	}()
	c.readLoop()
	c.kill()
	wwg.Wait()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.connWG.Done()
}

// kill marks the connection dead: repliers stop blocking, the writer
// exits, and the socket closes.
func (c *conn) kill() {
	c.killOn.Do(func() {
		close(c.dead)
		c.nc.Close()
	})
}

// shutdown asks the writer to flush everything already queued and then
// close the socket (graceful drain: answered requests reach the wire).
func (c *conn) shutdown() {
	c.closeOn.Do(func() { close(c.clsq) })
}

// writeLoop is the connection's single writer: it encodes responses
// off the channel, coalescing everything already queued into one
// buffered write (pipelined clients get one syscall per burst, not per
// response).
func (c *conn) writeLoop() {
	bw := bufio.NewWriter(c.nc)
	buf := make([]byte, 0, FrameHeader+ResponseLen)
	for {
		var r Response
		select {
		case r = <-c.out:
		case <-c.dead:
			return
		case <-c.clsq:
			// Graceful close: everything already queued goes out, then
			// the socket closes.
			for {
				select {
				case r := <-c.out:
					buf = AppendResponseFrame(buf[:0], r)
					if _, err := bw.Write(buf); err != nil {
						c.kill()
						return
					}
				default:
					bw.Flush()
					c.kill()
					return
				}
			}
		}
		for {
			buf = AppendResponseFrame(buf[:0], r)
			if _, err := bw.Write(buf); err != nil {
				c.kill()
				return
			}
			select {
			case r = <-c.out:
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			c.kill()
			return
		}
	}
}

// reply queues r for the writer, dropping it if the connection died
// (the client is gone; nobody is owed the answer).
func (c *conn) reply(r Response) {
	select {
	case c.out <- r:
	case <-c.dead:
	}
}

// readLoop decodes frames and admits requests until the connection
// errors, times out mid-frame, or the server shuts down.
func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	buf := make([]byte, 0, RequestLen)
	for {
		// Waiting for a frame to start is unbounded (idle pipelined
		// connections are legitimate); once bytes are buffered or the
		// first byte arrives, the rest of the frame must land within
		// FrameTimeout. Peek blocks for the first byte without consuming.
		c.nc.SetReadDeadline(time.Time{})
		if _, err := br.Peek(1); err != nil {
			return
		}
		c.nc.SetReadDeadline(time.Now().Add(c.s.o.FrameTimeout))
		p, err := ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = p[:0]
		q, err := DecodeRequest(p)
		if err != nil {
			return
		}
		c.s.handle(c, q)
	}
}

// handle admits one decoded request and routes it: fast path rejects
// (draining, over budget, bad op) answer inline; queries go through
// the batch scheduler; writes and stats execute on their own
// goroutine.
func (s *Server) handle(c *conn, q Request) {
	s.requests.Add(1)
	if s.draining.Load() {
		s.served.Add(1)
		c.reply(Response{ID: q.ID, Op: q.Op, Status: StatusDraining})
		return
	}
	if q.Op < OpCount || q.Op > OpStats {
		s.served.Add(1)
		c.reply(Response{ID: q.ID, Op: q.Op, Status: StatusBadRequest})
		return
	}
	// Admission: per-connection quota first, then the global budget,
	// with rollback on the half-admitted path. Rejects must stay fast —
	// no queueing, no engine work.
	if c.quota.Add(1) > int64(s.o.ConnQuota) {
		c.quota.Add(-1)
		s.rejects.Add(1)
		s.served.Add(1)
		c.reply(Response{ID: q.ID, Op: q.Op, Status: StatusOverloaded})
		return
	}
	if s.inflight.Add(1) > int64(s.o.MaxInFlight) {
		s.inflight.Add(-1)
		c.quota.Add(-1)
		s.rejects.Add(1)
		s.served.Add(1)
		c.reply(Response{ID: q.ID, Op: q.Op, Status: StatusOverloaded})
		return
	}
	s.reqWG.Add(1)
	var deadline time.Time
	if q.TTLus > 0 {
		deadline = time.Now().Add(time.Duration(q.TTLus) * time.Microsecond)
	}
	finish := func(r Response) {
		c.reply(r)
		s.served.Add(1)
		s.inflight.Add(-1)
		c.quota.Add(-1)
		s.reqWG.Done()
	}
	if q.Op.batchable() && s.sc != nil {
		s.sc.enqueue(pendReq{
			id: q.ID, op: q.Op, lo: q.Lo, hi: q.Hi,
			deadline: deadline, finish: finish,
		})
		return
	}
	go s.execDirect(q, deadline, finish)
}

// execDirect serves one request outside the batch scheduler: writes,
// stats, and — when batching is disabled — queries too.
func (s *Server) execDirect(q Request, deadline time.Time, finish func(Response)) {
	ctx := context.Background()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	r := Response{ID: q.ID, Op: q.Op, Status: StatusOK}
	var err error
	switch q.Op {
	case OpCount:
		r.Value, _, err = s.b.Col.Count(ctx, q.Lo, q.Hi)
	case OpSum:
		r.Value, _, err = s.b.Col.Sum(ctx, q.Lo, q.Hi)
	case OpInsert:
		err = s.b.Ing.Insert(ctx, q.Lo)
	case OpDelete:
		var found bool
		found, err = s.b.Ing.DeleteValue(ctx, q.Lo)
		if found {
			r.Value = 1
		}
	case OpStats:
		r.Value = int64(s.b.Col.Rows())
		r.Aux = int64(s.b.Col.NumShards())
	}
	if err != nil {
		r.Status = StatusInternal
		r.Value, r.Aux = 0, 0
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) || ctx.Err() != nil {
			r.Status = StatusDeadline
		}
	}
	finish(r)
}
