// Package crackindex implements the cracked-column index — selection
// cracking over a column-store array — together with the paper's
// concurrency-control protocols for the index-refining side effects of
// read-only queries (paper §5).
//
// The index consists of (paper §5.2):
//
//   - a cracker array (internal/cracker): a dense auxiliary copy of the
//     column, continuously reorganized in place;
//   - an AVL tree (internal/avltree) as table of contents, mapping
//     crack boundary values to pieces of the array;
//   - a doubly-linked list of piece descriptors, each owning a
//     short-term read/write latch and a sorted waiter queue
//     (internal/latch).
//
// Three concurrency-control modes are provided (paper §5.3):
//
//   - LatchNone: no concurrency control at all; only safe under
//     single-threaded access. Used to measure the administrative
//     overhead of the CC machinery (Figure 13).
//   - LatchColumn: one read/write latch per column. Cracking takes the
//     write latch, aggregation the read latch.
//   - LatchPiece: one read/write latch per piece. Two queries can crack
//     different pieces of the same column concurrently; cracking and
//     aggregation on different pieces also proceed concurrently.
//
// Refinement is optional: with OnConflict == Skip, a query that cannot
// acquire a write latch immediately forgoes cracking and answers from a
// read-latched scan of the unrefined piece(s) (conflict avoidance,
// paper §3.3).
package crackindex

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/avltree"
	"adaptix/internal/cracker"
	"adaptix/internal/latch"
	"adaptix/internal/metrics"
)

// LatchMode selects the concurrency-control granularity (paper §5.3).
type LatchMode int

const (
	// LatchPiece uses one latch per array piece (finest granularity).
	LatchPiece LatchMode = iota
	// LatchColumn uses a single latch for the whole column.
	LatchColumn
	// LatchNone disables concurrency control (single-threaded only).
	LatchNone
)

// String returns the mode's display name.
func (m LatchMode) String() string {
	switch m {
	case LatchPiece:
		return "piece"
	case LatchColumn:
		return "column"
	default:
		return "none"
	}
}

// ConflictPolicy selects behaviour when a write latch is contended.
type ConflictPolicy int

const (
	// Wait blocks until the latch is granted (default).
	Wait ConflictPolicy = iota
	// Skip forgoes the optional index refinement on contention and
	// answers the query from a scan instead (conflict avoidance).
	Skip
)

// String returns the policy's display name.
func (p ConflictPolicy) String() string {
	if p == Skip {
		return "skip"
	}
	return "wait"
}

// Sentinel value bounds of the head and tail pieces.
const (
	minKey = math.MinInt64
	maxKey = math.MaxInt64
)

// Options configures an Index.
type Options struct {
	// Layout selects the cracker-array representation (Figure 7).
	Layout cracker.Layout
	// Latching selects the CC granularity.
	Latching LatchMode
	// Scheduling selects the order in which queued cracks are granted
	// a piece's write latch (middle-first per paper §5.3, or FIFO).
	Scheduling latch.Policy
	// OnConflict selects waiting versus conflict avoidance.
	OnConflict ConflictPolicy
	// ParallelBounds cracks the two bounds of a range predicate
	// concurrently when they fall into different pieces (§5.3).
	ParallelBounds bool
	// GroupCracking enables the "dynamic algorithms" extension the
	// paper sketches in §7: a query that holds a piece's write latch
	// also cracks for the bounds of all queries queued on that piece,
	// in one multi-pivot pass. Waiters then find their boundary
	// already in place when granted the latch.
	GroupCracking bool
	// Stochastic enables stochastic cracking [16] (cited in §2):
	// whenever a crack would split a piece larger than
	// StochasticMinPiece, an additional random pivot inside the piece
	// is cracked in the same pass. This bounds worst-case convergence
	// under adversarial (e.g. strictly sequential) workloads at a
	// small constant extra cost per crack.
	Stochastic bool
	// StochasticMinPiece is the piece size below which no random
	// pivot is added (default 1024).
	StochasticMinPiece int
	// Tracer, when non-nil, receives latch/crack trace events
	// (used by the Figure 8 walk-through example).
	Tracer func(TraceEvent)
	// LockProbe, when non-nil, is consulted before refinement: if it
	// reports a conflicting user-transaction lock on this column, the
	// refinement is skipped (system transactions must respect user
	// locks but never acquire their own, paper §3.3/§3.4).
	LockProbe func() bool
	// Obs, when non-nil, receives latch-wait observations from every
	// latch the index creates (the column latch and each piece latch,
	// including pieces born from future cracks). Only blocked
	// acquisitions are reported, so the uncontended path pays nothing.
	Obs *metrics.Observer
}

// piece is one contiguous segment of the cracker array holding values
// in [loVal, hiVal). prev/next form the ordered piece list. Each piece
// owns its latch (used in LatchPiece mode).
//
// Synchronization discipline (race-freedom relies on it):
//   - lo and loVal are immutable after the piece is published;
//   - hi, hiVal and next are mutated only while holding BOTH the
//     piece's write latch and the structure latch mu, so holding
//     either one is sufficient to read them;
//   - prev is mutated and read only under mu;
//   - splits keep the existing piece as the LEFT part, so a piece
//     never loses its starting boundary.
type piece struct {
	lo, hi       int   // array positions [lo, hi)
	loVal, hiVal int64 // value bounds [loVal, hiVal)
	prev, next   *piece
	latch        *latch.Latch
}

// Stats aggregates index-wide counters.
type Stats struct {
	// Cracks counts physical reorganization actions (a crack-in-three
	// counts once).
	Cracks metrics.Counter
	// Boundaries counts crack boundaries inserted into the AVL tree.
	Boundaries metrics.Counter
	// Conflicts counts latch acquisitions that blocked or failed.
	Conflicts metrics.Counter
	// Redeterminations counts bound re-determinations after wake-up
	// (the piece had been split while the query waited, Figure 10).
	Redeterminations metrics.Counter
	// Skipped counts refinements forgone under conflict avoidance.
	Skipped metrics.Counter
	// GroupCracks counts multi-pivot group cracks (§7 extension).
	GroupCracks metrics.Counter
	// GroupedBounds counts waiter bounds satisfied by group cracks.
	GroupedBounds metrics.Counter
	// StochasticCracks counts cracks that added a random pivot [16].
	StochasticCracks metrics.Counter
	// WaitTime accumulates latch wait time.
	WaitTime metrics.DurationCounter
	// CrackTime accumulates physical reorganization time.
	CrackTime metrics.DurationCounter
	// InitTime records the one-off index initialization (copying the
	// base column into the cracker array).
	InitTime metrics.DurationCounter
}

// OpStats is the per-operation cost breakdown returned by Count / Sum.
type OpStats struct {
	// Wait is time spent blocked on latches.
	Wait time.Duration
	// Crack is time spent physically refining the index.
	Crack time.Duration
	// Critical is the critical-path time of a fan-out execution: the
	// slowest sub-query's elapsed time (shard.Column sets it; Wait and
	// Crack sum total work across all sub-queries instead). Zero for
	// single-domain operations.
	Critical time.Duration
	// Conflicts counts latch acquisitions that were not granted
	// immediately.
	Conflicts int64
	// Epochs is the number of differential epoch files consulted to
	// assemble the answer (shard.Column sets it: the deepest per-shard
	// chain the query's snapshot read traversed; see internal/epoch).
	// Zero for a plain cracked column.
	Epochs int
	// Touched counts the rows the operation physically visited:
	// positions partitioned by cracks plus positions scanned to answer
	// the aggregate. This is the live form of the paper's per-query
	// cost that decays toward O(result size) as the index converges.
	Touched int64
	// Skipped reports that refinement was forgone due to contention.
	Skipped bool
}

func (o *OpStats) addWait(w time.Duration) {
	if w > 0 {
		o.Wait += w
		o.Conflicts++
	}
}

// Index is a cracked column: the primary adaptive-indexing structure.
type Index struct {
	opts Options
	base []int64 // base column; copied lazily on first query

	// mu is the short-term structure latch protecting toc, the piece
	// list links, and piece bounds. It is held only during lookups and
	// boundary insertion, never during data reorganization. LatchNone
	// mode (single-threaded by contract) skips it entirely so that the
	// Figure 13 "CC disabled" run truly performs no synchronization.
	mu       sync.Mutex
	toc      *avltree.Tree[*piece]
	head     *piece
	arr      *cracker.Array
	init     bool
	initDone atomic.Bool // fast-path mirror of init

	colLatch *latch.Latch
	pieces   int

	// onWait is the single shared latch-wait observer closure handed to
	// every latch this index creates (allocated once in New, not per
	// piece: pieces are born on the crack hot path).
	onWait func(d time.Duration, reader bool)

	// Differential updates (see updates.go).
	pend  pendingUpdates
	pendN pendingCounter

	stats Stats
}

// New creates an index over the base column. The column is not copied
// until the first query touches the index (index initialization is
// itself a query side effect, paper §5.3 "Column latches").
func New(base []int64, opts Options) *Index {
	ix := &Index{
		opts: opts,
		base: base,
		toc:  &avltree.Tree[*piece]{},
	}
	if ob := opts.Obs; ob != nil {
		ix.onWait = ob.RecordLatchWait
	}
	ix.colLatch = ix.newLatch()
	return ix
}

// newLatch creates a latch wired to the index's wait observer. Every
// latch creation site (column latch, head piece, split pieces) must go
// through it so waits on pieces born from future cracks are observed
// too.
func (ix *Index) newLatch() *latch.Latch {
	l := latch.New(ix.opts.Scheduling)
	if ix.onWait != nil {
		l.SetWaitObserver(ix.onWait)
	}
	return l
}

// structLock / structUnlock guard the table of contents; LatchNone
// mode skips them (see the mu field comment).
func (ix *Index) structLock() {
	if ix.opts.Latching != LatchNone {
		ix.mu.Lock()
	}
}

func (ix *Index) structUnlock() {
	if ix.opts.Latching != LatchNone {
		ix.mu.Unlock()
	}
}

// ensureInitLocked builds the cracker array and head piece on first
// use. Caller must hold the structure latch (or be otherwise exclusive).
func (ix *Index) ensureInitLocked() {
	if ix.init {
		return
	}
	start := time.Now()
	ix.arr = cracker.New(ix.base, ix.opts.Layout)
	ix.head = &piece{
		lo: 0, hi: ix.arr.Len(),
		loVal: minKey, hiVal: maxKey,
		latch: ix.newLatch(),
	}
	ix.pieces = 1
	ix.init = true
	ix.initDone.Store(true)
	ix.stats.InitTime.Add(time.Since(start))
}

// findPieceLocked returns the piece containing value v. Caller must
// hold the structure latch (LatchPiece) or otherwise exclude
// structural changes.
func (ix *Index) findPieceLocked(v int64) *piece {
	if _, p, ok := ix.toc.Floor(v); ok {
		return p
	}
	return ix.head
}

// splitTwoLocked records the crack of p at value v / position pos:
// p keeps the left part [p.lo, pos), a new piece q takes [pos, p.hi).
// Caller must hold the structure latch and p's write latch (or be
// otherwise exclusive).
func (ix *Index) splitTwoLocked(p *piece, v int64, pos int) *piece {
	q := &piece{
		lo: pos, hi: p.hi,
		loVal: v, hiVal: p.hiVal,
		prev: p, next: p.next,
		latch: ix.newLatch(),
	}
	if p.next != nil {
		p.next.prev = q
	}
	p.next = q
	p.hi = pos
	p.hiVal = v
	ix.toc.Insert(v, q)
	ix.pieces++
	ix.stats.Boundaries.Inc()
	return q
}

// splitThreeLocked records a crack-in-three of p at values (a, b) with
// result positions (posA, posB). p keeps the left part [p.lo, posA);
// new pieces are created for the middle [posA, posB) — the qualifying
// range — and the right part [posB, p.hi). If lockMid is true the
// middle piece's latch is acquired exclusively *before* the piece is
// published, so the caller can downgrade it to a shared latch and
// aggregate the qualifying range in place without a release window
// (the downgrade technique of §3.3). Caller must hold the structure
// latch and p's write latch (or be otherwise exclusive).
func (ix *Index) splitThreeLocked(p *piece, a, b int64, posA, posB int, lockMid bool) *piece {
	mid := &piece{
		lo: posA, hi: posB,
		loVal: a, hiVal: b,
		prev:  p,
		latch: ix.newLatch(),
	}
	if lockMid {
		// Cannot fail: the piece is not yet visible to anyone else.
		mid.latch.TryLock()
	}
	right := &piece{
		lo: posB, hi: p.hi,
		loVal: b, hiVal: p.hiVal,
		prev: mid, next: p.next,
		latch: ix.newLatch(),
	}
	mid.next = right
	if p.next != nil {
		p.next.prev = right
	}
	p.next = mid
	p.hi = posA
	p.hiVal = a
	ix.toc.Insert(a, mid)
	ix.toc.Insert(b, right)
	ix.pieces += 2
	ix.stats.Boundaries.Add(2)
	return mid
}

// LifecycleState is the index life-cycle state of the paper's
// Figure 5. Traditional online index builds pass through a partially
// populated but fully optimized state (3); adaptive indexing instead
// inhabits state 4 — fully populated, partially optimized — and keeps
// serving both reads and refinements there.
type LifecycleState int

const (
	// StateNonexistent: the index does not exist yet (state 1/2 — the
	// catalog entry is the Index value itself, created but empty).
	StateNonexistent LifecycleState = iota
	// StateAdaptive: fully populated, partially optimized (state 4).
	// All index entries exist but not yet in final position;
	// optimization is left to future queries.
	StateAdaptive
	// StateOptimized: fully populated and effectively fully optimized
	// (state 5): every piece is at most OptimizedPieceSize wide, so a
	// lookup costs no more than a bounded final partitioning pass.
	StateOptimized
)

// String returns the state's display name.
func (s LifecycleState) String() string {
	switch s {
	case StateNonexistent:
		return "nonexistent"
	case StateAdaptive:
		return "adaptive (fully populated, partially optimized)"
	default:
		return "optimized"
	}
}

// OptimizedPieceSize is the piece-width threshold below which the
// index counts as fully optimized (Figure 5 state 5): remaining
// refinement work per query is bounded by this constant.
const OptimizedPieceSize = 64

// Lifecycle reports the index's Figure 5 state.
func (ix *Index) Lifecycle() LifecycleState {
	ix.structLock()
	defer ix.structUnlock()
	if !ix.init {
		return StateNonexistent
	}
	for p := ix.head; p != nil; p = p.next {
		if p.hi-p.lo > OptimizedPieceSize {
			return StateAdaptive
		}
	}
	return StateOptimized
}

// NumPieces returns the current number of pieces (1 + #boundaries).
func (ix *Index) NumPieces() int {
	ix.structLock()
	defer ix.structUnlock()
	if !ix.init {
		return 0
	}
	return ix.pieces
}

// Boundaries returns the crack boundary values in increasing order.
func (ix *Index) Boundaries() []int64 {
	ix.structLock()
	defer ix.structUnlock()
	return ix.toc.Keys()
}

// PhysicalValues returns a copy of the cracker array's values in
// their current physical order. For inspection and visualization;
// callers should quiesce concurrent queries first.
func (ix *Index) PhysicalValues() []int64 {
	ix.structLock()
	defer ix.structUnlock()
	if !ix.init {
		return nil
	}
	return ix.arr.Values()
}

// BoundaryPosition is one crack boundary: all values at positions
// < Pos are < Value, all others are >= Value.
type BoundaryPosition struct {
	Value int64
	Pos   int
}

// BoundaryPositions returns the crack boundaries with their array
// positions, in increasing value order.
func (ix *Index) BoundaryPositions() []BoundaryPosition {
	ix.structLock()
	defer ix.structUnlock()
	out := make([]BoundaryPosition, 0, ix.toc.Len())
	ix.toc.Ascend(func(k int64, p *piece) bool {
		out = append(out, BoundaryPosition{Value: k, Pos: p.lo})
		return true
	})
	return out
}

// Stats returns a pointer to the index-wide counters.
func (ix *Index) Stats() *Stats { return &ix.stats }

// PieceProfile summarizes the piece-size distribution — the
// convergence shape of the index. A well-cracked index has many
// near-uniform pieces (entropy near 1, small max fraction); an index
// stagnating under a sequential workload keeps one dominant piece
// (max fraction near 1) however many boundaries it accumulates.
type PieceProfile struct {
	// Pieces is the piece count (0 before initialization).
	Pieces int
	// MaxPiece is the widest piece in rows.
	MaxPiece int
	// MaxPieceFrac is MaxPiece as a fraction of all rows (0..1).
	MaxPieceFrac float64
	// Entropy is the Shannon entropy of the piece-size distribution
	// normalized to [0, 1]: 1 means perfectly uniform pieces, values
	// near 0 mean one piece dominates.
	Entropy float64
}

// Profile computes the current piece-size distribution summary by
// walking the piece list under the structure latch (a cold-path read;
// cost is O(pieces), no piece latches taken).
func (ix *Index) Profile() PieceProfile {
	ix.structLock()
	defer ix.structUnlock()
	if !ix.init {
		return PieceProfile{}
	}
	total := ix.arr.Len()
	pr := PieceProfile{Pieces: ix.pieces}
	if total == 0 {
		return pr
	}
	var h float64
	for p := ix.head; p != nil; p = p.next {
		w := p.hi - p.lo
		if w <= 0 {
			continue
		}
		if w > pr.MaxPiece {
			pr.MaxPiece = w
		}
		f := float64(w) / float64(total)
		h -= f * math.Log2(f)
	}
	pr.MaxPieceFrac = float64(pr.MaxPiece) / float64(total)
	if pr.Pieces > 1 {
		pr.Entropy = h / math.Log2(float64(pr.Pieces))
	}
	return pr
}

// Validate checks every structural invariant of the index and returns
// an error describing the first violation. It must be called while no
// queries are in flight (it takes no piece latches). Checked:
//
//   - the piece list is contiguous, starts at 0, ends at Len, and its
//     value bounds are strictly increasing;
//   - the AVL table of contents maps exactly the piece boundaries;
//   - every piece physically contains only values in [loVal, hiVal);
//   - the cracker array holds a permutation of the base column with
//     rowID alignment intact.
func (ix *Index) Validate() error {
	ix.structLock()
	defer ix.structUnlock()
	if !ix.init {
		return nil
	}
	// Piece chain.
	pos, nPieces := 0, 0
	prevHi := int64(minKey)
	for p := ix.head; p != nil; p = p.next {
		nPieces++
		if p.lo != pos {
			return fmt.Errorf("crackindex: piece chain gap at pos %d (piece.lo=%d)", pos, p.lo)
		}
		if p.hi < p.lo {
			return fmt.Errorf("crackindex: negative piece [%d,%d)", p.lo, p.hi)
		}
		if p != ix.head && p.loVal != prevHi {
			return fmt.Errorf("crackindex: piece loVal %d != previous hiVal %d", p.loVal, prevHi)
		}
		for i := p.lo; i < p.hi; i++ {
			v := ix.arr.Value(i)
			if v < p.loVal || v >= p.hiVal {
				return fmt.Errorf("crackindex: value %d at pos %d outside piece [%d,%d)",
					v, i, p.loVal, p.hiVal)
			}
		}
		prevHi = p.hiVal
		pos = p.hi
	}
	if pos != ix.arr.Len() {
		return fmt.Errorf("crackindex: piece chain covers %d of %d positions", pos, ix.arr.Len())
	}
	if nPieces != ix.pieces {
		return fmt.Errorf("crackindex: pieces counter %d, chain has %d", ix.pieces, nPieces)
	}
	// TOC consistency.
	if ix.toc.Len() != nPieces-1 {
		return fmt.Errorf("crackindex: TOC has %d boundaries for %d pieces", ix.toc.Len(), nPieces)
	}
	var tocErr error
	ix.toc.Ascend(func(k int64, p *piece) bool {
		if p.loVal != k {
			tocErr = fmt.Errorf("crackindex: TOC key %d maps to piece starting at %d", k, p.loVal)
			return false
		}
		return true
	})
	if tocErr != nil {
		return tocErr
	}
	// Permutation + alignment with the base column.
	if ix.arr.Len() != len(ix.base) {
		return fmt.Errorf("crackindex: array length %d != base %d", ix.arr.Len(), len(ix.base))
	}
	seen := make([]bool, len(ix.base))
	for i := 0; i < ix.arr.Len(); i++ {
		id := ix.arr.RowID(i)
		if int(id) >= len(ix.base) || seen[id] {
			return fmt.Errorf("crackindex: rowID %d out of range or duplicated", id)
		}
		seen[id] = true
		if ix.base[id] != ix.arr.Value(i) {
			return fmt.Errorf("crackindex: rowID %d maps to %d, base has %d",
				id, ix.arr.Value(i), ix.base[id])
		}
	}
	return nil
}

// Options returns the index configuration.
func (ix *Index) Options() Options { return ix.opts }

// Initialized reports whether the cracker array has been built.
func (ix *Index) Initialized() bool {
	ix.structLock()
	defer ix.structUnlock()
	return ix.init
}

// Registry tracks which cracker indexes exist, keyed by column name.
// It models the paper's "global data structure that keeps track of
// which cracker indexes do exist" (§5.3): the select operator latches
// it briefly to look up or initialize the index for a column, then
// releases it before doing any cracking.
type Registry struct {
	mu      sync.RWMutex
	indexes map[string]*Index
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{indexes: make(map[string]*Index)}
}

// GetOrCreate returns the index registered under name, creating it
// with base and opts on first use.
func (r *Registry) GetOrCreate(name string, base []int64, opts Options) *Index {
	r.mu.RLock()
	ix, ok := r.indexes[name]
	r.mu.RUnlock()
	if ok {
		return ix
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix, ok = r.indexes[name]; ok {
		return ix
	}
	ix = New(base, opts)
	r.indexes[name] = ix
	return ix
}

// Get returns the index registered under name, if any.
func (r *Registry) Get(name string) (*Index, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ix, ok := r.indexes[name]
	return ix, ok
}

// Drop removes the index registered under name. Adaptive indexes are
// optional and can be dropped at any time (paper §4.2).
func (r *Registry) Drop(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.indexes, name)
}

// Names returns the registered column names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.indexes))
	for n := range r.indexes {
		out = append(out, n)
	}
	return out
}
