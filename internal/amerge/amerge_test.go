package amerge

import (
	"context"
	"sync"
	"testing"
	"time"

	"adaptix/internal/engine"
	"adaptix/internal/txn"
	"adaptix/internal/wal"
	"adaptix/internal/workload"
)

var _ engine.Engine = (*Index)(nil)

func TestMatchesBruteForce(t *testing.T) {
	d := workload.NewUniqueUniform(20000, 3)
	ix := New(d.Values, Options{RunSize: 1 << 10})
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.03, 9), 60)
	for i, q := range qs {
		if got := qCount(ix, q.Lo, q.Hi).Value; got != q.Hi-q.Lo {
			t.Fatalf("query %d: Count = %d, want %d", i, got, q.Hi-q.Lo)
		}
		want := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
		if got := qSum(ix, q.Lo, q.Hi).Value; got != want {
			t.Fatalf("query %d: Sum = %d, want %d", i, got, want)
		}
	}
	if ix.NumRuns() != 20 {
		t.Fatalf("runs = %d, want 20", ix.NumRuns())
	}
	if ix.MergeSteps() == 0 || ix.MovedRecords() == 0 {
		t.Fatal("no merging happened")
	}
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatesAndEdges(t *testing.T) {
	d := workload.NewDuplicates(10000, 300, 7)
	ix := New(d.Values, Options{RunSize: 1 << 9})
	for _, r := range [][2]int64{{0, 300}, {50, 51}, {-10, 10}, {290, 400}, {100, 100}, {200, 100}} {
		if got := qCount(ix, r[0], r[1]).Value; got != d.TrueCount(r[0], r[1]) {
			t.Fatalf("Count(%d,%d) = %d, want %d", r[0], r[1], got, d.TrueCount(r[0], r[1]))
		}
		if got := qSum(ix, r[0], r[1]).Value; got != d.TrueSum(r[0], r[1]) {
			t.Fatalf("Sum(%d,%d) = %d", r[0], r[1], got)
		}
	}
}

func TestConvergenceToFinalPartition(t *testing.T) {
	d := workload.NewUniqueUniform(8000, 5)
	ix := New(d.Values, Options{RunSize: 1 << 9})
	// Query the same range repeatedly: after the first, it must be
	// served from the snapshot without latches.
	qSum(ix, 1000, 3000)
	hitsBefore := ix.SnapshotHits()
	for i := 0; i < 5; i++ {
		if got := qSum(ix, 1000, 3000).Value; got != (1000+2999)*2000/2 {
			t.Fatalf("iteration %d wrong", i)
		}
	}
	if ix.SnapshotHits() != hitsBefore+5 {
		t.Fatalf("snapshot hits = %d, want %d", ix.SnapshotHits(), hitsBefore+5)
	}
	// Sub-ranges of a merged range are also covered.
	qCount(ix, 1500, 2000)
	if ix.SnapshotHits() != hitsBefore+6 {
		t.Fatal("sub-range not served from snapshot")
	}
	// The runs no longer hold the merged range.
	for r := 1; r <= ix.NumRuns(); r++ {
		if c, _ := ix.Tree().AggregateRange(int32(r), 1000, 3000); c != 0 {
			t.Fatalf("run %d still holds merged range", r)
		}
	}
	if ix.Tree().PartitionCount(0) != 2000 {
		t.Fatalf("final partition has %d", ix.Tree().PartitionCount(0))
	}
}

func TestMergeBudgetEarlyTermination(t *testing.T) {
	d := workload.NewUniqueUniform(10000, 11)
	ix := New(d.Values, Options{RunSize: 1 << 9, MergeBudget: 100})
	// A wide query cannot merge everything in one step...
	r := qCount(ix, 0, 5000)
	if r.Value != 5000 {
		t.Fatalf("budgeted Count = %d", r.Value)
	}
	if moved := ix.MovedRecords(); moved > 100 {
		t.Fatalf("budget exceeded: %d", moved)
	}
	// ...but repeated queries converge incrementally and stay correct.
	for i := 0; i < 60; i++ {
		if got := qCount(ix, 0, 5000).Value; got != 5000 {
			t.Fatalf("iteration %d: %d", i, got)
		}
	}
	if ix.Tree().PartitionCount(0) != 5000 {
		t.Fatalf("not converged: final has %d", ix.Tree().PartitionCount(0))
	}
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstQueryPaysRunGeneration(t *testing.T) {
	d := workload.NewUniqueUniform(100000, 13)
	ix := New(d.Values, Options{RunSize: 1 << 12})
	r := qCount(ix, 100, 200)
	if r.Refine == 0 {
		t.Fatal("first query did not charge run generation")
	}
	r2 := qCount(ix, 100, 200)
	if r2.Refine != 0 {
		t.Fatal("second identical query still refining")
	}
}

func TestConcurrentClients(t *testing.T) {
	d := workload.NewUniqueUniform(50000, 17)
	for _, policy := range []ConflictPolicy{Wait, Skip} {
		ix := New(d.Values, Options{RunSize: 1 << 11, OnConflict: policy})
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				gen := workload.NewUniform(workload.Sum, d.Domain, 0.01, uint64(c*31+7))
				for i := 0; i < 40; i++ {
					q := gen.Next()
					wantC := q.Hi - q.Lo
					wantS := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
					if got := qCount(ix, q.Lo, q.Hi).Value; got != wantC {
						errs <- "count mismatch"
						return
					}
					if got := qSum(ix, q.Lo, q.Hi).Value; got != wantS {
						errs <- "sum mismatch"
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("policy %v: %s", policy, e)
		}
		if err := ix.Tree().Validate(); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
	}
}

func TestSkipPolicyCountsSkips(t *testing.T) {
	d := workload.NewUniqueUniform(30000, 19)
	ix := New(d.Values, Options{RunSize: 1 << 10, OnConflict: Skip})
	qCount(ix, 0, 10) // init
	// Hold the index latch as a concurrent merge would.
	ix.lt.Lock(0)
	done := make(chan engine.Result, 1)
	go func() { done <- qCount(ix, 5000, 6000) }()
	// Wait until the query has decided to skip (counted before its
	// read latch), then release so its read can proceed.
	for ix.SkippedMerges() == 0 {
		time.Sleep(time.Millisecond)
	}
	ix.lt.Unlock()
	r := <-done
	if r.Value != 1000 {
		t.Fatalf("skip-path Count = %d", r.Value)
	}
	if !r.Skipped {
		t.Fatal("result not marked skipped")
	}
}

func TestStructuralLoggingAndSystemTxns(t *testing.T) {
	log := wal.New(nil)
	tm := txn.NewManager()
	d := workload.NewUniqueUniform(5000, 23)
	ix := New(d.Values, Options{RunSize: 1 << 9, Log: log, TxnMgr: tm})
	qSum(ix, 1000, 2000)
	var runs, merges int
	for _, r := range log.Records() {
		switch r.Kind {
		case wal.RunCreated:
			runs++
		case wal.MergeStep:
			merges++
		}
	}
	if runs != ix.NumRuns() {
		t.Fatalf("logged %d runs, index has %d", runs, ix.NumRuns())
	}
	if merges == 0 {
		t.Fatal("no merge steps logged")
	}
	started, finished := tm.Counts()
	if started == 0 || started != finished {
		t.Fatalf("system txns: started=%d finished=%d", started, finished)
	}
}

func TestEmptyAndInvertedRanges(t *testing.T) {
	d := workload.NewUniqueUniform(1000, 29)
	ix := New(d.Values, Options{RunSize: 256})
	if qCount(ix, 500, 500).Value != 0 || qCount(ix, 600, 400).Value != 0 {
		t.Fatal("empty/inverted range returned entries")
	}
	if qSum(ix, 500, 500).Value != 0 {
		t.Fatal("empty range sum nonzero")
	}
}

func TestNameAndAccessors(t *testing.T) {
	ix := New([]int64{1, 2, 3}, Options{})
	if ix.Name() != "amerge" {
		t.Fatal("bad name")
	}
	if ix.NumRuns() != 0 {
		t.Fatal("runs before init")
	}
	qCount(ix, 0, 10)
	if ix.NumRuns() != 1 {
		t.Fatalf("runs = %d", ix.NumRuns())
	}
}

// qCount / qSum drive the context-aware Engine surface with
// context.Background(), the uncancellable fast path the tests measure.
func qCount(e engine.Engine, lo, hi int64) engine.Result {
	r, _ := e.Count(context.Background(), lo, hi)
	return r
}

func qSum(e engine.Engine, lo, hi int64) engine.Result {
	r, _ := e.Sum(context.Background(), lo, hi)
	return r
}
