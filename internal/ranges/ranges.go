// Package ranges implements an interval set over int64 key ranges.
//
// Adaptive merging and the hybrid algorithms need to know which key
// ranges have already been fully moved into the final partition: "once
// a given range of data has moved out of initial partitions and into
// final partitions, the initial partitions will never be accessed
// again for data in that range" (paper §2, Hybrid Adaptive Indexing).
// The Set tracks those merged ranges; Covers answers whether a query
// range can be served from the final partition alone.
//
// The Set is not internally synchronized; callers guard it with their
// index latch.
package ranges

import "sort"

// interval is a half-open range [Lo, Hi).
type interval struct {
	Lo, Hi int64
}

// Set is a union of disjoint, sorted half-open intervals.
// The zero value is an empty set.
type Set struct {
	ivs []interval
}

// Add unions [lo, hi) into the set, coalescing adjacent and
// overlapping intervals. Empty ranges are ignored.
func (s *Set) Add(lo, hi int64) {
	if lo >= hi {
		return
	}
	// Find the first interval with Hi >= lo (possible neighbour/overlap).
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo <= hi {
		if s.ivs[j].Lo < lo {
			lo = s.ivs[j].Lo
		}
		if s.ivs[j].Hi > hi {
			hi = s.ivs[j].Hi
		}
		j++
	}
	merged := append(s.ivs[:i:i], interval{lo, hi})
	s.ivs = append(merged, s.ivs[j:]...)
}

// Covers reports whether [lo, hi) is entirely contained in the set.
// Empty ranges are trivially covered.
func (s *Set) Covers(lo, hi int64) bool {
	if lo >= hi {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > lo })
	return i < len(s.ivs) && s.ivs[i].Lo <= lo && hi <= s.ivs[i].Hi
}

// Gaps returns the sub-ranges of [lo, hi) NOT covered by the set, in
// order. Used by hybrid adaptive indexing to extract only the data
// that has not yet been moved into the final partition.
func (s *Set) Gaps(lo, hi int64) [][2]int64 {
	if lo >= hi {
		return nil
	}
	var out [][2]int64
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > lo })
	cur := lo
	for ; i < len(s.ivs) && s.ivs[i].Lo < hi; i++ {
		if s.ivs[i].Lo > cur {
			out = append(out, [2]int64{cur, s.ivs[i].Lo})
		}
		if s.ivs[i].Hi > cur {
			cur = s.ivs[i].Hi
		}
	}
	if cur < hi {
		out = append(out, [2]int64{cur, hi})
	}
	return out
}

// Len returns the number of disjoint intervals.
func (s *Set) Len() int { return len(s.ivs) }

// Total returns the summed width of all intervals.
func (s *Set) Total() int64 {
	var t int64
	for _, iv := range s.ivs {
		t += iv.Hi - iv.Lo
	}
	return t
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{ivs: make([]interval, len(s.ivs))}
	copy(c.ivs, s.ivs)
	return c
}
