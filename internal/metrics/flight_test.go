package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestFlightDumpOrder(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 10; i++ {
		f.Record(EvSeal, int32(i), time.Duration(i), int64(i), 0)
	}
	evs := f.Dump()
	if len(evs) != 10 {
		t.Fatalf("Dump returned %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Shard != int32(i) || ev.A != int64(i) {
			t.Fatalf("event %d = %+v, want seq/shard/a = %d", i, ev, i)
		}
		if ev.Kind != EvSeal || ev.KindName != "seal" {
			t.Fatalf("event %d kind = %v/%q", i, ev.Kind, ev.KindName)
		}
	}
}

func TestFlightWrap(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 100; i++ {
		f.Record(EvApply, 0, 0, int64(i), 0)
	}
	evs := f.Dump()
	if len(evs) != 16 {
		t.Fatalf("Dump after wrap returned %d events, want 16", len(evs))
	}
	for i, ev := range evs {
		if want := int64(84 + i); ev.A != want {
			t.Fatalf("event %d payload = %d, want %d (oldest-first after wrap)", i, ev.A, want)
		}
	}
	if f.Len() != 16 {
		t.Fatalf("Len = %d, want 16", f.Len())
	}
}

// Concurrent recording and dumping must be race-free and never yield a
// torn event: any dumped event's payload fields must be mutually
// consistent (we encode the same value in Shard, Dur, and A).
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := int64(w*1_000_000 + i)
				f.Record(EvQuery, int32(v%1000), time.Duration(v), v, v)
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, ev := range f.Dump() {
			if int64(ev.Dur) != ev.A || ev.A != ev.B || ev.Shard != int32(ev.A%1000) {
				t.Errorf("torn event: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// A latch wait or writer park over the stall threshold must surface in
// the flight-recorder dump (the ISSUE's forced-stall test, unit
// level; the facade-level version lives in the root package).
func TestObserverStallLandsInFlight(t *testing.T) {
	ob := NewObserver(ObserverOptions{StallThreshold: time.Microsecond, FlightEvents: 64})
	ob.RecordLatchWait(50*time.Microsecond, true)
	ob.RecordWriterPark(3, 2*time.Millisecond)
	ob.RecordLatchWait(time.Nanosecond, false) // under threshold: histogram only

	var latch, writer int
	for _, ev := range ob.Flight().Dump() {
		switch ev.Kind {
		case EvLatchStall:
			latch++
			if ev.Dur != 50*time.Microsecond || ev.A != 1 {
				t.Fatalf("latch stall event = %+v", ev)
			}
		case EvWriterStall:
			writer++
			if ev.Shard != 3 || ev.Dur != 2*time.Millisecond {
				t.Fatalf("writer stall event = %+v", ev)
			}
		}
	}
	if latch != 1 || writer != 1 {
		t.Fatalf("stall events in dump: latch=%d writer=%d, want 1/1", latch, writer)
	}
	if got := ob.Registry().Counter("adaptix_latch_stalls_total", "").Load(); got != 1 {
		t.Fatalf("latch stall counter = %d, want 1", got)
	}
	if got := ob.Registry().Counter("adaptix_writer_stalls_total", "").Load(); got != 1 {
		t.Fatalf("writer stall counter = %d, want 1", got)
	}
	// The sub-threshold wait still recorded in the histogram.
	var snap HistSnapshot
	ob.Registry().VisitHistograms(func(name string, s HistSnapshot) {
		if name == "adaptix_latch_wait_ns" {
			snap = s
		}
	})
	if got := snap.Count(); got != 2 {
		t.Fatalf("latch wait histogram count = %d, want 2", got)
	}
}

func TestObserverSampling(t *testing.T) {
	ob := NewObserver(ObserverOptions{SampleEvery: 4})
	if !ob.QueryStart().IsZero() {
		t.Fatal("QueryStart should be zero while tracing is disabled")
	}
	ob.EnableTracing(true)
	var sampled int
	for i := 0; i < 100; i++ {
		start := ob.QueryStart()
		if !start.IsZero() {
			sampled++
		}
		ob.RecordQuery(start, time.Microsecond, time.Microsecond, time.Microsecond)
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 queries at SampleEvery=4, want 25", sampled)
	}
	if got := ob.Registry().Counter("adaptix_queries_total", "").Load(); got != 100 {
		t.Fatalf("queries counter = %d, want 100 (core histograms record every query)", got)
	}
	if got := ob.Registry().Counter("adaptix_sampled_spans_total", "").Load(); got != int64(sampled) {
		t.Fatalf("sampled spans counter = %d, want %d", got, sampled)
	}
}

func TestRegistryVisit(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first").Inc()
	r.Gauge("depth", "queue depth").Set(7)
	r.Histogram("lat_ns", "latency").Record(100)
	if r.Counter("a_total", "ignored duplicate help") != r.Counter("a_total", "") {
		t.Fatal("Counter not idempotent per name")
	}
	if r.Help("a_total") != "first" {
		t.Fatalf("Help = %q, want first registration to win", r.Help("a_total"))
	}

	var names []string
	r.VisitCounters(func(name string, v int64) { names = append(names, name) })
	if len(names) != 2 || names[0] != "a_total" || names[1] != "b_total" {
		t.Fatalf("VisitCounters order = %v, want sorted", names)
	}
	r.VisitGauges(func(name string, v int64) {
		if name != "depth" || v != 7 {
			t.Fatalf("gauge %s = %d", name, v)
		}
	})
	r.VisitHistograms(func(name string, s HistSnapshot) {
		if name != "lat_ns" || s.Count() != 1 {
			t.Fatalf("histogram %s count = %d", name, s.Count())
		}
	})
}
