package ingest

import (
	"testing"

	"adaptix/internal/shard"
	"adaptix/internal/wal"
	"adaptix/internal/workload"
)

// warmQueries cracks the column with a deterministic query mix.
func warmQueries(col *shard.Column, domain int64, n int) {
	r := workload.NewRNG(123)
	for i := 0; i < n; i++ {
		lo := r.Int64n(domain)
		hi := lo + 1 + r.Int64n(domain-lo)
		col.Count(qctx, lo, hi)
	}
}

func TestCheckpointPersistsCutsAndCracks(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 3)
	col := shard.New(d.Values, pieceOpts())
	warmQueries(col, d.Domain, 100)

	log := wal.New(nil)
	g := New(col, Options{Log: log})
	if !g.Checkpoint() {
		t.Fatal("checkpoint failed")
	}
	if g.Stats().Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", g.Stats().Checkpoints)
	}

	var raw []byte
	for _, r := range log.Records() {
		raw = append(raw, wal.Encode(r)...)
	}
	cat, err := wal.Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	bounds := col.Bounds()
	if got := cat.ShardBounds["sharded"]; len(got) != len(bounds) {
		t.Fatalf("recovered %d cuts, want %d", len(got), len(bounds))
	}
	cracks := col.CrackBoundaries()
	rec := cat.ShardCracks["sharded"]
	if len(rec) != len(cracks) {
		t.Fatalf("recovered %d shard crack sets, want %d", len(rec), len(cracks))
	}
	for i := range cracks {
		if len(rec[i]) != len(cracks[i]) {
			t.Fatalf("shard %d: recovered %d boundaries, want %d", i, len(rec[i]), len(cracks[i]))
		}
	}
}

func TestCheckpointTruncatesLogPrefix(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 5)
	col := shard.New(d.Values, pieceOpts())
	sink, err := wal.NewFileSink(t.TempDir(), wal.SinkOptions{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	log := wal.New(sink)
	g := New(col, Options{Log: log, Sink: sink, ApplyThreshold: 64})

	// Generate structural traffic, then checkpoint.
	r := workload.NewRNG(9)
	for i := 0; i < 500; i++ {
		if err := g.Insert(qctx, r.Int64n(d.Domain)); err != nil {
			t.Fatal(err)
		}
	}
	g.Maintain()
	before, err := sink.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Checkpoint() {
		t.Fatal("checkpoint failed")
	}
	after, err := sink.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(before) > 1 && len(after) >= len(before) {
		t.Fatalf("checkpoint did not truncate: %d segments before, %d after", len(before), len(after))
	}

	// The truncated log still recovers the full structural state.
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := wal.ReadDir(sink.Dir())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := wal.Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	bounds := col.Bounds()
	got := cat.ShardBounds["sharded"]
	if len(got) != len(bounds) {
		t.Fatalf("recovered cuts %v, want %v", got, bounds)
	}
	for i := range bounds {
		if got[i] != bounds[i] {
			t.Fatalf("recovered cuts %v, want %v", got, bounds)
		}
	}
	re := shard.NewWithBoundsAndCracks(col.Values(), got, cat.ShardCracks["sharded"], pieceOpts())
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	checkAgainstModel(t, re, newModel(col.Values()), d.Domain)
}

func TestAutomaticCheckpointCadence(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 7)
	col := shard.New(d.Values, pieceOpts())
	log := wal.New(nil)
	g := New(col, Options{Log: log, ApplyThreshold: 64, CheckpointEvery: 1})
	r := workload.NewRNG(11)
	for i := 0; i < 300; i++ {
		if err := g.Insert(qctx, r.Int64n(d.Domain)); err != nil {
			t.Fatal(err)
		}
	}
	g.Maintain()
	st := g.Stats()
	if st.Applied == 0 {
		t.Fatal("expected group-applies")
	}
	if st.Checkpoints == 0 {
		t.Fatal("CheckpointEvery=1 Maintain pass took no checkpoint")
	}
}
