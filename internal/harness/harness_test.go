package harness

import (
	"testing"

	"adaptix/internal/baseline"
	"adaptix/internal/crackindex"
	"adaptix/internal/engine"
	"adaptix/internal/workload"
)

func engines(d *workload.Dataset) []engine.Engine {
	return []engine.Engine{
		baseline.NewScan(d.Values),
		baseline.NewFullSort(d.Values),
		engine.NewCrack(crackindex.New(d.Values, crackindex.Options{Latching: crackindex.LatchPiece})),
	}
}

func TestAllEnginesAgreeSequential(t *testing.T) {
	d := workload.NewUniqueUniform(20000, 77)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.01, 5), 64)
	var checksums []int64
	for _, e := range engines(d) {
		run := Sequential(e, qs)
		if len(run.Series.Costs) != len(qs) {
			t.Fatalf("%s: %d cost records, want %d", e.Name(), len(run.Series.Costs), len(qs))
		}
		checksums = append(checksums, run.Checksum)
	}
	if checksums[0] != checksums[1] || checksums[1] != checksums[2] {
		t.Fatalf("engines disagree: %v", checksums)
	}
}

func TestAllEnginesAgreeConcurrent(t *testing.T) {
	d := workload.NewUniqueUniform(50000, 13)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.005, 21), 128)
	for _, clients := range []int{2, 4, 8} {
		want := Sequential(baseline.NewScan(d.Values), qs).Checksum
		for _, e := range engines(d) {
			run := Execute(e, qs, clients)
			if run.Checksum != want {
				t.Fatalf("%s with %d clients: checksum %d, want %d",
					e.Name(), clients, run.Checksum, want)
			}
			if run.Clients != clients || run.Elapsed <= 0 {
				t.Fatalf("%s: bad run metadata %+v", e.Name(), run)
			}
		}
	}
}

func TestExecuteSplitsQueriesAcrossClients(t *testing.T) {
	d := workload.NewUniqueUniform(1000, 1)
	qs := workload.Fixed(workload.NewUniform(workload.Count, d.Domain, 0.1, 2), 10)
	run := Execute(baseline.NewScan(d.Values), qs, 3)
	// 10 queries, 3 clients: 3+3+4.
	perClient := map[int]int{}
	for _, c := range run.Series.Costs {
		perClient[c.Client]++
	}
	if perClient[0] != 3 || perClient[1] != 3 || perClient[2] != 4 {
		t.Fatalf("bad split: %v", perClient)
	}
	// Seq must be a permutation of 0..9.
	seen := map[int]bool{}
	for _, c := range run.Series.Costs {
		if c.Seq < 0 || c.Seq >= 10 || seen[c.Seq] {
			t.Fatalf("bad Seq %d", c.Seq)
		}
		seen[c.Seq] = true
	}
}

func TestExecuteClampsClientCount(t *testing.T) {
	d := workload.NewUniqueUniform(100, 1)
	qs := workload.Fixed(workload.NewUniform(workload.Count, d.Domain, 0.5, 3), 4)
	run := Execute(baseline.NewScan(d.Values), qs, 100)
	if run.Clients != 4 {
		t.Fatalf("clients = %d, want clamped to 4", run.Clients)
	}
	run = Execute(baseline.NewScan(d.Values), qs, 0)
	if run.Clients != 1 {
		t.Fatalf("clients = %d, want 1", run.Clients)
	}
}

func TestThroughput(t *testing.T) {
	d := workload.NewUniqueUniform(5000, 4)
	qs := workload.Fixed(workload.NewUniform(workload.Count, d.Domain, 0.1, 9), 32)
	run := Sequential(baseline.NewScan(d.Values), qs)
	if run.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
	empty := &Run{}
	if empty.Throughput() != 0 {
		t.Fatal("empty run throughput should be 0")
	}
}

func TestSweepFreshEnginePerRun(t *testing.T) {
	d := workload.NewUniqueUniform(20000, 6)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.01, 31), 64)
	var made int
	runs := Sweep(func() engine.Engine {
		made++
		return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{Latching: crackindex.LatchPiece}))
	}, qs, []int{1, 2, 4})
	if made != 3 || len(runs) != 3 {
		t.Fatalf("made %d engines, %d runs", made, len(runs))
	}
	if runs[0].Checksum != runs[1].Checksum || runs[1].Checksum != runs[2].Checksum {
		t.Fatal("sweep runs disagree on results")
	}
}

func TestCrackAdapterExposesBreakdown(t *testing.T) {
	d := workload.NewUniqueUniform(50000, 15)
	ix := crackindex.New(d.Values, crackindex.Options{Latching: crackindex.LatchPiece})
	e := engine.NewCrack(ix)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.05, 8), 32)
	run := Execute(e, qs, 4)
	if run.Series.TotalCrack() == 0 {
		t.Fatal("no crack time recorded via the adapter")
	}
	if e.Index() != ix {
		t.Fatal("adapter lost the index")
	}
	if engine.NewCrackNamed(ix, "crack-fifo").Name() != "crack-fifo" {
		t.Fatal("bad named adapter")
	}
}
