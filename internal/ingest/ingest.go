// Package ingest is the concurrent write-path subsystem for the
// sharded adaptive index (internal/shard). It turns the sharded column
// into a live, self-balancing structure under a mixed read/write
// workload, following the paper's update architecture (§4.2): logical
// updates land in per-shard epoch chains — versioned differential
// files (internal/epoch) — and all *structural* work — merging sealed
// epochs into the cracker arrays, splitting and merging shards — runs
// in small system transactions (internal/txn) that log structural
// records to the WAL (internal/wal) and respect user-transaction locks
// without ever acquiring their own.
//
// Three cooperating pieces:
//
//   - The router (Insert / DeleteValue / Apply) forwards writes to the
//     owning shard's open epoch through shard.Column and counts write
//     traffic so maintenance runs at the right cadence. With
//     Options.LogWrites each write also leaves an autonomous
//     wal.LogicalWrite record tagged with its epoch, closing the
//     lose-writes-since-last-checkpoint window.
//   - The group-apply worker batches pending updates per shard: once a
//     shard's chain exceeds Options.ApplyThreshold, the current epoch
//     is sealed (one system transaction, wal.EpochSeal — writers roll
//     over to the next epoch without parking) and the sealed prefix is
//     merged into a rebuilt cracker array (a second system
//     transaction, wal.EpochApply), with the old index's crack
//     boundaries replayed so refinement knowledge earned by earlier
//     queries survives (the group-apply analogue of the paper's §7
//     group cracking: many queued updates, one structural pass).
//     Options.ParkOnApply selects the legacy single-differential
//     rebuild that parks writers — the measurement baseline.
//   - The rebalancer watches per-shard row counts — and refinement
//     traffic, with Options.LoadWeight — and splits shards that
//     drifted above SplitFactor times the mean weight (wal.ShardSplit)
//     or merges adjacent dwarf shards (wal.ShardMerge), so a skewed
//     insert storm cannot concentrate all future work in one latch
//     domain. Readers never block on any of this: structural
//     operations publish a new shard map while queries in flight keep
//     their own consistent snapshot (see internal/shard/update.go).
//
// Durability and recovery: structural records flow to the WAL, and
// the checkpoint writer (checkpoint.go) periodically serializes the
// complete refinement state — shard cuts plus every shard's crack
// boundaries — into wal.Checkpoint records, truncating the dead log
// prefix once the checkpoint commits. Every checkpoint first rolls
// every shard's open epoch and records the resulting watermark
// (wal.CkptEpoch): the data snapshot is an exact cut at that epoch, so
// recovery discards half-applied epochs (a committed EpochSeal with no
// committed EpochApply) and replays exactly the LogicalWrite records
// beyond the watermark. wal.Recover folds a checkpoint and the
// committed records after it into the final cut list, per-shard
// boundary sets, and the replayable data tail;
// shard.NewWithBoundsAndCracks rebuilds the column pre-cracked to that
// knowledge (New bootstrap-logs the initial map so the recovered list
// is complete even before the first checkpoint). internal/durable
// packages the whole lifecycle behind Open/Close.
package ingest

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/metrics"
	"adaptix/internal/shard"
	"adaptix/internal/txn"
	"adaptix/internal/wal"
	"adaptix/internal/wcapture"
)

// Op is one batched write operation (Apply).
type Op struct {
	// Delete selects deletion of one instance of Value; otherwise the
	// op inserts Value.
	Delete bool
	// Value is the column value inserted or deleted.
	Value int64
}

// Options configures a Coordinator.
type Options struct {
	// Name identifies the column in WAL records and user-lock probes.
	// Default "sharded".
	Name string
	// ApplyThreshold is the number of pending differential updates in
	// one shard that triggers a group-apply merge. Default 512.
	ApplyThreshold int
	// SplitFactor triggers a shard split when a shard's row count
	// exceeds SplitFactor times the mean. Default 2.
	SplitFactor float64
	// MergeFraction triggers a merge of two adjacent shards when their
	// combined row count falls below MergeFraction times the mean.
	// Default 0.5.
	MergeFraction float64
	// MinShardRows is the smallest shard the rebalancer will split.
	// Default 2048.
	MinShardRows int
	// MaxShards caps the shard count growth. Default 64.
	MaxShards int
	// CheckEvery is the number of routed writes between background
	// maintenance wake-ups. Default ApplyThreshold/2.
	CheckEvery int
	// Log, when non-nil, receives structural records (epoch seals and
	// applies, splits, merges, checkpoints, and the bootstrap shard
	// map) bracketed in system transactions.
	Log *wal.Log
	// LogWrites enables data-tail durability: every routed insert and
	// every delete that found an instance is additionally logged as an
	// autonomous wal.LogicalWrite record (value + op + epoch id).
	// Recovery replays the records past the last checkpoint's epoch
	// watermark on top of the data snapshot, closing the
	// lose-writes-since-last-checkpoint window for deployments where
	// adaptix is the primary store. By default logical records are
	// fsynced with the next system-transaction commit (or an explicit
	// Log.Sync), not per write; SyncEvery and SyncInterval bound that
	// window.
	LogWrites bool
	// SyncEvery is the group-commit record bound: with LogWrites, the
	// log is additionally fsynced after every SyncEvery logical
	// records, so a crash loses at most SyncEvery-1 of the newest
	// writes (plus whatever the interval below has not yet covered).
	// Zero keeps the default fsync-on-next-commit policy; 1 fsyncs
	// every write.
	SyncEvery int
	// SyncInterval is the group-commit time bound: with LogWrites, a
	// background ticker fsyncs any unsynced logical records every
	// SyncInterval, so the loss window is bounded in time even when
	// the write rate is too low to reach SyncEvery. Zero disables the
	// ticker. The ticker runs between Start and Close.
	SyncInterval time.Duration
	// ParkOnApply selects the legacy sealed-differential group-apply:
	// the shard parks its writers for the full rebuild instead of
	// sealing only the current epoch. It exists as the measurement
	// baseline for the epoch write path (experiments.ReadWriteMix
	// reports the writer-stall p99 of both).
	ParkOnApply bool
	// LoadWeight enables load-aware rebalancing: split and merge
	// decisions weigh each shard's observed refinement traffic (the
	// Cracks and Conflicts counters in shard.ShardStat) on top of its
	// row count, so a small-but-scorching shard splits and two hot
	// dwarfs are not merged back together. Zero keeps pure
	// row-count balancing; 1 is a reasonable starting weight.
	LoadWeight float64
	// CheckpointEvery is the number of committed structural operations
	// between automatic crack-boundary checkpoints (see Checkpoint).
	// Zero disables automatic checkpoints; Checkpoint can still be
	// called manually and Close always takes a final one when a Log is
	// configured.
	CheckpointEvery int
	// Sink, when non-nil, is the Log's segment sink; checkpoints rotate
	// it and truncate the dead log prefix once they commit.
	Sink wal.SegmentTruncator
	// SnapshotWriter, when non-nil, persists the column's logical
	// contents; Checkpoint invokes it before logging the checkpoint
	// records, so the newest data snapshot is never older than the
	// newest committed checkpoint. An error aborts the checkpoint.
	SnapshotWriter func(values []int64) error
	// Txns supplies the transaction manager whose system transactions
	// wrap structural operations and whose user locks maintenance must
	// respect. Default: a fresh private manager.
	Txns *txn.Manager
	// Obs, when non-nil, receives write-path observations: routed-write
	// latency, group-commit batch sizes, and checkpoint durations.
	// (Structural seal/apply/split/merge durations are recorded by the
	// column itself through shard.Options.Obs.)
	Obs *metrics.Observer
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "sharded"
	}
	if o.ApplyThreshold <= 0 {
		o.ApplyThreshold = 512
	}
	if o.SplitFactor <= 1 {
		o.SplitFactor = 2
	}
	if o.MergeFraction <= 0 || o.MergeFraction >= 1 {
		o.MergeFraction = 0.5
	}
	if o.MinShardRows <= 0 {
		o.MinShardRows = 2048
	}
	if o.MaxShards <= 0 {
		o.MaxShards = 64
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = o.ApplyThreshold / 2
		if o.CheckEvery == 0 {
			o.CheckEvery = 1
		}
	}
	if o.Txns == nil {
		o.Txns = txn.NewManager()
	}
	return o
}

// Stats counts the coordinator's activity.
type Stats struct {
	// Writes is the number of routed updates (inserts + deletes,
	// including failed deletes).
	Writes int64
	// Applied counts group-apply merges.
	Applied int64
	// EpochSeals counts epochs sealed ahead of a group-apply merge.
	EpochSeals int64
	// LoggedWrites counts wal.LogicalWrite records appended
	// (Options.LogWrites).
	LoggedWrites int64
	// GroupSyncs counts group-commit fsyncs forced by
	// Options.SyncEvery / Options.SyncInterval (system-transaction
	// commit fsyncs are not counted here).
	GroupSyncs int64
	// Splits and Merges count rebalancing operations.
	Splits, Merges int64
	// Checkpoints counts committed crack-boundary checkpoints.
	Checkpoints int64
	// SkippedMaintenance counts maintenance passes forgone because a
	// user transaction held a conflicting lock on the column.
	SkippedMaintenance int64
}

// Coordinator owns the write path of one sharded column: it routes
// updates, group-applies differential files, and rebalances the shard
// map. All methods are safe for concurrent use; reads go directly to
// the column and are never routed through the Coordinator.
type Coordinator struct {
	col  *shard.Column
	opts Options
	// cap is the column's workload recorder (shard.Options.Capture),
	// cached so the write path records without re-copying the column
	// options per write. Nil-safe and usually inactive.
	cap *wcapture.Recorder
	// probe reports a conflicting user-transaction lock on the column:
	// maintenance, being optional structural work done by system
	// transactions, is skipped while one exists (paper §3.3).
	probe func() bool

	writes    atomic.Int64
	applied   atomic.Int64
	seals     atomic.Int64
	logged    atomic.Int64
	syncs     atomic.Int64
	unsynced  atomic.Int64 // logical records appended since the last fsync
	splits    atomic.Int64
	merges    atomic.Int64
	skipped   atomic.Int64
	ckpts     atomic.Int64
	sinceCkpt atomic.Int64 // structural ops since the last checkpoint

	maintMu sync.Mutex // one maintenance pass at a time

	startMu sync.Mutex
	notify  chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

// New creates a coordinator over col. When opts.Log is set, the
// current shard map is bootstrap-logged (one ShardSplit record per
// existing cut, inside a system transaction) so that recovery rebuilds
// the complete map, not only the cuts added later.
func New(col *shard.Column, opts Options) *Coordinator {
	opts = opts.withDefaults()
	g := &Coordinator{
		col:    col,
		opts:   opts,
		cap:    col.Options().Capture,
		probe:  opts.Txns.RefinementProbe(opts.Name),
		notify: make(chan struct{}, 1),
	}
	if opts.Log != nil {
		g.structural(func() ([]wal.Record, bool) {
			recs := make([]wal.Record, 0, len(col.Bounds()))
			for _, cut := range col.Bounds() {
				recs = append(recs, wal.Record{Kind: wal.ShardSplit, A: cut})
			}
			return recs, len(recs) > 0
		})
	}
	return g
}

// Column returns the underlying sharded column (the read surface).
func (g *Coordinator) Column() *shard.Column { return g.col }

// Stats returns a snapshot of the coordinator's activity counters.
func (g *Coordinator) Stats() Stats {
	return Stats{
		Writes:             g.writes.Load(),
		Applied:            g.applied.Load(),
		EpochSeals:         g.seals.Load(),
		LoggedWrites:       g.logged.Load(),
		GroupSyncs:         g.syncs.Load(),
		Splits:             g.splits.Load(),
		Merges:             g.merges.Load(),
		Checkpoints:        g.ckpts.Load(),
		SkippedMaintenance: g.skipped.Load(),
	}
}

// Insert routes one insert to the owning shard's open epoch. A
// context cancelled before the write routes — or while the writer is
// parked behind a structural reroute — returns ctx.Err() with the
// write not applied.
func (g *Coordinator) Insert(ctx context.Context, v int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	span := g.opts.Obs.WriteStart()
	eid, err := g.col.InsertEpoch(ctx, v)
	if err != nil {
		return err
	}
	g.logWrite(v, eid, false)
	g.cap.RecordWrite(v, false, false)
	g.wrote(1)
	g.opts.Obs.RecordWrite(span)
	return nil
}

// DeleteValue routes one delete, reporting whether an instance existed.
func (g *Coordinator) DeleteValue(ctx context.Context, v int64) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	span := g.opts.Obs.WriteStart()
	deleted, eid, err := g.col.DeleteValueEpoch(ctx, v)
	if err != nil {
		return false, err
	}
	if deleted {
		g.logWrite(v, eid, true)
	}
	g.cap.RecordWrite(v, true, deleted)
	g.wrote(1)
	g.opts.Obs.RecordWrite(span)
	return deleted, nil
}

// Apply routes a batch of write operations and returns the number of
// deletes that found an instance. The batch is routed op-by-op (each
// shard's open epoch has its own short latch); batching pays off at
// the structural level, where one group-apply merges the whole sealed
// epoch prefix in a single pass. On a context error the batch stops
// where it stands: ops already routed stay applied, the rest are not.
func (g *Coordinator) Apply(ctx context.Context, batch []Op) (deleted int, err error) {
	for _, op := range batch {
		// The stop-where-it-stands contract: cancellation between ops
		// aborts the rest of the batch even when no write ever parks.
		if err := ctx.Err(); err != nil {
			return deleted, err
		}
		span := g.opts.Obs.WriteStart()
		if op.Delete {
			ok, eid, err := g.col.DeleteValueEpoch(ctx, op.Value)
			if err != nil {
				return deleted, err
			}
			if ok {
				deleted++
				g.logWrite(op.Value, eid, true)
			}
			g.cap.RecordWrite(op.Value, true, ok)
		} else {
			eid, err := g.col.InsertEpoch(ctx, op.Value)
			if err != nil {
				return deleted, err
			}
			g.logWrite(op.Value, eid, false)
			g.cap.RecordWrite(op.Value, false, false)
		}
		g.opts.Obs.RecordWrite(span)
	}
	g.wrote(int64(len(batch)))
	return deleted, nil
}

// logWrite appends one autonomous wal.LogicalWrite record when
// Options.LogWrites is on: the data-tail durability path. The record
// rides outside any system transaction (Txn 0) and is fsynced with the
// next commit — or earlier, under the group-commit policy (SyncEvery /
// SyncInterval); its epoch tag — not its log position — decides during
// recovery whether the checkpoint snapshot already contains it.
func (g *Coordinator) logWrite(v, epochID int64, del bool) {
	if !g.opts.LogWrites || g.opts.Log == nil {
		return
	}
	var op int64
	if del {
		op = 1
	}
	if g.append(wal.Record{Kind: wal.LogicalWrite, A: v, B: epochID, C: op}) == nil {
		g.logged.Add(1)
		g.maybeGroupSync()
	}
}

// maybeGroupSync enforces the SyncEvery half of the group-commit
// policy: once SyncEvery logical records have accumulated since the
// last fsync, force one. The unsynced counter is maintained whenever
// EITHER group-commit bound is active, so an interval-only
// configuration (SyncInterval set, SyncEvery zero) still sees its
// pending records at the next tick. The counter swap makes concurrent
// writers elect exactly one syncer per batch.
func (g *Coordinator) maybeGroupSync() {
	if g.opts.SyncEvery <= 0 && g.opts.SyncInterval <= 0 {
		return
	}
	n := g.unsynced.Add(1)
	if g.opts.SyncEvery <= 0 || n < int64(g.opts.SyncEvery) {
		return
	}
	g.unsynced.Store(0)
	if g.opts.Log.Sync() == nil {
		g.syncs.Add(1)
		g.opts.Obs.RecordCommitBatch(n)
	}
}

// groupSyncTick enforces the SyncInterval half: fsync any records the
// record-count bound has not yet covered.
func (g *Coordinator) groupSyncTick() {
	n := g.unsynced.Swap(0)
	if n == 0 {
		return
	}
	if g.opts.Log.Sync() == nil {
		g.syncs.Add(1)
		g.opts.Obs.RecordCommitBatch(n)
	}
}

// wrote counts routed writes and wakes the background worker every
// CheckEvery writes (non-blocking; a pending wake-up is enough).
func (g *Coordinator) wrote(n int64) {
	before := g.writes.Add(n) - n
	if before/int64(g.opts.CheckEvery) == (before+n)/int64(g.opts.CheckEvery) {
		return
	}
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// Start launches the background maintenance worker (idempotent). The
// worker wakes every CheckEvery routed writes and runs one Maintain
// pass.
func (g *Coordinator) Start() {
	g.startMu.Lock()
	defer g.startMu.Unlock()
	if g.stop != nil {
		return
	}
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	go g.loop(g.stop, g.done)
}

// Close stops the background worker (idempotent; a no-op when Start
// was never called) and runs one final Maintain pass so the column is
// left merged and balanced, followed by a final checkpoint when a Log
// is configured, so a clean shutdown persists all refinement earned.
func (g *Coordinator) Close() {
	g.startMu.Lock()
	stop, done := g.stop, g.done
	g.stop, g.done = nil, nil
	g.startMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	g.Maintain()
	if g.opts.Log != nil {
		g.Checkpoint()
	}
}

func (g *Coordinator) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	// The group-commit interval ticker (Options.SyncInterval) shares
	// the maintenance goroutine: its tick only fsyncs, never merges.
	var tick <-chan time.Time
	if g.opts.SyncInterval > 0 && g.opts.LogWrites && g.opts.Log != nil {
		t := time.NewTicker(g.opts.SyncInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-stop:
			return
		case <-g.notify:
			g.Maintain()
		case <-tick:
			g.groupSyncTick()
		}
	}
}

// Maintain runs one synchronous maintenance pass: group-apply every
// shard whose differential file exceeds ApplyThreshold, then one
// rebalance pass. It returns the number of structural operations
// performed. Maintenance is optional structural work: it is skipped
// entirely while a user transaction holds a conflicting lock on the
// column (system transactions verify user locks, never acquire any).
func (g *Coordinator) Maintain() int {
	g.maintMu.Lock()
	defer g.maintMu.Unlock()
	if g.probe() {
		g.skipped.Add(1)
		return 0
	}
	ops := 0
	// Descending ordinals: a structural change at shard i never moves
	// the ordinals of shards below i.
	stats := g.col.Snapshot()
	for i := len(stats) - 1; i >= 0; i-- {
		if stats[i].PendingInserts+stats[i].PendingDeletes >= g.opts.ApplyThreshold {
			if g.applyShard(i) {
				ops++
			}
		}
	}
	splits, merges := g.Rebalance()
	total := ops + splits + merges
	g.maybeCheckpoint(total)
	return total
}

// applyShard group-applies shard i. The epoch write path (default)
// runs it as two system transactions mirroring the two structural
// steps: an EpochSeal (the open epoch rolls over; writers never park)
// and, once the background merge has published the rebuilt part, an
// EpochApply with the merged watermark. A crash between the two leaves
// a sealed epoch with no committed apply — recovery sees exactly that
// (wal.Catalog.SealedEpochs vs AppliedEpoch) and does not assume the
// base incorporates it. With Options.ParkOnApply the legacy
// single-transaction parked rebuild runs instead (wal.ShardInsert).
func (g *Coordinator) applyShard(i int) bool {
	if g.opts.ParkOnApply {
		return g.structural(func() ([]wal.Record, bool) {
			ap, ok := g.col.ApplyShardParked(i)
			if !ok {
				return nil, false
			}
			g.applied.Add(1)
			return []wal.Record{{
				Kind: wal.ShardInsert,
				A:    int64(ap.Shard), B: int64(ap.Inserts), C: int64(ap.Deletes),
			}}, true
		})
	}
	g.structural(func() ([]wal.Record, bool) {
		se, ok := g.col.SealEpoch(i)
		if !ok {
			// Nothing newly sealed; earlier sealed epochs (a checkpoint
			// roll, or a previous pass whose merge step failed) may
			// still be pending below.
			return nil, false
		}
		g.seals.Add(1)
		return []wal.Record{{
			Kind: wal.EpochSeal,
			A:    int64(se.Shard), B: se.Epoch, C: int64(se.Inserts + se.Deletes),
		}}, true
	})
	return g.structural(func() ([]wal.Record, bool) {
		ap, ok := g.col.ApplySealed(i)
		if !ok {
			return nil, false
		}
		g.applied.Add(1)
		return []wal.Record{{
			Kind: wal.EpochApply,
			A:    int64(ap.Shard), B: ap.Epoch, C: int64(ap.Inserts + ap.Deletes),
		}}, true
	})
}

// structural runs op as one system transaction, bracketing its
// structural records between BeginSystem and CommitSystem. Records are
// appended only after op succeeds — the in-memory structure is the
// source of truth and the log is re-creatable knowledge (§4.2), so an
// attempt that found nothing to do aborts the transaction and leaves
// no trace in the log at all.
//
// structural reports true only when the operation happened AND its
// records (including the commit's fsync) reached the log: a failed
// append leaves the transaction uncommitted on disk, which recovery
// ignores, and callers — the checkpoint writer above all — must not
// treat the operation as durable (truncating the log prefix on the
// strength of a checkpoint that never hit disk would lose the previous
// checkpoint too). The in-memory operation itself is not rolled back;
// it is re-creatable knowledge either way.
func (g *Coordinator) structural(op func() ([]wal.Record, bool)) bool {
	var ok bool
	var logErr error
	_ = g.opts.Txns.RunSystem(func(st *txn.Txn) error {
		var recs []wal.Record
		recs, ok = op()
		if !ok {
			return errNothingToDo
		}
		id := uint64(st.ID())
		logErr = g.append(wal.Record{Kind: wal.BeginSystem, Txn: id})
		for _, r := range recs {
			if logErr != nil {
				break
			}
			r.Txn = id
			logErr = g.append(r)
		}
		if logErr == nil {
			logErr = g.append(wal.Record{Kind: wal.CommitSystem, Txn: id})
		}
		return nil
	})
	return ok && logErr == nil
}

// errNothingToDo aborts a system transaction whose structural
// operation found no work; the abort is bookkeeping, not a failure.
var errNothingToDo = errNothing{}

type errNothing struct{}

// Error implements error.
func (errNothing) Error() string { return "ingest: nothing to do" }

func (g *Coordinator) append(r wal.Record) error {
	if g.opts.Log == nil {
		return nil
	}
	if r.Object == "" {
		r.Object = g.opts.Name
	}
	_, err := g.opts.Log.Append(r)
	return err
}
