package shard

import (
	"sync"
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/workload"
)

// TestApplyShardDoesNotLosePendingWrites hammers one column with
// concurrent writers while the main goroutine forces group-apply
// merges continuously; every write must land exactly once and the
// aggregate invariants must hold (run under -race: this is the
// write-during-merge path).
func TestApplyShardDoesNotLosePendingWrites(t *testing.T) {
	d := workload.NewUniqueUniform(1<<14, 3)
	c := New(d.Values, Options{
		Shards: 4, Seed: 3,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	const writers, perW = 8, 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Fresh values above the domain: every insert is distinct.
				if err := c.Insert(qctx, d.Domain+int64(w*perW+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// The merge forcer keeps applying until every writer is done (one
	// final pass included), so the apply/write overlap happens even on
	// a single-core scheduler.
	writersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(writersDone)
	}()
	applies := 0
	for running := true; running; {
		select {
		case <-writersDone:
			running = false
		default:
		}
		for s := 0; s < c.NumShards(); s++ {
			if _, ok := c.ApplyShard(s); ok {
				applies++
			}
		}
	}
	if applies == 0 {
		t.Fatal("no group-apply merge ever ran during the write storm")
	}
	// One final apply drains what the storm left behind.
	for s := 0; s < c.NumShards(); s++ {
		c.ApplyShard(s)
	}
	if got, want := c.Rows(), len(d.Values)+writers*perW; got != want {
		t.Errorf("Rows() = %d, want %d", got, want)
	}
	n, _, _ := c.Count(qctx, d.Domain, d.Domain+int64(writers*perW))
	if n != int64(writers*perW) {
		t.Errorf("count of inserted band = %d, want %d", n, writers*perW)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadsExactMidMerge checks the snapshot-read rule: a
// query racing a group-apply merge sees base part + all visible epochs
// — the answer over a quiet range never wavers, no matter where the
// merge is in its seal/rebuild/publish sequence.
func TestSnapshotReadsExactMidMerge(t *testing.T) {
	d := workload.NewUniqueUniform(1<<15, 7)
	c := New(d.Values, Options{
		Shards: 4, Seed: 7,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	qlo, qhi := int64(1<<14), int64(1<<14+1<<12)
	want, _, _ := c.Sum(qctx, qlo, qhi)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	violations := make([]int, 4)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s, _, _ := c.Sum(qctx, qlo, qhi); s != want {
					violations[r]++
				}
			}
		}(r)
	}
	// Write OUTSIDE the quiet range while merges churn every shard.
	for i := 0; i < 4000; i++ {
		if err := c.Insert(qctx, d.Domain+int64(i)); err != nil {
			t.Fatal(err)
		}
		if i%256 == 0 {
			for s := 0; s < c.NumShards(); s++ {
				c.ApplyShard(s)
			}
		}
	}
	close(stop)
	readers.Wait()
	for r, v := range violations {
		if v != 0 {
			t.Errorf("reader %d saw %d wavering answers mid-merge", r, v)
		}
	}
}

// TestSealEpochThenApplySealed exercises the two-phase structural API
// the ingest coordinator logs around (EpochSeal / EpochApply).
func TestSealEpochThenApplySealed(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 11)
	c := New(d.Values, Options{Shards: 2, Seed: 11, Index: crackindex.Options{Latching: crackindex.LatchPiece}})

	if _, ok := c.SealEpoch(0); ok {
		t.Fatal("SealEpoch sealed an empty open epoch")
	}
	if _, ok := c.ApplySealed(0); ok {
		t.Fatal("ApplySealed found sealed epochs on a fresh column")
	}
	for i := 0; i < 100; i++ {
		if err := c.Insert(qctx, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	se, ok := c.SealEpoch(0)
	if !ok {
		t.Fatal("SealEpoch found nothing with 100 pending inserts")
	}
	if se.Inserts != 100 || se.Deletes != 0 {
		t.Errorf("SealedEpoch counts = %d/%d, want 100/0", se.Inserts, se.Deletes)
	}
	// Writes after the seal land in the next epoch and survive the apply.
	if err := c.Insert(qctx, 0); err != nil {
		t.Fatal(err)
	}
	ap, ok := c.ApplySealed(0)
	if !ok {
		t.Fatal("ApplySealed found no sealed epochs after SealEpoch")
	}
	if ap.Epoch != se.Epoch || ap.Inserts != 100 || ap.Epochs != 1 {
		t.Errorf("Applied = %+v, want watermark %d, 100 inserts, 1 epoch", ap, se.Epoch)
	}
	st := c.Snapshot()[0]
	if st.BaseEpoch != se.Epoch {
		t.Errorf("BaseEpoch = %d, want %d", st.BaseEpoch, se.Epoch)
	}
	if st.PendingInserts != 1 {
		t.Errorf("post-apply pending = %d, want 1 (the post-seal insert)", st.PendingInserts)
	}
	// Value 0: one base instance + one applied insert + one post-seal
	// pending insert.
	if n, _, _ := c.Count(qctx, 0, 1); n != 3 {
		t.Errorf("count(0,1) = %d, want 3", n)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStructuralOpsCutEpochChainsConsistently interleaves writes,
// seals, splits and merges and checks the final logical contents
// against a model: a split or merge must fold every epoch — sealed and
// open — into the successor bases, losing and duplicating nothing.
func TestStructuralOpsCutEpochChainsConsistently(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 5)
	c := New(d.Values, Options{Shards: 3, Seed: 5, Index: crackindex.Options{Latching: crackindex.LatchPiece}})
	rows := len(d.Values)

	r := workload.NewRNG(99)
	for round := 0; round < 6; round++ {
		for i := 0; i < 500; i++ {
			v := r.Int64n(d.Domain)
			if i%3 == 0 {
				if deleted, err := c.DeleteValue(qctx, v); err != nil {
					t.Fatal(err)
				} else if deleted {
					rows--
				}
			} else {
				if err := c.Insert(qctx, v); err != nil {
					t.Fatal(err)
				}
				rows++
			}
		}
		switch round % 3 {
		case 0:
			c.SealEpoch(round % c.NumShards())
		case 1:
			if _, ok := c.SplitShard(0); !ok {
				t.Log("split found nothing to do")
			}
		case 2:
			if c.NumShards() > 1 {
				c.MergeShards(0)
			}
		}
	}
	if got := c.Rows(); got != rows {
		t.Errorf("Rows() = %d, want %d", got, rows)
	}
	if n, _, _ := c.Count(qctx, -1<<40, 1<<40); n != int64(rows) {
		t.Errorf("full-range count = %d, want %d", n, rows)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// After a split or merge the successor chains must be fresh: every
	// pending write was folded into the new bases.
	if _, ok := c.SplitShard(0); ok {
		for _, st := range c.Snapshot()[:2] {
			if st.PendingInserts+st.PendingDeletes != 0 {
				t.Errorf("shard %d: %d pending writes survived a split outside the base",
					st.Shard, st.PendingInserts+st.PendingDeletes)
			}
		}
	}
}

// TestParkedApplyMatchesEpochApply: the legacy baseline path must
// produce the same logical contents as the epoch path.
func TestParkedApplyMatchesEpochApply(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 17)
	mk := func() *Column {
		return New(d.Values, Options{Shards: 2, Seed: 17, Index: crackindex.Options{Latching: crackindex.LatchPiece}})
	}
	a, b := mk(), mk()
	for i := 0; i < 600; i++ {
		v := int64(i * 3 % int(d.Domain))
		if i%5 == 4 {
			a.DeleteValue(qctx, v)
			b.DeleteValue(qctx, v)
		} else {
			a.Insert(qctx, v)
			b.Insert(qctx, v)
		}
	}
	for s := 0; s < a.NumShards(); s++ {
		a.ApplyShard(s)
	}
	parked := 0
	for s := 0; s < b.NumShards(); s++ {
		if _, ok := b.ApplyShardParked(s); ok {
			parked++
		}
	}
	if parked == 0 {
		t.Error("no ApplyShardParked found pending writes")
	}
	for _, q := range [][2]int64{{0, 100}, {100, 2000}, {-1 << 40, 1 << 40}} {
		na, _, _ := a.Count(qctx, q[0], q[1])
		nb, _, _ := b.Count(qctx, q[0], q[1])
		if na != nb {
			t.Errorf("count[%d,%d): epoch=%d parked=%d", q[0], q[1], na, nb)
		}
		sa, _, _ := a.Sum(qctx, q[0], q[1])
		sb, _, _ := b.Sum(qctx, q[0], q[1])
		if sa != sb {
			t.Errorf("sum[%d,%d): epoch=%d parked=%d", q[0], q[1], sa, sb)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}
