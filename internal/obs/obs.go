// Package obs is the HTTP exposition layer of the observability
// subsystem: it turns one index's metrics.Observer into a scrapeable
// endpoint. The engine layers never import it — they record through
// *metrics.Observer (a leaf dependency); this package only reads.
//
// Routes (all GET):
//
//	/metrics          Prometheus text exposition (histograms as
//	                  summaries with p50/p99/p999 quantile labels,
//	                  counters, gauges; durations in nanoseconds)
//	/debug/vars       expvar-compatible JSON: the process-wide expvar
//	                  set (cmdline, memstats, anything Published) plus
//	                  an "adaptix" object with this index's counters
//	/debug/pprof/...  the standard net/http/pprof handlers
//	/flight           the flight-recorder dump, oldest first, as JSON
//	/snapshot         the live snapshot the facade provides (stats +
//	                  quantile summary), as JSON — what cmd/adaptixstat
//	                  scrapes
//	/health           the watchdog report (per-rule status + evidence)
//	                  with readiness semantics: HTTP 200 while every
//	                  rule passes, 503 once any rule degrades
//	/workload         the live workload signature from the capture
//	                  recorder (read/write mix, selectivity, locality,
//	                  sequentiality), as JSON
//	/                 a plain-text route index
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"adaptix/internal/metrics"
)

// Handler serves one observer over HTTP. Create with NewHandler; it
// implements http.Handler and can be mounted anywhere (http.Serve,
// httptest, a sub-route of a larger mux).
type Handler struct {
	ob  *metrics.Observer
	mux *http.ServeMux
	// snapshot, when non-nil, supplies the /snapshot payload: a
	// JSON-marshalable live view of the index (the facade passes a
	// closure over Index.Stats).
	snapshot func() any
	// health, when non-nil, supplies the /health payload (the facade
	// passes a closure over the watchdog's Eval) plus the readiness
	// verdict that selects the HTTP status code.
	health func() (any, bool)
	// workload, when non-nil, supplies the /workload payload: the live
	// workload signature (the facade passes a closure over the capture
	// recorder's Signature).
	workload func() any
}

// NewHandler builds the handler for ob. snapshot may be nil (the
// /snapshot route then serves 404), as may health (/health serves 404)
// and workload (/workload serves 404).
func NewHandler(ob *metrics.Observer, snapshot func() any, health func() (any, bool), workload func() any) *Handler {
	h := &Handler{ob: ob, snapshot: snapshot, health: health, workload: workload, mux: http.NewServeMux()}
	h.mux.HandleFunc("/", h.serveIndex)
	h.mux.HandleFunc("/metrics", h.serveMetrics)
	h.mux.HandleFunc("/debug/vars", h.serveVars)
	h.mux.HandleFunc("/flight", h.serveFlight)
	h.mux.HandleFunc("/snapshot", h.serveSnapshot)
	h.mux.HandleFunc("/health", h.serveHealth)
	h.mux.HandleFunc("/workload", h.serveWorkload)
	// The pprof handlers from net/http/pprof, mounted explicitly so we
	// control the mux (importing the package for side effects would
	// only register on http.DefaultServeMux).
	h.mux.HandleFunc("/debug/pprof/", pprof.Index)
	h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "adaptix observability endpoint")
	fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
	fmt.Fprintln(w, "  /debug/vars    expvar JSON")
	fmt.Fprintln(w, "  /debug/pprof/  pprof profiles")
	fmt.Fprintln(w, "  /flight        flight-recorder dump (JSON)")
	fmt.Fprintln(w, "  /snapshot      live stats snapshot (JSON)")
	fmt.Fprintln(w, "  /health        watchdog report (JSON; 503 while degraded)")
	fmt.Fprintln(w, "  /workload      live workload signature (JSON)")
}

// quantiles emitted for every histogram summary.
var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

func (h *Handler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg := h.ob.Registry()
	if reg == nil {
		return
	}
	var b strings.Builder
	reg.VisitCounters(func(name string, v int64) {
		writeHelpType(&b, reg, name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, v)
	})
	reg.VisitGauges(func(name string, v int64) {
		writeHelpType(&b, reg, name, "gauge")
		fmt.Fprintf(&b, "%s %d\n", name, v)
	})
	reg.VisitHistograms(func(name string, s metrics.HistSnapshot) {
		writeHelpType(&b, reg, name, "summary")
		for _, sq := range summaryQuantiles {
			fmt.Fprintf(&b, "%s{quantile=\"%s\"} %d\n", name, sq.label, s.Quantile(sq.q))
		}
		fmt.Fprintf(&b, "%s_sum %d\n", name, s.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", name, s.Count())
	})
	fmt.Fprint(w, b.String())
}

func writeHelpType(b *strings.Builder, reg *metrics.Registry, name, typ string) {
	if help := reg.Help(name); help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// serveVars writes expvar-format JSON: every process-wide published
// var (cmdline, memstats, ...) plus an "adaptix" object carrying this
// index's counters and gauges — compatible with expvar consumers
// without publishing into the global (and collision-prone) expvar
// namespace.
func (h *Handler) serveVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprint(w, "{")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "adaptix" {
			return // ours below wins
		}
		if !first {
			fmt.Fprint(w, ",")
		}
		first = false
		fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
	})
	if !first {
		fmt.Fprint(w, ",")
	}
	fmt.Fprintf(w, "\n%q: %s", "adaptix", h.adaptixVars())
	fmt.Fprint(w, "\n}\n")
}

// adaptixVars renders the index's counters and gauges as one JSON
// object in name order.
func (h *Handler) adaptixVars() string {
	vals := map[string]int64{}
	if reg := h.ob.Registry(); reg != nil {
		reg.VisitCounters(func(name string, v int64) { vals[name] = v })
		reg.VisitGauges(func(name string, v int64) { vals[name] = v })
	}
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{")
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: %d", n, vals[n])
	}
	b.WriteString("}")
	return b.String()
}

func (h *Handler) serveFlight(w http.ResponseWriter, r *http.Request) {
	fl := h.ob.Flight()
	if fl == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, fl.Dump())
}

func (h *Handler) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	if h.snapshot == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, h.snapshot())
}

// serveHealth evaluates the watchdog and serves the report with
// readiness semantics: 200 while every rule passes, 503 once any rule
// degrades, so the route works directly as a Kubernetes-style probe.
func (h *Handler) serveHealth(w http.ResponseWriter, r *http.Request) {
	if h.health == nil {
		http.NotFound(w, r)
		return
	}
	report, ok := h.health()
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	w.Write(append(buf, '\n'))
}

// serveWorkload serves the live workload signature: what kind of
// query/write stream the index is facing, per the capture recorder's
// streaming characterizer (schema-complete zeros while capture is
// disabled).
func (h *Handler) serveWorkload(w http.ResponseWriter, r *http.Request) {
	if h.workload == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, h.workload())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
