package adaptix_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"adaptix"
)

// ctx is the uncancellable context the API tests query with.
var ctx = context.Background()

func mustNew(t *testing.T, values []int64, opts ...adaptix.Option) *adaptix.Index {
	t.Helper()
	ix, err := adaptix.New(values, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestPublicAPIQuickstart(t *testing.T) {
	d := adaptix.NewUniqueDataset(10000, 1)
	ix := mustNew(t, d.Values)
	res, err := ix.Count(ctx, 1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3000 {
		t.Fatalf("Count = %d", res.Value)
	}
	res, err = ix.Sum(ctx, 1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64((1000 + 3999) * 3000 / 2); res.Value != want {
		t.Fatalf("Sum = %d, want %d", res.Value, want)
	}
	if ix.Method() != adaptix.Crack {
		t.Fatalf("default method = %v, want Crack", ix.Method())
	}
}

// TestPublicAPIMethodsAgree drives all five methods through the one
// handle with the same query stream: identical checksums, whatever the
// physical structure underneath.
func TestPublicAPIMethodsAgree(t *testing.T) {
	d := adaptix.NewUniqueDataset(20000, 2)
	qs := adaptix.UniformQueries(adaptix.SumQuery, d.Domain, 0.01, 5, 32)
	var checksums []int64
	for _, m := range []adaptix.Method{adaptix.Scan, adaptix.Sort, adaptix.Crack, adaptix.AMerge, adaptix.Hybrid} {
		ix := mustNew(t, d.Values, adaptix.WithMethod(m), adaptix.WithShards(4), adaptix.WithSeed(3))
		run := adaptix.Run(ix, qs, 4)
		if run.Engine != m.String() {
			t.Fatalf("run engine %q, want %q", run.Engine, m.String())
		}
		checksums = append(checksums, run.Checksum)
	}
	for i := 1; i < len(checksums); i++ {
		if checksums[i] != checksums[0] {
			t.Fatalf("method %d disagrees: %d vs %d", i, checksums[i], checksums[0])
		}
	}
}

// TestPublicAPIWritesEveryMethod is the unified write surface: every
// method accepts Insert/Delete/Apply through the same handle, and
// queries see the writes immediately.
func TestPublicAPIWritesEveryMethod(t *testing.T) {
	d := adaptix.NewUniqueDataset(1<<13, 6)
	for _, m := range []adaptix.Method{adaptix.Crack, adaptix.AMerge, adaptix.Hybrid, adaptix.Sort, adaptix.Scan} {
		t.Run(m.String(), func(t *testing.T) {
			ix := mustNew(t, d.Values, adaptix.WithMethod(m), adaptix.WithShards(4), adaptix.WithSeed(3))
			before, err := ix.Count(ctx, -1<<40, 1<<40)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 300; i++ {
				if err := ix.Insert(ctx, d.Domain+i); err != nil {
					t.Fatal(err)
				}
			}
			if ok, err := ix.Delete(ctx, d.Values[0]); err != nil || !ok {
				t.Fatalf("Delete = (%v, %v), want existing instance deleted", ok, err)
			}
			if deleted, err := ix.Apply(ctx, []adaptix.Op{
				{Value: 1 << 41},
				{Delete: true, Value: 1 << 41},
				{Delete: true, Value: -1 << 41}, // nothing to delete
			}); err != nil || deleted != 1 {
				t.Fatalf("Apply = (%d, %v), want 1 delete", deleted, err)
			}
			after, err := ix.Count(ctx, -1<<42, 1<<42)
			if err != nil {
				t.Fatal(err)
			}
			if after.Value != before.Value+300-1 {
				t.Fatalf("Count after writes = %d, want %d", after.Value, before.Value+300-1)
			}
			// Group-applies fold the epochs into the physical structure
			// without changing answers.
			ix.Maintain()
			if n, err := ix.Count(ctx, -1<<42, 1<<42); err != nil || n.Value != after.Value {
				t.Fatalf("Count after Maintain = (%d, %v), want %d", n.Value, err, after.Value)
			}
			if err := ix.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPublicAPIContextSemantics: cancellation before dispatch returns
// ctx.Err() with no refinement side effects, asserted through the
// Stats deltas.
func TestPublicAPIContextSemantics(t *testing.T) {
	d := adaptix.NewUniqueDataset(1<<14, 9)
	ix := mustNew(t, d.Values, adaptix.WithShards(4), adaptix.WithSeed(3))
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.Count(cancelled, 100, 10000); err != context.Canceled {
		t.Fatalf("Count = %v, want Canceled", err)
	}
	if _, err := ix.Sum(cancelled, 100, 10000); err != context.Canceled {
		t.Fatalf("Sum = %v, want Canceled", err)
	}
	if err := ix.Insert(cancelled, 42); err != context.Canceled {
		t.Fatalf("cancelled Insert = %v, want Canceled", err)
	}
	if deleted, err := ix.Delete(cancelled, 1); err != context.Canceled || deleted {
		t.Fatalf("cancelled Delete = (%v, %v), want Canceled", deleted, err)
	}
	if n, err := ix.Apply(cancelled, []adaptix.Op{{Value: 7}}); err != context.Canceled || n != 0 {
		t.Fatalf("cancelled Apply = (%d, %v), want Canceled", n, err)
	}
	for _, st := range ix.Stats().Shards {
		if st.Cracks != 0 || st.Pieces != 0 {
			t.Fatalf("cancelled queries refined shard %d: %+v", st.Shard, st)
		}
	}
	// A deadline long enough for the query bounds it without effect.
	bounded, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if res, err := ix.Sum(bounded, 100, 10000); err != nil || res.Value != d.TrueSum(100, 10000) {
		t.Fatalf("bounded Sum = (%d, %v)", res.Value, err)
	}
}

// TestPublicAPIOptionValidation: Open-only options are rejected by
// New instead of silently ignored, and unknown methods fail fast.
func TestPublicAPIOptionValidation(t *testing.T) {
	d := adaptix.NewUniqueDataset(1000, 3)
	if _, err := adaptix.New(d.Values, adaptix.WithLogWrites()); err == nil {
		t.Fatal("New accepted a durability option")
	}
	if _, err := adaptix.New(d.Values, adaptix.WithValues(d.Values)); err == nil {
		t.Fatal("New accepted WithValues")
	}
	if _, err := adaptix.New(d.Values, adaptix.WithMethod(adaptix.Method(99))); err == nil {
		t.Fatal("New accepted an unknown method")
	}
	if _, err := adaptix.New(d.Values, adaptix.WithShards(0)); err == nil {
		t.Fatal("New accepted zero shards")
	}
}

func TestPublicAPIStats(t *testing.T) {
	d := adaptix.NewUniqueDataset(20000, 6)
	ix := mustNew(t, d.Values, adaptix.WithShards(4), adaptix.WithSeed(3))
	if _, err := ix.Count(ctx, 1000, 4000); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(ctx, 1); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Method != adaptix.Crack {
		t.Fatalf("Stats.Method = %v", st.Method)
	}
	if len(st.Shards) != ix.NumShards() {
		t.Fatalf("Stats has %d shards for %d", len(st.Shards), ix.NumShards())
	}
	if st.Ingest.Writes != 1 {
		t.Fatalf("Stats.Ingest.Writes = %d, want 1", st.Ingest.Writes)
	}
	if ix.Rows() != 20001 {
		t.Fatalf("Rows = %d", ix.Rows())
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIColumnStore(t *testing.T) {
	tab := adaptix.NewTable("R")
	a := adaptix.NewUniqueDataset(5000, 3)
	bd := adaptix.NewUniqueDataset(5000, 4)
	if err := tab.AddColumn("A", a.Values); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("B", bd.Values); err != nil {
		t.Fatal(err)
	}
	ex := adaptix.NewExecutor(tab, adaptix.CrackOptions{Latching: adaptix.LatchPiece})
	got, _, err := ex.SumFetchWhere("B", "A", 100, 900)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i, v := range a.Values {
		if v >= 100 && v < 900 {
			want += bd.Values[i]
		}
	}
	if got != want {
		t.Fatalf("SumFetchWhere = %d, want %d", got, want)
	}
}

func TestPublicAPITransactions(t *testing.T) {
	tm := adaptix.NewTxnManager()
	u := tm.Begin(0) // user
	if err := u.LockHierarchy([]string{"db", "db/R", "db/R/A"}, adaptix.XLk); err != nil {
		t.Fatal(err)
	}
	if !tm.Locks().HasConflicting("db/R/A", adaptix.SLk, 0) {
		t.Fatal("lock invisible")
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIQueryTagTrace: trace events carry the context query tag
// through the unified API, so the Figure 8 timelines keep their
// labels.
func TestPublicAPIQueryTagTrace(t *testing.T) {
	d := adaptix.NewUniqueDataset(50000, 9)
	var mu sync.Mutex
	tags := map[string]int{}
	ix := mustNew(t, d.Values, adaptix.WithShards(1), adaptix.WithCrackOptions(adaptix.CrackOptions{
		Latching: adaptix.LatchPiece,
		Tracer: func(e adaptix.TraceEvent) {
			mu.Lock()
			tags[e.Query]++
			mu.Unlock()
		},
	}))
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			qctx := adaptix.WithQueryTag(ctx, map[int]string{0: "Q1", 1: "Q2", 2: "Q3", 3: "Q4"}[c])
			qs := adaptix.UniformQueries(adaptix.SumQuery, d.Domain, 0.01, uint64(c+1), 16)
			for _, q := range qs {
				want := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
				if s, err := ix.Sum(qctx, q.Lo, q.Hi); err != nil || s.Value != want {
					panic("sum mismatch")
				}
			}
		}(c)
	}
	wg.Wait()
	for _, tag := range []string{"Q1", "Q2", "Q3", "Q4"} {
		if tags[tag] == 0 {
			t.Fatalf("no trace events tagged %s (saw %v)", tag, tags)
		}
	}
}

func TestPublicAPIStructuralLog(t *testing.T) {
	log := adaptix.NewStructuralLog()
	d := adaptix.NewUniqueDataset(1<<13, 11)
	ix := mustNew(t, d.Values, adaptix.WithShards(4), adaptix.WithSeed(3),
		adaptix.WithIngestOptions(adaptix.IngestOptions{
			Name: "R.A", Log: log, ApplyThreshold: 64, MinShardRows: 256, SplitFactor: 1.5,
		}))
	for i := 0; i < 2000; i++ {
		if err := ix.Insert(ctx, int64(i%50)); err != nil {
			t.Fatal(err)
		}
	}
	ix.Maintain()
	st := ix.Stats()
	if st.Ingest.Applied == 0 || st.Ingest.Splits == 0 {
		t.Fatalf("expected group applies and splits, got %+v", st.Ingest)
	}
	if log.Len() == 0 {
		t.Fatal("nothing logged")
	}
}

func TestPublicAPIDurable(t *testing.T) {
	dir := t.TempDir()
	d := adaptix.NewUniqueDataset(1<<12, 29)
	c, err := adaptix.Open(dir,
		adaptix.WithValues(d.Values),
		adaptix.WithShards(4), adaptix.WithSeed(5),
		adaptix.WithNoSync(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := c.Count(ctx, 100, 900); err != nil || res.Skipped {
		t.Fatalf("Count = (%+v, %v)", res, err)
	}
	if err := c.Insert(ctx, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := adaptix.Open(dir, adaptix.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovered() {
		t.Fatal("reopen did not recover")
	}
	if n, err := re.Count(ctx, 100, 900); err != nil || n.Value != d.TrueCount(100, 900) {
		t.Fatalf("Count = (%d, %v), want %d", n.Value, err, d.TrueCount(100, 900))
	}
	if n, err := re.Count(ctx, 1<<20, 1<<20+1); err != nil || n.Value != 1 {
		t.Fatalf("checkpointed insert lost: Count = (%d, %v), want 1", n.Value, err)
	}
}
