// Package wcapture is the workload capture subsystem: an always
// available, low-overhead recorder of the query and write stream one
// index observes, plus a deterministic replayer (replay.go) that turns
// any captured trace into a reproducible benchmark.
//
// The paper's central claim — index build cost amortized into the
// observed query stream — makes the workload itself the system's most
// important input, yet the observability layers of earlier PRs only
// show what the engine did *about* it. This package records the stream
// itself: every sampled read (predicate bounds, method, ctx query tag,
// epoch depth, touched rows, and the answer as a checksum) and every
// sampled write (routed key, delete flag, found flag) as a fixed-width
// 48-byte binary record (trace.go) pushed through a lock-free ring.
// The ring doubles as the in-memory retention (Retained, newest N
// records, the flight-recorder idea applied to the workload), and an
// optional size-rotated on-disk trace file persists the full stream
// for offline replay.
//
// Recording is wait-free and allocation-free: a writer claims a slot
// with one atomic add and publishes through per-field atomics guarded
// by a slot sequence number (odd while mid-write, even once stable) —
// the same discipline as metrics.Flight. The disabled path is a nil
// check plus one atomic load, so a recorder is threaded through the
// hot paths unconditionally and stays inside the query path's 0-alloc
// and ≤5% observability overhead gates.
//
// On top of the raw records a streaming characterizer maintains the
// live workload signature (Signature): read/write mix, the selectivity
// and predicate-width distribution, inter-query key locality, and a
// sequentiality score — the stochastic-cracking adversary detector
// (sequential range sweeps are standard cracking's worst case; a
// seq_score near 1 is the signal to switch crack policies).
package wcapture

import (
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/metrics"
)

// RecKind classifies one captured workload record.
type RecKind uint8

const (
	// RecCount is a range-count query (Result = the count returned).
	RecCount RecKind = iota + 1
	// RecSum is a range-sum query (Result = the sum returned).
	RecSum
	// RecInsert is a routed insert (Lo = the inserted key).
	RecInsert
	// RecDelete is a routed delete (Lo = the key; Result = 1 when an
	// instance existed, 0 otherwise).
	RecDelete
)

// String returns the record kind's trace-dump name.
func (k RecKind) String() string {
	switch k {
	case RecCount:
		return "count"
	case RecSum:
		return "sum"
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Record is one decoded workload record. Reads carry the predicate and
// the answer; writes carry the routed key in Lo. Result doubles as the
// capture-time checksum the replayer verifies (the query answer, or
// the delete's found flag).
type Record struct {
	// Kind classifies the record (count/sum/insert/delete).
	Kind RecKind `json:"kind"`
	// Method is the capture-side adaptive-indexing method ordinal
	// (adaptix.Method; informational — replay may target any method).
	Method uint8 `json:"method"`
	// Epochs is the epoch-chain depth the read observed (clamped to
	// 16 bits; 0 for writes).
	Epochs uint16 `json:"epochs"`
	// Tag is the FNV-1a hash of the ctx query tag (0 when untagged).
	Tag uint32 `json:"tag"`
	// T is the capture wall-clock time in Unix nanoseconds; replay's
	// original-pacing mode reproduces the inter-record gaps.
	T int64 `json:"t"`
	// Lo is the read predicate's lower bound, or the write's routed
	// key.
	Lo int64 `json:"lo"`
	// Hi is the read predicate's upper bound (0 for writes).
	Hi int64 `json:"hi"`
	// Result is the capture-time checksum: the query answer for reads,
	// the found flag for deletes, 0 for inserts.
	Result int64 `json:"result"`
	// Touched is the rows the read touched in index pieces (0 for
	// writes; convergence evidence, not part of the checksum).
	Touched int64 `json:"touched"`
}

// IsRead reports whether the record is a query (count or sum) rather
// than a write.
func (r Record) IsRead() bool { return r.Kind == RecCount || r.Kind == RecSum }

// Options configures a Recorder (the facade's WithWorkloadCapture).
type Options struct {
	// SampleEvery captures 1 in N operations (default 1: every
	// operation). Sampled-out operations cost one atomic add.
	SampleEvery int
	// Ring is the lock-free ring capacity in records — also the
	// in-memory retention Retained() serves (default 8192, minimum
	// 64).
	Ring int
	// Sink, when non-empty, is the path of the on-disk trace file a
	// background drainer appends every captured record to. Empty keeps
	// capture in-memory only (the ring retains the newest Ring
	// records).
	Sink string
	// MaxBytes rotates the sink file when it exceeds this size: the
	// current file is renamed to Sink+".1" (replacing any previous
	// rotation) and a fresh file is started, bounding disk use at
	// about twice MaxBytes. Default 256 MiB.
	MaxBytes int64
}

func (o Options) withDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	if o.Ring <= 0 {
		o.Ring = 8192
	}
	if o.Ring < 64 {
		o.Ring = 64
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	return o
}

// slot stores one record entirely in atomics so concurrent
// record/drain/Retained stay race-free. seq doubles as the publication
// guard: odd while a writer is mid-update, even (and equal to
// 2*(recordSeq+1)) once stable — the metrics.Flight discipline.
type slot struct {
	seq  atomic.Uint64
	meta atomic.Uint64 // kind<<56 | method<<48 | epochs<<32 | tag
	t    atomic.Int64
	lo   atomic.Int64
	hi   atomic.Int64
	res  atomic.Int64
	tch  atomic.Int64
}

// Recorder captures one index's workload stream. All recording methods
// are nil-safe, wait-free, and allocation-free; a disabled recorder
// (every index has one) costs a nil check and one atomic load per
// operation. Create with New; Close flushes and closes the sink.
type Recorder struct {
	enabled     atomic.Bool
	sampleEvery uint64
	tick        atomic.Uint64 // sampling clock (all operations)
	method      atomic.Uint32 // capture-side adaptix.Method ordinal

	slots []slot
	next  atomic.Uint64 // next record sequence number

	// Streaming signature state. The last-read fields are a telemetry
	// sketch: concurrent readers may interleave their updates, which
	// perturbs the locality estimate but never its safety.
	reads, writes      atomic.Int64
	widthH, jumpH      metrics.Histogram
	hasLast            atomic.Bool
	lastEnd, lastWidth atomic.Int64
	lastMid            atomic.Int64
	seqHits, pairs     atomic.Int64
	localHits          atomic.Int64
	domainLo, domainHi atomic.Int64
	domainW            atomic.Int64
	dropped            atomic.Int64
	dropping           atomic.Bool // edge-trigger latch for the drop flight event
	ob                 *metrics.Observer

	// Sink state, owned by the drainer goroutine (and by Close after
	// the drainer has stopped).
	sink      *traceSink
	cursor    uint64 // next record sequence the drainer will persist
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// drainInterval is the sink drainer's wake-up period: short enough
// that a ring sized for bursts rarely wraps past the cursor, long
// enough to batch encodes behind one buffered writer.
const drainInterval = 5 * time.Millisecond

// New builds a recorder. With enabled false (the default for every
// index built without WithWorkloadCapture) the recorder allocates no
// ring and records nothing, but still serves a schema-complete zero
// Signature; o is ignored. With enabled true the ring is allocated,
// sampling is armed, and — when o.Sink is set — the on-disk trace file
// is created and a background drainer started. The
// wcapture_dropped_records counter is registered on ob's registry
// either way so the /metrics schema is stable.
func New(o Options, enabled bool, ob *metrics.Observer) (*Recorder, error) {
	r := &Recorder{ob: ob}
	if reg := ob.Registry(); reg != nil {
		reg.CounterFunc("wcapture_dropped_records",
			"workload records lost to capture-ring overflow before the sink drained them",
			r.Dropped)
	}
	if !enabled {
		return r, nil
	}
	o = o.withDefaults()
	r.sampleEvery = uint64(o.SampleEvery)
	r.slots = make([]slot, o.Ring)
	if o.Sink != "" {
		s, err := newTraceSink(o.Sink, o.MaxBytes)
		if err != nil {
			return nil, err
		}
		r.sink = s
		r.stop = make(chan struct{})
		r.done = make(chan struct{})
		go r.drainLoop()
	}
	r.enabled.Store(true)
	return r, nil
}

// Active reports whether the recorder is capturing. Nil-safe; the
// hot paths gate their record calls (and the ctx tag extraction) on
// it.
func (r *Recorder) Active() bool { return r != nil && r.enabled.Load() }

// SetMethod records the capture-side adaptive-indexing method ordinal
// stamped into every subsequent record. Nil-safe.
func (r *Recorder) SetMethod(m uint8) {
	if r == nil {
		return
	}
	r.method.Store(uint32(m))
}

// SetDomain tells the characterizer the key domain [lo, hi] so
// selectivity and locality have a denominator. First call wins;
// nil-safe. The facade calls it with shard.Column.KeyDomain alongside
// the heatmap's SetKeyDomain.
func (r *Recorder) SetDomain(lo, hi int64) {
	if r == nil || hi <= lo || r.domainW.Load() != 0 {
		return
	}
	r.domainLo.Store(lo)
	r.domainHi.Store(hi)
	r.domainW.Store(hi - lo)
}

// sampleIn advances the sampling clock and reports whether this
// operation is captured.
func (r *Recorder) sampleIn() bool {
	if r.sampleEvery <= 1 {
		return true
	}
	return r.tick.Add(1)%r.sampleEvery == 0
}

// RecordRead captures one range query: predicate bounds, the answer
// (the replay checksum), rows touched, the epoch-chain depth observed,
// and the ctx query tag. Nil-safe, wait-free, allocation-free; the
// shard executor calls it on every successful query when Active.
func (r *Recorder) RecordRead(tag string, sum bool, lo, hi, result, touched int64, epochs int) {
	if r == nil || !r.enabled.Load() || !r.sampleIn() {
		return
	}
	kind := RecCount
	if sum {
		kind = RecSum
	}
	r.push(kind, tag, lo, hi, result, touched, epochs)

	// Streaming signature.
	r.reads.Add(1)
	w := hi - lo
	r.widthH.Record(w)
	mid := lo + w/2
	if r.hasLast.Load() {
		lastMid := r.lastMid.Load()
		jump := mid - lastMid
		if jump < 0 {
			jump = -jump
		}
		r.jumpH.Record(jump)
		r.pairs.Add(1)
		gap := lo - r.lastEnd.Load()
		if gap < 0 {
			gap = -gap
		}
		step := r.lastWidth.Load()
		if step < 1 {
			step = 1
		}
		if gap <= step {
			r.seqHits.Add(1)
		}
		if dw := r.domainW.Load(); dw > 0 && jump <= dw/64 {
			r.localHits.Add(1)
		}
	} else {
		r.hasLast.Store(true)
	}
	r.lastEnd.Store(hi)
	r.lastWidth.Store(w)
	r.lastMid.Store(mid)
}

// RecordWrite captures one routed write: the key, whether it was a
// delete, and — for deletes — whether an instance existed (the replay
// checksum). Nil-safe, wait-free, allocation-free; the ingest router
// calls it after every successful write when Active.
func (r *Recorder) RecordWrite(key int64, del, found bool) {
	if r == nil || !r.enabled.Load() || !r.sampleIn() {
		return
	}
	kind := RecInsert
	var res int64
	if del {
		kind = RecDelete
		if found {
			res = 1
		}
	}
	r.push(kind, "", key, 0, res, 0, 0)
	r.writes.Add(1)
}

// push claims the next ring slot and publishes one record through the
// slot-sequence guard.
func (r *Recorder) push(kind RecKind, tag string, lo, hi, result, touched int64, epochs int) {
	if epochs < 0 {
		epochs = 0
	}
	if epochs > 0xffff {
		epochs = 0xffff
	}
	meta := uint64(kind)<<56 | uint64(r.method.Load()&0xff)<<48 |
		uint64(uint16(epochs))<<32 | uint64(hashTag(tag))
	seq := r.next.Add(1) - 1
	s := &r.slots[seq%uint64(len(r.slots))]
	s.seq.Store(2*seq + 1)
	s.meta.Store(meta)
	s.t.Store(time.Now().UnixNano())
	s.lo.Store(lo)
	s.hi.Store(hi)
	s.res.Store(result)
	s.tch.Store(touched)
	s.seq.Store(2 * (seq + 1))
}

// decodeSlot reads one stable slot into a Record (caller re-validates
// the slot sequence afterwards).
func decodeSlot(s *slot) Record {
	meta := s.meta.Load()
	return Record{
		Kind:    RecKind(meta >> 56),
		Method:  uint8(meta >> 48),
		Epochs:  uint16(meta >> 32),
		Tag:     uint32(meta),
		T:       s.t.Load(),
		Lo:      s.lo.Load(),
		Hi:      s.hi.Load(),
		Result:  s.res.Load(),
		Touched: s.tch.Load(),
	}
}

// hashTag is FNV-1a 32 over the query tag ("" hashes to 0 so untagged
// records are distinguishable).
func hashTag(s string) uint32 {
	if s == "" {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Retained returns the in-memory retention — the newest ring-full of
// captured records, oldest first. Slots being concurrently overwritten
// are skipped rather than returned torn. Nil-safe (nil on a disabled
// recorder).
func (r *Recorder) Retained() []Record {
	if r == nil || r.slots == nil {
		return nil
	}
	hi := r.next.Load()
	lo := uint64(0)
	if hi > uint64(len(r.slots)) {
		lo = hi - uint64(len(r.slots))
	}
	out := make([]Record, 0, hi-lo)
	for seq := lo; seq < hi; seq++ {
		s := &r.slots[seq%uint64(len(r.slots))]
		want := 2 * (seq + 1)
		if s.seq.Load() != want {
			continue
		}
		rec := decodeSlot(s)
		if s.seq.Load() != want {
			continue // overwritten while decoding: discard the torn read
		}
		out = append(out, rec)
	}
	return out
}

// Dropped returns the number of records lost to ring overflow before
// the sink drained them (always 0 without a sink: the ring then IS the
// retention, and overwriting the oldest is the retention policy, not a
// loss). Nil-safe.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// noteDrop accounts n lost records and, on the first loss of a burst,
// records an edge-triggered flight event (A = records lost in this
// burst's first observation, B = total lost so far) so silent trace
// loss is visible in /flight and adaptixstat.
func (r *Recorder) noteDrop(n int64) {
	total := r.dropped.Add(n)
	if !r.dropping.Swap(true) {
		if fl := r.ob.Flight(); fl != nil {
			fl.Record(metrics.EvCaptureDrop, -1, 0, n, total)
		}
	}
}

// drainLoop is the sink drainer: it wakes every drainInterval, drains
// newly published ring records to the trace file, and exits on stop
// (Close runs one final drain after it has exited).
func (r *Recorder) drainLoop() {
	defer close(r.done)
	t := time.NewTicker(drainInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.drain()
		case <-r.stop:
			return
		}
	}
}

// drain persists every stable ring record from the drainer's cursor up
// to the current head. If the ring wrapped past the cursor the gap is
// accounted as dropped records; a slot claimed but not yet published
// stops the pass (retried next tick). Runs only on the drainer
// goroutine, or on Close after the drainer has exited.
func (r *Recorder) drain() {
	hi := r.next.Load()
	cur := r.cursor
	if hi > uint64(len(r.slots)) {
		if floor := hi - uint64(len(r.slots)); cur < floor {
			r.noteDrop(int64(floor - cur))
			cur = floor
		}
	}
	lost := false
	for seq := cur; seq < hi; seq++ {
		s := &r.slots[seq%uint64(len(r.slots))]
		want := 2 * (seq + 1)
		got := s.seq.Load()
		if got < want {
			break // claimed but unpublished: retry next tick
		}
		if got > want {
			r.noteDrop(1) // lapped during this pass
			lost = true
			cur = seq + 1
			continue
		}
		rec := decodeSlot(s)
		if s.seq.Load() != want {
			r.noteDrop(1)
			lost = true
			cur = seq + 1
			continue
		}
		if err := r.sink.append(rec); err != nil {
			// Sink failure (disk full, rotation rename lost a race with
			// an external mover): account the record and keep capturing
			// — the in-memory retention and signature stay live.
			r.noteDrop(1)
			lost = true
		}
		cur = seq + 1
	}
	r.cursor = cur
	if !lost && cur == hi {
		r.dropping.Store(false) // clean pass: re-arm the edge trigger
	}
}

// Close stops capture, runs a final drain, and flushes and closes the
// sink. Idempotent, nil-safe; later calls return the first call's
// error.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.closeOnce.Do(func() {
		r.enabled.Store(false)
		if r.sink == nil {
			return
		}
		close(r.stop)
		<-r.done
		r.drain()
		r.closeErr = r.sink.close()
	})
	return r.closeErr
}
