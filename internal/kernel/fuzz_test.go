package kernel

import (
	"encoding/binary"
	"math"
	"testing"
)

// valsFromBytes derives the fuzzed column: eight raw bytes per int64,
// little-endian, trailing partial word dropped.
func valsFromBytes(raw []byte) []int64 {
	v := make([]int64, 0, len(raw)/8)
	for len(raw) >= 8 {
		v = append(v, int64(binary.LittleEndian.Uint64(raw)))
		raw = raw[8:]
	}
	return v
}

func le(xs ...int64) []byte {
	out := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		out = binary.LittleEndian.AppendUint64(out, uint64(x))
	}
	return out
}

// FuzzRangeKernels differentially fuzzes every kernel against the
// scalar reference over arbitrary values and bounds. The seeds pin the
// known edge cases: empty input, bounds at MaxInt64-1 (where
// subtraction-based range tricks overflow), and duplicate-heavy
// columns.
func FuzzRangeKernels(f *testing.F) {
	f.Add([]byte{}, int64(0), int64(10))
	f.Add(le(math.MaxInt64, math.MaxInt64-1, 0, -1, math.MinInt64),
		int64(math.MaxInt64-1), int64(math.MaxInt64))
	f.Add(le(5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5), int64(5), int64(6))
	f.Add(le(1, 2, 3), int64(3), int64(1)) // inverted bounds
	f.Fuzz(func(t *testing.T, raw []byte, lo, hi int64) {
		v := valsFromBytes(raw)
		if got, want := CountRange(v, lo, hi), refCount(v, lo, hi); got != want {
			t.Fatalf("CountRange(%v, [%d,%d)) = %d, want %d", v, lo, hi, got, want)
		}
		if got, want := SumRange(v, lo, hi), refSum(v, lo, hi); got != want {
			t.Fatalf("SumRange(%v, [%d,%d)) = %d, want %d", v, lo, hi, got, want)
		}
		var plain int64
		for _, x := range v {
			plain += x
		}
		if got := Sum(v); got != plain {
			t.Fatalf("Sum(%v) = %d, want %d", v, got, plain)
		}
		mn, mx, s := MinMaxSum(v)
		wmn, wmx, ws := refMinMaxSum(v)
		if mn != wmn || mx != wmx || s != ws {
			t.Fatalf("MinMaxSum(%v) = (%d,%d,%d), want (%d,%d,%d)", v, mn, mx, s, wmn, wmx, ws)
		}
		// Chunk masks agree with per-row evaluation.
		c := v
		if len(c) > ChunkSize {
			c = c[:ChunkSize]
		}
		m := Mask64(c, lo, hi)
		for j, x := range c {
			if want := x >= lo && x < hi; (m>>uint(j)&1 == 1) != want {
				t.Fatalf("Mask64 bit %d of %v = %v, want %v", j, c, !want, want)
			}
		}
	})
}
