package cracker

// DualArray is the physical structure of a cracker *map* as used by
// sideways cracking (Idreos et al., "Self-organizing tuple
// reconstruction in column stores", SIGMOD 2009 — reference [22] of
// the paper, whose concurrency-control techniques "apply as is" to it,
// §5 "Other Adaptive Indexing Methods").
//
// A cracker map M(A,B) holds aligned pairs of a selection attribute
// (head) and a projection attribute (tail). Cracking reorganizes both
// arrays together on head values, so that after a crack the tail
// values of a qualifying range are contiguous — no positional fetch
// against the base column is needed.
type DualArray struct {
	head []int64
	tail []int64
}

// NewDual builds a cracker map over aligned head/tail columns.
// The inputs are copied, not retained.
func NewDual(head, tail []int64) *DualArray {
	if len(head) != len(tail) {
		panic("cracker: NewDual requires aligned columns")
	}
	d := &DualArray{
		head: make([]int64, len(head)),
		tail: make([]int64, len(tail)),
	}
	copy(d.head, head)
	copy(d.tail, tail)
	return d
}

// Len returns the number of pairs.
func (d *DualArray) Len() int { return len(d.head) }

// Head returns the head (selection) value at position i.
func (d *DualArray) Head(i int) int64 { return d.head[i] }

// Tail returns the tail (projection) value at position i.
func (d *DualArray) Tail(i int) int64 { return d.tail[i] }

// CrackInTwo partitions positions [lo, hi) on head values so that all
// heads < pivot precede all heads >= pivot, moving tails along, and
// returns the split position.
func (d *DualArray) CrackInTwo(lo, hi int, pivot int64) int {
	i, j := lo, hi-1
	for {
		for i <= j && d.head[i] < pivot {
			i++
		}
		for i <= j && d.head[j] >= pivot {
			j--
		}
		if i >= j {
			return i
		}
		d.head[i], d.head[j] = d.head[j], d.head[i]
		d.tail[i], d.tail[j] = d.tail[j], d.tail[i]
		i++
		j--
	}
}

// CrackInThree partitions positions [lo, hi) into heads < a,
// a <= heads < b, heads >= b, and returns the two split positions.
func (d *DualArray) CrackInThree(lo, hi int, a, b int64) (posA, posB int) {
	if a > b {
		panic("cracker: CrackInThree requires a <= b")
	}
	if a == b {
		p := d.CrackInTwo(lo, hi, a)
		return p, p
	}
	lp, i, hp := lo, lo, hi-1
	for i <= hp {
		v := d.head[i]
		switch {
		case v < a:
			d.head[i], d.head[lp] = d.head[lp], d.head[i]
			d.tail[i], d.tail[lp] = d.tail[lp], d.tail[i]
			lp++
			i++
		case v >= b:
			d.head[i], d.head[hp] = d.head[hp], d.head[i]
			d.tail[i], d.tail[hp] = d.tail[hp], d.tail[i]
			hp--
		default:
			i++
		}
	}
	return lp, hp + 1
}

// SumTail sums the tail values at positions [lo, hi).
func (d *DualArray) SumTail(lo, hi int) int64 {
	var s int64
	for _, v := range d.tail[lo:hi] {
		s += v
	}
	return s
}

// ScanSumTail sums tail values whose heads satisfy va <= head < vb
// among positions [lo, hi), by brute-force scan (the conflict-
// avoidance fallback).
func (d *DualArray) ScanSumTail(lo, hi int, va, vb int64) int64 {
	var s int64
	for i := lo; i < hi; i++ {
		if d.head[i] >= va && d.head[i] < vb {
			s += d.tail[i]
		}
	}
	return s
}

// ScanCountHead counts heads in [va, vb) among positions [lo, hi).
func (d *DualArray) ScanCountHead(lo, hi int, va, vb int64) int64 {
	var c int64
	for i := lo; i < hi; i++ {
		if d.head[i] >= va && d.head[i] < vb {
			c++
		}
	}
	return c
}

// HeadValues returns a copy of the head array (for tests).
func (d *DualArray) HeadValues() []int64 {
	out := make([]int64, len(d.head))
	copy(out, d.head)
	return out
}

// TailValues returns a copy of the tail array (for tests).
func (d *DualArray) TailValues() []int64 {
	out := make([]int64, len(d.tail))
	copy(out, d.tail)
	return out
}
