// Semantic observability: the Observer methods that watch the engine
// *as an adaptive index* rather than as a generic server — where the
// load lands in the key space (heatmap), how much data each query
// still has to touch (the paper's cost-decay curve, live), how often
// the covered-aggregate fast path answers without touching an index,
// and the depth gauges (epoch chains, WAL-since-checkpoint) the health
// watchdog evaluates.
//
// Everything here keeps the package's overhead contract: nil-safe,
// allocation-free, atomic adds on pre-registered instruments.
package metrics

import "time"

const (
	// ConvWindow is the number of queries per decay-series sample: the
	// mean rows-touched of each consecutive window of ConvWindow
	// queries becomes one series point.
	ConvWindow = 256
	// ConvSeriesLen is the number of retained decay-series samples.
	ConvSeriesLen = 64
)

// SetKeyDomain installs the key-range heatmap over the inclusive
// domain [lo, hi]. The first caller wins: the facade sets it once the
// column bounds are known; recordings before that are dropped.
func (o *Observer) SetKeyDomain(lo, hi int64) {
	if o == nil {
		return
	}
	o.heat.CompareAndSwap(nil, NewHeatmap(lo, hi))
}

// RecordRangeQuery marks the buckets a query's half-open predicate
// [lo, hi) overlaps in the heatmap.
func (o *Observer) RecordRangeQuery(lo, hi int64) {
	if o == nil {
		return
	}
	o.heat.Load().RecordRange(lo, hi)
}

// RecordWriteKey marks a routed insert/delete key in the heatmap.
func (o *Observer) RecordWriteKey(v int64) {
	if o == nil {
		return
	}
	o.heat.Load().RecordKey(v)
}

// Heat returns a snapshot of the key-range heatmap (zero when no
// domain was set).
func (o *Observer) Heat() HeatSnapshot {
	if o == nil {
		return HeatSnapshot{}
	}
	return o.heat.Load().Snapshot()
}

// RecordQueryProfile records one completed query's semantic profile:
// the predicate's heatmap footprint, the shard-routing outcome
// (visited shards overlapped the predicate, covered of them were
// answered by the covered-aggregate fast path), and the rows
// physically touched.
//
// This sits on every query, and atomic read-modify-writes are full
// fences that serialize rather than pipeline, so the fast path is
// exactly ONE atomic add: the packed window word, which carries the
// touched sum and query count the convergence series needs exactly.
// The wider profile — histogram bucket, heatmap range, routing
// counters — is recorded by every profileSample-th query with weight
// profileSample, which keeps every expected count unbiased while
// amortizing those adds to a fraction of a fence per query. The
// profile is a telemetry sketch, not an audit log; only the series
// means and the lifetime sums are exact.
func (o *Observer) RecordQueryProfile(lo, hi, visited, covered, touched int64) {
	if o == nil {
		return
	}
	n := touched
	if n < 0 {
		n = 0
	} else if n > touchedCap {
		n = touchedCap
	}
	v := o.win.Add(n<<winShift | 1)
	if v&winMask == ConvWindow {
		o.closeWindow()
	} else if v&(profileSample-1) != 0 {
		return
	}
	o.queryTouched.recordBucket(touched, profileSample)
	o.heat.Load().RecordRangeN(lo, hi, profileSample)
	o.rout.Add(visited<<routShift | covered)
}

// RecordRouting records a shard-routing outcome alone (tests and
// non-query paths; queries use RecordQueryProfile). It lands directly
// in the cold cumulative counters, bypassing the packed accumulator
// and its drain cadence.
func (o *Observer) RecordRouting(visited, covered int64) {
	if o == nil {
		return
	}
	o.routVisits.Add(visited)
	o.routCovered.Add(covered)
}

// RecordTouched records the rows a query physically touched (scanned
// or cracked, summed across its sub-queries) — the live form of the
// paper's per-query cost that decays as the index converges. Every
// ConvWindow queries the window mean is pushed into the decay series.
func (o *Observer) RecordTouched(n int64) {
	if o == nil {
		return
	}
	o.recordTouched(n)
}

// winShift packs the running rows-touched sum and the window's query
// count into one atomic word: sum in the high bits, count in the low
// 16. One atomic add maintains both; the closer of a window (the add
// that brings the count to ConvWindow) swaps the word out and
// publishes the mean. Adds racing the swap fold into whichever window
// captures them — the series is a telemetry sketch, not an audit log.
// routShift packs sampled per-query shard visits and covered hits the
// same way (visits high, covered low 32); the window close drains the
// packed words into the cold cumulative fields, so a lifetime readout
// is always cold-total + live-packed with no per-query cost.
const (
	winShift = 16
	winMask  = 1<<winShift - 1
	// touchedCap bounds one sample so ConvWindow packed samples cannot
	// overflow the sum field (47 bits of headroom above the count).
	touchedCap = 1 << 38
	routShift  = 32
	routMask   = 1<<routShift - 1
	// profileSample is the sampling stride of the wide query profile:
	// RecordQueryProfile records the histogram/heatmap/routing profile
	// on every profileSample-th query, weighted by profileSample. Must
	// be a power of two dividing ConvWindow.
	profileSample = 8
)

func (o *Observer) recordTouched(n int64) {
	o.queryTouched.recordBucket(n, 1)
	if n < 0 {
		n = 0
	} else if n > touchedCap {
		n = touchedCap
	}
	v := o.win.Add(n<<winShift | 1)
	if v&winMask == ConvWindow {
		o.closeWindow()
	}
}

// closeWindow runs once per ConvWindow queries: it swaps out the
// packed accumulators, publishes the window's mean rows-touched into
// the decay series, and folds the deferred bookkeeping (histogram sum,
// lifetime routing totals, with the sampling weight applied) into the
// cold fields.
func (o *Observer) closeWindow() {
	w := o.win.Swap(0)
	sum, cnt := w>>winShift, w&winMask
	o.queryTouched.addSum(sum)
	r := o.rout.Swap(0)
	o.routVisits.Add(profileSample * (r >> routShift))
	o.routCovered.Add(profileSample * (r & routMask))
	if cnt == 0 {
		return
	}
	// Stored as mean+1 so an untouched slot (0) is distinguishable.
	o.series[o.winDone.Load()%ConvSeriesLen].Store(sum/cnt + 1)
	o.winDone.Add(1)
}

// ConvergenceSeries returns the mean rows-touched of recent
// ConvWindow-query windows, oldest first (at most ConvSeriesLen
// points). A converging index shows a decaying series; a flat,
// high series is the stagnation signature the watchdog looks for.
func (o *Observer) ConvergenceSeries() []int64 {
	if o == nil {
		return nil
	}
	windows := o.winDone.Load()
	n := windows
	if n > ConvSeriesLen {
		n = ConvSeriesLen
	}
	out := make([]int64, 0, n)
	for i := windows - n; i < windows; i++ {
		v := o.series[i%ConvSeriesLen].Load()
		if v > 0 {
			out = append(out, v-1)
		}
	}
	return out
}

// TouchedSnapshot returns the rows-touched histogram snapshot. The
// bucket counts are exact; the sum adds the still-open window's
// packed contribution on top of the drained histogram sum.
func (o *Observer) TouchedSnapshot() HistSnapshot {
	if o == nil {
		return HistSnapshot{}
	}
	s := o.queryTouched.Snapshot()
	s.Sum += o.win.Load() >> winShift
	return s
}

// Routing returns the lifetime shard-visit and covered-fast-path
// counts: the drained cold totals plus the still-packed live window
// (scaled by the sampling weight). Query-path contributions are
// sampled estimates; RecordRouting contributions are exact.
func (o *Observer) Routing() (visited, covered int64) {
	if o == nil {
		return 0, 0
	}
	r := o.rout.Load()
	return o.routVisits.Load() + profileSample*(r>>routShift),
		o.routCovered.Load() + profileSample*(r&routMask)
}

// AddWALSince accumulates WAL append volume into the since-checkpoint
// gauges (called by the WAL sink on every framed write).
func (o *Observer) AddWALSince(bytes, records int64) {
	if o == nil {
		return
	}
	o.walSinceBytes.Add(bytes)
	o.walSinceRecords.Add(records)
}

// ResetWALSince zeroes the since-checkpoint gauges (called when a
// checkpoint durably lands).
func (o *Observer) ResetWALSince() {
	if o == nil {
		return
	}
	o.walSinceBytes.Set(0)
	o.walSinceRecords.Set(0)
}

// WALSince returns the WAL bytes and records appended since the last
// checkpoint.
func (o *Observer) WALSince() (bytes, records int64) {
	if o == nil {
		return 0, 0
	}
	return o.walSinceBytes.Load(), o.walSinceRecords.Load()
}

// SetEpochDepth publishes the epoch-machinery depth gauges: the
// longest per-shard chain and the total sealed-but-unapplied epoch
// files (sampled by the health watchdog from shard stats).
func (o *Observer) SetEpochDepth(maxChain, sealedUnapplied int64) {
	if o == nil {
		return
	}
	o.chainLenMax.Set(maxChain)
	o.sealedUnapplied.Set(sealedUnapplied)
}

// EpochDepth returns the current epoch depth gauges.
func (o *Observer) EpochDepth() (maxChain, sealedUnapplied int64) {
	if o == nil {
		return 0, 0
	}
	return o.chainLenMax.Load(), o.sealedUnapplied.Load()
}

// RecordRecovery publishes the recovery-time breakdown measured by
// durable Open: checkpoint snapshot load, WAL segment scan, and crack
// warm-replay + shard rebuild.
func (o *Observer) RecordRecovery(ckptLoad, walScan, replay time.Duration) {
	if o == nil {
		return
	}
	o.recoverCkptNS.Set(int64(ckptLoad))
	o.recoverScanNS.Set(int64(walScan))
	o.recoverReplayNS.Set(int64(replay))
}

// RecordHealth records a health-rule transition in the flight
// recorder (rule = ordinal in the watchdog's rule list; degraded
// reports the new state).
func (o *Observer) RecordHealth(rule int64, degraded bool) {
	if o == nil {
		return
	}
	var b int64
	if degraded {
		b = 1
	}
	o.flight.Record(EvHealth, -1, 0, rule, b)
}
