// Skew: adaptive indexing optimizes only what the workload touches.
//
// A zipf-skewed stream concentrates queries on a hot region of the
// domain. The defining property of adaptive indexing (paper §1): "the
// more often a key range is queried, the more its representation is
// optimized; conversely ... indexes are not optimized in key ranges
// that are not queried." The example measures where the crack
// boundaries land and how hot-range queries get faster than cold ones.
//
// Run: go run ./examples/skew
package main

import (
	"context"
	"fmt"
	"time"

	"adaptix"
	"adaptix/internal/workload"
)

func main() {
	const rows = 1 << 20
	ctx := context.Background()
	data := adaptix.NewUniqueDataset(rows, 21)
	ix, err := adaptix.New(data.Values,
		adaptix.WithShards(1),
		adaptix.WithCrackOptions(adaptix.CrackOptions{Latching: adaptix.LatchPiece}),
	)
	if err != nil {
		panic(err)
	}
	defer ix.Close()

	// Zipf-skewed queries: bucket 0 of 64 is the hottest.
	gen := workload.NewZipf(workload.Sum, data.Domain, 0.005, 1.0, 7)
	const n = 512
	var hotTime, coldTime time.Duration
	var hotN, coldN int
	for i := 0; i < n; i++ {
		q := gen.Next()
		start := time.Now()
		if _, err := ix.Sum(ctx, q.Lo, q.Hi); err != nil {
			panic(err)
		}
		el := time.Since(start)
		if i < n/2 {
			continue // warm-up half; measure the steady state
		}
		if q.Lo < data.Domain/8 {
			hotTime += el
			hotN++
		} else {
			coldTime += el
			coldN++
		}
	}

	// Where did the boundaries land?
	hotBoundaries, coldBoundaries := 0, 0
	for _, set := range ix.CrackBoundaries() {
		for _, b := range set {
			if b < data.Domain/8 {
				hotBoundaries++
			} else {
				coldBoundaries++
			}
		}
	}
	fmt.Printf("zipf workload over %d rows, %d queries\n\n", rows, n)
	fmt.Printf("crack boundaries in hot 1/8 of domain: %d\n", hotBoundaries)
	fmt.Printf("crack boundaries in cold 7/8 of domain: %d\n", coldBoundaries)
	fmt.Printf("\nhot-region density is %.1fx the cold density\n",
		float64(hotBoundaries)/1.0/(float64(coldBoundaries)/7.0))
	if hotN > 0 && coldN > 0 {
		fmt.Printf("\nsteady-state mean query time: hot %v (%d q), cold %v (%d q)\n",
			(hotTime / time.Duration(hotN)).Round(time.Microsecond), hotN,
			(coldTime / time.Duration(coldN)).Round(time.Microsecond), coldN)
	}
	fmt.Println("\nthe index adapted to the workload: hot ranges are finer and faster.")
}
