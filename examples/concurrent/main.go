// Concurrent: adaptive indexing under multi-client load.
//
// Eight clients fire the same deterministic stream of sum queries at
// one column. The example contrasts the paper's two latch
// granularities (column vs piece) and shows the two headline effects
// of §6.3:
//
//  1. total time with piece latches beats column latches (parallelism
//     between cracking and aggregation on different pieces);
//  2. both crack time and latch wait time decay as the workload
//     evolves — concurrency conflicts adapt to the workload.
//
// Run: go run ./examples/concurrent
package main

import (
	"fmt"
	"time"

	"adaptix"
)

func main() {
	const (
		rows    = 1 << 20
		queries = 512
		clients = 8
	)
	data := adaptix.NewUniqueDataset(rows, 1)
	qs := adaptix.UniformQueries(adaptix.SumQuery, data.Domain, 0.10, 99, queries)

	fmt.Printf("%d rows, %d sum queries (sel 10%%), %d concurrent clients\n\n", rows, queries, clients)

	// WithShards(1) pins the paper's single-latch-domain setting, so
	// the column-vs-piece contrast is undiluted by range partitioning.
	newIndex := func(opts adaptix.CrackOptions) *adaptix.Index {
		ix, err := adaptix.New(data.Values,
			adaptix.WithShards(1), adaptix.WithCrackOptions(opts))
		if err != nil {
			panic(err)
		}
		return ix
	}

	for _, mode := range []struct {
		name string
		opts adaptix.CrackOptions
	}{
		{"column latches", adaptix.CrackOptions{Latching: adaptix.LatchColumn}},
		{"piece latches", adaptix.CrackOptions{Latching: adaptix.LatchPiece}},
	} {
		ix := newIndex(mode.opts)
		run := adaptix.Run(ix, qs, clients)
		ix.Close()
		fmt.Printf("%-15s total %10v  throughput %6.0f q/s  conflicts %5d  wait %10v\n",
			mode.name, run.Elapsed.Round(time.Millisecond), run.Throughput(),
			run.Series.TotalConflicts(), run.Series.TotalWait().Round(time.Millisecond))
	}

	// Per-query decay with piece latches (Figure 15's effect).
	fmt.Println("\nper-query crack and wait time, piece latches (log-spaced samples):")
	ix := newIndex(adaptix.CrackOptions{Latching: adaptix.LatchPiece})
	defer ix.Close()
	run := adaptix.Run(ix, qs, clients)
	fmt.Printf("%8s  %14s  %14s\n", "query", "crack", "wait")
	for i := 1; i <= len(run.Series.Costs); i *= 2 {
		c := run.Series.Costs[i-1]
		fmt.Printf("%8d  %14v  %14v\n", i, c.Crack.Round(time.Microsecond), c.Wait.Round(time.Microsecond))
	}
	q := len(run.Series.Costs) / 4
	var firstW, lastW time.Duration
	for _, c := range run.Series.Costs[:q] {
		firstW += c.Wait
	}
	for _, c := range run.Series.Costs[len(run.Series.Costs)-q:] {
		lastW += c.Wait
	}
	fmt.Printf("\nwait time, first quarter: %v   last quarter: %v  (conflicts decay adaptively)\n",
		firstW.Round(time.Millisecond), lastW.Round(time.Millisecond))
}
