package ingest_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"adaptix/internal/baseline"
	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// qctx is the uncancellable context the tests drive queries with.
var qctx = context.Background()

// mutableEngine is the common surface of the three write-capable
// engines compared by the agreement tests.
type mutableEngine interface {
	Insert(v int64)
	DeleteValue(v int64) bool
	Count(lo, hi int64) int64
	Sum(lo, hi int64) int64
}

type scanAdapter struct{ *baseline.Mutable }

func (a scanAdapter) Count(lo, hi int64) int64 {
	r, _ := a.Mutable.Count(qctx, lo, hi)
	return r.Value
}

func (a scanAdapter) Sum(lo, hi int64) int64 {
	r, _ := a.Mutable.Sum(qctx, lo, hi)
	return r.Value
}

type crackAdapter struct{ ix *crackindex.Index }

func (a crackAdapter) Insert(v int64)           { a.ix.Insert(v) }
func (a crackAdapter) DeleteValue(v int64) bool { return a.ix.DeleteValue(v) }
func (a crackAdapter) Count(lo, hi int64) int64 {
	n, _ := a.ix.Count(lo, hi)
	return n
}
func (a crackAdapter) Sum(lo, hi int64) int64 {
	s, _ := a.ix.Sum(lo, hi)
	return s
}

type ingestAdapter struct{ g *ingest.Coordinator }

func (a ingestAdapter) Insert(v int64) {
	if err := a.g.Insert(qctx, v); err != nil {
		panic(err)
	}
}
func (a ingestAdapter) DeleteValue(v int64) bool {
	ok, err := a.g.DeleteValue(qctx, v)
	if err != nil {
		panic(err)
	}
	return ok
}
func (a ingestAdapter) Count(lo, hi int64) int64 {
	n, _, _ := a.g.Column().Count(qctx, lo, hi)
	return n
}
func (a ingestAdapter) Sum(lo, hi int64) int64 {
	s, _, _ := a.g.Column().Sum(qctx, lo, hi)
	return s
}

// driveMixed runs the deterministic read/write mix against e with the
// given client count. The write set is interleaving-independent: each
// client inserts its own distinct fresh values (>= domain) and deletes
// its own distinct subset of the initial values, so the final logical
// contents are identical for every engine and every schedule. The
// in-flight query answers are timing-dependent and are discarded into
// a sink only to keep the reads real.
func driveMixed(e mutableEngine, rows int, clients, opsPerClient int, writeFrac float64) int64 {
	var sink atomic.Int64
	var wg sync.WaitGroup
	domain := int64(rows)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(1000 + c))
			gen := workload.NewUniform(workload.Sum, domain, 0.01, uint64(500+c))
			inserts, deletes := 0, 0
			for i := 0; i < opsPerClient; i++ {
				if float64(r.Intn(1000))/1000 < writeFrac {
					if i%2 == 0 {
						// Fresh value no other client touches.
						e.Insert(domain + int64(c*opsPerClient+inserts))
						inserts++
					} else {
						// Initial value owned by this client alone
						// (clients delete disjoint residue classes),
						// each deleted at most once.
						v := int64(deletes*clients + c)
						if v < domain {
							e.DeleteValue(v)
						}
						deletes++
					}
					continue
				}
				q := gen.Next()
				if q.Kind == workload.Count {
					sink.Add(e.Count(q.Lo, q.Hi))
				} else {
					sink.Add(e.Sum(q.Lo, q.Hi))
				}
			}
		}(c)
	}
	wg.Wait()
	return sink.Load()
}

// finalChecksum folds the quiesced engine state over a fixed set of
// ranges (full range plus a deterministic sample of sub-ranges).
func finalChecksum(e mutableEngine, rows int) int64 {
	domain := int64(2 * rows)
	var sum int64
	sum += e.Count(-1<<40, 1<<40)
	sum += 3 * e.Sum(-1<<40, 1<<40)
	r := workload.NewRNG(4242)
	for i := 0; i < 64; i++ {
		lo := r.Int64n(domain)
		hi := lo + 1 + r.Int64n(domain-lo)
		sum += e.Count(lo, hi)
		sum += 3 * e.Sum(lo, hi)
	}
	return sum
}

// TestReadWriteMixAgreement runs the same deterministic concurrent
// read/write mix (50% writes) through the mutable scan baseline, the
// single cracked column, and the sharded column behind an active
// ingest coordinator (group applies and rebalancing running in the
// background), at 1/4/8 clients, and asserts that the quiesced final
// checksums are identical: concurrency, differential updates, group
// applies, and shard splits must never change the logical contents.
// Run under -race by CI.
func TestReadWriteMixAgreement(t *testing.T) {
	const rows = 1 << 13
	const opsPerClient = 1500
	d := workload.NewUniqueUniform(rows, 11)
	for _, clients := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("clients=%d", clients), func(t *testing.T) {
			scan := scanAdapter{baseline.NewMutable(d.Values)}
			crack := crackAdapter{crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece,
			})}
			col := shard.New(d.Values, shard.Options{
				Shards: 4, Seed: 5,
				Index: crackindex.Options{Latching: crackindex.LatchPiece},
			})
			g := ingest.New(col, ingest.Options{
				ApplyThreshold: 128, MinShardRows: 512, CheckEvery: 64,
			})
			g.Start()

			driveMixed(scan, rows, clients, opsPerClient, 0.5)
			driveMixed(crack, rows, clients, opsPerClient, 0.5)
			driveMixed(ingestAdapter{g}, rows, clients, opsPerClient, 0.5)
			g.Close()

			want := finalChecksum(scan, rows)
			if got := finalChecksum(crack, rows); got != want {
				t.Errorf("crack final checksum %d, scan baseline %d", got, want)
			}
			if got := finalChecksum(ingestAdapter{g}, rows); got != want {
				t.Errorf("sharded+ingest final checksum %d, scan baseline %d", got, want)
			}
			if err := col.Validate(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSkewedInsertStormSplitsOnline is the acceptance scenario: under
// a concurrent skewed insert storm the rebalancer must perform at
// least one observable shard split while readers keep receiving exact
// answers (they query a range the writers never touch) without ever
// blocking on the rebalance.
func TestSkewedInsertStormSplitsOnline(t *testing.T) {
	const rows = 1 << 14
	d := workload.NewUniqueUniform(rows, 21)
	col := shard.New(d.Values, shard.Options{
		Shards: 4, Seed: 7,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	g := ingest.New(col, ingest.Options{
		ApplyThreshold: 256, MinShardRows: 512, SplitFactor: 1.5, CheckEvery: 128,
	})
	g.Start()
	before := col.NumShards()

	// The quiet range [rows/2, rows/2+1024) is never written; its
	// count and sum are invariants readers can assert mid-storm.
	qlo, qhi := int64(rows/2), int64(rows/2+1024)
	wantCount := d.TrueCount(qlo, qhi)
	wantSum := d.TrueSum(qlo, qhi)

	var readers, writers sync.WaitGroup
	stopReaders := make(chan struct{})
	for rdr := 0; rdr < 4; rdr++ {
		readers.Add(1)
		go func(rdr int) {
			defer readers.Done()
			r := workload.NewRNG(uint64(900 + rdr))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				if n, _, _ := col.Count(qctx, qlo, qhi); n != wantCount {
					t.Errorf("mid-storm Count[%d,%d) = %d, want %d", qlo, qhi, n, wantCount)
					return
				}
				if s, _, _ := col.Sum(qctx, qlo, qhi); s != wantSum {
					t.Errorf("mid-storm Sum[%d,%d) = %d, want %d", qlo, qhi, s, wantSum)
					return
				}
				// A roaming broad query keeps the fan-out path hot.
				lo := r.Int64n(int64(rows))
				col.Sum(qctx, lo, lo+int64(rows/8))
			}
		}(rdr)
	}

	// 8 writers hammer one narrow value band far from the quiet range.
	var inserted atomic.Int64
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 4000; i++ {
				if err := g.Insert(qctx, int64(i%97)); err != nil {
					t.Error(err)
					return
				}
				inserted.Add(1)
			}
		}(w)
	}

	writers.Wait()
	close(stopReaders)
	readers.Wait()
	g.Close()

	if g.Stats().Splits == 0 {
		t.Fatalf("no shard split observed (shards %d -> %d, stats %+v)",
			before, col.NumShards(), g.Stats())
	}
	if col.NumShards() <= before {
		t.Errorf("shard count %d did not grow from %d", col.NumShards(), before)
	}
	// Quiesced exactness: storm values plus untouched initial data.
	if n, _, _ := col.Count(qctx, -1<<40, 1<<40); n != int64(rows)+inserted.Load() {
		t.Errorf("final Count = %d, want %d", n, int64(rows)+inserted.Load())
	}
	if n, _, _ := col.Count(qctx, qlo, qhi); n != wantCount {
		t.Errorf("final quiet-range Count = %d, want %d", n, wantCount)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}
