// Latchtrace: reproduce the Figure 8 latch timelines.
//
// Three queries Q1/Q2/Q3 — the paper's
//
//	Q1: SELECT SUM(A) FROM R WHERE A >= 70 AND A < 90
//	Q2: SELECT SUM(A) FROM R WHERE A >= 15 AND A < 30
//	Q3: SELECT SUM(A) FROM R WHERE A >= 40 AND A < 55
//
// arrive concurrently on a 100-value column. With COLUMN latches the
// whole column is write-latched per crack and read-latched per sum, so
// the queries serialize around cracking. With PIECE latches, after the
// first cracks create pieces, the queries crack and aggregate
// different pieces in parallel. The trace hook records every latch
// event; the query labels ride the context (adaptix.WithQueryTag).
//
// The second half drives a bigger concurrent workload with tracing
// enabled (adaptix.WithObservability) and reads the same story back
// from the observability layer instead of a trace hook: the Figure 15
// wait-vs-refine breakdown from the live histograms (early quarter of
// the run vs late quarter), and the flight recorder's tail of sampled
// query spans and stall events.
//
// Run: go run ./examples/latchtrace
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"adaptix"
)

func run(mode adaptix.CrackOptions, label string) {
	data := adaptix.NewUniqueDataset(100, 3)

	var mu sync.Mutex
	var events []adaptix.TraceEvent
	mode.Tracer = func(e adaptix.TraceEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	ix, err := adaptix.New(data.Values,
		adaptix.WithShards(1), adaptix.WithCrackOptions(mode))
	if err != nil {
		panic(err)
	}
	defer ix.Close()

	queries := []struct {
		tag    string
		lo, hi int64
	}{
		{"Q1", 70, 90},
		{"Q2", 15, 30},
		{"Q3", 40, 55},
	}
	var wg sync.WaitGroup
	results := make([]int64, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, tag string, lo, hi int64) {
			defer wg.Done()
			ctx := adaptix.WithQueryTag(context.Background(), tag)
			res, err := ix.Sum(ctx, lo, hi)
			if err != nil {
				panic(err)
			}
			results[i] = res.Value
		}(i, q.tag, q.lo, q.hi)
	}
	wg.Wait()

	fmt.Printf("=== %s ===\n", label)
	for i, q := range queries {
		want := (q.lo + q.hi - 1) * (q.hi - q.lo) / 2
		status := "ok"
		if results[i] != want {
			status = "WRONG"
		}
		fmt.Printf("%s: sum[%d,%d) = %d (%s)\n", q.tag, q.lo, q.hi, results[i], status)
	}
	fmt.Printf("latch timeline (%d events):\n", len(events))
	for _, e := range events {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println()
}

// runObserved replays the same story at workload scale through the
// observability layer: 8 clients hammer a 256k-row column, and the
// wait-vs-refine split of Figure 15 is read back from the live
// histograms at milestones instead of from a per-event trace hook.
func runObserved() {
	const (
		rows    = 1 << 18
		queries = 2048
		clients = 8
	)
	data := adaptix.NewUniqueDataset(rows, 3)
	ix, err := adaptix.New(data.Values,
		adaptix.WithShards(1), // one latch domain: maximum contention, as in Figure 15
		adaptix.WithCrackOptions(adaptix.CrackOptions{Latching: adaptix.LatchPiece}),
		adaptix.WithObservability(adaptix.ObsOptions{
			SampleEvery:    4,
			StallThreshold: 100 * time.Microsecond,
		}),
	)
	if err != nil {
		panic(err)
	}
	defer ix.Close()

	fmt.Println("=== observed workload (Figure 15 from live histograms) ===")
	qs := adaptix.UniformQueries(adaptix.SumQuery, rows, 0.50, 11, queries)
	milestone := func(label string) {
		o := ix.Stats().Obs
		fmt.Printf("  %-14s queries=%-5d  wait p99 %-12v crack p99 %-12v critical p99 %v\n",
			label, o.Queries, o.QueryWaitP99, o.QueryCrackP99, o.CriticalPathP99)
	}
	for _, part := range []struct {
		label    string
		from, to int
	}{
		{"first quarter", 0, queries / 4},
		{"full run", queries / 4, queries},
	} {
		chunk := qs[part.from:part.to]
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				ctx := context.Background()
				for i := c; i < len(chunk); i += clients {
					if _, err := ix.Sum(ctx, chunk[i].Lo, chunk[i].Hi); err != nil {
						panic(err)
					}
				}
			}(c)
		}
		wg.Wait()
		milestone(part.label)
	}
	fmt.Println("  (wait and crack decay as the index refines: a full-run wait p99 of 0s")
	fmt.Println("   means fewer than 1% of ALL queries ever blocked once the index warmed;")
	fmt.Println("   the quantiles are cumulative, so early cracking dominates the tails)")

	evs := ix.FlightDump()
	const tail = 8
	start := 0
	if len(evs) > tail {
		start = len(evs) - tail
	}
	fmt.Printf("  flight recorder tail (%d of %d events):\n", len(evs)-start, len(evs))
	for _, e := range evs[start:] {
		fmt.Printf("    %s  %-12s dur=%-12v\n",
			e.When.Format("15:04:05.000000"), e.KindName, e.Dur)
	}
	fmt.Println()
}

func main() {
	run(adaptix.CrackOptions{Latching: adaptix.LatchColumn}, "column latches (Figure 8, top)")
	run(adaptix.CrackOptions{Latching: adaptix.LatchPiece}, "piece latches (Figure 8, middle)")
	runObserved()
}
