// Fuzz target for the full index query surface: an arbitrary column is
// cracked by an arbitrary pair of range queries under a fuzzed
// layout / latch-mode / conflict-policy configuration, and every Count
// and Sum answer — before and after a differential insert — must match
// a naive predicate scan. Validate audits the piece structure after
// each refinement, so a crack that produces the right aggregate but a
// corrupt piece list still fails.
package crackindex

import (
	"encoding/binary"
	"math"
	"testing"

	"adaptix/internal/cracker"
)

// fuzzVals decodes data as little-endian int64s, dropping the tail
// that does not fill 8 bytes. MaxInt64 is clamped to MaxInt64-1: the
// index reserves it as the tail piece's open upper bound (see maxKey),
// so the value domain is [MinInt64, MaxInt64) — with no value equal to
// the sentinel, a query bound of MaxInt64 ("to the end") agrees with
// the reference predicate v < MaxInt64.
func fuzzVals(data []byte) []int64 {
	vals := make([]int64, 0, len(data)/8)
	for len(data) >= 8 {
		v := int64(binary.LittleEndian.Uint64(data))
		if v == math.MaxInt64 {
			v--
		}
		vals = append(vals, v)
		data = data[8:]
	}
	return vals
}

// fuzzSeed encodes int64 values for corpus seeds.
func fuzzSeed(vs ...int64) []byte {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

// refCountSum is the trivially correct reference: one predicate scan.
func refCountSum(vals []int64, lo, hi int64) (n, s int64) {
	for _, v := range vals {
		if v >= lo && v < hi {
			n++
			s += v
		}
	}
	return n, s
}

// fuzzOpts maps the fuzzed mode byte onto an index configuration, so
// the corpus explores every layout / latch-mode / policy combination
// rather than only the default.
func fuzzOpts(mode byte) Options {
	var o Options
	switch mode % 3 {
	case 0:
		o.Latching = LatchPiece
	case 1:
		o.Latching = LatchColumn
	default:
		o.Latching = LatchNone
	}
	if mode&4 != 0 {
		o.Layout = cracker.LayoutPairs
	}
	if mode&8 != 0 && o.Latching != LatchNone {
		o.OnConflict = Skip
	}
	if mode&16 != 0 && o.Latching == LatchPiece {
		o.ParallelBounds = true
	}
	return o
}

func FuzzCountSumVsReference(f *testing.F) {
	// Seeds: empty column, extreme values with MaxInt64-1 bounds, a
	// duplicate-heavy column queried at its single hot value, and
	// inverted bounds.
	f.Add([]byte{}, byte(0), int64(0), int64(10), int64(-5), int64(5))
	f.Add(fuzzSeed(math.MaxInt64-1, math.MaxInt64-2, 0, -1, math.MinInt64),
		byte(0), int64(math.MaxInt64-1), int64(math.MaxInt64), int64(math.MinInt64), int64(math.MaxInt64))
	f.Add(fuzzSeed(5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5),
		byte(4), int64(5), int64(6), int64(0), int64(5))
	f.Add(fuzzSeed(3, 1, 4, 1, 5, 9, 2, 6), byte(1), int64(3), int64(1), int64(1), int64(6))

	f.Fuzz(func(t *testing.T, data []byte, mode byte, lo1, hi1, lo2, hi2 int64) {
		vals := fuzzVals(data)
		if len(vals) > 1<<12 {
			vals = vals[:1<<12]
		}
		ix := New(vals, fuzzOpts(mode))
		check := func(phase string, ref []int64, lo, hi int64) {
			t.Helper()
			wantN, wantS := refCountSum(ref, lo, hi)
			if got, _ := ix.Count(lo, hi); got != wantN {
				t.Fatalf("%s: Count(%d,%d) = %d, want %d", phase, lo, hi, got, wantN)
			}
			if got, _ := ix.Sum(lo, hi); got != wantS {
				t.Fatalf("%s: Sum(%d,%d) = %d, want %d", phase, lo, hi, got, wantS)
			}
			if err := ix.Validate(); err != nil {
				t.Fatalf("%s: after (%d,%d): %v", phase, lo, hi, err)
			}
		}
		check("q1", vals, lo1, hi1)
		check("q2", vals, lo2, hi2)
		// Repeat q1 on the now-cracked structure: boundaries exist, so
		// the answer comes purely from piece positions.
		check("q1-warm", vals, lo1, hi1)

		// A differential insert must be folded into every later answer.
		ins := lo1 ^ hi2 ^ 0x5bd1e995
		if ins == math.MaxInt64 {
			ins-- // sentinel value, outside the index's domain
		}
		ix.Insert(ins)
		ref := append(append([]int64(nil), vals...), ins)
		check("post-insert-q1", ref, lo1, hi1)
		check("post-insert-q2", ref, lo2, hi2)
	})
}
