// The concurrent write path: routed updates, group-applied epoch
// merges, and online shard rebalancing — all through the one
// adaptix.Index handle.
//
// The paper's §4.2 argues adaptive indexes can absorb high update
// rates through differential files while system transactions do the
// structural work. This example makes that concrete — twice. The same
// skewed insert storm (8 writers pouring into one narrow value band
// while 4 readers keep querying a quiet range whose answer must never
// waver) runs first with the legacy parked group-apply, where a writer
// racing a merge parks for the whole shard rebuild, and then with the
// epoch write path (internal/epoch), where a merge seals only the
// current epoch and writers roll over without parking. The per-insert
// latency histograms are the aha moment: the stall tail collapses from
// ~rebuild latency to ~an epoch append. See examples/recovery for the
// durable lifecycle of the same handle.
//
// Run: go run ./examples/ingest
package main

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"adaptix"
)

const (
	n       = 1 << 20
	writers = 8
	readers = 4
	perW    = 40000
)

var ctx = context.Background()

// stormResult is one run's outcome: per-insert latencies and the
// index's structural counters.
type stormResult struct {
	elapsed    time.Duration
	lats       []time.Duration
	stats      adaptix.Stats
	shards     int
	violations int
	ix         *adaptix.Index
}

// runStorm pours the skewed insert storm into a fresh index while
// readers assert the quiet range, measuring every insert.
func runStorm(data *adaptix.Dataset, park bool) stormResult {
	log := adaptix.NewStructuralLog()
	ix, err := adaptix.New(data.Values,
		adaptix.WithShards(4), adaptix.WithSeed(5),
		adaptix.WithCrackOptions(adaptix.CrackOptions{Latching: adaptix.LatchPiece}),
		adaptix.WithIngestOptions(adaptix.IngestOptions{
			Name: "R.A", Log: log,
			ApplyThreshold: 4096, MinShardRows: 1 << 14, SplitFactor: 1.5,
			ParkOnApply: park,
		}),
	)
	if err != nil {
		panic(err)
	}

	// The quiet range is never written: its sum is an invariant the
	// readers assert on every pass, even mid-rebalance.
	qlo, qhi := int64(n/2), int64(n/2+4096)
	want, err := ix.Sum(ctx, qlo, qhi)
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	violations := 0
	var mu sync.Mutex
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s, err := ix.Sum(ctx, qlo, qhi); err != nil || s.Value != want.Value {
					mu.Lock()
					violations++
					mu.Unlock()
				}
			}
		}()
	}

	start := time.Now()
	latCh := make(chan []time.Duration, writers)
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			lats := make([]time.Duration, 0, perW)
			for i := 0; i < perW; i++ {
				// Everything lands in [0, 1024): one shard takes it all.
				t0 := time.Now()
				_ = ix.Insert(ctx, int64((w*perW+i)%1024))
				lats = append(lats, time.Since(t0))
			}
			latCh <- lats
		}(w)
	}
	ww.Wait()
	elapsed := time.Since(start)
	close(latCh)
	close(stop)
	wg.Wait()

	var all []time.Duration
	for lats := range latCh {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return stormResult{
		elapsed: elapsed, lats: all, stats: ix.Stats(),
		shards: ix.NumShards(), violations: violations,
		ix: ix,
	}
}

func pct(lats []time.Duration, p float64) time.Duration {
	return lats[int(p*float64(len(lats)-1))]
}

// histogram prints a coarse log-scale latency histogram.
func histogram(lats []time.Duration) {
	buckets := []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, time.Second,
	}
	labels := []string{"<1µs", "<10µs", "<100µs", "<1ms", "<10ms", ">=10ms"}
	counts := make([]int, len(buckets))
	for _, l := range lats {
		for i, b := range buckets {
			if l < b || i == len(buckets)-1 {
				counts[i]++
				break
			}
		}
	}
	for i, c := range counts {
		bar := ""
		for j := 0; j < 40*c/len(lats); j++ {
			bar += "#"
		}
		fmt.Printf("    %-7s %8d %s\n", labels[i], c, bar)
	}
}

func report(name string, r stormResult) {
	fmt.Printf("-- %s --\n", name)
	fmt.Printf("  storm:  %v for %d inserts (%.0f ins/s)\n",
		r.elapsed.Round(time.Millisecond), writers*perW, float64(writers*perW)/r.elapsed.Seconds())
	fmt.Printf("  stalls: p50=%v p99=%v max=%v\n",
		pct(r.lats, 0.50), pct(r.lats, 0.99), pct(r.lats, 1.0))
	histogram(r.lats)
	fmt.Printf("  after:  %d shards | %d group applies (%d epoch seals), %d splits, %d merges | reader violations: %d\n",
		r.shards, r.stats.Ingest.Applied, r.stats.Ingest.EpochSeals,
		r.stats.Ingest.Splits, r.stats.Ingest.Merges, r.violations)
}

func main() {
	data := adaptix.NewUniqueDataset(n, 42)
	fmt.Printf("== ingest: skewed insert storm, %d writers x %d inserts, %d readers, %d rows ==\n",
		writers, perW, readers, n)

	// Before: the legacy parked group-apply. A writer racing a merge
	// parks for the full shard rebuild — watch the p99/max.
	parked := runStorm(data, true)
	report("parked apply (before epochs)", parked)
	parked.ix.Close()

	// After: the epoch write path. A merge seals only the current
	// epoch; writers roll over and the stall tail collapses.
	epoch := runStorm(data, false)
	defer epoch.ix.Close()
	report("epoch chains (after)", epoch)

	fmt.Printf("writer-stall p99: parked %v -> epochs %v\n",
		pct(parked.lats, 0.99), pct(epoch.lats, 0.99))

	for _, s := range epoch.stats.Shards {
		fmt.Printf("  shard %d: [%d, %d) rows=%-8d pieces=%-5d pending=%d epochs=%d\n",
			s.Shard, s.LoVal, s.HiVal, s.Rows, s.Pieces, s.PendingInserts+s.PendingDeletes, s.Epochs)
	}
	fmt.Println("\n(the structural WAL behind IngestOptions.Log records every seal, apply,")
	fmt.Println(" and split; examples/recovery replays one to survive a crash)")
}
