// Facade-level gates of the workload capture subsystem: the replay
// determinism contract (a serially captured mixed read/write trace
// reproduces its checksums on every method) and the allocation
// contract (capture-disabled and sampled-out paths stay at 0 allocs
// per query, like the rest of the observability layer).
package adaptix_test

import (
	"context"
	"path/filepath"
	"testing"

	"adaptix"
)

// TestWorkloadCaptureReplayRoundTrip captures a serial mixed
// read/write workload to an on-disk trace, then replays it with
// verification against every method: each read's recorded answer and
// each delete's found flag must reproduce exactly — the determinism
// contract cmd/adaptixreplay and the CI replay-smoke step rely on.
func TestWorkloadCaptureReplayRoundTrip(t *testing.T) {
	const rows = 8192
	d := adaptix.NewUniqueDataset(rows, 17)
	trace := filepath.Join(t.TempDir(), "workload.trace")
	ctx := context.Background()

	src, err := adaptix.New(d.Values,
		adaptix.WithMethod(adaptix.Crack),
		adaptix.WithShards(4),
		adaptix.WithWorkloadCapture(adaptix.CaptureOptions{Sink: trace, Ring: 1 << 14}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// One client, SampleEvery 1: the serial capture the determinism
	// contract covers. An LCG walks the key space; every 4th op writes
	// (insert fresh keys, delete keys that exist and keys that don't,
	// so the found-flag checksum is exercised both ways).
	var ops int
	state := uint64(99991)
	next := func(n int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		v := int64(state>>33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	for i := 0; i < 600; i++ {
		switch i % 4 {
		case 1:
			if err := src.Insert(ctx, 2*rows+int64(i)); err != nil {
				t.Fatal(err)
			}
		case 3:
			// Existing key half the time, certainly-absent key otherwise.
			key := next(rows)
			if i%8 == 3 {
				key = 10*rows + int64(i)
			}
			if _, err := src.Delete(ctx, key); err != nil {
				t.Fatal(err)
			}
		default:
			lo := next(rows)
			if i%2 == 0 {
				if _, err := src.Count(ctx, lo, lo+200); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := src.Sum(ctx, lo, lo+200); err != nil {
					t.Fatal(err)
				}
			}
		}
		ops++
	}
	if sig := src.Workload(); sig.Captured != int64(ops) || sig.Dropped != 0 {
		t.Fatalf("captured %d / dropped %d, want %d / 0", sig.Captured, sig.Dropped, ops)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := adaptix.ReadWorkloadTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != ops {
		t.Fatalf("trace holds %d records, want %d", len(recs), ops)
	}

	for _, m := range []adaptix.Method{
		adaptix.Crack, adaptix.AMerge, adaptix.Hybrid, adaptix.Sort, adaptix.Scan,
	} {
		t.Run(m.String(), func(t *testing.T) {
			ix, err := adaptix.New(d.Values, adaptix.WithMethod(m), adaptix.WithShards(2))
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			rep, err := adaptix.ReplayTrace(ctx, ix, recs, adaptix.ReplayOptions{Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Records != len(recs) {
				t.Fatalf("replayed %d of %d records", rep.Records, len(recs))
			}
			if rep.Mismatches != 0 {
				t.Fatalf("%d checksum mismatches; first: %+v", rep.Mismatches, rep.First)
			}
		})
	}
}

// TestWorkloadCaptureZeroAlloc pins the allocation contract of the
// capture tap: a capture-disabled index (the default), a sampled-out
// query on an armed recorder, and even a sampled-in in-memory capture
// must all stay at 0 allocations per warm query.
func TestWorkloadCaptureZeroAlloc(t *testing.T) {
	const rows = 8192
	d := adaptix.NewUniqueDataset(rows, 19)
	ctx := context.Background()
	lo, hi := int64(1000), int64(1260)

	cases := []struct {
		name string
		opts []adaptix.Option
	}{
		{"capture-disabled", nil},
		{"sampled-out", []adaptix.Option{
			adaptix.WithWorkloadCapture(adaptix.CaptureOptions{SampleEvery: 1 << 30}),
		}},
		{"sampled-in", []adaptix.Option{
			adaptix.WithWorkloadCapture(adaptix.CaptureOptions{}),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]adaptix.Option{adaptix.WithShards(1)}, tc.opts...)
			ix, err := adaptix.New(d.Values, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			for i := 0; i < 4; i++ {
				if _, err := ix.Count(ctx, lo, hi); err != nil {
					t.Fatal(err)
				}
			}
			if a := allocsWarmMin(100, func() { ix.Count(ctx, lo, hi) }); a != 0 {
				t.Errorf("%s: warm Count allocates %.2f per query, want 0", tc.name, a)
			}
		})
	}
}
