// Health watchdog: the index diagnoses its own pathologies.
//
// The watchdog evaluates a fixed catalog of rules over the always-on
// observability instruments — writer-stall p99, epoch-chain depth,
// sealed-unapplied backlog, WAL growth since checkpoint, latch-stall
// storms, and convergence stagnation — and serves the verdict on
// /health from the same handler as /metrics and /snapshot: HTTP 200
// when every rule holds, 503 with per-rule evidence when one fires.
//
// This example runs the whole loop: a healthy store under a uniform
// query load (every rule passes), then a forced WAL-growth degradation
// (writes logged against a deliberately tiny budget), and finally the
// checkpoint that clears it. It scrapes /health over real HTTP the way
// a load balancer or CI probe would, and exits non-zero if the store
// does not end healthy.
//
// Run: go run ./examples/health
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"adaptix"
)

var ctx = context.Background()

func main() {
	const n = 1 << 18
	dir, err := os.MkdirTemp("", "adaptix-health-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	data := adaptix.NewUniqueDataset(n, 42)
	ix, err := adaptix.Open(dir,
		adaptix.WithValues(data.Values),
		adaptix.WithShards(4),
		adaptix.WithNoSync(),
		adaptix.WithLogWrites(),
		adaptix.WithCheckpointEvery(1<<30), // no auto checkpoint: we drive it
		adaptix.WithHealth(adaptix.HealthOptions{
			Interval:    -1,      // on-demand evaluation (no background goroutine)
			MaxWALBytes: 1 << 10, // 1 KiB budget, small enough to trip below
		}),
	)
	if err != nil {
		panic(err)
	}
	defer ix.Close()

	// A probe scrapes /health exactly like any other route on the
	// observability handler.
	srv := httptest.NewServer(ix.Observe())
	defer srv.Close()

	// Phase 1: uniform query load on a fresh store. All rules pass.
	for _, q := range adaptix.UniformQueries(adaptix.CountQuery, int64(n), 0.01, 7, 200) {
		if _, err := ix.Count(ctx, q.Lo, q.Hi); err != nil {
			panic(err)
		}
	}
	code, rep := probe(srv.URL + "/health")
	fmt.Printf("after 200 uniform queries: HTTP %d, status=%s\n", code, rep.Status)
	for _, r := range rep.Rules {
		fmt.Printf("  %-26s %s\n", r.Rule, r.Status)
	}
	if code != http.StatusOK {
		fmt.Println("FAIL: fresh store reported degraded")
		os.Exit(1)
	}

	// Phase 2: logged writes blow through the 1 KiB WAL budget; the
	// wal-since-checkpoint rule fires and readiness flips to 503.
	for i := int64(0); i < 256; i++ {
		if err := ix.Insert(ctx, int64(n)+i); err != nil {
			panic(err)
		}
	}
	code, rep = probe(srv.URL + "/health")
	fmt.Printf("\nafter 256 logged inserts:  HTTP %d, status=%s\n", code, rep.Status)
	if code != http.StatusServiceUnavailable {
		fmt.Println("FAIL: WAL growth past the budget did not degrade /health")
		os.Exit(1)
	}
	for _, r := range rep.Rules {
		if r.Status != adaptix.HealthOK {
			fmt.Printf("  %-26s %s  (%s)\n", r.Rule, r.Status, r.Reason)
			fmt.Printf("  %-26s evidence: %v\n", "", r.Evidence)
		}
	}

	// Phase 3: a checkpoint resets the since-checkpoint gauges; the
	// rule recovers and the transition lands in the flight recorder.
	ix.Checkpoint()
	code, rep = probe(srv.URL + "/health")
	fmt.Printf("\nafter checkpoint:          HTTP %d, status=%s\n", code, rep.Status)
	if code != http.StatusOK {
		fmt.Println("FAIL: checkpoint did not restore readiness")
		os.Exit(1)
	}
	fmt.Println("\nall rules pass; degradation and recovery both observed")
}

// probe scrapes a /health URL and decodes the report, accepting the
// 503 a degraded index serves alongside its evidence body.
func probe(url string) (int, adaptix.HealthReport) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var rep adaptix.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		panic(err)
	}
	return resp.StatusCode, rep
}
