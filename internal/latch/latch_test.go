package latch

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExclusiveMutualExclusion(t *testing.T) {
	l := New(MiddleFirst)
	var counter, max int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Lock(int64(j))
				c := atomic.AddInt64(&counter, 1)
				if c > atomic.LoadInt64(&max) {
					atomic.StoreInt64(&max, c)
				}
				atomic.AddInt64(&counter, -1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if max != 1 {
		t.Fatalf("max concurrent writers = %d", max)
	}
}

func TestReadersShareWritersExclude(t *testing.T) {
	l := New(MiddleFirst)
	var readers, writers int64
	var violation atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.RLock()
				atomic.AddInt64(&readers, 1)
				if atomic.LoadInt64(&writers) != 0 {
					violation.Store(true)
				}
				atomic.AddInt64(&readers, -1)
				l.RUnlock()
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Lock(0)
				atomic.AddInt64(&writers, 1)
				if atomic.LoadInt64(&readers) != 0 || atomic.LoadInt64(&writers) != 1 {
					violation.Store(true)
				}
				atomic.AddInt64(&writers, -1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if violation.Load() {
		t.Fatal("reader/writer exclusion violated")
	}
}

func TestMultipleReadersConcurrent(t *testing.T) {
	l := New(MiddleFirst)
	var active, peak int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			l.RLock()
			c := atomic.AddInt64(&active, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			atomic.AddInt64(&active, -1)
			l.RUnlock()
		}()
	}
	close(start)
	wg.Wait()
	if peak < 2 {
		t.Fatalf("readers never overlapped (peak=%d)", peak)
	}
}

func TestWaitTimeReported(t *testing.T) {
	l := New(MiddleFirst)
	l.Lock(0)
	done := make(chan time.Duration, 1)
	go func() {
		done <- l.Lock(1)
	}()
	time.Sleep(30 * time.Millisecond)
	l.Unlock()
	w := <-done
	if w < 10*time.Millisecond {
		t.Fatalf("wait time %v, expected >= ~30ms", w)
	}
	l.Unlock()
	// Uncontended acquisition reports zero wait.
	if w := l.Lock(0); w != 0 {
		t.Fatalf("uncontended Lock waited %v", w)
	}
	l.Unlock()
	if w := l.RLock(); w != 0 {
		t.Fatalf("uncontended RLock waited %v", w)
	}
	l.RUnlock()
}

func TestTryLock(t *testing.T) {
	l := New(MiddleFirst)
	if !l.TryLock() {
		t.Fatal("TryLock on free latch failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held latch succeeded")
	}
	if l.TryRLock() {
		t.Fatal("TryRLock under writer succeeded")
	}
	l.Unlock()
	if !l.TryRLock() {
		t.Fatal("TryRLock on free latch failed")
	}
	if !l.TryRLock() {
		t.Fatal("second TryRLock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock under readers succeeded")
	}
	l.RUnlock()
	l.RUnlock()
}

func TestDowngrade(t *testing.T) {
	l := New(MiddleFirst)
	l.Lock(0)
	// A reader queued during the write hold must be admitted by the
	// downgrade.
	got := make(chan struct{})
	go func() {
		l.RLock()
		close(got)
	}()
	time.Sleep(20 * time.Millisecond)
	l.Downgrade()
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("queued reader not admitted by Downgrade")
	}
	// We still hold a read latch: writers must be excluded.
	if l.TryLock() {
		t.Fatal("TryLock succeeded during downgraded hold")
	}
	l.RUnlock() // the queued reader's
	l.RUnlock() // ours
	if !l.TryLock() {
		t.Fatal("latch not free after downgrade releases")
	}
	l.Unlock()
}

// TestMiddleFirstScheduling verifies the paper's §5.3 queue
// optimization: with waiters at bounds 20,30,50,70,90 the middle one
// (50) must be granted first.
func TestMiddleFirstScheduling(t *testing.T) {
	l := New(MiddleFirst)
	l.Lock(0)
	var order []int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	bounds := []int64{20, 30, 50, 70, 90}
	for _, b := range bounds {
		wg.Add(1)
		go func(b int64) {
			defer wg.Done()
			l.Lock(b)
			mu.Lock()
			order = append(order, b)
			mu.Unlock()
			l.Unlock()
		}(b)
	}
	// Wait until all five are queued.
	for l.QueuedWriters() != 5 {
		time.Sleep(time.Millisecond)
	}
	l.Unlock()
	wg.Wait()
	if order[0] != 50 {
		t.Fatalf("first granted bound = %d, want 50 (middle); order %v", order[0], order)
	}
	// Every waiter must eventually run.
	if len(order) != 5 {
		t.Fatalf("only %d waiters ran", len(order))
	}
}

func TestFIFOScheduling(t *testing.T) {
	l := New(FIFO)
	l.Lock(0)
	var order []int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	bounds := []int64{90, 20, 50}
	for i, b := range bounds {
		wg.Add(1)
		go func(b int64) {
			defer wg.Done()
			l.Lock(b)
			mu.Lock()
			order = append(order, b)
			mu.Unlock()
			l.Unlock()
		}(b)
		// Serialize arrival so FIFO order is deterministic.
		for l.QueuedWriters() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	l.Unlock()
	wg.Wait()
	if order[0] != 90 || order[1] != 20 || order[2] != 50 {
		t.Fatalf("FIFO order violated: %v", order)
	}
}

func TestWriterReleaseWakesAllReaders(t *testing.T) {
	l := New(MiddleFirst)
	l.Lock(0)
	const n = 6
	var admitted int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.RLock()
			atomic.AddInt64(&admitted, 1)
		}()
	}
	time.Sleep(30 * time.Millisecond)
	l.Unlock()
	wg.Wait()
	if admitted != n {
		t.Fatalf("admitted %d readers, want %d", admitted, n)
	}
	// All still hold read latches: a writer must block.
	if l.TryLock() {
		t.Fatal("writer admitted alongside readers")
	}
	for i := 0; i < n; i++ {
		l.RUnlock()
	}
}

func TestLastReaderHandsOffToWriter(t *testing.T) {
	l := New(MiddleFirst)
	l.RLock()
	l.RLock()
	acquired := make(chan struct{})
	go func() {
		l.Lock(0)
		close(acquired)
	}()
	time.Sleep(20 * time.Millisecond)
	l.RUnlock()
	select {
	case <-acquired:
		t.Fatal("writer admitted while a reader remains")
	case <-time.After(20 * time.Millisecond):
	}
	l.RUnlock()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("writer not granted after last reader left")
	}
	l.Unlock()
}

func TestUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of free latch did not panic")
		}
	}()
	New(MiddleFirst).Unlock()
}

func TestRUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RUnlock of free latch did not panic")
		}
	}()
	New(MiddleFirst).RUnlock()
}

func TestDowngradePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Downgrade of free latch did not panic")
		}
	}()
	New(MiddleFirst).Downgrade()
}

func TestZeroValueUsable(t *testing.T) {
	var l Latch
	l.Lock(5)
	l.Unlock()
	l.RLock()
	l.RUnlock()
}

func TestPolicyString(t *testing.T) {
	if MiddleFirst.String() != "middle-first" || FIFO.String() != "fifo" {
		t.Fatal("bad Policy strings")
	}
}

// TestDeadlineAwareWakeOrder queues three deadline-carrying writers
// plus one deadline-free writer behind a held latch and asserts the
// grant order is earliest-deadline first, with the deadline-free
// waiter last — regardless of the middle-first bound policy that would
// otherwise pick the median bound.
func TestDeadlineAwareWakeOrder(t *testing.T) {
	l := New(MiddleFirst)
	l.Lock(0)
	var order []int64
	var mu sync.Mutex
	var wg sync.WaitGroup

	// Far-future deadlines so nothing expires during the test; the
	// *ordering* among them is what matters. Bounds are chosen so the
	// middle-first policy would pick a different winner (median bound
	// 50 belongs to the latest deadline).
	base := time.Now().Add(time.Hour)
	waiters := []struct {
		bound int64
		dl    time.Duration // offset from base; -1 = no deadline
	}{
		{bound: 50, dl: 30 * time.Minute}, // median bound, latest deadline
		{bound: 90, dl: 10 * time.Minute}, // earliest deadline: must win
		{bound: 20, dl: 20 * time.Minute},
		{bound: 70, dl: -1}, // no deadline: must go last
	}
	for i, w := range waiters {
		wg.Add(1)
		go func(bound int64, dl time.Duration) {
			defer wg.Done()
			ctx := context.Background()
			if dl >= 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, base.Add(dl))
				defer cancel()
			}
			if _, err := l.LockCtx(ctx, bound); err != nil {
				t.Errorf("LockCtx(bound=%d): %v", bound, err)
				return
			}
			mu.Lock()
			order = append(order, bound)
			mu.Unlock()
			l.Unlock()
		}(w.bound, w.dl)
		// Serialize arrival so queue membership is deterministic.
		for l.QueuedWriters() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	l.Unlock()
	wg.Wait()

	want := []int64{90, 20, 50, 70} // deadline order, then the free waiter
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v (earliest deadline first)", order, want)
		}
	}
}

// TestDeadlineWakeExpiredWaiterDoesNotWedge checks the interaction of
// deadline-first wake with cancellation: a waiter whose context
// expires while parked removes itself (or takes and releases a grant
// already in flight), and the remaining waiters still all run.
func TestDeadlineWakeExpiredWaiterDoesNotWedge(t *testing.T) {
	l := New(MiddleFirst)
	l.Lock(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := l.LockCtx(ctx, 10)
		done <- err
	}()
	for l.QueuedWriters() != 1 {
		time.Sleep(time.Millisecond)
	}
	// Let the deadline expire while the waiter is parked.
	if err := <-done; err == nil {
		t.Fatal("expired waiter acquired the latch with the holder active")
	}
	l.Unlock()
	// The latch must still be fully usable.
	if !l.TryLock() {
		t.Fatal("latch wedged after an expired deadline waiter")
	}
	l.Unlock()
}
