// Package cracker implements the cracker array, the physical data
// structure of database cracking (paper §5.2, Figure 7): a dense,
// auxiliary copy of a column that is continuously and incrementally
// reorganized (partitioned) as a side effect of query processing.
//
// Both physical layouts from Figure 7 are provided:
//
//   - LayoutPairs: one array of (rowID, value) pairs — the original
//     cracking design;
//   - LayoutSplit: a pair of aligned arrays, one of rowIDs and one of
//     values — the later design with better cache locality for
//     operators that touch only one of the two.
//
// The two reorganization kernels are crack-in-two (one pivot, at most
// one piece split per bound) and crack-in-three (both query bounds fall
// into the same piece and are applied in a single pass).
//
// The package performs no synchronization: callers (the cracked-column
// index) latch the pieces they reorganize or read.
package cracker

import (
	"math/bits"
	"sort"

	"adaptix/internal/kernel"
)

// Layout selects the physical representation of the cracker array.
type Layout int

const (
	// LayoutSplit stores rowIDs and values in two aligned arrays.
	LayoutSplit Layout = iota
	// LayoutPairs stores an array of rowID-value pairs.
	LayoutPairs
)

// String returns the layout's display name.
func (l Layout) String() string {
	if l == LayoutPairs {
		return "pairs"
	}
	return "split"
}

// Pair is one rowID-value entry of the pairs layout.
type Pair struct {
	Value int64
	RowID uint32
}

// Array is a cracker array over int64 keys.
type Array struct {
	layout Layout
	pairs  []Pair   // LayoutPairs
	vals   []int64  // LayoutSplit
	ids    []uint32 // LayoutSplit
	n      int
}

// New builds a cracker array holding an auxiliary copy of values, with
// rowIDs assigned positionally (0-based), in the given layout. The
// input slice is not retained or modified.
func New(values []int64, layout Layout) *Array {
	a := &Array{layout: layout, n: len(values)}
	switch layout {
	case LayoutPairs:
		a.pairs = make([]Pair, len(values))
		for i, v := range values {
			a.pairs[i] = Pair{Value: v, RowID: uint32(i)}
		}
	default:
		a.vals = make([]int64, len(values))
		copy(a.vals, values)
		a.ids = make([]uint32, len(values))
		for i := range a.ids {
			a.ids[i] = uint32(i)
		}
	}
	return a
}

// Len returns the number of entries.
func (a *Array) Len() int { return a.n }

// Layout returns the physical layout of the array.
func (a *Array) Layout() Layout { return a.layout }

// Value returns the key at position i.
func (a *Array) Value(i int) int64 {
	if a.layout == LayoutPairs {
		return a.pairs[i].Value
	}
	return a.vals[i]
}

// RowID returns the base-table row id at position i.
func (a *Array) RowID(i int) uint32 {
	if a.layout == LayoutPairs {
		return a.pairs[i].RowID
	}
	return a.ids[i]
}

// CrackInTwo partitions positions [lo, hi) in place so that all values
// < pivot precede all values >= pivot, and returns the split position:
// the first position whose value is >= pivot (== hi if none).
// This is one step of the "incremental quicksort" that cracking
// performs (paper §2, Figure 2).
func (a *Array) CrackInTwo(lo, hi int, pivot int64) int {
	if a.layout == LayoutPairs {
		return crackInTwoPairs(a.pairs, lo, hi, pivot)
	}
	return crackInTwoSplit(a.vals, a.ids, lo, hi, pivot)
}

// crackInTwoSplit is a branch-free Lomuto partition. An uncracked
// piece holds values in random physical order, so the comparison
// outcome is unpredictable and a branching partition spends most of
// its time in mispredict stalls; here every element pays the same
// unconditional swap and the boundary advances by a flag (SETcc), so
// the loop runs at memory speed regardless of the data.
//
// Invariant at the top of iteration i: vals[lo:j) < pivot and
// vals[j:i) >= pivot. Swapping vals[i] and vals[j] unconditionally
// preserves it in both cases — if v < pivot the first >=pivot element
// moves to i and j extends over v; if v >= pivot both touched slots
// hold >=pivot values and j stays.
func crackInTwoSplit(vals []int64, ids []uint32, lo, hi int, pivot int64) int {
	j := lo
	for i := lo; i < hi; i++ {
		v, id := vals[i], ids[i]
		vals[i], ids[i] = vals[j], ids[j]
		vals[j], ids[j] = v, id
		j += int(b2u(v < pivot))
	}
	return j
}

func crackInTwoPairs(pairs []Pair, lo, hi int, pivot int64) int {
	j := lo
	for i := lo; i < hi; i++ {
		p := pairs[i]
		pairs[i] = pairs[j]
		pairs[j] = p
		j += int(b2u(p.Value < pivot))
	}
	return j
}

// CrackInThree partitions positions [lo, hi) in place into three
// regions — values < a, values in [a, b), values >= b — and returns
// (posA, posB): the first position >= a and the first position >= b.
// It requires a <= b. Used when both bounds of a range predicate fall
// into the same uncracked piece, saving one pass (paper §5.3).
func (a *Array) CrackInThree(lo, hi int, va, vb int64) (posA, posB int) {
	if va > vb {
		panic("cracker: CrackInThree requires va <= vb")
	}
	if va == vb {
		p := a.CrackInTwo(lo, hi, va)
		return p, p
	}
	if a.layout == LayoutPairs {
		return crackInThreePairs(a.pairs, lo, hi, va, vb)
	}
	return crackInThreeSplit(a.vals, a.ids, lo, hi, va, vb)
}

// crackInThreeSplit runs two branch-free crack-in-two passes instead
// of a Dutch-national-flag single pass: partition on b, then partition
// the lower region on a. The flag pass touches each element once but
// its three-way branch is unpredictable on random piece contents, and
// the mispredict stalls cost far more than the second pass's extra
// reads — the two branch-free passes (~1.5 passes of work, since the
// second covers only the below-b region) run several times faster on
// an uncracked piece.
func crackInThreeSplit(vals []int64, ids []uint32, lo, hi int, va, vb int64) (int, int) {
	posB := crackInTwoSplit(vals, ids, lo, hi, vb)
	posA := crackInTwoSplit(vals, ids, lo, posB, va)
	return posA, posB
}

func crackInThreePairs(pairs []Pair, lo, hi int, va, vb int64) (int, int) {
	posB := crackInTwoPairs(pairs, lo, hi, vb)
	posA := crackInTwoPairs(pairs, lo, posB, va)
	return posA, posB
}

// CrackMulti partitions positions [lo, hi) on all pivots at once and
// returns one split position per pivot (the first position whose value
// is >= that pivot). Pivots must be sorted ascending. The recursion
// cracks on the median pivot first and then handles each half within
// its sub-range, so the whole group costs O(n log k) — one pass per
// recursion level instead of one pass per pivot.
//
// This is the kernel of the "dynamic algorithms" extension sketched in
// the paper's §7: when several queries wait to crack the same piece,
// the query holding the latch can refine the index for all waiting
// requests in one step.
func (a *Array) CrackMulti(lo, hi int, pivots []int64) []int {
	for i := 1; i < len(pivots); i++ {
		if pivots[i-1] > pivots[i] {
			panic("cracker: CrackMulti pivots not sorted")
		}
	}
	out := make([]int, len(pivots))
	a.crackMultiRec(lo, hi, pivots, out)
	return out
}

func (a *Array) crackMultiRec(lo, hi int, pivots []int64, out []int) {
	if len(pivots) == 0 {
		return
	}
	m := len(pivots) / 2
	pos := a.CrackInTwo(lo, hi, pivots[m])
	out[m] = pos
	a.crackMultiRec(lo, pos, pivots[:m], out[:m])
	a.crackMultiRec(pos, hi, pivots[m+1:], out[m+1:])
}

// b2u converts a bool to 0/1 branch-free (the pairs-layout twin of the
// helper inside internal/kernel, which only speaks []int64).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Sum returns the sum of values at positions [lo, hi).
func (a *Array) Sum(lo, hi int) int64 {
	if a.layout == LayoutPairs {
		var s0, s1 int64
		ps := a.pairs[lo:hi]
		var j int
		for ; j+2 <= len(ps); j += 2 {
			s0 += ps[j].Value
			s1 += ps[j+1].Value
		}
		if j < len(ps) {
			s0 += ps[j].Value
		}
		return s0 + s1
	}
	return kernel.Sum(a.vals[lo:hi])
}

// ScanCount counts values v with va <= v < vb among positions [lo, hi)
// by predicate scan (branch-free chunked kernel). Used when refinement
// is skipped under conflict-avoidance: the piece is read without being
// reorganized.
func (a *Array) ScanCount(lo, hi int, va, vb int64) int64 {
	if a.layout == LayoutPairs {
		var c int64
		for _, p := range a.pairs[lo:hi] {
			c += int64(b2u(p.Value >= va) & b2u(p.Value < vb))
		}
		return c
	}
	return kernel.CountRange(a.vals[lo:hi], va, vb)
}

// ScanSum sums values v with va <= v < vb among positions [lo, hi) by
// predicate scan (branch-free chunked kernel).
func (a *Array) ScanSum(lo, hi int, va, vb int64) int64 {
	if a.layout == LayoutPairs {
		var s int64
		for _, p := range a.pairs[lo:hi] {
			v := p.Value
			s += v & -int64(b2u(v >= va)&b2u(v < vb))
		}
		return s
	}
	return kernel.SumRange(a.vals[lo:hi], va, vb)
}

// AppendRowIDs appends the rowIDs at positions [lo, hi) to dst and
// returns the extended slice. It implements the output side of the
// select operator in the Figure 6 plan.
func (a *Array) AppendRowIDs(dst []uint32, lo, hi int) []uint32 {
	if a.layout == LayoutPairs {
		for _, p := range a.pairs[lo:hi] {
			dst = append(dst, p.RowID)
		}
		return dst
	}
	return append(dst, a.ids[lo:hi]...)
}

// AppendRowIDsWhere appends the rowIDs of values v with va <= v < vb
// among positions [lo, hi) to dst and returns the extended slice. The
// predicate is evaluated as one branch-free 64-row mask per chunk; the
// output loop then walks only the set bits, so sparse matches skip
// non-qualifying rows entirely instead of testing them one branch at
// a time.
func (a *Array) AppendRowIDsWhere(dst []uint32, lo, hi int, va, vb int64) []uint32 {
	if a.layout == LayoutPairs {
		for start := lo; start < hi; {
			end := start + kernel.ChunkSize
			if end > hi {
				end = hi
			}
			m := maskPairs64(a.pairs[start:end], va, vb)
			for m != 0 {
				j := bits.TrailingZeros64(m)
				dst = append(dst, a.pairs[start+j].RowID)
				m &= m - 1
			}
			start = end
		}
		return dst
	}
	for start := lo; start < hi; {
		end := start + kernel.ChunkSize
		if end > hi {
			end = hi
		}
		m := kernel.Mask64(a.vals[start:end], va, vb)
		for m != 0 {
			j := bits.TrailingZeros64(m)
			dst = append(dst, a.ids[start+j])
			m &= m - 1
		}
		start = end
	}
	return dst
}

// maskPairs64 is kernel.Mask64 for the pairs layout: bit j of the
// result is set iff lo <= ps[j].Value < hi (len(ps) <= 64).
func maskPairs64(ps []Pair, lo, hi int64) uint64 {
	var m uint64
	for j := range ps {
		v := ps[j].Value
		m |= (b2u(v >= lo) & b2u(v < hi)) << uint(j)
	}
	return m
}

// Sort fully sorts positions [lo, hi) by value (stable order between
// equal values is not guaranteed). Used by the full-index baseline and
// by hybrid algorithms' sorted final partitions.
func (a *Array) Sort(lo, hi int) {
	if a.layout == LayoutPairs {
		s := a.pairs[lo:hi]
		sort.Slice(s, func(i, j int) bool { return s[i].Value < s[j].Value })
		return
	}
	sort.Sort(&splitSorter{vals: a.vals[lo:hi], ids: a.ids[lo:hi]})
}

type splitSorter struct {
	vals []int64
	ids  []uint32
}

func (s *splitSorter) Len() int           { return len(s.vals) }
func (s *splitSorter) Less(i, j int) bool { return s.vals[i] < s.vals[j] }
func (s *splitSorter) Swap(i, j int) {
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// Values returns a copy of the value array in current physical order.
// Intended for tests and visualization.
func (a *Array) Values() []int64 {
	out := make([]int64, a.n)
	if a.layout == LayoutPairs {
		for i, p := range a.pairs {
			out[i] = p.Value
		}
		return out
	}
	copy(out, a.vals)
	return out
}

// RowIDs returns a copy of the rowID array in current physical order.
func (a *Array) RowIDs() []uint32 {
	out := make([]uint32, a.n)
	if a.layout == LayoutPairs {
		for i, p := range a.pairs {
			out[i] = p.RowID
		}
		return out
	}
	copy(out, a.ids)
	return out
}
