package crackindex

import (
	"context"
	"time"
)

// tagKey keys the query tag carried by a context (WithTag).
type tagKey struct{}

// WithTag returns a context carrying a query tag: the ctx-aware query
// surface (CountCtx / SumCtx) labels its trace events with it, the way
// CountTagged / SumTagged do on the plain surface. The tag rides the
// context so it survives the fan-out executor and the engine adapters
// without widening any signature.
func WithTag(ctx context.Context, tag string) context.Context {
	return context.WithValue(ctx, tagKey{}, tag)
}

// Tag returns the query tag ctx carries ("" when none) — the same tag
// WithTag attached. The workload recorder (internal/wcapture) stamps
// it into captured records via the shard executor.
func Tag(ctx context.Context) string { return tagFrom(ctx) }

// tagFrom extracts the query tag from ctx ("" when none).
func tagFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if t, ok := ctx.Value(tagKey{}).(string); ok {
		return t
	}
	return ""
}

// Count executes query type Q1 of the paper's §6 —
// select count(*) from R where lo <= A < hi — cracking the column as a
// side effect. It returns the count and the operation's cost breakdown.
func (ix *Index) Count(lo, hi int64) (int64, OpStats) {
	return ix.CountTagged("", lo, hi)
}

// CountCtx is Count bounded by a context: cancellation before any work
// returns ctx.Err() with no refinement side effects, and a deadline
// expiring while the query is parked on a piece latch unparks it
// promptly. A query that returns a non-nil error returns no answer.
func (ix *Index) CountCtx(ctx context.Context, lo, hi int64) (int64, OpStats, error) {
	oc := opCtx{ctx: ctx, tag: tagFrom(ctx)}
	if oc.canceled() {
		return 0, oc.OpStats, oc.err
	}
	n := ix.countBase(&oc, lo, hi)
	if oc.err != nil {
		return 0, oc.OpStats, oc.err
	}
	return n + ix.pendingCountAdj(lo, hi), oc.OpStats, nil
}

// CountTagged is Count with a query tag for the trace hook. The result
// merges any pending differential updates (see updates.go).
func (ix *Index) CountTagged(tag string, lo, hi int64) (int64, OpStats) {
	oc := opCtx{tag: tag}
	n := ix.countBase(&oc, lo, hi)
	return n + ix.pendingCountAdj(lo, hi), oc.OpStats
}

// countBase answers from the physical index only, ignoring the
// differential file. On a context error (oc.err set) the partial
// result is meaningless and must be discarded by the caller.
func (ix *Index) countBase(oc *opCtx, lo, hi int64) int64 {
	if lo >= hi {
		return 0
	}
	ix.ensureInit(oc)
	switch ix.opts.Latching {
	case LatchColumn:
		if ix.opts.OnConflict == Skip {
			if !ix.tryColumnWrite(oc) {
				return ix.fallbackScanColumn(false, lo, hi, oc)
			}
		} else if !ix.columnWriteLock(lo, oc) {
			return 0
		}
		posLo, posHi := ix.crackPairExclusive(lo, hi, oc)
		ix.columnWriteUnlock(oc)
		return int64(posHi - posLo)
	case LatchNone:
		posLo, posHi := ix.crackPairExclusive(lo, hi, oc)
		return int64(posHi - posLo)
	default: // LatchPiece
		posLo, posHi, _, ok := ix.crackPair(lo, hi, false, oc)
		if !ok {
			if oc.err != nil {
				return 0
			}
			return ix.fallbackScanPiece(false, lo, hi, oc)
		}
		// Boundary positions are permanent: once both bounds are
		// cracked, the count is derived purely from the index
		// structure, with no further latching (the "continuously
		// reduced conflicts" effect of §5.3).
		return int64(posHi - posLo)
	}
}

// Sum executes query type Q2 —
// select sum(A) from R where lo <= A < hi — cracking the column as a
// side effect and aggregating under read latches.
func (ix *Index) Sum(lo, hi int64) (int64, OpStats) {
	return ix.SumTagged("", lo, hi)
}

// SumCtx is Sum bounded by a context (see CountCtx for the semantics).
func (ix *Index) SumCtx(ctx context.Context, lo, hi int64) (int64, OpStats, error) {
	oc := opCtx{ctx: ctx, tag: tagFrom(ctx)}
	if oc.canceled() {
		return 0, oc.OpStats, oc.err
	}
	s := ix.sumBase(&oc, lo, hi)
	if oc.err != nil {
		return 0, oc.OpStats, oc.err
	}
	return s + ix.pendingSumAdj(lo, hi), oc.OpStats, nil
}

// SumTagged is Sum with a query tag for the trace hook. The result
// merges any pending differential updates (see updates.go).
func (ix *Index) SumTagged(tag string, lo, hi int64) (int64, OpStats) {
	oc := opCtx{tag: tag}
	s := ix.sumBase(&oc, lo, hi)
	return s + ix.pendingSumAdj(lo, hi), oc.OpStats
}

// sumBase answers from the physical index only, ignoring the
// differential file (see countBase for the context-error contract).
func (ix *Index) sumBase(oc *opCtx, lo, hi int64) int64 {
	if lo >= hi {
		return 0
	}
	ix.ensureInit(oc)
	switch ix.opts.Latching {
	case LatchColumn:
		if ix.opts.OnConflict == Skip {
			if !ix.tryColumnWrite(oc) {
				return ix.fallbackScanColumn(true, lo, hi, oc)
			}
		} else if !ix.columnWriteLock(lo, oc) {
			return 0
		}
		posLo, posHi := ix.crackPairExclusive(lo, hi, oc)
		ix.columnWriteUnlock(oc)
		// The aggregation operator runs under a separate read latch:
		// multiple aggregations proceed in parallel, but no cracking
		// can happen meanwhile (Figure 8, top).
		if !ix.columnReadLock(oc) {
			return 0
		}
		oc.Touched += int64(posHi - posLo)
		s := ix.arr.Sum(posLo, posHi)
		ix.columnReadUnlock(oc)
		return s
	case LatchNone:
		posLo, posHi := ix.crackPairExclusive(lo, hi, oc)
		oc.Touched += int64(posHi - posLo)
		return ix.arr.Sum(posLo, posHi)
	default: // LatchPiece
		posLo, posHi, mid, ok := ix.crackPair(lo, hi, true, oc)
		if !ok {
			if oc.err != nil {
				return 0
			}
			return ix.fallbackScanPiece(true, lo, hi, oc)
		}
		if mid != nil {
			// Crack-in-three path: the middle piece holds exactly the
			// qualifying range and is still write-latched; downgrade
			// to a read latch and aggregate in place (§3.3).
			ix.traceDowngrade(oc, mid)
			mid.latch.Downgrade()
			oc.Touched += int64(posHi - posLo)
			s := ix.arr.Sum(posLo, posHi)
			ix.pieceReadUnlock(oc, mid)
			return s
		}
		return ix.sumWalk(lo, posLo, posHi, oc)
	}
}

// SelectRowIDs executes the select operator of the Figure 6 plan:
// it returns the base-table row ids of all values in [lo, hi),
// cracking the column as a side effect. The result order follows the
// current physical order of the cracker array.
func (ix *Index) SelectRowIDs(lo, hi int64) ([]uint32, OpStats) {
	ctx := opCtx{}
	if lo >= hi {
		return nil, ctx.OpStats
	}
	ix.ensureInit(&ctx)
	switch ix.opts.Latching {
	case LatchColumn:
		if ix.opts.OnConflict == Skip {
			if !ix.tryColumnWrite(&ctx) {
				ids := ix.fallbackCollectColumn(lo, hi, &ctx)
				return ids, ctx.OpStats
			}
		} else {
			ix.columnWriteLock(lo, &ctx)
		}
		posLo, posHi := ix.crackPairExclusive(lo, hi, &ctx)
		ix.columnWriteUnlock(&ctx)
		ix.columnReadLock(&ctx)
		ids := ix.arr.AppendRowIDs(make([]uint32, 0, posHi-posLo), posLo, posHi)
		ix.columnReadUnlock(&ctx)
		return ids, ctx.OpStats
	case LatchNone:
		posLo, posHi := ix.crackPairExclusive(lo, hi, &ctx)
		return ix.arr.AppendRowIDs(make([]uint32, 0, posHi-posLo), posLo, posHi), ctx.OpStats
	default:
		posLo, posHi, mid, ok := ix.crackPair(lo, hi, true, &ctx)
		if !ok {
			return ix.fallbackCollectPiece(lo, hi, &ctx), ctx.OpStats
		}
		if mid != nil {
			ix.traceDowngrade(&ctx, mid)
			mid.latch.Downgrade()
			ids := ix.arr.AppendRowIDs(make([]uint32, 0, posHi-posLo), posLo, posHi)
			ix.pieceReadUnlock(&ctx, mid)
			return ids, ctx.OpStats
		}
		ids := make([]uint32, 0, posHi-posLo)
		ix.walkPieces(lo, posHi, &ctx, func(start, end int) {
			ids = ix.arr.AppendRowIDs(ids, start, end)
		})
		return ids, ctx.OpStats
	}
}

// ensureInit lazily builds the cracker array on the first query
// touching the index. The initializing query charges the copy to its
// refinement time; queries that block behind it charge wait time
// (compare Figure 15's expensive first query).
func (ix *Index) ensureInit(ctx *opCtx) {
	if ix.initDone.Load() {
		return
	}
	start := time.Now()
	ix.mu.Lock()
	if !ix.init {
		ix.ensureInitLocked()
		ix.mu.Unlock()
		d := time.Since(start)
		ctx.Crack += d
		ctx.Touched += int64(len(ix.base))
		ix.stats.CrackTime.Add(d)
		return
	}
	ix.mu.Unlock()
	ctx.addWait(time.Since(start))
}

// sumWalk aggregates positions [posLo, posHi) by walking the piece
// list from the piece starting at value lo, read-latching one piece at
// a time. Holding at most one latch keeps the protocol deadlock-free
// and lets cracking of other pieces proceed concurrently (Figure 8,
// middle and bottom).
func (ix *Index) sumWalk(lo int64, posLo, posHi int, ctx *opCtx) int64 {
	var s int64
	ix.walkPieces(lo, posHi, ctx, func(start, end int) {
		if start < posLo {
			start = posLo
		}
		s += ix.arr.Sum(start, end)
	})
	return s
}

// walkPieces visits the pieces covering positions up to posHi,
// starting at the piece whose loVal boundary is <= lo, invoking visit
// with each piece's clamped [start, end) position range while holding
// that piece's read latch. The walk stops early when the operation's
// context expires (ctx.err set; the partial visit is discarded by the
// caller).
func (ix *Index) walkPieces(lo int64, posHi int, ctx *opCtx, visit func(start, end int)) {
	ix.mu.Lock()
	p := ix.findPieceLocked(lo)
	ix.mu.Unlock()
	for p != nil && p.lo < posHi { // p.lo is immutable: safe unlatched
		if !ix.pieceReadLock(p, ctx) {
			return
		}
		end := p.hi // stable under the read latch
		if end > posHi {
			end = posHi
		}
		if p.lo < end {
			ctx.Touched += int64(end - p.lo)
			visit(p.lo, end)
		}
		np := p.next // stable under the read latch
		ix.pieceReadUnlock(ctx, p)
		p = np
	}
}

// fallbackScanPiece answers a query without refining the index: the
// optional crack was forgone (conflict avoidance), so the answer is
// computed by predicate scans over the read-latched pieces overlapping
// [lo, hi). Pieces fully covered by the predicate use position-based
// aggregation.
func (ix *Index) fallbackScanPiece(wantSum bool, lo, hi int64, ctx *opCtx) int64 {
	var res int64
	ix.mu.Lock()
	p := ix.findPieceLocked(lo)
	ix.mu.Unlock()
	for p != nil && p.loVal < hi { // p.loVal is immutable: safe unlatched
		if !ix.pieceReadLock(p, ctx) {
			return 0
		}
		ctx.Touched += int64(p.hi - p.lo)
		res += ix.scanPieceLocked(p, wantSum, lo, hi)
		np := p.next
		ix.pieceReadUnlock(ctx, p)
		p = np
	}
	return res
}

// scanPieceLocked aggregates the qualifying values of p; caller holds
// p's read latch (or has exclusive access).
func (ix *Index) scanPieceLocked(p *piece, wantSum bool, lo, hi int64) int64 {
	if p.loVal >= lo && p.hiVal <= hi {
		// Fully covered: no predicate needed.
		if wantSum {
			return ix.arr.Sum(p.lo, p.hi)
		}
		return int64(p.hi - p.lo)
	}
	if wantSum {
		return ix.arr.ScanSum(p.lo, p.hi, lo, hi)
	}
	return ix.arr.ScanCount(p.lo, p.hi, lo, hi)
}

// fallbackScanColumn is the LatchColumn variant: one read latch over
// the whole column, then an unlatched piece walk (structure is stable
// under the column read latch).
func (ix *Index) fallbackScanColumn(wantSum bool, lo, hi int64, ctx *opCtx) int64 {
	if !ix.columnReadLock(ctx) {
		return 0
	}
	defer ix.columnReadUnlock(ctx)
	var res int64
	ix.structLock()
	p := ix.findPieceLocked(lo)
	ix.structUnlock()
	for p != nil && p.loVal < hi {
		ctx.Touched += int64(p.hi - p.lo)
		res += ix.scanPieceLocked(p, wantSum, lo, hi)
		p = p.next
	}
	return res
}

// fallbackCollectPiece collects qualifying rowIDs without refinement.
func (ix *Index) fallbackCollectPiece(lo, hi int64, ctx *opCtx) []uint32 {
	var ids []uint32
	ix.mu.Lock()
	p := ix.findPieceLocked(lo)
	ix.mu.Unlock()
	for p != nil && p.loVal < hi {
		if !ix.pieceReadLock(p, ctx) {
			return nil
		}
		ids = ix.arr.AppendRowIDsWhere(ids, p.lo, p.hi, lo, hi)
		np := p.next
		ix.pieceReadUnlock(ctx, p)
		p = np
	}
	return ids
}

// fallbackCollectColumn collects qualifying rowIDs under the column
// read latch.
func (ix *Index) fallbackCollectColumn(lo, hi int64, ctx *opCtx) []uint32 {
	if !ix.columnReadLock(ctx) {
		return nil
	}
	defer ix.columnReadUnlock(ctx)
	var ids []uint32
	ix.structLock()
	p := ix.findPieceLocked(lo)
	ix.structUnlock()
	for p != nil && p.loVal < hi {
		ids = ix.arr.AppendRowIDsWhere(ids, p.lo, p.hi, lo, hi)
		p = p.next
	}
	return ids
}

// Column-latch helpers (LatchColumn mode). The write/read acquisitions
// report false only when the operation's context expired while parked
// (the latch is then not held).

func (ix *Index) columnWriteLock(bound int64, ctx *opCtx) bool {
	ix.traceWant(ctx, nil, true, bound)
	w, err := ix.colLatch.LockCtx(ctx.ctx, bound)
	ctx.addWait(w)
	if w > 0 {
		ix.stats.Conflicts.Inc()
		ix.stats.WaitTime.Add(w)
	}
	if err != nil {
		ctx.err = err
		return false
	}
	ix.traceAcquired(ctx, nil, true)
	return true
}

func (ix *Index) tryColumnWrite(ctx *opCtx) bool {
	ix.traceWant(ctx, nil, true, 0)
	if !ix.colLatch.TryLock() {
		ctx.Conflicts++
		ctx.Skipped = true
		ix.stats.Conflicts.Inc()
		ix.stats.Skipped.Inc()
		return false
	}
	ix.traceAcquired(ctx, nil, true)
	return true
}

func (ix *Index) columnWriteUnlock(ctx *opCtx) {
	ix.traceRelease(ctx, nil, true)
	ix.colLatch.Unlock()
}

func (ix *Index) columnReadLock(ctx *opCtx) bool {
	ix.traceWant(ctx, nil, false, 0)
	w, err := ix.colLatch.RLockCtx(ctx.ctx)
	ctx.addWait(w)
	if w > 0 {
		ix.stats.Conflicts.Inc()
		ix.stats.WaitTime.Add(w)
	}
	if err != nil {
		ctx.err = err
		return false
	}
	ix.traceAcquired(ctx, nil, false)
	return true
}

func (ix *Index) columnReadUnlock(ctx *opCtx) {
	ix.traceRelease(ctx, nil, false)
	ix.colLatch.RUnlock()
}
