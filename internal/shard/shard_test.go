package shard

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/workload"
)

// qctx is the uncancellable context the tests drive queries with.
var qctx = context.Background()

func pieceOpts() crackindex.Options {
	return crackindex.Options{Latching: crackindex.LatchPiece}
}

func TestDefaults(t *testing.T) {
	c := New([]int64{3, 1, 2}, Options{})
	if got, want := c.Options().Shards, runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default Shards = %d, want GOMAXPROCS = %d", got, want)
	}
	if c.Options().Workers != c.Options().Shards {
		t.Errorf("default Workers = %d, want Shards = %d", c.Options().Workers, c.Options().Shards)
	}
	if c.Rows() != 3 {
		t.Errorf("Rows = %d, want 3", c.Rows())
	}
}

func TestPartitioningInvariants(t *testing.T) {
	d := workload.NewUniqueUniform(1<<14, 3)
	for _, p := range []int{1, 2, 3, 4, 8, 16} {
		c := New(d.Values, Options{Shards: p, Seed: 9, Index: pieceOpts()})
		if c.NumShards() > p {
			t.Errorf("P=%d: NumShards = %d exceeds requested", p, c.NumShards())
		}
		if c.Rows() != len(d.Values) {
			t.Errorf("P=%d: Rows = %d, want %d", p, c.Rows(), len(d.Values))
		}
		if err := c.Validate(); err != nil {
			t.Errorf("P=%d: %v", p, err)
		}
		b := c.Bounds()
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Errorf("P=%d: bounds not strictly increasing: %v", p, b)
			}
		}
	}
}

func TestCountSumMatchBruteForce(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 5)
	c := New(d.Values, Options{Shards: 4, Seed: 7, Index: pieceOpts()})
	r := workload.NewRNG(21)
	for i := 0; i < 300; i++ {
		lo := r.Int64n(d.Domain)
		hi := lo + 1 + r.Int64n(d.Domain-lo)
		if n, _, _ := c.Count(qctx, lo, hi); n != d.TrueCount(lo, hi) {
			t.Fatalf("Count[%d,%d) = %d, want %d", lo, hi, n, d.TrueCount(lo, hi))
		}
		if s, _, _ := c.Sum(qctx, lo, hi); s != d.TrueSum(lo, hi) {
			t.Fatalf("Sum[%d,%d) = %d, want %d", lo, hi, s, d.TrueSum(lo, hi))
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCaseRanges(t *testing.T) {
	d := workload.NewUniqueUniform(4096, 8)
	c := New(d.Values, Options{Shards: 4, Index: pieceOpts()})
	cases := []struct{ lo, hi int64 }{
		{0, d.Domain},             // whole domain
		{10, 10},                  // empty range
		{50, 10},                  // inverted range
		{-100, 0},                 // entirely below the domain
		{d.Domain, d.Domain + 50}, // entirely above the domain
		{-100, d.Domain + 100},    // superset of the domain
		{minKey, maxKey},          // sentinel-wide range
		{0, 1},                    // single value at the low edge
		{d.Domain - 1, d.Domain},  // single value at the high edge
	}
	for _, tc := range cases {
		if n, _, _ := c.Count(qctx, tc.lo, tc.hi); n != d.TrueCount(tc.lo, tc.hi) {
			t.Errorf("Count[%d,%d) = %d, want %d", tc.lo, tc.hi, n, d.TrueCount(tc.lo, tc.hi))
		}
		if s, _, _ := c.Sum(qctx, tc.lo, tc.hi); s != d.TrueSum(tc.lo, tc.hi) {
			t.Errorf("Sum[%d,%d) = %d, want %d", tc.lo, tc.hi, s, d.TrueSum(tc.lo, tc.hi))
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFullyCoveredShardsAnswerWithoutIndexWork(t *testing.T) {
	d := workload.NewUniqueUniform(4096, 2)
	c := New(d.Values, Options{Shards: 4, Index: pieceOpts()})
	// The whole domain covers every shard: the precomputed aggregates
	// answer, and no shard index is ever initialized.
	if n, _, _ := c.Count(qctx, minKey, maxKey); n != int64(len(d.Values)) {
		t.Fatalf("Count = %d, want %d", n, len(d.Values))
	}
	if s, _, _ := c.Sum(qctx, minKey, maxKey); s != d.TrueSum(0, d.Domain) {
		t.Fatalf("Sum mismatch")
	}
	for _, st := range c.Snapshot() {
		if st.Pieces != 0 || st.Cracks != 0 {
			t.Errorf("shard %d refined (pieces=%d cracks=%d) by a fully-covering query",
				st.Shard, st.Pieces, st.Cracks)
		}
	}
}

func TestDuplicatesAndSkew(t *testing.T) {
	// Heavy duplication: a tiny domain collapses most quantile cuts.
	d := workload.NewDuplicates(1<<12, 8, 4)
	c := New(d.Values, Options{Shards: 8, Index: pieceOpts()})
	if c.NumShards() > 8 {
		t.Fatalf("NumShards = %d", c.NumShards())
	}
	r := workload.NewRNG(6)
	for i := 0; i < 200; i++ {
		lo := r.Int64n(d.Domain)
		hi := lo + 1 + r.Int64n(d.Domain-lo)
		if n, _, _ := c.Count(qctx, lo, hi); n != d.TrueCount(lo, hi) {
			t.Fatalf("Count[%d,%d) = %d, want %d", lo, hi, n, d.TrueCount(lo, hi))
		}
		if s, _, _ := c.Sum(qctx, lo, hi); s != d.TrueSum(lo, hi) {
			t.Fatalf("Sum[%d,%d) = %d, want %d", lo, hi, s, d.TrueSum(lo, hi))
		}
	}
	// Constant column: one shard, still correct.
	same := make([]int64, 1000)
	for i := range same {
		same[i] = 7
	}
	c2 := New(same, Options{Shards: 4, Index: pieceOpts()})
	if c2.NumShards() != 1 {
		t.Errorf("constant column: NumShards = %d, want 1", c2.NumShards())
	}
	if n, _, _ := c2.Count(qctx, 7, 8); n != 1000 {
		t.Errorf("constant column: Count = %d, want 1000", n)
	}
}

func TestEmptyAndTinyColumns(t *testing.T) {
	empty := New(nil, Options{Shards: 4, Index: pieceOpts()})
	if n, _, _ := empty.Count(qctx, 0, 100); n != 0 {
		t.Errorf("empty Count = %d", n)
	}
	if s, _, _ := empty.Sum(qctx, minKey, maxKey); s != 0 {
		t.Errorf("empty Sum = %d", s)
	}
	one := New([]int64{42}, Options{Shards: 8, Index: pieceOpts()})
	if n, _, _ := one.Count(qctx, 0, 100); n != 1 {
		t.Errorf("singleton Count = %d", n)
	}
	if s, _, _ := one.Sum(qctx, 42, 43); s != 42 {
		t.Errorf("singleton Sum = %d", s)
	}
}

func TestSnapshotReflectsRefinement(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 12)
	c := New(d.Values, Options{Shards: 4, Index: pieceOpts()})
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.01, 13), 64)
	for _, q := range qs {
		c.Sum(qctx, q.Lo, q.Hi)
	}
	var pieces, cracks int64
	for _, st := range c.Snapshot() {
		pieces += int64(st.Pieces)
		cracks += st.Cracks
		if st.Pieces > 1 && st.Depth <= 0 {
			t.Errorf("shard %d: pieces=%d but depth=%d", st.Shard, st.Pieces, st.Depth)
		}
		if st.Rows > 0 && st.Pieces > st.Rows {
			t.Errorf("shard %d: pieces=%d exceeds rows=%d", st.Shard, st.Pieces, st.Rows)
		}
	}
	if pieces == 0 || cracks == 0 {
		t.Errorf("no refinement recorded: pieces=%d cracks=%d", pieces, cracks)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentQueries(t *testing.T) {
	d := workload.NewUniqueUniform(1<<14, 17)
	c := New(d.Values, Options{Shards: 4, Workers: 4, Index: pieceOpts()})
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.02, 19), 256)
	want := make([]int64, len(qs))
	for i, q := range qs {
		want[i] = d.TrueSum(q.Lo, q.Hi)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				if s, _, _ := c.Sum(qctx, q.Lo, q.Hi); s != want[i] {
					errs <- "sum mismatch under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	// A worker pool of 1 still completes wide fan-outs (no deadlock),
	// because the caller's goroutine always executes one sub-query.
	d := workload.NewUniqueUniform(1<<12, 23)
	c := New(d.Values, Options{Shards: 8, Workers: 1, Index: pieceOpts()})
	r := workload.NewRNG(29)
	for i := 0; i < 100; i++ {
		lo := r.Int64n(d.Domain / 2)
		hi := lo + d.Domain/2 // wide ranges spanning many shards
		if n, _, _ := c.Count(qctx, lo, hi); n != d.TrueCount(lo, hi) {
			t.Fatalf("Count[%d,%d) = %d, want %d", lo, hi, n, d.TrueCount(lo, hi))
		}
	}
}

func TestNegativeValues(t *testing.T) {
	vals := []int64{-5, -1, 0, 3, math.MinInt64 + 1, math.MaxInt64 - 1, -100, 100}
	c := New(vals, Options{Shards: 3, Index: pieceOpts()})
	count := func(lo, hi int64) int64 {
		var n int64
		for _, v := range vals {
			if v >= lo && v < hi {
				n++
			}
		}
		return n
	}
	for _, tc := range [][2]int64{{-200, 0}, {-1, 4}, {minKey, maxKey}, {0, math.MaxInt64}} {
		if n, _, _ := c.Count(qctx, tc[0], tc[1]); n != count(tc[0], tc[1]) {
			t.Errorf("Count[%d,%d) = %d, want %d", tc[0], tc[1], n, count(tc[0], tc[1]))
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- Write path and structural operations (update.go) ---

func TestRoutedInsertDeleteSerial(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 31)
	c := New(d.Values, Options{Shards: 4, Seed: 3, Index: pieceOpts()})
	for i := int64(0); i < 256; i++ {
		if err := c.Insert(qctx, i*3); err != nil {
			t.Fatal(err)
		}
	}
	deleted := 0
	for i := int64(0); i < 256; i++ {
		ok, err := c.DeleteValue(qctx, i*5)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			deleted++
		}
	}
	if deleted == 0 {
		t.Fatal("no deletes found existing values")
	}
	count := func(lo, hi int64) int64 {
		var n int64
		for _, v := range d.Values {
			if v >= lo && v < hi {
				n++
			}
		}
		for i := int64(0); i < 256; i++ {
			if v := i * 3; v >= lo && v < hi {
				n++
			}
		}
		for i := int64(0); i < 256; i++ {
			v := i * 5
			// Deleted iff logically present at delete time: initial
			// uniques [0,n) plus inserted multiples of 3.
			present := v < d.Domain || (v%3 == 0 && v/3 < 256)
			if present && v >= lo && v < hi {
				n--
			}
		}
		return n
	}
	r := workload.NewRNG(37)
	for i := 0; i < 200; i++ {
		lo := r.Int64n(d.Domain)
		hi := lo + 1 + r.Int64n(d.Domain-lo)
		if n, _, _ := c.Count(qctx, lo, hi); n != count(lo, hi) {
			t.Fatalf("Count[%d,%d) = %d, want %d", lo, hi, n, count(lo, hi))
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyShardMergesDifferential(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 41)
	c := New(d.Values, Options{Shards: 4, Seed: 3, Index: pieceOpts()})
	c.Sum(qctx, 10, d.Domain/8) // earn some refinement to replay
	for i := int64(0); i < 128; i++ {
		if err := c.Insert(qctx, i); err != nil {
			t.Fatal(err)
		}
	}
	totalBefore, _, _ := c.Sum(qctx, minKey, maxKey)
	st := c.Snapshot()[0]
	if st.PendingInserts == 0 {
		t.Fatal("expected pending inserts in shard 0")
	}
	ap, ok := c.ApplyShard(0)
	if !ok {
		t.Fatal("ApplyShard(0) found nothing to do")
	}
	if ap.Inserts != st.PendingInserts {
		t.Errorf("Applied.Inserts = %d, want %d", ap.Inserts, st.PendingInserts)
	}
	after := c.Snapshot()[0]
	if after.PendingInserts != 0 || after.PendingDeletes != 0 {
		t.Errorf("pending not cleared: %d/%d", after.PendingInserts, after.PendingDeletes)
	}
	if after.Rows != st.Rows {
		t.Errorf("rows changed across merge: %d -> %d", st.Rows, after.Rows)
	}
	if totalAfter, _, _ := c.Sum(qctx, minKey, maxKey); totalAfter != totalBefore {
		t.Errorf("Sum changed across merge: %d -> %d", totalBefore, totalAfter)
	}
	if _, ok := c.ApplyShard(0); ok {
		t.Error("second ApplyShard(0) reported work with an empty differential")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAndMergeShards(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 43)
	c := New(d.Values, Options{Shards: 2, Seed: 3, Index: pieceOpts()})
	n0 := c.NumShards()
	totalBefore, _, _ := c.Sum(qctx, minKey, maxKey)

	sp, ok := c.SplitShard(0)
	if !ok {
		t.Fatal("SplitShard(0) failed")
	}
	if c.NumShards() != n0+1 {
		t.Fatalf("NumShards = %d after split, want %d", c.NumShards(), n0+1)
	}
	if sp.LeftRows == 0 || sp.RightRows == 0 {
		t.Fatalf("degenerate split: %+v", sp)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := c.Sum(qctx, minKey, maxKey); got != totalBefore {
		t.Errorf("Sum changed across split: %d -> %d", totalBefore, got)
	}

	mg, ok := c.MergeShards(0)
	if !ok {
		t.Fatal("MergeShards(0) failed")
	}
	if mg.RemovedBound != sp.Cut {
		t.Errorf("merge removed bound %d, split had added %d", mg.RemovedBound, sp.Cut)
	}
	if c.NumShards() != n0 {
		t.Fatalf("NumShards = %d after merge, want %d", c.NumShards(), n0)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := c.Sum(qctx, minKey, maxKey); got != totalBefore {
		t.Errorf("Sum changed across merge: %d -> %d", totalBefore, got)
	}
}

func TestSplitShardDegenerate(t *testing.T) {
	vals := make([]int64, 64) // all zero: no valid cut
	c := New(vals, Options{Shards: 1, Index: pieceOpts()})
	if _, ok := c.SplitShard(0); ok {
		t.Fatal("split of a single-value shard succeeded")
	}
	// The shard must have been unsealed: writes still proceed.
	if err := c.Insert(qctx, 0); err != nil {
		t.Fatal(err)
	}
	if n, _, _ := c.Count(qctx, 0, 1); n != 65 {
		t.Fatalf("Count = %d after post-split-failure insert, want 65", n)
	}
}

func TestNewWithBoundsRoundTrip(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 47)
	c := New(d.Values, Options{Shards: 8, Seed: 5, Index: pieceOpts()})
	c2 := NewWithBounds(d.Values, c.Bounds(), Options{Index: pieceOpts()})
	if c2.NumShards() != c.NumShards() {
		t.Fatalf("rebuilt NumShards = %d, want %d", c2.NumShards(), c.NumShards())
	}
	b1, b2 := c.Bounds(), c2.Bounds()
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("bounds diverge at %d: %d vs %d", i, b1[i], b2[i])
		}
	}
	if err := c2.Validate(); err != nil {
		t.Fatal(err)
	}
}
