package metrics

import (
	"math"
	"testing"
)

func TestHeatmapBucketing(t *testing.T) {
	// Domain [0, 639]: span 639, width 639/64+1 = 10.
	h := NewHeatmap(0, 639)
	h.RecordKey(0)
	h.RecordKey(9)   // same first bucket
	h.RecordKey(10)  // second bucket
	h.RecordKey(639) // last in-domain bucket
	s := h.Snapshot()
	if s.BucketWidth != 10 {
		t.Fatalf("bucket width %d, want 10", s.BucketWidth)
	}
	if s.Writes[0] != 2 || s.Writes[1] != 1 || s.Writes[63] != 1 {
		t.Fatalf("writes = %v", s.Writes)
	}

	// A range query touches every overlapped bucket exactly once.
	h.RecordRange(5, 25) // buckets 0..2 ([5,24] inclusive)
	s = h.Snapshot()
	for i, want := range []int64{1, 1, 1, 0} {
		if s.Reads[i] != want {
			t.Fatalf("reads[%d] = %d, want %d (reads %v)", i, s.Reads[i], want, s.Reads[:4])
		}
	}
	// An empty range still counts one read at its lower bound.
	h.RecordRange(12, 12)
	if s := h.Snapshot(); s.Reads[1] != 2 {
		t.Fatalf("empty-range read not counted: %v", s.Reads[:4])
	}
}

func TestHeatmapClampsOutOfDomain(t *testing.T) {
	h := NewHeatmap(100, 200)
	h.RecordKey(-1000)
	h.RecordKey(1000)
	h.RecordRange(-50, 5000)
	s := h.Snapshot()
	if s.Writes[0] != 1 || s.Writes[HeatBuckets-1] != 1 {
		t.Fatalf("out-of-domain keys did not clamp to edge buckets: %v", s.Writes)
	}
	for i := range s.Reads {
		if s.Reads[i] != 1 {
			t.Fatalf("domain-covering range missed bucket %d: %v", i, s.Reads)
		}
	}
}

func TestHeatmapFullInt64Domain(t *testing.T) {
	// The widest possible domain must not overflow the width math.
	h := NewHeatmap(math.MinInt64, math.MaxInt64)
	h.RecordKey(math.MinInt64)
	h.RecordKey(0)
	h.RecordKey(math.MaxInt64)
	s := h.Snapshot()
	if s.Writes[0] != 1 || s.Writes[HeatBuckets-1] != 1 {
		t.Fatalf("extremes landed wrong: first %d last %d", s.Writes[0], s.Writes[HeatBuckets-1])
	}
	var n int64
	for _, v := range s.Writes {
		n += v
	}
	if n != 3 {
		t.Fatalf("recorded %d writes, want 3", n)
	}
}

func TestHeatmapSliceGivesPerShardView(t *testing.T) {
	h := NewHeatmap(0, 639)
	h.RecordRange(0, 100)   // buckets 0..9
	h.RecordRange(300, 320) // buckets 30..31
	h.RecordKey(305)
	s := h.Snapshot()
	if r, w := s.Slice(0, 99); r != 10 || w != 0 {
		t.Fatalf("low-shard slice = %d reads %d writes, want 10/0", r, w)
	}
	if r, w := s.Slice(300, 319); r != 2 || w != 1 {
		t.Fatalf("hot-shard slice = %d reads %d writes, want 2/1", r, w)
	}
	if r, w := s.Slice(500, 639); r != 0 || w != 0 {
		t.Fatalf("cold-shard slice = %d/%d, want 0/0", r, w)
	}
	if r, w := s.Slice(10, 5); r != 0 || w != 0 {
		t.Fatalf("inverted slice = %d/%d, want 0/0", r, w)
	}
}

func TestHeatmapMerge(t *testing.T) {
	a := NewHeatmap(0, 63)
	b := NewHeatmap(0, 63)
	a.RecordKey(0)
	b.RecordKey(0)
	b.RecordRange(0, 64)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Writes[0] != 2 {
		t.Fatalf("merged writes[0] = %d, want 2", sa.Writes[0])
	}
	var reads int64
	for _, v := range sa.Reads {
		reads += v
	}
	if reads != HeatBuckets {
		t.Fatalf("merged reads total %d, want %d", reads, HeatBuckets)
	}
}

func TestHeatmapNilSafe(t *testing.T) {
	var h *Heatmap
	h.RecordRange(1, 2)
	h.RecordKey(3)
	if s := h.Snapshot(); s.BucketWidth != 0 {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
}

func TestObserverKeyDomainFirstWins(t *testing.T) {
	ob := NewObserver(ObserverOptions{})
	// Recording before the domain is known is a dropped no-op.
	ob.RecordRangeQuery(0, 10)
	ob.RecordWriteKey(5)
	if s := ob.Heat(); s.BucketWidth != 0 {
		t.Fatalf("heat before SetKeyDomain = %+v, want zero", s)
	}
	ob.SetKeyDomain(0, 639)
	ob.SetKeyDomain(0, 1_000_000) // loses: first install wins
	ob.RecordRangeQuery(0, 10)
	ob.RecordWriteKey(5)
	s := ob.Heat()
	if s.Hi != 639 {
		t.Fatalf("domain hi = %d, want first-wins 639", s.Hi)
	}
	if s.Reads[0] != 1 || s.Writes[0] != 1 {
		t.Fatalf("post-domain recordings missing: reads[0]=%d writes[0]=%d", s.Reads[0], s.Writes[0])
	}
}

func TestConvergenceSeriesWindows(t *testing.T) {
	ob := NewObserver(ObserverOptions{})
	if got := ob.ConvergenceSeries(); len(got) != 0 {
		t.Fatalf("fresh series = %v, want empty", got)
	}
	// Three full windows with distinct means; a partial fourth window
	// must not publish a point.
	for _, mean := range []int64{1000, 100, 10} {
		for i := 0; i < ConvWindow; i++ {
			ob.RecordTouched(mean)
		}
	}
	ob.RecordTouched(5)
	got := ob.ConvergenceSeries()
	if len(got) != 3 || got[0] != 1000 || got[1] != 100 || got[2] != 10 {
		t.Fatalf("series = %v, want [1000 100 10]", got)
	}
	// The touched histogram sees every sample, not just window means.
	ts := ob.TouchedSnapshot()
	if n := ts.Count(); n != 3*ConvWindow+1 {
		t.Fatalf("touched count = %d, want %d", n, 3*ConvWindow+1)
	}
}

func TestRoutingCounters(t *testing.T) {
	ob := NewObserver(ObserverOptions{})
	ob.RecordRouting(4, 3)
	ob.RecordRouting(2, 0)
	if v, c := ob.Routing(); v != 6 || c != 3 {
		t.Fatalf("routing = %d visited %d covered, want 6/3", v, c)
	}
}

// The hot-path recording surface of the convergence/heatmap layer must
// stay allocation-free: these sit on every query and every write.
func TestConvergenceRecordingDoesNotAllocate(t *testing.T) {
	ob := NewObserver(ObserverOptions{})
	ob.SetKeyDomain(0, 1<<20)
	assertZeroAlloc := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(200, f); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, n)
		}
	}
	assertZeroAlloc("RecordQueryProfile", func() { ob.RecordQueryProfile(100, 5000, 4, 2, 123) })
	assertZeroAlloc("RecordRangeQuery", func() { ob.RecordRangeQuery(100, 5000) })
	assertZeroAlloc("RecordWriteKey", func() { ob.RecordWriteKey(4242) })
	assertZeroAlloc("RecordTouched", func() { ob.RecordTouched(123) })
	assertZeroAlloc("RecordRouting", func() { ob.RecordRouting(4, 2) })
	var nilOb *Observer
	assertZeroAlloc("nil observer", func() {
		nilOb.RecordQueryProfile(1, 2, 1, 0, 3)
		nilOb.RecordRangeQuery(1, 2)
		nilOb.RecordWriteKey(3)
		nilOb.RecordTouched(4)
		nilOb.RecordRouting(1, 1)
	})
}
