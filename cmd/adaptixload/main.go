// Command adaptixload drives load at an adaptixd server and reports
// throughput and latency quantiles. Two loop disciplines:
//
//   - closed loop (default): -conns workers each keep exactly one
//     request outstanding, back to back, for -n total operations —
//     measures peak sustainable qps;
//   - open loop (-rate > 0): operations are dispatched on a fixed
//     schedule for -dur regardless of completions — measures latency
//     under a fixed offered load, the discipline that exposes
//     queueing collapse (and admission-control rejects) honestly.
//
// The query mix draws bounds from a -pool of distinct hot ranges
// (small pools produce exact-duplicate bounds that the server's batch
// scheduler coalesces), mixed with -write fraction of inserts/deletes.
//
// Usage:
//
//	adaptixload [-addr localhost:7090] [-conns 16] [-n 100000]
//	            [-rate 0] [-dur 10s] [-write 0.1] [-pool 16]
//	            [-sel 0.01] [-ttl 0] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/metrics"
	"adaptix/internal/serve"
	"adaptix/internal/workload"
)

func main() {
	addr := flag.String("addr", "localhost:7090", "server address")
	conns := flag.Int("conns", 16, "client connections (closed loop: one outstanding request each)")
	n := flag.Int("n", 100_000, "total operations (closed loop)")
	rate := flag.Float64("rate", 0, "offered ops/sec (>0 switches to open loop)")
	dur := flag.Duration("dur", 10*time.Second, "run duration (open loop)")
	write := flag.Float64("write", 0.1, "write fraction of the mix")
	pool := flag.Int("pool", 16, "distinct query-bound pool size (small: high duplicate rate)")
	sel := flag.Float64("sel", 0.01, "query selectivity as a fraction of the key domain")
	ttl := flag.Duration("ttl", 0, "per-request TTL (0: none)")
	seed := flag.Uint64("seed", 1, "workload seed")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	rep, err := run(*addr, *conns, *n, *rate, *dur, *write, *pool, *sel, *ttl, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptixload: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		json.NewEncoder(os.Stdout).Encode(rep)
		return
	}
	fmt.Print(rep)
}

// Report is the load run's result document.
type Report struct {
	// Loop names the discipline: "closed" or "open".
	Loop string `json:"loop"`
	// Ops, Errors, and Rejected count completed operations, transport
	// errors, and admission rejects (StatusOverloaded).
	Ops      int64 `json:"ops"`
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
	// Elapsed is the wall-clock run time in seconds; QPS is
	// Ops/Elapsed (successful completions only).
	Elapsed float64 `json:"elapsed_s"`
	QPS     float64 `json:"qps"`
	// P50/P90/P99/Max are completion-latency quantiles in microseconds
	// (successful operations only).
	P50 int64 `json:"p50_us"`
	P90 int64 `json:"p90_us"`
	P99 int64 `json:"p99_us"`
	Max int64 `json:"max_us"`
	// RejectP99 is the 99th-percentile latency of rejected requests in
	// microseconds — fast-reject admission control keeps this far below
	// the served-path latency.
	RejectP99 int64 `json:"reject_p99_us"`
}

// String renders the human-readable report.
func (r Report) String() string {
	s := fmt.Sprintf("%s loop: %d ops in %.2fs = %.0f qps (%d rejected, %d errors)\n",
		r.Loop, r.Ops, r.Elapsed, r.QPS, r.Rejected, r.Errors)
	s += fmt.Sprintf("latency: p50 %dus  p90 %dus  p99 %dus  max %dus\n", r.P50, r.P90, r.P99, r.Max)
	if r.Rejected > 0 {
		s += fmt.Sprintf("rejects: p99 %dus\n", r.RejectP99)
	}
	return s
}

// mix issues one operation drawn from the deterministic mix and
// reports its outcome.
type mix struct {
	c     *serve.Client
	r     *workload.RNG
	pool  []workload.Query
	dom   int64
	write float64
	ttl   time.Duration
}

// sharedPool builds the bound pool every connection draws from: the
// pool seed is the BASE seed, not the per-connection one, so
// concurrent connections issue exact-duplicate bounds — the case the
// server's batch scheduler coalesces.
func sharedPool(dom int64, pool int, sel float64, seed uint64) []workload.Query {
	gen := workload.NewUniform(workload.Count, dom, sel, seed)
	qs := make([]workload.Query, pool)
	for i := range qs {
		qs[i] = gen.Next()
		if i%2 == 1 {
			qs[i].Kind = workload.Sum
		}
	}
	return qs
}

func newMix(c *serve.Client, qs []workload.Query, dom int64, write float64, ttl time.Duration, seed uint64) *mix {
	return &mix{
		c: c, r: workload.NewRNG(seed + 99), pool: qs,
		dom: dom, write: write, ttl: ttl,
	}
}

// step runs one operation; it reports (rejected, error).
func (m *mix) step() (bool, error) {
	ctx := context.Background()
	if m.ttl > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.ttl)
		defer cancel()
	}
	if float64(m.r.Intn(1000))/1000 < m.write {
		var err error
		if m.r.Intn(2) == 0 {
			err = m.c.Insert(ctx, m.r.Int64n(m.dom))
		} else {
			_, err = m.c.Delete(ctx, m.r.Int64n(m.dom))
		}
		return classify(err)
	}
	q := m.pool[m.r.Intn(len(m.pool))]
	var err error
	if q.Kind == workload.Count {
		_, err = m.c.Count(ctx, q.Lo, q.Hi)
	} else {
		_, err = m.c.Sum(ctx, q.Lo, q.Hi)
	}
	return classify(err)
}

func classify(err error) (rejected bool, fatal error) {
	if err == nil {
		return false, nil
	}
	if err == serve.ErrOverloaded {
		return true, nil
	}
	return false, err
}

func run(addr string, conns, n int, rate float64, dur time.Duration,
	write float64, pool int, sel float64, ttl time.Duration, seed uint64) (Report, error) {
	probe, err := serve.Dial(addr)
	if err != nil {
		return Report{}, err
	}
	rows, _, err := probe.Stats(context.Background())
	probe.Close()
	if err != nil {
		return Report{}, err
	}
	dom := rows
	if dom < 2 {
		dom = 2
	}

	lat := &metrics.Histogram{}
	rej := &metrics.Histogram{}
	var ops, rejected, errs atomic.Int64

	qs := sharedPool(dom, pool, sel, seed)
	mixes := make([]*mix, conns)
	for i := range mixes {
		c, err := serve.Dial(addr)
		if err != nil {
			return Report{}, err
		}
		defer c.Close()
		mixes[i] = newMix(c, qs, dom, write, ttl, seed+uint64(i))
	}

	record := func(m *mix) {
		t0 := time.Now()
		r, err := m.step()
		d := time.Since(t0).Microseconds()
		switch {
		case err != nil:
			errs.Add(1)
		case r:
			rejected.Add(1)
			rej.Record(d)
		default:
			ops.Add(1)
			lat.Record(d)
		}
	}

	start := time.Now()
	loop := "closed"
	if rate > 0 {
		loop = "open"
		// Open loop: dispatch on schedule round-robin over the
		// connections; each dispatch runs on its own goroutine so a
		// slow completion never holds back the arrival process.
		var wg sync.WaitGroup
		interval := time.Duration(float64(time.Second) / rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		deadline := time.After(dur)
		i := 0
	openLoop:
		for {
			select {
			case <-deadline:
				break openLoop
			case <-tick.C:
				m := mixes[i%conns]
				i++
				wg.Add(1)
				go func() {
					defer wg.Done()
					record(m)
				}()
			}
		}
		wg.Wait()
	} else {
		// Closed loop: conns workers, one outstanding request each.
		var wg sync.WaitGroup
		per := n / conns
		for i := 0; i < conns; i++ {
			wg.Add(1)
			go func(m *mix) {
				defer wg.Done()
				for j := 0; j < per; j++ {
					record(m)
				}
			}(mixes[i])
		}
		wg.Wait()
	}
	elapsed := time.Since(start).Seconds()

	ls := lat.Snapshot()
	rs := rej.Snapshot()
	rep := Report{
		Loop:      loop,
		Ops:       ops.Load(),
		Errors:    errs.Load(),
		Rejected:  rejected.Load(),
		Elapsed:   elapsed,
		P50:       ls.Quantile(0.50),
		P90:       ls.Quantile(0.90),
		P99:       ls.Quantile(0.99),
		Max:       ls.Quantile(1.0),
		RejectP99: rs.Quantile(0.99),
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Ops) / elapsed
	}
	return rep, nil
}
