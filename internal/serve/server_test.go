package serve

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// newTestServer builds a 4-shard cracked column with an active ingest
// coordinator behind a server on a loopback listener, returning the
// server and a cleanup.
func newTestServer(t *testing.T, rows int, o Options) (*Server, *workload.Dataset) {
	t.Helper()
	d := workload.NewUniqueUniform(rows, 7)
	col := shard.New(d.Values, shard.Options{
		Shards: 4, Seed: 3,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	g := ingest.New(col, ingest.Options{
		ApplyThreshold: 256, MinShardRows: 512, CheckEvery: 128,
	})
	g.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Backend{Col: col, Ing: g}, ln, o)
	t.Cleanup(func() {
		s.Close()
		g.Close()
	})
	return s, d
}

func dialT(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWireBasicOps(t *testing.T) {
	const rows = 1 << 12
	s, d := newTestServer(t, rows, Options{})
	c := dialT(t, s)
	ctx := context.Background()

	if n, err := c.Count(ctx, 100, 200); err != nil || n != d.TrueCount(100, 200) {
		t.Fatalf("Count = %d, %v; want %d", n, err, d.TrueCount(100, 200))
	}
	if v, err := c.Sum(ctx, 100, 200); err != nil || v != d.TrueSum(100, 200) {
		t.Fatalf("Sum = %d, %v; want %d", v, err, d.TrueSum(100, 200))
	}
	if err := c.Insert(ctx, 150); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if n, err := c.Count(ctx, 100, 200); err != nil || n != d.TrueCount(100, 200)+1 {
		t.Fatalf("Count after insert = %d, %v; want %d", n, err, d.TrueCount(100, 200)+1)
	}
	if ok, err := c.Delete(ctx, 150); err != nil || !ok {
		t.Fatalf("Delete(150) = %v, %v; want found", ok, err)
	}
	if ok, err := c.Delete(ctx, int64(rows)+99); err != nil || ok {
		t.Fatalf("Delete(absent) = %v, %v; want not found", ok, err)
	}
	nrows, shards, err := c.Stats(ctx)
	if err != nil || nrows != int64(rows) || shards < 1 {
		t.Fatalf("Stats = %d rows, %d shards, %v; want %d rows", nrows, shards, err, rows)
	}
	st := s.Stats()
	if st.Requests < 7 || st.Served < 7 {
		t.Fatalf("counters did not move: %+v", st)
	}
}

func TestBatchCoalesce(t *testing.T) {
	const rows = 1 << 12
	// A long window guarantees concurrently-issued duplicates land in
	// one dispatch.
	s, d := newTestServer(t, rows, Options{Window: 20 * time.Millisecond})
	c := dialT(t, s)
	want := d.TrueCount(500, 900)

	const N = 32
	var wg sync.WaitGroup
	errs := make([]error, N)
	vals := make([]int64, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = c.Count(context.Background(), 500, 900)
		}(i)
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		if errs[i] != nil || vals[i] != want {
			t.Fatalf("waiter %d: got %d, %v; want %d", i, vals[i], errs[i], want)
		}
	}
	st := s.Stats()
	if st.Coalesced == 0 {
		t.Fatalf("no coalescing across %d identical concurrent queries: %+v", N, st)
	}
	if st.Batches >= st.Batched {
		t.Fatalf("batching had no effect: %d batches for %d batched requests", st.Batches, st.Batched)
	}
	if st.CoalesceRate <= 0 {
		t.Fatalf("coalesce rate not computed: %+v", st)
	}
}

func TestAdmissionFastReject(t *testing.T) {
	// Budget of 1 with a long window: the first query parks in the
	// batch; the second must be rejected immediately — no queueing
	// behind the window.
	s, _ := newTestServer(t, 1<<10, Options{
		Window:      50 * time.Millisecond,
		MaxInFlight: 1,
		ConnQuota:   8,
	})
	c := dialT(t, s)

	first := make(chan error, 1)
	go func() {
		_, err := c.Count(context.Background(), 0, 100)
		first <- err
	}()
	// Wait for the first request to be admitted.
	for i := 0; s.Stats().InFlight == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	t0 := time.Now()
	r, err := c.Do(context.Background(), Request{Op: OpCount, Lo: 0, Hi: 100})
	rtt := time.Since(t0)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if r.Status != StatusOverloaded {
		t.Fatalf("over-budget status = %s, want overloaded", r.Status)
	}
	// The reject must not have waited out the 50ms batching window.
	if rtt >= 25*time.Millisecond {
		t.Fatalf("reject took %v; queued behind the batch window?", rtt)
	}
	if s.Stats().Rejected == 0 {
		t.Fatal("reject counter did not move")
	}
	if err := <-first; err != nil {
		t.Fatalf("first (admitted) request failed: %v", err)
	}
}

func TestConnQuotaReject(t *testing.T) {
	s, _ := newTestServer(t, 1<<10, Options{
		Window:      50 * time.Millisecond,
		MaxInFlight: 1024,
		ConnQuota:   1,
	})
	c := dialT(t, s)
	go c.Count(context.Background(), 0, 100)
	for i := 0; s.Stats().InFlight == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	r, err := c.Do(context.Background(), Request{Op: OpCount, Lo: 0, Hi: 100})
	if err != nil || r.Status != StatusOverloaded {
		t.Fatalf("over-quota: status %s, err %v; want overloaded", r.Status, err)
	}
	// A second connection has its own quota and must get through.
	c2 := dialT(t, s)
	if _, err := c2.Count(context.Background(), 0, 100); err != nil {
		t.Fatalf("fresh connection rejected: %v", err)
	}
}

func TestTTLExpiryAtDispatch(t *testing.T) {
	// TTL far shorter than the window: by dispatch time the request is
	// dead and must get StatusDeadline without touching the engine.
	s, _ := newTestServer(t, 1<<10, Options{Window: 30 * time.Millisecond})
	c := dialT(t, s)
	r, err := c.Do(context.Background(), Request{Op: OpCount, TTLus: 50, Lo: 0, Hi: 100})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if r.Status != StatusDeadline {
		t.Fatalf("expired-in-window status = %s, want deadline", r.Status)
	}
}

func TestBadOpRejected(t *testing.T) {
	s, _ := newTestServer(t, 1<<10, Options{})
	c := dialT(t, s)
	r, err := c.Do(context.Background(), Request{Op: 99, Lo: 1})
	if err != nil || r.Status != StatusBadRequest {
		t.Fatalf("unknown op: status %s, err %v; want bad-request", r.Status, err)
	}
}

func TestDrainGraceful(t *testing.T) {
	s, d := newTestServer(t, 1<<12, Options{Window: 10 * time.Millisecond})
	c := dialT(t, s)

	// Park a request in the batching window, then drain: the request
	// must still be answered (flush), and drain must return clean.
	res := make(chan error, 1)
	go func() {
		n, err := c.Count(context.Background(), 10, 500)
		if err == nil && n != d.TrueCount(10, 500) {
			err = errors.New("wrong count through drain flush")
		}
		res <- err
	}()
	for i := 0; s.Stats().InFlight == 0; i++ {
		if i > 1000 {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-res; err != nil {
		t.Fatalf("in-flight request through drain: %v", err)
	}
	if !s.Stats().Draining {
		t.Fatal("Draining flag not set")
	}
	// New connections must be refused after drain.
	if _, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

func TestSlowLorisPartialFrameTimesOut(t *testing.T) {
	s, _ := newTestServer(t, 1<<10, Options{FrameTimeout: 100 * time.Millisecond})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Send half a frame and stall: the server must cut the connection
	// once FrameTimeout elapses, not hold the goroutine forever.
	frame := AppendRequestFrame(nil, Request{ID: 1, Op: OpCount, Lo: 0, Hi: 10})
	if _, err := nc.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	t0 := time.Now()
	_, err = nc.Read(buf)
	if err == nil {
		t.Fatal("server replied to half a frame")
	}
	if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatalf("server did not close the stalled connection within %v", 5*time.Second)
	}
	if waited := time.Since(t0); waited < 50*time.Millisecond {
		t.Logf("connection closed after %v (frame already rejected)", waited)
	}

	// An idle connection with NO partial frame must NOT be cut: only
	// started frames are on the clock.
	nc2, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	time.Sleep(250 * time.Millisecond) // > FrameTimeout, zero bytes sent
	full := AppendRequestFrame(nil, Request{ID: 2, Op: OpStats})
	if _, err := nc2.Write(full); err != nil {
		t.Fatalf("idle connection was cut: %v", err)
	}
	p, err := ReadFrame(bufio.NewReader(nc2), nil)
	if err != nil {
		t.Fatalf("idle-then-request got no answer: %v", err)
	}
	r, err := DecodeResponse(p)
	if err != nil || r.ID != 2 || r.Status != StatusOK {
		t.Fatalf("idle-then-request response %+v, %v", r, err)
	}
}
