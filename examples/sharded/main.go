// Sharded parallel adaptive indexing: multi-core scaling.
//
// The paper's concurrency control lets many clients refine ONE cracked
// column safely, but that column is still a single latch domain. With
// the unified API, WithShards(P) range-partitions the column into P
// independently-latched shards (internal/shard); this example drives
// the same concurrent workload at increasing shard counts: total time
// drops as shards recruit more cores, while every configuration
// returns the identical checksum.
//
// Run: go run ./examples/sharded
package main

import (
	"fmt"
	"runtime"
	"time"

	"adaptix"
)

func main() {
	const (
		n       = 1 << 21
		queries = 2048
		clients = 16
	)
	data := adaptix.NewUniqueDataset(n, 42)
	qs := adaptix.UniformQueries(adaptix.SumQuery, data.Domain, 0.001, 7, queries)

	fmt.Printf("== sharded cracking: %d sum queries, %d clients, %d rows, GOMAXPROCS=%d ==\n",
		queries, clients, n, runtime.GOMAXPROCS(0))

	var baseline int64
	var last *adaptix.Index
	for _, p := range []int{1, 2, 4, 8} {
		ix, err := adaptix.New(data.Values,
			adaptix.WithShards(p), adaptix.WithSeed(5),
			adaptix.WithCrackOptions(adaptix.CrackOptions{Latching: adaptix.LatchPiece}),
		)
		if err != nil {
			panic(err)
		}
		run := adaptix.Run(ix, qs, clients)
		mark := " "
		if p == 1 {
			baseline = run.Checksum
		} else if run.Checksum == baseline {
			mark = "="
		}
		fmt.Printf("sharded P=%-4d %10v   %8.0f q/s   checksum %d %s\n",
			p, run.Elapsed.Round(time.Millisecond), run.Throughput(), run.Checksum, mark)
		if last != nil {
			last.Close()
		}
		last = ix
	}
	defer last.Close()

	fmt.Println("\n== per-shard refinement state after the P=8 run ==")
	fmt.Printf("%-6s %12s %8s %8s %8s %10s %6s\n",
		"shard", "range lo", "rows", "pieces", "cracks", "conflicts", "depth")
	for _, st := range last.Stats().Shards {
		lo := "-inf"
		if st.Shard > 0 {
			lo = fmt.Sprint(st.LoVal)
		}
		fmt.Printf("%-6d %12s %8d %8d %8d %10d %6d\n",
			st.Shard, lo, st.Rows, st.Pieces, st.Cracks, st.Conflicts, st.Depth)
	}
	if err := last.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("\nall shard invariants hold; '=' marks checksums equal to the P=1 baseline")
}
