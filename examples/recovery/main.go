// Crash recovery: refinement knowledge survives process death.
//
// The paper's §4.2 observes that adaptive indexing needs only tiny
// structural log records — crack boundaries, shard cuts — because
// index contents are re-creatable from the base data, and that
// replaying them preserves "the side effects of earlier queries". This
// example runs the full durable lifecycle through the unified handle:
// adaptix.Open a store, crack it under a query load, checkpoint, then
// simulate a crash (the store is abandoned without Close, with a torn
// record appended to the log tail). Reopening recovers the shard map
// and every checkpointed crack boundary, so the first query after the
// crash pays steady-state cost; a cold store built from the same data
// pays the full cold-start partition passes instead.
//
// Run: go run ./examples/recovery
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"adaptix"
)

var ctx = context.Background()

func main() {
	const n = 1 << 20
	dir, err := os.MkdirTemp("", "adaptix-recovery-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	data := adaptix.NewUniqueDataset(n, 42)
	shape := []adaptix.Option{
		adaptix.WithShards(4), adaptix.WithSeed(5),
		adaptix.WithCrackOptions(adaptix.CrackOptions{Latching: adaptix.LatchPiece}),
	}
	ix, err := adaptix.Open(dir, append(shape, adaptix.WithValues(data.Values))...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("store created in %s\n", dir)

	// Crack under load: 400 range queries refine every shard.
	queries := adaptix.UniformQueries(adaptix.CountQuery, int64(n), 0.01, 7, 400)
	for _, q := range queries {
		if _, err := ix.Count(ctx, q.Lo, q.Hi); err != nil {
			panic(err)
		}
	}
	fmt.Printf("after load:   %6d cracks, %4d boundaries, %d shards\n",
		cracks(ix), boundaries(ix), ix.NumShards())

	// Durable point, then crash: no Close, and the log tail is torn
	// the way a power cut mid-write would leave it.
	ix.Checkpoint()
	warm := queryCost(ix, 123456, 133456)
	tearTail(dir)
	fmt.Printf("checkpoint taken; process \"dies\" with a torn log tail\n")

	// Reopen: the catalog is rebuilt from the checkpoint + tail and
	// every shard is pre-cracked to its checkpointed boundaries.
	//
	// The abandoned store above is never touched again — a store
	// directory has one owner at a time, and this in-process crash
	// simulation honours that by going fully idle (no writes, no
	// checkpoints) before the reopen; a real crash releases the
	// directory outright.
	re, err := adaptix.Open(dir, shape...)
	if err != nil {
		panic(err)
	}
	defer re.Close()
	fmt.Printf("after reopen: %6s cracks, %4d boundaries, %d shards (recovered=%v)\n",
		"-", boundaries(re), re.NumShards(), re.Recovered())
	bd := re.RecoveryStats()
	fmt.Printf("recovery breakdown: checkpoint-load=%v wal-scan=%v crack-replay=%v\n",
		bd.CheckpointLoad, bd.WALScan, bd.Replay)

	recovered := queryCost(re, 123456, 133456)
	cold, err := adaptix.Open(filepath.Join(dir, "cold"),
		append(shape, adaptix.WithValues(data.Values))...)
	if err != nil {
		panic(err)
	}
	defer cold.Close()
	coldCost := queryCost(cold, 123456, 133456)

	fmt.Printf("\nfirst-query refinement time for Count[123456,133456):\n")
	fmt.Printf("  warm pre-crash store:  %v\n", warm)
	fmt.Printf("  recovered store:       %v\n", recovered)
	fmt.Printf("  cold store (no WAL):   %v  (full partition passes)\n", coldCost)
	if recovered < coldCost {
		fmt.Println("refinement knowledge survived the crash")
	}
}

// cracks sums the physical crack actions across shards.
func cracks(ix *adaptix.Index) int64 {
	var t int64
	for _, s := range ix.Stats().Shards {
		t += s.Cracks
	}
	return t
}

// boundaries counts crack boundaries across shards.
func boundaries(ix *adaptix.Index) int {
	t := 0
	for _, set := range ix.CrackBoundaries() {
		t += len(set)
	}
	return t
}

// queryCost runs one count query and returns the time it spent
// physically refining the index (a cold shard pays a full partition
// pass here; a warm or recovered one only trims small pieces).
func queryCost(ix *adaptix.Index, lo, hi int64) time.Duration {
	res, err := ix.Count(ctx, lo, hi)
	if err != nil {
		panic(err)
	}
	return res.Refine
}

// tearTail appends a partial garbage frame to the newest log segment.
func tearTail(dir string) {
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		return
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	f.Write([]byte{0x42, 0x00, 0x00, 0x00, 0xba, 0xad})
	f.Close()
}
