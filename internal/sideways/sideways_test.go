package sideways

import (
	"sync"
	"testing"

	"adaptix/internal/workload"
)

func twoColumns(n int) (head, tail []int64, ref func(lo, hi int64) int64) {
	h := workload.NewUniqueUniform(n, 1).Values
	t := workload.NewUniqueUniform(n, 2).Values
	return h, t, func(lo, hi int64) int64 {
		var s int64
		for i, v := range h {
			if v >= lo && v < hi {
				s += t[i]
			}
		}
		return s
	}
}

func TestSumTargetMatchesBruteForce(t *testing.T) {
	head, tail, ref := twoColumns(8000)
	m := NewMap(head, tail, Options{})
	qs := workload.Fixed(workload.NewUniform(workload.Sum, 8000, 0.05, 7), 50)
	for i, q := range qs {
		got, _ := m.SumTargetWhere(q.Lo, q.Hi)
		if want := ref(q.Lo, q.Hi); got != want {
			t.Fatalf("query %d: %d, want %d", i, got, want)
		}
	}
	if m.Cracks() == 0 || m.Boundaries() == 0 {
		t.Fatal("map did not self-organize")
	}
}

func TestCountWhere(t *testing.T) {
	head, tail, _ := twoColumns(5000)
	m := NewMap(head, tail, Options{})
	if n, _ := m.CountWhere(1000, 3000); n != 2000 {
		t.Fatalf("CountWhere = %d", n)
	}
	// Repeat: exact-match boundaries, no further cracks.
	c := m.Cracks()
	if n, _ := m.CountWhere(1000, 3000); n != 2000 {
		t.Fatal("repeat wrong")
	}
	if m.Cracks() != c {
		t.Fatal("repeat re-cracked")
	}
}

func TestEdgeRanges(t *testing.T) {
	head, tail, ref := twoColumns(1000)
	m := NewMap(head, tail, Options{})
	for _, r := range [][2]int64{{0, 1000}, {-10, 2000}, {500, 500}, {700, 300}, {999, 1000}} {
		got, _ := m.SumTargetWhere(r[0], r[1])
		if want := ref(r[0], r[1]); got != want {
			t.Fatalf("Sum(%d,%d) = %d, want %d", r[0], r[1], got, want)
		}
	}
}

func TestLazyInitialization(t *testing.T) {
	head, tail, _ := twoColumns(1000)
	m := NewMap(head, tail, Options{})
	if m.Initialized() {
		t.Fatal("initialized before first query")
	}
	_, st := m.SumTargetWhere(10, 20)
	if !m.Initialized() || st.Crack == 0 {
		t.Fatal("first query should materialize and charge the map")
	}
}

func TestConcurrentClients(t *testing.T) {
	head, tail, ref := twoColumns(30000)
	for _, policy := range []ConflictPolicy{Wait, Skip} {
		m := NewMap(head, tail, Options{OnConflict: policy})
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				gen := workload.NewUniform(workload.Sum, 30000, 0.01, uint64(c*5+1))
				for i := 0; i < 40; i++ {
					q := gen.Next()
					if got, _ := m.SumTargetWhere(q.Lo, q.Hi); got != ref(q.Lo, q.Hi) {
						errs <- "sum mismatch"
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("policy %v: %s", policy, e)
		}
	}
}

func TestAdaptiveConvergence(t *testing.T) {
	head, tail, _ := twoColumns(100000)
	m := NewMap(head, tail, Options{})
	var first, last int64
	qs := workload.Fixed(workload.NewUniform(workload.Sum, 100000, 0.01, 9), 128)
	for i, q := range qs {
		_, st := m.SumTargetWhere(q.Lo, q.Hi)
		if i < 32 {
			first += int64(st.Crack)
		} else if i >= 96 {
			last += int64(st.Crack)
		}
	}
	if last*2 >= first {
		t.Fatalf("no convergence: first %d, last %d", first, last)
	}
}

func TestRegistry(t *testing.T) {
	head, tail, _ := twoColumns(100)
	r := NewRegistry()
	a := r.GetOrCreate("A", "B", head, tail, Options{})
	b := r.GetOrCreate("A", "B", nil, nil, Options{})
	if a != b || r.Len() != 1 {
		t.Fatal("registry duplicate")
	}
	r.GetOrCreate("A", "C", head, tail, Options{})
	if r.Len() != 2 {
		t.Fatal("second map not registered")
	}
}

func TestMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for misaligned columns")
		}
	}()
	NewMap([]int64{1, 2}, []int64{1}, Options{})
}
