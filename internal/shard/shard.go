// Package shard implements a range-partitioned, sharded adaptive
// index: the base column is split into P contiguous value ranges, each
// backed by its own cracked-column index (internal/crackindex) with
// independent piece latches, and range queries fan out to the
// overlapping shards in parallel.
//
// The paper's concurrency-control techniques let many clients refine
// one cracked column safely, but that column remains a single latch
// domain and a single memory region; on a multi-core machine the
// structure latch and the hot head pieces serialize early refinement
// ("Main Memory Adaptive Indexing for Multi-core Systems", Alvarez et
// al., 2014, makes the same observation). Range partitioning removes
// the shared bottleneck at its root: queries whose ranges fall into
// different shards never touch a common latch, and a single broad
// query recruits several cores through the fan-out executor
// (executor.go). Within each shard the full per-piece protocol of the
// paper still applies, so per-shard refinement stays robust under
// skewed ranges (compare "Stochastic Database Cracking", Halim et al.,
// 2012 — stochastic cracking can be enabled per shard through
// Options.Index).
//
// Shard boundaries are chosen from a seeded sample of the input
// (quantile cuts), so shards are balanced for any input distribution
// without a full sort. Boundaries are fixed for the lifetime of the
// Column; rebalancing and update routing are future work (see ROADMAP
// "Open items").
package shard

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"

	"adaptix/internal/crackindex"
	"adaptix/internal/workload"
)

// Sentinel value bounds of the first and last shards.
const (
	minKey = math.MinInt64
	maxKey = math.MaxInt64
)

// Options configures a sharded column.
type Options struct {
	// Shards is the number of range partitions P. Default
	// runtime.GOMAXPROCS(0). Duplicate quantile cuts (heavily skewed or
	// tiny inputs) can reduce the effective count below P.
	Shards int
	// Workers bounds the number of fan-out sub-queries executing
	// concurrently across ALL queries on this column (the caller's own
	// goroutine runs one sub-query per query without a slot, so client
	// concurrency itself is never throttled). Default Shards.
	Workers int
	// SampleSize is the number of seeded sample points used to choose
	// the shard boundaries. Default 1024.
	SampleSize int
	// Seed drives the boundary sample. Default 1.
	Seed uint64
	// Index configures every per-shard cracked index (latching mode,
	// layout, scheduling, conflict policy, stochastic cracking, ...).
	Index crackindex.Options
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Workers <= 0 {
		o.Workers = o.Shards
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 1024
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// part is one shard: a contiguous value range [loVal, hiVal) backed by
// its own cracked index. All fields are immutable after construction;
// concurrency control lives inside ix.
type part struct {
	id           int
	loVal, hiVal int64 // assigned range [loVal, hiVal); sentinels at the ends
	minVal       int64 // smallest value actually present (rows > 0)
	maxVal       int64 // largest value actually present (rows > 0)
	rows         int
	total        int64 // precomputed sum of all values in the shard
	ix           *crackindex.Index
}

// Column is a range-partitioned adaptive index over one column.
// It is safe for concurrent use.
type Column struct {
	opts   Options
	bounds []int64 // len(shards)-1 strictly increasing cut values
	shards []*part
	sem    chan struct{} // bounds extra fan-out workers (see Options.Workers)
}

// New builds a sharded column over values. Boundary selection samples
// the input (O(SampleSize log SampleSize)) and partitioning copies each
// value into its shard's slice (O(n log P)); the per-shard cracker
// arrays themselves are built lazily by the first query touching each
// shard, preserving the paper's "index initialization is a query side
// effect" discipline per shard.
func New(values []int64, opts Options) *Column {
	opts = opts.withDefaults()
	bounds := chooseBounds(values, opts.Shards, opts.SampleSize, opts.Seed)
	n := len(bounds) + 1

	// Two passes: exact per-shard counts, then fill.
	route := func(v int64) int {
		return sort.Search(len(bounds), func(i int) bool { return bounds[i] > v })
	}
	counts := make([]int, n)
	for _, v := range values {
		counts[route(v)]++
	}
	slices := make([][]int64, n)
	for i := range slices {
		slices[i] = make([]int64, 0, counts[i])
	}
	for _, v := range values {
		i := route(v)
		slices[i] = append(slices[i], v)
	}

	c := &Column{
		opts:   opts,
		bounds: bounds,
		shards: make([]*part, n),
		sem:    make(chan struct{}, opts.Workers),
	}
	for i := range c.shards {
		s := &part{id: i, loVal: minKey, hiVal: maxKey}
		if i > 0 {
			s.loVal = bounds[i-1]
		}
		if i < len(bounds) {
			s.hiVal = bounds[i]
		}
		s.rows = len(slices[i])
		if s.rows > 0 {
			s.minVal, s.maxVal = slices[i][0], slices[i][0]
			for _, v := range slices[i] {
				s.total += v
				if v < s.minVal {
					s.minVal = v
				}
				if v > s.maxVal {
					s.maxVal = v
				}
			}
		}
		s.ix = crackindex.New(slices[i], opts.Index)
		c.shards[i] = s
	}
	return c
}

// chooseBounds picks up to shards-1 strictly increasing cut values
// from a seeded sample of values (equi-depth quantiles of the sample).
// Duplicate quantiles — skewed data, tiny inputs — are dropped, so the
// effective shard count can be smaller than requested but every range
// is non-degenerate.
func chooseBounds(values []int64, shards, sampleSize int, seed uint64) []int64 {
	if shards <= 1 || len(values) == 0 {
		return nil
	}
	var sample []int64
	if len(values) <= sampleSize {
		sample = append([]int64(nil), values...)
	} else {
		r := workload.NewRNG(seed)
		sample = make([]int64, sampleSize)
		for i := range sample {
			sample[i] = values[r.Intn(len(values))]
		}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	cuts := make([]int64, 0, shards-1)
	for i := 1; i < shards; i++ {
		cut := sample[i*len(sample)/shards]
		// A cut at the sample minimum would leave the first shard
		// empty; duplicate cuts would leave middle shards empty.
		if cut > sample[0] && (len(cuts) == 0 || cut > cuts[len(cuts)-1]) {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}

// NumShards returns the effective number of shards (may be smaller
// than Options.Shards when quantile cuts collapsed on skewed input).
func (c *Column) NumShards() int { return len(c.shards) }

// Bounds returns a copy of the strictly increasing shard cut values;
// shard i holds values in [Bounds()[i-1], Bounds()[i]) with sentinels
// at the ends.
func (c *Column) Bounds() []int64 { return append([]int64(nil), c.bounds...) }

// Rows returns the total number of rows across all shards.
func (c *Column) Rows() int {
	n := 0
	for _, s := range c.shards {
		n += s.rows
	}
	return n
}

// Options returns the column configuration (with defaults applied).
func (c *Column) Options() Options { return c.opts }

// ShardStat is an observability snapshot of one shard's refinement
// state.
type ShardStat struct {
	// Shard is the shard's ordinal (0-based, in value order).
	Shard int
	// LoVal and HiVal are the assigned value range [LoVal, HiVal);
	// the first and last shards carry math.MinInt64 / math.MaxInt64
	// sentinels.
	LoVal, HiVal int64
	// Rows is the number of values stored in the shard.
	Rows int
	// Pieces is the current piece count of the shard's cracked index
	// (0 until the first query initializes it).
	Pieces int
	// Cracks counts the shard's physical reorganization actions.
	Cracks int64
	// Boundaries counts crack boundaries inserted into the shard's TOC.
	Boundaries int64
	// Conflicts counts latch acquisitions that blocked or failed.
	Conflicts int64
	// Skipped counts refinements forgone under conflict avoidance.
	Skipped int64
	// Depth is the refinement depth: the height of the binary
	// partitioning tree that would produce the current piece count
	// (ceil(log2(Pieces)); 0 for an unrefined shard).
	Depth int
}

// Snapshot returns a per-shard statistics snapshot, in shard order.
func (c *Column) Snapshot() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i, s := range c.shards {
		st := s.ix.Stats()
		pieces := s.ix.NumPieces()
		depth := 0
		if pieces > 1 {
			depth = bits.Len(uint(pieces - 1))
		}
		out[i] = ShardStat{
			Shard: i, LoVal: s.loVal, HiVal: s.hiVal, Rows: s.rows,
			Pieces:     pieces,
			Cracks:     st.Cracks.Load(),
			Boundaries: st.Boundaries.Load(),
			Conflicts:  st.Conflicts.Load(),
			Skipped:    st.Skipped.Load(),
			Depth:      depth,
		}
	}
	return out
}

// Validate checks the partitioning invariants and every shard's index
// invariants; it must be called while no queries are in flight.
func (c *Column) Validate() error {
	if len(c.shards) != len(c.bounds)+1 {
		return fmt.Errorf("shard: %d shards for %d bounds", len(c.shards), len(c.bounds))
	}
	for i := 1; i < len(c.bounds); i++ {
		if c.bounds[i] <= c.bounds[i-1] {
			return fmt.Errorf("shard: bounds not strictly increasing at %d", i)
		}
	}
	for i, s := range c.shards {
		if s.rows > 0 && (s.minVal < s.loVal || s.maxVal >= s.hiVal) {
			return fmt.Errorf("shard %d: data [%d,%d] outside assigned range [%d,%d)",
				i, s.minVal, s.maxVal, s.loVal, s.hiVal)
		}
		if err := s.ix.Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
