// Latchtrace: reproduce the Figure 8 latch timelines.
//
// Three queries Q1/Q2/Q3 — the paper's
//
//	Q1: SELECT SUM(A) FROM R WHERE A >= 70 AND A < 90
//	Q2: SELECT SUM(A) FROM R WHERE A >= 15 AND A < 30
//	Q3: SELECT SUM(A) FROM R WHERE A >= 40 AND A < 55
//
// arrive concurrently on a 100-value column. With COLUMN latches the
// whole column is write-latched per crack and read-latched per sum, so
// the queries serialize around cracking. With PIECE latches, after the
// first cracks create pieces, the queries crack and aggregate
// different pieces in parallel. The trace hook records every latch
// event; the query labels ride the context (adaptix.WithQueryTag).
//
// Run: go run ./examples/latchtrace
package main

import (
	"context"
	"fmt"
	"sync"

	"adaptix"
)

func run(mode adaptix.CrackOptions, label string) {
	data := adaptix.NewUniqueDataset(100, 3)

	var mu sync.Mutex
	var events []adaptix.TraceEvent
	mode.Tracer = func(e adaptix.TraceEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	ix, err := adaptix.New(data.Values,
		adaptix.WithShards(1), adaptix.WithCrackOptions(mode))
	if err != nil {
		panic(err)
	}
	defer ix.Close()

	queries := []struct {
		tag    string
		lo, hi int64
	}{
		{"Q1", 70, 90},
		{"Q2", 15, 30},
		{"Q3", 40, 55},
	}
	var wg sync.WaitGroup
	results := make([]int64, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, tag string, lo, hi int64) {
			defer wg.Done()
			ctx := adaptix.WithQueryTag(context.Background(), tag)
			res, err := ix.Sum(ctx, lo, hi)
			if err != nil {
				panic(err)
			}
			results[i] = res.Value
		}(i, q.tag, q.lo, q.hi)
	}
	wg.Wait()

	fmt.Printf("=== %s ===\n", label)
	for i, q := range queries {
		want := (q.lo + q.hi - 1) * (q.hi - q.lo) / 2
		status := "ok"
		if results[i] != want {
			status = "WRONG"
		}
		fmt.Printf("%s: sum[%d,%d) = %d (%s)\n", q.tag, q.lo, q.hi, results[i], status)
	}
	fmt.Printf("latch timeline (%d events):\n", len(events))
	for _, e := range events {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println()
}

func main() {
	run(adaptix.CrackOptions{Latching: adaptix.LatchColumn}, "column latches (Figure 8, top)")
	run(adaptix.CrackOptions{Latching: adaptix.LatchPiece}, "piece latches (Figure 8, middle)")
}
