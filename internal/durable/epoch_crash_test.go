package durable

import (
	"sort"
	"testing"

	"adaptix/internal/ingest"
	"adaptix/internal/wal"
	"adaptix/internal/workload"
)

// TestCrashBetweenEpochSealAndApply is the half-applied-epoch crash
// test: the process dies after the EpochSeal transaction committed but
// before the EpochApply one — the exact window the two-phase group-
// apply opens. Recovery must discard the half-applied epoch (the
// snapshot is cut at the checkpoint's watermark, so the sealed epoch's
// merge never becomes visible) and, with LogWrites on, replay its
// writes from the logical tail: the reopened store answers exactly.
func TestCrashBetweenEpochSealAndApply(t *testing.T) {
	dir := t.TempDir()
	d := workload.NewUniqueUniform(1<<12, 19)
	opts := testOptions(d.Values)
	opts.LogWrites = true
	// Structurally quiet: the test drives every structural step itself.
	opts.CheckpointEvery = 1 << 30
	opts.Ingest = ingest.Options{ApplyThreshold: 1 << 30, MinShardRows: 1 << 30}

	c, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Tail writes past the initial checkpoint: inserts of fresh values
	// and deletes of initial ones.
	for i := 0; i < 200; i++ {
		if err := c.Insert(qctx, d.Domain+int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := c.DeleteValue(qctx, int64(i*4)); err != nil {
			t.Fatal(err)
		}
	}
	expected := append(brute(nil), c.Column().Values()...)
	sort.Slice(expected, func(i, j int) bool { return expected[i] < expected[j] })

	// First phase of the group-apply: seal the epoch in memory...
	se, ok := c.Column().SealEpoch(0)
	if !ok {
		t.Fatal("SealEpoch(0) found nothing to seal")
	}
	// ...crash before the merge. The in-memory column dies with the
	// process; only the log survives.
	if err := c.sink.Close(); err != nil {
		t.Fatal(err)
	}

	// The coordinator's EpochSeal transaction had already committed:
	// re-create it in the surviving log, with no EpochApply after it.
	sink2, err := wal.NewFileSink(dir, wal.SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	log2 := wal.New(sink2)
	for _, r := range []wal.Record{
		{Kind: wal.BeginSystem, Txn: 999, Object: "sharded"},
		{Kind: wal.EpochSeal, Txn: 999, Object: "sharded", A: int64(se.Shard), B: se.Epoch, C: int64(se.Inserts + se.Deletes)},
		{Kind: wal.CommitSystem, Txn: 999, Object: "sharded"},
	} {
		if _, err := log2.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must see the half-applied epoch for what it is.
	raw, err := wal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := wal.Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	if cat.AppliedEpoch["sharded"] >= se.Epoch {
		t.Fatalf("AppliedEpoch = %d: the never-committed merge became visible", cat.AppliedEpoch["sharded"])
	}
	found := false
	for _, id := range cat.SealedEpochs["sharded"] {
		if id == se.Epoch {
			found = true
		}
	}
	if !found {
		t.Fatalf("SealedEpochs = %v: committed seal of epoch %d lost", cat.SealedEpochs["sharded"], se.Epoch)
	}
	if len(cat.TailWrites["sharded"]) == 0 {
		t.Fatal("no tail writes recovered: LogWrites produced nothing to replay")
	}

	// Reopen: exact answers, the half-applied epoch neither lost nor
	// double-applied.
	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovered() {
		t.Fatal("reopen did not recover the existing store")
	}
	assertAgreesWithScan(t, re, expected, 2*d.Domain)
	if err := re.Column().Validate(); err != nil {
		t.Fatal(err)
	}
	// Epoch ids must stay monotonic across incarnations: the reopened
	// column's open epochs must sit beyond every id the old log
	// mentions, or stale segments surviving a failed truncation could
	// alias old records into the new namespace.
	for _, s := range re.Column().Snapshot() {
		if s.OpenEpoch <= se.Epoch {
			t.Errorf("shard %d: open epoch %d not advanced past recovered epoch %d",
				s.Shard, s.OpenEpoch, se.Epoch)
		}
	}
}

// TestTailReplayPairsMisorderedDeleteWithInsert: a delete's logical
// record can land in the log before the record of the insert whose
// instance it observed (the routed write and its record are not
// appended atomically). Replay must pair the two — net zero — instead
// of dropping the delete and resurrecting the insert.
func TestTailReplayPairsMisorderedDeleteWithInsert(t *testing.T) {
	dir := t.TempDir()
	d := workload.NewUniqueUniform(1<<10, 29)
	fresh := d.Domain + 7 // never in the base values

	sink, err := wal.NewFileSink(dir, wal.SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	log := wal.New(sink)
	for _, r := range []wal.Record{
		// Pre-crash truth: insert(fresh) then delete(fresh), records
		// landing in the log in the opposite order.
		{Kind: wal.LogicalWrite, Object: "sharded", A: fresh, B: 5, C: 1},
		{Kind: wal.LogicalWrite, Object: "sharded", A: fresh, B: 5, C: 0},
		// And a plain surviving tail insert.
		{Kind: wal.LogicalWrite, Object: "sharded", A: fresh + 1, B: 5, C: 0},
	} {
		if _, err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	opts := testOptions(d.Values)
	opts.LogWrites = true
	opts.Ingest = ingest.Options{ApplyThreshold: 1 << 30, MinShardRows: 1 << 30}
	c, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n, _, _ := c.Count(qctx, fresh, fresh+1); n != 0 {
		t.Errorf("count(fresh) = %d, want 0: misordered delete/insert pair not cancelled", n)
	}
	if n, _, _ := c.Count(qctx, fresh+1, fresh+2); n != 1 {
		t.Errorf("count(fresh+1) = %d, want 1: surviving tail insert lost", n)
	}
	if err := c.Column().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLogWritesCloseTailDurabilityWindow: without LogWrites, routed
// writes since the last checkpoint are lost on a crash (the documented
// window); with LogWrites they replay. Both reopened stores must be
// internally consistent.
func TestLogWritesCloseTailDurabilityWindow(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 23)
	for _, logWrites := range []bool{false, true} {
		dir := t.TempDir()
		opts := testOptions(d.Values)
		opts.LogWrites = logWrites
		opts.CheckpointEvery = 1 << 30
		opts.Ingest = ingest.Options{ApplyThreshold: 1 << 30, MinShardRows: 1 << 30}
		c, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkpointed := append(brute(nil), c.Column().Values()...)
		for i := 0; i < 128; i++ {
			if err := c.Insert(qctx, d.Domain+int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		withTail := append(brute(nil), c.Column().Values()...)
		// Crash: no checkpoint, no clean close.
		if err := c.sink.Close(); err != nil {
			t.Fatal(err)
		}

		re, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := checkpointed
		if logWrites {
			want = withTail
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		assertAgreesWithScan(t, re, want, 2*d.Domain)
		re.Close()
	}
}
