// Package engine defines the common query-engine interface shared by
// the three approaches compared throughout the paper's §6 — plain
// scans, full indexing (sort once, then binary search), and adaptive
// indexing (database cracking) — plus adapters over the concrete
// implementations. The harness drives any Engine with the same
// deterministic query streams.
package engine

import (
	"context"
	"time"

	"adaptix/internal/crackindex"
)

// Result is the outcome of one query against an engine, with the cost
// breakdown the experiments plot (Figures 13 and 15).
type Result struct {
	// Value is the count or sum.
	Value int64
	// Wait is time spent blocked on latches.
	Wait time.Duration
	// Refine is time spent refining the index (cracking, sorting runs,
	// merging) as a side effect of the query.
	Refine time.Duration
	// Critical is the critical-path time of a fan-out execution — the
	// slowest per-shard sub-query — as opposed to Wait+Refine, which
	// sum total work across cores. Zero for single-domain engines.
	Critical time.Duration
	// Conflicts counts latch acquisitions that were not immediate.
	Conflicts int64
	// Epochs is the number of differential epoch files the answer's
	// snapshot read consulted (deepest per-shard chain; zero for
	// single-domain engines — see internal/epoch).
	Epochs int
	// Skipped reports that an optional refinement was forgone.
	Skipped bool
}

// Engine answers the paper's two query templates over one column.
// Implementations must be safe for concurrent use.
//
// Every query carries a context: cancellation before any work returns
// ctx.Err() with no refinement side effects, a deadline expiring while
// the query is parked on a latch unparks it promptly, and a query that
// returns a non-nil error returns no answer. context.Background()
// follows the uncancellable fast path throughout.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Count evaluates Q1: select count(*) where lo <= A < hi.
	Count(ctx context.Context, lo, hi int64) (Result, error)
	// Sum evaluates Q2: select sum(A) where lo <= A < hi.
	Sum(ctx context.Context, lo, hi int64) (Result, error)
}

// Crack adapts a cracked-column index to the Engine interface.
type Crack struct {
	adapter
	ix *crackindex.Index
}

// NewCrack wraps ix; name defaults to "crack".
func NewCrack(ix *crackindex.Index) *Crack {
	return &Crack{adapter: adapter{src: SourceFromIndex(ix), name: "crack"}, ix: ix}
}

// NewCrackNamed wraps ix with an explicit display name (used by the
// ablation benchmarks to distinguish configurations).
func NewCrackNamed(ix *crackindex.Index, name string) *Crack {
	return &Crack{adapter: adapter{src: SourceFromIndex(ix), name: name}, ix: ix}
}

// Index returns the wrapped cracked-column index.
func (c *Crack) Index() *crackindex.Index { return c.ix }

func fromOpStats(v int64, st crackindex.OpStats) Result {
	return Result{
		Value:     v,
		Wait:      st.Wait,
		Refine:    st.Crack,
		Critical:  st.Critical,
		Conflicts: st.Conflicts,
		Epochs:    st.Epochs,
		Skipped:   st.Skipped,
	}
}
