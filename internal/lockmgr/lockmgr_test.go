package lockmgr

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	// Spot-check the classic multi-granularity matrix.
	cases := []struct {
		a, b Mode
		want bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, SIX, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, SIX, false},
		{S, S, true}, {S, U, true}, {S, X, false},
		{SIX, IS, true}, {SIX, S, false},
		{U, S, true}, {U, U, false}, {U, X, false},
		{X, IS, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Fatalf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSupremum(t *testing.T) {
	cases := []struct {
		a, b, want Mode
	}{
		{S, IX, SIX}, {IX, S, SIX}, {IS, S, S}, {S, X, X},
		{U, S, U}, {U, IX, X}, {SIX, U, SIX}, {IS, IX, IX},
	}
	for _, c := range cases {
		if got := Supremum(c.a, c.b); got != c.want {
			t.Fatalf("Supremum(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Supremum must be symmetric and idempotent.
	for a := Mode(0); a < numModes; a++ {
		for b := Mode(0); b < numModes; b++ {
			if Supremum(a, b) != Supremum(b, a) {
				t.Fatalf("Supremum(%v,%v) asymmetric", a, b)
			}
		}
		if Supremum(a, a) != a {
			t.Fatalf("Supremum(%v,%v) != %v", a, a, a)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	if err := m.Lock(1, "R.A", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "R.A", S); err != nil {
		t.Fatal(err)
	}
	if !m.HasConflicting("R.A", X, 0) {
		t.Fatal("S holders should conflict with X")
	}
	if m.HasConflicting("R.A", S, 0) {
		t.Fatal("S holders should not conflict with S")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if m.HasConflicting("R.A", X, 0) {
		t.Fatal("conflicts remain after release")
	}
}

func TestExclusiveBlocksAndHandsOff(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, "r", X) }()
	select {
	case err := <-got:
		t.Fatalf("second X granted while first held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not granted after release")
	}
	m.ReleaseAll(2)
}

func TestFIFOFairnessNoStarvation(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", S); err != nil {
		t.Fatal(err)
	}
	// Writer queues first, then another reader: the reader must NOT
	// jump the queued writer (FIFO), preventing writer starvation.
	wGot := make(chan struct{})
	go func() {
		if err := m.Lock(2, "r", X); err == nil {
			close(wGot)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	rGot := make(chan struct{})
	go func() {
		if err := m.Lock(3, "r", S); err == nil {
			close(rGot)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-rGot:
		t.Fatal("reader jumped ahead of queued writer")
	default:
	}
	m.ReleaseAll(1)
	<-wGot // writer granted first
	m.ReleaseAll(2)
	<-rGot
	m.ReleaseAll(3)
}

func TestDeadlockDetected(t *testing.T) {
	m := New()
	if err := m.Lock(1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "b", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(1, "b", X) }() // 1 waits for 2
	time.Sleep(30 * time.Millisecond)
	// 2 requesting a closes the cycle: must be refused immediately.
	err := m.Lock(2, "a", X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	// Victim aborts; waiter 1 gets b.
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestConversionUpgrade(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", S); err != nil {
		t.Fatal(err)
	}
	// Solo S -> X upgrade succeeds immediately.
	if err := m.Lock(1, "r", X); err != nil {
		t.Fatal(err)
	}
	if m.HeldModes(1)["r"] != X {
		t.Fatalf("mode after upgrade = %v", m.HeldModes(1)["r"])
	}
	// Another reader must now block.
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, "r", S) }()
	select {
	case <-got:
		t.Fatal("S granted alongside X")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
}

func TestConversionDeadlock(t *testing.T) {
	// Two S holders both upgrading to X is the classic conversion
	// deadlock; the second must be refused.
	m := New()
	if err := m.Lock(1, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "r", S); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- m.Lock(1, "r", X) }()
	time.Sleep(30 * time.Millisecond)
	if err := m.Lock(2, "r", X); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected conversion deadlock, got %v", err)
	}
	m.ReleaseAll(2) // victim aborts
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestHierarchicalLocking(t *testing.T) {
	m := New()
	path := []string{"db", "db/R", "db/R/A", "db/R/A/key42"}
	if err := m.LockHierarchy(1, path, X); err != nil {
		t.Fatal(err)
	}
	held := m.HeldModes(1)
	if held["db"] != IX || held["db/R"] != IX || held["db/R/A"] != IX || held["db/R/A/key42"] != X {
		t.Fatalf("bad hierarchy modes: %v", held)
	}
	// A second txn can lock a sibling key (IX is compatible with IX).
	if err := m.LockHierarchy(2, []string{"db", "db/R", "db/R/A", "db/R/A/key7"}, X); err != nil {
		t.Fatal(err)
	}
	// But a table-level S lock must block behind the IX holders.
	got := make(chan error, 1)
	go func() { got <- m.Lock(3, "db/R", S) }()
	select {
	case <-got:
		t.Fatal("table S granted alongside IX")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
	if err := m.LockHierarchy(4, nil, S); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestHasConflictingExcept(t *testing.T) {
	m := New()
	if err := m.Lock(7, "col", X); err != nil {
		t.Fatal(err)
	}
	if m.HasConflicting("col", X, 7) {
		t.Fatal("own lock reported as conflict")
	}
	if !m.HasConflicting("col", X, 8) {
		t.Fatal("other txn's X not reported")
	}
	if m.HasConflicting("unlocked", X, 0) {
		t.Fatal("conflict on unlocked resource")
	}
	m.ReleaseAll(7)
}

func TestReleaseAllCancelsWaiters(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, "r", X) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(2) // abort the waiter itself
	if err := <-got; err == nil {
		t.Fatal("cancelled waiter got the lock")
	}
	m.ReleaseAll(1)
}

func TestConcurrentStress(t *testing.T) {
	m := New()
	const txns = 16
	var wg sync.WaitGroup
	var deadlocks, commits int64
	var mu sync.Mutex
	for i := 0; i < txns; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			resources := []string{"a", "b", "c", "d"}
			ok := true
			for j, r := range resources {
				mode := S
				if (int(id)+j)%3 == 0 {
					mode = X
				}
				if err := m.Lock(id, r, mode); err != nil {
					ok = false
					break
				}
			}
			m.ReleaseAll(id)
			mu.Lock()
			if ok {
				commits++
			} else {
				deadlocks++
			}
			mu.Unlock()
		}(TxnID(i + 1))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lock manager stress hung (undetected deadlock)")
	}
	if commits == 0 {
		t.Fatal("no transaction committed")
	}
	a, w, d := m.Stats()
	if a == 0 {
		t.Fatal("no acquisitions counted")
	}
	t.Logf("acquired=%d waited=%d deadlocks=%d commits=%d victims=%d", a, w, d, commits, deadlocks)
}

func TestSavepointPartialRollback(t *testing.T) {
	m := New()
	if err := m.Lock(1, "a", X); err != nil {
		t.Fatal(err)
	}
	sp := m.Savepoint(1)
	if sp != 1 {
		t.Fatalf("savepoint = %d", sp)
	}
	if err := m.Lock(1, "b", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "c", S); err != nil {
		t.Fatal(err)
	}
	// A waiter on b is unblocked by the partial rollback; a remains
	// locked.
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, "b", X) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAfter(1, sp)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if !m.HasConflicting("a", S, 2) {
		t.Fatal("pre-savepoint lock released by partial rollback")
	}
	if m.HasConflicting("c", X, 2) {
		t.Fatal("post-savepoint lock survived partial rollback")
	}
	held := m.HeldModes(1)
	if len(held) != 1 || held["a"] != X {
		t.Fatalf("held after rollback: %v", held)
	}
	// Re-acquiring after rollback works.
	m.ReleaseAll(2)
	if err := m.Lock(1, "b", X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestReleaseAfterBounds(t *testing.T) {
	m := New()
	m.Lock(1, "a", S)
	m.ReleaseAfter(1, 5) // beyond acquisitions: no-op
	if len(m.HeldModes(1)) != 1 {
		t.Fatal("no-op rollback changed locks")
	}
	m.ReleaseAfter(1, -1) // clamped to 0: releases everything
	if len(m.HeldModes(1)) != 0 {
		t.Fatal("rollback to 0 kept locks")
	}
	m.ReleaseAll(1)
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{IS: "IS", IX: "IX", S: "S", SIX: "SIX", U: "U", X: "X"}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%v.String() = %q", want, m.String())
		}
	}
}
