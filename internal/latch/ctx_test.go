package latch

import (
	"context"
	"testing"
	"time"
)

// TestLockCtxFastPath: an uncontended LockCtx behaves exactly like Lock.
func TestLockCtxFastPath(t *testing.T) {
	l := New(MiddleFirst)
	w, err := l.LockCtx(context.Background(), 10)
	if err != nil || w != 0 {
		t.Fatalf("LockCtx = (%v, %v), want (0, nil)", w, err)
	}
	l.Unlock()
	if _, err := l.RLockCtx(context.Background()); err != nil {
		t.Fatalf("RLockCtx: %v", err)
	}
	l.RUnlock()
}

// TestLockCtxAlreadyCancelled: a cancelled context fails fast without
// queueing.
func TestLockCtxAlreadyCancelled(t *testing.T) {
	l := New(MiddleFirst)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.LockCtx(ctx, 1); err != context.Canceled {
		t.Fatalf("LockCtx = %v, want context.Canceled", err)
	}
	if _, err := l.RLockCtx(ctx); err != context.Canceled {
		t.Fatalf("RLockCtx = %v, want context.Canceled", err)
	}
	if l.QueuedWriters() != 0 {
		t.Fatal("cancelled caller left a queue entry")
	}
}

// TestLockCtxUnparksOnDeadline: a writer parked behind an exclusive
// holder unparks promptly when its deadline expires, and the latch
// stays usable.
func TestLockCtxUnparksOnDeadline(t *testing.T) {
	l := New(MiddleFirst)
	l.Lock(0) // hold exclusively

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := l.LockCtx(ctx, 5)
	if err != context.DeadlineExceeded {
		t.Fatalf("LockCtx = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("parked %v past a 20ms deadline", waited)
	}
	if l.QueuedWriters() != 0 {
		t.Fatal("expired waiter still queued")
	}
	l.Unlock()
	// The latch must still grant cleanly after the abandoned wait.
	if w, err := l.LockCtx(context.Background(), 1); err != nil || w != 0 {
		t.Fatalf("post-expiry LockCtx = (%v, %v)", w, err)
	}
	l.Unlock()
}

// TestRLockCtxUnparksOnCancel: a reader parked behind a writer unparks
// promptly on cancellation.
func TestRLockCtxUnparksOnCancel(t *testing.T) {
	l := New(MiddleFirst)
	l.Lock(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := l.RLockCtx(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("RLockCtx = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled reader never unparked")
	}
	l.Unlock()
	if w := l.RLock(); w != 0 {
		t.Fatalf("post-cancel RLock waited %v", w)
	}
	l.RUnlock()
}

// TestLockCtxGrantRace: when the grant and the cancellation race, the
// loser of the removal scan takes the granted latch and releases it,
// so the hand-off chain never stalls. Exercised many times to hit the
// race window.
func TestLockCtxGrantRace(t *testing.T) {
	for i := 0; i < 200; i++ {
		l := New(MiddleFirst)
		l.Lock(0)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := l.LockCtx(ctx, 1)
			done <- err
		}()
		for l.QueuedWriters() == 0 {
			time.Sleep(time.Microsecond)
		}
		// Release (granting the waiter) and cancel concurrently.
		go cancel()
		l.Unlock()
		err := <-done
		if err == nil {
			l.Unlock() // the waiter won the race and owns the latch
		}
		// Either way the latch must be free afterwards.
		if !l.TryLock() {
			t.Fatalf("iteration %d: latch leaked", i)
		}
		l.Unlock()
		cancel()
	}
}
