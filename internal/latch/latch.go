// Package latch implements the short-term latches that protect the
// physical index structures of adaptive indexing (paper §3.1, Table 1).
//
// Latches differ from transactional locks: they separate threads rather
// than transactions, they protect in-memory data structures rather than
// logical database contents, they are held for critical sections rather
// than whole transactions, and deadlocks are avoided by coding
// discipline rather than detected. In this codebase the discipline is
// that a query holds at most one piece latch at a time.
//
// The Latch type adds two features over a plain sync.RWMutex, both
// required by the paper's experiments:
//
//  1. Wait-time accounting. Acquisition methods return the time the
//     caller spent blocked, which the harness aggregates into the
//     Figure 15 wait-time series and the conflict counters.
//
//  2. Scheduled hand-off for waiting crack operations. Writers register
//     the crack bound they intend to apply; waiters are kept sorted by
//     bound and, on release, the *middle-most* waiter is granted first.
//     Splitting the remaining domain in half maximizes the chance that
//     the remaining waiters can then proceed in parallel (paper §5.3,
//     "Optimizations": insertion sort on bounds, wake the middle).
package latch

import (
	"context"
	"sync"
	"time"
)

// Policy selects the order in which queued writers are granted the latch.
type Policy int

const (
	// MiddleFirst grants the queued writer whose crack bound is the
	// median of all waiting bounds (the paper's scheduling optimization).
	MiddleFirst Policy = iota
	// FIFO grants writers in arrival order; used by the scheduling
	// ablation benchmark.
	FIFO
)

// String returns the policy's display name.
func (p Policy) String() string {
	if p == MiddleFirst {
		return "middle-first"
	}
	return "fifo"
}

type waiter struct {
	bound int64
	seq   uint64 // arrival order, for FIFO and for stable middle picks
	// deadline is the waiter's context deadline (zero when the waiter
	// has none). Waiters carrying a deadline are woken earliest-deadline
	// first, ahead of the policy pick: a latch grant handed to a waiter
	// that is about to expire is wasted work — it wakes, observes the
	// expired context, and releases — while the tight-deadline waiter
	// behind it times out anyway.
	deadline time.Time
	ready    chan struct{}
}

// Latch is a read/write latch with wait accounting and scheduled
// hand-off. The zero value is a usable latch with MiddleFirst policy.
//
// Grant rules (reader preference, matching the Figure 8 timelines):
//   - a reader is granted whenever no writer is active;
//   - a writer is granted when the latch is entirely free and no other
//     writer is queued ahead of it per the policy;
//   - on writer release, all queued readers are granted together; if
//     none, the policy-chosen writer is granted;
//   - on last-reader release, the policy-chosen writer is granted;
//   - a queued writer that arrived through LockCtx with a context
//     deadline outranks the policy: the earliest-deadline waiter is
//     always granted first (see waiter.deadline).
type Latch struct {
	mu      sync.Mutex
	readers int  // active shared holders
	writer  bool // active exclusive holder
	writeQ  []waiter
	readQ   []chan struct{}
	seq     uint64
	policy  Policy
	// onWait, when set, observes every blocked acquisition with the
	// wait duration and whether the waiter was a reader. It fires only
	// on the slow path (the caller actually parked), so the uncontended
	// fast path pays nothing.
	onWait func(d time.Duration, reader bool)
}

// New returns a latch with the given writer-scheduling policy.
func New(p Policy) *Latch { return &Latch{policy: p} }

// SetWaitObserver installs f to observe blocked acquisitions (wait
// duration, reader flag). Must be called before the latch is shared
// between goroutines — typically right after New — as the field is
// read without synchronization on the wait slow path. A nil f keeps
// waits unobserved.
func (l *Latch) SetWaitObserver(f func(d time.Duration, reader bool)) { l.onWait = f }

// waited reports a completed blocked acquisition to the observer.
func (l *Latch) waited(d time.Duration, reader bool) {
	if l.onWait != nil {
		l.onWait(d, reader)
	}
}

// Lock acquires the latch exclusively, for a crack at the given bound.
// The bound is only used to order waiting writers; callers that latch a
// whole column may pass any value. It returns the time spent blocked
// (zero when granted immediately).
func (l *Latch) Lock(bound int64) time.Duration {
	l.mu.Lock()
	if !l.writer && l.readers == 0 && len(l.writeQ) == 0 {
		l.writer = true
		l.mu.Unlock()
		return 0
	}
	w := waiter{bound: bound, seq: l.seq, ready: make(chan struct{})}
	l.seq++
	l.enqueueWriter(w)
	l.mu.Unlock()
	start := time.Now()
	<-w.ready // ownership transferred by releaser
	d := time.Since(start)
	l.waited(d, false)
	return d
}

// LockCtx is Lock bounded by a context: a caller parked in the writer
// queue unparks promptly when ctx is cancelled or its deadline expires,
// returning the context's error without holding the latch. A nil or
// never-cancelled context degrades to the plain Lock fast path with no
// extra allocation.
func (l *Latch) LockCtx(ctx context.Context, bound int64) (time.Duration, error) {
	if ctx == nil || ctx.Done() == nil {
		return l.Lock(bound), nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	if !l.writer && l.readers == 0 && len(l.writeQ) == 0 {
		l.writer = true
		l.mu.Unlock()
		return 0, nil
	}
	w := waiter{bound: bound, seq: l.seq, ready: make(chan struct{})}
	if dl, ok := ctx.Deadline(); ok {
		w.deadline = dl
	}
	l.seq++
	l.enqueueWriter(w)
	l.mu.Unlock()
	start := time.Now()
	select {
	case <-w.ready:
		d := time.Since(start)
		l.waited(d, false)
		return d, nil
	case <-ctx.Done():
	}
	// Cancelled while parked: remove the queue entry, unless a releaser
	// already granted us the latch (ready closed under l.mu before the
	// entry left the queue) — then take and immediately release it so
	// the hand-off chain continues.
	l.mu.Lock()
	removed := false
	for i := range l.writeQ {
		if l.writeQ[i].seq == w.seq {
			l.writeQ = append(l.writeQ[:i], l.writeQ[i+1:]...)
			removed = true
			break
		}
	}
	l.mu.Unlock()
	if !removed {
		<-w.ready
		l.Unlock()
	}
	d := time.Since(start)
	l.waited(d, false)
	return d, ctx.Err()
}

// TryLock attempts to acquire the latch exclusively without blocking.
// It reports whether the latch was acquired. Used for conflict
// avoidance: refinement is optional, so on failure the caller may
// simply forgo cracking (paper §3.3).
func (l *Latch) TryLock() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writer || l.readers > 0 || len(l.writeQ) > 0 {
		return false
	}
	l.writer = true
	return true
}

// Unlock releases exclusive ownership and hands the latch to waiting
// readers (all of them) or, if none, to the policy-chosen writer.
func (l *Latch) Unlock() {
	l.mu.Lock()
	if !l.writer {
		l.mu.Unlock()
		panic("latch: Unlock of non-write-held latch")
	}
	l.writer = false
	l.grantLocked()
	l.mu.Unlock()
}

// Downgrade converts an exclusive hold into a shared hold without
// releasing, and admits all queued readers alongside. The paper's early
// termination discussion (§3.3) allows a refining system transaction to
// "downgrade [its latches] to shared latches, permitting the concurrent
// user query to proceed" — and the crack-then-aggregate path uses it to
// scan the piece it just refined without a release/re-acquire window.
func (l *Latch) Downgrade() {
	l.mu.Lock()
	if !l.writer {
		l.mu.Unlock()
		panic("latch: Downgrade of non-write-held latch")
	}
	l.writer = false
	l.readers = 1 + len(l.readQ)
	for _, ch := range l.readQ {
		close(ch)
	}
	l.readQ = l.readQ[:0]
	l.mu.Unlock()
}

// RLock acquires the latch shared. It returns the time spent blocked.
func (l *Latch) RLock() time.Duration {
	l.mu.Lock()
	if !l.writer {
		// Reader preference: admit even if writers are queued.
		l.readers++
		l.mu.Unlock()
		return 0
	}
	ch := make(chan struct{})
	l.readQ = append(l.readQ, ch)
	l.mu.Unlock()
	start := time.Now()
	<-ch
	d := time.Since(start)
	l.waited(d, true)
	return d
}

// RLockCtx is RLock bounded by a context: a reader parked behind an
// active writer unparks promptly on cancellation or deadline expiry,
// returning the context's error without holding the latch.
func (l *Latch) RLockCtx(ctx context.Context) (time.Duration, error) {
	if ctx == nil || ctx.Done() == nil {
		return l.RLock(), nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	if !l.writer {
		l.readers++
		l.mu.Unlock()
		return 0, nil
	}
	ch := make(chan struct{})
	l.readQ = append(l.readQ, ch)
	l.mu.Unlock()
	start := time.Now()
	select {
	case <-ch:
		d := time.Since(start)
		l.waited(d, true)
		return d, nil
	case <-ctx.Done():
	}
	// Cancelled while parked: remove our channel from the read queue,
	// unless the grant already happened — then release the share we
	// were handed.
	l.mu.Lock()
	removed := false
	for i := range l.readQ {
		if l.readQ[i] == ch {
			l.readQ = append(l.readQ[:i], l.readQ[i+1:]...)
			removed = true
			break
		}
	}
	l.mu.Unlock()
	if !removed {
		<-ch
		l.RUnlock()
	}
	d := time.Since(start)
	l.waited(d, true)
	return d, ctx.Err()
}

// TryRLock attempts to acquire the latch shared without blocking and
// reports whether it succeeded.
func (l *Latch) TryRLock() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writer {
		return false
	}
	l.readers++
	return true
}

// RUnlock releases a shared hold; the last reader out hands the latch
// to the policy-chosen waiting writer.
func (l *Latch) RUnlock() {
	l.mu.Lock()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("latch: RUnlock of non-read-held latch")
	}
	l.readers--
	if l.readers == 0 {
		l.grantLocked()
	}
	l.mu.Unlock()
}

// enqueueWriter inserts w keeping writeQ sorted by bound (insertion
// sort, as in the paper). Under FIFO the queue is kept in seq order.
func (l *Latch) enqueueWriter(w waiter) {
	if l.policy == FIFO {
		l.writeQ = append(l.writeQ, w)
		return
	}
	i := len(l.writeQ)
	for i > 0 && l.writeQ[i-1].bound > w.bound {
		i--
	}
	l.writeQ = append(l.writeQ, waiter{})
	copy(l.writeQ[i+1:], l.writeQ[i:])
	l.writeQ[i] = w
}

// grantLocked transfers ownership after a release. Caller holds l.mu.
func (l *Latch) grantLocked() {
	if l.writer || l.readers > 0 {
		return
	}
	if len(l.readQ) > 0 {
		l.readers = len(l.readQ)
		for _, ch := range l.readQ {
			close(ch)
		}
		l.readQ = l.readQ[:0]
		return
	}
	if len(l.writeQ) == 0 {
		return
	}
	// Deadline-aware wake order: among waiters that carry a context
	// deadline, the earliest wakes first, ahead of the policy pick.
	// Waiters without deadlines fall back to the configured policy
	// (middle-most bound or FIFO).
	i := -1
	for j := range l.writeQ {
		if d := l.writeQ[j].deadline; !d.IsZero() {
			if i < 0 || d.Before(l.writeQ[i].deadline) {
				i = j
			}
		}
	}
	if i < 0 {
		i = 0
		if l.policy == MiddleFirst {
			i = len(l.writeQ) / 2
		}
	}
	w := l.writeQ[i]
	l.writeQ = append(l.writeQ[:i], l.writeQ[i+1:]...)
	l.writer = true
	close(w.ready)
}

// QueuedWriters returns the number of writers currently waiting;
// exposed for tests and for the scheduling example.
func (l *Latch) QueuedWriters() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.writeQ)
}

// WaiterBounds returns a snapshot of the crack bounds of all queued
// writers. The current latch holder uses it for group cracking (the
// paper's §7 "dynamic algorithms"): refine the index for every waiting
// request in one step, so the waiters find their boundary already in
// place when they are granted the latch.
func (l *Latch) WaiterBounds() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int64, len(l.writeQ))
	for i, w := range l.writeQ {
		out[i] = w.bound
	}
	return out
}
