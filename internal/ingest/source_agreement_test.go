package ingest_test

import (
	"fmt"
	"testing"

	"adaptix/internal/amerge"
	"adaptix/internal/baseline"
	"adaptix/internal/engine"
	"adaptix/internal/hybrid"
	"adaptix/internal/ingest"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// TestSourceShardWriteAgreement is the unified-write-surface agreement
// test: the same deterministic concurrent read/write mix that the
// crack-sharded column passes must also hold when the shards are built
// over adaptive merging and hybrid crack-sort (shard.Options.Source) —
// the epoch-chain write path is method-agnostic. A merge forcer keeps
// group-applying every shard throughout, so routed writes, snapshot
// reads, and source rebuilds race continuously. The quiesced final
// checksums must match the mutable scan baseline at 1, 4, and 16
// clients. Run under -race by CI.
func TestSourceShardWriteAgreement(t *testing.T) {
	const rows = 1 << 12
	opsPerClient := 700
	if testing.Short() {
		opsPerClient = 250
	}
	d := workload.NewUniqueUniform(rows, 67)
	sources := []struct {
		name string
		mk   func(values []int64) engine.AggregateSource
	}{
		{"amerge", func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(amerge.New(values, amerge.Options{RunSize: 1 << 10}))
		}},
		{"hybrid", func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(hybrid.New(values, hybrid.Options{PartitionSize: 1 << 10}))
		}},
	}
	for _, src := range sources {
		for _, clients := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/clients=%d", src.name, clients), func(t *testing.T) {
				scan := scanAdapter{baseline.NewMutable(d.Values)}
				col := shard.New(d.Values, shard.Options{
					Shards: 4, Seed: 9, Source: src.mk,
				})
				g := ingest.New(col, ingest.Options{
					ApplyThreshold: 1 << 20, MinShardRows: 512,
				})

				driveMixed(scan, rows, clients, opsPerClient, 0.5)

				mixDone := make(chan struct{})
				go func() {
					defer close(mixDone)
					driveMixed(ingestAdapter{g}, rows, clients, opsPerClient, 0.5)
				}()
				merges := 0
				for running := true; running; {
					select {
					case <-mixDone:
						running = false
					default:
					}
					for s := 0; s < col.NumShards(); s++ {
						if _, ok := col.ApplyShard(s); ok {
							merges++
						}
					}
				}
				if merges == 0 {
					t.Fatal("the merge forcer never found pending epochs: the race never happened")
				}

				want := finalChecksum(scan, rows)
				if got := finalChecksum(ingestAdapter{g}, rows); got != want {
					t.Errorf("sharded/%s final checksum %d, scan baseline %d", src.name, got, want)
				}
				if err := col.Validate(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}
