// The on-disk trace format and its sink: fixed-width binary records
// behind a small self-identifying header, append-only, size-rotated.
//
// Layout (all little-endian):
//
//	header (32 bytes)   magic "AXWTRC01" | domainLo int64 |
//	                    domainHi int64 | reserved 8 bytes
//	records (48 bytes)  meta uint64 (kind<<56|method<<48|epochs<<32|tag)
//	                    | t | lo | hi | result | touched (int64 each)
//
// The header's domain fields are advisory (the key domain known when
// the file was started; replay regenerates its dataset from rows+seed
// and does not need them). A truncated final record — the process died
// mid-append — is ignored by the reader, so a trace interrupted at any
// byte is still loadable up to the last complete record.
package wcapture

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

const (
	// recordSize is the fixed encoded size of one trace record.
	recordSize = 48
	// headerSize is the fixed trace file header size.
	headerSize = 32
)

// traceMagic identifies a workload trace file and its format version.
var traceMagic = [8]byte{'A', 'X', 'W', 'T', 'R', 'C', '0', '1'}

// encode writes the record's fixed-width form into b.
func (r Record) encode(b *[recordSize]byte) {
	meta := uint64(r.Kind)<<56 | uint64(r.Method)<<48 |
		uint64(r.Epochs)<<32 | uint64(r.Tag)
	binary.LittleEndian.PutUint64(b[0:], meta)
	binary.LittleEndian.PutUint64(b[8:], uint64(r.T))
	binary.LittleEndian.PutUint64(b[16:], uint64(r.Lo))
	binary.LittleEndian.PutUint64(b[24:], uint64(r.Hi))
	binary.LittleEndian.PutUint64(b[32:], uint64(r.Result))
	binary.LittleEndian.PutUint64(b[40:], uint64(r.Touched))
}

// decodeRecord parses one fixed-width record from b (len >= recordSize).
func decodeRecord(b []byte) Record {
	meta := binary.LittleEndian.Uint64(b[0:])
	return Record{
		Kind:    RecKind(meta >> 56),
		Method:  uint8(meta >> 48),
		Epochs:  uint16(meta >> 32),
		Tag:     uint32(meta),
		T:       int64(binary.LittleEndian.Uint64(b[8:])),
		Lo:      int64(binary.LittleEndian.Uint64(b[16:])),
		Hi:      int64(binary.LittleEndian.Uint64(b[24:])),
		Result:  int64(binary.LittleEndian.Uint64(b[32:])),
		Touched: int64(binary.LittleEndian.Uint64(b[40:])),
	}
}

// traceSink is the size-rotated trace file writer, owned by the
// drainer goroutine (single-writer; no locking).
type traceSink struct {
	path     string
	maxBytes int64
	f        *os.File
	w        *bufio.Writer
	written  int64
	domainLo int64
	domainHi int64
	buf      [recordSize]byte
}

// newTraceSink creates (truncating) the trace file at path and writes
// its header.
func newTraceSink(path string, maxBytes int64) (*traceSink, error) {
	s := &traceSink{path: path, maxBytes: maxBytes}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// open starts a fresh trace file at s.path and writes the header.
func (s *traceSink) open() error {
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:], traceMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.domainLo))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.domainHi))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	s.written = headerSize
	return nil
}

// append encodes and appends one record, rotating first when the file
// has exceeded maxBytes.
func (s *traceSink) append(rec Record) error {
	if s.maxBytes > 0 && s.written+recordSize > s.maxBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	rec.encode(&s.buf)
	if _, err := s.w.Write(s.buf[:]); err != nil {
		return err
	}
	s.written += recordSize
	return nil
}

// rotate renames the current file to path+".1" (replacing any earlier
// rotation) and starts a fresh one, so disk use stays bounded at about
// twice maxBytes while the newest full rotation is always retained.
func (s *traceSink) rotate() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(s.path, s.path+".1"); err != nil {
		return err
	}
	return s.open()
}

// close flushes and closes the sink.
func (s *traceSink) close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// ReadTrace loads a captured trace from path, oldest record first. If
// a rotated predecessor path+".1" exists its records are returned
// first, so a rotation boundary is invisible to the caller. A
// truncated final record (crash mid-append) is dropped silently; a
// missing or malformed header is an error.
func ReadTrace(path string) ([]Record, error) {
	var out []Record
	if _, err := os.Stat(path + ".1"); err == nil {
		recs, err := readTraceFile(path + ".1")
		if err != nil {
			return nil, fmt.Errorf("wcapture: rotated trace %s.1: %w", path, err)
		}
		out = recs
	}
	recs, err := readTraceFile(path)
	if err != nil {
		return nil, fmt.Errorf("wcapture: trace %s: %w", path, err)
	}
	return append(out, recs...), nil
}

// readTraceFile loads one trace file.
func readTraceFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("short header: %w", err)
	}
	if [8]byte(hdr[:8]) != traceMagic {
		return nil, fmt.Errorf("bad magic %q (not a workload trace?)", hdr[:8])
	}
	var out []Record
	var buf [recordSize]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return out, nil // clean end, or a truncated tail record
		}
		if err != nil {
			return nil, err
		}
		out = append(out, decodeRecord(buf[:]))
	}
}
