package cracker

import (
	"sort"
	"testing"
	"testing/quick"

	"adaptix/internal/workload"
)

// checkDualAlignment verifies (head, tail) pairs survived reorganization.
func checkDualAlignment(t *testing.T, d *DualArray, head, tail []int64) {
	t.Helper()
	// Build the multiset of original pairs and compare.
	type pair struct{ h, t int64 }
	count := map[pair]int{}
	for i := range head {
		count[pair{head[i], tail[i]}]++
	}
	for i := 0; i < d.Len(); i++ {
		p := pair{d.Head(i), d.Tail(i)}
		count[p]--
		if count[p] < 0 {
			t.Fatalf("pair (%d,%d) not in original data", p.h, p.t)
		}
	}
	for p, c := range count {
		if c != 0 {
			t.Fatalf("pair (%d,%d) lost by reorganization", p.h, p.t)
		}
	}
}

func TestDualCrackInTwo(t *testing.T) {
	head := workload.NewUniqueUniform(1000, 3).Values
	tail := workload.NewUniqueUniform(1000, 4).Values
	d := NewDual(head, tail)
	pos := d.CrackInTwo(0, d.Len(), 500)
	if pos != 500 {
		t.Fatalf("pos = %d", pos)
	}
	for i := 0; i < pos; i++ {
		if d.Head(i) >= 500 {
			t.Fatal("left side violated")
		}
	}
	for i := pos; i < d.Len(); i++ {
		if d.Head(i) < 500 {
			t.Fatal("right side violated")
		}
	}
	checkDualAlignment(t, d, head, tail)
}

func TestDualCrackInThree(t *testing.T) {
	head := workload.NewDuplicates(2000, 300, 5).Values
	tail := workload.NewUniqueUniform(2000, 6).Values
	d := NewDual(head, tail)
	pa, pb := d.CrackInThree(0, d.Len(), 100, 200)
	for i := 0; i < pa; i++ {
		if d.Head(i) >= 100 {
			t.Fatal("left violated")
		}
	}
	for i := pa; i < pb; i++ {
		if h := d.Head(i); h < 100 || h >= 200 {
			t.Fatal("middle violated")
		}
	}
	for i := pb; i < d.Len(); i++ {
		if d.Head(i) < 200 {
			t.Fatal("right violated")
		}
	}
	checkDualAlignment(t, d, head, tail)
	// Equal bounds degenerate to crack-in-two.
	d2 := NewDual(head, tail)
	a, b := d2.CrackInThree(0, d2.Len(), 150, 150)
	if a != b {
		t.Fatal("equal bounds should coincide")
	}
}

func TestDualCrackInThreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for inverted bounds")
		}
	}()
	NewDual([]int64{1}, []int64{2}).CrackInThree(0, 1, 5, 3)
}

func TestDualSumsAndScans(t *testing.T) {
	head := []int64{5, 1, 9, 3}
	tail := []int64{50, 10, 90, 30}
	d := NewDual(head, tail)
	if got := d.SumTail(0, 4); got != 180 {
		t.Fatalf("SumTail = %d", got)
	}
	if got := d.ScanSumTail(0, 4, 3, 9); got != 80 { // heads 5,3 -> tails 50,30
		t.Fatalf("ScanSumTail = %d", got)
	}
	if got := d.ScanCountHead(0, 4, 3, 9); got != 2 {
		t.Fatalf("ScanCountHead = %d", got)
	}
}

func TestDualDoesNotAliasInputs(t *testing.T) {
	head := []int64{1, 2}
	tail := []int64{10, 20}
	d := NewDual(head, tail)
	head[0], tail[0] = 99, 99
	if d.Head(0) != 1 || d.Tail(0) != 10 {
		t.Fatal("DualArray aliases its inputs")
	}
}

func TestDualMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDual([]int64{1, 2}, []int64{1})
}

func TestDualCrackPropertyQuick(t *testing.T) {
	f := func(heads []int64, pivot int64) bool {
		tails := make([]int64, len(heads))
		for i := range tails {
			tails[i] = int64(i) * 7
		}
		d := NewDual(heads, tails)
		pos := d.CrackInTwo(0, d.Len(), pivot)
		for i := 0; i < pos; i++ {
			if d.Head(i) >= pivot {
				return false
			}
		}
		for i := pos; i < d.Len(); i++ {
			if d.Head(i) < pivot {
				return false
			}
		}
		// Head multiset preserved.
		got, want := d.HeadValues(), append([]int64(nil), heads...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Tail sum preserved (cheap multiset proxy given distinct tails).
		var sg, sw int64
		for _, v := range d.TailValues() {
			sg += v
		}
		for _, v := range tails {
			sw += v
		}
		return sg == sw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
