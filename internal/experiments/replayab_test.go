package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestReplayABShapes(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	rep := ReplayAB(cfg, &buf)

	if rep.Signature.Captured != int64(cfg.Queries) || rep.Signature.Dropped != 0 {
		t.Fatalf("capture leg: captured %d dropped %d, want %d / 0",
			rep.Signature.Captured, rep.Signature.Dropped, cfg.Queries)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Records != cfg.Queries {
			t.Fatalf("%s replayed %d of %d records", c.Name, c.Records, cfg.Queries)
		}
		// The determinism contract: every variant reproduces the capture
		// run's checksums on the identical trace.
		if c.Mismatches != 0 {
			t.Fatalf("%s: %d checksum mismatches", c.Name, c.Mismatches)
		}
		if c.Throughput <= 0 {
			t.Fatalf("%s: throughput %v", c.Name, c.Throughput)
		}
		if c.Reads+c.Writes != c.Records {
			t.Fatalf("%s: reads %d + writes %d != records %d", c.Name, c.Reads, c.Writes, c.Records)
		}
	}
	if !strings.Contains(buf.String(), "Replay A/B") {
		t.Fatalf("report text missing header:\n%s", buf.String())
	}
}
