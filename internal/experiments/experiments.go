// Package experiments regenerates every figure of the paper's
// experimental analysis (§6). Each FigNN function runs the
// corresponding experiment at a configurable scale and renders the
// same rows/series the paper plots; the returned report also carries
// the raw numbers so benchmarks and tests can assert the expected
// qualitative shapes (who wins, where the crossovers fall).
//
// Scale substitution: the paper uses 100 million tuples on a 4-core
// i7-2600. The default here is 1-2 million rows (flag-scalable); all
// trends reproduced by these experiments — adaptive per-query cost
// decay, conflict decay, scaling with clients up to the core count,
// the piece-vs-column latch gap — are qualitative and size-invariant.
package experiments

import (
	"fmt"
	"io"
	"time"

	"adaptix/internal/baseline"
	"adaptix/internal/crackindex"
	"adaptix/internal/engine"
	"adaptix/internal/harness"
	"adaptix/internal/metrics"
	"adaptix/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// Rows is the base-table size (paper: 100M; default 1M).
	Rows int
	// Queries is the sequence length for Figures 12-15 (paper: 1024).
	Queries int
	// Clients is the concurrency sweep (paper: 1..32).
	Clients []int
	// Seed makes runs deterministic.
	Seed uint64
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Rows == 0 {
		c.Rows = 1 << 20
	}
	if c.Queries == 0 {
		c.Queries = 1024
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 2, 4, 8, 16, 32}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func (c Config) dataset() *workload.Dataset {
	return workload.NewUniqueUniform(c.Rows, c.Seed)
}

func pieceCrack(d *workload.Dataset) engine.Engine {
	return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
		Latching: crackindex.LatchPiece,
	}))
}

// Fig11 reproduces Figure 11: per-query response time (a) and running
// average (b) of 10 serial range-count queries at 10% selectivity for
// scan, full sort, and cracking.
type Fig11Report struct {
	// PerQuery[engine][i] is query i's response time.
	PerQuery map[string][]time.Duration
	// RunningAvg[engine][i] is the running average after query i.
	RunningAvg map[string][]time.Duration
	// CrossoverQuery is the 1-based query index at which cracking's
	// running average drops below scan's (0 = never).
	CrossoverQuery int
}

// Fig11 runs the experiment and renders the two panels to w.
func Fig11(cfg Config, w io.Writer) *Fig11Report {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	qs := workload.Fixed(workload.NewUniform(workload.Count, d.Domain, 0.10, cfg.Seed+1), 10)
	rep := &Fig11Report{
		PerQuery:   map[string][]time.Duration{},
		RunningAvg: map[string][]time.Duration{},
	}
	for _, e := range []engine.Engine{
		baseline.NewScan(d.Values),
		baseline.NewFullSort(d.Values),
		pieceCrack(d),
	} {
		run := harness.Sequential(e, qs)
		for _, c := range run.Series.Costs {
			rep.PerQuery[e.Name()] = append(rep.PerQuery[e.Name()], c.Response)
		}
		rep.RunningAvg[e.Name()] = run.Series.RunningAverage()
	}
	for i := range rep.RunningAvg["crack"] {
		if rep.RunningAvg["crack"][i] < rep.RunningAvg["scan"][i] {
			rep.CrossoverQuery = i + 1
			break
		}
	}
	if w != nil {
		t := &metrics.Table{Header: []string{"query", "scan", "sort", "crack", "avg(scan)", "avg(sort)", "avg(crack)"}}
		for i := 0; i < 10; i++ {
			t.Add(fmt.Sprint(i+1),
				metrics.FormatDuration(rep.PerQuery["scan"][i]),
				metrics.FormatDuration(rep.PerQuery["sort"][i]),
				metrics.FormatDuration(rep.PerQuery["crack"][i]),
				metrics.FormatDuration(rep.RunningAvg["scan"][i]),
				metrics.FormatDuration(rep.RunningAvg["sort"][i]),
				metrics.FormatDuration(rep.RunningAvg["crack"][i]))
		}
		fmt.Fprintf(w, "Figure 11: basic performance, sequential execution (%d rows, sel 10%%)\n%s", cfg.Rows, t)
		fmt.Fprintf(w, "crack running-average crosses below scan at query %d\n\n", rep.CrossoverQuery)
	}
	return rep
}

// Fig12Report reproduces Figure 12: total time (a) and throughput (b)
// for the full query sequence at increasing client counts.
type Fig12Report struct {
	Clients []int
	// Total[engine][i] is the wall-clock time for all queries with
	// Clients[i] concurrent clients.
	Total map[string][]time.Duration
	// Throughput[engine][i] is queries/second.
	Throughput map[string][]float64
}

// Fig12 runs the experiment (Q2 sum queries, 0.01% selectivity).
func Fig12(cfg Config, w io.Writer) *Fig12Report {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.0001, cfg.Seed+2), cfg.Queries)
	rep := &Fig12Report{
		Clients:    cfg.Clients,
		Total:      map[string][]time.Duration{},
		Throughput: map[string][]float64{},
	}
	factories := map[string]func() engine.Engine{
		"scan":  func() engine.Engine { return baseline.NewScan(d.Values) },
		"sort":  func() engine.Engine { return baseline.NewFullSort(d.Values) },
		"crack": func() engine.Engine { return pieceCrack(d) },
	}
	for _, name := range []string{"scan", "sort", "crack"} {
		for _, runs := range [][]*harness.Run{harness.Sweep(factories[name], qs, cfg.Clients)} {
			for _, r := range runs {
				rep.Total[name] = append(rep.Total[name], r.Elapsed)
				rep.Throughput[name] = append(rep.Throughput[name], r.Throughput())
			}
		}
	}
	if w != nil {
		t := &metrics.Table{Header: []string{"clients", "scan", "sort", "crack", "scan q/s", "sort q/s", "crack q/s"}}
		for i, c := range cfg.Clients {
			t.Add(fmt.Sprint(c),
				metrics.FormatDuration(rep.Total["scan"][i]),
				metrics.FormatDuration(rep.Total["sort"][i]),
				metrics.FormatDuration(rep.Total["crack"][i]),
				fmt.Sprintf("%.0f", rep.Throughput["scan"][i]),
				fmt.Sprintf("%.0f", rep.Throughput["sort"][i]),
				fmt.Sprintf("%.0f", rep.Throughput["crack"][i]))
		}
		fmt.Fprintf(w, "Figure 12: total time and throughput for %d sum queries (sel 0.01%%), %d rows\n%s\n",
			cfg.Queries, cfg.Rows, t)
	}
	return rep
}

// Fig13Report reproduces Figure 13: the administrative overhead of
// concurrency control under sequential execution.
type Fig13Report struct {
	Enabled  time.Duration // piece latches active
	Disabled time.Duration // all CC machinery off
	// OverheadPct = (Enabled-Disabled)/Disabled * 100.
	OverheadPct float64
}

// Fig13 runs the same sequential 1024-query sequence twice: once with
// the full piece-latch machinery, once with concurrency control
// disabled, and reports the difference.
func Fig13(cfg Config, w io.Writer) *Fig13Report {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.0001, cfg.Seed+3), cfg.Queries)
	run := func(mode crackindex.LatchMode) time.Duration {
		e := engine.NewCrack(crackindex.New(d.Values, crackindex.Options{Latching: mode}))
		return harness.Sequential(e, qs).Elapsed
	}
	rep := &Fig13Report{}
	// Alternate repetitions and keep the minimum of each mode: the
	// difference of minima isolates the deterministic administrative
	// cost from scheduler and GC noise.
	const reps = 3
	for i := 0; i < reps; i++ {
		if e := run(crackindex.LatchPiece); rep.Enabled == 0 || e < rep.Enabled {
			rep.Enabled = e
		}
		if d := run(crackindex.LatchNone); rep.Disabled == 0 || d < rep.Disabled {
			rep.Disabled = d
		}
	}
	rep.OverheadPct = 100 * (rep.Enabled.Seconds() - rep.Disabled.Seconds()) / rep.Disabled.Seconds()
	if w != nil {
		t := &metrics.Table{Header: []string{"concurrency control", "total time"}}
		t.Add("enabled (piece latches)", metrics.FormatDuration(rep.Enabled))
		t.Add("disabled", metrics.FormatDuration(rep.Disabled))
		fmt.Fprintf(w, "Figure 13: CC administrative overhead, sequential, %d sum queries, %d rows\n%s",
			cfg.Queries, cfg.Rows, t)
		fmt.Fprintf(w, "overhead: %.2f%%\n\n", rep.OverheadPct)
	}
	return rep
}

// Fig14Report reproduces Figure 14: total time for the query sequence
// across {Q1 count, Q2 sum} x {column, piece} latches, a selectivity
// sweep, and a client sweep.
type Fig14Report struct {
	Clients       []int
	Selectivities []float64
	// Total[panel][selIdx][clientIdx]; panels: "count/column",
	// "count/piece", "sum/column", "sum/piece".
	Total map[string][][]time.Duration
}

// Fig14Selectivities is the paper's sweep.
var Fig14Selectivities = []float64{0.0001, 0.001, 0.01, 0.10, 0.50, 0.90}

// Fig14 runs the four panels.
func Fig14(cfg Config, w io.Writer) *Fig14Report {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	rep := &Fig14Report{
		Clients:       cfg.Clients,
		Selectivities: Fig14Selectivities,
		Total:         map[string][][]time.Duration{},
	}
	panels := []struct {
		name string
		kind workload.QueryKind
		mode crackindex.LatchMode
	}{
		{"count/column", workload.Count, crackindex.LatchColumn},
		{"count/piece", workload.Count, crackindex.LatchPiece},
		{"sum/column", workload.Sum, crackindex.LatchColumn},
		{"sum/piece", workload.Sum, crackindex.LatchPiece},
	}
	for _, p := range panels {
		for si, sel := range rep.Selectivities {
			qs := workload.Fixed(workload.NewUniform(p.kind, d.Domain, sel, cfg.Seed+4+uint64(si)), cfg.Queries)
			runs := harness.Sweep(func() engine.Engine {
				return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{Latching: p.mode}))
			}, qs, cfg.Clients)
			row := make([]time.Duration, len(runs))
			for i, r := range runs {
				row[i] = r.Elapsed
			}
			rep.Total[p.name] = append(rep.Total[p.name], row)
		}
		if w != nil {
			t := &metrics.Table{Header: append([]string{"selectivity \\ clients"}, intsToStrings(cfg.Clients)...)}
			for si, sel := range rep.Selectivities {
				cells := []string{fmt.Sprintf("%g%%", sel*100)}
				for ci := range cfg.Clients {
					cells = append(cells, metrics.FormatDuration(rep.Total[p.name][si][ci]))
				}
				t.Add(cells...)
			}
			fmt.Fprintf(w, "Figure 14 panel %s: total time, %d queries, %d rows\n%s\n",
				p.name, cfg.Queries, cfg.Rows, t)
		}
	}
	return rep
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}

// Fig15Report reproduces Figure 15: per-query wait time versus index
// refinement (crack) time as the workload sequence evolves, with 8
// concurrent clients, 50% selectivity, piece latches.
type Fig15Report struct {
	// Seq[i], CrackTime[i], WaitTime[i] describe query i in completion
	// order.
	CrackTime []time.Duration
	WaitTime  []time.Duration
	// Decay ratios: mean of last quarter / mean of first quarter.
	CrackDecay float64
	WaitDecay  float64
}

// Fig15 runs the experiment.
func Fig15(cfg Config, w io.Writer) *Fig15Report {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.50, cfg.Seed+5), cfg.Queries)
	run := harness.Execute(pieceCrack(d), qs, 8)
	rep := &Fig15Report{}
	for _, c := range run.Series.Costs {
		rep.CrackTime = append(rep.CrackTime, c.Crack)
		rep.WaitTime = append(rep.WaitTime, c.Wait)
	}
	rep.CrackDecay = decay(rep.CrackTime)
	rep.WaitDecay = decay(rep.WaitTime)
	if w != nil {
		t := &metrics.Table{Header: []string{"query", "crack (refinement)", "wait"}}
		// Log-spaced sample of the sequence, like the paper's log axis.
		for i := 1; i <= len(rep.CrackTime); i *= 2 {
			t.Add(fmt.Sprint(i),
				metrics.FormatDuration(rep.CrackTime[i-1]),
				metrics.FormatDuration(rep.WaitTime[i-1]))
		}
		fmt.Fprintf(w, "Figure 15: per-query breakdown, 8 clients, sel 50%%, piece latches, %d rows\n%s",
			cfg.Rows, t)
		fmt.Fprintf(w, "decay (last quarter / first quarter): crack %.3f, wait %.3f\n\n",
			rep.CrackDecay, rep.WaitDecay)
	}
	return rep
}

// decay returns mean(last quarter)/mean(first quarter); < 1 means the
// series decreases over the sequence.
func decay(xs []time.Duration) float64 {
	if len(xs) < 8 {
		return 1
	}
	q := len(xs) / 4
	var first, last time.Duration
	for _, x := range xs[:q] {
		first += x
	}
	for _, x := range xs[len(xs)-q:] {
		last += x
	}
	if first == 0 {
		return 1
	}
	return float64(last) / float64(first)
}
