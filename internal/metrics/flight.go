// The flight recorder: a fixed ring of the last N notable events
// (sampled query spans, structural operations, stall events), always
// on, dumpable on demand. Like an aircraft flight recorder it answers
// "what was the index doing right before the stall?" without any
// prior configuration — the events are already there.
//
// Recording is wait-free: a writer claims a slot with one atomic add
// and publishes through per-field atomics guarded by a slot sequence
// number (even = stable, odd = being written), so a concurrent Dump
// observes either the old event, the new event, or skips the slot —
// never a torn mix. No locks, no allocation, race-detector clean.
package metrics

import (
	"sync/atomic"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind int32

const (
	// EvQuery is a sampled per-query span (Dur = end-to-end latency,
	// A = latch-wait ns, B = crack/refine ns).
	EvQuery EventKind = iota + 1
	// EvLatchStall is a latch wait that exceeded the stall threshold
	// (Dur = wait; A = 1 if the waiter was a reader).
	EvLatchStall
	// EvWriterStall is a writer parked on a sealed epoch longer than
	// the stall threshold (Dur = park time).
	EvWriterStall
	// EvSeal is an epoch seal (Shard = ordinal, A = sealed rows).
	EvSeal
	// EvApply is a group-apply of sealed epochs into a shard's base
	// (Dur = rebuild+publish time, A = rows applied).
	EvApply
	// EvSplit is a shard split (Dur = build time).
	EvSplit
	// EvMerge is a shard merge (Dur = build time).
	EvMerge
	// EvCheckpoint is a durable checkpoint (Dur = write+sync time).
	EvCheckpoint
	// EvHealth is a health-rule transition from the watchdog (A = rule
	// ordinal, B = 1 when the rule degraded, 0 when it recovered).
	EvHealth
	// EvCaptureDrop is a workload-capture ring overflow: the sink
	// drainer fell behind and records were lost (A = records lost when
	// the burst was first observed, B = total lost so far).
	// Edge-triggered: one event per loss burst, re-armed by the next
	// clean drain pass.
	EvCaptureDrop
)

// String returns the event kind's dump name.
func (k EventKind) String() string {
	switch k {
	case EvQuery:
		return "query"
	case EvLatchStall:
		return "latch-stall"
	case EvWriterStall:
		return "writer-stall"
	case EvSeal:
		return "seal"
	case EvApply:
		return "apply"
	case EvSplit:
		return "split"
	case EvMerge:
		return "merge"
	case EvCheckpoint:
		return "checkpoint"
	case EvHealth:
		return "health"
	case EvCaptureDrop:
		return "capture-drop"
	default:
		return "unknown"
	}
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Seq is the global event sequence number (monotonic; gaps mean
	// the ring wrapped past overwritten events).
	Seq uint64 `json:"seq"`
	// When is the wall-clock capture time.
	When time.Time `json:"when"`
	// Kind classifies the event.
	Kind EventKind `json:"-"`
	// KindName is Kind's dump name (stable across versions).
	KindName string `json:"kind"`
	// Shard is the shard ordinal the event concerns (-1 if none).
	Shard int32 `json:"shard"`
	// Dur is the event's duration.
	Dur time.Duration `json:"dur_ns"`
	// A and B are kind-specific payloads (see the EventKind docs).
	A int64 `json:"a"`
	B int64 `json:"b"`
}

// flightSlot stores one event entirely in atomics so concurrent
// record/dump stays race-free. seq doubles as the publication guard:
// odd while a writer is mid-update, even (and equal to 2*(eventSeq+1))
// once stable.
type flightSlot struct {
	seq       atomic.Uint64
	when      atomic.Int64 // unix nanos
	dur       atomic.Int64
	kindShard atomic.Int64 // kind<<32 | uint32(shard)
	a         atomic.Int64
	b         atomic.Int64
}

// Flight is the ring buffer itself. The zero value is unusable; use
// NewFlight.
type Flight struct {
	slots []flightSlot
	next  atomic.Uint64 // next event sequence number
}

// NewFlight returns a recorder retaining the last n events (n is
// clamped to at least 16).
func NewFlight(n int) *Flight {
	if n < 16 {
		n = 16
	}
	return &Flight{slots: make([]flightSlot, n)}
}

// Cap returns the ring capacity.
func (f *Flight) Cap() int { return len(f.slots) }

// Record captures one event, overwriting the oldest when the ring is
// full. Wait-free and allocation-free.
func (f *Flight) Record(kind EventKind, shard int32, dur time.Duration, a, b int64) {
	seq := f.next.Add(1) - 1
	s := &f.slots[seq%uint64(len(f.slots))]
	// Mark the slot in-progress (odd), fill, then publish (even). A
	// dump that reads an odd or changed seq discards the slot.
	s.seq.Store(2*seq + 1)
	s.when.Store(time.Now().UnixNano())
	s.dur.Store(int64(dur))
	s.kindShard.Store(int64(kind)<<32 | int64(uint32(shard)))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(2 * (seq + 1))
}

// Len returns the number of events currently retained.
func (f *Flight) Len() int {
	n := f.next.Load()
	if n > uint64(len(f.slots)) {
		return len(f.slots)
	}
	return int(n)
}

// Dump returns the retained events oldest first. Slots being
// concurrently overwritten are skipped rather than returned torn.
func (f *Flight) Dump() []Event {
	hi := f.next.Load()
	lo := uint64(0)
	if hi > uint64(len(f.slots)) {
		lo = hi - uint64(len(f.slots))
	}
	out := make([]Event, 0, hi-lo)
	for seq := lo; seq < hi; seq++ {
		s := &f.slots[seq%uint64(len(f.slots))]
		want := 2 * (seq + 1)
		if s.seq.Load() != want {
			continue // unwritten, in-progress, or already overwritten
		}
		ks := s.kindShard.Load()
		ev := Event{
			Seq:   seq,
			When:  time.Unix(0, s.when.Load()),
			Dur:   time.Duration(s.dur.Load()),
			A:     s.a.Load(),
			B:     s.b.Load(),
			Shard: int32(uint32(ks)),
			Kind:  EventKind(ks >> 32),
		}
		if s.seq.Load() != want {
			continue // overwritten while decoding: discard the torn read
		}
		ev.KindName = ev.Kind.String()
		out = append(out, ev)
	}
	return out
}
