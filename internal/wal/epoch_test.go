package wal

import "testing"

// epochCkptTxn builds a committed checkpoint transaction with an epoch
// watermark: header, CkptEpoch, and the given cuts.
func epochCkptTxn(txn uint64, obj string, shards int64, watermark int64, cuts ...int64) []Record {
	recs := []Record{
		{Txn: txn, Kind: BeginSystem, Object: obj},
		{Txn: txn, Kind: Checkpoint, Object: obj, C: CkptHeader, A: shards, B: 1},
		{Txn: txn, Kind: Checkpoint, Object: obj, C: CkptEpoch, A: watermark},
	}
	for _, cut := range cuts {
		recs = append(recs, Record{Txn: txn, Kind: Checkpoint, Object: obj, C: CkptCut, A: cut})
	}
	return append(recs, Record{Txn: txn, Kind: CommitSystem, Object: obj})
}

// TestRecoverEpochWatermarkFiltersTailWrites: logical writes at or
// below the checkpoint's watermark are already in the snapshot and
// must be discarded, writes beyond it must survive — regardless of
// whether their records land before or after the checkpoint records in
// the log (a writer can race the checkpoint into the sink; the epoch
// tag, not the log position, decides).
func TestRecoverEpochWatermarkFiltersTailWrites(t *testing.T) {
	const obj = "col"
	var recs []Record
	// Pre-checkpoint writes: epochs 1 and 2 (covered by watermark 2)
	// and epoch 3 (a writer that rolled past the cut and raced the
	// checkpoint records into the log).
	recs = append(recs,
		Record{Kind: LogicalWrite, Object: obj, A: 100, B: 1, C: 0},
		Record{Kind: LogicalWrite, Object: obj, A: 200, B: 2, C: 1},
		Record{Kind: LogicalWrite, Object: obj, A: 300, B: 3, C: 0},
	)
	recs = append(recs, epochCkptTxn(7, obj, 2, 2, 500)...)
	// Post-checkpoint tail: epoch 3 and 4 survive, a stale epoch-2
	// record (slow goroutine) is discarded.
	recs = append(recs,
		Record{Kind: LogicalWrite, Object: obj, A: 400, B: 4, C: 0},
		Record{Kind: LogicalWrite, Object: obj, A: 250, B: 2, C: 0},
		Record{Kind: LogicalWrite, Object: obj, A: 500, B: 4, C: 1},
	)
	cat, err := Recover(encodeAll(recs))
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.EpochWatermark[obj]; got != 2 {
		t.Fatalf("EpochWatermark = %d, want 2", got)
	}
	want := []TailWrite{
		{Value: 300, Delete: false, Epoch: 3},
		{Value: 400, Delete: false, Epoch: 4},
		{Value: 500, Delete: true, Epoch: 4},
	}
	got := cat.TailWrites[obj]
	if len(got) != len(want) {
		t.Fatalf("TailWrites = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TailWrites[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got, want := cat.ShardBounds[obj], []int64{500}; len(got) != 1 || got[0] != want[0] {
		t.Errorf("ShardBounds = %v, want %v", got, want)
	}
}

// TestRecoverDiscardsHalfAppliedEpoch: a committed EpochSeal whose
// merge (EpochApply) never committed — the crash window between the
// two transactions — leaves the sealed id above AppliedEpoch, and the
// epoch's logical writes stay in the replayable tail: recovery never
// assumes the base incorporates a half-applied epoch.
func TestRecoverDiscardsHalfAppliedEpoch(t *testing.T) {
	const obj = "col"
	var recs []Record
	recs = append(recs, epochCkptTxn(1, obj, 1, 0)...)
	recs = append(recs,
		// Epoch 1 sealed and fully applied.
		Record{Txn: 2, Kind: BeginSystem, Object: obj},
		Record{Txn: 2, Kind: EpochSeal, Object: obj, A: 0, B: 1, C: 10},
		Record{Txn: 2, Kind: CommitSystem, Object: obj},
		Record{Txn: 3, Kind: BeginSystem, Object: obj},
		Record{Txn: 3, Kind: EpochApply, Object: obj, A: 0, B: 1, C: 10},
		Record{Txn: 3, Kind: CommitSystem, Object: obj},
		// Epoch 2's writes, then its seal commits — and the process
		// dies before the apply transaction.
		Record{Kind: LogicalWrite, Object: obj, A: 42, B: 2, C: 0},
		Record{Txn: 4, Kind: BeginSystem, Object: obj},
		Record{Txn: 4, Kind: EpochSeal, Object: obj, A: 0, B: 2, C: 1},
		Record{Txn: 4, Kind: CommitSystem, Object: obj},
	)
	cat, err := Recover(encodeAll(recs))
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.AppliedEpoch[obj]; got != 1 {
		t.Errorf("AppliedEpoch = %d, want 1", got)
	}
	if got := cat.SealedEpochs[obj]; len(got) != 2 || got[1] != 2 {
		t.Errorf("SealedEpochs = %v, want [1 2]", got)
	}
	// The half-applied epoch is exactly the sealed suffix past the
	// applied watermark.
	half := 0
	for _, id := range cat.SealedEpochs[obj] {
		if id > cat.AppliedEpoch[obj] {
			half++
		}
	}
	if half != 1 {
		t.Errorf("half-applied epochs = %d, want 1", half)
	}
	// Its write replays from the tail (watermark 0 < epoch 2).
	if tw := cat.TailWrites[obj]; len(tw) != 1 || tw[0].Value != 42 || tw[0].Epoch != 2 {
		t.Errorf("TailWrites = %+v, want the half-applied epoch's write", tw)
	}
	if got := cat.ShardApplies[obj]; got != 1 {
		t.Errorf("ShardApplies = %d, want 1", got)
	}
}

// TestRecoverUncommittedEpochSealLeavesNoTrace: an EpochSeal inside a
// transaction that never committed (crash before the fsync) is
// invisible to recovery.
func TestRecoverUncommittedEpochSealLeavesNoTrace(t *testing.T) {
	const obj = "col"
	recs := []Record{
		{Txn: 9, Kind: BeginSystem, Object: obj},
		{Txn: 9, Kind: EpochSeal, Object: obj, A: 0, B: 5, C: 3},
	}
	cat, err := Recover(encodeAll(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.SealedEpochs[obj]) != 0 {
		t.Errorf("SealedEpochs = %v, want empty", cat.SealedEpochs[obj])
	}
}

// TestEpochKindStrings pins the log-friendly names of the new kinds.
func TestEpochKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		EpochSeal:    "epoch-seal",
		EpochApply:   "epoch-apply",
		LogicalWrite: "logical-write",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
