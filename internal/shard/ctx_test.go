package shard

import (
	"context"
	"testing"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/workload"
)

// TestQueryCancelledBeforeDispatch: a context cancelled before Count
// is called returns ctx.Err() without dispatching a single sub-query —
// no shard initializes, cracks, or records any refinement.
func TestQueryCancelledBeforeDispatch(t *testing.T) {
	d := workload.NewUniqueUniform(1<<14, 3)
	c := New(d.Values, Options{Shards: 4, Seed: 5,
		Index: crackindex.Options{Latching: crackindex.LatchPiece}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Count(ctx, 100, int64(1<<14-100)); err != context.Canceled {
		t.Fatalf("Count = %v, want Canceled", err)
	}
	for _, st := range c.Snapshot() {
		if st.Cracks != 0 || st.Pieces != 0 {
			t.Fatalf("shard %d refined by a cancelled query: %+v", st.Shard, st)
		}
	}
}

// TestFanOutCancelSkipsRemainingSubQueries: a query cancelled while
// its first (caller-run) sub-query executes must return
// context.Canceled without running the remaining per-shard sub-query,
// asserted through the ShardStat deltas: the far fringe shard keeps
// zero cracks and zero pieces.
//
// The schedule is deterministic: the test holds the column's only
// fan-out worker slot, so the second sub-query cannot start before the
// cancellation (triggered from inside the first sub-query's crack via
// the tracer hook) is observed.
func TestFanOutCancelSkipsRemainingSubQueries(t *testing.T) {
	const rows = 1 << 14
	d := workload.NewUniqueUniform(rows, 7)
	ctx, cancel := context.WithCancel(context.Background())
	c := New(d.Values, Options{
		Shards: 2, Workers: 1, Seed: 5,
		Index: crackindex.Options{
			Latching: crackindex.LatchPiece,
			Tracer: func(e crackindex.TraceEvent) {
				if e.Kind == crackindex.TraceCracked {
					cancel() // first physical crack cancels the query
				}
			},
		},
	})
	if c.NumShards() != 2 {
		t.Skipf("quantile cuts collapsed to %d shards", c.NumShards())
	}

	// Occupy the single worker slot so the second sub-query cannot
	// start until after the cancellation.
	c.sem <- struct{}{}
	done := make(chan error, 1)
	go func() {
		// Clip both ends so each fringe shard is only partially covered
		// and must run a real sub-query (no aggregate fast path).
		_, _, err := c.Count(ctx, 1, rows-1)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled fan-out query never returned")
	}
	<-c.sem // release the stolen slot
	if err != context.Canceled {
		t.Fatalf("Count = %v, want Canceled", err)
	}

	stats := c.Snapshot()
	if stats[0].Cracks == 0 {
		t.Fatal("first sub-query never cracked; the schedule broke")
	}
	if stats[1].Cracks != 0 || stats[1].Pieces != 0 {
		t.Fatalf("remaining sub-query ran after cancellation: %+v", stats[1])
	}

	// The column answers exactly once the context pressure is gone.
	if n, _, err := c.Count(context.Background(), 1, rows-1); err != nil || n != rows-2 {
		t.Fatalf("post-cancel Count = (%d, %v), want %d", n, err, rows-2)
	}
}

// TestDeleteProbeHonoursContext: the delete-existence probe is a query
// like any other — a cancelled context aborts the delete with the
// write not applied instead of running (or parking in) the probe.
func TestDeleteProbeHonoursContext(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 11)
	c := New(d.Values, Options{Shards: 2, Seed: 5,
		Index: crackindex.Options{Latching: crackindex.LatchPiece}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if deleted, err := c.DeleteValue(ctx, d.Values[0]); err != context.Canceled || deleted {
		t.Fatalf("cancelled DeleteValue = (%v, %v), want Canceled", deleted, err)
	}
	if n, _, err := c.Count(context.Background(), -1<<40, 1<<40); err != nil || n != 1<<12 {
		t.Fatalf("cancelled delete leaked: Count = (%d, %v)", n, err)
	}
}

// TestWriteParkUnparksOnCancel: a writer parked behind a structural
// seal unparks with ctx.Err() when cancelled instead of waiting for
// the successor map.
func TestWriteParkUnparksOnCancel(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 9)
	c := New(d.Values, Options{Shards: 2, Seed: 5,
		Index: crackindex.Options{Latching: crackindex.LatchPiece}})
	m := c.m.Load()
	p := m.shards[0]
	p.seal() // structural reroute in progress, no successor published

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Insert(ctx, p.loVal+1)
	if err != context.DeadlineExceeded {
		t.Fatalf("Insert = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("parked writer waited %v past a 20ms deadline", waited)
	}
	p.unseal()
	if err := c.Insert(context.Background(), p.loVal+1); err != nil {
		t.Fatalf("post-unseal Insert: %v", err)
	}
}
