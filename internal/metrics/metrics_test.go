package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("Load = %d", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("Load = %d", c.Load())
	}
}

func TestDurationCounter(t *testing.T) {
	var d DurationCounter
	d.Add(time.Second)
	d.Add(500 * time.Millisecond)
	if d.Load() != 1500*time.Millisecond {
		t.Fatalf("Load = %v", d.Load())
	}
}

func TestSeriesAggregates(t *testing.T) {
	s := Series{Costs: []QueryCost{
		{Seq: 2, Response: 30 * time.Millisecond, Wait: 3 * time.Millisecond, Crack: 1 * time.Millisecond, Conflicts: 1},
		{Seq: 0, Response: 10 * time.Millisecond, Wait: 1 * time.Millisecond, Crack: 5 * time.Millisecond, Conflicts: 2},
		{Seq: 1, Response: 20 * time.Millisecond, Wait: 2 * time.Millisecond, Crack: 3 * time.Millisecond},
	}}
	if s.Total() != 60*time.Millisecond {
		t.Fatalf("Total = %v", s.Total())
	}
	if s.TotalWait() != 6*time.Millisecond {
		t.Fatalf("TotalWait = %v", s.TotalWait())
	}
	if s.TotalCrack() != 9*time.Millisecond {
		t.Fatalf("TotalCrack = %v", s.TotalCrack())
	}
	if s.TotalConflicts() != 3 {
		t.Fatalf("TotalConflicts = %d", s.TotalConflicts())
	}
	s.SortBySeq()
	if s.Costs[0].Seq != 0 || s.Costs[2].Seq != 2 {
		t.Fatal("SortBySeq failed")
	}
	avg := s.RunningAverage()
	if avg[0] != 10*time.Millisecond || avg[1] != 15*time.Millisecond || avg[2] != 20*time.Millisecond {
		t.Fatalf("RunningAverage = %v", avg)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.Add("scan", "3.8s")
	tab.Add("crack-with-long-name", "75ms")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
	// All rows padded to the same width.
	if len(lines[2]) > len(lines[3])+1 && len(lines[3]) > len(lines[2])+1 {
		t.Fatal("column alignment broken")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2500 * time.Millisecond, "2.500s"},
		{12 * time.Millisecond, "12.000ms"},
		{3400 * time.Nanosecond, "3.400us"},
		{999 * time.Nanosecond, "999ns"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
