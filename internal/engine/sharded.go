package engine

import (
	"context"

	"adaptix/internal/crackindex"
)

// AggregateSource is the cost-reporting query surface shared by the
// cracked column (via SourceFromIndex) and the sharded column
// (shard.Column): context-aware Count/Sum with a merged per-operation
// cost breakdown. Declared as an interface here so the engine package
// does not depend on the shard package (which sits above crackindex).
type AggregateSource interface {
	// Count evaluates Q1: select count(*) where lo <= A < hi.
	Count(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error)
	// Sum evaluates Q2: select sum(A) where lo <= A < hi.
	Sum(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error)
}

// indexSource adapts a cracked-column index to the AggregateSource
// surface (crackindex keeps plain and ctx-aware method pairs apart).
type indexSource struct{ ix *crackindex.Index }

// SourceFromIndex presents a cracked-column index as an
// AggregateSource.
func SourceFromIndex(ix *crackindex.Index) AggregateSource { return indexSource{ix} }

// Count implements AggregateSource.
func (s indexSource) Count(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error) {
	return s.ix.CountCtx(ctx, lo, hi)
}

// Sum implements AggregateSource.
func (s indexSource) Sum(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error) {
	return s.ix.SumCtx(ctx, lo, hi)
}

// adapter implements Engine over any AggregateSource; Crack and
// Sharded share it.
type adapter struct {
	src  AggregateSource
	name string
}

// Name implements Engine.
func (a *adapter) Name() string { return a.name }

// Count implements Engine.
func (a *adapter) Count(ctx context.Context, lo, hi int64) (Result, error) {
	v, st, err := a.src.Count(ctx, lo, hi)
	if err != nil {
		return Result{}, err
	}
	return fromOpStats(v, st), nil
}

// Sum implements Engine.
func (a *adapter) Sum(ctx context.Context, lo, hi int64) (Result, error) {
	v, st, err := a.src.Sum(ctx, lo, hi)
	if err != nil {
		return Result{}, err
	}
	return fromOpStats(v, st), nil
}

// Sharded adapts a sharded column to the Engine interface, so the
// harness, metrics, and experiments drive it unchanged.
type Sharded struct {
	adapter
}

// NewSharded wraps src; name defaults to "sharded".
func NewSharded(src AggregateSource) *Sharded {
	return &Sharded{adapter{src: src, name: "sharded"}}
}

// NewShardedNamed wraps src with an explicit display name (used by the
// ablation benchmarks to distinguish shard counts).
func NewShardedNamed(src AggregateSource, name string) *Sharded {
	return &Sharded{adapter{src: src, name: name}}
}

// engineSource inverts adapter: it presents any Engine as an
// AggregateSource.
type engineSource struct{ e Engine }

// SourceFromEngine adapts an Engine to the AggregateSource surface, so
// the sharded column can build its per-shard indexes from engines that
// only implement Engine — adaptive merging, hybrid crack-sort — via
// shard.Options.Source.
func SourceFromEngine(e Engine) AggregateSource { return engineSource{e} }

// Count implements AggregateSource over the wrapped engine.
func (s engineSource) Count(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error) {
	return toOpStats(s.e.Count(ctx, lo, hi))
}

// Sum implements AggregateSource over the wrapped engine.
func (s engineSource) Sum(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error) {
	return toOpStats(s.e.Sum(ctx, lo, hi))
}

func toOpStats(r Result, err error) (int64, crackindex.OpStats, error) {
	if err != nil {
		return 0, crackindex.OpStats{}, err
	}
	return r.Value, crackindex.OpStats{
		Wait:      r.Wait,
		Crack:     r.Refine,
		Critical:  r.Critical,
		Conflicts: r.Conflicts,
		Epochs:    r.Epochs,
		Skipped:   r.Skipped,
	}, nil
}
