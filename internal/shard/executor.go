// Fan-out query execution: a range query is routed to the shards whose
// assigned ranges overlap the predicate, the per-shard sub-queries run
// in parallel on a bounded worker pool, and the partial answers and
// cost breakdowns merge into one result.
//
// Every query carries a context. Cancellation before dispatch returns
// ctx.Err() without touching any shard; cancellation mid-flight stops
// the remaining sub-queries — a worker that has not yet started its
// shard skips it entirely, and one parked on a piece latch inside a
// shard unparks promptly (the latch waits are context-aware all the
// way down). A query that returns a non-nil error returns no answer.
package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"adaptix/internal/crackindex"
)

// Count evaluates Q1 — select count(*) where lo <= A < hi — fanning
// out to the overlapping shards and cracking each as a side effect.
// The returned OpStats sums the sub-queries' wait/crack time and
// conflicts (total work across cores) and reports the slowest
// sub-query's elapsed time as Critical (the fan-out critical path).
func (c *Column) Count(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error) {
	return c.query(ctx, false, lo, hi)
}

// Sum evaluates Q2 — select sum(A) where lo <= A < hi — fanning out to
// the overlapping shards and cracking each as a side effect.
func (c *Column) Sum(ctx context.Context, lo, hi int64) (int64, crackindex.OpStats, error) {
	return c.query(ctx, true, lo, hi)
}

type subResult struct {
	val     int64
	st      crackindex.OpStats
	err     error
	elapsed time.Duration
}

// queryScratch holds one query's routing and fan-out state. The
// buffers are pooled and reused across queries, so the warm query path
// performs no per-query slice allocation at all — the routing loop
// appends into a slice that already has capacity, and the fan-out
// result array is resliced rather than remade. The fan-out parameters
// (ctx, predicate, result slots) live here too so the pool workers run
// a plain method instead of a closure: a closure would capture the
// routing slices and force their headers to heap on every query,
// including the single-target fast path that spawns no goroutine.
//
// Ownership rules: the scratch belongs to exactly one query from get
// to release; worker goroutines write only their own res[i] slot and
// never touch the scratch past wg.Wait; release clears every pointer
// so a pooled scratch cannot keep replaced shards, contexts, or errors
// alive.
type queryScratch struct {
	targets []*part
	res     []subResult
	wg      sync.WaitGroup
	ctx     context.Context
	done    <-chan struct{}
	wantSum bool
	lo, hi  int64
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// release clears the pointer-bearing fields and returns the scratch,
// buffer capacity intact, to the pool.
func (sc *queryScratch) release() {
	clear(sc.targets)
	sc.targets = sc.targets[:0]
	clear(sc.res)
	sc.res = sc.res[:0]
	sc.ctx, sc.done = nil, nil
	scratchPool.Put(sc)
}

// runSub is the fan-out worker: one pool-bounded sub-query against
// targets[i], its result written to the worker's own res[i] slot. A
// worker whose context is cancelled before it wins a pool slot — or
// before it starts — skips its shard entirely.
func (c *Column) runSub(sc *queryScratch, i int) {
	defer sc.wg.Done()
	if sc.done != nil {
		select {
		case c.sem <- struct{}{}:
		case <-sc.done:
			sc.res[i] = subResult{err: sc.ctx.Err()}
			return
		}
	} else {
		c.sem <- struct{}{}
	}
	defer func() { <-c.sem }()
	if err := sc.ctx.Err(); err != nil {
		sc.res[i] = subResult{err: err}
		return
	}
	t0 := time.Now()
	v, st, err := sc.targets[i].sub(sc.ctx, sc.wantSum, sc.lo, sc.hi)
	sc.res[i] = subResult{val: v, st: st, err: err, elapsed: time.Since(t0)}
}

func (c *Column) query(ctx context.Context, wantSum bool, lo, hi int64) (int64, crackindex.OpStats, error) {
	var merged crackindex.OpStats
	if lo >= hi {
		return 0, merged, nil
	}
	// Cancelled before dispatch: no sub-query runs, no shard refines.
	if err := ctx.Err(); err != nil {
		return 0, merged, err
	}
	// Observability: span is zero (and the closing time.Since skipped)
	// unless tracing sampled this query; the per-query cost histograms
	// record regardless, from numbers the query computed anyway.
	ob := c.opts.Obs
	span := ob.QueryStart()
	// One immutable shard-map snapshot per query: a concurrent
	// structural change publishes a successor map, but the parts of
	// this snapshot stay intact and correct, so the query never blocks
	// on a rebalance.
	m := c.m.Load()

	// Route: the shards whose assigned ranges overlap [lo, hi). Shards
	// the predicate fully covers are answered from the precomputed
	// per-shard aggregates — no latch, no index touch — so a broad
	// query only pays index work in its two fringe shards. The load
	// order (rows/total before min/max) is the reader half of the
	// ordering contract in update.go.
	var total int64
	var covered int64
	sc := scratchPool.Get().(*queryScratch)
	defer sc.release()
	targets := sc.targets
	// First shard whose upper bound exceeds lo: the first shard that
	// can contain values >= lo.
	start := sort.Search(len(m.bounds), func(i int) bool { return m.bounds[i] > lo })
	for i := start; i < len(m.shards) && m.shards[i].loVal < hi; i++ {
		s := m.shards[i]
		rows := s.agg.rows.Load()
		tot := s.agg.total.Load()
		mn, mx := s.agg.minA.Load(), s.agg.maxA.Load()
		if rows == 0 || mx < lo || mn >= hi {
			continue // no qualifying values in this shard
		}
		if lo <= mn && hi > mx {
			if wantSum {
				total += tot
			} else {
				total += rows
			}
			covered++
			continue
		}
		targets = append(targets, s)
	}
	sc.targets = targets // keep any growth for the next query

	switch len(targets) {
	case 0:
		ob.RecordQueryProfile(lo, hi, covered, covered, 0)
		ob.RecordQuery(span, 0, 0, 0)
		c.capture(ctx, wantSum, lo, hi, total, 0, 0)
		return total, merged, nil
	case 1:
		t0 := time.Now()
		v, st, err := targets[0].sub(ctx, wantSum, lo, hi)
		if err != nil {
			return 0, st, err
		}
		st.Critical = time.Since(t0)
		ob.RecordQueryProfile(lo, hi, covered+1, covered, st.Touched)
		ob.RecordQuery(span, st.Wait, st.Crack, st.Critical)
		c.capture(ctx, wantSum, lo, hi, total+v, st.Touched, st.Epochs)
		return total + v, st, nil
	}

	// Fan out: the caller's goroutine executes the first sub-query
	// itself; the rest run on pool workers. Workers acquire a slot
	// before touching their shard and release it when done, bounding
	// the fan-out amplification across all concurrent queries without
	// ever throttling the clients themselves (deadlock-free: a caller
	// waiting in wg.Wait holds no slot). A worker whose context is
	// cancelled before it wins a slot — or before it starts — skips its
	// shard entirely: the remaining sub-queries of a cancelled query
	// are never executed.
	res := sc.res
	if cap(res) >= len(targets) {
		res = res[:len(targets)]
	} else {
		res = make([]subResult, len(targets))
	}
	sc.res = res
	sc.ctx, sc.done = ctx, ctx.Done()
	sc.wantSum, sc.lo, sc.hi = wantSum, lo, hi
	for i := 1; i < len(targets); i++ {
		sc.wg.Add(1)
		go c.runSub(sc, i)
	}
	t0 := time.Now()
	v, st, err := targets[0].sub(ctx, wantSum, lo, hi)
	res[0] = subResult{val: v, st: st, err: err, elapsed: time.Since(t0)}
	sc.wg.Wait()

	for _, r := range res {
		total += r.val
		merged.Wait += r.st.Wait
		merged.Crack += r.st.Crack
		merged.Touched += r.st.Touched
		merged.Conflicts += r.st.Conflicts
		merged.Skipped = merged.Skipped || r.st.Skipped
		if r.st.Epochs > merged.Epochs {
			merged.Epochs = r.st.Epochs
		}
		if r.elapsed > merged.Critical {
			merged.Critical = r.elapsed
		}
	}
	for _, r := range res {
		if r.err != nil {
			return 0, merged, r.err
		}
	}
	ob.RecordQueryProfile(lo, hi, covered+int64(len(targets)), covered, merged.Touched)
	ob.RecordQuery(span, merged.Wait, merged.Crack, merged.Critical)
	c.capture(ctx, wantSum, lo, hi, total, merged.Touched, merged.Epochs)
	return total, merged, nil
}

// capture hands one successful query to the workload recorder: bounds,
// the answer (the replay checksum), touched rows, epoch depth, and the
// ctx query tag. The inactive path is a nil check plus one atomic
// load, so it rides every query inside the 0-alloc and overhead gates;
// the tag's ctx.Value lookup is paid only when capture is on.
func (c *Column) capture(ctx context.Context, wantSum bool, lo, hi, result, touched int64, epochs int) {
	if cr := c.opts.Capture; cr.Active() {
		cr.RecordRead(crackindex.Tag(ctx), wantSum, lo, hi, result, touched, epochs)
	}
}

// sub runs one per-shard sub-query with the predicate clamped to the
// shard's assigned range, so crack boundaries always land inside the
// shard's own value domain. The base answer from the shard's index is
// adjusted by the shard's epoch chain — the snapshot-read rule: base
// part plus every visible epoch, exact even while a sealed prefix is
// being merged in the background.
func (s *part) sub(ctx context.Context, wantSum bool, lo, hi int64) (int64, crackindex.OpStats, error) {
	if lo < s.loVal {
		lo = s.loVal
	}
	if hi > s.hiVal {
		hi = s.hiVal
	}
	var v int64
	var st crackindex.OpStats
	var err error
	if wantSum {
		v, st, err = s.src.Sum(ctx, lo, hi)
	} else {
		v, st, err = s.src.Count(ctx, lo, hi)
	}
	if err != nil {
		return 0, st, err
	}
	if s.chain != nil {
		var adj int64
		if wantSum {
			adj, st.Epochs = s.chain.SumAdj(lo, hi)
		} else {
			adj, st.Epochs = s.chain.CountAdj(lo, hi)
		}
		v += adj
	}
	return v, st, nil
}
