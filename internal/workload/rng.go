// Package workload provides deterministic random number generation,
// data-set construction, and range-query stream generators for the
// adaptive-indexing experiments.
//
// The paper's set-up (§6) uses a table of unique, randomly distributed
// integers and streams of random range queries with a fixed selectivity.
// Everything here is deterministic given a seed so that experiment runs
// are reproducible and so that every engine in a comparison sees exactly
// the same query sequence, as in the paper ("for every run we use exactly
// the same queries and in the same order").
package workload

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is NOT safe for concurrent
// use; give each client its own RNG.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// Avoid the all-zero state, which is a fixed point for xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn called with n <= 0")
	}
	return int(r.Int64n(int64(n)))
}

// Int64n returns a uniform pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int64n called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation, with rejection to
	// remove modulo bias.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int64(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	tLo, tHi := t&mask32, t>>32
	t = aLo*bHi + tLo
	lo |= (t & mask32) << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm fills out with a pseudo-random permutation of [0, len(out)).
func (r *RNG) Perm(out []int64) {
	for i := range out {
		out[i] = int64(i)
	}
	r.Shuffle(out)
}

// Shuffle permutes vals in place (Fisher-Yates).
func (r *RNG) Shuffle(vals []int64) {
	for i := len(vals) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		vals[i], vals[j] = vals[j], vals[i]
	}
}
