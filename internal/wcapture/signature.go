// The streaming workload characterizer's readout: the live signature
// of the query/write stream the recorder has sampled, cheap enough to
// serve on every Stats() call and stable enough to pin in a
// golden-schema test (/workload).
package wcapture

// Signature is the live workload signature: what kind of stream the
// index is facing, computed incrementally from the sampled records. A
// disabled recorder serves the schema-complete zero value.
type Signature struct {
	// Enabled reports whether capture is active (WithWorkloadCapture).
	Enabled bool `json:"enabled"`
	// Captured is the number of records captured (sampled in), reads
	// plus writes.
	Captured int64 `json:"captured"`
	// Dropped is the number of captured records lost to ring overflow
	// before the sink drained them (0 without a sink).
	Dropped int64 `json:"dropped"`
	// Reads and Writes split Captured by operation class.
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	// WriteFrac is Writes/Captured (0 before any capture).
	WriteFrac float64 `json:"write_frac"`
	// WidthP50 and WidthP99 are quantiles of the read predicate width
	// hi-lo in key units.
	WidthP50 int64 `json:"width_p50"`
	WidthP99 int64 `json:"width_p99"`
	// SelectivityP50 and SelectivityP99 are the width quantiles as a
	// fraction of the key domain (0 until SetDomain, i.e. on an index
	// created empty).
	SelectivityP50 float64 `json:"selectivity_p50"`
	SelectivityP99 float64 `json:"selectivity_p99"`
	// KeyJumpP50 and KeyJumpP99 are quantiles of the key-space
	// distance between consecutive reads' midpoints: small jumps mean
	// a focused scan, large ones a roaming workload.
	KeyJumpP50 int64 `json:"key_jump_p50"`
	KeyJumpP99 int64 `json:"key_jump_p99"`
	// Locality is the fraction of consecutive read pairs whose
	// midpoint jump stays within 1/64 of the key domain (0 until
	// SetDomain).
	Locality float64 `json:"locality"`
	// SeqScore is the sequentiality score: the fraction of consecutive
	// read pairs whose lower bound lands within one predicate width of
	// the previous read's upper bound. A sequential range sweep — the
	// stochastic-cracking adversary, standard cracking's worst case —
	// scores near 1; uniform random scores near 0.
	SeqScore float64 `json:"seq_score"`
}

// Signature returns the live workload signature. Nil-safe: a nil or
// disabled recorder returns the zero value (Enabled false), so
// Stats().Workload and the /workload route are always schema-complete.
func (r *Recorder) Signature() Signature {
	if r == nil {
		return Signature{}
	}
	sig := Signature{
		Enabled: r.enabled.Load() || r.slots != nil,
		Reads:   r.reads.Load(),
		Writes:  r.writes.Load(),
		Dropped: r.dropped.Load(),
	}
	sig.Captured = sig.Reads + sig.Writes
	if sig.Captured > 0 {
		sig.WriteFrac = float64(sig.Writes) / float64(sig.Captured)
	}
	ws := r.widthH.Snapshot()
	sig.WidthP50 = ws.Quantile(0.50)
	sig.WidthP99 = ws.Quantile(0.99)
	if dw := r.domainW.Load(); dw > 0 && sig.Reads > 0 {
		sig.SelectivityP50 = float64(sig.WidthP50) / float64(dw)
		sig.SelectivityP99 = float64(sig.WidthP99) / float64(dw)
	}
	js := r.jumpH.Snapshot()
	sig.KeyJumpP50 = js.Quantile(0.50)
	sig.KeyJumpP99 = js.Quantile(0.99)
	if pairs := r.pairs.Load(); pairs > 0 {
		sig.SeqScore = float64(r.seqHits.Load()) / float64(pairs)
		if r.domainW.Load() > 0 {
			sig.Locality = float64(r.localHits.Load()) / float64(pairs)
		}
	}
	return sig
}
