// Benchmarks regenerating every figure of the paper's §6 plus the
// design-choice ablations. Each BenchmarkFigNN_* family corresponds to
// one figure; cmd/figures runs the same experiments at full scale with
// tabular output. Benchmark scale is kept small (256k rows, 256
// queries) so `go test -bench=.` finishes in minutes; shapes — who
// wins, by what factor — are the reproduction target, not absolute
// numbers (see EXPERIMENTS.md).
package adaptix_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptix"
	"adaptix/internal/amerge"
	"adaptix/internal/avltree"
	"adaptix/internal/baseline"
	"adaptix/internal/cracker"
	"adaptix/internal/crackindex"
	"adaptix/internal/engine"
	"adaptix/internal/harness"
	"adaptix/internal/hybrid"
	"adaptix/internal/ingest"
	"adaptix/internal/latch"
	"adaptix/internal/metrics"
	"adaptix/internal/pbtree"
	"adaptix/internal/shard"
	"adaptix/internal/sideways"
	"adaptix/internal/workload"
)

const (
	benchRows    = 1 << 18
	benchQueries = 256
)

var benchData = sync.OnceValue(func() *workload.Dataset {
	return workload.NewUniqueUniform(benchRows, 42)
})

func benchQuerySet(kind workload.QueryKind, sel float64) []workload.Query {
	return workload.Fixed(workload.NewUniform(kind, int64(benchRows), sel, 7), benchQueries)
}

func crackEngine(opts crackindex.Options) func() engine.Engine {
	return func() engine.Engine {
		return engine.NewCrack(crackindex.New(benchData().Values, opts))
	}
}

// runEngine executes the whole query sequence once per benchmark
// iteration on a fresh engine (adaptive state must not leak between
// iterations).
func runEngine(b *testing.B, mk func() engine.Engine, qs []workload.Query, clients int) {
	b.Helper()
	b.ReportAllocs()
	var checksum int64
	for i := 0; i < b.N; i++ {
		run := harness.Execute(mk(), qs, clients)
		checksum += run.Checksum
	}
	if checksum == 0 {
		b.Fatal("zero checksum: engines computed nothing")
	}
}

// --- Figure 11: scan vs sort vs crack, 10 serial queries, sel 10% ---

func fig11Queries() []workload.Query {
	return workload.Fixed(workload.NewUniform(workload.Count, int64(benchRows), 0.10, 3), 10)
}

func BenchmarkFig11_Scan(b *testing.B) {
	runEngine(b, func() engine.Engine { return baseline.NewScan(benchData().Values) }, fig11Queries(), 1)
}

func BenchmarkFig11_Sort(b *testing.B) {
	runEngine(b, func() engine.Engine { return baseline.NewFullSort(benchData().Values) }, fig11Queries(), 1)
}

func BenchmarkFig11_Crack(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece}), fig11Queries(), 1)
}

// --- Figure 12: total time for the sequence at 1..8 clients, Q2 sel 0.01% ---

func benchFig12(b *testing.B, mk func() engine.Engine) {
	qs := benchQuerySet(workload.Sum, 0.0001)
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "Clients1", 2: "Clients2", 4: "Clients4", 8: "Clients8"}[clients], func(b *testing.B) {
			runEngine(b, mk, qs, clients)
		})
	}
}

func BenchmarkFig12_Scan(b *testing.B) {
	benchFig12(b, func() engine.Engine { return baseline.NewScan(benchData().Values) })
}

func BenchmarkFig12_Sort(b *testing.B) {
	benchFig12(b, func() engine.Engine { return baseline.NewFullSort(benchData().Values) })
}

func BenchmarkFig12_Crack(b *testing.B) {
	benchFig12(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece}))
}

// --- Figure 13: CC administration overhead, sequential ---

func BenchmarkFig13_CCEnabled(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece}),
		benchQuerySet(workload.Sum, 0.0001), 1)
}

func BenchmarkFig13_CCDisabled(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchNone}),
		benchQuerySet(workload.Sum, 0.0001), 1)
}

// --- Figure 14: latch granularity x query type x selectivity ---

func benchFig14(b *testing.B, kind workload.QueryKind, mode crackindex.LatchMode) {
	for _, sel := range []struct {
		name string
		frac float64
	}{{"Sel0.01pct", 0.0001}, {"Sel10pct", 0.10}, {"Sel50pct", 0.50}} {
		b.Run(sel.name, func(b *testing.B) {
			runEngine(b, crackEngine(crackindex.Options{Latching: mode}),
				benchQuerySet(kind, sel.frac), 4)
		})
	}
}

func BenchmarkFig14_Count_ColumnLatch(b *testing.B) {
	benchFig14(b, workload.Count, crackindex.LatchColumn)
}

func BenchmarkFig14_Count_PieceLatch(b *testing.B) {
	benchFig14(b, workload.Count, crackindex.LatchPiece)
}

func BenchmarkFig14_Sum_ColumnLatch(b *testing.B) {
	benchFig14(b, workload.Sum, crackindex.LatchColumn)
}

func BenchmarkFig14_Sum_PieceLatch(b *testing.B) {
	benchFig14(b, workload.Sum, crackindex.LatchPiece)
}

// --- Figure 15: wait/crack decay under 8 clients, sel 50% ---

func BenchmarkFig15_Breakdown(b *testing.B) {
	qs := benchQuerySet(workload.Sum, 0.50)
	b.ReportAllocs()
	var crackDecay, waitDecay float64
	for i := 0; i < b.N; i++ {
		run := harness.Execute(crackEngine(crackindex.Options{Latching: crackindex.LatchPiece})(), qs, 8)
		q := len(run.Series.Costs) / 4
		var cf, cl, wf, wl int64
		for _, c := range run.Series.Costs[:q] {
			cf += int64(c.Crack)
			wf += int64(c.Wait)
		}
		for _, c := range run.Series.Costs[len(run.Series.Costs)-q:] {
			cl += int64(c.Crack)
			wl += int64(c.Wait)
		}
		if cf > 0 {
			crackDecay = float64(cl) / float64(cf)
		}
		if wf > 0 {
			waitDecay = float64(wl) / float64(wf)
		}
	}
	b.ReportMetric(crackDecay, "crack-decay")
	b.ReportMetric(waitDecay, "wait-decay")
}

// --- Ablations: the design choices DESIGN.md calls out ---

func BenchmarkAblation_Scheduling_MiddleFirst(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, Scheduling: latch.MiddleFirst}),
		benchQuerySet(workload.Sum, 0.001), 8)
}

func BenchmarkAblation_Scheduling_FIFO(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, Scheduling: latch.FIFO}),
		benchQuerySet(workload.Sum, 0.001), 8)
}

func BenchmarkAblation_Bounds_Serial(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece}),
		benchQuerySet(workload.Sum, 0.001), 4)
}

func BenchmarkAblation_Bounds_Parallel(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, ParallelBounds: true}),
		benchQuerySet(workload.Sum, 0.001), 4)
}

func BenchmarkAblation_Layout_Split(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, Layout: cracker.LayoutSplit}),
		benchQuerySet(workload.Sum, 0.001), 1)
}

func BenchmarkAblation_Layout_Pairs(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, Layout: cracker.LayoutPairs}),
		benchQuerySet(workload.Sum, 0.001), 1)
}

func BenchmarkAblation_Conflict_Wait(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, OnConflict: crackindex.Wait}),
		benchQuerySet(workload.Sum, 0.001), 8)
}

func BenchmarkAblation_Conflict_Skip(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, OnConflict: crackindex.Skip}),
		benchQuerySet(workload.Sum, 0.001), 8)
}

func BenchmarkAblation_GroupCracking_Off(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece}),
		benchQuerySet(workload.Sum, 0.001), 8)
}

func BenchmarkAblation_GroupCracking_On(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, GroupCracking: true}),
		benchQuerySet(workload.Sum, 0.001), 8)
}

// BenchmarkUpdates_MixedWorkload interleaves differential updates with
// range queries: the structure keeps refining while contents change.
func BenchmarkUpdates_MixedWorkload(b *testing.B) {
	d := benchData()
	qs := benchQuerySet(workload.Sum, 0.001)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := crackindex.New(d.Values, crackindex.Options{Latching: crackindex.LatchPiece})
		for j, q := range qs {
			ix.Sum(q.Lo, q.Hi)
			if j%8 == 0 {
				ix.Insert(q.Lo)
			}
			if j%16 == 0 {
				ix.DeleteValue(q.Hi - 1)
			}
		}
	}
}

// --- Adaptive method comparison on one concurrent workload ---

func BenchmarkMethod_Crack(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece}),
		benchQuerySet(workload.Sum, 0.001), 4)
}

func BenchmarkMethod_AdaptiveMerge(b *testing.B) {
	runEngine(b, func() engine.Engine { return amerge.New(benchData().Values, amerge.Options{}) },
		benchQuerySet(workload.Sum, 0.001), 4)
}

func BenchmarkMethod_Hybrid(b *testing.B) {
	runEngine(b, func() engine.Engine { return hybrid.New(benchData().Values, hybrid.Options{}) },
		benchQuerySet(workload.Sum, 0.001), 4)
}

func BenchmarkAblation_Stochastic_Off(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece}),
		benchQuerySet(workload.Count, 0.0001), 1)
}

func BenchmarkAblation_Stochastic_On(b *testing.B) {
	runEngine(b, crackEngine(crackindex.Options{Latching: crackindex.LatchPiece, Stochastic: true}),
		benchQuerySet(workload.Count, 0.0001), 1)
}

// Sideways cracking vs the Figure 6 fetch plan for
// select sum(B) where lo <= A < hi.
func benchTwoColumnPlan(b *testing.B, useSideways bool) {
	d := benchData()
	d2 := workload.NewUniqueUniform(benchRows, 43)
	qs := benchQuerySet(workload.Sum, 0.001)
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		if useSideways {
			m := sideways.NewMap(d.Values, d2.Values, sideways.Options{})
			for _, q := range qs {
				s, _ := m.SumTargetWhere(q.Lo, q.Hi)
				sink += s
			}
		} else {
			ix := crackindex.New(d.Values, crackindex.Options{Latching: crackindex.LatchPiece})
			for _, q := range qs {
				ids, _ := ix.SelectRowIDs(q.Lo, q.Hi)
				for _, id := range ids {
					sink += d2.Values[id]
				}
			}
		}
	}
	if sink == 0 {
		b.Fatal("zero checksum")
	}
}

func BenchmarkPlan_SelectFetchSum(b *testing.B) { benchTwoColumnPlan(b, false) }
func BenchmarkPlan_Sideways(b *testing.B)       { benchTwoColumnPlan(b, true) }

// --- Sharded parallel cracking: multi-core scaling sweep ---
//
// Shard counts {1, 2, 4, 8} x clients {1, 4, 16} chart the scaling
// curve of the internal/shard fan-out executor against the
// single-column crack engine (the Shards1 rows, which pay only the
// routing overhead).

func benchShardedEngine(shards int) func() engine.Engine {
	return func() engine.Engine {
		return engine.NewSharded(shard.New(benchData().Values, shard.Options{
			Shards: shards, Seed: 77,
			Index: crackindex.Options{Latching: crackindex.LatchPiece},
		}))
	}
}

func benchShardSweep(b *testing.B, shards int) {
	qs := benchQuerySet(workload.Sum, 0.001)
	for _, clients := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "Clients1", 4: "Clients4", 16: "Clients16"}[clients], func(b *testing.B) {
			runEngine(b, benchShardedEngine(shards), qs, clients)
		})
	}
}

func BenchmarkSharded_Shards1(b *testing.B) { benchShardSweep(b, 1) }
func BenchmarkSharded_Shards2(b *testing.B) { benchShardSweep(b, 2) }
func BenchmarkSharded_Shards4(b *testing.B) { benchShardSweep(b, 4) }
func BenchmarkSharded_Shards8(b *testing.B) { benchShardSweep(b, 8) }

// BenchmarkSharded_WideRanges stresses the fan-out path itself: 10%
// selectivity ranges overlap several shards per query, so partial
// results and OpStats merge on every call.
func BenchmarkSharded_WideRanges(b *testing.B) {
	runEngine(b, benchShardedEngine(8), benchQuerySet(workload.Sum, 0.10), 4)
}

// --- Mixed read/write workload through internal/ingest ---
//
// Write fractions {0, 10%, 50%} x clients {1, 4, 16} over the sharded
// column with an active write-path coordinator: the write side routes
// into per-shard differential files and the background worker
// group-applies and rebalances while the read side keeps cracking.

func benchIngestMix(b *testing.B, writeFrac float64) {
	d := benchData()
	for _, clients := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "Clients1", 4: "Clients4", 16: "Clients16"}[clients], func(b *testing.B) {
			b.ReportAllocs()
			const opsPerClient = 256
			for i := 0; i < b.N; i++ {
				col := shard.New(d.Values, shard.Options{
					Shards: 8, Seed: 77,
					Index: crackindex.Options{Latching: crackindex.LatchPiece},
				})
				g := ingest.New(col, ingest.Options{ApplyThreshold: 512})
				g.Start()
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						r := workload.NewRNG(uint64(1000 + c))
						gen := workload.NewUniform(workload.Sum, int64(benchRows), 0.001, uint64(50+c))
						inserts := 0
						for j := 0; j < opsPerClient; j++ {
							if float64(r.Intn(1000))/1000 < writeFrac {
								if j%2 == 0 {
									_ = g.Insert(context.Background(), int64(benchRows+c*opsPerClient+inserts))
									inserts++
								} else {
									_, _ = g.DeleteValue(context.Background(), r.Int64n(int64(benchRows)))
								}
								continue
							}
							q := gen.Next()
							col.Sum(context.Background(), q.Lo, q.Hi)
						}
					}(c)
				}
				wg.Wait()
				g.Close()
			}
		})
	}
}

func BenchmarkIngest_Write0pct(b *testing.B)  { benchIngestMix(b, 0) }
func BenchmarkIngest_Write10pct(b *testing.B) { benchIngestMix(b, 0.10) }
func BenchmarkIngest_Write50pct(b *testing.B) { benchIngestMix(b, 0.50) }

// --- Microbenchmarks of the substrates ---

func BenchmarkMicro_CrackInTwo_Split(b *testing.B) {
	benchCrackInTwo(b, cracker.LayoutSplit)
}

func BenchmarkMicro_CrackInTwo_Pairs(b *testing.B) {
	benchCrackInTwo(b, cracker.LayoutPairs)
}

func benchCrackInTwo(b *testing.B, layout cracker.Layout) {
	d := benchData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := cracker.New(d.Values, layout)
		b.StartTimer()
		a.CrackInTwo(0, a.Len(), int64(benchRows/2))
	}
	b.SetBytes(int64(benchRows * 8))
}

func BenchmarkMicro_CrackInThree(b *testing.B) {
	d := benchData()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := cracker.New(d.Values, cracker.LayoutSplit)
		b.StartTimer()
		a.CrackInThree(0, a.Len(), int64(benchRows/4), int64(3*benchRows/4))
	}
	b.SetBytes(int64(benchRows * 8))
}

func BenchmarkMicro_AVLInsert(b *testing.B) {
	r := workload.NewRNG(5)
	tr := &avltree.Tree[int]{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(r.Int63()%1_000_000, i)
	}
}

func BenchmarkMicro_PBTreeInsert(b *testing.B) {
	r := workload.NewRNG(9)
	tr := pbtree.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(pbtree.Entry{Part: int32(i % 8), Key: r.Int63() % 1_000_000, Row: uint32(i)})
	}
}

func BenchmarkMicro_LatchUncontended(b *testing.B) {
	l := latch.New(latch.MiddleFirst)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Lock(0)
		l.Unlock()
	}
}

func BenchmarkMicro_LatchReadShared(b *testing.B) {
	l := latch.New(latch.MiddleFirst)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.RLock()
			l.RUnlock()
		}
	})
}

// --- Public API smoke benchmark (quickstart path) ---

func BenchmarkPublicAPI_SumQueries(b *testing.B) {
	d := benchData()
	qs := adaptix.UniformQueries(adaptix.SumQuery, int64(benchRows), 0.01, 11, benchQueries)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix, err := adaptix.New(d.Values, adaptix.WithShards(1),
			adaptix.WithCrackOptions(adaptix.CrackOptions{Latching: adaptix.LatchPiece}))
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range qs {
			if _, err := ix.Sum(ctx, q.Lo, q.Hi); err != nil {
				b.Fatal(err)
			}
		}
		ix.Close()
	}
}

// --- Context overhead: the Background fast path must be free ---

// BenchmarkContextOverhead_Plain vs _Background quantify the cost of
// the context plumbing on a fully refined index: the Background path
// takes the uncancellable fast path everywhere, so the two must be
// indistinguishable (the satellite acceptance for the context-aware
// API). _Deadline measures the (still small) cost of a live deadline.
func benchCtxOverhead(b *testing.B, q func(ix *crackindex.Index, lo, hi int64)) {
	d := benchData()
	ix := crackindex.New(d.Values, crackindex.Options{Latching: crackindex.LatchPiece})
	for _, qq := range benchQuerySet(workload.Sum, 0.001) {
		ix.Sum(qq.Lo, qq.Hi) // refine fully so per-query work is minimal
	}
	qs := benchQuerySet(workload.Sum, 0.001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qq := qs[i%len(qs)]
		q(ix, qq.Lo, qq.Hi)
	}
}

func BenchmarkContextOverhead_Plain(b *testing.B) {
	benchCtxOverhead(b, func(ix *crackindex.Index, lo, hi int64) {
		ix.Sum(lo, hi)
	})
}

func BenchmarkContextOverhead_Background(b *testing.B) {
	ctx := context.Background()
	benchCtxOverhead(b, func(ix *crackindex.Index, lo, hi int64) {
		ix.SumCtx(ctx, lo, hi)
	})
}

func BenchmarkContextOverhead_Deadline(b *testing.B) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	benchCtxOverhead(b, func(ix *crackindex.Index, lo, hi int64) {
		ix.SumCtx(ctx, lo, hi)
	})
}

// --- Epoch write path: writer latency during group-apply merges ---

// benchWriteDuringMerge measures routed-write latency while a
// background goroutine forces group-apply merges continuously — the
// scenario the epoch chain exists for. With park=false a merge seals
// only the current epoch and a writer pays an epoch append; with
// park=true (the legacy sealed-differential baseline) a writer racing
// a merge parks for the whole shard rebuild, which shows up as a heavy
// latency tail.
func benchWriteDuringMerge(b *testing.B, park bool) {
	d := benchData()
	col := shard.New(d.Values, shard.Options{
		Shards: 4, Seed: 5,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	g := ingest.New(col, ingest.Options{
		ApplyThreshold: 1 << 30, MinShardRows: 1 << 30, ParkOnApply: park,
	})
	stop := make(chan struct{})
	var merger sync.WaitGroup
	merger.Add(1)
	go func() {
		defer merger.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for s := 0; s < col.NumShards(); s++ {
				if park {
					col.ApplyShardParked(s)
				} else {
					col.ApplyShard(s)
				}
			}
		}
	}()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := g.Insert(context.Background(), int64(benchRows)+next.Add(1)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	merger.Wait()
}

func BenchmarkEpochWrite_DuringMerge(b *testing.B) { benchWriteDuringMerge(b, false) }

func BenchmarkEpochWrite_DuringMerge_Parked(b *testing.B) { benchWriteDuringMerge(b, true) }

// --- Observability overhead: none vs disabled tracing vs enabled ---

// benchObsQueries measures steady-state query cost on a fully refined
// sharded column (refinement excluded from the timed loop, so the
// fixed per-query cost — and any observability overhead on it —
// dominates). Three variants isolate the two costs:
//
//	Off       no observer at all: the pre-instrumentation baseline
//	Disabled  observer attached, tracing off — the default facade
//	          state: the always-on histograms record (a handful of
//	          uncontended atomic adds on already-computed values)
//	Enabled   tracing on, every query sampled: adds two clock reads,
//	          the end-to-end histogram, and a flight-recorder write
//
// The CI overhead gate (TestObsOverheadGuard) asserts Disabled stays
// within 5% of Off. Enabled at SampleEvery=1 is the worst case by
// construction (these fully-refined queries run in well under a
// microsecond, so two clock reads are a visible fraction); the
// sampling knob exists precisely to amortize that.
func benchObsQueries(b *testing.B, ob *metrics.Observer) {
	d := benchData()
	qs := benchQuerySet(workload.Sum, 0.001)
	col := shard.New(d.Values, shard.Options{
		Shards: 4, Seed: 77,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
		Obs:   ob,
	})
	ctx := context.Background()
	for _, q := range qs {
		if _, _, err := col.Sum(ctx, q.Lo, q.Hi); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, _, err := col.Sum(ctx, q.Lo, q.Hi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsOverhead_Off(b *testing.B) {
	benchObsQueries(b, nil)
}

func BenchmarkObsOverhead_Disabled(b *testing.B) {
	benchObsQueries(b, metrics.NewObserver(metrics.ObserverOptions{}))
}

func BenchmarkObsOverhead_Enabled(b *testing.B) {
	ob := metrics.NewObserver(metrics.ObserverOptions{})
	ob.EnableTracing(true)
	benchObsQueries(b, ob)
}
