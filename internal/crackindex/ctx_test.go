package crackindex

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestCountCtxBackground: the Background path answers identically to
// the plain surface.
func TestCountCtxBackground(t *testing.T) {
	ix := New(seq(0, 10000), Options{Latching: LatchPiece})
	n, _, err := ix.CountCtx(context.Background(), 100, 900)
	if err != nil {
		t.Fatal(err)
	}
	if n != 800 {
		t.Fatalf("Count = %d, want 800", n)
	}
	s, _, err := ix.SumCtx(context.Background(), 100, 900)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64((100 + 899) * 800 / 2); s != want {
		t.Fatalf("Sum = %d, want %d", s, want)
	}
}

// TestCountCtxCancelledBeforeDispatch: a context cancelled before the
// query starts returns ctx.Err() without initializing or refining the
// index.
func TestCountCtxCancelledBeforeDispatch(t *testing.T) {
	ix := New(seq(0, 10000), Options{Latching: LatchPiece})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ix.CountCtx(ctx, 100, 900); err != context.Canceled {
		t.Fatalf("CountCtx = %v, want Canceled", err)
	}
	if ix.Initialized() {
		t.Fatal("cancelled query initialized the index")
	}
	if ix.Stats().Cracks.Load() != 0 {
		t.Fatal("cancelled query cracked the index")
	}
}

// TestSumCtxDeadlineWhileParked: a query whose deadline expires while
// it is parked on a piece latch unparks promptly and reports the
// context error. The latch is held hostage by a tracer callback that
// blocks the first query inside its cracking critical section.
func TestSumCtxDeadlineWhileParked(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 16)
	var blocking atomic.Bool
	blocking.Store(true)
	ix := New(seq(0, 100000), Options{
		Latching: LatchPiece,
		Tracer: func(e TraceEvent) {
			if blocking.Load() && e.Kind == TraceCracked {
				entered <- struct{}{}
				<-hold
			}
		},
	})

	// Query A cracks and blocks inside the critical section, holding
	// the head piece's write latch.
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		ix.Sum(40000, 60000)
	}()
	<-entered

	// Query B parks on the same piece's latch; its deadline must unpark
	// it long before A releases.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := ix.SumCtx(ctx, 45000, 55000)
	parked := time.Since(start)
	if err != context.DeadlineExceeded {
		t.Fatalf("SumCtx = %v, want DeadlineExceeded", err)
	}
	if parked > 5*time.Second {
		t.Fatalf("parked %v past a 30ms deadline", parked)
	}

	blocking.Store(false)
	close(hold)
	<-aDone

	// The index is fully usable afterwards.
	if n, _ := ix.Count(0, 100000); n != 100000 {
		t.Fatalf("post-expiry Count = %d", n)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// seq returns the integers [lo, hi) in order.
func seq(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, v)
	}
	return out
}
