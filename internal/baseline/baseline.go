// Package baseline implements the two non-adaptive comparison points
// of the paper's §6.1:
//
//   - Scan: the default case — every query scans the whole column with
//     a predicate; no indexing mechanism, no state, no concurrency
//     control needed ("purely read-only data access").
//   - FullSort: the traditional "very active" indexing approach — the
//     first query builds the complete index (sorts a copy of the
//     column) before answering; all later queries use binary search.
//     The build runs under a write latch so concurrent first queries
//     wait, exactly once.
//
// Both engines are safe for concurrent use. Queries honour their
// context: a cancelled context fails fast, and the long full scans
// check for cancellation periodically so a deadline bounds them too.
package baseline

import (
	"context"
	"sort"
	"sync"
	"time"

	"adaptix/internal/engine"
	"adaptix/internal/kernel"
)

// scanCheckEvery is the number of values scanned between context
// checks: frequent enough that a deadline bounds a scan to a fraction
// of a millisecond of overshoot, rare enough to cost nothing.
const scanCheckEvery = 1 << 16

// scanVals aggregates the qualifying values of vals with the
// branch-free chunked kernels, one scanCheckEvery-sized block at a
// time so the context check stays off the per-value path.
func scanVals(ctx context.Context, vals []int64, lo, hi int64, wantSum bool) (int64, error) {
	var res int64
	done := ctx.Done()
	for len(vals) > 0 {
		blk := vals
		if len(blk) > scanCheckEvery {
			blk = blk[:scanCheckEvery]
		}
		if wantSum {
			res += kernel.SumRange(blk, lo, hi)
		} else {
			res += kernel.CountRange(blk, lo, hi)
		}
		vals = vals[len(blk):]
		if done != nil && len(vals) > 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
	}
	return res, nil
}

// Scan answers every query by a full predicate scan of the column.
type Scan struct {
	vals []int64
}

// NewScan returns a scan engine over vals (not copied; treated
// read-only).
func NewScan(vals []int64) *Scan { return &Scan{vals: vals} }

// Name implements engine.Engine.
func (s *Scan) Name() string { return "scan" }

// Count implements engine.Engine by a full scan.
func (s *Scan) Count(ctx context.Context, lo, hi int64) (engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return engine.Result{}, err
	}
	n, err := scanVals(ctx, s.vals, lo, hi, false)
	return engine.Result{Value: n}, err
}

// Sum implements engine.Engine by a full scan.
func (s *Scan) Sum(ctx context.Context, lo, hi int64) (engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return engine.Result{}, err
	}
	sum, err := scanVals(ctx, s.vals, lo, hi, true)
	return engine.Result{Value: sum}, err
}

// Mutable is a scan engine whose contents can change: one mutex, one
// slice, full predicate scans. It is deliberately the dumbest possible
// implementation — the trivially correct comparison point the write-path
// agreement tests measure every adaptive engine against.
type Mutable struct {
	mu   sync.RWMutex
	vals []int64
}

// NewMutable returns a mutable scan engine over a copy of vals.
func NewMutable(vals []int64) *Mutable {
	return &Mutable{vals: append([]int64(nil), vals...)}
}

// Name implements engine.Engine.
func (m *Mutable) Name() string { return "scan-mutable" }

// Insert adds one instance of v.
func (m *Mutable) Insert(v int64) {
	m.mu.Lock()
	m.vals = append(m.vals, v)
	m.mu.Unlock()
}

// DeleteValue removes one instance of v, reporting whether one existed.
func (m *Mutable) DeleteValue(v int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, x := range m.vals {
		if x == v {
			m.vals[i] = m.vals[len(m.vals)-1]
			m.vals = m.vals[:len(m.vals)-1]
			return true
		}
	}
	return false
}

// Count implements engine.Engine by a locked full scan.
func (m *Mutable) Count(ctx context.Context, lo, hi int64) (engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return engine.Result{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, err := scanVals(ctx, m.vals, lo, hi, false)
	return engine.Result{Value: n}, err
}

// Sum implements engine.Engine by a locked full scan.
func (m *Mutable) Sum(ctx context.Context, lo, hi int64) (engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return engine.Result{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	sum, err := scanVals(ctx, m.vals, lo, hi, true)
	return engine.Result{Value: sum}, err
}

// FullSort sorts a copy of the column on first access, then answers
// queries by binary search over the sorted array.
type FullSort struct {
	base []int64

	mu     sync.RWMutex
	sorted []int64
}

// NewFullSort returns a full-index engine over vals (not copied until
// the first query builds the index).
func NewFullSort(vals []int64) *FullSort { return &FullSort{base: vals} }

// Name implements engine.Engine.
func (f *FullSort) Name() string { return "sort" }

// ensure builds the sorted copy exactly once; the builder charges the
// sort to its refinement time, concurrent callers charge wait time.
func (f *FullSort) ensure(res *engine.Result) []int64 {
	f.mu.RLock()
	s := f.sorted
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	start := time.Now()
	f.mu.Lock()
	if f.sorted == nil {
		s = make([]int64, len(f.base))
		copy(s, f.base)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		f.sorted = s
		f.mu.Unlock()
		res.Refine = time.Since(start)
		return s
	}
	s = f.sorted
	f.mu.Unlock()
	res.Wait = time.Since(start)
	res.Conflicts = 1
	return s
}

// Count implements engine.Engine by two binary searches.
func (f *FullSort) Count(ctx context.Context, lo, hi int64) (engine.Result, error) {
	var res engine.Result
	if err := ctx.Err(); err != nil {
		return res, err
	}
	s := f.ensure(&res)
	a := sort.Search(len(s), func(i int) bool { return s[i] >= lo })
	b := sort.Search(len(s), func(i int) bool { return s[i] >= hi })
	res.Value = int64(b - a)
	return res, nil
}

// Sum implements engine.Engine by binary search plus a scan of the
// qualifying sorted range.
func (f *FullSort) Sum(ctx context.Context, lo, hi int64) (engine.Result, error) {
	var res engine.Result
	if err := ctx.Err(); err != nil {
		return res, err
	}
	s := f.ensure(&res)
	a := sort.Search(len(s), func(i int) bool { return s[i] >= lo })
	b := sort.Search(len(s), func(i int) bool { return s[i] >= hi })
	res.Value = kernel.Sum(s[a:b])
	return res, nil
}
