// Quickstart: adaptive indexing in 60 seconds, one handle.
//
// Loads a column of 1M unique integers behind the unified
// adaptix.Index API, runs a handful of range queries, and shows how
// the index refines itself as a side effect: per-query response time
// drops while the number of index pieces grows. Then writes through
// the same handle (no separate write path to wire up) and finishes
// with the Figure 6 column-store plan (select on A, fetch B,
// aggregate).
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	"adaptix"
)

func main() {
	const n = 1 << 20
	ctx := context.Background()
	data := adaptix.NewUniqueDataset(n, 42)

	// One handle: database cracking with the paper's piece-latch
	// concurrency control, safe for concurrent use. A single shard
	// keeps this walk-through in the paper's original single-domain
	// setting; drop WithShards for one shard per CPU.
	ix, err := adaptix.New(data.Values,
		adaptix.WithShards(1),
		adaptix.WithCrackOptions(adaptix.CrackOptions{Latching: adaptix.LatchPiece}),
	)
	if err != nil {
		panic(err)
	}
	defer ix.Close()

	fmt.Println("== database cracking: queries refine the index as a side effect ==")
	queries := adaptix.UniformQueries(adaptix.SumQuery, data.Domain, 0.05, 7, 12)
	for i, q := range queries {
		start := time.Now()
		res, err := ix.Sum(ctx, q.Lo, q.Hi)
		if err != nil {
			panic(err)
		}
		pieces := 0
		for _, st := range ix.Stats().Shards {
			pieces += st.Pieces
		}
		fmt.Printf("q%-2d sum[%7d,%7d) = %14d   %9v  (refine %8v, pieces %d)\n",
			i+1, q.Lo, q.Hi, res.Value, time.Since(start).Round(time.Microsecond),
			res.Refine.Round(time.Microsecond), pieces)
	}
	st := ix.Stats().Shards[0]
	fmt.Printf("\nindex state: %d pieces, %d cracks, %d boundaries, %d conflicts\n",
		st.Pieces, st.Cracks, st.Boundaries, st.Conflicts)

	// The same handle takes writes: routed into differential epochs,
	// visible immediately, merged into the cracker array in the
	// background.
	fmt.Println("\n== writes through the same handle ==")
	for v := int64(n); v < n+1000; v++ {
		if err := ix.Insert(ctx, v); err != nil {
			panic(err)
		}
	}
	if _, err := ix.Delete(ctx, data.Values[0]); err != nil {
		panic(err)
	}
	res, err := ix.Count(ctx, 0, 2*n)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after 1000 inserts and 1 delete: count = %d (want %d)\n", res.Value, n+1000-1)

	// The Figure 6 plan: select sum(B) from R where lo <= A < hi.
	fmt.Println("\n== column-store plan: select sum(B) from R where 100k <= A < 200k ==")
	tab := adaptix.NewTable("R")
	if err := tab.AddColumn("A", data.Values); err != nil {
		panic(err)
	}
	b := adaptix.NewUniqueDataset(n, 43)
	if err := tab.AddColumn("B", b.Values); err != nil {
		panic(err)
	}
	ex := adaptix.NewExecutor(tab, adaptix.CrackOptions{Latching: adaptix.LatchPiece})
	for run := 1; run <= 3; run++ {
		start := time.Now()
		sum, _, err := ex.SumFetchWhere("B", "A", 100_000, 200_000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("run %d: sum(B) = %d   (%v)\n", run, sum, time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("\nonly column A was indexed (it carried the predicate); B was not:")
	if ixA, ok := ex.Index("A"); ok {
		fmt.Printf("  A: cracker index with %d pieces\n", ixA.NumPieces())
	}
	if _, ok := ex.Index("B"); !ok {
		fmt.Println("  B: no index (never queried with a predicate)")
	}
}
