package crackindex

import (
	"sync"
	"testing"
	"testing/quick"

	"adaptix/internal/cracker"
	"adaptix/internal/latch"
	"adaptix/internal/workload"
)

// allConfigs enumerates the latch-mode / layout / policy configurations
// exercised by the correctness tests.
func allConfigs() []Options {
	var out []Options
	for _, mode := range []LatchMode{LatchNone, LatchColumn, LatchPiece} {
		for _, layout := range []cracker.Layout{cracker.LayoutSplit, cracker.LayoutPairs} {
			out = append(out, Options{Layout: layout, Latching: mode})
		}
	}
	// Variants: skip policy, parallel bounds, FIFO scheduling.
	out = append(out,
		Options{Latching: LatchPiece, OnConflict: Skip},
		Options{Latching: LatchColumn, OnConflict: Skip},
		Options{Latching: LatchPiece, ParallelBounds: true},
		Options{Latching: LatchPiece, Scheduling: latch.FIFO},
	)
	return out
}

func TestCountSumMatchBruteForce(t *testing.T) {
	d := workload.NewUniqueUniform(10000, 21)
	queries := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.05, 7), 100)
	for _, opts := range allConfigs() {
		ix := New(d.Values, opts)
		for i, q := range queries {
			gotC, _ := ix.Count(q.Lo, q.Hi)
			if want := q.Hi - q.Lo; gotC != want { // unique 0..n-1
				t.Fatalf("%v/%v: query %d Count(%d,%d) = %d, want %d",
					opts.Latching, opts.Layout, i, q.Lo, q.Hi, gotC, want)
			}
			gotS, _ := ix.Sum(q.Lo, q.Hi)
			if want := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2; gotS != want {
				t.Fatalf("%v/%v: query %d Sum(%d,%d) = %d, want %d",
					opts.Latching, opts.Layout, i, q.Lo, q.Hi, gotS, want)
			}
		}
	}
}

func TestDuplicateValues(t *testing.T) {
	d := workload.NewDuplicates(5000, 100, 2)
	for _, opts := range allConfigs() {
		ix := New(d.Values, opts)
		for _, r := range [][2]int64{{10, 60}, {0, 100}, {99, 100}, {50, 51}} {
			if got, want := first(ix.Count(r[0], r[1])), d.TrueCount(r[0], r[1]); got != want {
				t.Fatalf("%v: Count(%d,%d) = %d, want %d", opts.Latching, r[0], r[1], got, want)
			}
			if got, want := first(ix.Sum(r[0], r[1])), d.TrueSum(r[0], r[1]); got != want {
				t.Fatalf("%v: Sum(%d,%d) = %d, want %d", opts.Latching, r[0], r[1], got, want)
			}
		}
	}
}

func first(v int64, _ OpStats) int64 { return v }

// uniqueSum is the closed-form sum of unique values 0..domain-1
// falling in [lo, hi).
func uniqueSum(domain, lo, hi int64) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > domain {
		hi = domain
	}
	if lo >= hi {
		return 0
	}
	return (lo + hi - 1) * (hi - lo) / 2
}

func TestEdgeRanges(t *testing.T) {
	d := workload.NewUniqueUniform(1000, 3)
	for _, opts := range allConfigs() {
		ix := New(d.Values, opts)
		cases := []struct {
			lo, hi int64
			want   int64
		}{
			{0, 1000, 1000},   // whole domain
			{-50, 2000, 1000}, // bounds outside the domain
			{500, 500, 0},     // empty range
			{600, 400, 0},     // inverted range
			{0, 1, 1},         // single leftmost value
			{999, 1000, 1},    // single rightmost value
			{-10, 0, 0},       // entirely below
			{1000, 1100, 0},   // entirely above
		}
		for _, c := range cases {
			if got, _ := ix.Count(c.lo, c.hi); got != c.want {
				t.Fatalf("%v: Count(%d,%d) = %d, want %d", opts.Latching, c.lo, c.hi, got, c.want)
			}
			if got, want := first(ix.Sum(c.lo, c.hi)), d.TrueSum(c.lo, c.hi); got != want {
				t.Fatalf("%v: Sum(%d,%d) = %d, want %d", opts.Latching, c.lo, c.hi, got, want)
			}
		}
	}
}

func TestRepeatedIdenticalQueries(t *testing.T) {
	d := workload.NewUniqueUniform(2000, 8)
	ix := New(d.Values, Options{Latching: LatchPiece})
	for i := 0; i < 5; i++ {
		if got, _ := ix.Count(100, 900); got != 800 {
			t.Fatalf("iteration %d: Count = %d", i, got)
		}
	}
	// After the first query, boundaries exist; piece count must not
	// grow on repeats.
	if p := ix.NumPieces(); p != 3 {
		t.Fatalf("pieces = %d, want 3 after one crack-in-three", p)
	}
	if c := ix.Stats().Cracks.Load(); c != 1 {
		t.Fatalf("cracks = %d, want 1 (repeats are exact-match lookups)", c)
	}
}

func TestAdaptiveConvergence(t *testing.T) {
	// As queries accumulate, per-query crack work must shrink: the
	// total crack time of the last quarter of the sequence must be
	// well below the first quarter's (this is the Figure 11/15 shape).
	d := workload.NewUniqueUniform(200000, 5)
	ix := New(d.Values, Options{Latching: LatchPiece})
	qs := workload.Fixed(workload.NewUniform(workload.Count, d.Domain, 0.01, 11), 256)
	quarter := len(qs) / 4
	var firstQ, lastQ int64
	for i, q := range qs {
		_, st := ix.Count(q.Lo, q.Hi)
		switch {
		case i < quarter:
			firstQ += int64(st.Crack)
		case i >= 3*quarter:
			lastQ += int64(st.Crack)
		}
	}
	if lastQ*2 >= firstQ {
		t.Fatalf("no adaptive convergence: first quarter crack %dns, last %dns", firstQ, lastQ)
	}
}

func TestBoundariesSortedAndPiecesConsistent(t *testing.T) {
	d := workload.NewUniqueUniform(5000, 10)
	ix := New(d.Values, Options{Latching: LatchNone})
	qs := workload.Fixed(workload.NewUniform(workload.Count, d.Domain, 0.1, 3), 50)
	for _, q := range qs {
		ix.Count(q.Lo, q.Hi)
	}
	bs := ix.Boundaries()
	for i := 1; i < len(bs); i++ {
		if bs[i-1] >= bs[i] {
			t.Fatalf("boundaries not strictly increasing at %d: %v", i, bs[i-1:i+1])
		}
	}
	if ix.NumPieces() != len(bs)+1 {
		t.Fatalf("pieces %d != boundaries+1 %d", ix.NumPieces(), len(bs)+1)
	}
	// Verify the physical array respects every boundary.
	for _, b := range bs {
		pos, _ := ix.crackBound(b, &opCtx{})
		for i := 0; i < pos; i++ {
			if ix.arr.Value(i) >= b {
				t.Fatalf("value %d at pos %d >= boundary %d", ix.arr.Value(i), i, b)
			}
		}
		for i := pos; i < ix.arr.Len(); i++ {
			if ix.arr.Value(i) < b {
				t.Fatalf("value %d at pos %d < boundary %d", ix.arr.Value(i), i, b)
			}
		}
	}
}

func TestSelectRowIDs(t *testing.T) {
	d := workload.NewUniqueUniform(3000, 14)
	for _, opts := range allConfigs() {
		ix := New(d.Values, opts)
		ids, _ := ix.SelectRowIDs(500, 700)
		if len(ids) != 200 {
			t.Fatalf("%v: got %d ids, want 200", opts.Latching, len(ids))
		}
		seen := map[uint32]bool{}
		for _, id := range ids {
			v := d.Values[id]
			if v < 500 || v >= 700 {
				t.Fatalf("%v: rowID %d value %d fails predicate", opts.Latching, id, v)
			}
			if seen[id] {
				t.Fatalf("%v: duplicate rowID %d", opts.Latching, id)
			}
			seen[id] = true
		}
	}
}

// TestConcurrentCorrectness is the core concurrency test: many clients
// issue the same deterministic query set concurrently; every answer
// must be exactly right regardless of interleaving. Run with -race.
func TestConcurrentCorrectness(t *testing.T) {
	d := workload.NewUniqueUniform(100000, 4)
	configs := []Options{
		{Latching: LatchPiece},
		{Latching: LatchPiece, ParallelBounds: true},
		{Latching: LatchPiece, OnConflict: Skip},
		{Latching: LatchPiece, Scheduling: latch.FIFO},
		{Latching: LatchColumn},
		{Latching: LatchColumn, OnConflict: Skip},
		{Latching: LatchPiece, Layout: cracker.LayoutPairs},
	}
	for _, opts := range configs {
		opts := opts
		t.Run(opts.Latching.String()+"/"+opts.OnConflict.String(), func(t *testing.T) {
			ix := New(d.Values, opts)
			const clients = 8
			const perClient = 64
			var wg sync.WaitGroup
			errs := make(chan string, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					gen := workload.NewUniform(workload.Sum, d.Domain, 0.02, uint64(1000+c))
					for i := 0; i < perClient; i++ {
						q := gen.Next()
						wantC := q.Hi - q.Lo
						wantS := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
						if i%2 == 0 {
							if got, _ := ix.Count(q.Lo, q.Hi); got != wantC {
								errs <- "count mismatch"
								return
							}
						} else {
							if got, _ := ix.Sum(q.Lo, q.Hi); got != wantS {
								errs <- "sum mismatch"
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}

// TestConcurrentSameHotRange stresses the redetermination path: all
// clients crack bounds inside one narrow region, maximizing waiting
// queues and piece splits under waiters (Figure 10).
func TestConcurrentSameHotRange(t *testing.T) {
	d := workload.NewUniqueUniform(50000, 6)
	ix := New(d.Values, Options{Latching: LatchPiece})
	const clients = 8
	var wg sync.WaitGroup
	bad := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(c) * 77)
			for i := 0; i < 100; i++ {
				lo := 20000 + r.Int64n(1000)
				hi := lo + 1 + r.Int64n(1000)
				if got, _ := ix.Sum(lo, hi); got != uniqueSum(d.Domain, lo, hi) {
					bad <- "sum mismatch in hot range"
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(bad)
	for e := range bad {
		t.Fatal(e)
	}
	if ix.Stats().Redeterminations.Load() == 0 {
		t.Log("note: no redeterminations occurred (timing-dependent)")
	}
}

func TestSkipModeForgoesRefinement(t *testing.T) {
	d := workload.NewUniqueUniform(50000, 12)
	ix := New(d.Values, Options{Latching: LatchPiece, OnConflict: Skip})
	// Model a concurrent aggregation: a read latch on the piece both
	// bounds fall into. The optional crack (write latch) must be
	// forgone, while the fallback scan shares the read latch.
	ix.Count(10, 20) // initialize + create boundaries
	ix.mu.Lock()
	p := ix.findPieceLocked(30000)
	ix.mu.Unlock()
	p.latch.RLock()
	n, st := ix.Count(25000, 35000)
	p.latch.RUnlock()
	if n != 10000 {
		t.Fatalf("skip-mode Count = %d, want 10000", n)
	}
	if !st.Skipped {
		t.Fatal("expected the query to report skipped refinement")
	}
	if got := ix.Stats().Skipped.Load(); got == 0 {
		t.Fatal("Skipped counter not incremented")
	}
}

func TestLockProbeBlocksRefinement(t *testing.T) {
	d := workload.NewUniqueUniform(10000, 13)
	hasLock := true
	ix := New(d.Values, Options{
		Latching:  LatchPiece,
		LockProbe: func() bool { return hasLock },
	})
	n, st := ix.Count(100, 500)
	if n != 400 {
		t.Fatalf("Count with user lock = %d, want 400", n)
	}
	if !st.Skipped {
		t.Fatal("refinement should be skipped while a user lock exists")
	}
	if ix.Stats().Cracks.Load() != 0 {
		t.Fatal("no cracks should happen under a conflicting user lock")
	}
	hasLock = false
	ix.Count(100, 500)
	if ix.Stats().Cracks.Load() == 0 {
		t.Fatal("refinement should resume once the user lock is gone")
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	d := workload.NewUniqueUniform(1000, 19)
	var events []TraceEvent
	ix := New(d.Values, Options{
		Latching: LatchPiece,
		Tracer:   func(e TraceEvent) { events = append(events, e) },
	})
	ix.SumTagged("Q1", 100, 200)
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	var sawWantW, sawCrack, sawDowngrade bool
	for _, e := range events {
		if e.Query != "Q1" {
			t.Fatalf("event with wrong tag: %+v", e)
		}
		switch e.Kind {
		case TraceWantWrite:
			sawWantW = true
		case TraceCracked:
			sawCrack = true
		case TraceDowngraded:
			sawDowngrade = true
		}
	}
	if !sawWantW || !sawCrack || !sawDowngrade {
		t.Fatalf("missing event kinds: wantW=%v crack=%v downgrade=%v (events: %v)",
			sawWantW, sawCrack, sawDowngrade, events)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	d := workload.NewUniqueUniform(100, 1)
	a := r.GetOrCreate("R.A", d.Values, Options{})
	b := r.GetOrCreate("R.A", nil, Options{})
	if a != b {
		t.Fatal("GetOrCreate did not return the registered index")
	}
	if _, ok := r.Get("R.B"); ok {
		t.Fatal("Get of unknown column succeeded")
	}
	r.GetOrCreate("R.B", d.Values, Options{})
	if len(r.Names()) != 2 {
		t.Fatalf("Names = %v", r.Names())
	}
	r.Drop("R.A")
	if _, ok := r.Get("R.A"); ok {
		t.Fatal("dropped index still present")
	}
}

func TestLazyInitialization(t *testing.T) {
	d := workload.NewUniqueUniform(1000, 2)
	ix := New(d.Values, Options{Latching: LatchPiece})
	if ix.Initialized() {
		t.Fatal("index initialized before first query")
	}
	if ix.NumPieces() != 0 {
		t.Fatal("pieces exist before first query")
	}
	_, st := ix.Count(10, 20)
	if !ix.Initialized() {
		t.Fatal("index not initialized by first query")
	}
	if st.Crack == 0 {
		t.Fatal("first query should charge initialization to crack time")
	}
	if ix.Stats().InitTime.Load() == 0 {
		t.Fatal("InitTime not recorded")
	}
}

func TestCountStabilityUnderFurtherCracking(t *testing.T) {
	// Counts derived from boundary positions must never change as other
	// queries refine the column further.
	d := workload.NewUniqueUniform(20000, 31)
	ix := New(d.Values, Options{Latching: LatchNone})
	c1, _ := ix.Count(5000, 15000)
	qs := workload.Fixed(workload.NewUniform(workload.Count, d.Domain, 0.01, 9), 100)
	for _, q := range qs {
		ix.Count(q.Lo, q.Hi)
	}
	c2, _ := ix.Count(5000, 15000)
	if c1 != c2 {
		t.Fatalf("count changed after refinement: %d -> %d", c1, c2)
	}
}

func TestPropertyQuickRandomQueries(t *testing.T) {
	d := workload.NewDuplicates(3000, 500, 77)
	ixPiece := New(d.Values, Options{Latching: LatchPiece})
	ixNone := New(d.Values, Options{Latching: LatchNone})
	f := func(a, b int64) bool {
		lo, hi := a%600-50, b%600-50
		if lo > hi {
			lo, hi = hi, lo
		}
		wantC, wantS := d.TrueCount(lo, hi), d.TrueSum(lo, hi)
		for _, ix := range []*Index{ixPiece, ixNone} {
			if got, _ := ix.Count(lo, hi); got != wantC {
				return false
			}
			if got, _ := ix.Sum(lo, hi); got != wantS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionStrings(t *testing.T) {
	if LatchPiece.String() != "piece" || LatchColumn.String() != "column" || LatchNone.String() != "none" {
		t.Fatal("bad LatchMode strings")
	}
	if Wait.String() != "wait" || Skip.String() != "skip" {
		t.Fatal("bad ConflictPolicy strings")
	}
}
