package cracker

import (
	"sort"
	"testing"
	"testing/quick"

	"adaptix/internal/workload"
)

var bothLayouts = []Layout{LayoutSplit, LayoutPairs}

// checkAlignment verifies that every (rowID, value) pair still refers
// to the original base column: reorganization must never separate a
// value from its row id.
func checkAlignment(t *testing.T, a *Array, base []int64) {
	t.Helper()
	for i := 0; i < a.Len(); i++ {
		if base[a.RowID(i)] != a.Value(i) {
			t.Fatalf("pos %d: rowID %d has value %d, base says %d",
				i, a.RowID(i), a.Value(i), base[a.RowID(i)])
		}
	}
}

// checkMultiset verifies the array is a permutation of base.
func checkMultiset(t *testing.T, a *Array, base []int64) {
	t.Helper()
	got := a.Values()
	want := append([]int64(nil), base...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset changed at sorted pos %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestNewAssignsPositionalRowIDs(t *testing.T) {
	base := []int64{30, 10, 20}
	for _, layout := range bothLayouts {
		a := New(base, layout)
		if a.Len() != 3 || a.Layout() != layout {
			t.Fatalf("%v: bad shape", layout)
		}
		for i := range base {
			if a.Value(i) != base[i] || a.RowID(i) != uint32(i) {
				t.Fatalf("%v: pos %d = (%d,%d)", layout, i, a.Value(i), a.RowID(i))
			}
		}
	}
}

func TestNewDoesNotAliasInput(t *testing.T) {
	base := []int64{5, 6, 7}
	a := New(base, LayoutSplit)
	base[0] = 99
	if a.Value(0) != 5 {
		t.Fatal("cracker array aliases the input slice")
	}
}

func TestCrackInTwoPostcondition(t *testing.T) {
	for _, layout := range bothLayouts {
		base := workload.NewUniqueUniform(1000, 42).Values
		a := New(base, layout)
		pos := a.CrackInTwo(0, a.Len(), 500)
		for i := 0; i < pos; i++ {
			if a.Value(i) >= 500 {
				t.Fatalf("%v: pos %d value %d >= pivot", layout, i, a.Value(i))
			}
		}
		for i := pos; i < a.Len(); i++ {
			if a.Value(i) < 500 {
				t.Fatalf("%v: pos %d value %d < pivot", layout, i, a.Value(i))
			}
		}
		if pos != 500 { // unique 0..999: exactly 500 values below 500
			t.Fatalf("%v: split pos %d, want 500", layout, pos)
		}
		checkAlignment(t, a, base)
		checkMultiset(t, a, base)
	}
}

func TestCrackInTwoSubrange(t *testing.T) {
	base := workload.NewUniqueUniform(1000, 1).Values
	a := New(base, LayoutSplit)
	mid := a.CrackInTwo(0, a.Len(), 600)
	// Crack only the left part again.
	p := a.CrackInTwo(0, mid, 200)
	for i := 0; i < p; i++ {
		if a.Value(i) >= 200 {
			t.Fatalf("pos %d: %d >= 200", i, a.Value(i))
		}
	}
	for i := p; i < mid; i++ {
		if v := a.Value(i); v < 200 || v >= 600 {
			t.Fatalf("pos %d: %d outside [200,600)", i, v)
		}
	}
	for i := mid; i < a.Len(); i++ {
		if a.Value(i) < 600 {
			t.Fatalf("pos %d: %d < 600", i, a.Value(i))
		}
	}
	checkAlignment(t, a, base)
}

func TestCrackInTwoEdgePivots(t *testing.T) {
	base := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	for _, layout := range bothLayouts {
		a := New(base, layout)
		if pos := a.CrackInTwo(0, a.Len(), 0); pos != 0 {
			t.Fatalf("%v: pivot below all: pos %d", layout, pos)
		}
		if pos := a.CrackInTwo(0, a.Len(), 100); pos != a.Len() {
			t.Fatalf("%v: pivot above all: pos %d", layout, pos)
		}
		checkMultiset(t, a, base)
	}
}

func TestCrackInTwoEmptyAndSingle(t *testing.T) {
	a := New([]int64{7}, LayoutSplit)
	if pos := a.CrackInTwo(0, 0, 5); pos != 0 {
		t.Fatalf("empty range: pos %d", pos)
	}
	if pos := a.CrackInTwo(0, 1, 7); pos != 0 {
		t.Fatalf("single equal: pos %d", pos)
	}
	if pos := a.CrackInTwo(0, 1, 8); pos != 1 {
		t.Fatalf("single below: pos %d", pos)
	}
}

func TestCrackInThreePostcondition(t *testing.T) {
	for _, layout := range bothLayouts {
		base := workload.NewUniqueUniform(1000, 9).Values
		a := New(base, layout)
		pa, pb := a.CrackInThree(0, a.Len(), 300, 700)
		if pa != 300 || pb != 700 {
			t.Fatalf("%v: positions (%d,%d), want (300,700)", layout, pa, pb)
		}
		for i := 0; i < pa; i++ {
			if a.Value(i) >= 300 {
				t.Fatalf("%v: left region violated at %d", layout, i)
			}
		}
		for i := pa; i < pb; i++ {
			if v := a.Value(i); v < 300 || v >= 700 {
				t.Fatalf("%v: middle region violated at %d: %d", layout, i, v)
			}
		}
		for i := pb; i < a.Len(); i++ {
			if a.Value(i) < 700 {
				t.Fatalf("%v: right region violated at %d", layout, i)
			}
		}
		checkAlignment(t, a, base)
		checkMultiset(t, a, base)
	}
}

func TestCrackInThreeEqualBounds(t *testing.T) {
	base := workload.NewUniqueUniform(100, 4).Values
	a := New(base, LayoutSplit)
	pa, pb := a.CrackInThree(0, a.Len(), 50, 50)
	if pa != pb || pa != 50 {
		t.Fatalf("equal bounds: (%d,%d)", pa, pb)
	}
}

func TestCrackInThreePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for va > vb")
		}
	}()
	New([]int64{1, 2, 3}, LayoutSplit).CrackInThree(0, 3, 5, 2)
}

func TestCrackInThreeWithDuplicates(t *testing.T) {
	base := workload.NewDuplicates(2000, 50, 5).Values
	for _, layout := range bothLayouts {
		a := New(base, layout)
		pa, pb := a.CrackInThree(0, a.Len(), 10, 40)
		for i := 0; i < pa; i++ {
			if a.Value(i) >= 10 {
				t.Fatalf("%v: left violated", layout)
			}
		}
		for i := pa; i < pb; i++ {
			if v := a.Value(i); v < 10 || v >= 40 {
				t.Fatalf("%v: middle violated", layout)
			}
		}
		for i := pb; i < a.Len(); i++ {
			if a.Value(i) < 40 {
				t.Fatalf("%v: right violated", layout)
			}
		}
		checkMultiset(t, a, base)
		checkAlignment(t, a, base)
	}
}

func TestCrackPropertyQuick(t *testing.T) {
	for _, layout := range bothLayouts {
		layout := layout
		f := func(vals []int64, pivot int64) bool {
			a := New(vals, layout)
			pos := a.CrackInTwo(0, a.Len(), pivot)
			for i := 0; i < pos; i++ {
				if a.Value(i) >= pivot {
					return false
				}
			}
			for i := pos; i < a.Len(); i++ {
				if a.Value(i) < pivot {
					return false
				}
			}
			// Multiset preserved (checksum-ish: sort both).
			got, want := a.Values(), append([]int64(nil), vals...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
	}
}

func TestCrackInThreePropertyQuick(t *testing.T) {
	f := func(vals []int64, x, y int64) bool {
		va, vb := x, y
		if va > vb {
			va, vb = vb, va
		}
		for _, layout := range bothLayouts {
			a := New(vals, layout)
			pa, pb := a.CrackInThree(0, a.Len(), va, vb)
			if pa > pb || pa < 0 || pb > a.Len() {
				return false
			}
			for i := 0; i < pa; i++ {
				if a.Value(i) >= va {
					return false
				}
			}
			for i := pa; i < pb; i++ {
				if v := a.Value(i); v < va || v >= vb {
					return false
				}
			}
			for i := pb; i < a.Len(); i++ {
				if a.Value(i) < vb {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSumAndScans(t *testing.T) {
	base := []int64{5, 1, 9, 3, 7}
	for _, layout := range bothLayouts {
		a := New(base, layout)
		if got := a.Sum(0, 5); got != 25 {
			t.Fatalf("%v: Sum = %d", layout, got)
		}
		if got := a.Sum(1, 3); got != 10 {
			t.Fatalf("%v: partial Sum = %d", layout, got)
		}
		if got := a.ScanCount(0, 5, 3, 8); got != 3 { // 5, 3, 7
			t.Fatalf("%v: ScanCount = %d", layout, got)
		}
		if got := a.ScanSum(0, 5, 3, 8); got != 15 {
			t.Fatalf("%v: ScanSum = %d", layout, got)
		}
	}
}

func TestAppendRowIDs(t *testing.T) {
	base := []int64{5, 1, 9, 3, 7}
	for _, layout := range bothLayouts {
		a := New(base, layout)
		ids := a.AppendRowIDs(nil, 1, 4)
		if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
			t.Fatalf("%v: AppendRowIDs = %v", layout, ids)
		}
		ids = a.AppendRowIDsWhere(nil, 0, 5, 3, 8)
		// values 5,3,7 at rowIDs 0,3,4
		if len(ids) != 3 {
			t.Fatalf("%v: AppendRowIDsWhere = %v", layout, ids)
		}
		for _, id := range ids {
			v := base[id]
			if v < 3 || v >= 8 {
				t.Fatalf("%v: rowID %d value %d fails predicate", layout, id, v)
			}
		}
	}
}

func TestSortRange(t *testing.T) {
	base := workload.NewUniqueUniform(500, 13).Values
	for _, layout := range bothLayouts {
		a := New(base, layout)
		a.Sort(100, 400)
		for i := 101; i < 400; i++ {
			if a.Value(i-1) > a.Value(i) {
				t.Fatalf("%v: not sorted at %d", layout, i)
			}
		}
		checkAlignment(t, a, base)
		checkMultiset(t, a, base)
	}
}

func TestRowIDsCopy(t *testing.T) {
	a := New([]int64{4, 2}, LayoutPairs)
	ids := a.RowIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("RowIDs = %v", ids)
	}
	ids[0] = 99
	if a.RowID(0) == 99 {
		t.Fatal("RowIDs did not copy")
	}
}
