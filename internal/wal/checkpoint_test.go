package wal

import (
	"reflect"
	"testing"
)

// enc encodes a record sequence into a log image.
func enc(recs ...Record) []byte {
	var raw []byte
	for i, r := range recs {
		r.LSN = uint64(i + 1)
		raw = append(raw, Encode(r)...)
	}
	return raw
}

// ckptTxn builds a committed checkpoint transaction for obj with the
// given cuts and per-shard crack sets.
func ckptTxn(txn uint64, obj string, cuts []int64, cracks [][]int64) []Record {
	recs := []Record{
		{Kind: BeginSystem, Txn: txn},
		{Kind: Checkpoint, Txn: txn, Object: obj, C: CkptHeader, A: int64(len(cracks)), B: 1},
	}
	for _, c := range cuts {
		recs = append(recs, Record{Kind: Checkpoint, Txn: txn, Object: obj, C: CkptCut, A: c})
	}
	for i, set := range cracks {
		for _, b := range set {
			recs = append(recs, Record{Kind: Checkpoint, Txn: txn, Object: obj, C: CkptCrack, A: int64(i), B: b})
		}
	}
	return append(recs, Record{Kind: CommitSystem, Txn: txn})
}

func TestRecoverCheckpointRestoresCutsAndCracks(t *testing.T) {
	// Pre-checkpoint noise that the checkpoint must supersede.
	recs := []Record{
		{Kind: BeginSystem, Txn: 1},
		{Kind: ShardSplit, Txn: 1, Object: "col", A: 999},
		{Kind: CommitSystem, Txn: 1},
	}
	recs = append(recs, ckptTxn(2, "col",
		[]int64{100, 200},
		[][]int64{{10, 50}, {150}, {250, 300, 350}})...)

	cat, err := Recover(enc(recs...))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cat.ShardBounds["col"], []int64{100, 200}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	want := [][]int64{{10, 50}, {150}, {250, 300, 350}}
	if got := cat.ShardCracks["col"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("cracks = %v, want %v", got, want)
	}
}

func TestRecoverPostCheckpointSplitDividesCracks(t *testing.T) {
	recs := ckptTxn(1, "col", []int64{100}, [][]int64{{10, 50}, {150, 180, 250}})
	recs = append(recs,
		Record{Kind: BeginSystem, Txn: 2},
		// Split the second shard at 200: boundary 250 moves right,
		// 150/180 stay left; a boundary equal to the cut would vanish.
		Record{Kind: ShardSplit, Txn: 2, Object: "col", A: 200},
		Record{Kind: CommitSystem, Txn: 2},
	)
	cat, err := Recover(enc(recs...))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cat.ShardBounds["col"], []int64{100, 200}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	want := [][]int64{{10, 50}, {150, 180}, {250}}
	if got := cat.ShardCracks["col"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("cracks = %v, want %v", got, want)
	}
}

func TestRecoverPostCheckpointMergeConcatenatesCracks(t *testing.T) {
	recs := ckptTxn(1, "col", []int64{100, 200}, [][]int64{{10}, {150}, {250}})
	recs = append(recs,
		Record{Kind: BeginSystem, Txn: 2},
		Record{Kind: ShardMerge, Txn: 2, Object: "col", A: 100},
		Record{Kind: CommitSystem, Txn: 2},
	)
	cat, err := Recover(enc(recs...))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cat.ShardBounds["col"], []int64{200}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	// The removed cut survives as a crack boundary of the merged shard.
	want := [][]int64{{10, 100, 150}, {250}}
	if got := cat.ShardCracks["col"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("cracks = %v, want %v", got, want)
	}
}

func TestRecoverPostCheckpointSplitKeepsCutEqualBoundary(t *testing.T) {
	// Shard 1's checkpointed boundary 200 coincides with a later split
	// cut: the live column replays it into BOTH halves (inclusive warm
	// replay), so recovery must keep it on both sides too.
	recs := ckptTxn(1, "col", []int64{100}, [][]int64{{10}, {150, 200, 250}})
	recs = append(recs,
		Record{Kind: BeginSystem, Txn: 2},
		Record{Kind: ShardSplit, Txn: 2, Object: "col", A: 200},
		Record{Kind: CommitSystem, Txn: 2},
	)
	cat, err := Recover(enc(recs...))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{10}, {150, 200}, {200, 250}}
	if got := cat.ShardCracks["col"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("cracks = %v, want %v", got, want)
	}
}

func TestRecoverLSNGapAbandonsOpenTxns(t *testing.T) {
	// Records lost in a damaged middle segment leave transaction 2's
	// begin behind a gap from its records and commit. Neither the
	// stragglers nor the commit may apply — and the stragglers must
	// not be mistaken for autonomous records.
	recs := []Record{
		{LSN: 1, Txn: 1, Kind: BeginSystem},
		{LSN: 2, Txn: 1, Kind: ShardSplit, Object: "col", A: 100},
		{LSN: 3, Txn: 1, Kind: CommitSystem},
		{LSN: 4, Txn: 2, Kind: BeginSystem},
		// LSNs 5..6 lost with a damaged segment tail.
		{LSN: 7, Txn: 2, Kind: ShardSplit, Object: "col", A: 300},
		{LSN: 8, Txn: 2, Kind: CommitSystem},
	}
	var raw []byte
	for _, r := range recs {
		raw = append(raw, Encode(r)...)
	}
	cat, err := Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cat.ShardBounds["col"], []int64{100}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounds = %v, want %v (partial txn applied across LSN gap)", got, want)
	}
}

func TestRecoverUncommittedCheckpointIgnored(t *testing.T) {
	recs := ckptTxn(1, "col", []int64{100}, [][]int64{{10}, {150}})
	// A second checkpoint whose commit never made it to disk: all of
	// its records are ignored and the first checkpoint stands.
	partial := ckptTxn(2, "col", []int64{500}, [][]int64{{400}, {600}})
	recs = append(recs, partial[:len(partial)-1]...)

	cat, err := Recover(enc(recs...))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cat.ShardBounds["col"], []int64{100}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	want := [][]int64{{10}, {150}}
	if got := cat.ShardCracks["col"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("cracks = %v, want %v", got, want)
	}
}

func TestRecoverTornCheckpointFallsBackToPrevious(t *testing.T) {
	recs := ckptTxn(1, "col", []int64{100}, [][]int64{{10}, {150}})
	second := ckptTxn(2, "col", []int64{500}, [][]int64{{400}, {600}})
	raw := enc(append(append([]Record{}, recs...), second...)...)
	// Tear the image inside the second checkpoint's commit record: the
	// torn tail drops the commit, so recovery must fall back to the
	// first checkpoint in full.
	raw = raw[:len(raw)-10]

	cat, err := Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cat.ShardBounds["col"], []int64{100}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	want := [][]int64{{10}, {150}}
	if got := cat.ShardCracks["col"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("cracks = %v, want %v", got, want)
	}
}

func TestRecoverCorruptCheckpointFrameFallsBack(t *testing.T) {
	recs := ckptTxn(1, "col", []int64{100}, [][]int64{{10}, {150}})
	second := ckptTxn(2, "col", []int64{500}, [][]int64{{400}, {600}})
	raw := enc(append(append([]Record{}, recs...), second...)...)
	// Corrupt a byte inside the second checkpoint's records (past the
	// first checkpoint's bytes): replay stops at the corrupt record and
	// the second checkpoint never commits.
	firstLen := len(enc(recs...))
	raw[firstLen+len(raw[firstLen:])/2] ^= 0x40

	cat, err := Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cat.ShardBounds["col"], []int64{100}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	want := [][]int64{{10}, {150}}
	if got := cat.ShardCracks["col"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("cracks = %v, want %v", got, want)
	}
}
