package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/metrics"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// RWMixCell is one (write fraction, clients) cell of the read/write
// mix ablation.
type RWMixCell struct {
	// WriteFraction is the fraction of operations that are writes
	// (alternating inserts and deletes).
	WriteFraction float64
	// Clients is the number of concurrent clients.
	Clients int
	// Elapsed is the wall-clock time for all clients to finish.
	Elapsed time.Duration
	// Ops is the total number of operations executed.
	Ops int
	// Throughput is operations per second.
	Throughput float64
	// ShardsBefore and ShardsAfter are the shard counts around the run.
	ShardsBefore, ShardsAfter int
	// Applied, Splits and Merges count the coordinator's structural
	// operations during the run.
	Applied, Splits, Merges int64
	// Critical is the summed fan-out critical-path time of the read
	// queries (the latency-oriented view; Wait/Crack sum total work).
	Critical time.Duration
}

// RWMixReport is the outcome of the read/write mix ablation.
type RWMixReport struct {
	Cells []RWMixCell
}

// ReadWriteMix measures the sharded column behind an active ingest
// coordinator under mixed workloads: write fractions {0, 0.1, 0.5}
// crossed with client counts {1, 4, 16}. Writes route through the
// differential files; the coordinator group-applies and rebalances in
// the background, so the cells quantify how much a live write path
// costs the read side (the paper's §4.2 differential-file claim,
// measured).
func ReadWriteMix(cfg Config, w io.Writer) *RWMixReport {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	rep := &RWMixReport{}
	for _, frac := range []float64{0, 0.1, 0.5} {
		for _, clients := range []int{1, 4, 16} {
			rep.Cells = append(rep.Cells, runRWMixCell(cfg, d, frac, clients))
		}
	}
	if w != nil {
		t := &metrics.Table{Header: []string{
			"write%", "clients", "total time", "ops/s", "shards", "applies", "splits", "merges", "critical",
		}}
		for _, c := range rep.Cells {
			t.Add(
				fmt.Sprintf("%.0f%%", c.WriteFraction*100),
				fmt.Sprint(c.Clients),
				metrics.FormatDuration(c.Elapsed),
				fmt.Sprintf("%.0f", c.Throughput),
				fmt.Sprintf("%d->%d", c.ShardsBefore, c.ShardsAfter),
				fmt.Sprint(c.Applied),
				fmt.Sprint(c.Splits),
				fmt.Sprint(c.Merges),
				metrics.FormatDuration(c.Critical),
			)
		}
		fmt.Fprintf(w, "Read/write mix: %d ops per client, %d rows, sharded+ingest\n%s\n",
			cfg.Queries, cfg.Rows, t)
	}
	return rep
}

func runRWMixCell(cfg Config, d *workload.Dataset, frac float64, clients int) RWMixCell {
	col := shard.New(d.Values, shard.Options{
		Shards: 8, Seed: cfg.Seed,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	g := ingest.New(col, ingest.Options{
		ApplyThreshold: 512, MinShardRows: 1 << 12,
	})
	g.Start()
	cell := RWMixCell{
		WriteFraction: frac, Clients: clients,
		ShardsBefore: col.NumShards(),
	}

	var critical int64 // nanoseconds, accumulated across clients
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := workload.NewRNG(cfg.Seed + uint64(100+c))
			gen := workload.NewUniform(workload.Sum, d.Domain, 0.001, cfg.Seed+uint64(200+c))
			var localCrit time.Duration
			inserts := 0
			for i := 0; i < cfg.Queries; i++ {
				if float64(r.Intn(1000))/1000 < frac {
					if i%2 == 0 {
						_ = g.Insert(d.Domain + int64(c*cfg.Queries+inserts))
						inserts++
					} else {
						_, _ = g.DeleteValue(r.Int64n(d.Domain))
					}
					continue
				}
				q := gen.Next()
				_, st := col.Sum(q.Lo, q.Hi)
				localCrit += st.Critical
			}
			mu.Lock()
			critical += int64(localCrit)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	cell.Elapsed = time.Since(start)
	g.Close()

	st := g.Stats()
	cell.Ops = clients * cfg.Queries
	if cell.Elapsed > 0 {
		cell.Throughput = float64(cell.Ops) / cell.Elapsed.Seconds()
	}
	cell.ShardsAfter = col.NumShards()
	cell.Applied, cell.Splits, cell.Merges = st.Applied, st.Splits, st.Merges
	cell.Critical = time.Duration(critical)
	return cell
}
