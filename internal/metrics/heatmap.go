// Key-range access heatmap: a fixed-bucket sketch over the key domain.
//
// The Heatmap answers "where in the key space does the load land?" with
// the same overhead discipline as the rest of this package: recording a
// query's bounds or a write's key is a handful of uncontended atomic
// adds on fixed storage — no allocation, no lock, nil-safe through the
// Observer — so it can sit on the hottest read and write paths. The
// domain is divided into HeatBuckets equal-width buckets; a range query
// increments every bucket its predicate overlaps, a write increments
// the bucket holding its key. Because shards range-partition the same
// key domain, slicing the merged sketch by a shard's bounds *is* that
// shard's heatmap (Slice), which is how the facade derives per-shard
// views without per-shard storage or rebuild-on-split bookkeeping.
//
// Resolution is deliberately coarse (64 buckets): the consumer is the
// rebalancer/controller asking "is the load skewed, and toward which
// shard?", not an exact histogram of keys.
package metrics

import "sync/atomic"

// HeatBuckets is the number of equal-width key-range buckets.
const HeatBuckets = 64

// Heatmap is a fixed-bucket access sketch over the key domain
// [lo, hi]. All methods are safe for concurrent use and nil-safe;
// recording never allocates.
type Heatmap struct {
	lo int64
	hi int64
	w  uint64 // per-bucket key width, >= 1
	// reads[i] counts range queries whose predicate overlapped
	// bucket i; writes[i] counts inserts/deletes keyed into it.
	reads  [HeatBuckets]atomic.Int64
	writes [HeatBuckets]atomic.Int64
}

// NewHeatmap builds a sketch over the inclusive key domain [lo, hi].
// Keys outside the domain clamp to the edge buckets.
func NewHeatmap(lo, hi int64) *Heatmap {
	if hi < lo {
		lo, hi = hi, lo
	}
	span := uint64(hi) - uint64(lo) // hi >= lo, so this cannot underflow
	return &Heatmap{lo: lo, hi: hi, w: span/HeatBuckets + 1}
}

// bucket maps a key to its bucket index, clamping out-of-domain keys.
func (h *Heatmap) bucket(v int64) int {
	if v < h.lo {
		return 0
	}
	u := (uint64(v) - uint64(h.lo)) / h.w
	if u >= HeatBuckets {
		return HeatBuckets - 1
	}
	return int(u)
}

// RecordRange records one range query with half-open bounds [lo, hi):
// every bucket the predicate overlaps gains one read.
func (h *Heatmap) RecordRange(lo, hi int64) { h.RecordRangeN(lo, hi, 1) }

// RecordRangeN records a range query with weight n — the sampled
// recording path counts every profileSample-th query with
// n = profileSample, keeping expected bucket counts unbiased.
func (h *Heatmap) RecordRangeN(lo, hi, n int64) {
	if h == nil {
		return
	}
	a := h.bucket(lo)
	b := a
	if hi > lo {
		b = h.bucket(hi - 1)
	}
	for i := a; i <= b; i++ {
		h.reads[i].Add(n)
	}
}

// RecordKey records one write (insert or delete) keyed at v.
func (h *Heatmap) RecordKey(v int64) {
	if h == nil {
		return
	}
	h.writes[h.bucket(v)].Add(1)
}

// Snapshot copies the current bucket counts (nil-safe: a nil Heatmap
// yields a zero snapshot).
func (h *Heatmap) Snapshot() HeatSnapshot {
	var s HeatSnapshot
	if h == nil {
		return s
	}
	s.Lo, s.Hi, s.BucketWidth = h.lo, h.hi, int64(h.w)
	for i := range h.reads {
		s.Reads[i] = h.reads[i].Load()
		s.Writes[i] = h.writes[i].Load()
	}
	return s
}

// HeatSnapshot is an immutable copy of a Heatmap's state.
type HeatSnapshot struct {
	// Lo and Hi bound the key domain the buckets divide (inclusive).
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// BucketWidth is the key width of each bucket.
	BucketWidth int64 `json:"bucket_width"`
	// Reads and Writes are the per-bucket access counts, low keys
	// first.
	Reads  [HeatBuckets]int64 `json:"reads"`
	Writes [HeatBuckets]int64 `json:"writes"`
}

// Merge adds o's counts into s (domains are assumed aligned; merging
// sketches from differently-bounded indexes is the caller's mistake).
func (s *HeatSnapshot) Merge(o *HeatSnapshot) {
	for i := range s.Reads {
		s.Reads[i] += o.Reads[i]
		s.Writes[i] += o.Writes[i]
	}
}

// Slice sums the read and write counts of every bucket overlapping the
// inclusive key range [lo, hi] — the per-shard view of a merged
// sketch, since shards range-partition the same domain.
func (s *HeatSnapshot) Slice(lo, hi int64) (reads, writes int64) {
	if s.BucketWidth <= 0 || hi < lo {
		return 0, 0
	}
	a := heatBucketOf(s, lo)
	b := heatBucketOf(s, hi)
	for i := a; i <= b; i++ {
		reads += s.Reads[i]
		writes += s.Writes[i]
	}
	return reads, writes
}

func heatBucketOf(s *HeatSnapshot, v int64) int {
	if v < s.Lo {
		return 0
	}
	u := (uint64(v) - uint64(s.Lo)) / uint64(s.BucketWidth)
	if u >= HeatBuckets {
		return HeatBuckets - 1
	}
	return int(u)
}
