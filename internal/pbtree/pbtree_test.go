package pbtree

import (
	"sort"
	"testing"
	"testing/quick"

	"adaptix/internal/workload"
)

func TestEntryLess(t *testing.T) {
	cases := []struct {
		a, b Entry
		want bool
	}{
		{Entry{1, 5, 0}, Entry{2, 1, 0}, true},  // partition dominates
		{Entry{1, 5, 0}, Entry{1, 6, 0}, true},  // then key
		{Entry{1, 5, 1}, Entry{1, 5, 2}, true},  // then row
		{Entry{1, 5, 2}, Entry{1, 5, 2}, false}, // equal
		{Entry{2, 0, 0}, Entry{1, 9, 9}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Fatalf("%v.Less(%v) = %v", c.a, c.b, got)
		}
	}
}

func TestInsertAndScan(t *testing.T) {
	tr := New()
	d := workload.NewUniqueUniform(5000, 3)
	for i, v := range d.Values {
		tr.Insert(Entry{Part: int32(i % 4), Key: v, Row: uint32(i)})
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each partition got every 4th insert.
	total := 0
	for _, p := range tr.Partitions() {
		total += tr.PartitionCount(p)
	}
	if total != 5000 {
		t.Fatalf("partition counts sum to %d", total)
	}
	// Range scan of partition 2 must return sorted keys in range.
	var keys []int64
	tr.ScanRange(2, 1000, 3000, func(e Entry) bool {
		if e.Part != 2 {
			t.Fatalf("scan leaked partition %d", e.Part)
		}
		keys = append(keys, e.Key)
		return true
	})
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("scan not in key order")
	}
	for _, k := range keys {
		if k < 1000 || k >= 3000 {
			t.Fatalf("key %d outside range", k)
		}
	}
	// Cross-check count with brute force.
	var want int
	for i, v := range d.Values {
		if i%4 == 2 && v >= 1000 && v < 3000 {
			want++
		}
	}
	if len(keys) != want {
		t.Fatalf("scan returned %d keys, want %d", len(keys), want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Entry{Part: 1, Key: int64(i), Row: uint32(i)})
	}
	n := 0
	tr.ScanRange(1, 0, 100, func(Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestAggregateRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(Entry{Part: 7, Key: i, Row: uint32(i)})
	}
	c, s := tr.AggregateRange(7, 100, 200)
	if c != 100 || s != (100+199)*100/2 {
		t.Fatalf("AggregateRange = (%d, %d)", c, s)
	}
	c, _ = tr.AggregateRange(8, 0, 1000)
	if c != 0 {
		t.Fatal("empty partition aggregated non-zero")
	}
}

func TestExtractRangeMovesRecords(t *testing.T) {
	tr := New()
	d := workload.NewUniqueUniform(3000, 5)
	for i, v := range d.Values {
		tr.Insert(Entry{Part: 1, Key: v, Row: uint32(i)})
	}
	got := tr.ExtractRange(1, 500, 1500, 0)
	if len(got) != 1000 {
		t.Fatalf("extracted %d, want 1000", len(got))
	}
	for i, e := range got {
		if e.Key < 500 || e.Key >= 1500 {
			t.Fatalf("extracted key %d outside range", e.Key)
		}
		if i > 0 && e.Less(got[i-1]) {
			t.Fatal("extraction not in order")
		}
	}
	if tr.Len() != 2000 || tr.PartitionCount(1) != 2000 {
		t.Fatalf("size after extract: %d / %d", tr.Len(), tr.PartitionCount(1))
	}
	// The extracted range is now empty.
	if c, _ := tr.AggregateRange(1, 500, 1500); c != 0 {
		t.Fatalf("range still has %d entries", c)
	}
	// The tree remains valid and searchable (ghost leaves ok).
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Move into partition 0, as a merge step would.
	for i := range got {
		got[i].Part = 0
	}
	tr.InsertBatch(got)
	if tr.PartitionCount(0) != 1000 || tr.Len() != 3000 {
		t.Fatal("re-insert into final failed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	c, s := tr.AggregateRange(0, 0, 3000)
	if c != 1000 || s != (500+1499)*1000/2 {
		t.Fatalf("final partition aggregate = (%d,%d)", c, s)
	}
}

func TestExtractRangeBudget(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(Entry{Part: 1, Key: i, Row: uint32(i)})
	}
	got := tr.ExtractRange(1, 0, 100, 30)
	if len(got) != 30 {
		t.Fatalf("budget ignored: got %d", len(got))
	}
	// Early termination leaves a consistent index: the remaining 70
	// are still found.
	if c, _ := tr.AggregateRange(1, 0, 100); c != 70 {
		t.Fatalf("leftovers = %d", c)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractEmptyRange(t *testing.T) {
	tr := New()
	tr.Insert(Entry{Part: 1, Key: 5, Row: 0})
	if got := tr.ExtractRange(1, 10, 20, 0); len(got) != 0 {
		t.Fatalf("extracted from empty range: %v", got)
	}
	if got := tr.ExtractRange(9, 0, 100, 0); len(got) != 0 {
		t.Fatalf("extracted from missing partition: %v", got)
	}
}

func TestBulkLoad(t *testing.T) {
	var entries []Entry
	for p := int32(1); p <= 3; p++ {
		for k := int64(0); k < 1000; k++ {
			entries = append(entries, Entry{Part: p, Key: k, Row: uint32(k)})
		}
	}
	tr := BulkLoad(entries)
	if tr.Len() != 3000 || tr.PartitionCount(2) != 1000 {
		t.Fatalf("bulk load shape: %d / %d", tr.Len(), tr.PartitionCount(2))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d for 3000 entries", tr.Height())
	}
	// Inserts after bulk load must work.
	tr.Insert(Entry{Part: 2, Key: 500, Row: 9999})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := BulkLoad(nil)
	if empty.Len() != 0 {
		t.Fatal("empty bulk load")
	}
}

func TestBulkLoadPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bulk load accepted")
		}
	}()
	BulkLoad([]Entry{{Part: 2}, {Part: 1}})
}

func TestCompactReclaimsGhosts(t *testing.T) {
	tr := New()
	for i := int64(0); i < 5000; i++ {
		tr.Insert(Entry{Part: 1, Key: i, Row: uint32(i)})
	}
	tr.ExtractRange(1, 0, 4000, 0)
	hBefore := tr.Height()
	tr.Compact()
	if tr.Len() != 1000 {
		t.Fatalf("Len after compact = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() > hBefore {
		t.Fatalf("compact grew the tree: %d -> %d", hBefore, tr.Height())
	}
	if c, _ := tr.AggregateRange(1, 0, 5000); c != 1000 {
		t.Fatalf("entries after compact = %d", c)
	}
}

func TestQuickInsertExtractInvariants(t *testing.T) {
	f := func(keys []int64, loRaw, hiRaw int64) bool {
		if len(keys) > 300 {
			keys = keys[:300]
		}
		tr := New()
		for i, k := range keys {
			tr.Insert(Entry{Part: int32(i % 3), Key: k % 1000, Row: uint32(i)})
		}
		lo, hi := loRaw%1000, hiRaw%1000
		if lo > hi {
			lo, hi = hi, lo
		}
		var wantCount int64
		for i, k := range keys {
			if i%3 == 1 && k%1000 >= lo && k%1000 < hi {
				wantCount++
			}
		}
		c, _ := tr.AggregateRange(1, lo, hi)
		if c != wantCount {
			return false
		}
		got := tr.ExtractRange(1, lo, hi, 0)
		if int64(len(got)) != wantCount {
			return false
		}
		c, _ = tr.AggregateRange(1, lo, hi)
		return c == 0 && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionsListing(t *testing.T) {
	tr := New()
	tr.Insert(Entry{Part: 5, Key: 1})
	tr.Insert(Entry{Part: 2, Key: 1})
	tr.Insert(Entry{Part: 9, Key: 1})
	ps := tr.Partitions()
	if len(ps) != 3 || ps[0] != 2 || ps[1] != 5 || ps[2] != 9 {
		t.Fatalf("Partitions = %v", ps)
	}
	tr.ExtractRange(5, 0, 10, 0)
	ps = tr.Partitions()
	if len(ps) != 2 {
		t.Fatalf("empty partition still listed: %v", ps)
	}
}
