// Online shard rebalancing: the rebalancer watches per-shard row
// counts and repairs population drift with split and merge operations
// that readers never block on (the shard map swap reuses the
// piece-latch discipline one level up — see internal/shard/update.go).
package ingest

import "adaptix/internal/wal"

// Rebalance runs one split/merge pass over the current shard map and
// returns the number of splits and merges performed.
//
// A shard whose row count exceeds SplitFactor times the mean (and
// MinShardRows) is split at its median; two adjacent shards whose
// combined rows fall below MergeFraction times the mean are merged.
// The thresholds are hysteretic by construction — a fresh split yields
// halves of roughly mean size, far above the merge threshold — so the
// rebalancer cannot oscillate. Each operation is one system
// transaction with one wal.ShardSplit / wal.ShardMerge record.
func (g *Coordinator) Rebalance() (splits, merges int) {
	stats := g.col.Snapshot()
	if len(stats) == 0 {
		return 0, 0
	}
	var rows int64
	for _, s := range stats {
		rows += int64(s.Rows)
	}
	mean := float64(rows) / float64(len(stats))
	if mean < 1 {
		return 0, 0
	}

	// Splits, descending so earlier ordinals stay valid.
	shards := len(stats)
	for i := len(stats) - 1; i >= 0; i-- {
		if shards >= g.opts.MaxShards {
			break
		}
		r := stats[i].Rows
		if r < g.opts.MinShardRows || float64(r) <= g.opts.SplitFactor*mean {
			continue
		}
		if g.splitShard(i) {
			splits++
			shards++
		}
	}

	// Merges, on a fresh snapshot (splits shifted ordinals). After a
	// merge at i the pair (i-1, i) is re-examined next iteration with
	// a stale row count for the merged shard; skipping one extra
	// ordinal keeps the pass conservative.
	stats = g.col.Snapshot()
	for i := len(stats) - 2; i >= 0 && len(stats)-merges > 1; i-- {
		if float64(stats[i].Rows+stats[i+1].Rows) >= g.opts.MergeFraction*mean {
			continue
		}
		if g.mergeShards(i) {
			merges++
			i--
		}
	}
	return splits, merges
}

// splitShard splits shard i inside a system transaction, logging a
// wal.ShardSplit record with the new cut.
func (g *Coordinator) splitShard(i int) bool {
	return g.structural(func() ([]wal.Record, bool) {
		sp, ok := g.col.SplitShard(i)
		if !ok {
			return nil, false
		}
		g.splits.Add(1)
		return []wal.Record{{
			Kind: wal.ShardSplit,
			A:    sp.Cut, B: int64(sp.LeftRows), C: int64(sp.RightRows),
		}}, true
	})
}

// mergeShards merges shards i and i+1 inside a system transaction,
// logging a wal.ShardMerge record with the removed cut.
func (g *Coordinator) mergeShards(i int) bool {
	return g.structural(func() ([]wal.Record, bool) {
		mg, ok := g.col.MergeShards(i)
		if !ok {
			return nil, false
		}
		g.merges.Add(1)
		return []wal.Record{{
			Kind: wal.ShardMerge,
			A:    mg.RemovedBound, B: int64(mg.Rows),
		}}, true
	})
}
