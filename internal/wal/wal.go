// Package wal implements a write-ahead log for the *structural*
// operations of adaptive indexing.
//
// The paper (§4.2) observes that a significant advantage of building
// adaptive indexes over proven index structures is that "index
// creation and reorganization don't require logging detailed index
// contents": the logical contents are derivable from the base data,
// so only small structural records (a crack boundary was added; a run
// was created; a merge step committed) need to be durable for the
// table of contents to be rebuilt after a crash. Losing them entirely
// would also be correct — adaptive indexes are optional and
// re-creatable — but replaying them preserves the knowledge gained
// from earlier query execution ("the side effects of earlier queries
// may be re-created in the new index even without merging").
//
// Records are encoded with a fixed little-endian binary layout and
// protected by a simple XOR checksum; Replay stops at the first
// corrupt or truncated record, mimicking standard log-recovery
// behaviour.
//
// Durability is provided by the file sink (sink.go): CRC-framed
// records in rotating segment files, fsynced on every system
// transaction commit. Periodic Checkpoint records (written by
// internal/ingest) serialize the complete refinement state — shard
// cuts plus every shard's crack boundaries — so Recover folds a
// checkpoint and the records after it into a full Catalog and the
// dead log prefix can be deleted (SegmentTruncator).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind identifies the structural operation a record describes.
type Kind uint8

const (
	// BeginSystem marks the start of a system transaction.
	BeginSystem Kind = iota + 1
	// CommitSystem marks its instant commit.
	CommitSystem
	// CrackBoundary records that a crack boundary was added to a column.
	CrackBoundary
	// RunCreated records that a sorted run (partition) was created.
	RunCreated
	// MergeStep records that a key range moved from source partitions
	// into the final partition.
	MergeStep
	// Checkpoint records one element of a consistent table-of-contents
	// snapshot. A checkpoint is a system transaction containing a
	// header record followed by the full shard-cut list and every
	// shard's crack boundaries (the C payload field selects the element
	// kind, see CkptHeader/CkptCut/CkptCrack). Recovery replaces the
	// object's recovered state with the checkpointed snapshot and
	// applies later records on top, so the log prefix before a durable
	// checkpoint is dead and can be truncated.
	Checkpoint
	// ShardInsert records that a batch of differential updates was
	// group-applied (merged) into one shard's cracker array.
	ShardInsert
	// ShardSplit records that a shard-map cut was added: a shard was
	// split at the cut value (also used to bootstrap-log the initial
	// shard map, so recovery rebuilds the full map).
	ShardSplit
	// ShardMerge records that a shard-map cut was removed: the two
	// shards adjacent to it were merged.
	ShardMerge
	// EpochSeal records that one shard's open differential epoch was
	// sealed (the first half of an epoch-chain group-apply; writers
	// roll to the next epoch without parking).
	EpochSeal
	// EpochApply records that every sealed epoch up to a watermark was
	// merged into one shard's cracker array. An EpochSeal without a
	// later EpochApply covering its id marks a half-applied epoch: the
	// merge never committed, so recovery must not assume the base
	// incorporates it (the checkpoint snapshot is cut at the epoch
	// watermark, so nothing needs undoing — the epoch's writes simply
	// replay from LogicalWrite records, or are absent without them).
	EpochApply
	// LogicalWrite records one routed update — value plus operation —
	// tagged with the epoch it landed in. Optional (ingest
	// Options.LogWrites): it closes the lose-writes-since-last-
	// checkpoint window by letting recovery replay the data tail past
	// the checkpoint's epoch watermark.
	LogicalWrite
)

// String returns the kind's log-friendly name.
func (k Kind) String() string {
	switch k {
	case BeginSystem:
		return "begin-system"
	case CommitSystem:
		return "commit-system"
	case CrackBoundary:
		return "crack-boundary"
	case RunCreated:
		return "run-created"
	case MergeStep:
		return "merge-step"
	case Checkpoint:
		return "checkpoint"
	case ShardInsert:
		return "shard-insert"
	case ShardSplit:
		return "shard-split"
	case ShardMerge:
		return "shard-merge"
	case EpochSeal:
		return "epoch-seal"
	case EpochApply:
		return "epoch-apply"
	case LogicalWrite:
		return "logical-write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Checkpoint element kinds, carried in the C payload field of a
// Checkpoint record.
const (
	// CkptHeader opens a checkpoint: A = shard count, B = checkpoint
	// sequence number. Recovery resets the object's shard cuts and
	// crack boundary sets when the checkpoint's transaction commits.
	CkptHeader int64 = iota
	// CkptCut carries one shard-map cut value in A. Cuts are logged in
	// increasing order; a checkpoint holds shard-count minus one.
	CkptCut
	// CkptCrack carries one crack boundary: A = shard ordinal, B =
	// boundary value.
	CkptCrack
	// CkptEpoch carries the checkpoint's epoch watermark in A: the
	// accompanying data snapshot holds the column's contents up to
	// exactly this epoch (the checkpoint writer seals every open epoch
	// first, so the cut is exact). Recovery discards LogicalWrite
	// records at or below the watermark — the snapshot already has
	// them — and replays only the ones beyond it.
	CkptEpoch
)

// Record is one structural log record. The three int64 payload fields
// are interpreted per kind:
//
//	CrackBoundary: A = boundary value
//	RunCreated:    A = partition id, B = record count
//	MergeStep:     A = low key, B = high key, C = records moved
//	Checkpoint:    C = element kind (CkptHeader/CkptCut/CkptCrack/CkptEpoch), A/B per element
//	ShardInsert:   A = shard ordinal, B = inserts merged, C = deletes merged
//	ShardSplit:    A = cut value, B = left rows, C = right rows
//	ShardMerge:    A = removed cut value, B = merged rows
//	EpochSeal:     A = shard ordinal, B = sealed epoch id, C = records sealed
//	EpochApply:    A = shard ordinal, B = applied epoch watermark, C = records merged
//	LogicalWrite:  A = value, B = epoch id, C = op (0 insert, 1 delete)
type Record struct {
	// LSN is the log sequence number, assigned by Append.
	LSN uint64
	// Txn is the system transaction id.
	Txn uint64
	// Kind is the operation.
	Kind Kind
	// Object names the index/column the record concerns.
	Object string
	// A, B, C are the per-kind payload values.
	A, B, C int64
}

// Log is an append-only structural log. The zero value is not usable;
// use New.
type Log struct {
	mu      sync.Mutex
	records []Record
	nextLSN uint64
	sink    io.Writer // optional durable sink
}

// New creates a log. sink may be nil (in-memory only); when non-nil,
// every appended record is encoded and written through.
func New(sink io.Writer) *Log {
	return &Log{nextLSN: 1, sink: sink}
}

// Append assigns the next LSN to r, stores it, and (if a sink is
// configured) writes it durably. When the sink implements Syncer, a
// CommitSystem record additionally forces the sink to stable storage
// before Append returns — fsync-on-commit, the write-ahead rule for
// system transactions. It returns the assigned LSN.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.nextLSN++
	if l.sink != nil {
		if _, err := l.sink.Write(Encode(r)); err != nil {
			return 0, fmt.Errorf("wal: append: %w", err)
		}
		if s, ok := l.sink.(Syncer); ok && r.Kind == CommitSystem {
			if err := s.Sync(); err != nil {
				return 0, fmt.Errorf("wal: append: %w", err)
			}
		}
	}
	l.records = append(l.records, r)
	return r.LSN, nil
}

// Sync forces the sink (when it implements Syncer) to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.sink.(Syncer); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Len returns the number of records appended.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of all appended records.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Encode serializes r: header(LSN, Txn, kind, lenObject) + object +
// A,B,C + checksum byte.
func Encode(r Record) []byte {
	obj := []byte(r.Object)
	buf := make([]byte, 0, 8+8+1+4+len(obj)+24+1)
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put64(r.LSN)
	put64(r.Txn)
	buf = append(buf, byte(r.Kind))
	var l4 [4]byte
	binary.LittleEndian.PutUint32(l4[:], uint32(len(obj)))
	buf = append(buf, l4[:]...)
	buf = append(buf, obj...)
	put64(uint64(r.A))
	put64(uint64(r.B))
	put64(uint64(r.C))
	var sum byte
	for _, b := range buf {
		sum ^= b
	}
	buf = append(buf, sum)
	return buf
}

// ErrCorrupt reports a checksum mismatch during decode.
var ErrCorrupt = errors.New("wal: corrupt record")

// Decode parses one record from buf, returning the record and the
// number of bytes consumed. io.ErrUnexpectedEOF means a truncated
// record (normal at a crashed log tail).
func Decode(buf []byte) (Record, int, error) {
	const fixed = 8 + 8 + 1 + 4
	if len(buf) < fixed {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	var r Record
	r.LSN = binary.LittleEndian.Uint64(buf[0:])
	r.Txn = binary.LittleEndian.Uint64(buf[8:])
	r.Kind = Kind(buf[16])
	objLen := int(binary.LittleEndian.Uint32(buf[17:]))
	total := fixed + objLen + 24 + 1
	if objLen > 1<<20 {
		return Record{}, 0, ErrCorrupt
	}
	if len(buf) < total {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	r.Object = string(buf[fixed : fixed+objLen])
	p := fixed + objLen
	r.A = int64(binary.LittleEndian.Uint64(buf[p:]))
	r.B = int64(binary.LittleEndian.Uint64(buf[p+8:]))
	r.C = int64(binary.LittleEndian.Uint64(buf[p+16:]))
	var sum byte
	for _, b := range buf[:total-1] {
		sum ^= b
	}
	if sum != buf[total-1] {
		return Record{}, 0, ErrCorrupt
	}
	return r, total, nil
}

// Replay decodes records from raw until the bytes are exhausted or a
// truncated/corrupt tail is found, invoking apply for each complete
// record. It returns the number of records applied.
func Replay(raw []byte, apply func(Record)) (int, error) {
	n := 0
	for len(raw) > 0 {
		r, consumed, err := Decode(raw)
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt) {
				return n, nil // normal crashed-tail stop
			}
			return n, err
		}
		apply(r)
		raw = raw[consumed:]
		n++
	}
	return n, nil
}

// Catalog is the structural table of contents rebuilt by recovery:
// crack boundaries per column and partitions per index. It
// demonstrates that structure (not contents) is all the log carries.
type Catalog struct {
	// Boundaries maps column name to crack boundary values in append
	// order.
	Boundaries map[string][]int64
	// Partitions maps index name to live partition ids.
	Partitions map[string][]int64
	// ShardBounds maps sharded-column name to its recovered shard-map
	// cut values, in increasing order (ShardSplit adds a cut,
	// ShardMerge removes one; a committed Checkpoint replaces the
	// list). shard.NewWithBounds rebuilds the shard map from this.
	ShardBounds map[string][]int64
	// ShardCracks maps sharded-column name to the per-shard crack
	// boundary sets of the last committed checkpoint, kept aligned
	// with ShardBounds across later splits and merges
	// (len == len(ShardBounds)+1; shard ordinal order). Nil until a
	// checkpoint has committed. shard.NewWithBoundsAndCracks pre-cracks
	// a reopened column to these boundaries.
	ShardCracks map[string][][]int64
	// ShardApplies maps sharded-column name to the number of committed
	// group-apply merges (ShardInsert and EpochApply records).
	ShardApplies map[string]int64
	// EpochWatermark maps sharded-column name to the last committed
	// checkpoint's epoch watermark (CkptEpoch): the data snapshot holds
	// the contents up to exactly this epoch. Zero until a checkpoint
	// with a watermark has committed.
	EpochWatermark map[string]int64
	// TailWrites maps sharded-column name to the logical writes past
	// the epoch watermark, in log order — the data tail a recovered
	// column replays on top of the snapshot (Options.LogWrites).
	// Writes at or below the watermark are discarded: the snapshot
	// already contains them.
	TailWrites map[string][]TailWrite
	// SealedEpochs maps sharded-column name to the ids of committed
	// EpochSeal records, in log order. A sealed id above AppliedEpoch
	// is a half-applied epoch: its group-apply merge never committed
	// before the crash, and recovery does not assume the base
	// incorporates it.
	SealedEpochs map[string][]int64
	// AppliedEpoch maps sharded-column name to the highest committed
	// EpochApply watermark.
	AppliedEpoch map[string]int64
}

// TailWrite is one recovered logical write (LogicalWrite record).
type TailWrite struct {
	// Value is the column value inserted or deleted.
	Value int64
	// Delete selects deletion; otherwise the write inserts Value.
	Delete bool
	// Epoch is the differential epoch the write landed in.
	Epoch int64
}

// Recover rebuilds the catalog from an encoded log image, honouring
// only records of committed system transactions (a begin without a
// commit is ignored, as an aborted refinement leaves no trace).
func Recover(raw []byte) (*Catalog, error) {
	type pending struct {
		recs []Record
	}
	open := map[uint64]*pending{}
	cat := &Catalog{
		Boundaries:     map[string][]int64{},
		Partitions:     map[string][]int64{},
		ShardBounds:    map[string][]int64{},
		ShardCracks:    map[string][][]int64{},
		ShardApplies:   map[string]int64{},
		EpochWatermark: map[string]int64{},
		TailWrites:     map[string][]TailWrite{},
		SealedEpochs:   map[string][]int64{},
		AppliedEpoch:   map[string]int64{},
	}
	// held parks an object's recovered tail writes between a
	// checkpoint's header and its epoch-watermark element: the header
	// supersedes earlier recovered state, but a logical write can race
	// the checkpoint records into the log (its epoch decides, not its
	// position), so the writes are re-admitted by the watermark filter
	// rather than dropped wholesale.
	held := map[string][]TailWrite{}
	applyRec := func(r Record) {
		switch r.Kind {
		case CrackBoundary:
			cat.Boundaries[r.Object] = append(cat.Boundaries[r.Object], r.A)
		case RunCreated:
			cat.Partitions[r.Object] = append(cat.Partitions[r.Object], r.A)
		case Checkpoint:
			switch r.C {
			case CkptHeader:
				// A committed checkpoint supersedes everything recovered
				// so far for this object.
				cat.ShardBounds[r.Object] = nil
				cat.ShardCracks[r.Object] = make([][]int64, r.A)
				held[r.Object] = cat.TailWrites[r.Object]
				cat.TailWrites[r.Object] = nil
			case CkptEpoch:
				cat.EpochWatermark[r.Object] = r.A
				var keep []TailWrite
				for _, tw := range held[r.Object] {
					if tw.Epoch > r.A {
						keep = append(keep, tw)
					}
				}
				cat.TailWrites[r.Object] = append(keep, cat.TailWrites[r.Object]...)
				delete(held, r.Object)
			case CkptCut:
				cat.ShardBounds[r.Object] = insertCut(cat.ShardBounds[r.Object], r.A)
			case CkptCrack:
				if cr := cat.ShardCracks[r.Object]; r.A >= 0 && r.A < int64(len(cr)) {
					cr[r.A] = append(cr[r.A], r.B)
				}
			}
		case ShardInsert:
			cat.ShardApplies[r.Object]++
		case ShardSplit:
			cat.splitShard(r.Object, r.A)
		case ShardMerge:
			cat.mergeShard(r.Object, r.A)
		case EpochSeal:
			cat.SealedEpochs[r.Object] = append(cat.SealedEpochs[r.Object], r.B)
		case EpochApply:
			if r.B > cat.AppliedEpoch[r.Object] {
				cat.AppliedEpoch[r.Object] = r.B
			}
			cat.ShardApplies[r.Object]++
		case LogicalWrite:
			if r.B > cat.EpochWatermark[r.Object] {
				cat.TailWrites[r.Object] = append(cat.TailWrites[r.Object],
					TailWrite{Value: r.A, Delete: r.C != 0, Epoch: r.B})
			}
		}
	}
	var prevLSN uint64
	_, err := Replay(raw, func(r Record) {
		// An LSN discontinuity marks lost records: a process restart
		// (the sequence resets to 1) or a damaged segment skipped by
		// ReadDir. Transactions still open across the gap can never
		// complete validly — their missing records are unrecoverable —
		// so they are abandoned, and their later stragglers (records
		// or a commit arriving after the gap) must not be mistaken for
		// autonomous work. Hand-built images without LSNs (all zero)
		// are unaffected.
		if prevLSN != 0 && r.LSN != prevLSN+1 {
			for k := range open {
				delete(open, k)
			}
		}
		prevLSN = r.LSN
		switch r.Kind {
		case BeginSystem:
			open[r.Txn] = &pending{}
		case CommitSystem:
			if p := open[r.Txn]; p != nil {
				for _, pr := range p.recs {
					applyRec(pr)
				}
				delete(open, r.Txn)
			}
		default:
			if p := open[r.Txn]; p != nil {
				p.recs = append(p.recs, r)
			} else if r.Txn == 0 {
				// Autonomous record outside any system txn: apply
				// directly.
				applyRec(r)
			}
			// A non-zero Txn with no open Begin is an orphan of an
			// abandoned transaction: ignored.
		}
	})
	if err != nil {
		return nil, err
	}
	return cat, nil
}

// insertCut inserts v into the sorted cut list (idempotent).
func insertCut(cuts []int64, v int64) []int64 {
	i := sort.Search(len(cuts), func(i int) bool { return cuts[i] >= v })
	if i < len(cuts) && cuts[i] == v {
		return cuts
	}
	cuts = append(cuts, 0)
	copy(cuts[i+1:], cuts[i:])
	cuts[i] = v
	return cuts
}

// removeCut removes v from the sorted cut list if present.
func removeCut(cuts []int64, v int64) []int64 {
	i := sort.Search(len(cuts), func(i int) bool { return cuts[i] >= v })
	if i < len(cuts) && cuts[i] == v {
		return append(cuts[:i], cuts[i+1:]...)
	}
	return cuts
}

// splitShard applies a committed ShardSplit at cut to obj's recovered
// state: the cut joins the cut list and, when a checkpointed crack set
// exists, the owning shard's boundaries are divided between the two
// halves. A boundary equal to the cut goes to BOTH halves — it becomes
// the left shard's top edge and the right shard's bottom edge, exactly
// what shard.SplitShard's inclusive warm replay produces in memory.
func (cat *Catalog) splitShard(obj string, cut int64) {
	cuts := cat.ShardBounds[obj]
	i := sort.Search(len(cuts), func(i int) bool { return cuts[i] >= cut })
	if i < len(cuts) && cuts[i] == cut {
		return // idempotent: cut already present
	}
	if cr := cat.ShardCracks[obj]; len(cr) == len(cuts)+1 {
		var left, right []int64
		for _, b := range cr[i] {
			if b <= cut {
				left = append(left, b)
			}
			if b >= cut {
				right = append(right, b)
			}
		}
		next := make([][]int64, 0, len(cr)+1)
		next = append(next, cr[:i]...)
		next = append(next, left, right)
		next = append(next, cr[i+1:]...)
		cat.ShardCracks[obj] = next
	}
	cat.ShardBounds[obj] = insertCut(cuts, cut)
}

// mergeShard applies a committed ShardMerge that removed cut: the two
// adjacent shards' crack sets are concatenated with the removed cut
// kept as a crack boundary (mirroring shard.MergeShards' warm replay).
func (cat *Catalog) mergeShard(obj string, cut int64) {
	cuts := cat.ShardBounds[obj]
	i := sort.Search(len(cuts), func(i int) bool { return cuts[i] >= cut })
	if i >= len(cuts) || cuts[i] != cut {
		return // unknown cut: nothing to merge
	}
	if cr := cat.ShardCracks[obj]; len(cr) == len(cuts)+1 {
		merged := append(append(append([]int64(nil), cr[i]...), cut), cr[i+1]...)
		next := make([][]int64, 0, len(cr)-1)
		next = append(next, cr[:i]...)
		next = append(next, merged)
		next = append(next, cr[i+2:]...)
		cat.ShardCracks[obj] = next
	}
	cat.ShardBounds[obj] = removeCut(cuts, cut)
}
