package experiments

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/metrics"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// CollisionCell is one run of the single-writer collision harness.
type CollisionCell struct {
	// Parked selects the legacy parked group-apply (the baseline); the
	// default is the epoch write path.
	Parked bool
	// Inserts is the number of routed writes the single writer issued.
	Inserts int
	// Applies counts the group-apply rebuilds the forcer committed —
	// each one is a collision opportunity.
	Applies int64
	// P50, P99 and Max summarize the per-insert latency distribution.
	P50, P99, Max time.Duration
	// Stalled counts inserts that exceeded the stall threshold
	// (100µs — orders of magnitude above an uncontended epoch append),
	// and TotalStall sums their latencies. On a fast machine the stall
	// count is a tiny fraction of all inserts, so the percentiles
	// dilute it; these two report the collision tail undiluted.
	Stalled    int
	TotalStall time.Duration
}

// stallThreshold separates a parked (or otherwise delayed) insert from
// an ordinary epoch append in the collision harness.
const stallThreshold = 100 * time.Microsecond

// CollisionReport is the outcome of WriterCollision: the same forced
// collision schedule under the epoch write path and the parked
// baseline.
type CollisionReport struct {
	Epoch  CollisionCell
	Parked CollisionCell
}

// WriterCollision is the dedicated single-writer collision harness.
//
// The ReadWriteMix ablation shows the epoch-vs-parked stall collapse
// clearly at 4 and 16 clients, but a single writer rarely happens to
// race a group-apply rebuild, so the 1-client cells under-represent
// the win. This harness removes the luck: ONE writer streams inserts
// into one shard while a forcer goroutine group-applies that same
// shard continuously, so nearly every rebuild overlaps the write
// stream. Under the parked baseline the writer parks for whole
// rebuilds (p99 ~ rebuild latency); under the epoch path it rolls
// over to the next epoch file (p99 ~ an epoch append).
func WriterCollision(cfg Config, w io.Writer) *CollisionReport {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	rep := &CollisionReport{
		Epoch:  runCollisionCell(cfg, d, false),
		Parked: runCollisionCell(cfg, d, true),
	}
	if w != nil {
		t := &metrics.Table{Header: []string{"apply path", "inserts", "applies", "p50", "p99", "max", "stalled", "total stall"}}
		for _, c := range []CollisionCell{rep.Epoch, rep.Parked} {
			name := "epoch"
			if c.Parked {
				name = "parked"
			}
			t.Add(name, fmt.Sprint(c.Inserts), fmt.Sprint(c.Applies),
				metrics.FormatDuration(c.P50),
				metrics.FormatDuration(c.P99),
				metrics.FormatDuration(c.Max),
				fmt.Sprint(c.Stalled),
				metrics.FormatDuration(c.TotalStall))
		}
		fmt.Fprintf(w, "Single-writer collision harness: 1 writer vs a continuous group-apply forcer, %d rows\n%s\n",
			cfg.Rows, t)
	}
	return rep
}

func runCollisionCell(cfg Config, d *workload.Dataset, parked bool) CollisionCell {
	// Two fat shards: the rebuild of the written shard is expensive
	// enough that parking inside it is clearly visible.
	col := shard.New(d.Values, shard.Options{
		Shards: 2, Seed: cfg.Seed,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	cell := CollisionCell{Parked: parked, Inserts: cfg.Queries * 8}

	// The forcer group-applies shard 0 — the only shard written — as
	// soon as a realistic batch of pending writes accumulates (the
	// same trigger shape as ingest's ApplyThreshold, just with no
	// cadence slack), so nearly every rebuild overlaps the write
	// stream without degenerating into empty back-to-back applies.
	// The writer does not start until the forcer is live (the ready
	// gate), so even the first inserts race a rebuild.
	const applyBatch = 256
	var applies atomic.Int64
	ready := make(chan struct{})
	writerDone := make(chan struct{})
	forcerDone := make(chan struct{})
	go func() {
		defer close(forcerDone)
		close(ready)
		for {
			select {
			case <-writerDone:
				return
			default:
			}
			st := col.Snapshot()[0]
			if st.PendingInserts+st.PendingDeletes < applyBatch {
				// Back off instead of busy-polling: Snapshot allocates,
				// and a hot spin loop would pollute the very latency
				// distribution the harness measures.
				time.Sleep(100 * time.Microsecond)
				continue
			}
			var ok bool
			if parked {
				_, ok = col.ApplyShardParked(0)
			} else {
				_, ok = col.ApplyShard(0)
			}
			if ok {
				applies.Add(1)
			}
		}
	}()
	<-ready

	// The single writer streams inserts into shard 0's value band. It
	// runs for at least Inserts writes and then keeps going until the
	// forcer has committed a meaningful number of rebuilds (bounded by
	// a hard deadline), so the latency distribution actually contains
	// collisions even on a fast machine where the minimum insert count
	// completes in microseconds.
	const minApplies = 32
	deadline := time.Now().Add(2 * time.Second)
	band := col.Bounds()[0]
	if band <= 1 {
		band = 2
	}
	r := workload.NewRNG(cfg.Seed + 77)
	stalls := make([]time.Duration, 0, cell.Inserts)
	for i := 0; i < cell.Inserts || (applies.Load() < minApplies && time.Now().Before(deadline)); i++ {
		v := r.Int64n(band)
		t0 := time.Now()
		_ = col.Insert(context.Background(), v)
		stalls = append(stalls, time.Since(t0))
	}
	close(writerDone)
	<-forcerDone
	cell.Inserts = len(stalls)

	cell.Applies = applies.Load()
	for _, s := range stalls {
		if s >= stallThreshold {
			cell.Stalled++
			cell.TotalStall += s
		}
	}
	cell.P50 = percentile(stalls, 0.50)
	cell.P99 = percentile(stalls, 0.99)
	cell.Max = percentile(stalls, 1.0)
	return cell
}
