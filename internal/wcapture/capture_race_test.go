// Concurrency gate of the capture tap, run under -race in CI: readers,
// writers, structural rebalancing, and signature/retention observers
// all hammer one recorder at once while the sink drains to disk. The
// assertions pin the accounting invariant — every pushed record is
// eventually persisted or counted dropped, never lost silently and
// never duplicated.
package wcapture_test

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/metrics"
	"adaptix/internal/shard"
	"adaptix/internal/wcapture"
)

func TestConcurrentCaptureUnderRace(t *testing.T) {
	const rows = 16384
	values := make([]int64, rows)
	for i := range values {
		values[i] = int64(i)
	}
	ob := metrics.NewObserver(metrics.ObserverOptions{})
	trace := filepath.Join(t.TempDir(), "race.trace")
	rec, err := wcapture.New(wcapture.Options{Ring: 4096, Sink: trace}, true, ob)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetMethod(1)
	col := shard.New(values, shard.Options{Shards: 4, Obs: ob, Capture: rec})
	if lo, hi, ok := col.KeyDomain(); ok {
		rec.SetDomain(lo, hi)
	}
	g := ingest.New(col, ingest.Options{})
	g.Start()

	ctx := context.Background()
	var wg sync.WaitGroup

	// Readers: tagged range queries roaming the key space.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			qctx := crackindex.WithTag(ctx, "racer")
			for i := 0; i < 300; i++ {
				lo := int64((i*97 + id*131) % rows)
				if i%2 == 0 {
					if _, _, err := col.Count(qctx, lo, lo+256); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, _, err := col.Sum(qctx, lo, lo+256); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}

	// Writers: inserts of fresh keys and deletes of existing ones.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if i%2 == 0 {
					if err := g.Insert(ctx, int64(rows+id*1000+i)); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := g.DeleteValue(ctx, int64((i*193+id*777)%rows)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	// Rebalancer: group-applies plus explicit split/merge churn, so
	// capture races against shard-map republication.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			g.Maintain()
			col.SplitShard(i % col.NumShards())
			col.MergeShards(0)
		}
	}()

	// Observers: retention dumps and signature reads during capture.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			rec.Retained()
			sig := rec.Signature()
			if sig.Captured != sig.Reads+sig.Writes {
				t.Errorf("signature split %d+%d != %d", sig.Reads, sig.Writes, sig.Captured)
				return
			}
		}
	}()

	wg.Wait()
	g.Close()
	sig := rec.Signature()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	const reads, writes = 3 * 300, 2 * 300
	if sig.Reads != reads || sig.Writes != writes {
		t.Fatalf("signature reads/writes = %d/%d, want %d/%d", sig.Reads, sig.Writes, reads, writes)
	}
	recs, err := wcapture.ReadTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(len(recs)) + rec.Dropped(); got != reads+writes {
		t.Fatalf("persisted %d + dropped %d = %d, want %d (every record accounted)",
			len(recs), rec.Dropped(), got, reads+writes)
	}
	for i, r := range recs {
		if r.Kind < wcapture.RecCount || r.Kind > wcapture.RecDelete {
			t.Fatalf("trace record %d has unknown kind %d", i, r.Kind)
		}
		if r.IsRead() && r.Tag != 0 && r.Hi-r.Lo != 256 {
			t.Fatalf("trace record %d: tagged read with width %d, want 256", i, r.Hi-r.Lo)
		}
	}
}
