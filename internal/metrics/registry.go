// A Registry names the instruments of one index so an exposition
// layer (Prometheus text, expvar, a CLI scraper) can walk them without
// knowing what the engine measures. Registration happens at index
// construction; the hot paths touch only the returned instrument
// pointers, never the registry maps.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Gauge is an instantaneous value (queue depth, shard count). All
// methods are atomic and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of counters, gauges, and histograms.
// Get-or-create registration is mutex-guarded; reading and recording
// through the returned instruments is lock-free.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	counterFuncs map[string]func() int64
	gauges       map[string]*Gauge
	histograms   map[string]*Histogram
	help         map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		counterFuncs: make(map[string]func() int64),
		gauges:       make(map[string]*Gauge),
		histograms:   make(map[string]*Histogram),
		help:         make(map[string]string),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. help documents the metric in expositions (first
// registration wins).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.setHelpLocked(name, help)
	}
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time. It exists for counters a hot path keeps in its own
// cache-local atomics (so several per-query increments share one
// cache line) while still appearing in every exposition walk. First
// registration wins.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counterFuncs[name]; !ok {
		r.counterFuncs[name] = fn
		r.setHelpLocked(name, help)
	}
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.setHelpLocked(name, help)
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
		r.setHelpLocked(name, help)
	}
	return h
}

func (r *Registry) setHelpLocked(name, help string) {
	if help != "" {
		if _, ok := r.help[name]; !ok {
			r.help[name] = help
		}
	}
}

// Help returns the help string registered for name ("" if none).
func (r *Registry) Help(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// VisitCounters calls f for each counter (direct and func-backed) in
// name order with its current value.
func (r *Registry) VisitCounters(f func(name string, value int64)) {
	for _, name := range r.counterNames() {
		r.mu.Lock()
		c := r.counters[name]
		fn := r.counterFuncs[name]
		r.mu.Unlock()
		if c != nil {
			f(name, c.Load())
		} else {
			f(name, fn())
		}
	}
}

// VisitGauges calls f for each gauge in name order with its current
// value.
func (r *Registry) VisitGauges(f func(name string, value int64)) {
	for _, name := range r.gaugeNames() {
		r.mu.Lock()
		g := r.gauges[name]
		r.mu.Unlock()
		f(name, g.Load())
	}
}

// VisitHistograms calls f for each histogram in name order with a
// fresh snapshot (the live buckets are never exposed).
func (r *Registry) VisitHistograms(f func(name string, snap HistSnapshot)) {
	for _, name := range r.histogramNames() {
		r.mu.Lock()
		h := r.histograms[name]
		r.mu.Unlock()
		f(name, h.Snapshot())
	}
}

func (r *Registry) counterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.counterFuncs))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.counterFuncs {
		if _, dup := r.counters[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func (r *Registry) gaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.gauges)
}

func (r *Registry) histogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.histograms)
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
