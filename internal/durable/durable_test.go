package durable

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// qctx is the uncancellable context the tests drive queries with.
var qctx = context.Background()

// testOptions disables fsync (the tests simulate crashes by mangling
// files directly) and pins deterministic shard/index settings.
func testOptions(values []int64) Options {
	return Options{
		Values: values,
		Shard: shard.Options{
			Shards: 4, Seed: 9,
			Index: crackindex.Options{Latching: crackindex.LatchPiece},
		},
		NoSync: true,
	}
}

// brute is a scan baseline over a value multiset.
type brute []int64

func (b brute) count(lo, hi int64) int64 {
	var n int64
	for _, v := range b {
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}

func (b brute) sum(lo, hi int64) int64 {
	var s int64
	for _, v := range b {
		if v >= lo && v < hi {
			s += v
		}
	}
	return s
}

// assertAgreesWithScan compares the store's answers against the scan
// baseline across a deterministic range sweep.
func assertAgreesWithScan(t *testing.T, c *Column, base brute, domain int64) {
	t.Helper()
	r := workload.NewRNG(77)
	for i := 0; i < 200; i++ {
		lo := r.Int64n(domain)
		hi := lo + 1 + r.Int64n(domain-lo)
		if got, _, _ := c.Count(qctx, lo, hi); got != base.count(lo, hi) {
			t.Fatalf("Count[%d,%d) = %d, scan baseline %d", lo, hi, got, base.count(lo, hi))
		}
		if got, _, _ := c.Sum(qctx, lo, hi); got != base.sum(lo, hi) {
			t.Fatalf("Sum[%d,%d) = %d, scan baseline %d", lo, hi, got, base.sum(lo, hi))
		}
	}
}

func totalCracks(c *Column) int64 {
	var n int64
	for _, s := range c.Column().Snapshot() {
		n += s.Cracks
	}
	return n
}

func TestOpenCreateReopenCleanClose(t *testing.T) {
	dir := t.TempDir()
	d := workload.NewUniqueUniform(1<<13, 3)
	c, err := Open(dir, testOptions(d.Values))
	if err != nil {
		t.Fatal(err)
	}
	if c.Recovered() {
		t.Fatal("fresh store reports Recovered")
	}
	r := workload.NewRNG(5)
	for i := 0; i < 100; i++ {
		lo := r.Int64n(d.Domain)
		c.Count(qctx, lo, lo+1+r.Int64n(d.Domain-lo))
	}
	warmBounds := c.Column().CrackBoundaries()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}

	re, err := Open(dir, testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovered() {
		t.Fatal("reopen did not recover")
	}
	assertAgreesWithScan(t, re, brute(d.Values), d.Domain)
	// Clean close loses no refinement: every warm boundary is back.
	reBounds := re.Column().CrackBoundaries()
	var warmN, reN int
	for _, s := range warmBounds {
		warmN += len(s)
	}
	for _, s := range reBounds {
		reN += len(s)
	}
	if reN < warmN {
		t.Fatalf("reopened store has %d crack boundaries, warm store had %d", reN, warmN)
	}
}

func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := workload.NewUniqueUniform(1<<13, 7)
	opts := testOptions(d.Values)
	// Keep phase 2 structurally quiet so the test controls exactly
	// what is durable: no auto-checkpoints, no rebalancer splits.
	opts.CheckpointEvery = 1 << 30
	opts.Ingest = ingest.Options{ApplyThreshold: 64, MinShardRows: 1 << 30}

	c, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 — crack under load: queries refine, writes route and
	// group-apply.
	r := workload.NewRNG(13)
	for i := 0; i < 300; i++ {
		lo := r.Int64n(d.Domain)
		c.Count(qctx, lo, lo+1+r.Int64n(d.Domain-lo))
		if i%2 == 0 {
			if err := c.Insert(qctx, r.Int64n(d.Domain)); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Ingestor().Maintain()
	// Drain every differential so phase 2's writes cannot cross the
	// group-apply threshold and trigger structural work mid-"crash".
	for i := c.Column().NumShards() - 1; i >= 0; i-- {
		c.Column().ApplyShard(i)
	}

	// The probe query earns its boundaries now, pre-checkpoint; its
	// warm repeat measures steady-state crack cost.
	qlo, qhi := d.Domain/4, d.Domain/4+d.Domain/8
	c.Count(qctx, qlo, qhi)
	warmBefore := totalCracks(c)
	warmAnswer, _, _ := c.Count(qctx, qlo, qhi)
	warmCost := totalCracks(c) - warmBefore

	// Durable point: everything above survives the crash.
	if !c.Checkpoint() {
		t.Fatal("checkpoint failed")
	}
	expected := append(brute(nil), c.Column().Values()...)
	sort.Slice(expected, func(i, j int) bool { return expected[i] < expected[j] })

	// Phase 2 — lost tail: writes after the last checkpoint, then the
	// process dies mid-record (garbage at the log tail), never Close.
	for i := 0; i < 200; i++ {
		if err := c.Insert(qctx, r.Int64n(d.Domain)); err != nil {
			t.Fatal(err)
		}
	}
	tearLogTail(t, dir)

	// Reopen from disk.
	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovered() {
		t.Fatal("reopen did not recover")
	}

	// (a) Query answers identical to the scan baseline over the
	// checkpointed contents.
	if got := re.Column().Rows(); got != len(expected) {
		t.Fatalf("recovered %d rows, checkpoint had %d", got, len(expected))
	}
	assertAgreesWithScan(t, re, expected, d.Domain)

	// (b) The first post-reopen query performs no more cracks than the
	// warm pre-crash query: refinement knowledge survived.
	reBefore := totalCracks(re)
	reAnswer, _, _ := re.Count(qctx, qlo, qhi)
	reCost := totalCracks(re) - reBefore
	if reAnswer != expected.count(qlo, qhi) {
		t.Fatalf("probe Count = %d, want %d", reAnswer, expected.count(qlo, qhi))
	}
	_ = warmAnswer // answers differ across the durable point (phase-1 writes only)
	if reCost > warmCost {
		t.Fatalf("first post-reopen query cracked %d times, warm pre-crash query %d", reCost, warmCost)
	}
}

// tearLogTail appends a partial garbage frame to the newest WAL
// segment, simulating a crash mid-write.
func tearLogTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to tear: %v %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x99, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverySurvivesDeletedValues(t *testing.T) {
	dir := t.TempDir()
	d := workload.NewUniqueUniform(1<<12, 11)
	c, err := Open(dir, testOptions(d.Values))
	if err != nil {
		t.Fatal(err)
	}
	deleted := map[int64]bool{}
	r := workload.NewRNG(17)
	for i := 0; i < 100; i++ {
		v := r.Int64n(d.Domain)
		ok, err := c.DeleteValue(qctx, v)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			deleted[v] = true
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var expected brute
	for _, v := range d.Values {
		if !deleted[v] {
			expected = append(expected, v)
		}
	}
	re, err := Open(dir, testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertAgreesWithScan(t, re, expected, d.Domain)
}

func TestOpenWALOnlyDirectoryKeepsCallerValues(t *testing.T) {
	// A crash between the bootstrap WAL records and the initial
	// checkpoint's snapshot rename leaves segments but no base.snap.
	// Reopening with the same Values must not silently produce an
	// empty column.
	dir := t.TempDir()
	d := workload.NewUniqueUniform(1<<12, 23)
	c, err := Open(dir, testOptions(d.Values))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "base.snap")); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, testOptions(d.Values))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovered() {
		t.Fatal("store without a snapshot reports Recovered")
	}
	if got := re.Column().Rows(); got != len(d.Values) {
		t.Fatalf("rows = %d, want %d (caller values discarded)", got, len(d.Values))
	}
	assertAgreesWithScan(t, re, brute(d.Values), d.Domain)
}

func TestCorruptSnapshotReported(t *testing.T) {
	dir := t.TempDir()
	d := workload.NewUniqueUniform(1<<10, 19)
	c, err := Open(dir, testOptions(d.Values))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "base.snap"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, "base.snap"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions(nil)); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}
