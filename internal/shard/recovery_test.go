package shard

import (
	"testing"

	"adaptix/internal/workload"
)

// warmUp runs a fixed query mix so every shard earns crack boundaries.
func warmUp(t *testing.T, c *Column, domain int64) {
	t.Helper()
	r := workload.NewRNG(31)
	for i := 0; i < 200; i++ {
		lo := r.Int64n(domain)
		hi := lo + 1 + r.Int64n(domain-lo)
		if _, st, _ := c.Count(qctx, lo, hi); st.Skipped {
			t.Fatal("unexpected skip in single-threaded warm-up")
		}
	}
}

func totalCracks(c *Column) int64 {
	var n int64
	for _, s := range c.Snapshot() {
		n += s.Cracks
	}
	return n
}

func TestCrackBoundariesSnapshot(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 11)
	c := New(d.Values, Options{Shards: 4, Seed: 7, Index: pieceOpts()})
	if got := c.CrackBoundaries(); len(got) != c.NumShards() {
		t.Fatalf("CrackBoundaries lists %d shards, want %d", len(got), c.NumShards())
	}
	warmUp(t, c, d.Domain)
	cracks := c.CrackBoundaries()
	var total int
	bounds := c.Bounds()
	for i, set := range cracks {
		total += len(set)
		lo, hi := int64(minKey), int64(maxKey)
		if i > 0 {
			lo = bounds[i-1]
		}
		if i < len(bounds) {
			hi = bounds[i]
		}
		// Boundaries live in [lo, hi]: queries clamped at a shard edge
		// crack exactly at the edge value.
		for _, b := range set {
			if b < lo || b > hi {
				t.Fatalf("shard %d boundary %d outside range [%d,%d]", i, b, lo, hi)
			}
		}
	}
	if total == 0 {
		t.Fatal("warm-up earned no crack boundaries")
	}
}

func TestValuesMaterializesLogicalContents(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 13)
	c := New(d.Values, Options{Shards: 4, Seed: 7, Index: pieceOpts()})
	if err := c.Insert(qctx, 1<<20); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.DeleteValue(qctx, d.Values[0]); err != nil || !ok {
		t.Fatalf("DeleteValue: %v %v", ok, err)
	}
	vals := c.Values()
	if len(vals) != len(d.Values) {
		t.Fatalf("Values() has %d rows, want %d", len(vals), len(d.Values))
	}
	count := map[int64]int{}
	for _, v := range vals {
		count[v]++
	}
	if count[1<<20] != 1 {
		t.Fatal("inserted value missing from dump")
	}
	if count[d.Values[0]] != 0 {
		t.Fatal("deleted value present in dump")
	}
}

func TestNewWithBoundsAndCracksPreCracks(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 17)
	warm := New(d.Values, Options{Shards: 4, Seed: 7, Index: pieceOpts()})
	warmUp(t, warm, d.Domain)

	bounds, cracks := warm.Bounds(), warm.CrackBoundaries()
	re := NewWithBoundsAndCracks(warm.Values(), bounds, cracks, Options{Index: pieceOpts()})
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	reCracks := re.CrackBoundaries()
	for i, want := range cracks {
		got := map[int64]bool{}
		for _, b := range reCracks[i] {
			got[b] = true
		}
		for _, b := range want {
			if !got[b] {
				t.Fatalf("shard %d: boundary %d not pre-cracked", i, b)
			}
		}
	}

	// Refinement equivalence: a fresh query cracks no more on the
	// rebuilt column than on the warm original.
	lo, hi := d.Domain/3, d.Domain/3+d.Domain/10
	warmBefore, reBefore := totalCracks(warm), totalCracks(re)
	wantN := d.TrueCount(lo, hi)
	if n, _, _ := warm.Count(qctx, lo, hi); n != wantN {
		t.Fatalf("warm Count = %d, want %d", n, wantN)
	}
	if n, _, _ := re.Count(qctx, lo, hi); n != wantN {
		t.Fatalf("rebuilt Count = %d, want %d", n, wantN)
	}
	warmDelta := totalCracks(warm) - warmBefore
	reDelta := totalCracks(re) - reBefore
	if reDelta > warmDelta {
		t.Fatalf("rebuilt column cracked %d times, warm column %d", reDelta, warmDelta)
	}

	// Answers across a query sweep agree with brute force.
	r := workload.NewRNG(51)
	for i := 0; i < 200; i++ {
		qlo := r.Int64n(d.Domain)
		qhi := qlo + 1 + r.Int64n(d.Domain-qlo)
		if n, _, _ := re.Count(qctx, qlo, qhi); n != d.TrueCount(qlo, qhi) {
			t.Fatalf("Count[%d,%d) = %d, want %d", qlo, qhi, n, d.TrueCount(qlo, qhi))
		}
	}
}

func TestNewWithBoundsAndCracksMisalignedListsStillRoute(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 19)
	// A single flattened list (wrong arity) must still pre-crack: every
	// boundary routes to the shard whose range contains it.
	bounds := []int64{1024, 2048, 3072}
	flat := [][]int64{{100, 1500, 2500, 3500}}
	c := NewWithBoundsAndCracks(d.Values, bounds, flat, Options{Index: pieceOpts()})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cracks := c.CrackBoundaries()
	for shardOrd, want := range map[int]int64{0: 100, 1: 1500, 2: 2500, 3: 3500} {
		found := false
		for _, b := range cracks[shardOrd] {
			if b == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("boundary %d not routed into shard %d (got %v)", want, shardOrd, cracks[shardOrd])
		}
	}
}
