// Command adaptixreplay captures and replays workload traces: the
// command-line face of the wcapture subsystem (see
// docs/OBSERVABILITY.md, "Workload capture & replay").
//
// Capture mode generates a deterministic workload against a fresh
// index with capture armed and writes the trace file:
//
//	adaptixreplay -capture -trace t.trace -rows 200000 -seed 42 \
//	    -queries 2000 -writefrac 0.1 -pattern uniform -sel 0.01
//
// Replay mode regenerates the same dataset from -rows/-seed, rebuilds
// an index per method, and re-executes the trace, verifying every
// recorded checksum (exit status 1 on any mismatch):
//
//	adaptixreplay -trace t.trace -rows 200000 -seed 42 -method all
//
// The determinism contract behind -verify: a trace captured serially
// (capture mode is serial; SampleEvery is 1) replays exactly — same
// answers, same found flags — on any method or shard count, because a
// range aggregate depends only on the logical column contents, which
// replay reconstructs by re-executing the write prefix in capture
// order. -pace 1 reproduces the original timing; 0 runs flat out.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"adaptix"
	"adaptix/internal/workload"
)

func main() {
	capture := flag.Bool("capture", false, "capture a generated workload instead of replaying")
	trace := flag.String("trace", "adaptix.trace", "trace file path (written in capture mode, read in replay mode)")
	rows := flag.Int("rows", 200000, "dataset rows (replay must use the capture run's value)")
	seed := flag.Uint64("seed", 42, "dataset and workload seed (replay must use the capture run's value)")
	method := flag.String("method", "all", "method: crack, amerge, hybrid, sort, scan, or all (replay); capture builds this method (all = crack)")
	shards := flag.Int("shards", 0, "shard count (0: runtime default)")
	queries := flag.Int("queries", 2000, "capture: operations to generate")
	writeFrac := flag.Float64("writefrac", 0.1, "capture: fraction of operations that are writes")
	pattern := flag.String("pattern", "uniform", "capture: query pattern (uniform, seq, zipf)")
	sel := flag.Float64("sel", 0.01, "capture: query selectivity")
	pace := flag.Float64("pace", 0, "replay: time-compression factor (1 = original pacing, 0 = flat out)")
	verify := flag.Bool("verify", true, "replay: check every recorded checksum")
	flag.Parse()

	var err error
	if *capture {
		err = runCapture(*trace, *rows, *seed, *method, *shards, *queries, *writeFrac, *pattern, *sel)
	} else {
		err = runReplay(*trace, *rows, *seed, *method, *shards, *pace, *verify)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptixreplay: %v\n", err)
		os.Exit(1)
	}
}

// parseMethod maps a method name to its adaptix.Method.
func parseMethod(s string) (adaptix.Method, error) {
	for _, m := range []adaptix.Method{
		adaptix.Crack, adaptix.AMerge, adaptix.Hybrid, adaptix.Sort, adaptix.Scan,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q (want crack, amerge, hybrid, sort, scan, or all)", s)
}

// options assembles the common index options for one run.
func options(m adaptix.Method, shards int, extra ...adaptix.Option) []adaptix.Option {
	opts := []adaptix.Option{adaptix.WithMethod(m)}
	if shards > 0 {
		opts = append(opts, adaptix.WithShards(shards))
	}
	return append(opts, extra...)
}

// runCapture generates a deterministic serial workload against a
// capture-armed index and leaves the trace at path.
func runCapture(path string, rows int, seed uint64, method string, shards, queries int, writeFrac float64, pattern string, sel float64) error {
	m := adaptix.Crack
	if method != "all" {
		var err error
		if m, err = parseMethod(method); err != nil {
			return err
		}
	}
	domain := int64(rows)
	var gen workload.Generator
	switch pattern {
	case "uniform":
		gen = workload.NewUniform(workload.Count, domain, sel, seed)
	case "seq":
		gen = workload.NewSequential(workload.Count, domain, sel)
	case "zipf":
		gen = workload.NewZipf(workload.Count, domain, sel, 1.2, seed)
	default:
		return fmt.Errorf("unknown pattern %q (want uniform, seq, zipf)", pattern)
	}

	d := adaptix.NewUniqueDataset(rows, seed)
	ix, err := adaptix.New(d.Values, options(m, shards,
		adaptix.WithWorkloadCapture(adaptix.CaptureOptions{Sink: path}))...)
	if err != nil {
		return err
	}
	defer ix.Close()

	// One serial client: the capture the replay determinism contract
	// covers. Writes interleave per writeFrac — inserts of fresh keys
	// above the domain, deletes drawn across it (some hit, some miss,
	// so the delete found-flag checksum is exercised both ways).
	ctx := context.Background()
	rng := workload.NewRNG(seed + 1)
	fresh := domain
	for i := 0; i < queries; i++ {
		switch {
		case rng.Float64() < writeFrac:
			if rng.Intn(2) == 0 {
				fresh++
				if err := ix.Insert(ctx, fresh); err != nil {
					return err
				}
			} else {
				if _, err := ix.Delete(ctx, rng.Int64n(2*domain)); err != nil {
					return err
				}
			}
		case i%2 == 0:
			q := gen.Next()
			if _, err := ix.Count(ctx, q.Lo, q.Hi); err != nil {
				return err
			}
		default:
			q := gen.Next()
			if _, err := ix.Sum(ctx, q.Lo, q.Hi); err != nil {
				return err
			}
		}
	}

	sig := ix.Workload()
	if err := ix.Close(); err != nil { // flush the sink before reading back
		return err
	}
	recs, err := adaptix.ReadWorkloadTrace(path)
	if err != nil {
		return err
	}
	fmt.Printf("captured %d records to %s (method %s)\n", len(recs), path, m)
	buf, err := json.MarshalIndent(sig, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("workload signature: %s\n", buf)
	if sig.Dropped > 0 {
		return fmt.Errorf("%d records dropped during capture", sig.Dropped)
	}
	return nil
}

// runReplay re-executes the trace against each requested method and
// reports per-method throughput and verification results. Any checksum
// mismatch (or execution error) fails the run.
func runReplay(path string, rows int, seed uint64, method string, shards int, pace float64, verify bool) error {
	recs, err := adaptix.ReadWorkloadTrace(path)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace %s holds no records", path)
	}
	methods := []adaptix.Method{adaptix.Crack, adaptix.AMerge, adaptix.Hybrid, adaptix.Sort, adaptix.Scan}
	if method != "all" {
		m, err := parseMethod(method)
		if err != nil {
			return err
		}
		methods = []adaptix.Method{m}
	}

	fmt.Printf("replaying %d records from %s (rows=%d seed=%d pace=%g verify=%v)\n",
		len(recs), path, rows, seed, pace, verify)
	d := adaptix.NewUniqueDataset(rows, seed)
	failed := false
	for _, m := range methods {
		rep, err := replayOne(d, m, shards, recs, pace, verify)
		if err != nil {
			fmt.Printf("  %-7s ERROR: %v\n", m, err)
			failed = true
			continue
		}
		line := fmt.Sprintf("  %-7s %d records (%d reads / %d writes)  %.0f ops/s  %s",
			m, rep.Records, rep.Reads, rep.Writes, rep.PerSec, rep.Elapsed.Round(time.Millisecond))
		if verify {
			line += fmt.Sprintf("  mismatches=%d", rep.Mismatches)
		}
		fmt.Println(line)
		if rep.Mismatches > 0 {
			fmt.Printf("          first mismatch: record %d (%s [%d,%d)) got %d want %d\n",
				rep.First.Index, rep.First.Rec.Kind, rep.First.Rec.Lo, rep.First.Rec.Hi,
				rep.First.Got, rep.First.Rec.Result)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("replay failed")
	}
	return nil
}

// replayOne rebuilds the dataset's index with one method and replays
// the trace against it.
func replayOne(d *adaptix.Dataset, m adaptix.Method, shards int, recs []adaptix.WorkloadRecord, pace float64, verify bool) (adaptix.ReplayReport, error) {
	ix, err := adaptix.New(d.Values, options(m, shards)...)
	if err != nil {
		return adaptix.ReplayReport{}, err
	}
	defer ix.Close()
	return adaptix.ReplayTrace(context.Background(), ix, recs, adaptix.ReplayOptions{Pace: pace, Verify: verify})
}
