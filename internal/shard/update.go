// The concurrent write path and the structural operations of the
// sharded column.
//
// Routed updates: Insert and DeleteValue navigate the current shard
// map snapshot to the owning shard and land in that shard's epoch
// chain (internal/epoch) — the versioned differential file — so
// queries see them immediately; the per-shard aggregates are
// maintained atomically alongside.
//
// Ordering contract between writers and the executor's aggregate fast
// path (executor.go reads rows/total BEFORE minA/maxA), extended
// per-epoch — the epoch append happens before the aggregate update, so
// an answer assembled from aggregates never counts a value the chain
// does not yet carry:
//
//	writer:  epoch-chain append  ->  widen minA/maxA  ->  rows/total
//	reader:  rows/total          ->  minA/maxA
//
// If a reader's rows (or total) load observes a writer's increment,
// the happens-before chain through the atomics guarantees it also
// observes that writer's widened min/max, so the fully-covered fast
// path can never count a value that lies outside the predicate. If the
// load misses the increment, the answer is simply serialized before
// that write. The aggregates live in a partAgg shared between a part
// and the successor a group-apply publishes, so the contract holds
// across the swap without draining writers.
//
// Structural operations come in two shapes:
//
//   - The epoch-chain group-apply (SealEpoch + ApplySealed, or the
//     one-shot ApplyShard) seals only the shard's CURRENT epoch:
//     writers immediately append to the freshly opened successor and
//     never park, while the sealed prefix merges into a rebuilt
//     cracker array in the background. The successor part shares the
//     ancestor's aggregates and forks its chain past the applied
//     watermark; a writer still holding the pre-publish part appends
//     to the same (shared) open epoch file, so no write is ever lost
//     to the swap.
//
//   - Rerouting operations (SplitShard, MergeShards, and the legacy
//     ApplyShardParked) follow the full seal-rebuild-publish protocol:
//     seal the part (drain in-flight writers; parked writers wait on
//     the part's replaced channel), close the epoch chain so writers
//     holding a stale pre-fork part cut over too, snapshot the logical
//     contents, build replacement part(s) — replaying the old index's
//     crack boundaries so refinement knowledge survives — and
//     atomically publish a new shard map.
//
// Readers never block on either shape: a query holding the old map
// keeps using the old parts, which stay intact and correct (sealed
// epochs are immutable, the shared open epoch only grows).
package shard

import (
	"context"
	"sort"
	"time"

	"adaptix/internal/metrics"
)

// Insert adds one logical instance of v to the column, routing it to
// the owning shard's open epoch. Safe for concurrent use; an insert
// racing with a group-apply merge never parks (it rolls over to the
// next epoch), and one racing with a split or merge of the owning
// shard parks until the successor shard map is published, then
// re-routes. A writer parked behind a structural operation unparks
// promptly when ctx is cancelled, returning ctx.Err() with the write
// not applied.
func (c *Column) Insert(ctx context.Context, v int64) error {
	_, err := c.InsertEpoch(ctx, v)
	return err
}

// InsertEpoch is Insert reporting the id of the epoch the value landed
// in — the version tag a logical WAL record carries so recovery can
// tell writes captured by a checkpoint snapshot (epoch <= watermark)
// from writes that must be replayed.
func (c *Column) InsertEpoch(ctx context.Context, v int64) (int64, error) {
	c.opts.Obs.RecordWriteKey(v)
	for {
		m := c.m.Load()
		si := m.route(v)
		eid, ok, wait := m.shards[si].tryInsert(v)
		if ok {
			return eid, nil
		}
		if wait != nil {
			// Parked: split/merge in progress on the owning shard.
			if err := c.parkWaitObserved(ctx, wait, si); err != nil {
				return 0, err
			}
		}
		// else: the open epoch was sealed under a stale part reference;
		// the successor map is already published — re-route.
	}
}

// DeleteValue removes one logical instance of v, reporting whether one
// existed. Deletion is differential: an anti-matter record joins the
// owning shard's open epoch and cancels one instance at query time.
func (c *Column) DeleteValue(ctx context.Context, v int64) (bool, error) {
	deleted, _, err := c.DeleteValueEpoch(ctx, v)
	return deleted, err
}

// DeleteValueEpoch is DeleteValue reporting the id of the epoch the
// anti-matter record landed in (0 when no instance existed).
func (c *Column) DeleteValueEpoch(ctx context.Context, v int64) (deleted bool, epochID int64, err error) {
	c.opts.Obs.RecordWriteKey(v)
	for {
		m := c.m.Load()
		si := m.route(v)
		eid, deleted, ok, wait, err := m.shards[si].tryDelete(ctx, v)
		if err != nil {
			return false, 0, err
		}
		if ok {
			return deleted, eid, nil
		}
		if wait != nil {
			if err := c.parkWaitObserved(ctx, wait, si); err != nil {
				return false, 0, err
			}
		}
	}
}

// parkWaitObserved is parkWait reporting the park duration to the
// column's observer (writer-park histogram; parks over the stall
// threshold also land in the flight recorder). The park path is
// already blocking on a structural rebuild, so the two clock reads
// cost nothing relative to the wait itself.
func (c *Column) parkWaitObserved(ctx context.Context, wait <-chan struct{}, shard int) error {
	if c.opts.Obs == nil {
		return parkWait(ctx, wait)
	}
	t0 := time.Now()
	err := parkWait(ctx, wait)
	c.opts.Obs.RecordWriterPark(int32(shard), time.Since(t0))
	return err
}

// parkWait blocks until the structural operation that sealed the
// writer's shard publishes its successor map (wait closes), or until
// ctx is cancelled — parked writers are context-aware, so a deadline
// bounds the time spent behind a split or merge.
func parkWait(ctx context.Context, wait <-chan struct{}) error {
	if done := ctx.Done(); done != nil {
		select {
		case <-wait:
		case <-done:
			return ctx.Err()
		}
		return nil
	}
	<-wait
	return nil
}

// tryInsert applies the insert unless the part is sealed (structural
// reroute in progress: wait on the returned channel) or its open epoch
// was sealed under a stale reference (re-route immediately: ok false,
// wait nil).
func (p *part) tryInsert(v int64) (epochID int64, ok bool, wait <-chan struct{}) {
	p.wmu.RLock()
	if p.sealed {
		ch := p.replaced
		p.wmu.RUnlock()
		return 0, false, ch
	}
	eid, ok := p.chain.Insert(v)
	if !ok {
		p.wmu.RUnlock()
		return 0, false, nil
	}
	p.widen(v)
	p.agg.rows.Add(1)
	p.agg.total.Add(v)
	p.wmu.RUnlock()
	return eid, true, nil
}

func (p *part) tryDelete(ctx context.Context, v int64) (epochID int64, deleted, ok bool, wait <-chan struct{}, err error) {
	// The existence check against the immutable base cracks (or
	// merges, for custom-source shards) the shard's index as a side
	// effect — one user operation both querying and optimizing (paper
	// §3). It runs outside every latch: the base multiset never
	// changes, so the count stays valid. It honours the caller's
	// context — a deadline expiring while the probe is parked on a
	// piece latch aborts the delete with the write not applied.
	baseN, err := p.baseCount(ctx, v)
	if err != nil {
		return 0, false, false, nil, err
	}
	p.wmu.RLock()
	if p.sealed {
		ch := p.replaced
		p.wmu.RUnlock()
		return 0, false, false, ch, nil
	}
	eid, deleted, ok2 := p.chain.Delete(v, baseN)
	if !ok2 {
		p.wmu.RUnlock()
		return 0, false, false, nil, nil
	}
	if deleted {
		p.agg.rows.Add(-1)
		p.agg.total.Add(-v)
	}
	p.wmu.RUnlock()
	return eid, deleted, true, nil, nil
}

// baseCount counts the instances of v in the shard's immutable base —
// the delete-existence witness. Cracked shards probe their index;
// custom-source shards ask their AggregateSource (refining it as a
// side effect, like any query). The probe is bounded by the caller's
// context, like any query.
func (p *part) baseCount(ctx context.Context, v int64) (int64, error) {
	if p.ix != nil {
		n, _, err := p.ix.CountCtx(ctx, v, v+1)
		return n, err
	}
	n, _, err := p.src.Count(ctx, v, v+1)
	return n, err
}

// widen extends the min/max envelope to cover v (CAS loops; the
// envelope only ever widens, see the partAgg docs).
func (p *part) widen(v int64) {
	for {
		cur := p.agg.minA.Load()
		if v >= cur || p.agg.minA.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := p.agg.maxA.Load()
		if v <= cur || p.agg.maxA.CompareAndSwap(cur, v) {
			break
		}
	}
}

// seal blocks new writers and drains in-flight ones, then closes the
// epoch chain so writers holding a stale pre-fork part reference are
// cut off too (their append fails and they re-route to this part's
// current map entry, where they park). Caller must hold c.structMu and
// must eventually either retire or unseal the part.
func (p *part) seal() {
	p.wmu.Lock()
	p.sealed = true
	p.wmu.Unlock()
	if p.chain != nil {
		p.chain.Close()
	}
}

// unseal reopens a sealed part (a structural operation that found
// nothing to do). The chain gets a fresh open epoch and the replaced
// channel is rotated so parked writers wake, re-route, and find the
// same part writable again.
func (p *part) unseal() {
	if p.chain != nil {
		p.chain.Reopen()
	}
	p.wmu.Lock()
	p.sealed = false
	old := p.replaced
	p.replaced = make(chan struct{})
	p.wmu.Unlock()
	close(old)
}

// retire wakes writers parked on a sealed part after its successor map
// is published. The part itself stays intact for readers still holding
// the old map.
func (p *part) retire() {
	close(p.replaced)
}

// warmBoundaries returns the crack boundaries to replay into a rebuilt
// successor: the cracked index's earned refinement, or nil for
// custom-source shards (their refinement state is internal to the
// source and is re-earned after a rebuild).
func (p *part) warmBoundaries() []int64 {
	if p.ix == nil {
		return nil
	}
	return p.ix.Boundaries()
}

// logicalValues materializes the shard's logical contents: the
// immutable base slice with the full epoch chain applied (deletes
// cancel base instances first, then pending inserts). Caller must have
// sealed the part so the chain is stable.
func (p *part) logicalValues() []int64 {
	ins, del := p.chain.Collect(int64(maxKey))
	return p.mergedValues(ins, del)
}

// mergedValues applies a differential snapshot (pending inserts and
// anti-matter deletes, any order) to the part's base slice.
func (p *part) mergedValues(ins, del []int64) []int64 {
	if len(ins) == 0 && len(del) == 0 {
		return append([]int64(nil), p.base...)
	}
	cancel := make(map[int64]int, len(del))
	for _, v := range del {
		cancel[v]++
	}
	out := make([]int64, 0, len(p.base)+len(ins)-len(del))
	for _, v := range p.base {
		if cancel[v] > 0 {
			cancel[v]--
			continue
		}
		out = append(out, v)
	}
	for _, v := range ins {
		if cancel[v] > 0 {
			cancel[v]--
			continue
		}
		out = append(out, v)
	}
	return out
}

// publish swaps old.shards[i:i+n] for repl under the given bounds and
// makes the new map visible to readers and writers atomically.
func (c *Column) publish(old *shardMap, i, n int, repl []*part, bounds []int64) {
	shards := make([]*part, 0, len(old.shards)-n+len(repl))
	shards = append(shards, old.shards[:i]...)
	shards = append(shards, repl...)
	shards = append(shards, old.shards[i+n:]...)
	c.m.Store(&shardMap{bounds: bounds, shards: shards})
}

// SealedEpoch describes one epoch sealed by SealEpoch.
type SealedEpoch struct {
	// Shard is the shard's ordinal at the time of the seal.
	Shard int
	// Epoch is the sealed epoch's id.
	Epoch int64
	// Inserts and Deletes are the record counts it was sealed with.
	Inserts, Deletes int
}

// SealEpoch seals shard i's open epoch and opens a fresh successor:
// the first half of the epoch-chain group-apply, logged separately
// (wal.EpochSeal) from the merge so recovery can tell a sealed epoch
// whose merge never committed. Writers never park — they roll over to
// the new epoch. Reports false when the open epoch is empty.
func (c *Column) SealEpoch(i int) (SealedEpoch, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	m := c.m.Load()
	if i < 0 || i >= len(m.shards) {
		return SealedEpoch{}, false
	}
	t0 := time.Now()
	info, ok := m.shards[i].chain.Seal()
	if !ok {
		return SealedEpoch{}, false
	}
	c.opts.Obs.RecordStructural(metrics.EvSeal, int32(i), time.Since(t0), int64(info.Ins+info.Del))
	return SealedEpoch{Shard: i, Epoch: info.ID, Inserts: info.Ins, Deletes: info.Del}, true
}

// Applied describes one group-apply merge (ApplyShard / ApplySealed).
type Applied struct {
	// Shard is the ordinal of the merged shard at the time of the merge.
	Shard int
	// Inserts and Deletes count the differential updates merged into
	// the rebuilt cracker array.
	Inserts, Deletes int
	// Rows is the shard's base row count after the merge.
	Rows int
	// Boundaries is the number of crack boundaries replayed into the
	// rebuilt index.
	Boundaries int
	// Epoch is the watermark merged into the base: every epoch up to
	// it is applied, every later one survives in the successor chain.
	Epoch int64
	// Epochs is the number of sealed epoch files the merge folded in.
	Epochs int
}

// ApplySealed group-applies shard i's sealed epochs into its cracker
// array: the shard is rebuilt over its base merged with every sealed
// epoch, the old index's crack boundaries are replayed into the fresh
// index, and the shard map is republished with a successor that shares
// the ancestor's aggregates and forks the chain past the applied
// watermark. Reports false when no sealed epochs exist.
//
// Nobody blocks: readers holding the previous map keep using the old
// part (its sealed epochs stay visible through its own chain), and
// writers append to the open epoch throughout — the open epoch file is
// shared between the old and new chain, so a write racing the publish
// lands in both views. Callers that need durability log wal.EpochSeal
// and wal.EpochApply records around this (internal/ingest does).
func (c *Column) ApplySealed(i int) (Applied, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	return c.applySealedLocked(i)
}

// ApplyShard is the one-shot group-apply: seal shard i's open epoch,
// then merge every sealed epoch into the shard's rebuilt index.
// Reports false when the shard has no pending updates at all. Writers
// never park.
func (c *Column) ApplyShard(i int) (Applied, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	m := c.m.Load()
	if i < 0 || i >= len(m.shards) {
		return Applied{}, false
	}
	m.shards[i].chain.Seal() // no-op when the open epoch is empty
	return c.applySealedLocked(i)
}

func (c *Column) applySealedLocked(i int) (Applied, bool) {
	m := c.m.Load()
	if i < 0 || i >= len(m.shards) {
		return Applied{}, false
	}
	p := m.shards[i]
	ins, del, watermark, sealed := p.chain.SealedSnapshot()
	if sealed == 0 {
		return Applied{}, false
	}
	t0 := time.Now()
	vals := p.mergedValues(ins, del)
	warm := p.warmBoundaries()
	q := &part{
		loVal: p.loVal, hiVal: p.hiVal,
		base:      vals,
		agg:       p.agg, // shared: logical contents are unchanged
		chain:     p.chain.Fork(watermark),
		baseEpoch: watermark,
		replaced:  make(chan struct{}),
	}
	if c.opts.Source != nil {
		// Custom-source shards rebuild through the factory: the merged
		// base feeds a fresh amerge/hybrid/sort/scan source. Refinement
		// earned by the old source does not replay (only cracked shards
		// have exportable boundary knowledge) — the fresh source
		// re-earns it from subsequent queries.
		q.src = c.opts.Source(vals)
	} else {
		q.buildIndex(vals, warm, c.opts.Index)
	}
	c.publish(m, i, 1, []*part{q}, m.bounds)
	// No retire(): nothing parks on an epoch-chain apply. The old part
	// stays intact for readers (and stale writers) still holding it.
	c.opts.Obs.RecordStructural(metrics.EvApply, int32(i), time.Since(t0), int64(len(ins)+len(del)))
	return Applied{
		Shard: i, Inserts: len(ins), Deletes: len(del),
		Rows: len(vals), Boundaries: len(warm),
		Epoch: watermark, Epochs: sealed,
	}, true
}

// ApplyShardParked is the legacy single-differential group-apply: the
// shard is sealed for writers for the full rebuild (parked writers pay
// the rebuild latency — the stall the epoch chain exists to remove;
// experiments.ReadWriteMix measures the difference). It folds every
// epoch, sealed and open, into the rebuilt array and publishes a
// successor with a fresh chain and exact aggregates. Reports false
// when the shard has no pending updates.
func (c *Column) ApplyShardParked(i int) (Applied, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	m := c.m.Load()
	if i < 0 || i >= len(m.shards) {
		return Applied{}, false
	}
	p := m.shards[i]
	if nIns, nDel := p.chain.Pending(); nIns == 0 && nDel == 0 {
		return Applied{}, false
	}
	epochs := p.chain.Len()
	t0 := time.Now()
	p.seal()
	ins, del := p.chain.Collect(int64(maxKey))
	vals := p.mergedValues(ins, del)
	warm := p.warmBoundaries()
	q := c.newPart(p.loVal, p.hiVal, vals, warm)
	c.publish(m, i, 1, []*part{q}, m.bounds)
	p.retire()
	c.opts.Obs.RecordStructural(metrics.EvApply, int32(i), time.Since(t0), int64(len(ins)+len(del)))
	return Applied{
		Shard: i, Inserts: len(ins), Deletes: len(del),
		Rows: len(vals), Boundaries: len(warm),
		Epoch: q.baseEpoch, Epochs: epochs,
	}, true
}

// Split describes one shard split (SplitShard).
type Split struct {
	// Shard is the ordinal of the split shard at the time of the split.
	Shard int
	// Cut is the new shard-map boundary: the left part keeps values
	// < Cut, the right part takes values >= Cut.
	Cut int64
	// LeftRows and RightRows are the resulting row counts.
	LeftRows, RightRows int
}

// SplitShard splits shard i at the median of its logical contents,
// publishing a shard map with one more shard. The full epoch chain is
// group-applied as part of the rebuild — a split cuts the chain
// consistently: both successors start with fresh, empty chains over
// bases that incorporate every pending write — and the old index's
// crack boundaries are replayed into whichever side owns them (cracked
// shards; custom-source shards rebuild through the factory). Reports
// false when the shard cannot be split (fewer than two distinct
// values).
func (c *Column) SplitShard(i int) (Split, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	m := c.m.Load()
	if i < 0 || i >= len(m.shards) {
		return Split{}, false
	}
	p := m.shards[i]
	// Cheap pre-check: a shard whose value envelope has collapsed to a
	// single value (a storm of one repeated key) can never be split.
	// Rejecting here keeps the rebalancer from sealing the hot shard
	// and sorting its full contents on every maintenance pass.
	if p.agg.minA.Load() >= p.agg.maxA.Load() {
		return Split{}, false
	}
	t0 := time.Now()
	p.seal()
	vals := p.logicalValues()
	cut, ok := chooseCut(vals)
	if !ok {
		// All remaining values are equal but the widen-only envelope
		// was stale (deletes removed the extrema). The part is sealed
		// — contents are stable — so tightening the envelope to the
		// actual min/max is safe and lets the pre-check above reject
		// the next attempt in O(1).
		if len(vals) > 0 {
			mn, mx := vals[0], vals[0]
			for _, v := range vals {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			p.agg.minA.Store(mn)
			p.agg.maxA.Store(mx)
		}
		p.unseal()
		return Split{}, false
	}
	left := make([]int64, 0, len(vals)/2)
	right := make([]int64, 0, len(vals)/2)
	for _, v := range vals {
		if v < cut {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	warm := p.warmBoundaries()
	lp := c.newPart(p.loVal, cut, left, warm)
	rp := c.newPart(cut, p.hiVal, right, warm)
	bounds := make([]int64, 0, len(m.bounds)+1)
	bounds = append(bounds, m.bounds[:i]...)
	bounds = append(bounds, cut)
	bounds = append(bounds, m.bounds[i:]...)
	c.publish(m, i, 1, []*part{lp, rp}, bounds)
	p.retire()
	c.opts.Obs.RecordStructural(metrics.EvSplit, int32(i), time.Since(t0), int64(len(vals)))
	return Split{Shard: i, Cut: cut, LeftRows: len(left), RightRows: len(right)}, true
}

// chooseCut picks the median value of vals as a split cut, adjusted so
// both sides are non-empty. Reports false when vals holds fewer than
// two distinct values. O(n log n); splits are rare structural events.
func chooseCut(vals []int64) (int64, bool) {
	if len(vals) < 2 {
		return 0, false
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	cut := s[len(s)/2]
	if cut > s[0] {
		return cut, true
	}
	// Degenerate lower half (duplicates of the minimum): cut at the
	// first larger value so the left side keeps the minimum run.
	for _, v := range s[len(s)/2:] {
		if v > cut {
			return v, true
		}
	}
	return 0, false
}

// Merged describes one merge of two adjacent shards (MergeShards).
type Merged struct {
	// Shard is the ordinal of the left shard at the time of the merge.
	Shard int
	// RemovedBound is the shard-map cut value the merge removed.
	RemovedBound int64
	// Rows is the merged shard's row count.
	Rows int
}

// MergeShards merges adjacent shards i and i+1 into one, publishing a
// shard map with one fewer shard. Both epoch chains are cut
// consistently — every pending write of either side is folded into the
// merged base, and the successor starts a fresh chain — and the
// removed cut value plus both old indexes' crack boundaries are
// replayed into the merged index (cracked shards), so no refinement
// knowledge is lost. Reports false when i is out of range.
func (c *Column) MergeShards(i int) (Merged, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	m := c.m.Load()
	if i < 0 || i+1 >= len(m.shards) {
		return Merged{}, false
	}
	l, r := m.shards[i], m.shards[i+1]
	t0 := time.Now()
	l.seal()
	r.seal()
	vals := append(l.logicalValues(), r.logicalValues()...)
	warm := append(l.warmBoundaries(), r.warmBoundaries()...)
	warm = append(warm, m.bounds[i]) // keep the removed cut as a crack boundary
	q := c.newPart(l.loVal, r.hiVal, vals, warm)
	bounds := make([]int64, 0, len(m.bounds)-1)
	bounds = append(bounds, m.bounds[:i]...)
	bounds = append(bounds, m.bounds[i+1:]...)
	c.publish(m, i, 2, []*part{q}, bounds)
	l.retire()
	r.retire()
	c.opts.Obs.RecordStructural(metrics.EvMerge, int32(i), time.Since(t0), int64(len(vals)))
	return Merged{Shard: i, RemovedBound: m.bounds[i], Rows: len(vals)}, true
}
