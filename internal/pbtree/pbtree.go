// Package pbtree implements the partitioned B-tree of the paper's
// §4.1: a single B-tree index whose entries carry an artificial
// leading key field — the partition identifier. Partitions "appear and
// disappear simply by insertion and deletion of records with
// appropriate values in the artificial leading key field"; no catalog
// updates or metadata locks are involved.
//
// It is an in-memory B+ tree: all entries live in leaves, internal
// nodes hold fence keys, and leaves are chained for range scans.
// Deletion uses the ghost/free-at-empty policy the paper alludes to in
// §3.1: entries are removed from leaves, leaves may underflow or
// become empty, fence keys remain valid as search guides, and a
// Compact rebuild reclaims the structure. This keeps every
// intermediate state a valid, searchable B-tree — the property
// adaptive merging's instantly-committed merge steps rely on (§4.3).
//
// The tree itself is synchronized with a single read-write mutex;
// higher-level concurrency (per merge step, conflict avoidance, early
// termination) is coordinated by package amerge with latches, matching
// the paper's layering of short critical sections over a proven index
// structure.
package pbtree

import (
	"fmt"
	"sync"
)

// Entry is one index record: (partition, key, rowID), ordered
// lexicographically. The partition id is the artificial leading key
// field.
type Entry struct {
	// Part is the partition identifier (artificial leading key field).
	Part int32
	// Key is the indexed column value.
	Key int64
	// Row is the base-table row id.
	Row uint32
}

// Less orders entries by (Part, Key, Row).
func (e Entry) Less(o Entry) bool {
	if e.Part != o.Part {
		return e.Part < o.Part
	}
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	return e.Row < o.Row
}

// maxLeaf and maxFanout size the nodes. Small enough to exercise
// splits heavily in tests, large enough to keep trees shallow.
const (
	maxLeaf   = 64
	maxFanout = 64
)

type node struct {
	leaf     bool
	entries  []Entry // leaf payload
	next     *node   // leaf chain
	fences   []Entry // internal: fences[i] = smallest entry of children[i+1] at split time
	children []*node
}

// Tree is a partitioned B-tree. Create with New.
type Tree struct {
	mu     sync.RWMutex
	root   *node
	height int
	size   int
	counts map[int32]int // live entries per partition
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{
		root:   &node{leaf: true},
		height: 1,
		counts: make(map[int32]int),
	}
}

// Len returns the number of live entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// PartitionCount returns the number of live entries in partition p.
func (t *Tree) PartitionCount(p int32) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.counts[p]
}

// Partitions returns the ids of partitions with live entries, sorted.
func (t *Tree) Partitions() []int32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int32, 0, len(t.counts))
	for p, n := range t.counts {
		if n > 0 {
			out = append(out, p)
		}
	}
	for i := 1; i < len(out); i++ { // insertion sort, tiny slice
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Insert adds e to the tree.
func (t *Tree) Insert(e Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.insertLocked(e)
}

// InsertBatch adds all entries (not necessarily sorted).
func (t *Tree) InsertBatch(es []Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range es {
		t.insertLocked(e)
	}
}

func (t *Tree) insertLocked(e Entry) {
	sep, right := insertRec(t.root, e)
	if right != nil {
		t.root = &node{
			fences:   []Entry{sep},
			children: []*node{t.root, right},
		}
		t.height++
	}
	t.size++
	t.counts[e.Part]++
}

// insertRec inserts into n; on split it returns the separator (first
// entry of the new right sibling) and the sibling.
func insertRec(n *node, e Entry) (Entry, *node) {
	if n.leaf {
		i := lowerBound(n.entries, e)
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= maxLeaf {
			return Entry{}, nil
		}
		mid := len(n.entries) / 2
		right := &node{leaf: true, next: n.next}
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid:mid]
		n.next = right
		return right.entries[0], right
	}
	ci := childIndex(n.fences, e)
	sep, right := insertRec(n.children[ci], e)
	if right == nil {
		return Entry{}, nil
	}
	n.fences = append(n.fences, Entry{})
	copy(n.fences[ci+1:], n.fences[ci:])
	n.fences[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= maxFanout {
		return Entry{}, nil
	}
	// Split internal node.
	midF := len(n.fences) / 2
	up := n.fences[midF]
	rightN := &node{
		fences:   append([]Entry(nil), n.fences[midF+1:]...),
		children: append([]*node(nil), n.children[midF+1:]...),
	}
	n.fences = n.fences[:midF:midF]
	n.children = n.children[: midF+1 : midF+1]
	return up, rightN
}

// lowerBound returns the first index i with e <= entries[i].
func lowerBound(entries []Entry, e Entry) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].Less(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex picks the child subtree for e given the fence keys.
func childIndex(fences []Entry, e Entry) int {
	lo, hi := 0, len(fences)
	for lo < hi {
		mid := (lo + hi) / 2
		if fences[mid].Less(e) || fences[mid] == e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// seekLeaf descends to the leaf that would contain e.
func (t *Tree) seekLeaf(e Entry) *node {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.fences, e)]
	}
	return n
}

// ScanRange invokes fn for every live entry of partition part with
// key in [lo, hi), in key order, until fn returns false.
func (t *Tree) ScanRange(part int32, lo, hi int64, fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	start := Entry{Part: part, Key: lo}
	n := t.seekLeaf(start)
	for n != nil {
		for _, e := range n.entries {
			if e.Less(start) {
				continue
			}
			if e.Part > part || (e.Part == part && e.Key >= hi) {
				return
			}
			if !fn(e) {
				return
			}
		}
		n = n.next
	}
}

// AggregateRange returns (count, sum of keys) over live entries of
// partition part with key in [lo, hi).
func (t *Tree) AggregateRange(part int32, lo, hi int64) (count, sum int64) {
	t.ScanRange(part, lo, hi, func(e Entry) bool {
		count++
		sum += e.Key
		return true
	})
	return count, sum
}

// ExtractRange removes up to max live entries of partition part with
// key in [lo, hi) (max <= 0 means no limit) and returns them in key
// order. Leaves may underflow or empty out (ghost leaves); fence keys
// remain valid search guides, so the tree stays consistent and
// searchable at every step — the "early termination" property (§3.3):
// stopping after any prefix still leaves a correct index.
func (t *Tree) ExtractRange(part int32, lo, hi int64, max int) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Entry
	start := Entry{Part: part, Key: lo}
	n := t.seekLeaf(start)
	for n != nil {
		kept := n.entries[:0]
		done := false
		for _, e := range n.entries {
			take := !e.Less(start) &&
				e.Part == part && e.Key < hi &&
				(max <= 0 || len(out) < max)
			if e.Part > part || (e.Part == part && e.Key >= hi) {
				done = true
			}
			if take && !done {
				out = append(out, e)
			} else {
				kept = append(kept, e)
			}
		}
		n.entries = kept
		if done || (max > 0 && len(out) >= max) {
			break
		}
		n = n.next
	}
	t.size -= len(out)
	t.counts[part] -= len(out)
	return out
}

// BulkLoad builds a tree from entries that MUST already be sorted by
// (Part, Key, Row). It constructs leaves bottom-up, which is how the
// first query of adaptive merging turns its freshly sorted runs into
// B-tree partitions cheaply.
func BulkLoad(entries []Entry) *Tree {
	t := New()
	if len(entries) == 0 {
		return t
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Less(entries[i-1]) {
			panic(fmt.Sprintf("pbtree: BulkLoad input not sorted at %d", i))
		}
	}
	// Build leaves.
	var leaves []*node
	const fill = maxLeaf * 3 / 4 // leave headroom for future inserts
	for i := 0; i < len(entries); i += fill {
		j := i + fill
		if j > len(entries) {
			j = len(entries)
		}
		leaves = append(leaves, &node{leaf: true, entries: append([]Entry(nil), entries[i:j]...)})
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	// Build internal levels.
	level := leaves
	height := 1
	for len(level) > 1 {
		var up []*node
		const fan = maxFanout * 3 / 4
		for i := 0; i < len(level); i += fan {
			j := i + fan
			if j > len(level) {
				j = len(level)
			}
			in := &node{children: append([]*node(nil), level[i:j]...)}
			for k := i + 1; k < j; k++ {
				in.fences = append(in.fences, firstEntry(level[k]))
			}
			up = append(up, in)
		}
		level = up
		height++
	}
	t.root = level[0]
	t.height = height
	t.size = len(entries)
	for _, e := range entries {
		t.counts[e.Part]++
	}
	return t
}

func firstEntry(n *node) Entry {
	for !n.leaf {
		n = n.children[0]
	}
	return n.entries[0]
}

// Compact rebuilds the tree from its live entries, reclaiming ghost
// leaves left behind by ExtractRange.
func (t *Tree) Compact() {
	t.mu.Lock()
	defer t.mu.Unlock()
	var all []Entry
	n := t.leftmostLeafLocked()
	for n != nil {
		all = append(all, n.entries...)
		n = n.next
	}
	nt := BulkLoad(all)
	t.root, t.height, t.size, t.counts = nt.root, nt.height, nt.size, nt.counts
}

func (t *Tree) leftmostLeafLocked() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// Validate checks structural invariants (entry order along the leaf
// chain, size consistency, fence-guided search reaching every entry)
// and returns an error describing the first violation. Used by tests.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var prev *Entry
	count := 0
	counts := make(map[int32]int)
	n := t.leftmostLeafLocked()
	for n != nil {
		for i := range n.entries {
			e := n.entries[i]
			if prev != nil && e.Less(*prev) {
				return fmt.Errorf("pbtree: order violation: %+v after %+v", e, *prev)
			}
			prev = &n.entries[i]
			count++
			counts[e.Part]++
		}
		n = n.next
	}
	if count != t.size {
		return fmt.Errorf("pbtree: size %d but %d entries on leaf chain", t.size, count)
	}
	for p, c := range counts {
		if t.counts[p] != c {
			return fmt.Errorf("pbtree: partition %d count %d, chain has %d", p, t.counts[p], c)
		}
	}
	// Every entry must be findable via fence-guided descent.
	n = t.leftmostLeafLocked()
	for n != nil {
		for _, e := range n.entries {
			if l := t.seekLeaf(e); l != n {
				return fmt.Errorf("pbtree: search for %+v lands on wrong leaf", e)
			}
		}
		n = n.next
	}
	return nil
}
