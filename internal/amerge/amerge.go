// Package amerge implements adaptive merging (paper §2, §4): the
// incremental-external-merge-sort flavour of adaptive indexing, built
// on a partitioned B-tree (internal/pbtree).
//
// Life cycle, following Figure 3:
//
//   - The first query with a predicate on the column creates sorted
//     runs: the column is cut into chunks of RunSize values, each chunk
//     is sorted in memory, and the runs are bulk-loaded as partitions
//     1..R of a single partitioned B-tree.
//   - Each subsequent query applies at most one additional merge step
//     to each record in its requested key range: qualifying records are
//     extracted from the initial partitions (an index probe per run —
//     the runs are sorted) and inserted into the "final" partition 0.
//     Records in other key ranges stay where they are.
//   - Once a key range has been fully merged, queries on it are pure
//     partition-0 lookups; the merged-range set tracks this and serves
//     covered queries from an immutable snapshot without any latching —
//     a limited form of multi-version concurrency control with "shared
//     access to the old pages" (§4.3).
//
// Concurrency control (§4.3, §3.3):
//
//   - Each merge step runs as an instantly-committed system
//     transaction under the index's write latch; its structural effect
//     is logged (optionally) through the structural WAL.
//   - Merge steps are optional: with OnConflict == Skip a query that
//     cannot take the write latch immediately answers from read-latched
//     scans and forgoes merging (conflict avoidance).
//   - A merge step stops after MergeBudget records (early
//     termination); the partitioned B-tree is a valid, searchable index
//     at every intermediate state, so the query still answers correctly
//     from the leftovers in the runs.
package amerge

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/engine"
	"adaptix/internal/latch"
	"adaptix/internal/pbtree"
	"adaptix/internal/ranges"
	"adaptix/internal/txn"
	"adaptix/internal/wal"
)

// finalPart is the id of the final (fully merged) partition. Runs use
// ids 1..R, so partition 0 sorts first in the tree.
const finalPart int32 = 0

// ConflictPolicy mirrors crackindex's policy for the optional merge
// work.
type ConflictPolicy int

const (
	// Wait blocks on the index write latch before merging.
	Wait ConflictPolicy = iota
	// Skip forgoes merging when the latch is contended.
	Skip
)

// Options configures an adaptive-merging index.
type Options struct {
	// RunSize is the number of values sorted per initial run
	// (modelling the memory available for run generation, §4.2).
	// Default 1 << 16.
	RunSize int
	// MergeBudget caps the records moved per query (0 = unlimited).
	// A small budget is the "lazy" strategy of §7; the budget also
	// exercises early termination.
	MergeBudget int
	// OnConflict selects waiting versus conflict avoidance.
	OnConflict ConflictPolicy
	// Log, when non-nil, receives structural records (run creation,
	// merge steps) — never index contents (§4.2).
	Log *wal.Log
	// TxnMgr, when non-nil, wraps each merge step in an instantly
	// committed system transaction.
	TxnMgr *txn.Manager
}

// Index is an adaptive-merging index over one column.
type Index struct {
	opts Options
	base []int64

	lt *latch.Latch // index latch: W = merge step / init, R = multi-source read

	initOnce atomic.Bool
	tree     *pbtree.Tree
	numRuns  int

	// merged tracks fully merged key ranges; snap is the immutable
	// sorted snapshot of partition 0, rebuilt after each merge step.
	// Covered queries read snap latch-free (MVCC read path).
	mu     sync.Mutex // guards merged + snapshot swap
	merged *ranges.Set
	snap   atomic.Pointer[snapshot]

	// Stats.
	mergeSteps   atomic.Int64
	movedRecords atomic.Int64
	skipped      atomic.Int64
	snapshotHits atomic.Int64
}

// snapshot is an immutable sorted copy of the final partition's keys
// plus the merged-range set it is consistent with. The prefix-sum
// array is built lazily, once per snapshot version, on the first
// covered sum query (count queries never need it).
type snapshot struct {
	keys    []int64
	covered *ranges.Set

	prefixOnce sync.Once
	prefix     []int64 // prefix[i] = sum of keys[:i]
}

func (s *snapshot) ensurePrefix() {
	s.prefixOnce.Do(func() {
		p := make([]int64, len(s.keys)+1)
		for i, k := range s.keys {
			p[i+1] = p[i] + k
		}
		s.prefix = p
	})
}

// New creates an adaptive-merging index over base. Runs are not built
// until the first query (index initialization is a query side effect).
func New(base []int64, opts Options) *Index {
	if opts.RunSize <= 0 {
		opts.RunSize = 1 << 16
	}
	ix := &Index{
		opts:   opts,
		base:   base,
		lt:     latch.New(latch.MiddleFirst),
		merged: &ranges.Set{},
	}
	ix.snap.Store(&snapshot{covered: &ranges.Set{}})
	return ix
}

// Name implements engine.Engine.
func (ix *Index) Name() string { return "amerge" }

// NumRuns returns the number of initial runs created (0 before
// initialization).
func (ix *Index) NumRuns() int { return ix.numRuns }

// Tree exposes the underlying partitioned B-tree (read-only use).
func (ix *Index) Tree() *pbtree.Tree { return ix.tree }

// MergeSteps returns the number of committed merge steps.
func (ix *Index) MergeSteps() int64 { return ix.mergeSteps.Load() }

// MovedRecords returns the total records moved into the final
// partition.
func (ix *Index) MovedRecords() int64 { return ix.movedRecords.Load() }

// SkippedMerges returns how many optional merge steps were forgone.
func (ix *Index) SkippedMerges() int64 { return ix.skipped.Load() }

// SnapshotHits returns how many queries were answered latch-free from
// the MVCC snapshot.
func (ix *Index) SnapshotHits() int64 { return ix.snapshotHits.Load() }

// Count implements engine.Engine (Q1).
func (ix *Index) Count(ctx context.Context, lo, hi int64) (engine.Result, error) {
	return ix.query(ctx, lo, hi, false)
}

// Sum implements engine.Engine (Q2).
func (ix *Index) Sum(ctx context.Context, lo, hi int64) (engine.Result, error) {
	return ix.query(ctx, lo, hi, true)
}

func (ix *Index) query(ctx context.Context, lo, hi int64, wantSum bool) (engine.Result, error) {
	var res engine.Result
	if lo >= hi {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if err := ix.ensureInit(ctx, &res); err != nil {
		return res, err
	}

	// MVCC fast path: a fully merged range is immutable in every
	// snapshot at least as new as its merge; read it without latches.
	if s := ix.snap.Load(); s.covered.Covers(lo, hi) {
		ix.snapshotHits.Add(1)
		res.Value = s.aggregate(lo, hi, wantSum)
		return res, nil
	}

	// Try to refine: one merge step for this key range.
	acquired := false
	if ix.opts.OnConflict == Skip {
		acquired = ix.lt.TryLock()
		if !acquired {
			res.Conflicts++
			res.Skipped = true
			ix.skipped.Add(1)
		}
	} else {
		w, err := ix.lt.LockCtx(ctx, lo)
		if w > 0 {
			res.Wait += w
			res.Conflicts++
		}
		if err != nil {
			return res, err
		}
		acquired = true
	}

	if acquired {
		start := time.Now()
		ix.mergeStepLocked(lo, hi)
		res.Refine += time.Since(start)
		ix.lt.Downgrade()
	} else {
		w, err := ix.lt.RLockCtx(ctx)
		if w > 0 {
			res.Wait += w
			res.Conflicts++
		}
		if err != nil {
			return res, err
		}
	}

	// Under the read latch: aggregate final partition + run leftovers.
	var count, sum int64
	c, s := ix.tree.AggregateRange(finalPart, lo, hi)
	count, sum = c, s
	for r := 1; r <= ix.numRuns; r++ {
		c, s := ix.tree.AggregateRange(int32(r), lo, hi)
		count += c
		sum += s
	}
	ix.lt.RUnlock()

	if wantSum {
		res.Value = sum
	} else {
		res.Value = count
	}
	return res, nil
}

// ensureInit builds the sorted runs on first use, under the write
// latch: concurrent first queries wait, exactly as with full sorting.
// A context error while parked behind the builder abandons the query
// (the build itself, once started, always completes).
func (ix *Index) ensureInit(ctx context.Context, res *engine.Result) error {
	if ix.initOnce.Load() {
		return nil
	}
	w, err := ix.lt.LockCtx(ctx, 0)
	if err != nil {
		res.Wait += w
		res.Conflicts++
		return err
	}
	if ix.initOnce.Load() {
		ix.lt.Unlock()
		res.Wait += w
		res.Conflicts++
		return nil
	}
	start := time.Now()
	entries := make([]pbtree.Entry, len(ix.base))
	run := 0
	for off := 0; off < len(ix.base); off += ix.opts.RunSize {
		run++
		end := off + ix.opts.RunSize
		if end > len(ix.base) {
			end = len(ix.base)
		}
		chunk := entries[off:end]
		for i := range chunk {
			chunk[i] = pbtree.Entry{Part: int32(run), Key: ix.base[off+i], Row: uint32(off + i)}
		}
		// Sort the run in memory (§2: "produces sorted runs").
		sort.Slice(chunk, func(i, j int) bool { return chunk[i].Less(chunk[j]) })
		ix.logRun(int32(run), len(chunk))
	}
	// Runs are sorted and partition-major, so the concatenation is
	// globally sorted: bulk-load bottom-up.
	ix.tree = pbtree.BulkLoad(entries)
	ix.numRuns = run
	ix.initOnce.Store(true)
	res.Refine += time.Since(start)
	ix.lt.Unlock()
	return nil
}

// mergeStepLocked moves qualifying records from the runs into the
// final partition; caller holds the write latch. The step is wrapped
// in an instantly-committed system transaction and logged
// structurally.
func (ix *Index) mergeStepLocked(lo, hi int64) {
	budget := ix.opts.MergeBudget
	var movedKeys []int64
	exhausted := true
	doStep := func() {
		for r := 1; r <= ix.numRuns; r++ {
			max := 0
			if budget > 0 {
				max = budget - len(movedKeys)
				if max <= 0 {
					exhausted = false
					return
				}
			}
			got := ix.tree.ExtractRange(int32(r), lo, hi, max)
			if len(got) == 0 {
				continue
			}
			for i := range got {
				movedKeys = append(movedKeys, got[i].Key)
				got[i].Part = finalPart
			}
			ix.tree.InsertBatch(got)
			// If the budget cut the extraction short, the run may
			// still hold qualifying records.
			if budget > 0 && len(movedKeys) >= budget {
				if c, _ := ix.tree.AggregateRange(int32(r), lo, hi); c > 0 {
					exhausted = false
				}
			}
		}
	}
	if ix.opts.TxnMgr != nil {
		_ = ix.opts.TxnMgr.RunSystem(func(*txn.Txn) error {
			doStep()
			return nil
		})
	} else {
		doStep()
	}
	moved := len(movedKeys)
	if moved > 0 {
		ix.mergeSteps.Add(1)
		ix.movedRecords.Add(int64(moved))
		ix.logMerge(lo, hi, moved)
	}
	if moved == 0 && !exhausted {
		return
	}
	// Publish the new state: record coverage when the range is fully
	// merged and fold any moved keys into the immutable snapshot (the
	// commit of the "new pages", §4.3). When nothing moved, the old
	// key arrays are reused — only the coverage changes.
	ix.mu.Lock()
	if exhausted {
		ix.merged.Add(lo, hi)
	}
	old := ix.snap.Load()
	keys := old.keys
	if moved > 0 {
		sort.Slice(movedKeys, func(i, j int) bool { return movedKeys[i] < movedKeys[j] })
		keys = mergeSorted(old.keys, movedKeys)
	}
	ix.snap.Store(&snapshot{keys: keys, covered: ix.merged.Clone()})
	ix.mu.Unlock()
}

// mergeSorted merges two sorted slices into a new sorted slice.
func mergeSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// aggregate answers a covered query from the snapshot by binary
// search and prefix sums.
func (s *snapshot) aggregate(lo, hi int64, wantSum bool) int64 {
	a := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= lo })
	b := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= hi })
	if wantSum {
		s.ensurePrefix()
		return s.prefix[b] - s.prefix[a]
	}
	return int64(b - a)
}

func (ix *Index) logRun(part int32, count int) {
	if ix.opts.Log == nil {
		return
	}
	_, _ = ix.opts.Log.Append(wal.Record{
		Kind: wal.RunCreated, Object: "amerge", A: int64(part), B: int64(count),
	})
}

func (ix *Index) logMerge(lo, hi int64, moved int) {
	if ix.opts.Log == nil {
		return
	}
	_, _ = ix.opts.Log.Append(wal.Record{
		Kind: wal.MergeStep, Object: "amerge", A: lo, B: hi, C: int64(moved),
	})
}
