// Command crackviz walks through the three adaptive-indexing methods
// on the paper's running example — the 31-letter array
// "hbnecoyulzqutgjwvdokimreapxafsi" queried for [d,i] and then [f,m] —
// reproducing the states drawn in Figures 2 (database cracking),
// 3 (adaptive merging), and 4 (hybrid crack-sort).
//
// Usage:
//
//	crackviz [-method crack|merge|hybrid|converge|all]
//
// The extra "converge" mode leaves the letters example for a larger
// column and animates the paper's core claim instead of its figures:
// as random range queries crack the index, the per-query cost (rows
// physically touched) decays while the piece-size distribution
// flattens. It prints one line per query batch with the piece profile
// and a bar of the batch's mean rows touched.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"adaptix/internal/amerge"
	"adaptix/internal/cracker"
	"adaptix/internal/crackindex"
	"adaptix/internal/hybrid"
	"adaptix/internal/pbtree"
)

// letters is the paper's example data (Figures 2-4).
const letters = "hbnecoyulzqutgjwvdokimreapxafsi"

func toValues(s string) []int64 {
	out := make([]int64, len(s))
	for i, c := range []byte(s) {
		out[i] = int64(c)
	}
	return out
}

func toLetters(vals []int64) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(byte(v))
	}
	return b.String()
}

// render prints vals with '|' separators at the given boundary
// positions.
func render(vals []int64, cuts []int) string {
	cutSet := map[int]bool{}
	for _, c := range cuts {
		cutSet[c] = true
	}
	var b strings.Builder
	for i, v := range vals {
		if cutSet[i] {
			b.WriteByte('|')
		}
		b.WriteByte(byte(v))
	}
	return b.String()
}

func showCracking() {
	fmt.Println("=== Figure 2: database cracking ===")
	vals := toValues(letters)
	fmt.Printf("loaded (unsorted):      %s\n", letters)
	ix := crackindex.New(vals, crackindex.Options{Latching: crackindex.LatchNone})

	// Query 1: where ... between 'd' and 'i'  ->  [d, j)
	n, _ := ix.Count(int64('d'), int64('i')+1)
	fmt.Printf("\nQ1: between 'd' and 'i' -> %d qualifying letters\n", n)
	fmt.Printf("after cracking:         %s\n", renderIndex(ix, vals))

	// Query 2: where ... between 'f' and 'm'  ->  [f, n)
	n, _ = ix.Count(int64('f'), int64('m')+1)
	fmt.Printf("\nQ2: between 'f' and 'm' -> %d qualifying letters\n", n)
	fmt.Printf("after cracking:         %s\n", renderIndex(ix, vals))
	fmt.Printf("boundaries: %s\n\n", boundaryLetters(ix))
}

// renderIndex shows the current physical order and cut positions of a
// cracked column.
func renderIndex(ix *crackindex.Index, _ []int64) string {
	vals := ix.PhysicalValues()
	var cuts []int
	for _, b := range ix.BoundaryPositions() {
		cuts = append(cuts, b.Pos)
	}
	return render(vals, cuts)
}

func boundaryLetters(ix *crackindex.Index) string {
	var parts []string
	for _, b := range ix.Boundaries() {
		parts = append(parts, fmt.Sprintf("%c", byte(b)))
	}
	return strings.Join(parts, ",")
}

func showMerging() {
	fmt.Println("=== Figure 3: adaptive merging ===")
	vals := toValues(letters)
	ix := amerge.New(vals, amerge.Options{RunSize: 8})
	fmt.Printf("loaded:                 %s\n", letters)

	show := func() {
		fmt.Printf("  final: %-16s", toLetters(partValues(ix.Tree(), 0)))
		for r := 1; r <= ix.NumRuns(); r++ {
			fmt.Printf("  run%d: %-9s", r, toLetters(partValues(ix.Tree(), int32(r))))
		}
		fmt.Println()
	}

	// Query 0 creates the sorted runs (first query side effect).
	n, _ := ix.Count(context.Background(), int64('d'), int64('i')+1)
	fmt.Printf("\nQ1: between 'd' and 'i' -> %d (runs sorted in memory, range merged out)\n", n.Value)
	show()

	n, _ = ix.Count(context.Background(), int64('f'), int64('m')+1)
	fmt.Printf("\nQ2: between 'f' and 'm' -> %d (merged out of runs into final)\n", n.Value)
	show()
	fmt.Println()
}

func partValues(t *pbtree.Tree, part int32) []int64 {
	var out []int64
	t.ScanRange(part, -1<<62, 1<<62, func(e pbtree.Entry) bool {
		out = append(out, e.Key)
		return true
	})
	return out
}

func showHybrid() {
	fmt.Println("=== Figure 4: hybrid crack-sort ===")
	vals := toValues(letters)
	ix := hybrid.New(vals, hybrid.Options{PartitionSize: 8, Layout: cracker.LayoutSplit})
	fmt.Printf("loaded (unsorted partitions): %s\n", letters)

	show := func() {
		fmt.Printf("  final: %-16s", toLetters(ix.FinalValues()))
		for i := 0; i < ix.NumPartitions(); i++ {
			fmt.Printf("  p%d: %-9s", i+1, toLetters(ix.PartitionValues(i)))
		}
		fmt.Println()
	}

	n, _ := ix.Count(context.Background(), int64('d'), int64('i')+1)
	fmt.Printf("\nQ1: between 'd' and 'i' -> %d (partitions cracked, range moved to sorted final)\n", n.Value)
	show()

	n, _ = ix.Count(context.Background(), int64('f'), int64('m')+1)
	fmt.Printf("\nQ2: between 'f' and 'm' -> %d\n", n.Value)
	show()
	fmt.Println()
}

// showConvergence cracks a 64k-row column with random range queries
// and prints the convergence trajectory: per-batch mean rows touched
// (the paper's per-query cost) alongside the piece-size profile.
func showConvergence() {
	fmt.Println("=== Convergence: per-query cost decay under random ranges ===")
	const (
		n       = 1 << 16
		batches = 10
		perB    = 64
		span    = 1024
	)
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	rng.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	ix := crackindex.New(vals, crackindex.Options{Latching: crackindex.LatchNone})

	fmt.Printf("%d rows, %d batches of %d queries, range span %d\n\n", n, batches, perB, span)
	fmt.Printf("%7s %8s %8s %10s %8s  %s\n",
		"queries", "pieces", "max%", "entropy", "touched", "mean rows touched per query")
	var first int64
	for b := 0; b < batches; b++ {
		var touched int64
		for q := 0; q < perB; q++ {
			lo := rng.Int63n(n - span)
			_, st := ix.Count(lo, lo+span)
			touched += st.Touched
		}
		mean := touched / perB
		if b == 0 {
			first = mean
		}
		bar := 0
		if first > 0 {
			bar = int(mean * 40 / first)
		}
		pr := ix.Profile()
		fmt.Printf("%7d %8d %7.1f%% %10.2f %8d  %s\n",
			(b+1)*perB, pr.Pieces, 100*pr.MaxPieceFrac, pr.Entropy, mean,
			strings.Repeat("#", bar))
	}
	fmt.Println("\ncost decays toward O(result size); entropy rises as pieces even out")
}

func main() {
	method := flag.String("method", "all", "crack, merge, hybrid, converge, or all")
	flag.Parse()
	switch *method {
	case "crack":
		showCracking()
	case "merge":
		showMerging()
	case "hybrid":
		showHybrid()
	case "converge":
		showConvergence()
	case "all":
		showCracking()
		showMerging()
		showHybrid()
		showConvergence()
	default:
		fmt.Fprintf(os.Stderr, "unknown -method %q\n", *method)
		os.Exit(2)
	}
}
