// The replay-driven A/B harness: capture one workload, re-execute the
// identical operation stream against competing engine configurations.
// Generator-driven A/B runs compare configurations on *statistically*
// equal load; replaying one captured trace compares them on *the same*
// load, operation for operation, with every answer checksummed against
// the capture run — a configuration that wins here wins with its
// correctness proven on the exact stream it was measured on.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/shard"
	"adaptix/internal/wcapture"
	"adaptix/internal/workload"
)

// ReplayABCell is one configuration's result on the shared trace.
type ReplayABCell struct {
	// Name labels the configuration variant.
	Name string
	// Records, Reads, and Writes echo the replayed trace composition.
	Records, Reads, Writes int
	// Mismatches counts checksum divergences from the capture run
	// (always 0 for a healthy engine: the determinism contract).
	Mismatches int
	// Elapsed and Throughput measure the replay (flat-out pacing).
	Elapsed time.Duration
	// Throughput is Records/Elapsed in operations per second.
	Throughput float64
	// ShardsAfter is the shard count once the replayed writes have
	// driven the rebalancer.
	ShardsAfter int
}

// ReplayABReport is the harness outcome: the capture-side workload
// signature plus one cell per engine variant, all fed the same trace.
type ReplayABReport struct {
	// Signature characterizes the captured workload the variants replay.
	Signature wcapture.Signature
	// Cells holds one result per variant, in variant order.
	Cells []ReplayABCell
}

// replayVariant is one engine configuration under comparison.
type replayVariant struct {
	name  string
	shard shard.Options
	ing   ingest.Options
}

// colTarget adapts a raw shard.Column + ingest.Coordinator pairing to
// the replayer's execution surface (the facade-free analogue of
// adaptix.ReplayTrace).
type colTarget struct {
	col *shard.Column
	g   *ingest.Coordinator
}

// Count evaluates the range count on the column.
func (t colTarget) Count(ctx context.Context, lo, hi int64) (int64, error) {
	v, _, err := t.col.Count(ctx, lo, hi)
	return v, err
}

// Sum evaluates the range sum on the column.
func (t colTarget) Sum(ctx context.Context, lo, hi int64) (int64, error) {
	v, _, err := t.col.Sum(ctx, lo, hi)
	return v, err
}

// Insert routes one insert through the coordinator.
func (t colTarget) Insert(ctx context.Context, v int64) error { return t.g.Insert(ctx, v) }

// Delete routes one delete through the coordinator.
func (t colTarget) Delete(ctx context.Context, v int64) (bool, error) {
	return t.g.DeleteValue(ctx, v)
}

// ReplayAB captures one serial mixed workload (cfg.Queries operations,
// 10% writes, 1% selectivity), then replays the trace — with checksum
// verification — against four engine variants: 2 vs 8 shards, and the
// epoch-chain vs parked group-apply write paths. When w is non-nil a
// table is rendered.
func ReplayAB(cfg Config, w io.Writer) *ReplayABReport {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	ctx := context.Background()

	// Capture leg: in-memory ring sized to hold the whole run, so the
	// trace comes straight from Retained with nothing dropped.
	ring := 64
	for ring < cfg.Queries {
		ring *= 2
	}
	rec, err := wcapture.New(wcapture.Options{Ring: ring}, true, nil)
	if err != nil {
		panic(err) // no sink, no I/O: cannot fail
	}
	col := shard.New(d.Values, shard.Options{
		Shards: 4, Seed: cfg.Seed, Capture: rec,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	if lo, hi, ok := col.KeyDomain(); ok {
		rec.SetDomain(lo, hi)
	}
	g := ingest.New(col, ingest.Options{})
	runReplaySource(ctx, cfg, d, colTarget{col: col, g: g})
	g.Close()
	recs := rec.Retained()
	rep := &ReplayABReport{Signature: rec.Signature()}
	rec.Close()

	variants := []replayVariant{
		{name: "shards=2", shard: shard.Options{Shards: 2}},
		{name: "shards=8", shard: shard.Options{Shards: 8}},
		{name: "shards=8 low-apply", shard: shard.Options{Shards: 8},
			ing: ingest.Options{ApplyThreshold: 64, CheckEvery: 32}},
		{name: "shards=8 parked", shard: shard.Options{Shards: 8},
			ing: ingest.Options{ApplyThreshold: 64, CheckEvery: 32, ParkOnApply: true}},
	}
	for _, v := range variants {
		v.shard.Seed = cfg.Seed
		v.shard.Index = crackindex.Options{Latching: crackindex.LatchPiece}
		vcol := shard.New(d.Values, v.shard)
		vg := ingest.New(vcol, v.ing)
		vg.Start()
		r, err := wcapture.Replay(ctx, recs, colTarget{col: vcol, g: vg},
			wcapture.ReplayOptions{Verify: true})
		vg.Close()
		if err != nil {
			panic(fmt.Sprintf("replay %s: %v", v.name, err))
		}
		rep.Cells = append(rep.Cells, ReplayABCell{
			Name: v.name, Records: r.Records, Reads: r.Reads, Writes: r.Writes,
			Mismatches: r.Mismatches, Elapsed: r.Elapsed, Throughput: r.PerSec,
			ShardsAfter: vcol.NumShards(),
		})
	}

	if w != nil {
		fmt.Fprintf(w, "Replay A/B: %d records (%d reads / %d writes), %d rows, verify on\n",
			len(recs), rep.Signature.Reads, rep.Signature.Writes, cfg.Rows)
		for _, c := range rep.Cells {
			fmt.Fprintf(w, "  %-20s %8.0f ops/s  %8s  mismatches=%d  shards=%d\n",
				c.Name, c.Throughput, c.Elapsed.Round(time.Millisecond),
				c.Mismatches, c.ShardsAfter)
		}
		fmt.Fprintln(w)
	}
	return rep
}

// runReplaySource drives the capture leg: one serial client, 1%
// selectivity reads alternating count/sum, every 10th operation a
// write (fresh-key inserts and hit-or-miss deletes).
func runReplaySource(ctx context.Context, cfg Config, d *workload.Dataset, t colTarget) {
	gen := workload.NewUniform(workload.Count, d.Domain, 0.01, cfg.Seed+1)
	rng := workload.NewRNG(cfg.Seed + 2)
	fresh := d.Domain
	for i := 0; i < cfg.Queries; i++ {
		switch {
		case i%10 == 9:
			if rng.Intn(2) == 0 {
				fresh++
				if err := t.Insert(ctx, fresh); err != nil {
					panic(err)
				}
			} else {
				if _, err := t.Delete(ctx, rng.Int64n(2*d.Domain)); err != nil {
					panic(err)
				}
			}
		case i%2 == 0:
			q := gen.Next()
			if _, err := t.Count(ctx, q.Lo, q.Hi); err != nil {
				panic(err)
			}
		default:
			q := gen.Next()
			if _, err := t.Sum(ctx, q.Lo, q.Hi); err != nil {
				panic(err)
			}
		}
	}
}
