package engine

import (
	"context"
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/workload"
)

func TestCrackAdapter(t *testing.T) {
	d := workload.NewUniqueUniform(5000, 3)
	ix := crackindex.New(d.Values, crackindex.Options{Latching: crackindex.LatchPiece})
	e := NewCrack(ix)
	if e.Name() != "crack" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Index() != ix {
		t.Fatal("Index accessor lost the index")
	}
	r, err := e.Count(context.Background(), 100, 600)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 500 {
		t.Fatalf("Count = %d", r.Value)
	}
	if r.Refine == 0 {
		t.Fatal("first query should report refinement time")
	}
	r, _ = e.Sum(context.Background(), 100, 600)
	if want := int64((100 + 599) * 500 / 2); r.Value != want {
		t.Fatalf("Sum = %d, want %d", r.Value, want)
	}
}

func TestNamedAdapter(t *testing.T) {
	d := workload.NewUniqueUniform(100, 5)
	ix := crackindex.New(d.Values, crackindex.Options{})
	e := NewCrackNamed(ix, "crack-fifo")
	if e.Name() != "crack-fifo" {
		t.Fatalf("Name = %q", e.Name())
	}
}

func TestResultCarriesBreakdown(t *testing.T) {
	d := workload.NewUniqueUniform(1000, 7)
	ix := crackindex.New(d.Values, crackindex.Options{
		Latching:   crackindex.LatchPiece,
		OnConflict: crackindex.Skip,
	})
	e := NewCrack(ix)
	// Without contention nothing is skipped and conflicts are zero.
	r, _ := e.Count(context.Background(), 10, 500)
	if r.Skipped || r.Conflicts != 0 {
		t.Fatalf("unexpected contention markers: %+v", r)
	}
}
