package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{},
		{ID: 1, Op: OpCount, TTLus: 0, Lo: -10, Hi: 10},
		{ID: math.MaxUint64, Op: OpSum, TTLus: math.MaxUint32, Lo: math.MinInt64, Hi: math.MaxInt64},
		{ID: 42, Op: OpInsert, Lo: 7},
		{ID: 43, Op: OpDelete, Lo: -7},
		{ID: 44, Op: OpStats},
	}
	for _, want := range cases {
		frame := AppendRequestFrame(nil, want)
		br := bufio.NewReader(bytes.NewReader(frame))
		p, err := ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("ReadFrame(%+v): %v", want, err)
		}
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{},
		{ID: 9, Op: OpCount, Status: StatusOK, Value: 123},
		{ID: 10, Op: OpSum, Status: StatusOverloaded, Value: -1, Aux: math.MaxInt64},
		{ID: math.MaxUint64, Op: OpStats, Status: StatusInternal, Value: math.MinInt64, Aux: -1},
	}
	for _, want := range cases {
		frame := AppendResponseFrame(nil, want)
		br := bufio.NewReader(bytes.NewReader(frame))
		p, err := ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("ReadFrame(%+v): %v", want, err)
		}
		got, err := DecodeResponse(p)
		if err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestReadFrameMultipleAndCleanEOF(t *testing.T) {
	var stream []byte
	want := []Request{
		{ID: 1, Op: OpCount, Lo: 1, Hi: 2},
		{ID: 2, Op: OpSum, Lo: 3, Hi: 4},
		{ID: 3, Op: OpStats},
	}
	for _, q := range want {
		stream = AppendRequestFrame(stream, q)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, w := range want {
		p, err := ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if got != w {
			t.Fatalf("frame %d: got %+v want %+v", i, got, w)
		}
		buf = p[:0]
	}
	if _, err := ReadFrame(br, buf); err != io.EOF {
		t.Fatalf("at stream end: err = %v, want io.EOF", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := AppendRequestFrame(nil, Request{ID: 5, Op: OpCount, Lo: 1, Hi: 2})
	// Every proper prefix (except the empty one, which is clean EOF)
	// must yield io.ErrUnexpectedEOF.
	for cut := 1; cut < len(full); cut++ {
		br := bufio.NewReader(bytes.NewReader(full[:cut]))
		_, err := ReadFrame(br, nil)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix %d/%d: err = %v, want io.ErrUnexpectedEOF", cut, len(full), err)
		}
	}
}

func TestReadFrameCorrupt(t *testing.T) {
	full := AppendRequestFrame(nil, Request{ID: 6, Op: OpSum, Lo: 10, Hi: 20})
	// Flip one bit anywhere in CRC or payload: must error, never parse.
	for i := 4; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		br := bufio.NewReader(bytes.NewReader(mut))
		_, err := ReadFrame(br, nil)
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorruptFrame", i, err)
		}
	}
}

func TestReadFrameOversizedNoAllocation(t *testing.T) {
	// A corrupt length field declaring a huge payload must error before
	// any allocation is attempted.
	var hdr [FrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], math.MaxUint32)
	binary.LittleEndian.PutUint32(hdr[4:], 0)
	br := bufio.NewReader(bytes.NewReader(hdr[:]))
	allocs := testing.AllocsPerRun(1, func() {
		br.Reset(bytes.NewReader(hdr[:]))
		if _, err := ReadFrame(br, nil); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	// The error path wraps with fmt.Errorf (a couple of small allocs);
	// the point is no payload-sized buffer. Anything beyond a handful
	// means the guard is gone.
	if allocs > 8 {
		t.Fatalf("oversized frame allocated %v times; length guard missing?", allocs)
	}

	// Zero-length frames are invalid too (no empty messages exist).
	binary.LittleEndian.PutUint32(hdr[0:], 0)
	br = bufio.NewReader(bytes.NewReader(hdr[:]))
	if _, err := ReadFrame(br, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("zero-length frame: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeWrongSize(t *testing.T) {
	if _, err := DecodeRequest(make([]byte, RequestLen-1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short request: err = %v, want ErrBadPayload", err)
	}
	if _, err := DecodeRequest(make([]byte, RequestLen+1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("long request: err = %v, want ErrBadPayload", err)
	}
	if _, err := DecodeResponse(make([]byte, ResponseLen-1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short response: err = %v, want ErrBadPayload", err)
	}
	if _, err := DecodeResponse(make([]byte, ResponseLen+1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("long response: err = %v, want ErrBadPayload", err)
	}
}

// FuzzFrameReader feeds arbitrary bytes to the frame reader: it must
// terminate with a frame or an error — never panic, and never allocate
// a buffer larger than MaxFramePayload no matter what the length field
// claims.
func FuzzFrameReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRequestFrame(nil, Request{ID: 1, Op: OpCount, Lo: -5, Hi: 5}))
	f.Add(AppendResponseFrame(nil, Response{ID: 2, Op: OpSum, Status: StatusOK, Value: 9}))
	var huge [FrameHeader]byte
	binary.LittleEndian.PutUint32(huge[0:], math.MaxUint32)
	f.Add(huge[:])
	trunc := AppendRequestFrame(nil, Request{ID: 3, Op: OpStats})
	f.Add(trunc[:len(trunc)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			p, err := ReadFrame(br, buf)
			if err != nil {
				return // any error terminates cleanly
			}
			if len(p) == 0 || len(p) > MaxFramePayload {
				t.Fatalf("payload size %d escaped the frame bounds", len(p))
			}
			// Frames that happen to be request- or response-sized must
			// decode without panicking.
			if len(p) == RequestLen {
				if _, err := DecodeRequest(p); err != nil {
					t.Fatalf("DecodeRequest on exact-size payload: %v", err)
				}
			}
			if len(p) == ResponseLen {
				if _, err := DecodeResponse(p); err != nil {
					t.Fatalf("DecodeResponse on exact-size payload: %v", err)
				}
			}
			buf = p[:0]
		}
	})
}
