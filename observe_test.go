package adaptix_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptix"
)

// TestObserveEndpoint drives a traced index and scrapes every route of
// Observe(): the Prometheus exposition must contain the query counters
// and quantiles, /snapshot must round-trip through the exported
// ObsSnapshot type, and /flight must be valid JSON.
func TestObserveEndpoint(t *testing.T) {
	vals := seqValues(4096)
	ix, err := adaptix.New(vals,
		adaptix.WithShards(4),
		adaptix.WithObservability(adaptix.ObsOptions{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ctx := context.Background()
	for i := int64(0); i < 50; i++ {
		if _, err := ix.Count(ctx, i*10, i*10+500); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 20; i++ {
		if err := ix.Insert(ctx, i); err != nil {
			t.Fatal(err)
		}
	}

	h := ix.Observe()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("/metrics status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"adaptix_queries_total 50",
		"adaptix_writes_total 20",
		`adaptix_query_critical_ns{quantile="0.99"}`,
		"adaptix_query_latency_ns_count 50", // tracing on, SampleEvery 1
		"# TYPE adaptix_query_wait_ns summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/snapshot", nil))
	if w.Code != 200 {
		t.Fatalf("/snapshot status %d", w.Code)
	}
	var snap adaptix.ObsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not unmarshal into ObsSnapshot: %v", err)
	}
	if snap.Method != "crack" || snap.Rows != 4096+20 || snap.Shards != 4 {
		t.Fatalf("snapshot = %+v, want crack/4116/4", snap)
	}
	if snap.Obs.Queries != 50 || snap.Obs.Writes != 20 {
		t.Fatalf("snapshot counters = %d queries %d writes, want 50/20", snap.Obs.Queries, snap.Obs.Writes)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/flight", nil))
	var evs []adaptix.FlightEvent
	if err := json.Unmarshal(w.Body.Bytes(), &evs); err != nil {
		t.Fatalf("flight dump does not unmarshal: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("flight recorder empty after 50 traced queries")
	}
}

// TestStatsQuantilesPopulated checks satellite coverage for the new
// Stats fields: the core histograms (critical path, wait/crack split)
// must populate WITHOUT WithObservability, and rows/bounds/shards must
// be mutually consistent under concurrent writes.
func TestStatsQuantilesPopulated(t *testing.T) {
	ix, err := adaptix.New(seqValues(2048), adaptix.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ctx := context.Background()
	for i := int64(0); i < 30; i++ {
		if _, err := ix.Sum(ctx, i*20, i*20+600); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.Stats()
	if st.Obs.Queries != 30 {
		t.Fatalf("Obs.Queries = %d, want 30", st.Obs.Queries)
	}
	if st.Obs.CriticalPathP99 <= 0 {
		t.Fatal("CriticalPathP99 not populated without WithObservability")
	}
	if st.Obs.QueryLatencyP99 != 0 {
		t.Fatal("QueryLatencyP99 populated while tracing disabled")
	}
	if st.Rows != 2048 {
		t.Fatalf("Stats.Rows = %d, want 2048", st.Rows)
	}
	if len(st.Bounds) != len(st.Shards)-1 {
		t.Fatalf("Bounds/Shards inconsistent: %d bounds for %d shards",
			len(st.Bounds), len(st.Shards))
	}
}

// TestStatsConsistentUnderRebalance hammers Stats() while writers and
// the rebalancer churn the shard map: every snapshot must be
// internally consistent (bounds = shards-1, summed shard rows = Rows).
func TestStatsConsistentUnderRebalance(t *testing.T) {
	ix, err := adaptix.New(seqValues(1024), adaptix.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(0); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = ix.Insert(ctx, v%2000)
			if v%64 == 0 {
				ix.Maintain()
			}
		}
	}()

	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := ix.Stats()
		if len(st.Bounds) != len(st.Shards)-1 {
			t.Fatalf("torn snapshot: %d bounds for %d shards", len(st.Bounds), len(st.Shards))
		}
		sum := 0
		for _, s := range st.Shards {
			sum += s.Rows
		}
		if sum != st.Rows {
			t.Fatalf("torn snapshot: shard rows sum %d != Rows %d", sum, st.Rows)
		}
	}
	close(stop)
	wg.Wait()
}

// TestFlightRecorderCapturesStall forces a writer stall (park behind a
// group-apply) with a microsecond threshold and checks the event is
// dumpable through the facade.
func TestFlightRecorderCapturesStall(t *testing.T) {
	ix, err := adaptix.New(seqValues(512),
		adaptix.WithShards(2),
		adaptix.WithObservability(adaptix.ObsOptions{StallThreshold: time.Nanosecond}),
		adaptix.WithIngestOptions(adaptix.IngestOptions{ApplyThreshold: 50}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ctx := context.Background()
	// Interleave writes with queries and maintenance so at least one
	// latch wait or structural op lands in the recorder. Structural
	// events (seal/apply) are always recorded regardless of threshold.
	for i := int64(0); i < 200; i++ {
		if err := ix.Insert(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	ix.Maintain()
	evs := ix.FlightDump()
	if len(evs) == 0 {
		t.Fatal("flight recorder empty after writes + maintenance")
	}
	kinds := map[string]int{}
	for _, e := range evs {
		kinds[e.KindName]++
	}
	if kinds["seal"] == 0 && kinds["apply"] == 0 {
		t.Fatalf("no structural events in flight dump; kinds = %v", kinds)
	}
}

func seqValues(n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i * 7 % (n * 2))
	}
	return vals
}
