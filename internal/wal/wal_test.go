package wal

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAppendAssignsLSNs(t *testing.T) {
	l := New(nil)
	for i := 1; i <= 5; i++ {
		lsn, err := l.Append(Record{Kind: CrackBoundary, Object: "R.A", A: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("LSN = %d, want %d", lsn, i)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	recs := l.Records()
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.A != int64(i+1) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(txn uint64, kind uint8, obj string, a, b, c int64) bool {
		r := Record{LSN: 7, Txn: txn, Kind: Kind(kind%6 + 1), Object: obj, A: a, B: b, C: c}
		got, n, err := Decode(Encode(r))
		return err == nil && n == len(Encode(r)) && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := Encode(Record{LSN: 1, Kind: RunCreated, Object: "idx", A: 3, B: 100})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncated decode at %d succeeded", cut)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	enc := Encode(Record{LSN: 1, Kind: MergeStep, Object: "idx", A: 1, B: 2, C: 3})
	enc[len(enc)-2] ^= 0xFF // flip a payload byte, checksum now wrong
	if _, _, err := Decode(enc); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestReplayStopsAtCrashedTail(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Append(Record{Txn: 1, Kind: CrackBoundary, Object: "R.A", A: 10})
	l.Append(Record{Txn: 1, Kind: CrackBoundary, Object: "R.A", A: 20})
	raw := buf.Bytes()
	// Simulate a crash mid-write of a third record.
	partial := append(append([]byte{}, raw...), Encode(Record{Txn: 1, Kind: CrackBoundary, A: 30})[:5]...)
	var seen []int64
	n, err := Replay(partial, func(r Record) { seen = append(seen, r.A) })
	if err != nil || n != 2 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	if len(seen) != 2 || seen[0] != 10 || seen[1] != 20 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestRecoverRebuildsCatalog(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	// Committed system txn 1: two boundaries + one run.
	l.Append(Record{Txn: 1, Kind: BeginSystem})
	l.Append(Record{Txn: 1, Kind: CrackBoundary, Object: "R.A", A: 100})
	l.Append(Record{Txn: 1, Kind: CrackBoundary, Object: "R.A", A: 200})
	l.Append(Record{Txn: 1, Kind: RunCreated, Object: "pbtree", A: 1, B: 5000})
	l.Append(Record{Txn: 1, Kind: CommitSystem})
	// Uncommitted system txn 2: must be ignored.
	l.Append(Record{Txn: 2, Kind: BeginSystem})
	l.Append(Record{Txn: 2, Kind: CrackBoundary, Object: "R.A", A: 999})
	// Autonomous record: applied directly.
	l.Append(Record{Txn: 0, Kind: RunCreated, Object: "pbtree", A: 2, B: 4096})

	cat, err := Recover(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	bs := cat.Boundaries["R.A"]
	if len(bs) != 2 || bs[0] != 100 || bs[1] != 200 {
		t.Fatalf("boundaries = %v", bs)
	}
	ps := cat.Partitions["pbtree"]
	if len(ps) != 2 || ps[0] != 1 || ps[1] != 2 {
		t.Fatalf("partitions = %v", ps)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		BeginSystem: "begin-system", CommitSystem: "commit-system",
		CrackBoundary: "crack-boundary", RunCreated: "run-created",
		MergeStep: "merge-step", Checkpoint: "checkpoint",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestStructuralOnlyNoContents(t *testing.T) {
	// A crack of a 1M-value column logs ONE small record, independent
	// of data size — the §4.2 "no logging of index contents" property.
	enc := Encode(Record{Txn: 1, Kind: CrackBoundary, Object: "R.verylongcolumnname", A: 123456})
	if len(enc) > 128 {
		t.Fatalf("structural record is %d bytes; contents are being logged?", len(enc))
	}
}
