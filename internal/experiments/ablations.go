package experiments

import (
	"fmt"
	"io"
	"time"

	"adaptix/internal/amerge"
	"adaptix/internal/cracker"
	"adaptix/internal/crackindex"
	"adaptix/internal/engine"
	"adaptix/internal/harness"
	"adaptix/internal/hybrid"
	"adaptix/internal/latch"
	"adaptix/internal/metrics"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// AblationReport holds total times for the design-choice ablations
// DESIGN.md calls out, all run with the same query sequence and
// client count.
type AblationReport struct {
	Clients int
	// Total[variant] is wall-clock time for the whole sequence.
	Total map[string]time.Duration
	// Conflicts[variant] counts latch conflicts.
	Conflicts map[string]int64
	// Order preserves presentation order.
	Order []string
}

// shardedVariant builds a sharded-cracking engine factory with P
// range partitions over the dataset (piece latches inside each shard).
func shardedVariant(d *workload.Dataset, p int, seed uint64) func() engine.Engine {
	return func() engine.Engine {
		return engine.NewShardedNamed(shard.New(d.Values, shard.Options{
			Shards: p, Seed: seed,
			Index: crackindex.Options{Latching: crackindex.LatchPiece},
		}), fmt.Sprintf("sharded/P=%d", p))
	}
}

// Ablations compares: middle-first vs FIFO crack scheduling, parallel
// vs serial two-bound cracking, pairs vs split array layout, wait vs
// skip conflict policy, the adaptive methods (crack vs amerge vs
// hybrid), and range-sharded cracking at increasing shard counts,
// all under identical concurrent load (Q2 queries).
func Ablations(cfg Config, clients int, w io.Writer) *AblationReport {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.001, cfg.Seed+7), cfg.Queries)
	rep := &AblationReport{
		Clients:   clients,
		Total:     map[string]time.Duration{},
		Conflicts: map[string]int64{},
	}
	variants := []struct {
		name string
		mk   func() engine.Engine
	}{
		{"crack/piece/middle-first", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece, Scheduling: latch.MiddleFirst}))
		}},
		{"crack/piece/fifo", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece, Scheduling: latch.FIFO}))
		}},
		{"crack/serial-bounds", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece}))
		}},
		{"crack/parallel-bounds", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece, ParallelBounds: true}))
		}},
		{"crack/layout-split", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece, Layout: cracker.LayoutSplit}))
		}},
		{"crack/layout-pairs", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece, Layout: cracker.LayoutPairs}))
		}},
		{"crack/wait", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece, OnConflict: crackindex.Wait}))
		}},
		{"crack/skip(avoidance)", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece, OnConflict: crackindex.Skip}))
		}},
		{"crack/group-cracking", func() engine.Engine {
			return engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece, GroupCracking: true}))
		}},
		{"amerge", func() engine.Engine {
			return amerge.New(d.Values, amerge.Options{})
		}},
		{"amerge/budget-4096(lazy)", func() engine.Engine {
			return amerge.New(d.Values, amerge.Options{MergeBudget: 4096})
		}},
		{"hybrid", func() engine.Engine {
			return hybrid.New(d.Values, hybrid.Options{})
		}},
		{"sharded/P=2", shardedVariant(d, 2, cfg.Seed)},
		{"sharded/P=4", shardedVariant(d, 4, cfg.Seed)},
		{"sharded/P=8", shardedVariant(d, 8, cfg.Seed)},
	}
	for _, v := range variants {
		run := harness.Execute(v.mk(), qs, clients)
		rep.Total[v.name] = run.Elapsed
		rep.Conflicts[v.name] = run.Series.TotalConflicts()
		rep.Order = append(rep.Order, v.name)
	}
	if w != nil {
		t := &metrics.Table{Header: []string{"variant", "total time", "conflicts"}}
		for _, name := range rep.Order {
			t.Add(name, metrics.FormatDuration(rep.Total[name]), fmt.Sprint(rep.Conflicts[name]))
		}
		fmt.Fprintf(w, "Ablations: %d sum queries (sel 0.1%%), %d clients, %d rows\n%s\n",
			cfg.Queries, clients, cfg.Rows, t)
	}
	return rep
}
