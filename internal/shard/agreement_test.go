package shard_test

import (
	"fmt"
	"testing"

	"adaptix/internal/baseline"
	"adaptix/internal/crackindex"
	"adaptix/internal/engine"
	"adaptix/internal/harness"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// TestCrossEngineChecksumAgreement runs the same seeded query stream
// through the scan baseline, the single-column crack engine, and the
// sharded engine at several client counts and asserts that every run
// folds to the identical checksum: concurrency, partitioning, and
// fan-out merging must never change an answer. Run under -race by CI.
func TestCrossEngineChecksumAgreement(t *testing.T) {
	const rows = 1 << 14
	d := workload.NewUniqueUniform(rows, 11)
	streams := []struct {
		name string
		gen  workload.Generator
	}{
		{"uniform-sum", workload.NewUniform(workload.Sum, d.Domain, 0.01, 31)},
		{"uniform-count", workload.NewUniform(workload.Count, d.Domain, 0.001, 37)},
		{"skewed-zipf", workload.NewZipf(workload.Sum, d.Domain, 0.005, 1.0, 41)},
		{"sequential", workload.NewSequential(workload.Count, d.Domain, 0.02)},
	}
	for _, s := range streams {
		qs := workload.Fixed(s.gen, 192)
		for _, clients := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/clients=%d", s.name, clients), func(t *testing.T) {
				engines := []engine.Engine{
					baseline.NewScan(d.Values),
					engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
						Latching: crackindex.LatchPiece,
					})),
					engine.NewSharded(shard.New(d.Values, shard.Options{
						Shards: 4, Seed: 5,
						Index: crackindex.Options{Latching: crackindex.LatchPiece},
					})),
				}
				want := harness.Execute(engines[0], qs, clients).Checksum
				for _, e := range engines[1:] {
					run := harness.Execute(e, qs, clients)
					if run.Checksum != want {
						t.Errorf("%s checksum %d, scan baseline %d", e.Name(), run.Checksum, want)
					}
				}
			})
		}
	}
}

// TestShardedEngineAgainstDuplicates repeats the agreement check on a
// duplicate-heavy dataset, where quantile cuts collapse and shards are
// unbalanced.
func TestShardedEngineAgainstDuplicates(t *testing.T) {
	d := workload.NewDuplicates(1<<13, 256, 13)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.05, 17), 128)
	for _, clients := range []int{1, 4} {
		scan := harness.Execute(baseline.NewScan(d.Values), qs, clients)
		sharded := harness.Execute(engine.NewSharded(shard.New(d.Values, shard.Options{
			Shards: 8,
			Index:  crackindex.Options{Latching: crackindex.LatchPiece},
		})), qs, clients)
		if sharded.Checksum != scan.Checksum {
			t.Errorf("clients=%d: sharded checksum %d, scan %d", clients, sharded.Checksum, scan.Checksum)
		}
	}
}
