package ingest

import (
	"sync"
	"testing"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/shard"
	"adaptix/internal/wal"
	"adaptix/internal/workload"
)

// countingSink is a WAL sink that records every record write and every
// fsync, so the tests can assert the group-commit policy's bounded
// loss window: the number of records appended after the last fsync is
// the data at risk in a crash.
type countingSink struct {
	mu            sync.Mutex
	writes        int
	syncs         int
	unsyncedRuns  []int // records between consecutive fsyncs
	sinceLastSync int
}

func (s *countingSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	s.sinceLastSync++
	return len(p), nil
}

func (s *countingSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs++
	s.unsyncedRuns = append(s.unsyncedRuns, s.sinceLastSync)
	s.sinceLastSync = 0
	return nil
}

func (s *countingSink) snapshot() (syncs int, runs []int, tail int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs, append([]int(nil), s.unsyncedRuns...), s.sinceLastSync
}

// TestGroupCommitSyncEvery: with SyncEvery = N, the log is fsynced at
// least every N logical records, so a crash can lose at most N-1 of
// the newest writes — the bounded loss window, asserted as "no fsync
// gap ever exceeds N records".
func TestGroupCommitSyncEvery(t *testing.T) {
	const syncEvery = 4
	d := workload.NewUniqueUniform(1<<10, 3)
	col := shard.New(d.Values, shard.Options{Shards: 2, Seed: 5,
		Index: crackindex.Options{Latching: crackindex.LatchPiece}})
	sink := &countingSink{}
	g := New(col, Options{
		Log: wal.New(sink), LogWrites: true, SyncEvery: syncEvery,
		// Thresholds high enough that no structural commit (with its
		// own fsync) interleaves: every sync observed is a group sync.
		ApplyThreshold: 1 << 20, CheckEvery: 1 << 20,
	})
	syncs0, _, _ := sink.snapshot() // bootstrap txn commit fsyncs

	const writes = 21
	for i := 0; i < writes; i++ {
		if err := g.Insert(qctx, d.Domain+int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	syncs, runs, tail := sink.snapshot()
	if got := syncs - syncs0; got != writes/syncEvery {
		t.Errorf("group syncs = %d, want %d", got, writes/syncEvery)
	}
	if g.Stats().GroupSyncs != int64(writes/syncEvery) {
		t.Errorf("Stats.GroupSyncs = %d, want %d", g.Stats().GroupSyncs, writes/syncEvery)
	}
	// The loss window: no gap between fsyncs may exceed SyncEvery
	// records, and the unsynced tail is at most SyncEvery-1.
	for i, run := range runs {
		if i > 0 && run > syncEvery { // runs[0] includes the bootstrap txn
			t.Errorf("fsync gap %d carried %d records, want <= %d", i, run, syncEvery)
		}
	}
	if tail >= syncEvery {
		t.Errorf("unsynced tail %d records, want < %d", tail, syncEvery)
	}
}

// TestGroupCommitSyncInterval: with ONLY SyncInterval set (SyncEvery
// left at its zero default — the documented interval-only
// configuration), unsynced logical records are fsynced by the
// background ticker even when the record-count bound never triggers.
func TestGroupCommitSyncInterval(t *testing.T) {
	d := workload.NewUniqueUniform(1<<10, 5)
	col := shard.New(d.Values, shard.Options{Shards: 2, Seed: 5,
		Index: crackindex.Options{Latching: crackindex.LatchPiece}})
	sink := &countingSink{}
	g := New(col, Options{
		Log: wal.New(sink), LogWrites: true,
		SyncInterval:   5 * time.Millisecond,
		ApplyThreshold: 1 << 20, CheckEvery: 1 << 20,
	})
	g.Start()
	defer g.Close()

	if err := g.Insert(qctx, d.Domain+1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().GroupSyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval ticker never fsynced the unsynced record")
		}
		time.Sleep(time.Millisecond)
	}
}
