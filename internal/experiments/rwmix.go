package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/metrics"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// RWMixCell is one (write fraction, clients) cell of the read/write
// mix ablation.
type RWMixCell struct {
	// WriteFraction is the fraction of operations that are writes
	// (alternating inserts and deletes).
	WriteFraction float64
	// Clients is the number of concurrent clients.
	Clients int
	// Elapsed is the wall-clock time for all clients to finish.
	Elapsed time.Duration
	// Ops is the total number of operations executed.
	Ops int
	// Throughput is operations per second.
	Throughput float64
	// ShardsBefore and ShardsAfter are the shard counts around the run.
	ShardsBefore, ShardsAfter int
	// Applied, Splits and Merges count the coordinator's structural
	// operations during the run.
	Applied, Splits, Merges int64
	// Critical is the summed fan-out critical-path time of the read
	// queries (the latency-oriented view; Wait/Crack sum total work).
	Critical time.Duration
	// WriterP99 is the 99th-percentile routed-write latency under the
	// epoch write path: a group-apply seals only the current epoch, so
	// writers roll over instead of parking and the tail collapses to
	// the cost of an epoch append.
	WriterP99 time.Duration
	// WriterP99Parked is the same percentile under the legacy
	// sealed-differential group-apply (ingest Options.ParkOnApply),
	// where a writer unlucky enough to hit a merge parks for the whole
	// shard rebuild. Zero for read-only cells (nothing to measure).
	WriterP99Parked time.Duration
}

// RWMixReport is the outcome of the read/write mix ablation.
type RWMixReport struct {
	Cells []RWMixCell
}

// ReadWriteMix measures the sharded column behind an active ingest
// coordinator under mixed workloads: write fractions {0, 0.1, 0.5}
// crossed with client counts {1, 4, 16}. Writes route through the
// epoch chains; the coordinator group-applies and rebalances in the
// background, so the cells quantify how much a live write path costs
// the read side (the paper's §4.2 differential-file claim, measured).
// Write cells run twice — once with the epoch write path, once with
// the legacy parked group-apply — and report the writer-stall p99 of
// both: the epoch path's whole point is that the p99 drops from
// ~rebuild latency to ~an epoch append.
func ReadWriteMix(cfg Config, w io.Writer) *RWMixReport {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	rep := &RWMixReport{}
	for _, frac := range []float64{0, 0.1, 0.5} {
		for _, clients := range []int{1, 4, 16} {
			cell := runRWMixCell(cfg, d, frac, clients, false)
			if frac > 0 {
				parked := runRWMixCell(cfg, d, frac, clients, true)
				cell.WriterP99Parked = parked.WriterP99
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	if w != nil {
		t := &metrics.Table{Header: []string{
			"write%", "clients", "total time", "ops/s", "shards", "applies", "splits", "merges", "critical", "stall p99", "p99 parked",
		}}
		for _, c := range rep.Cells {
			t.Add(
				fmt.Sprintf("%.0f%%", c.WriteFraction*100),
				fmt.Sprint(c.Clients),
				metrics.FormatDuration(c.Elapsed),
				fmt.Sprintf("%.0f", c.Throughput),
				fmt.Sprintf("%d->%d", c.ShardsBefore, c.ShardsAfter),
				fmt.Sprint(c.Applied),
				fmt.Sprint(c.Splits),
				fmt.Sprint(c.Merges),
				metrics.FormatDuration(c.Critical),
				metrics.FormatDuration(c.WriterP99),
				metrics.FormatDuration(c.WriterP99Parked),
			)
		}
		fmt.Fprintf(w, "Read/write mix: %d ops per client, %d rows, sharded+ingest (epoch vs parked apply)\n%s\n",
			cfg.Queries, cfg.Rows, t)
	}
	return rep
}

func runRWMixCell(cfg Config, d *workload.Dataset, frac float64, clients int, park bool) RWMixCell {
	col := shard.New(d.Values, shard.Options{
		Shards: 8, Seed: cfg.Seed,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	// A low apply threshold keeps group-apply merges colliding with the
	// write stream — the stall scenario the WriterP99 columns measure.
	g := ingest.New(col, ingest.Options{
		ApplyThreshold: 64, CheckEvery: 32, MinShardRows: 1 << 12, ParkOnApply: park,
	})
	g.Start()
	cell := RWMixCell{
		WriteFraction: frac, Clients: clients,
		ShardsBefore: col.NumShards(),
	}

	var critical int64 // nanoseconds, accumulated across clients
	var stalls []time.Duration
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := workload.NewRNG(cfg.Seed + uint64(100+c))
			gen := workload.NewUniform(workload.Sum, d.Domain, 0.001, cfg.Seed+uint64(200+c))
			var localCrit time.Duration
			var localStalls []time.Duration
			for i := 0; i < cfg.Queries; i++ {
				if float64(r.Intn(1000))/1000 < frac {
					// Inserts and deletes spread over the whole domain,
					// so every shard's differential keeps crossing the
					// apply threshold and merges collide with writers.
					t0 := time.Now()
					if i%2 == 0 {
						_ = g.Insert(context.Background(), r.Int64n(d.Domain))
					} else {
						_, _ = g.DeleteValue(context.Background(), r.Int64n(d.Domain))
					}
					localStalls = append(localStalls, time.Since(t0))
					continue
				}
				q := gen.Next()
				_, st, _ := col.Sum(context.Background(), q.Lo, q.Hi)
				localCrit += st.Critical
			}
			mu.Lock()
			critical += int64(localCrit)
			stalls = append(stalls, localStalls...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	cell.Elapsed = time.Since(start)
	g.Close()

	st := g.Stats()
	cell.Ops = clients * cfg.Queries
	if cell.Elapsed > 0 {
		cell.Throughput = float64(cell.Ops) / cell.Elapsed.Seconds()
	}
	cell.ShardsAfter = col.NumShards()
	cell.Applied, cell.Splits, cell.Merges = st.Applied, st.Splits, st.Merges
	cell.Critical = time.Duration(critical)
	cell.WriterP99 = percentile(stalls, 0.99)
	return cell
}

// percentile returns the p-quantile of the given durations (0 when
// none were collected). Sorts in place.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := int(p * float64(len(ds)-1))
	return ds[i]
}
