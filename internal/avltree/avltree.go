// Package avltree implements the balanced search tree that serves as
// the cracker index's table of contents (paper §5.2): it maps crack
// boundary values to array positions / piece handles, giving instant
// access to previously requested key ranges and, for non-exact matches,
// the shortest qualifying range for further cracking.
//
// The tree is generic in its payload so the cracked-column index can
// store piece handles while other substrates store plain positions. It
// is not internally synchronized: the cracked column protects it with
// its short-term structure latch.
package avltree

// Tree is an AVL tree keyed by int64 with payloads of type V.
// The zero value is an empty tree.
type Tree[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	key         int64
	val         V
	left, right *node[V]
	height      int
}

func height[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func update[V any](n *node[V]) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func balanceFactor[V any](n *node[V]) int { return height(n.left) - height(n.right) }

func rotateRight[V any](y *node[V]) *node[V] {
	x := y.left
	y.left = x.right
	x.right = y
	update(y)
	update(x)
	return x
}

func rotateLeft[V any](x *node[V]) *node[V] {
	y := x.right
	x.right = y.left
	y.left = x
	update(x)
	update(y)
	return y
}

func rebalance[V any](n *node[V]) *node[V] {
	update(n)
	bf := balanceFactor(n)
	switch {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Len returns the number of keys in the tree.
func (t *Tree[V]) Len() int { return t.size }

// Height returns the height of the tree (0 for empty).
func (t *Tree[V]) Height() int { return height(t.root) }

// Insert adds key with payload val, or replaces the payload if key is
// already present. It reports whether a new key was inserted.
func (t *Tree[V]) Insert(key int64, val V) bool {
	var added bool
	t.root, added = insert(t.root, key, val)
	if added {
		t.size++
	}
	return added
}

func insert[V any](n *node[V], key int64, val V) (*node[V], bool) {
	if n == nil {
		return &node[V]{key: key, val: val, height: 1}, true
	}
	var added bool
	switch {
	case key < n.key:
		n.left, added = insert(n.left, key, val)
	case key > n.key:
		n.right, added = insert(n.right, key, val)
	default:
		n.val = val
		return n, false
	}
	return rebalance(n), added
}

// Delete removes key and reports whether it was present.
func (t *Tree[V]) Delete(key int64) bool {
	var deleted bool
	t.root, deleted = del(t.root, key)
	if deleted {
		t.size--
	}
	return deleted
}

func del[V any](n *node[V], key int64) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case key < n.key:
		n.left, deleted = del(n.left, key)
	case key > n.key:
		n.right, deleted = del(n.right, key)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with in-order successor.
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.key, n.val = s.key, s.val
		n.right, _ = del(n.right, s.key)
	}
	return rebalance(n), deleted
}

// Get returns the payload for key.
func (t *Tree[V]) Get(key int64) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Floor returns the largest key <= key and its payload.
func (t *Tree[V]) Floor(key int64) (int64, V, bool) {
	var (
		best *node[V]
		n    = t.root
	)
	for n != nil {
		if n.key == key {
			return n.key, n.val, true
		}
		if n.key < key {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Ceiling returns the smallest key >= key and its payload.
func (t *Tree[V]) Ceiling(key int64) (int64, V, bool) {
	var (
		best *node[V]
		n    = t.root
	)
	for n != nil {
		if n.key == key {
			return n.key, n.val, true
		}
		if n.key > key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Min returns the smallest key and its payload.
func (t *Tree[V]) Min() (int64, V, bool) {
	if t.root == nil {
		var zero V
		return 0, zero, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key and its payload.
func (t *Tree[V]) Max() (int64, V, bool) {
	if t.root == nil {
		var zero V
		return 0, zero, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ascend visits keys in increasing order until fn returns false.
func (t *Tree[V]) Ascend(fn func(key int64, val V) bool) {
	ascend(t.root, fn)
}

func ascend[V any](n *node[V], fn func(int64, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// Keys returns all keys in increasing order.
func (t *Tree[V]) Keys() []int64 {
	out := make([]int64, 0, t.size)
	t.Ascend(func(k int64, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}
