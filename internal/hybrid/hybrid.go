// Package hybrid implements the hybrid "crack-sort" adaptive indexing
// algorithm of the paper's §2 (Figure 4) and [23]: it combines
// database cracking's cheap initialization with adaptive merging's
// fast convergence.
//
// Life cycle, following Figure 4:
//
//   - Data is loaded into equally-sized initial partitions WITHOUT
//     sorting (unlike adaptive merging's sorted runs — this is the
//     cheap first touch).
//   - Each query cracks every initial partition on its range bounds
//     (a quicksort-style partitioning step per bound, not a sort) and
//     moves the qualifying values into a fully sorted "final"
//     partition.
//   - Once a key range is in the final partition, the initial
//     partitions are never accessed again for that range ("effort that
//     refines an initial partition is much less likely to pay off than
//     the same effort invested in refining a final partition").
//
// Concurrency follows the same scheme as package amerge: an index
// latch whose write side covers the crack-and-move step (optional,
// skippable under contention) and whose read side covers mixed
// final+initial reads; fully covered ranges are served latch-free from
// an immutable snapshot.
package hybrid

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/avltree"
	"adaptix/internal/cracker"
	"adaptix/internal/engine"
	"adaptix/internal/latch"
	"adaptix/internal/ranges"
)

// ConflictPolicy selects waiting versus conflict avoidance for the
// optional crack-and-move refinement.
type ConflictPolicy int

const (
	// Wait blocks on the index write latch.
	Wait ConflictPolicy = iota
	// Skip forgoes refinement when the latch is contended.
	Skip
)

// Options configures a hybrid crack-sort index.
type Options struct {
	// PartitionSize is the number of values per initial partition.
	// Default 1 << 16.
	PartitionSize int
	// Layout selects the cracker-array layout of the initial
	// partitions.
	Layout cracker.Layout
	// OnConflict selects waiting versus conflict avoidance.
	OnConflict ConflictPolicy
}

// part is one initial partition: a cracker array with its own
// table of contents (boundary value -> local position).
type part struct {
	arr *cracker.Array
	toc *avltree.Tree[int]
}

// crackBound ensures a local crack boundary at v and returns its
// position within the partition. Single-threaded use only (the index
// write latch serializes refinement).
func (p *part) crackBound(v int64) int {
	if pos, ok := p.toc.Get(v); ok {
		return pos
	}
	lo, hi := 0, p.arr.Len()
	if _, fp, ok := p.toc.Floor(v); ok {
		lo = fp
	}
	if _, cp, ok := p.toc.Ceiling(v); ok {
		hi = cp
	}
	pos := p.arr.CrackInTwo(lo, hi, v)
	p.toc.Insert(v, pos)
	return pos
}

// Index is a hybrid crack-sort index over one column.
type Index struct {
	opts Options
	base []int64

	lt *latch.Latch

	initOnce atomic.Bool
	parts    []*part

	// final holds the sorted, fully merged values; covered tracks the
	// key ranges it serves. snap is the immutable read snapshot.
	mu      sync.Mutex
	final   []int64
	covered *ranges.Set
	snap    atomic.Pointer[snapshot]

	extensions atomic.Int64
	skipped    atomic.Int64
	snapHits   atomic.Int64
}

type snapshot struct {
	keys    []int64
	covered *ranges.Set

	prefixOnce sync.Once
	prefix     []int64 // built lazily on the first covered sum
}

func (s *snapshot) ensurePrefix() {
	s.prefixOnce.Do(func() {
		p := make([]int64, len(s.keys)+1)
		for i, k := range s.keys {
			p[i+1] = p[i] + k
		}
		s.prefix = p
	})
}

// New creates a hybrid index over base; initial partitions are not
// built until the first query.
func New(base []int64, opts Options) *Index {
	if opts.PartitionSize <= 0 {
		opts.PartitionSize = 1 << 16
	}
	ix := &Index{
		opts:    opts,
		base:    base,
		lt:      latch.New(latch.MiddleFirst),
		covered: &ranges.Set{},
	}
	ix.snap.Store(&snapshot{covered: &ranges.Set{}})
	return ix
}

// Name implements engine.Engine.
func (ix *Index) Name() string { return "hybrid" }

// NumPartitions returns the number of initial partitions (0 before
// initialization).
func (ix *Index) NumPartitions() int { return len(ix.parts) }

// FinalSize returns the number of values in the final partition.
func (ix *Index) FinalSize() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.final)
}

// PartitionValues returns a copy of initial partition i's values in
// their current physical (cracked) order. For inspection and
// visualization.
func (ix *Index) PartitionValues(i int) []int64 {
	return ix.parts[i].arr.Values()
}

// FinalValues returns a copy of the final partition's sorted values.
func (ix *Index) FinalValues() []int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make([]int64, len(ix.final))
	copy(out, ix.final)
	return out
}

// Extensions returns how many crack-and-move steps extended the final
// partition.
func (ix *Index) Extensions() int64 { return ix.extensions.Load() }

// SkippedMoves returns how many optional refinements were forgone.
func (ix *Index) SkippedMoves() int64 { return ix.skipped.Load() }

// SnapshotHits returns how many queries were served latch-free.
func (ix *Index) SnapshotHits() int64 { return ix.snapHits.Load() }

// Count implements engine.Engine (Q1).
func (ix *Index) Count(ctx context.Context, lo, hi int64) (engine.Result, error) {
	return ix.query(ctx, lo, hi, false)
}

// Sum implements engine.Engine (Q2).
func (ix *Index) Sum(ctx context.Context, lo, hi int64) (engine.Result, error) {
	return ix.query(ctx, lo, hi, true)
}

func (ix *Index) query(ctx context.Context, lo, hi int64, wantSum bool) (engine.Result, error) {
	var res engine.Result
	if lo >= hi {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if err := ix.ensureInit(ctx, &res); err != nil {
		return res, err
	}

	if s := ix.snap.Load(); s.covered.Covers(lo, hi) {
		ix.snapHits.Add(1)
		res.Value = s.aggregate(lo, hi, wantSum)
		return res, nil
	}

	acquired := false
	if ix.opts.OnConflict == Skip {
		acquired = ix.lt.TryLock()
		if !acquired {
			res.Conflicts++
			res.Skipped = true
			ix.skipped.Add(1)
		}
	} else {
		w, err := ix.lt.LockCtx(ctx, lo)
		if w > 0 {
			res.Wait += w
			res.Conflicts++
		}
		if err != nil {
			return res, err
		}
		acquired = true
	}

	if acquired {
		start := time.Now()
		ix.extendLocked(lo, hi)
		res.Refine += time.Since(start)
		ix.lt.Downgrade()
		// The range is now fully in the final partition.
		s := ix.snap.Load()
		res.Value = s.aggregate(lo, hi, wantSum)
		ix.lt.RUnlock()
		return res, nil
	}

	// Refinement skipped: answer from the final partition plus
	// predicate scans of the initial partitions over the uncovered
	// gaps, all under the read latch.
	w, err := ix.lt.RLockCtx(ctx)
	if w > 0 {
		res.Wait += w
		res.Conflicts++
	}
	if err != nil {
		return res, err
	}
	s := ix.snap.Load()
	var total int64
	gaps := s.covered.Gaps(lo, hi)
	// Covered portion from the snapshot, gap portions from the raw
	// partitions.
	covered := [][2]int64{}
	cur := lo
	for _, g := range gaps {
		if g[0] > cur {
			covered = append(covered, [2]int64{cur, g[0]})
		}
		cur = g[1]
	}
	if cur < hi {
		covered = append(covered, [2]int64{cur, hi})
	}
	for _, c := range covered {
		total += s.aggregate(c[0], c[1], wantSum)
	}
	for _, g := range gaps {
		for _, p := range ix.parts {
			if wantSum {
				total += p.arr.ScanSum(0, p.arr.Len(), g[0], g[1])
			} else {
				total += p.arr.ScanCount(0, p.arr.Len(), g[0], g[1])
			}
		}
	}
	ix.lt.RUnlock()
	res.Value = total
	return res, nil
}

// ensureInit builds the unsorted initial partitions on first use.
// Unlike adaptive merging there is no sorting here — this is the cheap
// "first touch" of cracking (Figure 4: "data loaded into initial
// partitions, without sorting"). A context error while parked behind
// the builder abandons the query.
func (ix *Index) ensureInit(ctx context.Context, res *engine.Result) error {
	if ix.initOnce.Load() {
		return nil
	}
	w, err := ix.lt.LockCtx(ctx, 0)
	if err != nil {
		res.Wait += w
		res.Conflicts++
		return err
	}
	if ix.initOnce.Load() {
		ix.lt.Unlock()
		res.Wait += w
		res.Conflicts++
		return nil
	}
	start := time.Now()
	for off := 0; off < len(ix.base); off += ix.opts.PartitionSize {
		end := off + ix.opts.PartitionSize
		if end > len(ix.base) {
			end = len(ix.base)
		}
		ix.parts = append(ix.parts, &part{
			arr: cracker.New(ix.base[off:end], ix.opts.Layout),
			toc: &avltree.Tree[int]{},
		})
	}
	ix.initOnce.Store(true)
	res.Refine += time.Since(start)
	ix.lt.Unlock()
	return nil
}

// extendLocked cracks each initial partition on the uncovered gaps of
// [lo, hi), moves the qualifying values into the sorted final
// partition, and publishes a fresh snapshot. Caller holds the write
// latch.
func (ix *Index) extendLocked(lo, hi int64) {
	gaps := ix.covered.Gaps(lo, hi)
	if len(gaps) == 0 {
		return
	}
	var moved []int64
	for _, g := range gaps {
		for _, p := range ix.parts {
			// Crack, don't sort: two partitioning steps per partition.
			a := p.crackBound(g[0])
			b := p.crackBound(g[1])
			for i := a; i < b; i++ {
				moved = append(moved, p.arr.Value(i))
			}
		}
	}
	sort.Slice(moved, func(i, j int) bool { return moved[i] < moved[j] })

	ix.mu.Lock()
	ix.final = mergeSorted(ix.final, moved)
	ix.covered.Add(lo, hi)
	ix.snap.Store(&snapshot{keys: ix.final, covered: ix.covered.Clone()})
	ix.mu.Unlock()
	if len(moved) > 0 {
		ix.extensions.Add(1)
	}
}

// mergeSorted merges two sorted slices into a new sorted slice.
func mergeSorted(a, b []int64) []int64 {
	if len(b) == 0 {
		return a
	}
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func (s *snapshot) aggregate(lo, hi int64, wantSum bool) int64 {
	a := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= lo })
	b := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= hi })
	if wantSum {
		s.ensurePrefix()
		return s.prefix[b] - s.prefix[a]
	}
	return int64(b - a)
}
