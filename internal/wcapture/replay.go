// The deterministic replayer: re-execute a captured trace against any
// engine configuration, at original or accelerated pacing, verifying
// each read's answer against the checksum recorded at capture time.
//
// Determinism contract: replaying a trace captured serially (one
// client, SampleEvery 1) against a target built over the same logical
// dataset reproduces every recorded checksum exactly, for any method,
// shard count, or option set — the answer to a count/sum depends only
// on the logical contents, and the logical contents at record i depend
// only on the write prefix records[0:i], which replay re-executes in
// capture order. Traces captured from concurrent clients interleave at
// ring-claim order, which may differ from the engine's linearization
// order; replaying them is still valid load (and the write/read mix is
// preserved), but per-record checksum verification is only meaningful
// for serial captures — run Replay with Verify false for concurrent
// ones.
package wcapture

import (
	"context"
	"fmt"
	"time"
)

// Target is the replay execution surface: any engine that can answer
// the four record kinds. The facade's Index satisfies it via a thin
// adapter (adaptix.ReplayTrace), as do raw shard.Column+ingest
// pairings in internal/experiments — keeping this package free of
// engine dependencies.
type Target interface {
	// Count evaluates select count(*) where lo <= A < hi.
	Count(ctx context.Context, lo, hi int64) (int64, error)
	// Sum evaluates select sum(A) where lo <= A < hi.
	Sum(ctx context.Context, lo, hi int64) (int64, error)
	// Insert adds one logical instance of v.
	Insert(ctx context.Context, v int64) error
	// Delete removes one logical instance of v, reporting whether one
	// existed.
	Delete(ctx context.Context, v int64) (bool, error)
}

// ReplayOptions configures one Replay run.
type ReplayOptions struct {
	// Pace is the time-compression factor against the capture
	// timestamps: 1 reproduces the original inter-record gaps, 2 runs
	// twice as fast, 0 (the default) replays as fast as the target
	// allows.
	Pace float64
	// Verify compares every read's answer (and every delete's found
	// flag) against the checksum recorded at capture time, reporting
	// mismatches in the Report.
	Verify bool
}

// Mismatch is one replay divergence: a record whose re-executed result
// differed from the capture-time checksum.
type Mismatch struct {
	// Index is the record's position in the replayed trace.
	Index int
	// Rec is the trace record (Rec.Result holds the expected value).
	Rec Record
	// Got is the result replay observed.
	Got int64
}

// Report summarizes one Replay run.
type Report struct {
	// Records is the number of trace records executed.
	Records int
	// Reads and Writes split Records by operation class.
	Reads, Writes int
	// Mismatches counts verification failures (0 when Verify is off).
	Mismatches int
	// First is the first mismatch observed (nil when none).
	First *Mismatch
	// Elapsed is the wall-clock replay duration.
	Elapsed time.Duration
	// PerSec is Records/Elapsed in operations per second.
	PerSec float64
}

// Replay re-executes recs against t in capture order. With
// ReplayOptions.Pace non-zero the capture timestamps pace the run;
// with Verify every read and delete is checked against its recorded
// checksum. Execution stops on the first target or context error (the
// partial Report is still returned); mismatches never stop the run.
func Replay(ctx context.Context, recs []Record, t Target, o ReplayOptions) (rep Report, err error) {
	start := time.Now()
	var base int64
	if len(recs) > 0 {
		base = recs[0].T
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		rep.Elapsed = time.Since(start)
		if rep.Records > 0 && rep.Elapsed > 0 {
			rep.PerSec = float64(rep.Records) / rep.Elapsed.Seconds()
		}
	}()
	for i, rec := range recs {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if o.Pace > 0 {
			due := start.Add(time.Duration(float64(rec.T-base) / o.Pace))
			if wait := time.Until(due); wait > 0 {
				if timer == nil {
					timer = time.NewTimer(wait)
				} else {
					timer.Reset(wait)
				}
				select {
				case <-timer.C:
				case <-ctx.Done():
					return rep, ctx.Err()
				}
			}
		}
		var got int64
		var err error
		switch rec.Kind {
		case RecCount:
			got, err = t.Count(ctx, rec.Lo, rec.Hi)
			rep.Reads++
		case RecSum:
			got, err = t.Sum(ctx, rec.Lo, rec.Hi)
			rep.Reads++
		case RecInsert:
			err = t.Insert(ctx, rec.Lo)
			got = rec.Result // inserts carry no checksum
			rep.Writes++
		case RecDelete:
			var found bool
			found, err = t.Delete(ctx, rec.Lo)
			if found {
				got = 1
			}
			rep.Writes++
		default:
			return rep, fmt.Errorf("wcapture: record %d: unknown kind %d", i, rec.Kind)
		}
		if err != nil {
			return rep, fmt.Errorf("wcapture: record %d (%s): %w", i, rec.Kind, err)
		}
		rep.Records++
		if o.Verify && got != rec.Result {
			rep.Mismatches++
			if rep.First == nil {
				rep.First = &Mismatch{Index: i, Rec: rec, Got: got}
			}
		}
	}
	return rep, nil
}
