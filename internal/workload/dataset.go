package workload

// Dataset is the base table column used by the experiments: n unique
// integers 0..n-1 in random order, mirroring the paper's "table of
// 100 million tuples populated with unique randomly distributed
// integers" (§6). Because the values are exactly the integers 0..n-1,
// expected counts and sums of any value range are known in closed form,
// which the tests exploit for verification.
type Dataset struct {
	Values []int64
	// Domain is the exclusive upper bound of the value domain; values
	// are unique integers in [0, Domain).
	Domain int64
}

// NewUniqueUniform builds a dataset of n unique values 0..n-1 in a
// deterministic pseudo-random order derived from seed.
func NewUniqueUniform(n int, seed uint64) *Dataset {
	vals := make([]int64, n)
	NewRNG(seed).Perm(vals)
	return &Dataset{Values: vals, Domain: int64(n)}
}

// NewDuplicates builds a dataset of n values drawn uniformly at random
// from [0, domain), i.e. with duplicates when domain < n. Used by edge
// case tests; the paper's main experiments use unique values.
func NewDuplicates(n int, domain int64, seed uint64) *Dataset {
	r := NewRNG(seed)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = r.Int64n(domain)
	}
	return &Dataset{Values: vals, Domain: domain}
}

// TrueCount returns the number of dataset values v with lo <= v < hi,
// computed by brute force. Intended for test verification only.
func (d *Dataset) TrueCount(lo, hi int64) int64 {
	var c int64
	for _, v := range d.Values {
		if v >= lo && v < hi {
			c++
		}
	}
	return c
}

// TrueSum returns the sum of dataset values v with lo <= v < hi,
// computed by brute force. Intended for test verification only.
func (d *Dataset) TrueSum(lo, hi int64) int64 {
	var s int64
	for _, v := range d.Values {
		if v >= lo && v < hi {
			s += v
		}
	}
	return s
}
