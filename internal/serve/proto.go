// Package serve is the network serving front of the adaptive index: a
// TCP server speaking a compact length-prefixed binary protocol in
// front of one sharded column, with a per-shard batch scheduler that
// coalesces concurrently-arriving queries (shared-scan batching, the
// serving-layer analogue of the multi-query cooperation in "Main
// Memory Adaptive Indexing for Multi-core Systems") and admission
// control that rejects over-budget requests fast instead of queueing
// into collapse.
//
// # Wire format
//
// Every message — request or response — is one frame, mirroring the
// WAL sink's record discipline (internal/wal):
//
//	[length uint32][crc32(payload) uint32][payload]
//
// (little-endian, CRC-32/IEEE over the payload). A reader can detect
// truncated and corrupted frames and fail the connection instead of
// misparsing; length is bounded by MaxFramePayload, so a corrupt
// length field can never trigger a large allocation.
//
// Request payload (fixed RequestLen bytes):
//
//	[id uint64][op uint8][ttl_us uint32][lo int64][hi int64]
//
// Response payload (fixed ResponseLen bytes):
//
//	[id uint64][op uint8][status uint8][value int64][aux int64]
//
// Connections are pipelined: a client may keep many requests in
// flight; responses carry the request id and may arrive out of order
// (the batch scheduler reorders). TTL, in microseconds, propagates
// into the server-side context deadline (0 = none).
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame geometry.
const (
	// FrameHeader is the per-frame overhead: payload length plus
	// CRC-32 of the payload (the WAL sink's exact discipline).
	FrameHeader = 4 + 4
	// MaxFramePayload bounds one frame's payload; larger lengths are
	// treated as corruption before any allocation happens.
	MaxFramePayload = 1 << 16
	// RequestLen is the fixed request payload size.
	RequestLen = 8 + 1 + 4 + 8 + 8
	// ResponseLen is the fixed response payload size.
	ResponseLen = 8 + 1 + 1 + 8 + 8
)

// Op is a request operation kind.
type Op uint8

// Request operation kinds.
const (
	// OpCount evaluates Q1: count(*) where lo <= A < hi.
	OpCount Op = 1
	// OpSum evaluates Q2: sum(A) where lo <= A < hi.
	OpSum Op = 2
	// OpInsert adds one instance of the value in lo (hi is ignored).
	OpInsert Op = 3
	// OpDelete removes one instance of the value in lo; the response
	// value reports whether one existed (1/0).
	OpDelete Op = 4
	// OpStats returns the row count in value and the shard count in
	// aux.
	OpStats Op = 5
)

// String returns the op's display name.
func (o Op) String() string {
	switch o {
	case OpCount:
		return "count"
	case OpSum:
		return "sum"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpStats:
		return "stats"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// batchable reports whether the op goes through the batch scheduler
// (queries coalesce; writes and stats execute directly — a routed
// write is already a cheap epoch append with its own group machinery).
func (o Op) batchable() bool { return o == OpCount || o == OpSum }

// Status is a response status code.
type Status uint8

// Response status codes.
const (
	// StatusOK carries the answer in value.
	StatusOK Status = 0
	// StatusOverloaded is the admission-control fast reject: the
	// global in-flight budget or the connection's quota is exhausted.
	// The request was not queued and had no side effects; back off and
	// retry.
	StatusOverloaded Status = 1
	// StatusDeadline means the request's TTL expired before or while
	// it was served.
	StatusDeadline Status = 2
	// StatusBadRequest means the request was structurally invalid
	// (unknown op).
	StatusBadRequest Status = 3
	// StatusDraining means the server is shutting down gracefully and
	// no longer admits new requests.
	StatusDraining Status = 4
	// StatusInternal is an engine-side execution error.
	StatusInternal Status = 5
)

// String returns the status's display name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverloaded:
		return "overloaded"
	case StatusDeadline:
		return "deadline"
	case StatusBadRequest:
		return "bad-request"
	case StatusDraining:
		return "draining"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Request is one decoded client request.
type Request struct {
	// ID is the client-chosen correlation id, echoed in the response.
	ID uint64
	// Op selects the operation.
	Op Op
	// TTLus is the request's time budget in microseconds (0 = none);
	// the server turns it into a context deadline.
	TTLus uint32
	// Lo and Hi are the range bounds for OpCount/OpSum; Lo is the
	// value for OpInsert/OpDelete.
	Lo, Hi int64
}

// Response is one decoded server response.
type Response struct {
	// ID echoes the request's correlation id.
	ID uint64
	// Op echoes the request's op.
	Op Op
	// Status is the outcome; Value is meaningful only under StatusOK.
	Status Status
	// Value is the answer: the count or sum, 1/0 found for OpDelete,
	// the row count for OpStats.
	Value int64
	// Aux is op-specific extra data (shard count for OpStats).
	Aux int64
}

// Frame-reader errors.
var (
	// ErrFrameTooLarge is returned for a frame whose declared payload
	// exceeds MaxFramePayload (treated as corruption; no allocation is
	// attempted).
	ErrFrameTooLarge = errors.New("serve: frame payload exceeds limit")
	// ErrCorruptFrame is returned when the payload CRC does not match.
	ErrCorruptFrame = errors.New("serve: frame CRC mismatch")
	// ErrBadPayload is returned when a payload has the wrong size for
	// its message type.
	ErrBadPayload = errors.New("serve: bad payload size")
)

// AppendRequestFrame appends q as one complete frame to dst and
// returns the extended slice.
func AppendRequestFrame(dst []byte, q Request) []byte {
	var p [RequestLen]byte
	binary.LittleEndian.PutUint64(p[0:], q.ID)
	p[8] = byte(q.Op)
	binary.LittleEndian.PutUint32(p[9:], q.TTLus)
	binary.LittleEndian.PutUint64(p[13:], uint64(q.Lo))
	binary.LittleEndian.PutUint64(p[21:], uint64(q.Hi))
	return appendFrame(dst, p[:])
}

// AppendResponseFrame appends r as one complete frame to dst and
// returns the extended slice.
func AppendResponseFrame(dst []byte, r Response) []byte {
	var p [ResponseLen]byte
	binary.LittleEndian.PutUint64(p[0:], r.ID)
	p[8] = byte(r.Op)
	p[9] = byte(r.Status)
	binary.LittleEndian.PutUint64(p[10:], uint64(r.Value))
	binary.LittleEndian.PutUint64(p[18:], uint64(r.Aux))
	return appendFrame(dst, p[:])
}

func appendFrame(dst, payload []byte) []byte {
	var hdr [FrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeRequest parses a request payload.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) != RequestLen {
		return Request{}, fmt.Errorf("%w: request %d bytes, want %d", ErrBadPayload, len(p), RequestLen)
	}
	return Request{
		ID:    binary.LittleEndian.Uint64(p[0:]),
		Op:    Op(p[8]),
		TTLus: binary.LittleEndian.Uint32(p[9:]),
		Lo:    int64(binary.LittleEndian.Uint64(p[13:])),
		Hi:    int64(binary.LittleEndian.Uint64(p[21:])),
	}, nil
}

// DecodeResponse parses a response payload.
func DecodeResponse(p []byte) (Response, error) {
	if len(p) != ResponseLen {
		return Response{}, fmt.Errorf("%w: response %d bytes, want %d", ErrBadPayload, len(p), ResponseLen)
	}
	return Response{
		ID:     binary.LittleEndian.Uint64(p[0:]),
		Op:     Op(p[8]),
		Status: Status(p[9]),
		Value:  int64(binary.LittleEndian.Uint64(p[10:])),
		Aux:    int64(binary.LittleEndian.Uint64(p[18:])),
	}, nil
}

// ReadFrame reads one frame from br and returns its payload (appended
// into buf, which may be nil; the returned slice aliases buf's
// backing array when it fits). It validates the declared length
// against MaxFramePayload BEFORE allocating and the payload CRC after
// reading, so corrupt input errors out instead of panicking or
// over-allocating. A clean EOF at a frame boundary returns io.EOF; a
// tear inside a frame returns io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [FrameHeader]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return nil, err // io.EOF: clean close between frames
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxFramePayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(buf) != sum {
		return nil, ErrCorruptFrame
	}
	return buf, nil
}
