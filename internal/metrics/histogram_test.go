package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// Every representable boundary value must map into a bucket whose
// [low, nextLow) range contains it, and bucket lows must be strictly
// increasing.
func TestBucketMapping(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		lo := bucketLow(i)
		if bucketOf(lo) != i {
			t.Fatalf("bucketOf(bucketLow(%d)=%d) = %d", i, lo, bucketOf(lo))
		}
		if i > 0 && lo <= bucketLow(i-1) {
			t.Fatalf("bucket lows not increasing at %d: %d <= %d", i, lo, bucketLow(i-1))
		}
		mid := bucketMid(i)
		if bucketOf(mid) != i {
			t.Fatalf("bucketOf(bucketMid(%d)=%d) = %d", i, mid, bucketOf(mid))
		}
	}
	cases := []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, math.MaxInt64}
	for _, v := range cases {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		if bucketLow(i) > v {
			t.Fatalf("bucketLow(%d)=%d > value %d", i, bucketLow(i), v)
		}
		if i+1 < histBuckets && bucketLow(i+1) <= v {
			t.Fatalf("value %d belongs in bucket %d but next low is %d", v, i, bucketLow(i+1))
		}
	}
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("negative values should clamp to bucket 0, got %d", got)
	}
}

// Quantile readout must be within one sub-bucket (6.25%) of the true
// value on a known distribution.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if got := s.Count(); got != 10000 {
		t.Fatalf("Count = %d, want 10000", got)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 5000}, {0.99, 9900}, {0.999, 9990}} {
		got := s.Quantile(tc.q)
		if relErr(got, tc.want) > 1.0/16 {
			t.Fatalf("Quantile(%g) = %d, want ~%d (rel err %.3f)", tc.q, got, tc.want, relErr(got, tc.want))
		}
	}
	wantMean := float64(10001) / 2
	if m := s.Mean(); math.Abs(m-wantMean)/wantMean > 0.01 {
		t.Fatalf("Mean = %g, want ~%g", m, wantMean)
	}
}

func relErr(got, want int64) float64 {
	return math.Abs(float64(got-want)) / float64(want)
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(0); v < 100; v++ {
		a.Record(v)
		b.Record(v * 10)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if got := sa.Count(); got != 200 {
		t.Fatalf("merged Count = %d, want 200", got)
	}
	if got, want := sa.Sum, sb.Sum+a.Snapshot().Sum; got != want {
		t.Fatalf("merged Sum = %d, want %d", got, want)
	}
}

// The ISSUE's conservation test: N concurrent writers racing a
// snapshot-reset reader; every recorded observation must land in
// exactly one snapshot (run under -race in CI).
func TestSnapshotResetConservation(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20000
	)
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(int64(w*1000 + i%997))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var total, sum int64
	drain := func() {
		s := h.SnapshotReset()
		total += s.Count()
		sum += s.Sum
	}
	for {
		select {
		case <-done:
			drain() // final drain after all writers finished
			if want := int64(writers * perWriter); total != want {
				t.Fatalf("conservation violated: drained %d observations, want %d", total, want)
			}
			var wantSum int64
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					wantSum += int64(w*1000 + i%997)
				}
			}
			if sum != wantSum {
				t.Fatalf("sum conservation violated: drained %d, want %d", sum, wantSum)
			}
			return
		default:
			drain()
		}
	}
}

// Hot-path recording must not allocate: the acceptance criterion for
// instrumenting query and write paths.
func TestRecordDoesNotAllocate(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(100, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Histogram.Record allocates %v per op", n)
	}
	fl := NewFlight(64)
	if n := testing.AllocsPerRun(100, func() { fl.Record(EvQuery, 3, time.Millisecond, 1, 2) }); n != 0 {
		t.Fatalf("Flight.Record allocates %v per op", n)
	}
	ob := NewObserver(ObserverOptions{})
	if n := testing.AllocsPerRun(100, func() {
		ob.RecordQuery(time.Time{}, time.Microsecond, time.Microsecond, time.Microsecond)
		ob.RecordLatchWait(time.Microsecond, false)
		ob.RecordWriterPark(0, time.Microsecond)
		ob.RecordFsync(time.Microsecond)
		ob.RecordCommitBatch(8)
	}); n != 0 {
		t.Fatalf("Observer recording allocates %v per op", n)
	}
	var nilOb *Observer
	if n := testing.AllocsPerRun(100, func() {
		nilOb.RecordQuery(nilOb.QueryStart(), 0, 0, 0)
		nilOb.RecordLatchWait(0, true)
	}); n != 0 {
		t.Fatalf("nil Observer recording allocates %v per op", n)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(EvQuery, 0, time.Microsecond, 1, 2)
	}
}
