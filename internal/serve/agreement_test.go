package serve_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptix/internal/baseline"
	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/serve"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

var qctx = context.Background()

// wireEngine is the query/write surface the agreement test drives —
// implemented by the in-process scan baseline and by a protocol
// client talking to a live server.
type wireEngine interface {
	Insert(v int64)
	DeleteValue(v int64) bool
	Count(lo, hi int64) int64
	Sum(lo, hi int64) int64
}

type scanEng struct{ m *baseline.Mutable }

func (e scanEng) Insert(v int64)           { e.m.Insert(v) }
func (e scanEng) DeleteValue(v int64) bool { return e.m.DeleteValue(v) }
func (e scanEng) Count(lo, hi int64) int64 {
	r, _ := e.m.Count(qctx, lo, hi)
	return r.Value
}
func (e scanEng) Sum(lo, hi int64) int64 {
	r, _ := e.m.Sum(qctx, lo, hi)
	return r.Value
}

// clientEng drives one protocol connection; errors panic because the
// agreement run admits everything (budget sized above the offered
// concurrency).
type clientEng struct{ c *serve.Client }

func (e clientEng) Insert(v int64) {
	if err := e.c.Insert(qctx, v); err != nil {
		panic(err)
	}
}
func (e clientEng) DeleteValue(v int64) bool {
	ok, err := e.c.Delete(qctx, v)
	if err != nil {
		panic(err)
	}
	return ok
}
func (e clientEng) Count(lo, hi int64) int64 {
	n, err := e.c.Count(qctx, lo, hi)
	if err != nil {
		panic(err)
	}
	return n
}
func (e clientEng) Sum(lo, hi int64) int64 {
	s, err := e.c.Sum(qctx, lo, hi)
	if err != nil {
		panic(err)
	}
	return s
}

// driveMixedWire runs the deterministic interleaving-independent
// read/write mix (the ingest agreement tests' discipline: each client
// inserts its own fresh values and deletes its own residue class, so
// the final logical contents are schedule-independent) with one engine
// handle per client.
func driveMixedWire(engines []wireEngine, rows, opsPerClient int, writeFrac float64) {
	var sink atomic.Int64
	var wg sync.WaitGroup
	domain := int64(rows)
	clients := len(engines)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			e := engines[c]
			r := workload.NewRNG(uint64(1000 + c))
			gen := workload.NewUniform(workload.Sum, domain, 0.01, uint64(500+c))
			inserts, deletes := 0, 0
			for i := 0; i < opsPerClient; i++ {
				if float64(r.Intn(1000))/1000 < writeFrac {
					if i%2 == 0 {
						e.Insert(domain + int64(c*opsPerClient+inserts))
						inserts++
					} else {
						v := int64(deletes*clients + c)
						if v < domain {
							e.DeleteValue(v)
						}
						deletes++
					}
					continue
				}
				q := gen.Next()
				if q.Kind == workload.Count {
					sink.Add(e.Count(q.Lo, q.Hi))
				} else {
					sink.Add(e.Sum(q.Lo, q.Hi))
				}
			}
		}(c)
	}
	wg.Wait()
}

// checksumWire folds the quiesced contents over the full range plus a
// deterministic sample of sub-ranges.
func checksumWire(e wireEngine, rows int) int64 {
	domain := int64(2 * rows)
	var sum int64
	sum += e.Count(-1<<40, 1<<40)
	sum += 3 * e.Sum(-1<<40, 1<<40)
	r := workload.NewRNG(4242)
	for i := 0; i < 64; i++ {
		lo := r.Int64n(domain)
		hi := lo + 1 + r.Int64n(domain-lo)
		sum += e.Count(lo, hi)
		sum += 3 * e.Sum(lo, hi)
	}
	return sum
}

// TestWireAgreement runs the deterministic concurrent read/write mix
// through N protocol connections against a live batched server —
// ingest coordinator applying and rebalancing underneath, so splits
// and merges happen mid-run — and asserts the quiesced final checksum
// matches the in-process scan baseline exactly, at 1, 4, and 16
// clients. The serving layer (framing, pipelining, batch coalescing,
// deadline plumbing) must never change an answer. Run under -race by
// CI.
func TestWireAgreement(t *testing.T) {
	const rows = 1 << 13
	const opsPerClient = 800
	d := workload.NewUniqueUniform(rows, 11)
	for _, clients := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("clients=%d", clients), func(t *testing.T) {
			// Baseline: the same mix against the mutable scan, same
			// client count (the write set is interleaving-independent).
			scan := scanEng{baseline.NewMutable(d.Values)}
			scanHandles := make([]wireEngine, clients)
			for i := range scanHandles {
				scanHandles[i] = scan
			}
			driveMixedWire(scanHandles, rows, opsPerClient, 0.5)

			// Server under test: aggressive apply/rebalance thresholds
			// force structural churn while the wire traffic runs.
			col := shard.New(d.Values, shard.Options{
				Shards: 4, Seed: 5,
				Index: crackindex.Options{Latching: crackindex.LatchPiece},
			})
			g := ingest.New(col, ingest.Options{
				ApplyThreshold: 128, MinShardRows: 512, CheckEvery: 64,
			})
			g.Start()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := serve.New(serve.Backend{Col: col, Ing: g}, ln, serve.Options{
				MaxInFlight: 1 << 16, ConnQuota: 1 << 12,
			})

			conns := make([]wireEngine, clients)
			for i := range conns {
				cl, err := serve.Dial(srv.Addr().String())
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				conns[i] = clientEng{cl}
			}
			driveMixedWire(conns, rows, opsPerClient, 0.5)

			want := checksumWire(scan, rows)
			got := checksumWire(conns[0], rows)
			if got != want {
				t.Errorf("wire final checksum %d, scan baseline %d", got, want)
			}

			// Clean drain, then validate structure and confirm the run
			// exercised batching.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
			cancel()
			g.Close()
			if err := col.Validate(); err != nil {
				t.Error(err)
			}
			st := srv.Stats()
			if clients > 1 && st.Batches == 0 {
				t.Errorf("no batches dispatched at %d clients: %+v", clients, st)
			}
		})
	}
}
