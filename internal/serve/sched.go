package serve

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/metrics"
	"adaptix/internal/shard"
)

// DefaultWindow is the batching window: queries arriving within one
// window that route to the same home shard are coalesced into one
// executor dispatch.
const DefaultWindow = 100 * time.Microsecond

// pendReq is one admitted query parked in the scheduler.
type pendReq struct {
	id       uint64
	op       Op
	lo, hi   int64
	deadline time.Time // zero = none
	finish   func(Response)
}

// batch accumulates the requests of one (shard, window) cell.
type batch struct {
	reqs []pendReq
}

// scheduler is the per-shard batch scheduler. Requests landing in the
// same scheduling window whose lower bound routes to the same shard
// are dispatched together: one executor goroutine serves the whole
// batch against warm latches and piece caches, and exact-duplicate
// (op, lo, hi) bounds execute ONCE — one latch acquisition and one
// piece traversal (and at most one crack) — with the answer fanned
// out to every waiter. Batches for different shards dispatch
// independently and in parallel.
type scheduler struct {
	col    *shard.Column
	window time.Duration

	mu      sync.Mutex
	pending map[int]*batch
	depth   int // queries currently parked across all shards

	// bounds caches the column's shard cut values for routing; the
	// cache refreshes when the shard count changes. Routing is a
	// grouping heuristic — a stale cut can only cost a missed coalesce,
	// never a wrong answer (execution always goes through the column's
	// own fan-out).
	bounds atomic.Pointer[[]int64]

	// Shared observability instruments (owned by the Server).
	batchSize  *metrics.Histogram
	queueDepth *metrics.Histogram
	batches    *atomic.Int64
	batchedReq *atomic.Int64
	coalesced  *atomic.Int64
}

// route returns the index of the shard owning value lo under the
// cached cut snapshot.
func (s *scheduler) route(lo int64) int {
	b := s.bounds.Load()
	if b == nil || s.col.NumShards() != len(*b)+1 {
		nb := s.col.Bounds()
		s.bounds.Store(&nb)
		b = &nb
	}
	cuts := *b
	return sort.Search(len(cuts), func(i int) bool { return cuts[i] > lo })
}

// enqueue parks r in its home shard's building batch, opening the
// batch (and arming its window timer) if r is the first request of
// the window.
func (s *scheduler) enqueue(r pendReq) {
	home := s.route(r.lo)
	s.mu.Lock()
	b := s.pending[home]
	if b == nil {
		b = &batch{}
		s.pending[home] = b
		time.AfterFunc(s.window, func() { s.fire(home, b) })
	}
	b.reqs = append(b.reqs, r)
	s.depth++
	s.mu.Unlock()
}

// fire dispatches the batch b if it is still the pending batch for
// its shard (flush may have raced it out of the map; identity makes
// dispatch exactly-once).
func (s *scheduler) fire(home int, b *batch) {
	s.mu.Lock()
	if s.pending[home] != b {
		s.mu.Unlock()
		return
	}
	delete(s.pending, home)
	s.depth -= len(b.reqs)
	depth := s.depth
	s.mu.Unlock()
	s.exec(b.reqs, depth)
}

// flush dispatches every pending batch immediately (graceful drain:
// no request waits out a window that will never fill).
func (s *scheduler) flush() {
	s.mu.Lock()
	grabbed := make([]*batch, 0, len(s.pending))
	for home, b := range s.pending {
		grabbed = append(grabbed, b)
		delete(s.pending, home)
		s.depth -= len(b.reqs)
	}
	depth := s.depth
	s.mu.Unlock()
	for _, b := range grabbed {
		s.exec(b.reqs, depth)
	}
}

// boundsKey identifies an exact-duplicate query inside one batch.
type boundsKey struct {
	op     Op
	lo, hi int64
}

// exec serves one batch: expired requests are answered StatusDeadline
// without touching the engine, the remainder is grouped by exact
// bounds, each unique bound executes once under a context bounded by
// the latest waiter deadline, and the answer fans out to all waiters
// of that bound.
func (s *scheduler) exec(reqs []pendReq, depthAfter int) {
	s.batchSize.Record(int64(len(reqs)))
	s.queueDepth.Record(int64(depthAfter))
	s.batches.Add(1)
	s.batchedReq.Add(int64(len(reqs)))

	now := time.Now()
	var maxDeadline time.Time
	groups := make(map[boundsKey][]pendReq, len(reqs))
	order := make([]boundsKey, 0, len(reqs))
	for _, r := range reqs {
		if !r.deadline.IsZero() && r.deadline.Before(now) {
			r.finish(Response{ID: r.id, Op: r.op, Status: StatusDeadline})
			continue
		}
		k := boundsKey{op: r.op, lo: r.lo, hi: r.hi}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		} else {
			s.coalesced.Add(1)
		}
		groups[k] = append(groups[k], r)
		if r.deadline.After(maxDeadline) {
			maxDeadline = r.deadline
		}
	}
	if len(order) == 0 {
		return
	}

	// One context for the whole dispatch, bounded by the LATEST waiter
	// deadline: the execution must be allowed to run long enough to
	// serve its most patient waiter, and individual expiry was already
	// settled at dispatch time.
	ctx := context.Background()
	if !maxDeadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, maxDeadline)
		defer cancel()
	}
	for _, k := range order {
		var v int64
		var err error
		switch k.op {
		case OpCount:
			v, _, err = s.col.Count(ctx, k.lo, k.hi)
		case OpSum:
			v, _, err = s.col.Sum(ctx, k.lo, k.hi)
		}
		status := StatusOK
		if err != nil {
			status = StatusInternal
			if ctx.Err() != nil {
				status = StatusDeadline
			}
			v = 0
		}
		for _, r := range groups[k] {
			r.finish(Response{ID: r.id, Op: r.op, Status: status, Value: v})
		}
	}
}
