package shard_test

import (
	"fmt"
	"testing"
	"time"

	"adaptix/internal/amerge"
	"adaptix/internal/hybrid"

	"adaptix/internal/baseline"
	"adaptix/internal/crackindex"
	"adaptix/internal/engine"
	"adaptix/internal/harness"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// TestCrossEngineChecksumAgreement runs the same seeded query stream
// through the scan baseline, the single-column crack engine, and the
// sharded engine at several client counts and asserts that every run
// folds to the identical checksum: concurrency, partitioning, and
// fan-out merging must never change an answer. Run under -race by CI.
func TestCrossEngineChecksumAgreement(t *testing.T) {
	const rows = 1 << 14
	d := workload.NewUniqueUniform(rows, 11)
	streams := []struct {
		name string
		gen  workload.Generator
	}{
		{"uniform-sum", workload.NewUniform(workload.Sum, d.Domain, 0.01, 31)},
		{"uniform-count", workload.NewUniform(workload.Count, d.Domain, 0.001, 37)},
		{"skewed-zipf", workload.NewZipf(workload.Sum, d.Domain, 0.005, 1.0, 41)},
		{"sequential", workload.NewSequential(workload.Count, d.Domain, 0.02)},
	}
	for _, s := range streams {
		qs := workload.Fixed(s.gen, 192)
		for _, clients := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/clients=%d", s.name, clients), func(t *testing.T) {
				engines := []engine.Engine{
					baseline.NewScan(d.Values),
					engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
						Latching: crackindex.LatchPiece,
					})),
					engine.NewSharded(shard.New(d.Values, shard.Options{
						Shards: 4, Seed: 5,
						Index: crackindex.Options{Latching: crackindex.LatchPiece},
					})),
				}
				want := harness.Execute(engines[0], qs, clients).Checksum
				for _, e := range engines[1:] {
					run := harness.Execute(e, qs, clients)
					if run.Checksum != want {
						t.Errorf("%s checksum %d, scan baseline %d", e.Name(), run.Checksum, want)
					}
				}
			})
		}
	}
}

// TestShardedEngineAgainstDuplicates repeats the agreement check on a
// duplicate-heavy dataset, where quantile cuts collapse and shards are
// unbalanced.
func TestShardedEngineAgainstDuplicates(t *testing.T) {
	d := workload.NewDuplicates(1<<13, 256, 13)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.05, 17), 128)
	for _, clients := range []int{1, 4} {
		scan := harness.Execute(baseline.NewScan(d.Values), qs, clients)
		sharded := harness.Execute(engine.NewSharded(shard.New(d.Values, shard.Options{
			Shards: 8,
			Index:  crackindex.Options{Latching: crackindex.LatchPiece},
		})), qs, clients)
		if sharded.Checksum != scan.Checksum {
			t.Errorf("clients=%d: sharded checksum %d, scan %d", clients, sharded.Checksum, scan.Checksum)
		}
	}
}

// TestCustomSourceShards builds the sharded column over adaptive-merge
// and hybrid per-shard indexes through Options.Source +
// engine.SourceFromEngine, and checks answers and the read-only write
// path contract.
func TestCustomSourceShards(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 51)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.02, 53), 96)
	want := harness.Execute(baseline.NewScan(d.Values), qs, 1).Checksum

	sources := []struct {
		name string
		mk   func(values []int64) engine.AggregateSource
	}{
		{"amerge", func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(amerge.New(values, amerge.Options{}))
		}},
		{"hybrid", func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(hybrid.New(values, hybrid.Options{}))
		}},
	}
	for _, src := range sources {
		for _, clients := range []int{1, 4} {
			col := shard.New(d.Values, shard.Options{Shards: 4, Seed: 5, Source: src.mk})
			run := harness.Execute(engine.NewShardedNamed(col, "sharded/"+src.name), qs, clients)
			if run.Checksum != want {
				t.Errorf("%s clients=%d: checksum %d, scan %d", src.name, clients, run.Checksum, want)
			}
			if err := col.Insert(1); err != shard.ErrReadOnlyShard {
				t.Errorf("%s: Insert err = %v, want ErrReadOnlyShard", src.name, err)
			}
			if _, err := col.DeleteValue(1); err != shard.ErrReadOnlyShard {
				t.Errorf("%s: DeleteValue err = %v, want ErrReadOnlyShard", src.name, err)
			}
			if _, ok := col.ApplyShard(0); ok {
				t.Errorf("%s: ApplyShard succeeded on a custom-source shard", src.name)
			}
			if _, ok := col.SplitShard(0); ok {
				t.Errorf("%s: SplitShard succeeded on a custom-source shard", src.name)
			}
		}
	}
}

// TestCriticalPathStat checks the fan-out critical-path metric: for a
// query spanning several shards, Critical must be positive and no
// larger than the total work (Wait + Crack) ... it can legitimately
// exceed pure refinement time since it includes scan time, but it must
// never exceed the query's end-to-end response time.
func TestCriticalPathStat(t *testing.T) {
	d := workload.NewUniqueUniform(1<<14, 57)
	col := shard.New(d.Values, shard.Options{
		Shards: 8, Seed: 5,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	e := engine.NewSharded(col)
	start := time.Now()
	// Clip one value off each end: the fringe shards are only partially
	// covered, so the query must fan out to real sub-queries instead of
	// being answered purely from the precomputed aggregates.
	res := e.Sum(1, d.Domain-1)
	elapsed := time.Since(start)
	if res.Critical <= 0 {
		t.Fatalf("Critical = %v for a fan-out query, want > 0", res.Critical)
	}
	if res.Critical > elapsed {
		t.Errorf("Critical %v exceeds end-to-end response %v", res.Critical, elapsed)
	}
}
