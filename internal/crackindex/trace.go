package crackindex

import (
	"fmt"
	"time"
)

// TraceKind identifies a latch/crack trace event.
type TraceKind int

const (
	// TraceWantWrite: the query requested a write latch.
	TraceWantWrite TraceKind = iota
	// TraceAcquireWrite: the write latch was granted.
	TraceAcquireWrite
	// TraceReleaseWrite: the write latch was released.
	TraceReleaseWrite
	// TraceWantRead: the query requested a read latch.
	TraceWantRead
	// TraceAcquireRead: the read latch was granted.
	TraceAcquireRead
	// TraceReleaseRead: the read latch was released.
	TraceReleaseRead
	// TraceCracked: the query physically cracked a piece.
	TraceCracked
	// TraceDowngraded: a write latch was downgraded to a read latch.
	TraceDowngraded
)

// String returns the event kind's timeline label.
func (k TraceKind) String() string {
	switch k {
	case TraceWantWrite:
		return "want-W"
	case TraceAcquireWrite:
		return "acq-W"
	case TraceReleaseWrite:
		return "rel-W"
	case TraceWantRead:
		return "want-R"
	case TraceAcquireRead:
		return "acq-R"
	case TraceReleaseRead:
		return "rel-R"
	case TraceCracked:
		return "crack"
	default:
		return "downgrade"
	}
}

// TraceEvent is one record delivered to Options.Tracer. It reproduces
// the information of the Figure 8 latch timelines: which query touched
// which latch (whole column or a specific piece) in which mode.
type TraceEvent struct {
	// Time is the event timestamp.
	Time time.Time
	// Query is the tag supplied via CountTagged / SumTagged.
	Query string
	// Kind is the event type.
	Kind TraceKind
	// Column is true when the event concerns the column latch
	// (LatchColumn mode); otherwise the Piece* fields identify the
	// piece.
	Column bool
	// PieceLo is the piece's starting position (immutable).
	PieceLo int
	// PieceLoVal is the piece's starting boundary value (immutable);
	// minKey for the head piece.
	PieceLoVal int64
	// Bound is the crack bound for write-latch requests (0 otherwise).
	Bound int64
}

// String renders the event compactly for the latch-trace example.
func (e TraceEvent) String() string {
	target := "column"
	if !e.Column {
		target = fmt.Sprintf("piece@%d", e.PieceLo)
	}
	if e.Kind == TraceWantWrite || e.Kind == TraceCracked {
		return fmt.Sprintf("%-4s %-9s %s bound=%d", e.Query, e.Kind, target, e.Bound)
	}
	return fmt.Sprintf("%-4s %-9s %s", e.Query, e.Kind, target)
}

func (ix *Index) emit(ctx *opCtx, kind TraceKind, p *piece, bound int64) {
	ev := TraceEvent{Time: time.Now(), Query: ctx.tag, Kind: kind, Bound: bound}
	if p == nil {
		ev.Column = true
	} else {
		ev.PieceLo = p.lo
		ev.PieceLoVal = p.loVal
	}
	ix.opts.Tracer(ev)
}

func (ix *Index) traceWant(ctx *opCtx, p *piece, write bool, bound int64) {
	if ix.opts.Tracer == nil {
		return
	}
	if write {
		ix.emit(ctx, TraceWantWrite, p, bound)
	} else {
		ix.emit(ctx, TraceWantRead, p, 0)
	}
}

func (ix *Index) traceAcquired(ctx *opCtx, p *piece, write bool) {
	if ix.opts.Tracer == nil {
		return
	}
	if write {
		ix.emit(ctx, TraceAcquireWrite, p, 0)
	} else {
		ix.emit(ctx, TraceAcquireRead, p, 0)
	}
}

func (ix *Index) traceRelease(ctx *opCtx, p *piece, write bool) {
	if ix.opts.Tracer == nil {
		return
	}
	if write {
		ix.emit(ctx, TraceReleaseWrite, p, 0)
	} else {
		ix.emit(ctx, TraceReleaseRead, p, 0)
	}
}

func (ix *Index) traceCrack(ctx *opCtx, p *piece, bound int64) {
	if ix.opts.Tracer == nil {
		return
	}
	ix.emit(ctx, TraceCracked, p, bound)
}

func (ix *Index) traceDowngrade(ctx *opCtx, p *piece) {
	if ix.opts.Tracer == nil {
		return
	}
	ix.emit(ctx, TraceDowngraded, p, 0)
}
