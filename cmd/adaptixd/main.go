// Command adaptixd serves one adaptive index over the network: the
// length-prefixed CRC-framed binary protocol (see docs/SERVING.md) on
// -addr with shared-scan query batching and admission control, plus
// the observability endpoint (/metrics, /snapshot, /health, ...) on
// -obs. SIGINT/SIGTERM triggers a graceful drain: stop accepting,
// flush pending batches, wait for in-flight requests, final
// durability checkpoint, exit 0.
//
// Usage:
//
//	adaptixd [-addr :7090] [-obs :6060] [-rows 1000000] [-method crack]
//	         [-shards 0] [-dir path] [-window 100us] [-maxinflight 1024]
//	         [-quota 256] [-drain 10s]
//
// With -dir the index is durable (adaptix.Open on the directory,
// creating it with -rows uniform values when fresh); without it the
// server fronts an in-memory index seeded with -rows values.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adaptix"
	"adaptix/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7090", "protocol listen address")
	obsAddr := flag.String("obs", ":6060", "observability HTTP listen address (empty: disabled)")
	rows := flag.Int("rows", 1_000_000, "initial rows (uniform unique values) when creating")
	method := flag.String("method", "crack", "indexing method: crack, amerge, hybrid, sort, scan")
	shards := flag.Int("shards", 0, "shard count (0: one per CPU)")
	dir := flag.String("dir", "", "durable store directory (empty: in-memory)")
	seed := flag.Uint64("seed", 42, "seed for the generated initial values")
	window := flag.Duration("window", 0, "batching window (0: default 100us; negative: disabled)")
	maxInFlight := flag.Int("maxinflight", 0, "global in-flight request budget (0: default)")
	quota := flag.Int("quota", 0, "per-connection in-flight quota (0: default)")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM")
	flag.Parse()

	if err := run(*addr, *obsAddr, *dir, *method, *rows, *shards, *seed,
		*window, *maxInFlight, *quota, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "adaptixd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, obsAddr, dir, method string, rows, shards int, seed uint64,
	window time.Duration, maxInFlight, quota int, drain time.Duration) error {
	var m adaptix.Method
	switch method {
	case "crack":
		m = adaptix.Crack
	case "amerge":
		m = adaptix.AMerge
	case "hybrid":
		m = adaptix.Hybrid
	case "sort":
		m = adaptix.Sort
	case "scan":
		m = adaptix.Scan
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	opts := []adaptix.Option{adaptix.WithMethod(m)}
	if shards > 0 {
		opts = append(opts, adaptix.WithShards(shards))
	}

	values := workload.NewUniqueUniform(rows, seed).Values
	var ix *adaptix.Index
	var err error
	if dir != "" {
		ix, err = adaptix.Open(dir, append(opts, adaptix.WithValues(values))...)
	} else {
		ix, err = adaptix.New(values, opts...)
	}
	if err != nil {
		return err
	}
	defer ix.Close()

	srv, err := ix.ServeAddr(addr, adaptix.ServeOptions{
		Window:      window,
		MaxInFlight: maxInFlight,
		ConnQuota:   quota,
	})
	if err != nil {
		return err
	}
	fmt.Printf("adaptixd: serving %s (%d rows, %d shards) on %s\n",
		m, ix.Rows(), ix.NumShards(), srv.Addr())

	if obsAddr != "" {
		go func() {
			if err := http.ListenAndServe(obsAddr, ix.Observe()); err != nil {
				fmt.Fprintf(os.Stderr, "adaptixd: obs endpoint: %v\n", err)
			}
		}()
		fmt.Printf("adaptixd: observability on %s\n", obsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("adaptixd: draining...")

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := srv.Stats()
	fmt.Printf("adaptixd: drained clean (%d served, %d batches, coalesce rate %.2f)\n",
		st.Served, st.Batches, st.CoalesceRate)
	return nil
}
