// Package epoch implements versioned differential files: the
// multi-version write path that keeps shard maintenance off the
// critical path of concurrent writers.
//
// The paper (§4.2) relies on a differential file to absorb updates
// while the adaptive index reorganizes itself; with a single
// differential, a group-apply merge must seal the shard and park
// writers for the whole rebuild ("Main Memory Adaptive Indexing for
// Multi-core Systems", Alvarez et al., 2014, shows such stalls
// dominate on many cores). This package versions the differential
// instead: each shard's pending writes live in an append-only chain of
// epoch files. A group-apply seals only the *current* epoch — writers
// immediately append to the freshly opened successor — and the sealed
// prefix merges into the cracker array in the background. Readers
// snapshot the base part plus every visible epoch for exact answers
// mid-merge, the optimistic/multi-version scheme the paper names as
// the way to keep index maintenance out of transaction critical paths.
//
// Epoch lifecycle:
//
//		open ──Seal/Roll──▶ sealed ──apply──▶ applied ──Fork──▶ pruned
//
//	  - open: the chain's last file; writers append under the chain's
//	    shared read latch.
//	  - sealed: immutable; still consulted by readers, waiting for a
//	    group-apply merge.
//	  - applied: its contents are folded into a successor part's base
//	    array; the successor's chain (Fork) no longer lists it.
//	  - pruned: unreachable once the last reader of the old part
//	    drops its shard-map snapshot; memory is reclaimed by GC.
//
// Epoch ids are allocated from one monotonic per-column counter, so a
// single watermark W orders every epoch of every shard: "contents up
// to W" is a well-defined cut that checkpoints persist (CkptEpoch) and
// recovery uses to discard half-applied epochs and replay only the
// logical records beyond it.
//
// Forked chains (the successor published by a group-apply) share the
// lineage latch and the open epoch file with their ancestor, so a
// writer still holding the pre-merge part appends to the same open
// epoch and is never lost; a writer that finds its open epoch sealed
// re-routes through the current shard map instead of parking.
package epoch

import (
	"sort"
	"sync"

	"adaptix/internal/kernel"
)

// File is one epoch: a sorted multiset of pending inserts and
// anti-matter deletes. Append-only while open, immutable once sealed.
type File struct {
	mu     sync.RWMutex
	id     int64
	ins    []int64 // sorted pending inserts
	del    []int64 // sorted pending deletes (anti-matter)
	sealed bool
}

func newFile(id int64) *File { return &File{id: id} }

// insert appends v, reporting the epoch id it landed in; ok is false
// when the file was sealed by a concurrent structural operation (the
// caller must re-route through the current shard map).
func (f *File) insert(v int64) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return 0, false
	}
	f.ins = InsertSorted(f.ins, v)
	return f.id, true
}

// countAdj returns the file's count adjustment for [lo, hi).
func (f *File) countAdj(lo, hi int64) int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return CountRange(f.ins, lo, hi) - CountRange(f.del, lo, hi)
}

// sumAdj returns the file's sum adjustment for [lo, hi).
func (f *File) sumAdj(lo, hi int64) int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return SumRange(f.ins, lo, hi) - SumRange(f.del, lo, hi)
}

// Stat is an observability snapshot of one epoch file.
type Stat struct {
	// ID is the epoch id (monotonic per column).
	ID int64
	// Ins and Del are the pending insert and delete counts.
	Ins, Del int
	// Sealed reports whether the epoch is immutable.
	Sealed bool
}

func (f *File) stat() Stat {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return Stat{ID: f.id, Ins: len(f.ins), Del: len(f.del), Sealed: f.sealed}
}

// Sealed describes one epoch sealed by Chain.Seal.
type Sealed struct {
	// ID is the sealed epoch's id.
	ID int64
	// Ins and Del are the record counts it was sealed with.
	Ins, Del int
}

// Chain is one shard's append-only chain of epoch files: zero or more
// sealed (immutable, unapplied) epochs followed by exactly one open
// epoch. All methods are safe for concurrent use.
//
// The latch is shared across every Fork of one lineage, so the
// delete-existence check (Delete) is serialized against concurrent
// deletes even when old and new parts briefly coexist around a
// group-apply publish.
type Chain struct {
	mu   *sync.RWMutex // lineage latch, shared across forks
	next func() int64  // epoch-id allocator (per-column monotonic counter)

	// epochs is the chain in ascending id order; guarded by mu. All
	// files are sealed except the last, which is open (Close, used
	// under a part seal, temporarily breaks this until Reopen or the
	// chain is discarded).
	epochs []*File
}

// NewChain creates a chain with one open epoch. next must return
// strictly increasing ids (one shared counter per column).
func NewChain(next func() int64) *Chain {
	return &Chain{mu: new(sync.RWMutex), next: next, epochs: []*File{newFile(next())}}
}

// Insert appends one pending insert of v to the open epoch, reporting
// the epoch id it landed in. ok is false when the open epoch was
// sealed by a structural operation — the caller re-routes through the
// current shard map (it never parks).
func (ch *Chain) Insert(v int64) (epochID int64, ok bool) {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	return ch.epochs[len(ch.epochs)-1].insert(v)
}

// Delete appends an anti-matter record for v to the open epoch if a
// logical instance exists: baseCount instances in the part's base
// array (immutable, so the caller may count it outside the latch) plus
// the chain's net adjustment. The check-and-append is atomic under the
// lineage latch, so two racing deletes can never over-delete the last
// instance. ok is false when the open epoch was sealed concurrently
// (re-route, as with Insert).
func (ch *Chain) Delete(v int64, baseCount int64) (epochID int64, deleted, ok bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	open := ch.epochs[len(ch.epochs)-1]
	open.mu.Lock()
	defer open.mu.Unlock()
	if open.sealed {
		return 0, false, false
	}
	logical := baseCount
	for _, f := range ch.epochs[:len(ch.epochs)-1] {
		logical += f.countAdj(v, v+1)
	}
	logical += CountRange(open.ins, v, v+1) - CountRange(open.del, v, v+1)
	if logical <= 0 {
		return 0, false, true
	}
	open.del = InsertSorted(open.del, v)
	return open.id, true, true
}

// CountAdj returns the chain's net count adjustment for [lo, hi)
// across every visible epoch, and the number of epochs consulted.
func (ch *Chain) CountAdj(lo, hi int64) (adj int64, epochs int) {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	for _, f := range ch.epochs {
		adj += f.countAdj(lo, hi)
	}
	return adj, len(ch.epochs)
}

// SumAdj returns the chain's net sum adjustment for [lo, hi) across
// every visible epoch, and the number of epochs consulted.
func (ch *Chain) SumAdj(lo, hi int64) (adj int64, epochs int) {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	for _, f := range ch.epochs {
		adj += f.sumAdj(lo, hi)
	}
	return adj, len(ch.epochs)
}

// Pending returns the total pending insert and delete counts across
// every epoch in the chain.
func (ch *Chain) Pending() (ins, del int) {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	for _, f := range ch.epochs {
		st := f.stat()
		ins += st.Ins
		del += st.Del
	}
	return ins, del
}

// Stats returns a per-epoch snapshot in chain order.
func (ch *Chain) Stats() []Stat {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	out := make([]Stat, len(ch.epochs))
	for i, f := range ch.epochs {
		out[i] = f.stat()
	}
	return out
}

// Len returns the number of epoch files in the chain.
func (ch *Chain) Len() int {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	return len(ch.epochs)
}

// OpenID returns the open epoch's id.
func (ch *Chain) OpenID() int64 {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	f := ch.epochs[len(ch.epochs)-1]
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.id
}

// Seal seals the open epoch and opens a fresh successor, so writers
// roll over without ever parking. Reports false (and seals nothing)
// when the open epoch is empty.
func (ch *Chain) Seal() (Sealed, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	f := ch.epochs[len(ch.epochs)-1]
	f.mu.Lock()
	if len(f.ins) == 0 && len(f.del) == 0 {
		f.mu.Unlock()
		return Sealed{}, false
	}
	f.sealed = true
	info := Sealed{ID: f.id, Ins: len(f.ins), Del: len(f.del)}
	f.mu.Unlock()
	ch.epochs = append(ch.epochs, newFile(ch.next()))
	return info, true
}

// Roll is the checkpoint cut: after Roll, every record already written
// lives in a sealed epoch and every future write lands in an epoch
// with a later id. A non-empty open epoch is sealed (as Seal); an
// empty one is simply renumbered past the cut, avoiding empty-file
// churn on idle shards.
func (ch *Chain) Roll() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	f := ch.epochs[len(ch.epochs)-1]
	f.mu.Lock()
	if len(f.ins) == 0 && len(f.del) == 0 {
		f.id = ch.next()
		f.mu.Unlock()
		return
	}
	f.sealed = true
	f.mu.Unlock()
	ch.epochs = append(ch.epochs, newFile(ch.next()))
}

// Close seals the open epoch WITHOUT opening a successor: the full
// stop used under a part seal (split, merge, parked apply), cutting
// off writers that still hold a stale pre-fork part. Callers must
// eventually Reopen the chain or discard it for a fresh one.
func (ch *Chain) Close() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	f := ch.epochs[len(ch.epochs)-1]
	f.mu.Lock()
	f.sealed = true
	f.mu.Unlock()
}

// Reopen appends a fresh open epoch after Close (a structural
// operation that found nothing to do).
func (ch *Chain) Reopen() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.epochs = append(ch.epochs, newFile(ch.next()))
}

// SealedSnapshot returns the merged contents of every sealed epoch —
// the group-apply input — together with the highest sealed id (the
// watermark the successor part's base will incorporate) and the number
// of sealed epochs. The snapshot is stable: sealed epochs are
// immutable.
func (ch *Chain) SealedSnapshot() (ins, del []int64, watermark int64, epochs int) {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	for _, f := range ch.epochs {
		st := f.stat()
		if !st.Sealed {
			continue
		}
		f.mu.RLock()
		ins = append(ins, f.ins...)
		del = append(del, f.del...)
		f.mu.RUnlock()
		if st.ID > watermark {
			watermark = st.ID
		}
		epochs++
	}
	return ins, del, watermark, epochs
}

// Collect returns the merged contents of every epoch with id <=
// maxEpoch — the materialization input for snapshot-consistent reads
// (ValuesAt). Epochs past the watermark are excluded even if sealed.
func (ch *Chain) Collect(maxEpoch int64) (ins, del []int64) {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	for _, f := range ch.epochs {
		f.mu.RLock()
		if f.id <= maxEpoch {
			ins = append(ins, f.ins...)
			del = append(del, f.del...)
		}
		f.mu.RUnlock()
	}
	return ins, del
}

// Fork returns the successor chain published with a group-applied
// part: the epochs with id > after (whose contents the new base does
// NOT yet incorporate), sharing the lineage latch and the file
// pointers — above all the open epoch, so writers holding the old part
// keep appending to the same file. The fresh chain gets a new open
// epoch if everything was applied.
func (ch *Chain) Fork(after int64) *Chain {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	nc := &Chain{mu: ch.mu, next: ch.next}
	for _, f := range ch.epochs {
		if f.id > after {
			nc.epochs = append(nc.epochs, f)
		}
	}
	if n := len(nc.epochs); n == 0 || nc.epochs[n-1].stat().Sealed {
		nc.epochs = append(nc.epochs, newFile(ch.next()))
	}
	return nc
}

// InsertSorted inserts v into the sorted slice s, returning the
// (possibly reallocated) slice. Shared sorted-multiset primitive of
// every differential file (epoch files here, the per-index pending
// file in internal/crackindex).
func InsertSorted(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// CountRange counts values in [lo, hi) of a sorted slice.
func CountRange(s []int64, lo, hi int64) int64 {
	a := sort.Search(len(s), func(i int) bool { return s[i] >= lo })
	b := sort.Search(len(s), func(i int) bool { return s[i] >= hi })
	return int64(b - a)
}

// SumRange sums values in [lo, hi) of a sorted slice: two binary
// searches bound the qualifying run, the unrolled kernel sums it
// without materializing anything intermediate.
func SumRange(s []int64, lo, hi int64) int64 {
	a := sort.Search(len(s), func(i int) bool { return s[i] >= lo })
	b := sort.Search(len(s), func(i int) bool { return s[i] >= hi })
	return kernel.Sum(s[a:b])
}
