// Package txn provides the transaction layer that separates *user
// transactions* from the *system transactions* adaptive indexing uses
// for its index refinements (paper §3).
//
// The key properties implemented here, from §3 and §3.4:
//
//   - User transactions acquire transactional locks through the lock
//     manager and hold them to end-of-transaction (commit/abort
//     releases all).
//   - System transactions perform purely structural changes. They are
//     "many small transactions with low overheads for invocation and
//     commit processing": they never acquire locks, they only verify
//     that no conflicting user locks exist, and they commit instantly.
//   - Index refinement achieved by a system transaction is NOT undone
//     when the enclosing user transaction rolls back, even if both ran
//     in the same execution thread: structure is independent of
//     contents.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"adaptix/internal/lockmgr"
)

// Kind distinguishes user from system transactions.
type Kind int

const (
	// User transactions protect logical database contents with locks.
	User Kind = iota
	// System transactions protect physical structures with latches
	// only; they verify user locks but never acquire any.
	System
)

// String returns the kind's display name.
func (k Kind) String() string {
	if k == System {
		return "system"
	}
	return "user"
}

// State is the transaction lifecycle state.
type State int

const (
	// Active transactions may lock and log.
	Active State = iota
	// Committed is terminal.
	Committed
	// Aborted is terminal.
	Aborted
)

// String returns the state's display name.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	default:
		return "aborted"
	}
}

// ErrNotActive is returned for operations on finished transactions.
var ErrNotActive = errors.New("txn: transaction not active")

// Txn is one transaction.
type Txn struct {
	id   lockmgr.TxnID
	kind Kind

	mu    sync.Mutex
	state State

	mgr *Manager
}

// ID returns the transaction id.
func (t *Txn) ID() lockmgr.TxnID { return t.id }

// Kind returns user or system.
func (t *Txn) Kind() Kind { return t.kind }

// State returns the current lifecycle state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Lock acquires a transactional lock. System transactions must not
// lock (they rely on latches only); doing so is a programming error.
func (t *Txn) Lock(res string, mode lockmgr.Mode) error {
	if t.kind == System {
		return errors.New("txn: system transactions must not acquire locks")
	}
	if t.State() != Active {
		return ErrNotActive
	}
	return t.mgr.locks.Lock(t.id, res, mode)
}

// LockHierarchy acquires intention locks along the containment path
// and the leaf mode on the final element (hierarchical locking, §3.2).
func (t *Txn) LockHierarchy(path []string, leaf lockmgr.Mode) error {
	if t.kind == System {
		return errors.New("txn: system transactions must not acquire locks")
	}
	if t.State() != Active {
		return ErrNotActive
	}
	return t.mgr.locks.LockHierarchy(t.id, path, leaf)
}

// Savepoint records the current lock-acquisition point; RollbackTo
// releases every lock acquired after it (partial rollback, one of the
// deadlock-resolution mechanisms of the paper's Table 1).
func (t *Txn) Savepoint() (int, error) {
	if t.kind == System {
		return 0, errors.New("txn: system transactions hold no locks to save")
	}
	if t.State() != Active {
		return 0, ErrNotActive
	}
	return t.mgr.locks.Savepoint(t.id), nil
}

// RollbackTo performs a partial rollback to a previous Savepoint,
// releasing the locks acquired since. The transaction remains active.
// Any index refinement that happened meanwhile is kept: it changed
// structure, not contents (§3).
func (t *Txn) RollbackTo(savepoint int) error {
	if t.kind == System {
		return errors.New("txn: system transactions hold no locks to roll back")
	}
	if t.State() != Active {
		return ErrNotActive
	}
	t.mgr.locks.ReleaseAfter(t.id, savepoint)
	return nil
}

// Commit finishes the transaction, releasing all its locks.
func (t *Txn) Commit() error { return t.finish(Committed) }

// Abort rolls the transaction back, releasing all its locks. Index
// refinements done by system transactions on its behalf are kept:
// they changed structure, not contents, so there is nothing to undo.
func (t *Txn) Abort() error { return t.finish(Aborted) }

func (t *Txn) finish(to State) error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return ErrNotActive
	}
	t.state = to
	t.mu.Unlock()
	t.mgr.locks.ReleaseAll(t.id)
	t.mgr.finished.Add(1)
	return nil
}

// Manager creates transactions and owns the lock manager.
type Manager struct {
	locks    *lockmgr.Manager
	nextID   atomic.Uint64
	started  atomic.Int64
	finished atomic.Int64
}

// NewManager returns a transaction manager with a fresh lock manager.
func NewManager() *Manager {
	return &Manager{locks: lockmgr.New()}
}

// Locks exposes the lock manager (for the refinement probe and tests).
func (m *Manager) Locks() *lockmgr.Manager { return m.locks }

// Begin starts a transaction of the given kind.
func (m *Manager) Begin(kind Kind) *Txn {
	m.started.Add(1)
	return &Txn{id: lockmgr.TxnID(m.nextID.Add(1)), kind: kind, mgr: m}
}

// RunSystem executes fn as a system transaction: begin, run, instant
// commit. If fn panics the transaction aborts and the panic resumes.
// This models the paper's "many small [system] transactions with low
// overheads for invocation and commit processing" (§3.4): there is no
// lock acquisition and no content logging on this path.
func (m *Manager) RunSystem(fn func(st *Txn) error) error {
	st := m.Begin(System)
	defer func() {
		if r := recover(); r != nil {
			_ = st.Abort()
			panic(r)
		}
	}()
	if err := fn(st); err != nil {
		_ = st.Abort()
		return err
	}
	return st.Commit()
}

// RefinementProbe returns a closure suitable for
// crackindex.Options.LockProbe: it reports whether any user
// transaction currently holds a lock on resource res that conflicts
// with the exclusive access a structural refinement needs. System
// transactions consult it and skip refinement on conflict instead of
// blocking on locks (§3.3).
func (m *Manager) RefinementProbe(res string) func() bool {
	return func() bool {
		return m.locks.HasConflicting(res, lockmgr.X, 0)
	}
}

// Counts returns (started, finished) transaction counters.
func (m *Manager) Counts() (started, finished int64) {
	return m.started.Load(), m.finished.Load()
}

// String renders a short description of the transaction.
func (t *Txn) String() string {
	return fmt.Sprintf("txn{id=%d kind=%s state=%s}", t.id, t.kind, t.State())
}
