module adaptix

go 1.24
