package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestServeBatchingShapes(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	eventually(t, 3, func() error {
		buf.Reset()
		rep := ServeBatching(cfg, &buf)
		if rep.Clients != 16 {
			t.Fatalf("sweep point = %d clients, want 16", rep.Clients)
		}
		// The small-scale shape bar: batching must win (the acceptance
		// run at full scale demands >= 1.5x; at test scale we assert a
		// strict win so CPU-starved CI runners don't flake).
		if rep.Speedup <= 1.0 {
			return fmt.Errorf("batched %.0f qps not faster than unbatched %.0f qps",
				rep.QPSBatched, rep.QPSUnbatched)
		}
		// Exact-duplicate bounds must actually coalesce.
		if rep.CoalesceRate <= 0 {
			return fmt.Errorf("coalesce rate %.3f, want > 0", rep.CoalesceRate)
		}
		// Multi-request batches must form.
		if rep.BatchP99 < 2 {
			return fmt.Errorf("batch p99 %d, want >= 2", rep.BatchP99)
		}
		// Fast reject: over-budget answers must never queue behind the
		// 500ms probe window (acceptance: < 1ms).
		if rep.RejectP99 >= time.Millisecond {
			return fmt.Errorf("reject p99 %v, want < 1ms", rep.RejectP99)
		}
		return nil
	})
	if !strings.Contains(buf.String(), "Serving front") {
		t.Fatal("report text missing")
	}
}
