package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"adaptix/internal/metrics"
)

// promSample is one parsed exposition line: name, optional labels,
// integer value.
type promSample struct {
	name   string
	labels map[string]string
	value  int64
}

// parseProm is a minimal Prometheus text-format parser: enough to
// assert our own exposition is well-formed. It checks that every
// non-comment line is `name[{labels}] value`, that every sample is
// preceded by a TYPE for its family, and returns the samples.
func parseProm(t *testing.T, body string) []promSample {
	t.Helper()
	typed := map[string]string{} // family -> type
	var out []promSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or other comment
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		metric := line[:sp]
		s := promSample{labels: map[string]string{}, value: v}
		if br := strings.IndexByte(metric, '{'); br >= 0 {
			if !strings.HasSuffix(metric, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
			s.name = metric[:br]
			for _, pair := range strings.Split(metric[br+1:len(metric)-1], ",") {
				k, val, ok := strings.Cut(pair, "=")
				if !ok || !strings.HasPrefix(val, `"`) || !strings.HasSuffix(val, `"`) {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				s.labels[k] = val[1 : len(val)-1]
			}
		} else {
			s.name = metric
		}
		family := s.name
		for _, suf := range []string{"_sum", "_count"} {
			base := strings.TrimSuffix(family, suf)
			if base != family && typed[base] == "summary" {
				family = base
			}
		}
		if typed[family] == "" {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, s.name)
		}
		out = append(out, s)
	}
	return out
}

func newTestHandler(t *testing.T) (*metrics.Observer, *Handler) {
	t.Helper()
	ob := metrics.NewObserver(metrics.ObserverOptions{})
	ob.EnableTracing(true)
	return ob, NewHandler(ob, func() any {
		return map[string]any{"rows": 42}
	}, func() (any, bool) {
		return map[string]any{"status": "ok"}, true
	}, func() any {
		return map[string]any{"reads": 7}
	})
}

func get(t *testing.T, h *Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func TestMetricsExpositionParses(t *testing.T) {
	ob, h := newTestHandler(t)
	// Put traffic through every instrument family.
	for i := 0; i < 100; i++ {
		st := ob.QueryStart()
		ob.RecordQuery(st, time.Microsecond, 2*time.Microsecond, 3*time.Microsecond)
	}
	ob.RecordLatchWait(5*time.Millisecond, true)
	ob.RecordWrite(ob.WriteStart())
	ob.RecordWriterPark(1, 2*time.Millisecond)
	ob.RecordStructural(metrics.EvSeal, 0, time.Millisecond, 10)
	ob.RecordFsync(time.Millisecond)
	ob.RecordCommitBatch(7)

	w := get(t, h, "/metrics")
	if w.Code != 200 {
		t.Fatalf("/metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples := parseProm(t, w.Body.String())

	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	if got := byName["adaptix_queries_total"]; len(got) != 1 || got[0].value != 100 {
		t.Fatalf("adaptix_queries_total = %+v, want one sample of 100", got)
	}
	if got := byName["adaptix_query_latency_ns_count"]; len(got) != 1 || got[0].value != 100 {
		t.Fatalf("adaptix_query_latency_ns_count = %+v, want 100", got)
	}
	// The summary must expose the three quantiles.
	qs := map[string]bool{}
	for _, s := range byName["adaptix_query_latency_ns"] {
		qs[s.labels["quantile"]] = true
	}
	for _, want := range []string{"0.5", "0.99", "0.999"} {
		if !qs[want] {
			t.Fatalf("adaptix_query_latency_ns missing quantile %q (have %v)", want, qs)
		}
	}
	if got := byName["adaptix_latch_stalls_total"]; len(got) != 1 || got[0].value != 1 {
		t.Fatalf("adaptix_latch_stalls_total = %+v, want 1", got)
	}
	if got := byName["adaptix_group_commit_batch_records_sum"]; len(got) != 1 || got[0].value != 7 {
		t.Fatalf("adaptix_group_commit_batch_records_sum = %+v, want 7", got)
	}
}

func TestVarsIsValidJSON(t *testing.T) {
	ob, h := newTestHandler(t)
	ob.RecordWrite(ob.WriteStart())
	w := get(t, h, "/debug/vars")
	if w.Code != 200 {
		t.Fatalf("/debug/vars status %d", w.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, w.Body.String())
	}
	var ours map[string]int64
	if err := json.Unmarshal(doc["adaptix"], &ours); err != nil {
		t.Fatalf("adaptix var is not a flat object: %v", err)
	}
	if ours["adaptix_writes_total"] != 1 {
		t.Fatalf("adaptix_writes_total = %d, want 1", ours["adaptix_writes_total"])
	}
	// The standard process-wide vars must still be present.
	if _, ok := doc["memstats"]; !ok {
		t.Fatal("expvar output lost the standard memstats var")
	}
}

func TestFlightAndSnapshotRoutes(t *testing.T) {
	ob, h := newTestHandler(t)
	ob.SetStallThreshold(time.Microsecond)
	ob.RecordWriterPark(3, time.Millisecond)

	w := get(t, h, "/flight")
	if w.Code != 200 {
		t.Fatalf("/flight status %d", w.Code)
	}
	var evs []metrics.Event
	if err := json.Unmarshal(w.Body.Bytes(), &evs); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if len(evs) != 1 || evs[0].KindName != "writer-stall" || evs[0].Shard != 3 {
		t.Fatalf("flight dump = %+v, want one writer-stall on shard 3", evs)
	}

	w = get(t, h, "/snapshot")
	if w.Code != 200 {
		t.Fatalf("/snapshot status %d", w.Code)
	}
	var snap map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap["rows"] != float64(42) {
		t.Fatalf("snapshot rows = %v, want 42", snap["rows"])
	}
}

func TestHealthRoute(t *testing.T) {
	// Healthy: 200 with the report body.
	_, h := newTestHandler(t)
	w := get(t, h, "/health")
	if w.Code != 200 {
		t.Fatalf("/health status %d, want 200", w.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("health report is not valid JSON: %v", err)
	}
	if doc["status"] != "ok" {
		t.Fatalf("health status = %v, want ok", doc["status"])
	}

	// Degraded: same body shape, readiness code 503.
	ob := metrics.NewObserver(metrics.ObserverOptions{})
	bad := NewHandler(ob, nil, func() (any, bool) {
		return map[string]any{"status": "degraded"}, false
	}, nil)
	if w := get(t, bad, "/health"); w.Code != 503 {
		t.Fatalf("degraded /health status %d, want 503", w.Code)
	}

	// No health source configured: 404.
	none := NewHandler(ob, nil, nil, nil)
	if w := get(t, none, "/health"); w.Code != 404 {
		t.Fatalf("nil-health /health status %d, want 404", w.Code)
	}
}

func TestWorkloadRoute(t *testing.T) {
	_, h := newTestHandler(t)
	w := get(t, h, "/workload")
	if w.Code != 200 {
		t.Fatalf("/workload status %d, want 200", w.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("workload signature is not valid JSON: %v", err)
	}
	if doc["reads"] != float64(7) {
		t.Fatalf("workload reads = %v, want 7", doc["reads"])
	}

	// No workload source configured: 404.
	ob := metrics.NewObserver(metrics.ObserverOptions{})
	none := NewHandler(ob, nil, nil, nil)
	if w := get(t, none, "/workload"); w.Code != 404 {
		t.Fatalf("nil-workload /workload status %d, want 404", w.Code)
	}
}

func TestPprofMounted(t *testing.T) {
	_, h := newTestHandler(t)
	w := get(t, h, "/debug/pprof/")
	if w.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatal("pprof index page missing profile listing")
	}
}

func TestIndexPage(t *testing.T) {
	_, h := newTestHandler(t)
	w := get(t, h, "/")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "/metrics") {
		t.Fatalf("index page: status %d body %q", w.Code, w.Body.String())
	}
	if w := get(t, h, "/nosuch"); w.Code != 404 {
		t.Fatalf("unknown route status %d, want 404", w.Code)
	}
}
