// The durable file sink of the structural log.
//
// A FileSink stores the log as a sequence of segment files
// ("wal-00000001.seg", ...) in one directory. Each record written
// through the sink is framed as
//
//	[length uint32][crc32(payload) uint32][payload]
//
// (little-endian, CRC-32/IEEE), so a reader can detect both a torn
// tail — the process died mid-write — and silent corruption, and stop
// replay exactly at the last intact frame, the standard log-recovery
// contract (paper §4.2: losing the structural tail is always safe,
// because adaptive-index structure is re-creatable knowledge).
//
// Segments rotate once they exceed SegmentBytes, which keeps any one
// file small and — more importantly — gives checkpoint truncation a
// unit of reclamation: a checkpoint rotates first (MarkCheckpoint), so
// the checkpoint records open a fresh segment, and once the checkpoint
// has committed and synced, every earlier segment describes state the
// checkpoint supersedes and is deleted (ReleaseBefore).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptix/internal/metrics"
)

// frameHeaderSize is the per-record framing overhead: payload length
// plus CRC-32 of the payload.
const frameHeaderSize = 4 + 4

// maxFramePayload bounds a single frame; larger lengths are treated as
// corruption during reads.
const maxFramePayload = 1 << 24

// SinkOptions configures a FileSink.
type SinkOptions struct {
	// SegmentBytes is the rotation threshold: a record that would grow
	// the current segment beyond it opens a new segment first. Default
	// 1 MiB.
	SegmentBytes int64
	// NoSync disables fsync entirely (tests and benchmarks that
	// simulate crashes by truncating files themselves). Durability
	// guarantees obviously do not hold with NoSync set.
	NoSync bool
	// Obs, when non-nil, receives the latency of every explicit Sync —
	// the fsync-on-commit and group-commit paths whose tail dominates
	// write latency (rotation- and close-time syncs are not separately
	// timed) — and the WAL-growth gauges: every framed record adds its
	// on-disk bytes to the since-last-checkpoint counters the watchdog's
	// wal-since-checkpoint rule watches (the checkpoint writer resets
	// them).
	Obs *metrics.Observer
}

func (o SinkOptions) withDefaults() SinkOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	return o
}

// FileSink is a durable segment-file sink for a Log. It implements
// io.Writer (one Write call per encoded record — exactly how
// Log.Append uses its sink) and Syncer, so a Log configured with a
// FileSink fsyncs on every system-transaction commit. Safe for
// concurrent use.
type FileSink struct {
	dir  string
	opts SinkOptions

	mu     sync.Mutex
	f      *os.File
	seg    int   // index of the open segment
	size   int64 // bytes written to the open segment
	werr   bool  // a failed write left a partial frame in the segment
	closed bool
}

// Syncer is implemented by sinks that can flush buffered writes to
// stable storage. Log.Append calls Sync after writing a CommitSystem
// record when its sink implements it (fsync-on-commit).
type Syncer interface {
	Sync() error
}

// SegmentTruncator is implemented by sinks that support checkpoint
// truncation of the dead log prefix. The checkpoint writer
// (internal/ingest) calls MarkCheckpoint before logging checkpoint
// records and ReleaseBefore after they have committed and synced.
type SegmentTruncator interface {
	// MarkCheckpoint rotates to a fresh segment and returns its index;
	// records written afterwards — the checkpoint itself first — land
	// in that segment or later ones.
	MarkCheckpoint() (int, error)
	// ReleaseBefore deletes every segment with an index smaller than
	// seg. Safe to call only after the checkpoint in segment seg has
	// durably committed.
	ReleaseBefore(seg int) error
}

// NewFileSink opens a sink over dir, creating the directory if needed.
// Existing segments are never appended to (their tail may be torn from
// a previous crash); writing starts in a fresh segment after the
// highest existing index.
func NewFileSink(dir string, opts SinkOptions) (*FileSink, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: sink: %w", err)
	}
	segs, err := segmentIndexes(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	s := &FileSink{dir: dir, opts: opts}
	if err := s.openSegment(next); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the sink's directory.
func (s *FileSink) Dir() string { return s.dir }

// segmentName formats the file name of segment i.
func segmentName(i int) string { return fmt.Sprintf("wal-%08d.seg", i) }

// segmentIndexes lists the indexes of the segment files in dir, sorted
// ascending. A missing directory yields an empty list.
func segmentIndexes(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: sink: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var i int
		if _, err := fmt.Sscanf(name, "wal-%08d.seg", &i); err == nil {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out, nil
}

// openSegment creates segment i and makes it current, syncing the
// outgoing segment first: a transaction's records may straddle a
// rotation, and the commit's fsync only reaches the segment holding
// the commit — without this, an acknowledged commit could lose its
// earlier records to power failure. The directory is synced too so
// the new segment's existence is durable. Caller must hold s.mu (or
// be the constructor).
func (s *FileSink) openSegment(i int) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(i)),
		os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: sink: %w", err)
	}
	if s.f != nil {
		if !s.opts.NoSync {
			if err := s.f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("wal: sink: %w", err)
			}
		}
		if err := s.f.Close(); err != nil {
			f.Close()
			return fmt.Errorf("wal: sink: %w", err)
		}
	}
	s.f, s.seg, s.size, s.werr = f, i, 0, false
	if !s.opts.NoSync {
		s.syncDir()
	}
	return nil
}

// syncDir fsyncs the sink directory (segment creation and removal are
// metadata operations; best-effort).
func (s *FileSink) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Write frames one encoded record and appends it to the current
// segment, rotating first when the segment is full — or when an
// earlier write failed partway: the garbage frame it left would hide
// everything appended after it in that segment (deframe stops at the
// first damaged frame), so the segment is abandoned and the next
// record starts a fresh one. Implements io.Writer for Log.
func (s *FileSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("wal: sink: closed")
	}
	frame := int64(frameHeaderSize + len(p))
	if s.werr || (s.size > 0 && s.size+frame > s.opts.SegmentBytes) {
		if err := s.openSegment(s.seg + 1); err != nil {
			return 0, err
		}
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(p)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(p))
	if _, err := s.f.Write(hdr[:]); err != nil {
		s.werr = true
		return 0, fmt.Errorf("wal: sink: %w", err)
	}
	if _, err := s.f.Write(p); err != nil {
		s.werr = true
		return 0, fmt.Errorf("wal: sink: %w", err)
	}
	s.size += frame
	s.opts.Obs.AddWALSince(frame, 1)
	return len(p), nil
}

// Sync flushes the current segment to stable storage (a no-op under
// NoSync).
func (s *FileSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.NoSync {
		return nil
	}
	t0 := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("wal: sink: %w", err)
	}
	s.opts.Obs.RecordFsync(time.Since(t0))
	return nil
}

// MarkCheckpoint rotates to a fresh segment and returns its index (see
// SegmentTruncator).
func (s *FileSink) MarkCheckpoint() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("wal: sink: closed")
	}
	if s.size == 0 && !s.werr {
		return s.seg, nil
	}
	if err := s.openSegment(s.seg + 1); err != nil {
		return 0, err
	}
	return s.seg, nil
}

// ReleaseBefore deletes every segment with an index smaller than seg
// (see SegmentTruncator).
func (s *FileSink) ReleaseBefore(seg int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := segmentIndexes(s.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, i := range segs {
		if i >= seg || i == s.seg {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, segmentName(i))); err != nil {
			return fmt.Errorf("wal: sink: %w", err)
		}
		removed = true
	}
	if removed && !s.opts.NoSync {
		s.syncDir()
	}
	return nil
}

// Segments returns the indexes of the segment files currently on disk,
// ascending.
func (s *FileSink) Segments() ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return segmentIndexes(s.dir)
}

// Close syncs and closes the current segment. Further writes fail.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return fmt.Errorf("wal: sink: %w", err)
		}
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("wal: sink: %w", err)
	}
	return nil
}

// ReadDir reads the framed segments in dir in index order and returns
// the concatenated record payloads — the raw image Recover and Replay
// consume. A torn or corrupt frame in the NEWEST segment is the normal
// crashed tail and ends the image there. Damage in an older segment —
// a torn pre-crash tail whose segment outlived a failed truncation, or
// bit rot — drops only the rest of that segment: reading resumes at
// the next segment boundary, where frames re-align. That is safe for
// Recover because records of a transaction are contiguous within one
// process incarnation, later incarnations restart the LSN sequence
// (Recover discards transactions left open across an LSN
// discontinuity), and a committed checkpoint supersedes everything
// before it. A missing or empty directory yields nil.
func ReadDir(dir string) ([]byte, error) {
	segs, err := segmentIndexes(dir)
	if err != nil {
		return nil, err
	}
	var out []byte
	for k, i := range segs {
		raw, err := os.ReadFile(filepath.Join(dir, segmentName(i)))
		if err != nil {
			return nil, fmt.Errorf("wal: sink: %w", err)
		}
		payloads, intact := deframe(raw)
		out = append(out, payloads...)
		if !intact && k == len(segs)-1 {
			break // crashed tail of the newest segment
		}
	}
	return out, nil
}

// deframe extracts the payloads of the intact frames at the front of
// raw, reporting whether the whole buffer was consumed cleanly.
func deframe(raw []byte) (payloads []byte, intact bool) {
	for len(raw) > 0 {
		if len(raw) < frameHeaderSize {
			return payloads, false
		}
		n := binary.LittleEndian.Uint32(raw[0:])
		sum := binary.LittleEndian.Uint32(raw[4:])
		if n > maxFramePayload || len(raw) < frameHeaderSize+int(n) {
			return payloads, false
		}
		payload := raw[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, false
		}
		payloads = append(payloads, payload...)
		raw = raw[frameHeaderSize+int(n):]
	}
	return payloads, true
}

// Interface checks.
var (
	_ io.Writer        = (*FileSink)(nil)
	_ Syncer           = (*FileSink)(nil)
	_ SegmentTruncator = (*FileSink)(nil)
)
