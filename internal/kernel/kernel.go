// Package kernel provides the branch-free, chunked aggregation
// kernels of the query hot paths: count, sum, and min/max over dense
// int64 vectors, with half-open range predicates evaluated as 64-row
// bitmasks.
//
// The design follows the vectorized-scan idiom (see kelindar/column
// and "Main Memory Adaptive Indexing for Multi-core Systems"): data is
// processed in ChunkSize-row chunks; a predicate over a chunk is
// materialized as one uint64 mask whose bit j reports whether row j
// qualifies; aggregation consumes the mask without branching (popcount
// for counts, masked adds for sums). Range checks are written as bool
// comparisons — never as sign-bit arithmetic on differences — so the
// kernels are exact over the full int64 domain, including predicates
// at MaxInt64-1 and columns containing MinInt64/MaxInt64.
//
// Everything here is allocation-free and synchronization-free: callers
// own the slices and any latching. The package is a leaf (imports only
// the standard library) so every layer — cracker array, baselines,
// epoch chains, shard aggregates — can use it without import cycles.
package kernel

import "math"

// ChunkSize is the number of rows processed per predicate mask: one
// uint64 bit per row.
const ChunkSize = 64

// b2u converts a bool to 0/1. The compiler lowers this pattern to a
// flag-materializing instruction (SETcc on amd64, CSET on arm64), so
// predicates built from it evaluate without a data-dependent branch.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Mask64 returns the predicate bitmask of one chunk: bit j is set iff
// lo <= v[j] < hi. len(v) must be at most ChunkSize; rows beyond the
// length have their bits clear. The comparisons are evaluated
// branch-free for every row — on unsorted data this trades the
// unpredictable per-row branch (the scalar scan's dominant cost) for
// two flag materializations and an or-shift.
func Mask64(v []int64, lo, hi int64) uint64 {
	var m uint64
	var j int
	for ; j+4 <= len(v); j += 4 {
		m |= (b2u(v[j] >= lo) & b2u(v[j] < hi)) << uint(j)
		m |= (b2u(v[j+1] >= lo) & b2u(v[j+1] < hi)) << uint(j+1)
		m |= (b2u(v[j+2] >= lo) & b2u(v[j+2] < hi)) << uint(j+2)
		m |= (b2u(v[j+3] >= lo) & b2u(v[j+3] < hi)) << uint(j+3)
	}
	for ; j < len(v); j++ {
		m |= (b2u(v[j] >= lo) & b2u(v[j] < hi)) << uint(j)
	}
	return m
}

// CountRange counts the values of v in [lo, hi). The predicate is
// fused into four independent accumulator lanes — c += bit — so the
// loop carries no data-dependent branch and no cross-lane dependency
// (a single materialized mask word would serialize all 64 rows of a
// chunk through one or-shift chain).
func CountRange(v []int64, lo, hi int64) int64 {
	var c0, c1, c2, c3 int64
	var j int
	for ; j+4 <= len(v); j += 4 {
		x0, x1, x2, x3 := v[j], v[j+1], v[j+2], v[j+3]
		c0 += int64(b2u(x0 >= lo) & b2u(x0 < hi))
		c1 += int64(b2u(x1 >= lo) & b2u(x1 < hi))
		c2 += int64(b2u(x2 >= lo) & b2u(x2 < hi))
		c3 += int64(b2u(x3 >= lo) & b2u(x3 < hi))
	}
	for ; j < len(v); j++ {
		x := v[j]
		c0 += int64(b2u(x >= lo) & b2u(x < hi))
	}
	return c0 + c1 + c2 + c3
}

// SumRange sums the values of v in [lo, hi) by masked accumulation —
// s += x & -bit — across four independent lanes, so a non-qualifying
// row contributes a zero instead of a mispredicted branch.
func SumRange(v []int64, lo, hi int64) int64 {
	var s0, s1, s2, s3 int64
	var j int
	for ; j+4 <= len(v); j += 4 {
		x0, x1, x2, x3 := v[j], v[j+1], v[j+2], v[j+3]
		s0 += x0 & -int64(b2u(x0 >= lo)&b2u(x0 < hi))
		s1 += x1 & -int64(b2u(x1 >= lo)&b2u(x1 < hi))
		s2 += x2 & -int64(b2u(x2 >= lo)&b2u(x2 < hi))
		s3 += x3 & -int64(b2u(x3 >= lo)&b2u(x3 < hi))
	}
	for ; j < len(v); j++ {
		x := v[j]
		s0 += x & -int64(b2u(x >= lo)&b2u(x < hi))
	}
	return s0 + s1 + s2 + s3
}

// Sum returns the unconditional sum of v, unrolled over four
// independent accumulators (the position-based aggregation of pieces
// and sorted runs whose bounds are already known).
func Sum(v []int64) int64 {
	var s0, s1, s2, s3 int64
	var j int
	for ; j+4 <= len(v); j += 4 {
		s0 += v[j]
		s1 += v[j+1]
		s2 += v[j+2]
		s3 += v[j+3]
	}
	for ; j < len(v); j++ {
		s0 += v[j]
	}
	return s0 + s1 + s2 + s3
}

// Min returns the minimum of v (MaxInt64 for an empty slice).
func Min(v []int64) int64 {
	mn, _, _ := MinMaxSum(v)
	return mn
}

// Max returns the maximum of v (MinInt64 for an empty slice).
func Max(v []int64) int64 {
	_, mx, _ := MinMaxSum(v)
	return mx
}

// MinMaxSum computes min, max, and sum of v in one pass (the shard
// aggregate rebuild kernel). An empty slice yields the identity
// elements (MaxInt64, MinInt64, 0). The two-lane unroll keeps the
// min/max updates as conditional moves on independent lanes.
func MinMaxSum(v []int64) (mn, mx, sum int64) {
	if len(v) == 0 {
		return math.MaxInt64, math.MinInt64, 0
	}
	mn0, mx0 := v[0], v[0]
	mn1, mx1 := v[0], v[0]
	var s0, s1 int64
	var j int
	for ; j+2 <= len(v); j += 2 {
		a, b := v[j], v[j+1]
		s0 += a
		s1 += b
		if a < mn0 {
			mn0 = a
		}
		if a > mx0 {
			mx0 = a
		}
		if b < mn1 {
			mn1 = b
		}
		if b > mx1 {
			mx1 = b
		}
	}
	if j < len(v) {
		a := v[j]
		s0 += a
		if a < mn0 {
			mn0 = a
		}
		if a > mx0 {
			mx0 = a
		}
	}
	if mn1 < mn0 {
		mn0 = mn1
	}
	if mx1 > mx0 {
		mx0 = mx1
	}
	return mn0, mx0, s0 + s1
}
