// Observer is the engine-facing recording surface: one per index,
// threaded by pointer into every layer (latch, crackindex, shard,
// ingest, wal, durable). Layers call its Record* methods; the
// exposition layer reads its Registry and Flight.
//
// Overhead contract, layer by layer:
//
//   - Every Record* method is nil-safe (a nil *Observer is a no-op),
//     so layers call unconditionally.
//   - The core histograms — query wait/crack/critical, write latency,
//     latch waits, structural durations, fsync, commit batch — are
//     ALWAYS recorded. Each costs two atomic adds on values the engine
//     has already computed; none introduces a clock read on a fast
//     path (latch waits are measured only on the slow path where the
//     goroutine actually blocked, structural work is milliseconds).
//   - The extra work — end-to-end query timing (an added time.Now
//     pair) and flight-recorder query spans — runs only when tracing
//     is enabled, and then only for 1 in SampleEvery queries.
//   - Stall events (latch wait or writer park over the threshold) are
//     always captured in the flight recorder: stalls are rare, and the
//     whole point of a flight recorder is that it was on when the
//     anomaly happened.
package metrics

import (
	"sync/atomic"
	"time"
)

// Default observer tuning.
const (
	// DefaultSampleEvery traces every query once tracing is enabled.
	DefaultSampleEvery = 1
	// DefaultStallThreshold flags latch waits and writer parks longer
	// than this as stall events.
	DefaultStallThreshold = time.Millisecond
	// DefaultFlightEvents is the flight-recorder ring capacity.
	DefaultFlightEvents = 4096
)

// ObserverOptions tunes an Observer. The zero value uses the defaults
// above.
type ObserverOptions struct {
	// SampleEvery traces 1 in N queries end to end when tracing is
	// enabled (default 1: every query). Higher values cut tracing
	// overhead proportionally.
	SampleEvery int
	// StallThreshold classifies latch waits and writer parks as stall
	// events (default 1ms).
	StallThreshold time.Duration
	// FlightEvents is the flight-recorder capacity (default 4096).
	FlightEvents int
}

// Observer aggregates one index's instruments. Create with
// NewObserver; a nil Observer is valid and records nothing.
type Observer struct {
	reg    *Registry
	flight *Flight

	tracing     atomic.Bool
	sampleEvery atomic.Int64
	stallNS     atomic.Int64
	qctr        atomic.Uint64 // sampling counter

	// Query path.
	queries       *Counter
	sampledSpans  *Counter
	queryLatency  *Histogram // end-to-end, tracing only
	queryWait     *Histogram // summed latch wait per query
	queryCrack    *Histogram // summed crack/refine per query
	queryCritical *Histogram // fan-out critical path per query

	// Latch layer.
	latchWait   *Histogram
	latchStalls *Counter

	// Write path.
	writes       *Counter
	writeLatency *Histogram
	writerPark   *Histogram
	writerStalls *Counter

	// Structural operations.
	sealDur       *Histogram
	applyDur      *Histogram
	splitDur      *Histogram
	mergeDur      *Histogram
	checkpointDur *Histogram

	// Durability.
	fsyncDur    *Histogram
	commitBatch *Histogram

	// Semantic layer: key-range heatmap, convergence telemetry, and
	// the depth gauges the health watchdog reads (see convergence.go).
	// The per-query accumulators are deliberately adjacent inline
	// atomics, not registry counters, so one query's recordings land
	// on one cache line; the registry reads them through CounterFunc.
	// rout and win are packed pair-accumulators drained every window
	// close into the cold cumulative fields below them.
	heat         atomic.Pointer[Heatmap]
	rout         atomic.Int64 // packed: shard visits <<32 | covered hits
	win          atomic.Int64 // packed: rows-touched sum <<16 | query count
	winDone      atomic.Int64 // completed ConvWindow-sized windows
	routVisits   atomic.Int64 // drained visit total (cold)
	routCovered  atomic.Int64 // drained covered total (cold)
	queryTouched *Histogram
	series       [ConvSeriesLen]atomic.Int64 // stored as mean+1; 0 = empty slot

	walSinceBytes   *Gauge
	walSinceRecords *Gauge
	chainLenMax     *Gauge
	sealedUnapplied *Gauge
	recoverCkptNS   *Gauge
	recoverScanNS   *Gauge
	recoverReplayNS *Gauge
}

// NewObserver builds an observer with its registry and flight
// recorder. Tracing starts disabled; enable with EnableTracing.
func NewObserver(o ObserverOptions) *Observer {
	if o.SampleEvery <= 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	if o.StallThreshold <= 0 {
		o.StallThreshold = DefaultStallThreshold
	}
	if o.FlightEvents <= 0 {
		o.FlightEvents = DefaultFlightEvents
	}
	reg := NewRegistry()
	ob := &Observer{
		reg:    reg,
		flight: NewFlight(o.FlightEvents),

		queries:       reg.Counter("adaptix_queries_total", "Range queries answered."),
		sampledSpans:  reg.Counter("adaptix_sampled_spans_total", "Query spans captured by the flight recorder."),
		queryLatency:  reg.Histogram("adaptix_query_latency_ns", "End-to-end query latency (tracing only)."),
		queryWait:     reg.Histogram("adaptix_query_wait_ns", "Per-query summed latch-wait time."),
		queryCrack:    reg.Histogram("adaptix_query_crack_ns", "Per-query summed crack/refine time."),
		queryCritical: reg.Histogram("adaptix_query_critical_ns", "Per-query fan-out critical path (slowest sub-query)."),

		latchWait:   reg.Histogram("adaptix_latch_wait_ns", "Blocked latch acquisitions, wait time."),
		latchStalls: reg.Counter("adaptix_latch_stalls_total", "Latch waits over the stall threshold."),

		writes:       reg.Counter("adaptix_writes_total", "Routed insert/delete operations."),
		writeLatency: reg.Histogram("adaptix_write_latency_ns", "Routed write latency (route + epoch append + log)."),
		writerPark:   reg.Histogram("adaptix_writer_park_ns", "Writer park time on sealed epochs."),
		writerStalls: reg.Counter("adaptix_writer_stalls_total", "Writer parks over the stall threshold."),

		sealDur:       reg.Histogram("adaptix_seal_ns", "Epoch seal duration."),
		applyDur:      reg.Histogram("adaptix_apply_ns", "Group-apply (seal merge + rebuild + publish) duration."),
		splitDur:      reg.Histogram("adaptix_split_ns", "Shard split duration."),
		mergeDur:      reg.Histogram("adaptix_merge_ns", "Shard merge duration."),
		checkpointDur: reg.Histogram("adaptix_checkpoint_ns", "Durable checkpoint duration."),

		fsyncDur:    reg.Histogram("adaptix_fsync_ns", "WAL fsync latency."),
		commitBatch: reg.Histogram("adaptix_group_commit_batch_records", "Logical records per group-commit fsync."),

		queryTouched: reg.Histogram("adaptix_query_touched_rows", "Rows physically touched (scanned or cracked) per query."),

		walSinceBytes:   reg.Gauge("adaptix_wal_bytes_since_checkpoint", "WAL bytes appended since the last checkpoint."),
		walSinceRecords: reg.Gauge("adaptix_wal_records_since_checkpoint", "WAL records appended since the last checkpoint."),
		chainLenMax:     reg.Gauge("adaptix_epoch_chain_len_max", "Longest per-shard epoch chain (open + sealed files)."),
		sealedUnapplied: reg.Gauge("adaptix_epoch_sealed_unapplied", "Sealed epoch files not yet group-applied, all shards."),
		recoverCkptNS:   reg.Gauge("adaptix_recovery_checkpoint_load_ns", "Recovery: checkpoint snapshot load time."),
		recoverScanNS:   reg.Gauge("adaptix_recovery_wal_scan_ns", "Recovery: WAL segment scan time."),
		recoverReplayNS: reg.Gauge("adaptix_recovery_crack_replay_ns", "Recovery: crack warm-replay + shard rebuild time."),
	}
	reg.CounterFunc("adaptix_shard_visits_total",
		"Per-query shard visits (covered + indexed).",
		func() int64 { v, _ := ob.Routing(); return v })
	reg.CounterFunc("adaptix_covered_shards_total",
		"Shard visits answered by the covered-aggregate fast path.",
		func() int64 { _, c := ob.Routing(); return c })
	ob.sampleEvery.Store(int64(o.SampleEvery))
	ob.stallNS.Store(int64(o.StallThreshold))
	return ob
}

// Registry returns the observer's instrument registry (nil-safe).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Flight returns the observer's flight recorder (nil-safe).
func (o *Observer) Flight() *Flight {
	if o == nil {
		return nil
	}
	return o.flight
}

// EnableTracing turns per-query end-to-end timing and sampled flight
// spans on or off. The core histograms record regardless.
func (o *Observer) EnableTracing(on bool) {
	if o == nil {
		return
	}
	o.tracing.Store(on)
}

// Tracing reports whether per-query tracing is enabled.
func (o *Observer) Tracing() bool { return o != nil && o.tracing.Load() }

// SetSampleEvery adjusts the tracing sample rate at runtime (n <= 0
// resets to every query).
func (o *Observer) SetSampleEvery(n int) {
	if o == nil {
		return
	}
	if n <= 0 {
		n = 1
	}
	o.sampleEvery.Store(int64(n))
}

// SetStallThreshold adjusts the stall classification threshold at
// runtime (d <= 0 resets to the default).
func (o *Observer) SetStallThreshold(d time.Duration) {
	if o == nil {
		return
	}
	if d <= 0 {
		d = DefaultStallThreshold
	}
	o.stallNS.Store(int64(d))
}

// StallThreshold returns the current stall threshold.
func (o *Observer) StallThreshold() time.Duration {
	if o == nil {
		return DefaultStallThreshold
	}
	return time.Duration(o.stallNS.Load())
}

// QueryStart opens a query span: zero when the observer is nil or
// tracing is off (the caller then skips the closing time.Since), the
// current time when this query is being traced.
func (o *Observer) QueryStart() time.Time {
	if o == nil || !o.tracing.Load() {
		return time.Time{}
	}
	n := o.qctr.Add(1)
	if every := uint64(o.sampleEvery.Load()); every > 1 && n%every != 0 {
		return time.Time{}
	}
	return time.Now()
}

// RecordQuery closes a query span. wait, crack, and critical are the
// per-query cost breakdown the engine already computed; start is
// QueryStart's return (zero when the query was not sampled, in which
// case only the core histograms record).
func (o *Observer) RecordQuery(start time.Time, wait, crack, critical time.Duration) {
	if o == nil {
		return
	}
	o.queries.Inc()
	o.queryWait.RecordDuration(wait)
	o.queryCrack.RecordDuration(crack)
	o.queryCritical.RecordDuration(critical)
	if start.IsZero() {
		return
	}
	total := time.Since(start)
	o.queryLatency.RecordDuration(total)
	o.sampledSpans.Inc()
	o.flight.Record(EvQuery, -1, total, int64(wait), int64(crack))
}

// RecordLatchWait records one blocked latch acquisition (called only
// from the latch slow path). Waits over the stall threshold also land
// in the flight recorder.
func (o *Observer) RecordLatchWait(d time.Duration, reader bool) {
	if o == nil {
		return
	}
	o.latchWait.RecordDuration(d)
	if int64(d) >= o.stallNS.Load() {
		o.latchStalls.Inc()
		var r int64
		if reader {
			r = 1
		}
		o.flight.Record(EvLatchStall, -1, d, r, 0)
	}
}

// WriteStart opens a write span (always timed: one clock read per
// routed write, amortized against epoch append + WAL work).
func (o *Observer) WriteStart() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// RecordWrite closes a write span opened by WriteStart.
func (o *Observer) RecordWrite(start time.Time) {
	if o == nil || start.IsZero() {
		return
	}
	o.writes.Inc()
	o.writeLatency.RecordDuration(time.Since(start))
}

// RecordWriterPark records time a writer spent parked on a sealed
// epoch. Parks over the stall threshold also land in the flight
// recorder.
func (o *Observer) RecordWriterPark(shard int32, d time.Duration) {
	if o == nil || d <= 0 {
		return
	}
	o.writerPark.RecordDuration(d)
	if int64(d) >= o.stallNS.Load() {
		o.writerStalls.Inc()
		o.flight.Record(EvWriterStall, shard, d, 0, 0)
	}
}

// RecordStructural records a structural operation's duration in the
// matching histogram and the flight recorder. rows carries the row
// count the operation touched (sealed or applied), 0 when not
// applicable.
func (o *Observer) RecordStructural(kind EventKind, shard int32, d time.Duration, rows int64) {
	if o == nil {
		return
	}
	switch kind {
	case EvSeal:
		o.sealDur.RecordDuration(d)
	case EvApply:
		o.applyDur.RecordDuration(d)
	case EvSplit:
		o.splitDur.RecordDuration(d)
	case EvMerge:
		o.mergeDur.RecordDuration(d)
	case EvCheckpoint:
		o.checkpointDur.RecordDuration(d)
	default:
		return
	}
	o.flight.Record(kind, shard, d, rows, 0)
}

// RecordFsync records one WAL fsync's latency.
func (o *Observer) RecordFsync(d time.Duration) {
	if o == nil {
		return
	}
	o.fsyncDur.RecordDuration(d)
}

// RecordCommitBatch records the number of logical records covered by
// one group-commit fsync.
func (o *Observer) RecordCommitBatch(n int64) {
	if o == nil {
		return
	}
	o.commitBatch.Record(n)
}

// ObsSummary is a point-in-time quantile readout of an observer's core
// histograms — the numbers adaptix.Stats surfaces (Figure 15's
// wait-vs-refine decomposition and the writer-stall tail as live
// quantiles instead of offline experiment output).
type ObsSummary struct {
	// Queries, Writes, and SampledSpans are lifetime counts.
	Queries, Writes, SampledSpans int64
	// LatchStalls and WriterStalls count waits over the stall threshold.
	LatchStalls, WriterStalls int64
	// QueryLatencyP50/P99/P999 is end-to-end query latency; populated
	// only while tracing is enabled (the core histograms below record
	// always).
	QueryLatencyP50, QueryLatencyP99, QueryLatencyP999 time.Duration
	// QueryWaitP99 and QueryCrackP99 split per-query cost into latch
	// wait vs index refinement (Figure 15's two components).
	QueryWaitP99, QueryCrackP99 time.Duration
	// CriticalPathP50/P99/P999 is the fan-out critical path: the
	// slowest sub-query per query.
	CriticalPathP50, CriticalPathP99, CriticalPathP999 time.Duration
	// LatchWaitP99 is the per-acquisition (not per-query) blocked-wait
	// quantile.
	LatchWaitP99 time.Duration
	// WriteLatencyP50/P99 is routed-write latency.
	WriteLatencyP50, WriteLatencyP99 time.Duration
	// WriterStallP50/P99/P999 is the writer-park tail: time writers
	// spent parked behind structural rebuilds.
	WriterStallP50, WriterStallP99, WriterStallP999 time.Duration
	// FsyncP99 is WAL fsync latency (durable stores only).
	FsyncP99 time.Duration
}

// Summary computes the quantile readout from the live histograms
// (nil-safe: a nil observer yields a zero summary).
func (o *Observer) Summary() ObsSummary {
	if o == nil {
		return ObsSummary{}
	}
	ql := o.queryLatency.Snapshot()
	qw := o.queryWait.Snapshot()
	qk := o.queryCrack.Snapshot()
	qc := o.queryCritical.Snapshot()
	lw := o.latchWait.Snapshot()
	wp := o.writerPark.Snapshot()
	wl := o.writeLatency.Snapshot()
	fs := o.fsyncDur.Snapshot()
	return ObsSummary{
		Queries:      o.queries.Load(),
		Writes:       o.writes.Load(),
		SampledSpans: o.sampledSpans.Load(),
		LatchStalls:  o.latchStalls.Load(),
		WriterStalls: o.writerStalls.Load(),

		QueryLatencyP50:  ql.QuantileDuration(0.50),
		QueryLatencyP99:  ql.QuantileDuration(0.99),
		QueryLatencyP999: ql.QuantileDuration(0.999),

		QueryWaitP99:  qw.QuantileDuration(0.99),
		QueryCrackP99: qk.QuantileDuration(0.99),

		CriticalPathP50:  qc.QuantileDuration(0.50),
		CriticalPathP99:  qc.QuantileDuration(0.99),
		CriticalPathP999: qc.QuantileDuration(0.999),

		LatchWaitP99: lw.QuantileDuration(0.99),

		WriteLatencyP50: wl.QuantileDuration(0.50),
		WriteLatencyP99: wl.QuantileDuration(0.99),

		WriterStallP50:  wp.QuantileDuration(0.50),
		WriterStallP99:  wp.QuantileDuration(0.99),
		WriterStallP999: wp.QuantileDuration(0.999),

		FsyncP99: fs.QuantileDuration(0.99),
	}
}
