package adaptix_test

import (
	"os"
	"testing"
)

// TestObsOverheadGuard is the CI overhead gate: an attached observer
// with tracing disabled (the default state of every Index) must cost
// at most 5% over running with no observer at all, on the
// steady-state query benchmark. Timing comparisons are inherently
// noisy, so the guard takes the minimum of several benchmark runs per
// variant (minimum, not mean: noise only ever adds time) and
// interleaves the variants round-robin rather than running each
// variant's repetitions back to back — frequency scaling and thermal
// drift then hit all variants alike instead of biasing whichever ran
// last. The gate is behind OBS_OVERHEAD_GUARD=1 so ordinary `go test`
// runs stay fast and deterministic.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GUARD") == "" {
		t.Skip("set OBS_OVERHEAD_GUARD=1 to run the observability overhead gate")
	}
	const runs = 5
	oneNs := func(f func(b *testing.B)) float64 {
		r := testing.Benchmark(f)
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	variants := []func(b *testing.B){
		BenchmarkObsOverhead_Off,
		BenchmarkObsOverhead_Disabled,
		BenchmarkObsOverhead_Enabled,
	}
	best := make([]float64, len(variants))
	for i := 0; i < runs; i++ {
		for j, f := range variants {
			ns := oneNs(f)
			if best[j] == 0 || ns < best[j] {
				best[j] = ns
			}
		}
	}
	off, disabled, enabled := best[0], best[1], best[2]
	delta := (disabled - off) / off
	t.Logf("off %.0f ns/op, disabled %.0f ns/op (%+.2f%%), enabled %.0f ns/op (%+.2f%%, informational)",
		off, disabled, 100*delta, enabled, 100*(enabled-off)/off)
	if delta > 0.05 {
		t.Fatalf("disabled-path observability overhead %.2f%% exceeds the 5%% budget", 100*delta)
	}
}
