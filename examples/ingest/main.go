// The concurrent write path: routed updates, group-applied
// differential merges, and online shard rebalancing.
//
// The paper's §4.2 argues adaptive indexes can absorb high update
// rates through differential files while system transactions do the
// structural work. This example makes that concrete on the sharded
// column: 8 writers pour a heavily skewed insert storm into one narrow
// value band while 4 readers keep querying — including a quiet range
// whose answer must never waver. The ingest coordinator group-applies
// each shard's differential file into its cracker array and splits the
// shard the storm lands in, all behind the readers' backs; at the end
// the structural WAL is replayed to rebuild the same shard map, the
// recovery story for boundary knowledge.
//
// Run: go run ./examples/ingest
package main

import (
	"fmt"
	"sync"
	"time"

	"adaptix"
	"adaptix/internal/wal"
)

func main() {
	const (
		n       = 1 << 20
		writers = 8
		readers = 4
		perW    = 40000
	)
	data := adaptix.NewUniqueDataset(n, 42)
	log := adaptix.NewStructuralLog()

	col := adaptix.NewShardedColumn(data.Values, adaptix.ShardOptions{
		Shards: 4, Seed: 5,
		Index: adaptix.CrackOptions{Latching: adaptix.LatchPiece},
	})
	ing := adaptix.NewIngestor(col, adaptix.IngestOptions{
		Name: "R.A", Log: log,
		ApplyThreshold: 4096, MinShardRows: 1 << 14, SplitFactor: 1.5,
	})
	ing.Start()

	fmt.Printf("== ingest: skewed insert storm, %d writers x %d inserts, %d readers, %d rows ==\n",
		writers, perW, readers, n)
	fmt.Printf("before: %d shards\n", col.NumShards())

	// The quiet range is never written: its sum is an invariant the
	// readers assert on every pass, even mid-rebalance.
	qlo, qhi := int64(n/2), int64(n/2+4096)
	wantSum, _ := col.Sum(qlo, qhi)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	violations := 0
	var mu sync.Mutex
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s, _ := col.Sum(qlo, qhi); s != wantSum {
					mu.Lock()
					violations++
					mu.Unlock()
				}
			}
		}()
	}

	start := time.Now()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perW; i++ {
				// Everything lands in [0, 1024): one shard takes it all.
				_ = ing.Insert(int64((w*perW + i) % 1024))
			}
		}(w)
	}
	ww.Wait()
	storm := time.Since(start)
	close(stop)
	wg.Wait()
	ing.Close()

	st := ing.Stats()
	fmt.Printf("storm:  %v for %d inserts (%0.f ins/s)\n",
		storm.Round(time.Millisecond), writers*perW, float64(writers*perW)/storm.Seconds())
	fmt.Printf("after:  %d shards | %d group applies, %d splits, %d merges | reader violations: %d\n",
		col.NumShards(), st.Applied, st.Splits, st.Merges, violations)
	for _, s := range col.Snapshot() {
		fmt.Printf("  shard %d: [%d, %d) rows=%-8d pieces=%-5d pending=%d\n",
			s.Shard, s.LoVal, s.HiVal, s.Rows, s.Pieces, s.PendingInserts+s.PendingDeletes)
	}

	// Recovery: replay the structural WAL and rebuild the shard map.
	var raw []byte
	for _, r := range log.Records() {
		raw = append(raw, wal.Encode(r)...)
	}
	cat, err := wal.Recover(raw)
	if err != nil {
		panic(err)
	}
	rebuilt := adaptix.NewShardedColumnWithBounds(data.Values, cat.ShardBounds["R.A"],
		adaptix.ShardOptions{Index: adaptix.CrackOptions{Latching: adaptix.LatchPiece}})
	fmt.Printf("recovery: %d WAL records -> %d cuts -> rebuilt column with %d shards (live: %d)\n",
		log.Len(), len(cat.ShardBounds["R.A"]), rebuilt.NumShards(), col.NumShards())
}
