// Command benchgate is the CI perf-trajectory gate: it compares a
// fresh cmd/benchjson run against the committed baseline and fails
// (exit 1) when any workload cell's throughput regressed by more than
// the tolerance.
//
// Usage:
//
//	benchgate [-baseline BENCH_baseline.json] [-current BENCH_results.json] [-tolerance 0.15]
//
// Cells are matched by name. A cell present only in the current run is
// reported and ignored (new cells need a baseline refresh, not a
// failure); a baseline cell missing from the current run fails — a
// silently dropped cell is how coverage rots. Regenerate the baseline
// with `go run ./cmd/benchjson -out BENCH_baseline.json` on the
// reference hardware and commit it alongside the change that moved the
// numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// cell mirrors the benchjson output fields the gate reads; unknown
// fields are ignored so the gate survives benchjson growing columns.
type cell struct {
	Name string  `json:"name"`
	QPS  float64 `json:"qps"`
}

type doc struct {
	Rows  int    `json:"rows"`
	When  string `json:"when"`
	Cells []cell `json:"cells"`
}

func load(path string) (doc, error) {
	var d doc
	raw, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	return d, json.Unmarshal(raw, &d)
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed reference run")
	current := flag.String("current", "BENCH_results.json", "fresh benchjson output")
	tolerance := flag.Float64("tolerance", 0.15, "max allowed fractional qps regression per cell")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(1)
	}
	if base.Rows != cur.Rows {
		fmt.Fprintf(os.Stderr, "benchgate: row counts differ (baseline %d, current %d): not comparable\n",
			base.Rows, cur.Rows)
		os.Exit(1)
	}

	curBy := map[string]cell{}
	for _, c := range cur.Cells {
		curBy[c.Name] = c
	}
	fmt.Printf("benchgate: baseline %s vs current %s, tolerance %.0f%%\n",
		base.When, cur.When, 100**tolerance)
	fail := false
	for _, b := range base.Cells {
		c, ok := curBy[b.Name]
		delete(curBy, b.Name)
		if !ok {
			fmt.Printf("  FAIL %-22s missing from current run\n", b.Name)
			fail = true
			continue
		}
		if b.QPS <= 0 {
			fmt.Printf("  skip %-22s baseline qps %.0f unusable\n", b.Name, b.QPS)
			continue
		}
		delta := c.QPS/b.QPS - 1
		verdict := "ok  "
		if delta < -*tolerance {
			verdict = "FAIL"
			fail = true
		}
		fmt.Printf("  %s %-22s %10.0f -> %10.0f q/s  (%+.1f%%)\n",
			verdict, b.Name, b.QPS, c.QPS, 100*delta)
	}
	for name := range curBy {
		fmt.Printf("  note %-22s new cell, no baseline (refresh BENCH_baseline.json)\n", name)
	}
	if fail {
		fmt.Fprintln(os.Stderr, "benchgate: throughput regressed past tolerance")
		os.Exit(1)
	}
	fmt.Println("benchgate: all cells within tolerance")
}
