package engine

import "adaptix/internal/crackindex"

// AggregateSource is the cost-reporting query surface shared by the
// cracked column (crackindex.Index) and the sharded column
// (shard.Column): Count/Sum with a merged per-operation cost
// breakdown. Declared as an interface here so the engine package does
// not depend on the shard package (which sits above crackindex).
type AggregateSource interface {
	// Count evaluates Q1: select count(*) where lo <= A < hi.
	Count(lo, hi int64) (int64, crackindex.OpStats)
	// Sum evaluates Q2: select sum(A) where lo <= A < hi.
	Sum(lo, hi int64) (int64, crackindex.OpStats)
}

// adapter implements Engine over any AggregateSource; Crack and
// Sharded share it.
type adapter struct {
	src  AggregateSource
	name string
}

// Name implements Engine.
func (a *adapter) Name() string { return a.name }

// Count implements Engine.
func (a *adapter) Count(lo, hi int64) Result {
	v, st := a.src.Count(lo, hi)
	return fromOpStats(v, st)
}

// Sum implements Engine.
func (a *adapter) Sum(lo, hi int64) Result {
	v, st := a.src.Sum(lo, hi)
	return fromOpStats(v, st)
}

// Sharded adapts a sharded column to the Engine interface, so the
// harness, metrics, and experiments drive it unchanged.
type Sharded struct {
	adapter
}

// NewSharded wraps src; name defaults to "sharded".
func NewSharded(src AggregateSource) *Sharded {
	return &Sharded{adapter{src: src, name: "sharded"}}
}

// NewShardedNamed wraps src with an explicit display name (used by the
// ablation benchmarks to distinguish shard counts).
func NewShardedNamed(src AggregateSource, name string) *Sharded {
	return &Sharded{adapter{src: src, name: name}}
}

// engineSource inverts adapter: it presents any Engine as an
// AggregateSource.
type engineSource struct{ e Engine }

// SourceFromEngine adapts an Engine to the AggregateSource surface, so
// the sharded column can build its per-shard indexes from engines that
// only implement Engine — adaptive merging, hybrid crack-sort — via
// shard.Options.Source.
func SourceFromEngine(e Engine) AggregateSource { return engineSource{e} }

// Count implements AggregateSource over the wrapped engine.
func (s engineSource) Count(lo, hi int64) (int64, crackindex.OpStats) {
	return toOpStats(s.e.Count(lo, hi))
}

// Sum implements AggregateSource over the wrapped engine.
func (s engineSource) Sum(lo, hi int64) (int64, crackindex.OpStats) {
	return toOpStats(s.e.Sum(lo, hi))
}

func toOpStats(r Result) (int64, crackindex.OpStats) {
	return r.Value, crackindex.OpStats{
		Wait:      r.Wait,
		Crack:     r.Refine,
		Critical:  r.Critical,
		Conflicts: r.Conflicts,
		Epochs:    r.Epochs,
		Skipped:   r.Skipped,
	}
}
