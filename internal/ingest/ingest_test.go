package ingest

import (
	"context"
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/lockmgr"
	"adaptix/internal/shard"
	"adaptix/internal/txn"
	"adaptix/internal/wal"
	"adaptix/internal/workload"
)

// qctx is the uncancellable context the tests drive queries with.
var qctx = context.Background()

func pieceOpts() shard.Options {
	return shard.Options{
		Shards: 4, Seed: 9,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	}
}

// model is a brute-force multiset mirror of the column's contents.
type model struct{ vals map[int64]int64 }

func newModel(vals []int64) *model {
	m := &model{vals: map[int64]int64{}}
	for _, v := range vals {
		m.vals[v]++
	}
	return m
}

func (m *model) insert(v int64) { m.vals[v]++ }

func (m *model) delete(v int64) bool {
	if m.vals[v] > 0 {
		m.vals[v]--
		return true
	}
	return false
}

func (m *model) count(lo, hi int64) int64 {
	var n int64
	for v, c := range m.vals {
		if v >= lo && v < hi {
			n += c
		}
	}
	return n
}

func (m *model) sum(lo, hi int64) int64 {
	var s int64
	for v, c := range m.vals {
		if v >= lo && v < hi {
			s += v * c
		}
	}
	return s
}

func checkAgainstModel(t *testing.T, col *shard.Column, m *model, domain int64) {
	t.Helper()
	r := workload.NewRNG(77)
	for i := 0; i < 200; i++ {
		lo := r.Int64n(domain)
		hi := lo + 1 + r.Int64n(domain-lo)
		if got, _, _ := col.Count(qctx, lo, hi); got != m.count(lo, hi) {
			t.Fatalf("Count[%d,%d) = %d, want %d", lo, hi, got, m.count(lo, hi))
		}
		if got, _, _ := col.Sum(qctx, lo, hi); got != m.sum(lo, hi) {
			t.Fatalf("Sum[%d,%d) = %d, want %d", lo, hi, got, m.sum(lo, hi))
		}
	}
}

func TestRoutedUpdatesMatchModel(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 3)
	col := shard.New(d.Values, pieceOpts())
	g := New(col, Options{ApplyThreshold: 1 << 30}) // no maintenance: raw routing
	m := newModel(d.Values)

	r := workload.NewRNG(5)
	domain := d.Domain * 2
	for i := 0; i < 2000; i++ {
		v := r.Int64n(domain)
		switch i % 3 {
		case 0, 1:
			if err := g.Insert(qctx, v); err != nil {
				t.Fatalf("Insert(%d): %v", v, err)
			}
			m.insert(v)
		default:
			got, err := g.DeleteValue(qctx, v)
			if err != nil {
				t.Fatalf("DeleteValue(%d): %v", v, err)
			}
			if want := m.delete(v); got != want {
				t.Fatalf("DeleteValue(%d) = %v, want %v", v, got, want)
			}
		}
	}
	checkAgainstModel(t, col, m, domain)
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchesAndGroupApplyPreserveAnswers(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 7)
	col := shard.New(d.Values, pieceOpts())
	log := wal.New(nil)
	g := New(col, Options{Name: "R.A", ApplyThreshold: 64, Log: log})
	m := newModel(d.Values)

	// Warm some refinement so group-apply has boundaries to replay.
	for i := int64(0); i < 8; i++ {
		col.Count(qctx, i*(d.Domain/8), i*(d.Domain/8)+d.Domain/16)
	}

	batch := make([]Op, 0, 512)
	r := workload.NewRNG(11)
	for i := 0; i < 512; i++ {
		batch = append(batch, Op{Delete: i%4 == 3, Value: r.Int64n(d.Domain)})
	}
	if _, err := g.Apply(qctx, batch); err != nil {
		t.Fatal(err)
	}
	for _, op := range batch {
		if op.Delete {
			m.delete(op.Value)
		} else {
			m.insert(op.Value)
		}
	}

	pendingBefore := 0
	for _, s := range col.Snapshot() {
		pendingBefore += s.PendingInserts + s.PendingDeletes
	}
	if pendingBefore == 0 {
		t.Fatal("expected pending differential updates before Maintain")
	}

	if ops := g.Maintain(); ops == 0 {
		t.Fatal("Maintain performed no structural operations")
	}
	for _, s := range col.Snapshot() {
		if s.PendingInserts+s.PendingDeletes >= 64 {
			t.Errorf("shard %d still has %d+%d pending after Maintain",
				s.Shard, s.PendingInserts, s.PendingDeletes)
		}
	}
	checkAgainstModel(t, col, m, d.Domain)
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Applied == 0 {
		t.Error("Stats().Applied = 0 after group applies")
	}

	// The structural WAL must bracket every epoch seal and apply in a
	// committed system transaction.
	recs := log.Records()
	byTxn := map[uint64][]wal.Kind{}
	for _, r := range recs {
		byTxn[r.Txn] = append(byTxn[r.Txn], r.Kind)
	}
	seals, applies := 0, 0
	for id, kinds := range byTxn {
		var begin, commit bool
		for _, k := range kinds {
			switch k {
			case wal.BeginSystem:
				begin = true
			case wal.CommitSystem:
				commit = true
			case wal.EpochSeal:
				seals++
			case wal.EpochApply:
				applies++
			}
		}
		if !begin || !commit {
			t.Errorf("txn %d: records not bracketed (begin=%v commit=%v)", id, begin, commit)
		}
	}
	if seals == 0 {
		t.Error("no EpochSeal records logged")
	}
	if applies == 0 {
		t.Error("no EpochApply records logged")
	}
}

func TestGroupApplyReplaysBoundaryKnowledge(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 13)
	col := shard.New(d.Values, pieceOpts())
	g := New(col, Options{ApplyThreshold: 8})

	// Refine shard 0's range heavily, then flood it with inserts.
	for i := 0; i < 32; i++ {
		col.Count(qctx, int64(i*8), int64(i*8+4))
	}
	boundariesBefore := 0
	for _, s := range col.Snapshot() {
		boundariesBefore += s.Pieces
	}
	for i := int64(0); i < 64; i++ {
		if err := g.Insert(qctx, i); err != nil {
			t.Fatal(err)
		}
	}
	g.Maintain()
	boundariesAfter := 0
	for _, s := range col.Snapshot() {
		boundariesAfter += s.Pieces
	}
	// The rebuilt shard must keep (most of) its piece structure: a
	// group apply replays crack boundaries instead of resetting the
	// index to a single piece.
	if boundariesAfter < boundariesBefore/2 {
		t.Errorf("pieces after group apply = %d, before = %d: boundary knowledge lost",
			boundariesAfter, boundariesBefore)
	}
}

func TestRebalanceSplitsAndMerges(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 17)
	col := shard.New(d.Values, pieceOpts())
	g := New(col, Options{
		ApplyThreshold: 128, MinShardRows: 256, SplitFactor: 1.5, MaxShards: 32,
	})
	before := col.NumShards()

	// Skewed storm: all inserts land in one narrow range.
	for i := 0; i < 6000; i++ {
		if err := g.Insert(qctx, int64(i%64)); err != nil {
			t.Fatal(err)
		}
	}
	g.Maintain()
	if g.Stats().Splits == 0 {
		t.Fatalf("no splits after skewed storm (shards %d -> %d)", before, col.NumShards())
	}
	if col.NumShards() <= before {
		t.Errorf("shard count %d did not grow from %d", col.NumShards(), before)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}

	// Delete the storm back out; rebalance should merge dwarf shards.
	for i := 0; i < 6000; i++ {
		if _, err := g.DeleteValue(qctx, int64(i%64)); err != nil {
			t.Fatal(err)
		}
	}
	g.Maintain()
	g.Rebalance()
	if g.Stats().Merges == 0 {
		t.Logf("shards after delete storm: %d (no merge triggered)", col.NumShards())
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryRebuildsShardMap(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 19)
	log := wal.New(nil)
	col := shard.New(d.Values, pieceOpts())
	g := New(col, Options{
		Name: "R.A", Log: log,
		ApplyThreshold: 64, MinShardRows: 256, SplitFactor: 1.5,
	})
	for i := 0; i < 4000; i++ {
		if err := g.Insert(qctx, int64(i%128)); err != nil {
			t.Fatal(err)
		}
	}
	g.Maintain()
	if g.Stats().Splits == 0 {
		t.Fatal("expected at least one split for the recovery test")
	}

	// Recover the shard map from the encoded log image and rebuild.
	var raw []byte
	for _, r := range log.Records() {
		raw = append(raw, wal.Encode(r)...)
	}
	cat, err := wal.Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := cat.ShardBounds["R.A"]
	want := col.Bounds()
	if len(got) != len(want) {
		t.Fatalf("recovered %d cuts %v, live map has %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("recovered cut[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if cat.ShardApplies["R.A"] != g.Stats().Applied {
		t.Errorf("recovered %d group applies, coordinator did %d",
			cat.ShardApplies["R.A"], g.Stats().Applied)
	}

	// A column rebuilt from the recovered bounds answers identically
	// after replaying the same write stream.
	rebuilt := shard.NewWithBounds(d.Values, got, pieceOpts())
	for i := 0; i < 4000; i++ {
		if err := rebuilt.Insert(qctx, int64(i%128)); err != nil {
			t.Fatal(err)
		}
	}
	r := workload.NewRNG(23)
	for i := 0; i < 100; i++ {
		lo := r.Int64n(d.Domain)
		hi := lo + 1 + r.Int64n(d.Domain-lo)
		a, _, _ := col.Sum(qctx, lo, hi)
		b, _, _ := rebuilt.Sum(qctx, lo, hi)
		if a != b {
			t.Fatalf("Sum[%d,%d): live %d, rebuilt %d", lo, hi, a, b)
		}
	}
}

func TestMaintenanceRespectsUserLocks(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 29)
	col := shard.New(d.Values, pieceOpts())
	tm := txn.NewManager()
	g := New(col, Options{Name: "R.A", ApplyThreshold: 4, Txns: tm})
	for i := int64(0); i < 64; i++ {
		if err := g.Insert(qctx, i); err != nil {
			t.Fatal(err)
		}
	}

	// A user transaction holding an X lock on the column blocks
	// maintenance (system transactions verify user locks).
	ut := tm.Begin(txn.User)
	if err := ut.Lock("R.A", lockmgr.X); err != nil {
		t.Fatal(err)
	}
	if ops := g.Maintain(); ops != 0 {
		t.Errorf("Maintain did %d structural ops under a user X lock", ops)
	}
	if g.Stats().SkippedMaintenance == 0 {
		t.Error("SkippedMaintenance not counted")
	}
	if err := ut.Commit(); err != nil {
		t.Fatal(err)
	}
	if ops := g.Maintain(); ops == 0 {
		t.Error("Maintain still idle after the user lock was released")
	}
}
