// Command adaptixstat scrapes a live adaptix observability endpoint
// (Index.Observe served over HTTP) and pretty-prints a snapshot:
// throughput counters, the latency quantiles of the always-on
// histograms, and optionally the flight-recorder tail.
//
// Usage:
//
//	adaptixstat [-addr http://localhost:6060] [-watch 2s] [-flight 10] [-top]
//
// With -watch the snapshot refreshes in place at the given interval
// until interrupted; counters are shown both as lifetime totals and as
// per-second rates over the interval. With -top the output is a live
// dashboard instead: the watchdog's per-rule health verdicts, the
// key-range heatmap as bar strips, the live workload signature
// (read/write mix, selectivity, locality, sequentiality), the
// convergence sparkline (mean rows touched per query window), and a
// per-shard refinement table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"adaptix"
)

func main() {
	addr := flag.String("addr", "http://localhost:6060", "observability endpoint base URL")
	watch := flag.Duration("watch", 0, "refresh interval (0: print once and exit)")
	flight := flag.Int("flight", 0, "also print the last N flight-recorder events")
	top := flag.Bool("top", false, "live dashboard: health, heatmap, convergence sparkline, per-shard table")
	flag.Parse()

	var prev *adaptix.ObsSnapshot
	var prevAt time.Time
	for {
		snap, err := scrape[adaptix.ObsSnapshot](*addr + "/snapshot")
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptixstat: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		if *watch > 0 {
			fmt.Print("\033[H\033[2J") // home + clear: redraw in place
		}
		if *top {
			rep, err := scrapeHealth(*addr + "/health")
			if err != nil {
				fmt.Fprintf(os.Stderr, "adaptixstat: %v\n", err)
				os.Exit(1)
			}
			printTop(snap, rep)
		} else {
			print(snap, prev, now.Sub(prevAt))
		}
		if *flight > 0 {
			evs, err := scrape[[]adaptix.FlightEvent](*addr + "/flight")
			if err != nil {
				fmt.Fprintf(os.Stderr, "adaptixstat: %v\n", err)
				os.Exit(1)
			}
			printFlight(evs, *flight)
		}
		if *watch <= 0 {
			return
		}
		prev, prevAt = &snap, now
		time.Sleep(*watch)
	}
}

func scrape[T any](url string) (T, error) {
	var v T
	resp, err := http.Get(url)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

// scrapeHealth fetches the watchdog report. Unlike scrape it accepts
// 503: a degraded index still serves a well-formed report body, and
// the dashboard's whole point is rendering that state.
func scrapeHealth(url string) (adaptix.HealthReport, error) {
	var rep adaptix.HealthReport
	resp, err := http.Get(url)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return rep, fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	return rep, json.NewDecoder(resp.Body).Decode(&rep)
}

// sparkBlocks is the 8-level bar alphabet shared by the heatmap strips
// and the convergence sparkline.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// spark renders vs as a fixed-height sparkline scaled to the series
// maximum; zeros render as spaces so cold regions stay visually empty.
func spark(vs []int64) string {
	var max int64
	for _, v := range vs {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat("·", len(vs))
	}
	var b strings.Builder
	for _, v := range vs {
		if v == 0 {
			b.WriteRune('·')
			continue
		}
		lvl := int(v * int64(len(sparkBlocks)) / (max + 1))
		b.WriteRune(sparkBlocks[lvl])
	}
	return b.String()
}

func printTop(s adaptix.ObsSnapshot, rep adaptix.HealthReport) {
	o := s.Obs
	fmt.Printf("adaptix %s  rows=%d shards=%d  queries=%d writes=%d  q-p99=%s\n",
		s.Method, s.Rows, s.Shards, o.Queries, o.Writes, fmtDur(o.QueryLatencyP99))

	// Health: one line per degraded rule, one summary line otherwise.
	if rep.OK() {
		fmt.Printf("health  OK  (%d rules pass)\n", len(rep.Rules))
	} else {
		fmt.Println("health  DEGRADED")
		for _, r := range rep.Rules {
			if r.Status != adaptix.HealthOK {
				fmt.Printf("  !! %-26s %s\n", r.Rule, r.Reason)
			}
		}
	}

	// Serving front: present only while a network server (Index.Serve)
	// is up on the scraped process.
	if sv := s.Serve; sv != nil {
		state := "accepting"
		if sv.Draining {
			state = "draining"
		}
		fmt.Printf("serve   %s  %s  conns=%d  %.0f qps  in-flight=%d\n",
			sv.Addr, state, sv.Conns, sv.QPS, sv.InFlight)
		fmt.Printf("  batch p50=%d p99=%d  queue p50=%d p99=%d  coalesce=%.2f  rejects=%d\n",
			sv.BatchP50, sv.BatchP99, sv.QueueP50, sv.QueueP99, sv.CoalesceRate, sv.Rejected)
	}

	// Key-range heatmap: reads and writes strips over the bucketed
	// domain, hottest bucket annotated.
	h := s.Heatmap
	if h.BucketWidth > 0 {
		fmt.Printf("heat    [%d, %d]  bucket=%d\n", h.Lo, h.Hi, h.BucketWidth)
		fmt.Printf("  reads  %s\n", spark(h.Reads[:]))
		fmt.Printf("  writes %s\n", spark(h.Writes[:]))
	}

	// Workload signature: what stream the index is facing, from the
	// capture recorder's streaming characterizer.
	wl := s.Workload
	if wl.Enabled {
		fmt.Printf("work    %d captured (%d reads / %d writes, %.0f%% wr)  dropped=%d\n",
			wl.Captured, wl.Reads, wl.Writes, 100*wl.WriteFrac, wl.Dropped)
		fmt.Printf("  sel p50=%.4f p99=%.4f  jump p50=%d p99=%d  locality=%.2f  seq=%.2f\n",
			wl.SelectivityP50, wl.SelectivityP99, wl.KeyJumpP50, wl.KeyJumpP99,
			wl.Locality, wl.SeqScore)
	} else {
		fmt.Println("work    capture off (enable with WithWorkloadCapture)")
	}

	// Convergence: the rows-touched decay series plus the routing
	// effectiveness counters.
	c := s.Convergence
	if len(c.Series) > 0 {
		fmt.Printf("conv    %s  (mean rows touched per %d-query window)\n",
			spark(c.Series), len(c.Series))
	}
	fmt.Printf("  touched p50=%d p99=%d  covered-aggregate %d/%d visits (%.0f%%)\n",
		c.TouchedP50, c.TouchedP99, c.Covered, c.Visits, 100*c.CoveredFrac)

	// Per-shard refinement table: how far each shard's cracked index
	// has converged.
	if len(s.ShardStats) > 0 {
		fmt.Printf("  %-5s %10s %8s %6s %10s %8s %7s\n",
			"shard", "rows", "pieces", "depth", "maxpiece%", "entropy", "epochs")
		for _, st := range s.ShardStats {
			fmt.Printf("  %-5d %10d %8d %6d %9.1f%% %8.2f %7d\n",
				st.Shard, st.Rows, st.Pieces, st.Depth,
				100*st.MaxPieceFrac, st.PieceEntropy, st.Epochs)
		}
	}
}

func print(s adaptix.ObsSnapshot, prev *adaptix.ObsSnapshot, dt time.Duration) {
	fmt.Printf("adaptix %s  rows=%d  shards=%d\n", s.Method, s.Rows, s.Shards)

	rate := func(cur, old int64) string {
		if prev == nil || dt <= 0 {
			return ""
		}
		return fmt.Sprintf("  (%.0f/s)", float64(cur-old)/dt.Seconds())
	}
	var po adaptix.ObsStats
	if prev != nil {
		po = prev.Obs
	}
	o := s.Obs
	fmt.Printf("  queries  %-12d%s\n", o.Queries, rate(o.Queries, po.Queries))
	fmt.Printf("  writes   %-12d%s\n", o.Writes, rate(o.Writes, po.Writes))
	fmt.Printf("  stalls   latch=%d writer=%d  sampled-spans=%d\n",
		o.LatchStalls, o.WriterStalls, o.SampledSpans)

	fmt.Println("  latency quantiles:")
	row := func(name string, ds ...time.Duration) {
		fmt.Printf("    %-16s", name)
		for _, d := range ds {
			fmt.Printf(" %12s", fmtDur(d))
		}
		fmt.Println()
	}
	fmt.Printf("    %-16s %12s %12s %12s\n", "", "p50", "p99", "p999")
	row("query e2e", o.QueryLatencyP50, o.QueryLatencyP99, o.QueryLatencyP999)
	row("critical path", o.CriticalPathP50, o.CriticalPathP99, o.CriticalPathP999)
	row("writer stall", o.WriterStallP50, o.WriterStallP99, o.WriterStallP999)
	fmt.Printf("    %-16s %12s (wait) %8s (crack) %8s (latch) %8s (fsync)\n",
		"p99 breakdown", fmtDur(o.QueryWaitP99), fmtDur(o.QueryCrackP99),
		fmtDur(o.LatchWaitP99), fmtDur(o.FsyncP99))

	in := s.Ingest
	fmt.Printf("  ingest: %+v\n", in)
}

func printFlight(evs []adaptix.FlightEvent, n int) {
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	fmt.Printf("  flight (last %d):\n", len(evs))
	for _, e := range evs {
		fmt.Printf("    %s  %-12s shard=%-3d dur=%s\n",
			e.When.Format("15:04:05.000"), e.KindName, e.Shard, fmtDur(e.Dur))
	}
}

// fmtDur renders a duration compactly with µs resolution below 1ms.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return d.Round(time.Millisecond).String()
	}
}
