// Package harness drives engines with concurrent client streams and
// collects the per-query measurements the paper's experiments plot.
//
// The set-up mirrors §6.2: a fixed sequence of queries is divided
// among N clients that start at the same time; "for every run we use
// exactly the same queries and in the same order". Each client is a
// goroutine issuing its share of the sequence back-to-back with no
// think time.
package harness

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/engine"
	"adaptix/internal/metrics"
	"adaptix/internal/workload"
)

// Run is the outcome of one experiment run.
type Run struct {
	// Engine is the engine name.
	Engine string
	// Clients is the number of concurrent clients used.
	Clients int
	// Elapsed is the wall-clock time until the last client finished
	// (the paper's "time perceived by the last client to receive all
	// answers for all its queries").
	Elapsed time.Duration
	// Series holds one cost record per query, ordered by completion.
	Series metrics.Series
	// Checksum folds all query results together, letting callers
	// verify that every engine computed identical answers.
	Checksum int64
}

// Throughput returns queries per second over the whole run.
func (r *Run) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Series.Costs)) / r.Elapsed.Seconds()
}

// Execute runs the query sequence against e with the given number of
// concurrent clients. The sequence is split into contiguous
// per-client streams (client c fires queries [c*k, (c+1)*k)). Queries
// beyond clients*k (remainder) go to the last client.
//
// The harness drives engines with context.Background() — the
// uncancellable fast path — so measurement runs never abandon queries;
// an engine error (impossible under Background by the Engine contract)
// would contribute a zero-valued answer to the checksum.
func Execute(e engine.Engine, queries []workload.Query, clients int) *Run {
	if clients < 1 {
		clients = 1
	}
	if clients > len(queries) {
		clients = len(queries)
	}
	per := len(queries) / clients

	costs := make([][]metrics.QueryCost, clients)
	sums := make([]int64, clients)
	var seq atomic.Int64

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		lo := c * per
		hi := lo + per
		if c == clients-1 {
			hi = len(queries)
		}
		wg.Add(1)
		go func(c int, qs []workload.Query) {
			defer wg.Done()
			local := make([]metrics.QueryCost, 0, len(qs))
			var checksum int64
			for _, q := range qs {
				t0 := time.Now()
				var res engine.Result
				if q.Kind == workload.Count {
					res, _ = e.Count(context.Background(), q.Lo, q.Hi)
				} else {
					res, _ = e.Sum(context.Background(), q.Lo, q.Hi)
				}
				local = append(local, metrics.QueryCost{
					Seq:       int(seq.Add(1) - 1),
					Client:    c,
					Response:  time.Since(t0),
					Wait:      res.Wait,
					Crack:     res.Refine,
					Critical:  res.Critical,
					Conflicts: res.Conflicts,
					Skipped:   res.Skipped,
				})
				checksum += res.Value
			}
			costs[c] = local
			sums[c] = checksum
		}(c, queries[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)

	run := &Run{Engine: e.Name(), Clients: clients, Elapsed: elapsed}
	for c := range costs {
		run.Series.Costs = append(run.Series.Costs, costs[c]...)
		run.Checksum += sums[c]
	}
	run.Series.SortBySeq()
	return run
}

// Sequential runs the whole sequence on a single client.
func Sequential(e engine.Engine, queries []workload.Query) *Run {
	return Execute(e, queries, 1)
}

// Sweep runs the same query sequence for each client count and
// returns one Run per entry, e.g. the 1..32 client sweep of
// Figures 12 and 14. The engine factory is invoked fresh for every
// client count so each run starts from an unrefined index, exactly
// like the paper repeating the experiment per configuration.
func Sweep(factory func() engine.Engine, queries []workload.Query, clientCounts []int) []*Run {
	runs := make([]*Run, 0, len(clientCounts))
	for _, c := range clientCounts {
		runs = append(runs, Execute(factory(), queries, c))
	}
	return runs
}
