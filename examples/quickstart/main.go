// Quickstart: adaptive indexing in 60 seconds.
//
// Loads a column of 1M unique integers, runs a handful of range
// queries, and shows how the cracker index refines itself as a side
// effect: per-query response time drops while the number of index
// pieces grows. Also demonstrates the Figure 6 column-store plan
// (select on A, fetch B, aggregate).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"adaptix"
)

func main() {
	const n = 1 << 20
	data := adaptix.NewUniqueDataset(n, 42)

	// A cracked column with the paper's piece-latch concurrency
	// control (fine-grained; safe for concurrent use).
	col := adaptix.NewCrackedColumn(data.Values, adaptix.CrackOptions{
		Latching: adaptix.LatchPiece,
	})

	fmt.Println("== database cracking: queries refine the index as a side effect ==")
	queries := adaptix.UniformQueries(adaptix.SumQuery, data.Domain, 0.05, 7, 12)
	for i, q := range queries {
		start := time.Now()
		sum, st := col.Sum(q.Lo, q.Hi)
		fmt.Printf("q%-2d sum[%7d,%7d) = %14d   %9v  (crack %8v, pieces %d)\n",
			i+1, q.Lo, q.Hi, sum, time.Since(start).Round(time.Microsecond),
			st.Crack.Round(time.Microsecond), col.NumPieces())
	}
	s := col.Stats()
	fmt.Printf("\nindex stats: cracks=%d boundaries=%d conflicts=%d\n",
		s.Cracks.Load(), s.Boundaries.Load(), s.Conflicts.Load())

	// The Figure 6 plan: select sum(B) from R where lo <= A < hi.
	fmt.Println("\n== column-store plan: select sum(B) from R where 100k <= A < 200k ==")
	tab := adaptix.NewTable("R")
	if err := tab.AddColumn("A", data.Values); err != nil {
		panic(err)
	}
	b := adaptix.NewUniqueDataset(n, 43)
	if err := tab.AddColumn("B", b.Values); err != nil {
		panic(err)
	}
	ex := adaptix.NewExecutor(tab, adaptix.CrackOptions{Latching: adaptix.LatchPiece})
	for run := 1; run <= 3; run++ {
		start := time.Now()
		sum, _, err := ex.SumFetchWhere("B", "A", 100_000, 200_000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("run %d: sum(B) = %d   (%v)\n", run, sum, time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("\nonly column A was indexed (it carried the predicate); B was not:")
	if ix, ok := ex.Index("A"); ok {
		fmt.Printf("  A: cracker index with %d pieces\n", ix.NumPieces())
	}
	if _, ok := ex.Index("B"); !ok {
		fmt.Println("  B: no index (never queried with a predicate)")
	}
}
