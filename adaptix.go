// Package adaptix is a from-scratch Go implementation of adaptive
// indexing with concurrency control, reproducing
//
//	Graefe, Halim, Idreos, Kuno, Manegold:
//	"Concurrency Control for Adaptive Indexing", PVLDB 5(7), 2012.
//
// Adaptive indexing creates and refines indexes incrementally as a
// side effect of query processing: the more often a key range is
// queried, the more its physical representation is optimized. This
// package provides the three adaptive-indexing methods of the paper —
// database cracking, adaptive merging over a partitioned B-tree, and
// the hybrid crack-sort — together with the concurrency-control
// techniques that let logically read-only queries refine indexes
// safely and cheaply: column latches, piece latches, middle-first
// scheduling of waiting cracks, conflict avoidance (optional
// refinement), early termination / latch downgrades, and verification
// of user-transaction locks by refining system transactions.
//
// # Quick start
//
//	col := adaptix.NewCrackedColumn(values, adaptix.CrackOptions{})
//	n, _ := col.Count(100, 200) // count of values in [100, 200)
//	s, _ := col.Sum(100, 200)   // cracking refines the index as a side effect
//
// The facade re-exports the building blocks so that one import path
// serves typical uses; the internal packages remain the source of
// truth for documentation of each subsystem.
package adaptix

import (
	"adaptix/internal/amerge"
	"adaptix/internal/baseline"
	"adaptix/internal/column"
	"adaptix/internal/cracker"
	"adaptix/internal/crackindex"
	"adaptix/internal/durable"
	"adaptix/internal/engine"
	"adaptix/internal/epoch"
	"adaptix/internal/harness"
	"adaptix/internal/hybrid"
	"adaptix/internal/ingest"
	"adaptix/internal/latch"
	"adaptix/internal/lockmgr"
	"adaptix/internal/shard"
	"adaptix/internal/sideways"
	"adaptix/internal/txn"
	"adaptix/internal/wal"
	"adaptix/internal/workload"
)

// Core aliases: the cracked column (database cracking) and its options.
type (
	// CrackedColumn is a column with a cracker index refined as a side
	// effect of queries (database cracking, paper §5).
	CrackedColumn = crackindex.Index
	// CrackOptions configures latching mode, layout, scheduling,
	// conflict policy and optimizations of a CrackedColumn.
	CrackOptions = crackindex.Options
	// OpStats is the per-query cost breakdown (wait vs crack time).
	OpStats = crackindex.OpStats
	// TraceEvent is a latch/crack trace record (Figure 8 timelines).
	TraceEvent = crackindex.TraceEvent
)

// Latching modes (paper §5.3).
const (
	// LatchPiece: one latch per array piece — the finest granularity.
	LatchPiece = crackindex.LatchPiece
	// LatchColumn: one latch per column.
	LatchColumn = crackindex.LatchColumn
	// LatchNone: no concurrency control (single-threaded only).
	LatchNone = crackindex.LatchNone
)

// Conflict policies for optional refinement.
const (
	// WaitOnConflict blocks until the latch is free.
	WaitOnConflict = crackindex.Wait
	// SkipOnConflict forgoes the optional refinement (conflict
	// avoidance, §3.3).
	SkipOnConflict = crackindex.Skip
)

// Cracker-array layouts (Figure 7).
const (
	// LayoutSplit stores rowIDs and values as a pair of arrays.
	LayoutSplit = cracker.LayoutSplit
	// LayoutPairs stores an array of rowID-value pairs.
	LayoutPairs = cracker.LayoutPairs
)

// Waiting-crack scheduling policies (§5.3 optimization).
const (
	// MiddleFirst wakes the median-bound waiter first.
	MiddleFirst = latch.MiddleFirst
	// FIFO wakes waiters in arrival order.
	FIFO = latch.FIFO
)

// NewCrackedColumn creates a cracked column over values. The column
// is copied lazily by the first query (index initialization is itself
// a query side effect).
func NewCrackedColumn(values []int64, opts CrackOptions) *CrackedColumn {
	return crackindex.New(values, opts)
}

// Engine is the common interface of all five query engines (scan,
// sort, crack, amerge, hybrid).
type Engine = engine.Engine

// Result is one query's outcome and cost breakdown.
type Result = engine.Result

// NewScanEngine answers every query with a full column scan (the
// paper's "default case" baseline).
func NewScanEngine(values []int64) Engine { return baseline.NewScan(values) }

// NewFullSortEngine sorts the whole column on the first query and
// binary-searches afterwards (the paper's "full indexing" baseline).
func NewFullSortEngine(values []int64) Engine { return baseline.NewFullSort(values) }

// NewCrackEngine wraps a CrackedColumn as an Engine.
func NewCrackEngine(ix *CrackedColumn) Engine { return engine.NewCrack(ix) }

// Sharded parallel adaptive indexing (internal/shard): the column is
// range-partitioned into independently-latched shards, each backed by
// its own cracked index, and range queries fan out to the overlapping
// shards in parallel.
type (
	// ShardedColumn is a range-partitioned column of cracked shards
	// with a parallel fan-out query executor.
	ShardedColumn = shard.Column
	// ShardOptions configures shard count, worker-pool size, boundary
	// sampling, and the per-shard index options.
	ShardOptions = shard.Options
	// ShardStat is a per-shard refinement-state snapshot (pieces,
	// cracks, conflicts, depth).
	ShardStat = shard.ShardStat
)

// NewShardedColumn range-partitions values into opts.Shards shards
// (default runtime.GOMAXPROCS) with boundaries drawn from a seeded
// sample of the input. The column is mutable: Insert and DeleteValue
// route to the owning shard's differential file (see NewIngestor for
// the batched write path with group-apply merges and rebalancing).
func NewShardedColumn(values []int64, opts ShardOptions) *ShardedColumn {
	return shard.New(values, opts)
}

// NewShardedColumnWithBounds rebuilds a sharded column with an
// explicit shard map — the recovery path for a map recovered from the
// structural WAL (wal.Recover's ShardBounds).
func NewShardedColumnWithBounds(values []int64, bounds []int64, opts ShardOptions) *ShardedColumn {
	return shard.NewWithBounds(values, bounds, opts)
}

// NewShardedColumnWithBoundsAndCracks rebuilds a sharded column with
// an explicit shard map and pre-cracks each shard to the given crack
// boundary sets — the checkpoint-recovery path (wal.Recover's
// ShardBounds and ShardCracks). Open does this automatically.
func NewShardedColumnWithBoundsAndCracks(values []int64, bounds []int64, cracks [][]int64, opts ShardOptions) *ShardedColumn {
	return shard.NewWithBoundsAndCracks(values, bounds, cracks, opts)
}

// NewShardedEngine wraps a ShardedColumn as an Engine, so the harness
// and experiments drive it like any other engine.
func NewShardedEngine(col *ShardedColumn) Engine { return engine.NewSharded(col) }

// Concurrent write path (internal/ingest): routed updates, group-apply
// epoch merges, and online shard rebalancing over a ShardedColumn.
// Pending writes live in per-shard epoch chains (internal/epoch) —
// versioned differential files — so a group-apply merge seals only the
// current epoch and writers never park: they roll over to the next
// epoch while the sealed prefix merges in the background, and readers
// snapshot base + all visible epochs for exact answers mid-merge.
type (
	// Ingestor coordinates the write path of one sharded column: it
	// routes Insert/DeleteValue/Apply calls, group-applies per-shard
	// epoch chains inside system transactions (EpochSeal + EpochApply
	// WAL records), and splits/merges shards whose population — or,
	// with IngestOptions.LoadWeight, observed refinement load — drifts.
	Ingestor = ingest.Coordinator
	// IngestOptions configures thresholds, rebalancing factors (incl.
	// load-aware LoadWeight), the structural WAL, data-tail durability
	// (LogWrites), the legacy parked group-apply baseline
	// (ParkOnApply), and the transaction manager of an Ingestor.
	IngestOptions = ingest.Options
	// EpochStat is an observability snapshot of one differential epoch
	// file (id, pending counts, sealed).
	EpochStat = epoch.Stat
	// SealedEpochInfo describes one epoch sealed by
	// ShardedColumn.SealEpoch (the first half of a group-apply).
	SealedEpochInfo = shard.SealedEpoch
	// AppliedInfo describes one group-apply merge
	// (ShardedColumn.ApplyShard / ApplySealed).
	AppliedInfo = shard.Applied
	// IngestOp is one batched write operation (Ingestor.Apply).
	IngestOp = ingest.Op
	// IngestStats counts an Ingestor's routed writes and structural
	// operations.
	IngestStats = ingest.Stats
)

// NewIngestor creates the write-path coordinator for col. Start runs
// background maintenance; Maintain runs one synchronous pass.
func NewIngestor(col *ShardedColumn, opts IngestOptions) *Ingestor {
	return ingest.New(col, opts)
}

// Durable persistence (internal/durable): a directory-backed store
// whose refinement knowledge — shard cuts and per-shard crack
// boundaries — survives a crash through a file-backed WAL and periodic
// crack-boundary checkpoints.
type (
	// DurableColumn is a crash-recoverable sharded adaptive index:
	// reads hit the sharded column, writes route through the ingestor,
	// and checkpoints persist data and refinement into the store
	// directory, each cut at an epoch watermark so recovery discards
	// half-applied epochs. Close takes a final checkpoint.
	DurableColumn = durable.Column
	// DurableOptions configures Open (initial values, shard and ingest
	// options, WAL segment size, checkpoint cadence, and LogWrites
	// data-tail durability: logical records replayed past the
	// checkpoint's epoch watermark on reopen).
	DurableOptions = durable.Options
	// WALFileSink is the durable segment-file sink of the structural
	// WAL: CRC-framed records, fsync-on-commit, segment rotation, and
	// checkpoint truncation. Open wires one up automatically; use
	// NewWALFileSink with NewStructuralLogWithSink for custom setups.
	WALFileSink = wal.FileSink
	// WALSinkOptions configures a WALFileSink.
	WALSinkOptions = wal.SinkOptions
)

// Open opens (or creates) the durable store in dir: recovery reads the
// data snapshot, folds checkpoints and later committed structural
// records into a catalog, and rebuilds the column pre-cracked to
// everything the previous process had learned.
func Open(dir string, opts DurableOptions) (*DurableColumn, error) {
	return durable.Open(dir, opts)
}

// NewWALFileSink opens a segment-file sink over dir for a structural
// log (see WALFileSink).
func NewWALFileSink(dir string, opts WALSinkOptions) (*WALFileSink, error) {
	return wal.NewFileSink(dir, opts)
}

// NewStructuralLogWithSink returns a structural WAL that writes every
// record through sink, fsyncing on system-transaction commits when the
// sink supports it.
func NewStructuralLogWithSink(sink *WALFileSink) *StructuralLog {
	return wal.New(sink)
}

// Adaptive merging (paper §2/§4) over a partitioned B-tree.
type (
	// MergeIndex is an adaptive-merging index.
	MergeIndex = amerge.Index
	// MergeOptions configures run size, merge budget, conflict policy,
	// structural logging and system-transaction wrapping.
	MergeOptions = amerge.Options
)

// NewMergeIndex creates an adaptive-merging index over values.
func NewMergeIndex(values []int64, opts MergeOptions) *MergeIndex {
	return amerge.New(values, opts)
}

// Hybrid crack-sort (paper §2, Figure 4).
type (
	// HybridIndex is a hybrid crack-sort index.
	HybridIndex = hybrid.Index
	// HybridOptions configures partition size, layout and conflict
	// policy.
	HybridOptions = hybrid.Options
)

// NewHybridIndex creates a hybrid crack-sort index over values.
func NewHybridIndex(values []int64, opts HybridOptions) *HybridIndex {
	return hybrid.New(values, opts)
}

// Sideways cracking (reference [22]; §5 "Other Adaptive Indexing
// Methods").
type (
	// SidewaysMap is a cracker map M(head, tail): aligned selection
	// and projection values reorganized together, so refined ranges
	// aggregate without positional fetches.
	SidewaysMap = sideways.Map
	// SidewaysOptions configures the map's conflict policy.
	SidewaysOptions = sideways.Options
)

// NewSidewaysMap creates a cracker map over aligned head/tail columns.
func NewSidewaysMap(head, tail []int64, opts SidewaysOptions) *SidewaysMap {
	return sideways.NewMap(head, tail, opts)
}

// Column-store kernel (paper §5.1, Figure 6).
type (
	// Table is a set of aligned dense columns.
	Table = column.Table
	// Executor evaluates bulk operator-at-a-time plans with cracking
	// selects.
	Executor = column.Executor
)

// NewTable creates an empty column-store table.
func NewTable(name string) *Table { return column.NewTable(name) }

// NewExecutor creates a plan executor over tab.
func NewExecutor(tab *Table, opts CrackOptions) *Executor {
	return column.NewExecutor(tab, opts)
}

// Workload generation (paper §6 set-up).
type (
	// Query is one range query (Lo <= A < Hi).
	Query = workload.Query
	// Dataset is a generated base column.
	Dataset = workload.Dataset
)

// Query kinds.
const (
	// CountQuery is Q1: select count(*) where v1 < A < v2.
	CountQuery = workload.Count
	// SumQuery is Q2: select sum(A) where v1 < A < v2.
	SumQuery = workload.Sum
)

// NewUniqueDataset builds n unique integers 0..n-1 in random order.
func NewUniqueDataset(n int, seed uint64) *Dataset {
	return workload.NewUniqueUniform(n, seed)
}

// UniformQueries draws n random range queries of the given kind and
// selectivity over [0, domain).
func UniformQueries(kind workload.QueryKind, domain int64, selectivity float64, seed uint64, n int) []Query {
	return workload.Fixed(workload.NewUniform(kind, domain, selectivity, seed), n)
}

// RunResult is the outcome of a (possibly concurrent) experiment run.
type RunResult = harness.Run

// Run drives the engine with the query sequence split across the
// given number of concurrent clients, as in the paper's experiments.
func Run(e Engine, queries []Query, clients int) *RunResult {
	return harness.Execute(e, queries, clients)
}

// Transactions and locks (paper §3, Table 1).
type (
	// TxnManager creates user and system transactions.
	TxnManager = txn.Manager
	// Txn is one transaction.
	Txn = txn.Txn
	// LockMode is a transactional lock mode (IS, IX, S, SIX, U, X).
	LockMode = lockmgr.Mode
	// StructuralLog is the write-ahead log for structural operations.
	StructuralLog = wal.Log
)

// Lock modes.
const (
	IS  = lockmgr.IS
	IX  = lockmgr.IX
	SLk = lockmgr.S
	SIX = lockmgr.SIX
	ULk = lockmgr.U
	XLk = lockmgr.X
)

// NewTxnManager returns a transaction manager with a fresh lock
// manager.
func NewTxnManager() *TxnManager { return txn.NewManager() }

// NewStructuralLog returns an in-memory structural WAL.
func NewStructuralLog() *StructuralLog { return wal.New(nil) }
