// The facade's workload capture & replay surface: read back what the
// recorder captured (live signature, in-memory retention, on-disk
// trace) and re-execute a trace against any Index — any method, shard
// count, or option set — verifying the capture-time checksums. See
// docs/OBSERVABILITY.md ("Workload capture & replay") for the record
// format, sampling semantics, and the replay determinism contract.
package adaptix

import (
	"context"

	"adaptix/internal/wcapture"
)

// Workload returns the live workload signature the capture recorder
// has characterized: read/write mix, selectivity and predicate-width
// quantiles, inter-query key locality, and the sequentiality score
// (the stochastic-cracking adversary detector). Without
// WithWorkloadCapture it returns the schema-complete zero value.
func (ix *Index) Workload() WorkloadStats { return ix.cap.Signature() }

// WorkloadTrace returns the in-memory capture retention: the newest
// ring-full of captured records, oldest first (nil without
// WithWorkloadCapture). For the complete stream, configure
// CaptureOptions.Sink and load it back with ReadWorkloadTrace.
func (ix *Index) WorkloadTrace() []WorkloadRecord { return ix.cap.Retained() }

// ReadWorkloadTrace loads a captured on-disk trace (a
// CaptureOptions.Sink file, including its rotated predecessor when one
// exists), oldest record first. Close the capturing index first — the
// final sink drain runs on Close.
func ReadWorkloadTrace(path string) ([]WorkloadRecord, error) {
	return wcapture.ReadTrace(path)
}

// replayTarget adapts an Index to the replayer's execution surface.
type replayTarget struct{ ix *Index }

func (t replayTarget) Count(ctx context.Context, lo, hi int64) (int64, error) {
	r, err := t.ix.Count(ctx, lo, hi)
	return r.Value, err
}

func (t replayTarget) Sum(ctx context.Context, lo, hi int64) (int64, error) {
	r, err := t.ix.Sum(ctx, lo, hi)
	return r.Value, err
}

func (t replayTarget) Insert(ctx context.Context, v int64) error {
	return t.ix.Insert(ctx, v)
}

func (t replayTarget) Delete(ctx context.Context, v int64) (bool, error) {
	return t.ix.Delete(ctx, v)
}

// ReplayTrace re-executes a captured trace against ix in capture
// order: reads re-run as Count/Sum, writes as Insert/Delete. With
// ReplayOptions.Pace non-zero the capture timestamps pace the run
// (1 = original speed); with Verify every read's answer and every
// delete's found flag is checked against the checksum recorded at
// capture time.
//
// Determinism contract: a trace captured serially (one client,
// CaptureOptions.SampleEvery 1) replayed against an index built over
// the same logical dataset reproduces every checksum exactly,
// whatever method, shard count, or options ix was built with. Traces
// captured under concurrent clients are valid load but their record
// order is the capture ring's claim order, not necessarily the
// engine's linearization order — replay those with Verify off.
func ReplayTrace(ctx context.Context, ix *Index, recs []WorkloadRecord, o ReplayOptions) (ReplayReport, error) {
	return wcapture.Replay(ctx, recs, replayTarget{ix: ix}, o)
}
