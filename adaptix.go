// Package adaptix is a from-scratch Go implementation of adaptive
// indexing with concurrency control, reproducing
//
//	Graefe, Halim, Idreos, Kuno, Manegold:
//	"Concurrency Control for Adaptive Indexing", PVLDB 5(7), 2012.
//
// Adaptive indexing creates and refines indexes incrementally as a
// side effect of query processing: the more often a key range is
// queried, the more its physical representation is optimized. The
// package provides the adaptive-indexing methods of the paper —
// database cracking, adaptive merging over a partitioned B-tree, the
// hybrid crack-sort — plus the two non-adaptive baselines (full sort
// and plain scans), all behind ONE handle with one context-aware query
// and write surface.
//
// # Quick start
//
//	ix, err := adaptix.New(values)                   // database cracking
//	defer ix.Close()
//	res, err := ix.Count(ctx, 100, 200)              // count of values in [100, 200)
//	res, err  = ix.Sum(ctx, 100, 200)                // refines the index as a side effect
//	err  = ix.Insert(ctx, 150)                       // routed write, visible immediately
//
// The method, sharding, write path, and durability are all selected by
// functional options:
//
//	ix, _ := adaptix.New(values,
//	    adaptix.WithMethod(adaptix.AMerge),          // or Hybrid, Sort, Scan, Crack
//	    adaptix.WithShards(8),                       // range-partitioned fan-out execution
//	)
//
// A durable, crash-recoverable index is the same handle opened on a
// directory:
//
//	ix, _ := adaptix.Open(dir, adaptix.WithValues(values), adaptix.WithLogWrites())
//
// Every query takes a context.Context: cancellation before any work
// returns ctx.Err() with no refinement side effects, a deadline
// expiring while the query is parked on a piece latch unparks it
// promptly, and context.Background() follows an uncancellable fast
// path with no measurable overhead. Writes are context-aware the same
// way (a writer parked behind a shard split unparks on cancellation).
//
// Whatever the method, the handle is writable: routed inserts and
// deletes land in per-shard epoch chains (versioned differential
// files), group-apply merges fold them into the method's physical
// structure in the background without parking writers, and an online
// rebalancer splits and merges shards under skew. The internal
// packages remain the source of truth for the documentation of each
// subsystem (see docs/ARCHITECTURE.md for the layer map).
package adaptix

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"adaptix/internal/amerge"
	"adaptix/internal/baseline"
	"adaptix/internal/durable"
	"adaptix/internal/engine"
	"adaptix/internal/health"
	"adaptix/internal/hybrid"
	"adaptix/internal/ingest"
	"adaptix/internal/metrics"
	"adaptix/internal/obs"
	"adaptix/internal/serve"
	"adaptix/internal/shard"
	"adaptix/internal/wcapture"
)

// Index is the unified handle over one adaptively indexed column: one
// query surface (Count, Sum), one write surface (Insert, Delete,
// Apply), one observability surface (Stats) — for every method, every
// shard count, and both the in-memory and the durable lifecycles. All
// methods are safe for concurrent use.
type Index struct {
	method Method
	col    *shard.Column
	ing    *ingest.Coordinator
	dur    *durable.Column // nil for in-memory indexes
	eng    engine.Engine
	obs    *metrics.Observer  // always non-nil
	wd     *health.Watchdog   // always non-nil; background loop under WithHealth
	cap    *wcapture.Recorder // always non-nil; recording under WithWorkloadCapture

	srv atomic.Pointer[serve.Server] // live serving front (nil unless Serve is up)

	closeOnce sync.Once
	closeErr  error
}

// New builds an in-memory adaptive index over values. The default
// configuration is database cracking with piece latches, one shard per
// CPU, and background group-apply maintenance; see the Option
// constructors for everything that can be changed. The returned Index
// must be Closed to stop the background maintenance worker.
func New(values []int64, opts ...Option) (*Index, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.durableOnly != "" {
		return nil, fmt.Errorf("adaptix: %s requires Open (durability options have no effect on an in-memory index)", cfg.durableOnly)
	}
	if cfg.values != nil {
		return nil, errors.New("adaptix: WithValues is for Open; pass the values to New directly")
	}
	ob := cfg.newObserver()
	cap, err := cfg.newRecorder(ob)
	if err != nil {
		return nil, err
	}
	col := shard.New(values, cfg.shardOptions(ob, cap))
	iopts := cfg.ingest
	iopts.Obs = ob
	ing := ingest.New(col, iopts)
	ing.Start()
	return newIndex(cfg, col, ing, nil, ob, cap), nil
}

// Open opens (or creates) a durable adaptive index in dir: a
// crash-recoverable store whose refinement knowledge — shard cuts and
// per-shard crack boundaries — survives process death through a
// file-backed structural WAL and periodic checkpoints. A fresh store
// is created over WithValues; an existing store recovers from its
// snapshot and log (ignoring WithValues). Close takes a final
// checkpoint, so a clean shutdown loses nothing; see WithLogWrites /
// WithSyncEvery / WithSyncInterval for the crash loss window of the
// data tail.
func Open(dir string, opts ...Option) (*Index, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	ob := cfg.newObserver()
	cap, err := cfg.newRecorder(ob)
	if err != nil {
		return nil, err
	}
	dopts := durable.Options{
		Values:          cfg.values,
		Shard:           cfg.shardOptions(ob, cap),
		Ingest:          cfg.ingest,
		SegmentBytes:    cfg.segmentBytes,
		CheckpointEvery: cfg.checkpointEvery,
		LogWrites:       cfg.logWrites,
		SyncEvery:       cfg.syncEvery,
		SyncInterval:    cfg.syncInterval,
		NoSync:          cfg.noSync,
	}
	dur, err := durable.Open(dir, dopts)
	if err != nil {
		cap.Close()
		return nil, err
	}
	return newIndex(cfg, dur.Column(), dur.Ingestor(), dur, ob, cap), nil
}

func newIndex(cfg *config, col *shard.Column, ing *ingest.Coordinator, dur *durable.Column, ob *metrics.Observer, cap *wcapture.Recorder) *Index {
	// Size the key-range heatmap and the workload characterizer to the
	// initial key domain (first-wins: later inserts outside it clamp to
	// the edge buckets). An empty index never installs a sketch;
	// recordings stay free no-ops.
	if lo, hi, ok := col.KeyDomain(); ok {
		ob.SetKeyDomain(lo, hi)
		cap.SetDomain(lo, hi)
	}
	cap.SetMethod(uint8(cfg.method))
	ix := &Index{
		method: cfg.method,
		col:    col,
		ing:    ing,
		dur:    dur,
		eng:    engine.NewShardedNamed(col, cfg.method.String()),
		obs:    ob,
		cap:    cap,
	}
	// The watchdog's epoch-depth sampler reads the live shard snapshot:
	// the longest per-shard chain and the total sealed-but-unapplied
	// epoch files across shards.
	ix.wd = health.New(cfg.healthOptions(), ob, func() (int64, int64) {
		var maxChain, sealed int64
		for _, st := range col.Snapshot() {
			if int64(st.Epochs) > maxChain {
				maxChain = int64(st.Epochs)
			}
			sealed += int64(st.SealedEpochs)
		}
		return maxChain, sealed
	})
	ix.wd.Start()
	return ix
}

// Method returns the adaptive-indexing method the handle was built
// with.
func (ix *Index) Method() Method { return ix.method }

// Count evaluates Q1 — select count(*) where lo <= A < hi — refining
// the index as a side effect. Cancellation before any work returns
// ctx.Err() with no side effects; a deadline expiring while the query
// is parked on a latch unparks it promptly; a query returning a
// non-nil error returns no answer.
func (ix *Index) Count(ctx context.Context, lo, hi int64) (Result, error) {
	return ix.eng.Count(ctx, lo, hi)
}

// Sum evaluates Q2 — select sum(A) where lo <= A < hi — with the same
// refinement side effects and context semantics as Count.
func (ix *Index) Sum(ctx context.Context, lo, hi int64) (Result, error) {
	return ix.eng.Sum(ctx, lo, hi)
}

// Insert adds one logical instance of v. The write lands in the owning
// shard's open differential epoch and is visible to queries
// immediately; it never parks behind a group-apply merge (writers roll
// over to the next epoch). A context cancelled before the write routes
// — or while the writer is parked behind a shard split or merge —
// returns ctx.Err() with the write not applied.
func (ix *Index) Insert(ctx context.Context, v int64) error {
	return ix.ing.Insert(ctx, v)
}

// Delete removes one logical instance of v, reporting whether one
// existed. Deletion is differential: an anti-matter record cancels one
// instance at query time.
func (ix *Index) Delete(ctx context.Context, v int64) (bool, error) {
	return ix.ing.DeleteValue(ctx, v)
}

// Apply routes a batch of write operations and returns the number of
// deletes that found an instance. On a context error the batch stops
// where it stands: ops already routed stay applied, the rest are not.
func (ix *Index) Apply(ctx context.Context, batch []Op) (int, error) {
	return ix.ing.Apply(ctx, batch)
}

// Stats returns an observability snapshot: per-shard refinement state,
// the write path's activity counters, and the latency quantiles of the
// always-on histograms. The per-shard views (Rows, Bounds, Shards) are
// read against one shard-map epoch, so they are mutually consistent
// even while the rebalancer is splitting or merging shards.
func (ix *Index) Stats() Stats {
	sv := ix.col.StatView()
	return Stats{
		Method:      ix.method,
		Rows:        sv.Rows,
		Bounds:      sv.Bounds,
		Shards:      sv.Shards,
		Ingest:      ix.ing.Stats(),
		Obs:         ix.obs.Summary(),
		Convergence: ix.convergence(),
		Workload:    ix.cap.Signature(),
	}
}

// convergence assembles the index-wide convergence readout from the
// observer's always-on instruments.
func (ix *Index) convergence() ConvergenceStats {
	ts := ix.obs.TouchedSnapshot()
	visited, covered := ix.obs.Routing()
	cs := ConvergenceStats{
		Series:     ix.obs.ConvergenceSeries(),
		TouchedP50: ts.Quantile(0.50),
		TouchedP99: ts.Quantile(0.99),
		Queries:    ts.Count(),
		Visits:     visited,
		Covered:    covered,
	}
	if visited > 0 {
		cs.CoveredFrac = float64(covered) / float64(visited)
	}
	return cs
}

// Health evaluates the watchdog's full rule catalog now and returns
// the report — the same document the endpoint's /health route serves
// (there with readiness semantics: HTTP 503 while any rule is
// degraded). Evaluation is cheap; under WithHealth a background loop
// additionally evaluates every HealthOptions.Interval.
func (ix *Index) Health() HealthReport { return ix.wd.Eval() }

// Observe returns the index's observability endpoint: an http.Handler
// serving Prometheus text exposition at /metrics, expvar JSON at
// /debug/vars, the standard pprof profiles under /debug/pprof/, the
// flight-recorder dump at /flight, a machine-readable live snapshot
// at /snapshot (what cmd/adaptixstat scrapes), and the watchdog
// report at /health (HTTP 200 while every rule passes, 503 once any
// rule degrades — usable directly as a readiness probe). Mount it
// wherever suits the process:
//
//	go http.ListenAndServe("localhost:6060", ix.Observe())
func (ix *Index) Observe() http.Handler {
	return obs.NewHandler(ix.obs,
		func() any { return ix.ObsSnapshot() },
		func() (any, bool) {
			r := ix.wd.Eval()
			return r, r.OK()
		},
		func() any { return ix.cap.Signature() })
}

// FlightDump returns the flight recorder's contents, oldest first: the
// most recent sampled query spans and every stall event (latch waits
// and writer parks over the stall threshold) plus structural
// operations. The recorder is a fixed-size ring and recording is
// wait-free, so dumping is safe at any time, including from a signal
// handler or after a test failure.
func (ix *Index) FlightDump() []FlightEvent { return ix.obs.Flight().Dump() }

// ObsSnapshot returns the live machine-readable snapshot served at the
// endpoint's /snapshot route.
func (ix *Index) ObsSnapshot() ObsSnapshot {
	st := ix.Stats()
	snap := ObsSnapshot{
		Method:      ix.method.String(),
		Rows:        st.Rows,
		Shards:      len(st.Shards),
		Ingest:      st.Ingest,
		Obs:         st.Obs,
		Convergence: st.Convergence,
		Workload:    st.Workload,
		Heatmap:     ix.obs.Heat(),
		ShardStats:  st.Shards,
	}
	if srv := ix.srv.Load(); srv != nil {
		ss := srv.Stats()
		snap.Serve = &ss
	}
	return snap
}

// ObsSnapshot is the JSON document served at the observability
// endpoint's /snapshot route and consumed by cmd/adaptixstat and
// cmd/crackviz.
type ObsSnapshot struct {
	// Method is the handle's adaptive-indexing method name.
	Method string `json:"method"`
	// Rows is the logical row count.
	Rows int `json:"rows"`
	// Shards is the current number of range partitions.
	Shards int `json:"shards"`
	// Ingest counts the write path's routed writes and structural
	// operations.
	Ingest IngestStats `json:"ingest"`
	// Obs is the quantile readout of the always-on histograms
	// (durations in nanoseconds).
	Obs ObsStats `json:"obs"`
	// Convergence is the index-wide convergence readout: the
	// bytes-touched decay series, rows-touched quantiles, and the
	// covered-aggregate hit rate.
	Convergence ConvergenceStats `json:"convergence"`
	// Workload is the live workload signature from the capture
	// recorder (the zero value unless WithWorkloadCapture armed it).
	Workload WorkloadStats `json:"workload"`
	// Heatmap is the key-range access sketch (zero-valued until the
	// key domain is known, i.e. for an index created empty).
	Heatmap HeatSnapshot `json:"heatmap"`
	// ShardStats is the per-shard refinement breakdown, in value order
	// — piece counts, piece-size profile, epoch-chain depth.
	ShardStats []ShardStat `json:"shard_stats"`
	// Serve is the serving front's readout, present only while a
	// network server (Index.Serve) is up.
	Serve *ServeStats `json:"serve,omitempty"`
}

// ConvergenceStats is the index-wide convergence readout (Stats and
// the /snapshot document): how fast queries stop touching unrefined
// data. A converging index shows Series decaying and CoveredFrac
// rising; a stagnating one (the watchdog's convergence-stagnation
// rule) shows Series flat while TouchedP50 stays high.
type ConvergenceStats struct {
	// Series is the mean rows touched per query, one point per window
	// of queries (oldest first, bounded ring — see the watchdog's
	// convergence rule for how stagnation is detected over it).
	Series []int64 `json:"series"`
	// TouchedP50 and TouchedP99 are rows-touched-per-query quantiles
	// over the whole run.
	TouchedP50 int64 `json:"touched_p50"`
	TouchedP99 int64 `json:"touched_p99"`
	// Queries is the number of queries the touched histogram observed.
	Queries int64 `json:"queries"`
	// Visits is the total number of shards the router selected; Covered
	// of those were answered from precomputed per-shard aggregates
	// without touching the shard's index.
	Visits  int64 `json:"visits"`
	Covered int64 `json:"covered"`
	// CoveredFrac is Covered/Visits (0 before any query).
	CoveredFrac float64 `json:"covered_frac"`
}

// Rows returns the number of logical rows currently in the index.
func (ix *Index) Rows() int { return ix.col.Rows() }

// NumShards returns the current number of range partitions (it changes
// over time under rebalancing).
func (ix *Index) NumShards() int { return ix.col.NumShards() }

// Validate checks every structural invariant of the index; it must be
// called while no queries or writes are in flight.
func (ix *Index) Validate() error { return ix.col.Validate() }

// CrackBoundaries returns every shard's current crack boundary values
// in shard order (nil for shards of non-Crack methods): the complete
// refinement knowledge the workload has earned, and exactly what a
// durable checkpoint persists.
func (ix *Index) CrackBoundaries() [][]int64 { return ix.col.CrackBoundaries() }

// Checkpoint forces a durability checkpoint now (durable indexes
// only): data snapshot, crack-boundary records, log-prefix truncation.
// It reports whether a checkpoint was written; an in-memory index
// always reports false.
func (ix *Index) Checkpoint() bool {
	if ix.dur == nil {
		return false
	}
	return ix.dur.Checkpoint()
}

// Recovered reports whether Open found an existing store in its
// directory (false for in-memory indexes and freshly created stores).
func (ix *Index) Recovered() bool { return ix.dur != nil && ix.dur.Recovered() }

// RecoveryStats returns the wall-clock breakdown of the Open that
// produced this index — checkpoint-snapshot load, structural-WAL scan,
// and column rebuild (warm crack replay plus the logged data tail).
// All zeros for in-memory indexes. The same three durations are
// published as observer gauges (adaptix_recovery_*_ns).
func (ix *Index) RecoveryStats() RecoveryBreakdown {
	if ix.dur == nil {
		return RecoveryBreakdown{}
	}
	return ix.dur.Recovery()
}

// Maintain runs one synchronous maintenance pass (group-applies and
// rebalancing) and returns the number of structural operations
// performed. Background maintenance runs anyway; Maintain is for tests
// and benchmarks that need a deterministic quiesce point.
func (ix *Index) Maintain() int { return ix.ing.Maintain() }

// Close stops background maintenance and, for durable indexes, takes a
// final checkpoint and closes the log. Idempotent and safe for
// concurrent use; later calls return the first call's error.
func (ix *Index) Close() error {
	ix.closeOnce.Do(func() {
		ix.wd.Stop()
		if ix.dur != nil {
			ix.closeErr = ix.dur.Close()
		} else {
			ix.ing.Close()
		}
		// Stop capture last so writes flushed by Close are still
		// recorded, then drain the trace sink.
		if err := ix.cap.Close(); err != nil && ix.closeErr == nil {
			ix.closeErr = err
		}
	})
	return ix.closeErr
}

// Stats is the Index observability snapshot. Rows, Bounds, and Shards
// are taken against one shard-map epoch and are mutually consistent.
type Stats struct {
	// Method is the handle's adaptive-indexing method.
	Method Method
	// Rows is the logical row count (insertions minus matched
	// deletions) summed over the same shard snapshots listed in Shards.
	Rows int
	// Bounds holds the shard-map cut values: shard i owns
	// [Bounds[i-1], Bounds[i]), with open first and last ranges.
	Bounds []int64
	// Shards holds one refinement-state snapshot per shard, in value
	// order.
	Shards []ShardStat
	// Ingest counts the write path's routed writes and structural
	// operations.
	Ingest IngestStats
	// Obs is the quantile readout of the always-on latency histograms:
	// writer-stall and fan-out critical-path p99s, latch-wait p99, the
	// Figure 15 wait-vs-crack split, and the stall counters. End-to-end
	// query latency quantiles are populated only under
	// WithObservability (tracing).
	Obs ObsStats
	// Convergence is the index-wide convergence readout: the
	// rows-touched decay series, touched quantiles, and the
	// covered-aggregate hit rate.
	Convergence ConvergenceStats
	// Workload is the live workload signature (read/write mix,
	// selectivity, locality, sequentiality) the capture recorder has
	// characterized — the zero value unless WithWorkloadCapture armed
	// it.
	Workload WorkloadStats
}

// newSource builds the per-shard index factory for a method (nil for
// Crack: the sharded column's native cracked shards).
func (c *config) newSource() func(values []int64) engine.AggregateSource {
	switch c.method {
	case AMerge:
		mo := c.merge
		return func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(amerge.New(values, mo))
		}
	case Hybrid:
		ho := c.hybrid
		return func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(hybrid.New(values, ho))
		}
	case Sort:
		return func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(baseline.NewFullSort(values))
		}
	case Scan:
		return func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(baseline.NewScan(values))
		}
	default:
		return nil
	}
}
