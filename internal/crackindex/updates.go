package crackindex

import (
	"sync"
	"sync/atomic"

	"adaptix/internal/epoch"
)

// Differential updates.
//
// The paper's read-only experiments defer update algorithms to the
// "Updating a cracked database" work [21] and note (§4.2) that
// adaptive indexing "relies on a form of differential files [30] for
// high update rates". This file implements exactly that: logical
// inserts and deletes accumulate in small sorted pending arrays (the
// differential file) and every query merges their effect into its
// answer. The physical cracker array — the index *structure* — is
// untouched, so all concurrency-control machinery for refinement keeps
// working unchanged while contents change; pending updates are guarded
// by their own short read-write latch, acquired only outside any piece
// latch (no lock-order cycles by construction).
//
// A user transaction that wants classical isolation for its updates
// takes an X lock on the column through the lock manager; the
// refinement LockProbe then makes concurrent queries forgo structural
// changes while the update is in flight (§3.3).

// pendingUpdates is the differential file: sorted multisets of
// inserted and deleted values.
type pendingUpdates struct {
	mu  sync.RWMutex
	ins []int64
	del []int64
}

// pendingTotal mirrors len(ins)+len(del) for a latch-free fast path.
type pendingCounter struct {
	n atomic.Int64
}

// Insert adds one logical instance of v to the column's contents.
// The index structure is not touched: the value lands in the
// differential file and is merged into every query answer.
func (ix *Index) Insert(v int64) {
	ix.pend.mu.Lock()
	ix.pend.ins = epoch.InsertSorted(ix.pend.ins, v)
	ix.pend.mu.Unlock()
	ix.pendN.n.Add(1)
}

// DeleteValue removes one logical instance of v, reporting whether
// one existed. Deletion is also differential: a deletion marker
// ("anti-matter" in the paper's §4.2 terminology) joins the pending
// file and cancels one instance at query time.
func (ix *Index) DeleteValue(v int64) bool {
	// The base count cracks the column as a side effect — a single
	// user operation both querying and optimizing the index (§3).
	oc := opCtx{}
	base := ix.countBase(&oc, v, v+1)
	ix.pend.mu.Lock()
	defer ix.pend.mu.Unlock()
	logical := base + epoch.CountRange(ix.pend.ins, v, v+1) - epoch.CountRange(ix.pend.del, v, v+1)
	if logical <= 0 {
		return false
	}
	ix.pend.del = epoch.InsertSorted(ix.pend.del, v)
	ix.pendN.n.Add(1)
	return true
}

// PendingUpdates returns the number of pending (inserts, deletes).
func (ix *Index) PendingUpdates() (inserts, deletes int) {
	ix.pend.mu.RLock()
	defer ix.pend.mu.RUnlock()
	return len(ix.pend.ins), len(ix.pend.del)
}

// PendingSnapshot returns copies of the sorted pending insert and
// delete multisets. The differential file is not cleared: a group
// merge snapshots the pending updates of a write-sealed index, builds
// a replacement index with them applied, and atomically swaps it in,
// so the old index keeps answering correctly for readers that still
// hold it. (The sharded column versions its differential outside the
// index — internal/epoch — and leaves this per-index file empty.)
func (ix *Index) PendingSnapshot() (ins, del []int64) {
	ix.pend.mu.RLock()
	defer ix.pend.mu.RUnlock()
	return append([]int64(nil), ix.pend.ins...), append([]int64(nil), ix.pend.del...)
}

// CrackAt ensures a crack boundary exists at value v, refining the
// index without answering a query. It is the replay primitive for
// boundary knowledge: recovery and shard rebuilds re-crack a fresh
// index at the boundaries an earlier index had earned, so the side
// effects of earlier queries survive a rebuild (paper §4.2).
func (ix *Index) CrackAt(v int64) {
	ctx := opCtx{}
	ix.ensureInit(&ctx)
	if ix.opts.Latching != LatchPiece {
		ix.crackBoundExclusive(v, &ctx)
		return
	}
	ix.crackBound(v, &ctx)
}

// pendingCountAdj returns the count adjustment for [lo, hi).
func (ix *Index) pendingCountAdj(lo, hi int64) int64 {
	if ix.pendN.n.Load() == 0 {
		return 0
	}
	ix.pend.mu.RLock()
	defer ix.pend.mu.RUnlock()
	return epoch.CountRange(ix.pend.ins, lo, hi) - epoch.CountRange(ix.pend.del, lo, hi)
}

// pendingSumAdj returns the sum adjustment for [lo, hi).
func (ix *Index) pendingSumAdj(lo, hi int64) int64 {
	if ix.pendN.n.Load() == 0 {
		return 0
	}
	ix.pend.mu.RLock()
	defer ix.pend.mu.RUnlock()
	return epoch.SumRange(ix.pend.ins, lo, hi) - epoch.SumRange(ix.pend.del, lo, hi)
}
