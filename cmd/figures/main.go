// Command figures regenerates the experimental figures of
// "Concurrency Control for Adaptive Indexing" (VLDB 2012, §6).
//
// Usage:
//
//	figures [-fig 11|12|13|14|15|ablations|rwmix|collision|replay|serve|all] [-rows N] [-queries N] [-seed N]
//
// The paper ran 100M rows on a 4-core i7-2600; the default here is 1M
// rows so every figure regenerates in seconds. Absolute times differ
// from the paper, the qualitative shapes (who wins, crossovers,
// decay) are the reproduction target; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"adaptix/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 11, 12, 13, 14, 15, ablations, rwmix, collision, replay, serve, or all")
	rows := flag.Int("rows", 1<<20, "base table size (paper: 100M)")
	queries := flag.Int("queries", 1024, "query sequence length (paper: 1024)")
	seed := flag.Uint64("seed", 42, "workload seed")
	clients := flag.Int("clients", 8, "client count for the ablation run")
	flag.Parse()

	cfg := experiments.Config{Rows: *rows, Queries: *queries, Seed: *seed}
	fmt.Printf("adaptix figures: %d rows, %d queries, %d cores (GOMAXPROCS)\n\n",
		*rows, *queries, runtime.GOMAXPROCS(0))

	out := os.Stdout
	ran := false
	if *fig == "11" || *fig == "all" {
		experiments.Fig11(cfg, out)
		ran = true
	}
	if *fig == "12" || *fig == "all" {
		experiments.Fig12(cfg, out)
		ran = true
	}
	if *fig == "13" || *fig == "all" {
		experiments.Fig13(cfg, out)
		ran = true
	}
	if *fig == "14" || *fig == "all" {
		experiments.Fig14(cfg, out)
		ran = true
	}
	if *fig == "15" || *fig == "all" {
		experiments.Fig15(cfg, out)
		ran = true
	}
	if *fig == "ablations" || *fig == "all" {
		experiments.Ablations(cfg, *clients, out)
		ran = true
	}
	if *fig == "rwmix" || *fig == "all" {
		experiments.ReadWriteMix(cfg, out)
		ran = true
	}
	if *fig == "collision" || *fig == "all" {
		experiments.WriterCollision(cfg, out)
		ran = true
	}
	if *fig == "replay" || *fig == "all" {
		experiments.ReplayAB(cfg, out)
		ran = true
	}
	if *fig == "serve" || *fig == "all" {
		experiments.ServeBatching(cfg, out)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}
