package adaptix_test

import (
	"sync"
	"testing"

	"adaptix"
)

func TestPublicAPIQuickstart(t *testing.T) {
	d := adaptix.NewUniqueDataset(10000, 1)
	col := adaptix.NewCrackedColumn(d.Values, adaptix.CrackOptions{Latching: adaptix.LatchPiece})
	n, st := col.Count(1000, 4000)
	if n != 3000 {
		t.Fatalf("Count = %d", n)
	}
	if st.Crack == 0 {
		t.Fatal("first query should refine")
	}
	s, _ := col.Sum(1000, 4000)
	if want := int64((1000 + 3999) * 3000 / 2); s != want {
		t.Fatalf("Sum = %d, want %d", s, want)
	}
}

func TestPublicAPIEngines(t *testing.T) {
	d := adaptix.NewUniqueDataset(20000, 2)
	qs := adaptix.UniformQueries(adaptix.SumQuery, d.Domain, 0.01, 5, 32)
	engines := []adaptix.Engine{
		adaptix.NewScanEngine(d.Values),
		adaptix.NewFullSortEngine(d.Values),
		adaptix.NewCrackEngine(adaptix.NewCrackedColumn(d.Values, adaptix.CrackOptions{})),
		adaptix.NewMergeIndex(d.Values, adaptix.MergeOptions{RunSize: 1 << 10}),
		adaptix.NewHybridIndex(d.Values, adaptix.HybridOptions{PartitionSize: 1 << 10}),
		adaptix.NewShardedEngine(adaptix.NewShardedColumn(d.Values, adaptix.ShardOptions{Shards: 4})),
	}
	var checksums []int64
	for _, e := range engines {
		run := adaptix.Run(e, qs, 4)
		checksums = append(checksums, run.Checksum)
	}
	for i := 1; i < len(checksums); i++ {
		if checksums[i] != checksums[0] {
			t.Fatalf("engine %d disagrees: %d vs %d", i, checksums[i], checksums[0])
		}
	}
}

func TestPublicAPISharded(t *testing.T) {
	d := adaptix.NewUniqueDataset(20000, 6)
	col := adaptix.NewShardedColumn(d.Values, adaptix.ShardOptions{Shards: 4, Seed: 3})
	n, _ := col.Count(1000, 4000)
	if n != 3000 {
		t.Fatalf("Count = %d", n)
	}
	s, _ := col.Sum(1000, 4000)
	if want := int64((1000 + 3999) * 3000 / 2); s != want {
		t.Fatalf("Sum = %d, want %d", s, want)
	}
	stats := col.Snapshot()
	if len(stats) != col.NumShards() {
		t.Fatalf("Snapshot has %d entries for %d shards", len(stats), col.NumShards())
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIColumnStore(t *testing.T) {
	tab := adaptix.NewTable("R")
	a := adaptix.NewUniqueDataset(5000, 3)
	bd := adaptix.NewUniqueDataset(5000, 4)
	if err := tab.AddColumn("A", a.Values); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("B", bd.Values); err != nil {
		t.Fatal(err)
	}
	ex := adaptix.NewExecutor(tab, adaptix.CrackOptions{Latching: adaptix.LatchPiece})
	got, _, err := ex.SumFetchWhere("B", "A", 100, 900)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i, v := range a.Values {
		if v >= 100 && v < 900 {
			want += bd.Values[i]
		}
	}
	if got != want {
		t.Fatalf("SumFetchWhere = %d, want %d", got, want)
	}
}

func TestPublicAPITransactions(t *testing.T) {
	tm := adaptix.NewTxnManager()
	u := tm.Begin(0) // user
	if err := u.LockHierarchy([]string{"db", "db/R", "db/R/A"}, adaptix.XLk); err != nil {
		t.Fatal(err)
	}
	if !tm.Locks().HasConflicting("db/R/A", adaptix.SLk, 0) {
		t.Fatal("lock invisible")
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIConcurrentTrace(t *testing.T) {
	d := adaptix.NewUniqueDataset(50000, 9)
	var mu sync.Mutex
	var events int
	col := adaptix.NewCrackedColumn(d.Values, adaptix.CrackOptions{
		Latching: adaptix.LatchPiece,
		Tracer: func(adaptix.TraceEvent) {
			mu.Lock()
			events++
			mu.Unlock()
		},
	})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			qs := adaptix.UniformQueries(adaptix.SumQuery, d.Domain, 0.01, uint64(c+1), 16)
			for _, q := range qs {
				want := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
				if s, _ := col.Sum(q.Lo, q.Hi); s != want {
					panic("sum mismatch")
				}
			}
		}(c)
	}
	wg.Wait()
	if events == 0 {
		t.Fatal("no trace events")
	}
}

func TestPublicAPIStructuralLog(t *testing.T) {
	log := adaptix.NewStructuralLog()
	tm := adaptix.NewTxnManager()
	d := adaptix.NewUniqueDataset(5000, 11)
	ix := adaptix.NewMergeIndex(d.Values, adaptix.MergeOptions{
		RunSize: 1 << 9, Log: log, TxnMgr: tm,
	})
	ix.Sum(1000, 2000)
	if log.Len() == 0 {
		t.Fatal("nothing logged")
	}
}

func TestPublicAPIDurable(t *testing.T) {
	dir := t.TempDir()
	d := adaptix.NewUniqueDataset(1<<12, 29)
	c, err := adaptix.Open(dir, adaptix.DurableOptions{
		Values: d.Values,
		Shard:  adaptix.ShardOptions{Shards: 4, Seed: 5},
		NoSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := c.Count(100, 900); st.Skipped {
		t.Fatal("unexpected skip")
	}
	if err := c.Insert(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := adaptix.Open(dir, adaptix.DurableOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovered() {
		t.Fatal("reopen did not recover")
	}
	if n, _ := re.Count(100, 900); n != d.TrueCount(100, 900) {
		t.Fatalf("Count = %d, want %d", n, d.TrueCount(100, 900))
	}
	if n, _ := re.Count(1<<20, 1<<20+1); n != 1 {
		t.Fatalf("checkpointed insert lost: Count = %d, want 1", n)
	}
}

func TestPublicAPIIngest(t *testing.T) {
	d := adaptix.NewUniqueDataset(1<<13, 13)
	log := adaptix.NewStructuralLog()
	col := adaptix.NewShardedColumn(d.Values, adaptix.ShardOptions{Shards: 4, Seed: 5})
	ing := adaptix.NewIngestor(col, adaptix.IngestOptions{
		Name: "R.A", Log: log, ApplyThreshold: 64, MinShardRows: 256, SplitFactor: 1.5,
	})
	before, _ := col.Count(0, d.Domain)
	for i := 0; i < 2000; i++ {
		if err := ing.Insert(int64(i % 50)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ing.Apply([]adaptix.IngestOp{
		{Value: 1}, {Delete: true, Value: 1},
	}); err != nil {
		t.Fatal(err)
	}
	ing.Maintain()
	after, _ := col.Count(0, d.Domain)
	if after != before+2000 {
		t.Fatalf("Count = %d after storm, want %d", after, before+2000)
	}
	st := ing.Stats()
	if st.Applied == 0 || st.Splits == 0 {
		t.Fatalf("expected group applies and splits, got %+v", st)
	}
	if log.Len() == 0 {
		t.Fatal("nothing logged")
	}
	rebuilt := adaptix.NewShardedColumnWithBounds(d.Values, col.Bounds(), adaptix.ShardOptions{})
	if rebuilt.NumShards() != col.NumShards() {
		t.Fatalf("rebuilt shards %d, live %d", rebuilt.NumShards(), col.NumShards())
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}
