package column

import (
	"sync"
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/workload"
)

func buildTable(t *testing.T, n int) (*Table, *workload.Dataset, *workload.Dataset) {
	t.Helper()
	tab := NewTable("R")
	a := workload.NewUniqueUniform(n, 1)
	b := workload.NewUniqueUniform(n, 2)
	if err := tab.AddColumn("A", a.Values); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("B", b.Values); err != nil {
		t.Fatal(err)
	}
	return tab, a, b
}

func TestTableBasics(t *testing.T) {
	tab := NewTable("R")
	if tab.Rows() != 0 {
		t.Fatal("empty table has rows")
	}
	if err := tab.AddColumn("A", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 3 || tab.Name() != "R" {
		t.Fatal("bad table shape")
	}
	if err := tab.AddColumn("A", []int64{4, 5, 6}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := tab.AddColumn("B", []int64{1}); err == nil {
		t.Fatal("misaligned column accepted")
	}
	if _, err := tab.Column("missing"); err == nil {
		t.Fatal("missing column lookup succeeded")
	}
	c, err := tab.Column("A")
	if err != nil || c.Name() != "A" || c.Len() != 3 {
		t.Fatal("bad column lookup")
	}
}

func TestColumnFetch(t *testing.T) {
	c := &Column{name: "X", vals: []int64{10, 20, 30, 40}}
	got := c.Fetch(nil, []uint32{3, 0, 2})
	if len(got) != 3 || got[0] != 40 || got[1] != 10 || got[2] != 30 {
		t.Fatalf("Fetch = %v", got)
	}
}

func TestExecutorCountSum(t *testing.T) {
	tab, a, _ := buildTable(t, 5000)
	ex := NewExecutor(tab, crackindex.Options{Latching: crackindex.LatchPiece})
	lo, hi := int64(1000), int64(2500)
	n, _, err := ex.CountWhere("A", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if want := a.TrueCount(lo, hi); n != want {
		t.Fatalf("CountWhere = %d, want %d", n, want)
	}
	s, _, err := ex.SumWhere("A", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if want := a.TrueSum(lo, hi); s != want {
		t.Fatalf("SumWhere = %d, want %d", s, want)
	}
}

func TestExecutorFig6Plan(t *testing.T) {
	// select sum(B) from R where lo <= A < hi, verified by brute force.
	tab, a, b := buildTable(t, 4000)
	ex := NewExecutor(tab, crackindex.Options{Latching: crackindex.LatchPiece})
	lo, hi := int64(500), int64(1500)
	got, _, err := ex.SumFetchWhere("B", "A", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i, v := range a.Values {
		if v >= lo && v < hi {
			want += b.Values[i]
		}
	}
	if got != want {
		t.Fatalf("SumFetchWhere = %d, want %d", got, want)
	}
	// The select column now has a cracker index; B does not.
	if _, ok := ex.Index("A"); !ok {
		t.Fatal("no index created for selection column A")
	}
	if _, ok := ex.Index("B"); ok {
		t.Fatal("index created for non-selection column B")
	}
}

func TestExecutorSidewaysPlan(t *testing.T) {
	tab, a, b := buildTable(t, 6000)
	ex := NewExecutor(tab, crackindex.Options{Latching: crackindex.LatchPiece})
	lo, hi := int64(1000), int64(2500)
	var want int64
	for i, v := range a.Values {
		if v >= lo && v < hi {
			want += b.Values[i]
		}
	}
	// The sideways plan and the fetch plan must agree with brute force.
	s1, _, err := ex.SumSidewaysWhere("B", "A", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := ex.SumFetchWhere("B", "A", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != want || s2 != want {
		t.Fatalf("sideways %d, fetch %d, want %d", s1, s2, want)
	}
	if ex.SidewaysMaps() != 1 {
		t.Fatalf("maps = %d", ex.SidewaysMaps())
	}
	if _, _, err := ex.SumSidewaysWhere("missing", "A", 0, 1); err == nil {
		t.Fatal("missing agg column accepted")
	}
	if _, _, err := ex.SumSidewaysWhere("B", "missing", 0, 1); err == nil {
		t.Fatal("missing sel column accepted")
	}
}

func TestExecutorErrors(t *testing.T) {
	tab, _, _ := buildTable(t, 100)
	ex := NewExecutor(tab, crackindex.Options{})
	if _, _, err := ex.CountWhere("missing", 0, 1); err == nil {
		t.Fatal("CountWhere on missing column succeeded")
	}
	if _, _, err := ex.SumFetchWhere("missing", "A", 0, 1); err == nil {
		t.Fatal("SumFetchWhere with missing agg column succeeded")
	}
	if _, _, err := ex.SumFetchWhere("A", "missing", 0, 1); err == nil {
		t.Fatal("SumFetchWhere with missing sel column succeeded")
	}
}

func TestExecutorConcurrentMixedPlan(t *testing.T) {
	tab, a, b := buildTable(t, 20000)
	ex := NewExecutor(tab, crackindex.Options{Latching: crackindex.LatchPiece})
	// Brute-force reference for sum(B) given A-range.
	ref := func(lo, hi int64) int64 {
		var s int64
		for i, v := range a.Values {
			if v >= lo && v < hi {
				s += b.Values[i]
			}
		}
		return s
	}
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(c + 99))
			for i := 0; i < 30; i++ {
				lo := r.Int64n(15000)
				hi := lo + 1 + r.Int64n(4000)
				switch i % 3 {
				case 0:
					n, _, _ := ex.CountWhere("A", lo, hi)
					if n != a.TrueCount(lo, hi) {
						errc <- "count mismatch"
						return
					}
				case 1:
					s, _, _ := ex.SumWhere("A", lo, hi)
					if s != a.TrueSum(lo, hi) {
						errc <- "sum mismatch"
						return
					}
				case 2:
					s, _, _ := ex.SumFetchWhere("B", "A", lo, hi)
					if s != ref(lo, hi) {
						errc <- "fetch-sum mismatch"
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for e := range errc {
		t.Fatal(e)
	}
}
