package wal

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAppendAssignsLSNs(t *testing.T) {
	l := New(nil)
	for i := 1; i <= 5; i++ {
		lsn, err := l.Append(Record{Kind: CrackBoundary, Object: "R.A", A: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("LSN = %d, want %d", lsn, i)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	recs := l.Records()
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.A != int64(i+1) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(txn uint64, kind uint8, obj string, a, b, c int64) bool {
		r := Record{LSN: 7, Txn: txn, Kind: Kind(kind%6 + 1), Object: obj, A: a, B: b, C: c}
		got, n, err := Decode(Encode(r))
		return err == nil && n == len(Encode(r)) && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := Encode(Record{LSN: 1, Kind: RunCreated, Object: "idx", A: 3, B: 100})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncated decode at %d succeeded", cut)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	enc := Encode(Record{LSN: 1, Kind: MergeStep, Object: "idx", A: 1, B: 2, C: 3})
	enc[len(enc)-2] ^= 0xFF // flip a payload byte, checksum now wrong
	if _, _, err := Decode(enc); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestReplayStopsAtCrashedTail(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Append(Record{Txn: 1, Kind: CrackBoundary, Object: "R.A", A: 10})
	l.Append(Record{Txn: 1, Kind: CrackBoundary, Object: "R.A", A: 20})
	raw := buf.Bytes()
	// Simulate a crash mid-write of a third record.
	partial := append(append([]byte{}, raw...), Encode(Record{Txn: 1, Kind: CrackBoundary, A: 30})[:5]...)
	var seen []int64
	n, err := Replay(partial, func(r Record) { seen = append(seen, r.A) })
	if err != nil || n != 2 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	if len(seen) != 2 || seen[0] != 10 || seen[1] != 20 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestRecoverRebuildsCatalog(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	// Committed system txn 1: two boundaries + one run.
	l.Append(Record{Txn: 1, Kind: BeginSystem})
	l.Append(Record{Txn: 1, Kind: CrackBoundary, Object: "R.A", A: 100})
	l.Append(Record{Txn: 1, Kind: CrackBoundary, Object: "R.A", A: 200})
	l.Append(Record{Txn: 1, Kind: RunCreated, Object: "pbtree", A: 1, B: 5000})
	l.Append(Record{Txn: 1, Kind: CommitSystem})
	// Uncommitted system txn 2: must be ignored.
	l.Append(Record{Txn: 2, Kind: BeginSystem})
	l.Append(Record{Txn: 2, Kind: CrackBoundary, Object: "R.A", A: 999})
	// Autonomous record: applied directly.
	l.Append(Record{Txn: 0, Kind: RunCreated, Object: "pbtree", A: 2, B: 4096})

	cat, err := Recover(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	bs := cat.Boundaries["R.A"]
	if len(bs) != 2 || bs[0] != 100 || bs[1] != 200 {
		t.Fatalf("boundaries = %v", bs)
	}
	ps := cat.Partitions["pbtree"]
	if len(ps) != 2 || ps[0] != 1 || ps[1] != 2 {
		t.Fatalf("partitions = %v", ps)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		BeginSystem: "begin-system", CommitSystem: "commit-system",
		CrackBoundary: "crack-boundary", RunCreated: "run-created",
		MergeStep: "merge-step", Checkpoint: "checkpoint",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestStructuralOnlyNoContents(t *testing.T) {
	// A crack of a 1M-value column logs ONE small record, independent
	// of data size — the §4.2 "no logging of index contents" property.
	enc := Encode(Record{Txn: 1, Kind: CrackBoundary, Object: "R.verylongcolumnname", A: 123456})
	if len(enc) > 128 {
		t.Fatalf("structural record is %d bytes; contents are being logged?", len(enc))
	}
}

// --- Shard-map structural records (internal/ingest) ---

func encodeAll(recs []Record) []byte {
	var raw []byte
	for _, r := range recs {
		raw = append(raw, Encode(r)...)
	}
	return raw
}

func TestRecoverShardMap(t *testing.T) {
	raw := encodeAll([]Record{
		// Bootstrap map {100, 200} in one committed system txn.
		{Txn: 1, Kind: BeginSystem, Object: "R.A"},
		{Txn: 1, Kind: ShardSplit, Object: "R.A", A: 100},
		{Txn: 1, Kind: ShardSplit, Object: "R.A", A: 200},
		{Txn: 1, Kind: CommitSystem, Object: "R.A"},
		// A committed group apply.
		{Txn: 2, Kind: BeginSystem, Object: "R.A"},
		{Txn: 2, Kind: ShardInsert, Object: "R.A", A: 1, B: 64, C: 8},
		{Txn: 2, Kind: CommitSystem, Object: "R.A"},
		// A committed split at 150 then a committed merge removing 200.
		{Txn: 3, Kind: BeginSystem, Object: "R.A"},
		{Txn: 3, Kind: ShardSplit, Object: "R.A", A: 150, B: 500, C: 480},
		{Txn: 3, Kind: CommitSystem, Object: "R.A"},
		{Txn: 4, Kind: BeginSystem, Object: "R.A"},
		{Txn: 4, Kind: ShardMerge, Object: "R.A", A: 200, B: 900},
		{Txn: 4, Kind: CommitSystem, Object: "R.A"},
	})
	cat, err := Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 150}
	got := cat.ShardBounds["R.A"]
	if len(got) != len(want) {
		t.Fatalf("ShardBounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ShardBounds = %v, want %v", got, want)
		}
	}
	if cat.ShardApplies["R.A"] != 1 {
		t.Errorf("ShardApplies = %d, want 1", cat.ShardApplies["R.A"])
	}
}

func TestRecoverIgnoresUncommittedRebalance(t *testing.T) {
	// A crash mid-rebalance: the split's system transaction began and
	// logged its record, but never committed. Recovery must not apply
	// it — an aborted structural operation leaves no trace.
	raw := encodeAll([]Record{
		{Txn: 1, Kind: BeginSystem, Object: "R.A"},
		{Txn: 1, Kind: ShardSplit, Object: "R.A", A: 100},
		{Txn: 1, Kind: CommitSystem, Object: "R.A"},
		{Txn: 2, Kind: BeginSystem, Object: "R.A"},
		{Txn: 2, Kind: ShardSplit, Object: "R.A", A: 300},
		// no CommitSystem: crashed mid-rebalance
	})
	cat, err := Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.ShardBounds["R.A"]; len(got) != 1 || got[0] != 100 {
		t.Fatalf("ShardBounds = %v, want [100]", got)
	}
}

func TestRecoverTruncatedMidRebalance(t *testing.T) {
	full := encodeAll([]Record{
		{Txn: 1, Kind: BeginSystem, Object: "R.A"},
		{Txn: 1, Kind: ShardSplit, Object: "R.A", A: 100},
		{Txn: 1, Kind: CommitSystem, Object: "R.A"},
	})
	commitRec := Encode(Record{Txn: 2, Kind: CommitSystem, Object: "R.A"})
	raw := append(append([]byte{}, full...),
		Encode(Record{Txn: 2, Kind: BeginSystem, Object: "R.A"})...)
	raw = append(raw, Encode(Record{Txn: 2, Kind: ShardSplit, Object: "R.A", A: 300})...)
	raw = append(raw, commitRec[:len(commitRec)-5]...) // torn commit record

	n, err := Replay(raw, func(Record) {})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("Replay applied %d records, want 5 (torn tail dropped)", n)
	}
	cat, err := Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	// The second split's commit was torn off: only the first cut
	// survives recovery.
	if got := cat.ShardBounds["R.A"]; len(got) != 1 || got[0] != 100 {
		t.Fatalf("ShardBounds = %v, want [100]", got)
	}
}

func TestRecoverCorruptMidRebalance(t *testing.T) {
	prefix := encodeAll([]Record{
		{Txn: 1, Kind: BeginSystem, Object: "R.A"},
		{Txn: 1, Kind: ShardMerge, Object: "R.A", A: 100},
		{Txn: 1, Kind: CommitSystem, Object: "R.A"},
	})
	tail := encodeAll([]Record{
		{Txn: 2, Kind: BeginSystem, Object: "R.A"},
		{Txn: 2, Kind: ShardSplit, Object: "R.A", A: 300},
		{Txn: 2, Kind: CommitSystem, Object: "R.A"},
	})
	tail[3] ^= 0xFF // corrupt the tail's first record
	raw := append(append([]byte{}, prefix...), tail...)

	cat, err := Recover(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Replay stops at the corrupt record: the merge of cut 100 applies
	// (removing nothing from an empty map), the split of 300 does not.
	if got := cat.ShardBounds["R.A"]; len(got) != 0 {
		t.Fatalf("ShardBounds = %v, want empty", got)
	}
}

func TestShardKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		ShardInsert: "shard-insert",
		ShardSplit:  "shard-split",
		ShardMerge:  "shard-merge",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
