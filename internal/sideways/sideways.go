// Package sideways implements sideways cracking — adaptive indexing
// for multi-column plans (Idreos et al., SIGMOD 2009; reference [22]
// of the paper). The paper's §5 states that its concurrency-control
// techniques "apply as is to the rest of the column-store designs for
// adaptive indexing ... because [they] maintain the same underlying
// philosophy and follow the same column-store model"; this package
// demonstrates that claim.
//
// A cracker map M(A,B) is an auxiliary structure of aligned (A, B)
// pairs, physically reorganized on A as a side effect of queries with
// predicates on A that project B. After cracking, the qualifying B
// values are contiguous, so plans of the form
//
//	select sum(B) from R where lo <= A < hi
//
// need no positional fetch against the base columns at all — the map
// self-organizes into exactly the access pattern the workload needs.
//
// Concurrency control uses the paper's column-latch protocol (§5.3):
// the crack select takes the map's write latch, then downgrades to a
// shared latch for the aggregation; under conflict avoidance the crack
// is optional and the query falls back to a read-latched predicate
// scan. Maps are tracked in a registry guarded by a global latch, like
// the cracker-index registry.
package sideways

import (
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/avltree"
	"adaptix/internal/cracker"
	"adaptix/internal/latch"
)

// ConflictPolicy selects waiting versus conflict avoidance for the
// optional crack.
type ConflictPolicy int

const (
	// Wait blocks on the map's write latch.
	Wait ConflictPolicy = iota
	// Skip forgoes cracking when the latch is contended.
	Skip
)

// Options configures a cracker map.
type Options struct {
	// OnConflict selects waiting versus conflict avoidance.
	OnConflict ConflictPolicy
}

// OpStats is the per-operation cost breakdown.
type OpStats struct {
	// Wait is time spent blocked on the map latch.
	Wait time.Duration
	// Crack is time spent reorganizing the map.
	Crack time.Duration
	// Skipped reports that the optional crack was forgone.
	Skipped bool
}

// Map is one cracker map M(head, tail).
type Map struct {
	opts Options
	hdr  []int64 // base head column (not copied until first query)
	tlr  []int64 // base tail column

	lt       *latch.Latch
	initDone atomic.Bool

	// Structure: guarded by the write latch (mutations) and readable
	// under either latch mode; toc maps boundary value -> position.
	arr *cracker.DualArray
	toc *avltree.Tree[int]

	cracks atomic.Int64
}

// NewMap creates a cracker map over aligned head/tail columns. The
// map materializes lazily on the first query (self-organization is a
// query side effect).
func NewMap(head, tail []int64, opts Options) *Map {
	if len(head) != len(tail) {
		panic("sideways: misaligned columns")
	}
	return &Map{
		opts: opts,
		hdr:  head,
		tlr:  tail,
		lt:   latch.New(latch.MiddleFirst),
		toc:  &avltree.Tree[int]{},
	}
}

// Cracks returns the number of crack actions performed.
func (m *Map) Cracks() int64 { return m.cracks.Load() }

// Boundaries returns the number of crack boundaries in the map.
func (m *Map) Boundaries() int {
	m.lt.RLock()
	defer m.lt.RUnlock()
	return m.toc.Len()
}

// Initialized reports whether the map has been materialized.
func (m *Map) Initialized() bool { return m.initDone.Load() }

// ensureInit materializes the (head, tail) pairs under the write
// latch, charging the copy to the first query's crack time.
func (m *Map) ensureInit(st *OpStats) {
	if m.initDone.Load() {
		return
	}
	w := m.lt.Lock(0)
	if m.initDone.Load() {
		m.lt.Unlock()
		st.Wait += w
		return
	}
	start := time.Now()
	m.arr = cracker.NewDual(m.hdr, m.tlr)
	m.initDone.Store(true)
	st.Crack += time.Since(start)
	m.lt.Unlock()
}

// crackBoundLocked ensures a boundary at v; caller holds the write
// latch.
func (m *Map) crackBoundLocked(v int64) int {
	if pos, ok := m.toc.Get(v); ok {
		return pos
	}
	lo, hi := 0, m.arr.Len()
	if _, p, ok := m.toc.Floor(v); ok {
		lo = p
	}
	if _, p, ok := m.toc.Ceiling(v); ok {
		hi = p
	}
	pos := m.arr.CrackInTwo(lo, hi, v)
	m.toc.Insert(v, pos)
	m.cracks.Add(1)
	return pos
}

// SumTargetWhere evaluates select sum(tail) where lo <= head < hi.
// The map is cracked on (lo, hi) as a side effect; the aggregation
// runs under a downgraded (shared) latch over the now-contiguous
// qualifying pairs.
func (m *Map) SumTargetWhere(lo, hi int64) (int64, OpStats) {
	var st OpStats
	if lo >= hi {
		return 0, st
	}
	m.ensureInit(&st)

	acquired := true
	if m.opts.OnConflict == Skip {
		acquired = m.lt.TryLock()
	} else {
		st.Wait += m.lt.Lock(lo)
	}
	if !acquired {
		// Conflict avoidance: read-latched predicate scan between the
		// nearest existing boundaries; no refinement.
		st.Skipped = true
		st.Wait += m.lt.RLock()
		a, b := 0, m.arr.Len()
		if _, p, ok := m.toc.Floor(lo); ok {
			a = p
		}
		if _, p, ok := m.toc.Ceiling(hi); ok {
			b = p
		}
		s := m.arr.ScanSumTail(a, b, lo, hi)
		m.lt.RUnlock()
		return s, st
	}

	start := time.Now()
	posLo := m.crackBoundLocked(lo)
	posHi := m.crackBoundLocked(hi)
	st.Crack += time.Since(start)
	// Downgrade W -> R (§3.3) and aggregate the contiguous tails.
	m.lt.Downgrade()
	s := m.arr.SumTail(posLo, posHi)
	m.lt.RUnlock()
	return s, st
}

// CountWhere evaluates select count(*) where lo <= head < hi via the
// map (boundary positions are permanent once cracked).
func (m *Map) CountWhere(lo, hi int64) (int64, OpStats) {
	var st OpStats
	if lo >= hi {
		return 0, st
	}
	m.ensureInit(&st)
	acquired := true
	if m.opts.OnConflict == Skip {
		acquired = m.lt.TryLock()
	} else {
		st.Wait += m.lt.Lock(lo)
	}
	if !acquired {
		st.Skipped = true
		st.Wait += m.lt.RLock()
		a, b := 0, m.arr.Len()
		if _, p, ok := m.toc.Floor(lo); ok {
			a = p
		}
		if _, p, ok := m.toc.Ceiling(hi); ok {
			b = p
		}
		n := m.arr.ScanCountHead(a, b, lo, hi)
		m.lt.RUnlock()
		return n, st
	}
	start := time.Now()
	posLo := m.crackBoundLocked(lo)
	posHi := m.crackBoundLocked(hi)
	st.Crack += time.Since(start)
	m.lt.Unlock()
	return int64(posHi - posLo), st
}

// Registry tracks cracker maps per (selection, target) column pair,
// mirroring the paper's global structure of existing cracker indexes.
type Registry struct {
	mu   sync.RWMutex
	maps map[[2]string]*Map
}

// NewRegistry returns an empty map registry.
func NewRegistry() *Registry {
	return &Registry{maps: make(map[[2]string]*Map)}
}

// GetOrCreate returns the map for (selCol, tgtCol), creating it over
// the given columns on first use.
func (r *Registry) GetOrCreate(selCol, tgtCol string, head, tail []int64, opts Options) *Map {
	key := [2]string{selCol, tgtCol}
	r.mu.RLock()
	m, ok := r.maps[key]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.maps[key]; ok {
		return m
	}
	m = NewMap(head, tail, opts)
	r.maps[key] = m
	return m
}

// Len returns the number of registered maps.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.maps)
}
