package shard_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"adaptix/internal/amerge"
	"adaptix/internal/hybrid"

	"adaptix/internal/baseline"
	"adaptix/internal/crackindex"
	"adaptix/internal/engine"
	"adaptix/internal/harness"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// TestCrossEngineChecksumAgreement runs the same seeded query stream
// through the scan baseline, the single-column crack engine, and the
// sharded engine at several client counts and asserts that every run
// folds to the identical checksum: concurrency, partitioning, and
// fan-out merging must never change an answer. Run under -race by CI.
func TestCrossEngineChecksumAgreement(t *testing.T) {
	const rows = 1 << 14
	d := workload.NewUniqueUniform(rows, 11)
	streams := []struct {
		name string
		gen  workload.Generator
	}{
		{"uniform-sum", workload.NewUniform(workload.Sum, d.Domain, 0.01, 31)},
		{"uniform-count", workload.NewUniform(workload.Count, d.Domain, 0.001, 37)},
		{"skewed-zipf", workload.NewZipf(workload.Sum, d.Domain, 0.005, 1.0, 41)},
		{"sequential", workload.NewSequential(workload.Count, d.Domain, 0.02)},
	}
	for _, s := range streams {
		qs := workload.Fixed(s.gen, 192)
		for _, clients := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/clients=%d", s.name, clients), func(t *testing.T) {
				engines := []engine.Engine{
					baseline.NewScan(d.Values),
					engine.NewCrack(crackindex.New(d.Values, crackindex.Options{
						Latching: crackindex.LatchPiece,
					})),
					engine.NewSharded(shard.New(d.Values, shard.Options{
						Shards: 4, Seed: 5,
						Index: crackindex.Options{Latching: crackindex.LatchPiece},
					})),
				}
				want := harness.Execute(engines[0], qs, clients).Checksum
				for _, e := range engines[1:] {
					run := harness.Execute(e, qs, clients)
					if run.Checksum != want {
						t.Errorf("%s checksum %d, scan baseline %d", e.Name(), run.Checksum, want)
					}
				}
			})
		}
	}
}

// TestShardedEngineAgainstDuplicates repeats the agreement check on a
// duplicate-heavy dataset, where quantile cuts collapse and shards are
// unbalanced.
func TestShardedEngineAgainstDuplicates(t *testing.T) {
	d := workload.NewDuplicates(1<<13, 256, 13)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.05, 17), 128)
	for _, clients := range []int{1, 4} {
		scan := harness.Execute(baseline.NewScan(d.Values), qs, clients)
		sharded := harness.Execute(engine.NewSharded(shard.New(d.Values, shard.Options{
			Shards: 8,
			Index:  crackindex.Options{Latching: crackindex.LatchPiece},
		})), qs, clients)
		if sharded.Checksum != scan.Checksum {
			t.Errorf("clients=%d: sharded checksum %d, scan %d", clients, sharded.Checksum, scan.Checksum)
		}
	}
}

// TestCustomSourceShards builds the sharded column over adaptive-merge
// and hybrid per-shard indexes through Options.Source +
// engine.SourceFromEngine, and checks answers and the unified write
// surface: custom-source shards take routed writes through the same
// epoch chains as cracked shards, and group-applies rebuild them
// through the source factory.
func TestCustomSourceShards(t *testing.T) {
	ctx := context.Background()
	d := workload.NewUniqueUniform(1<<13, 51)
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.02, 53), 96)
	want := harness.Execute(baseline.NewScan(d.Values), qs, 1).Checksum

	sources := []struct {
		name string
		mk   func(values []int64) engine.AggregateSource
	}{
		{"amerge", func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(amerge.New(values, amerge.Options{}))
		}},
		{"hybrid", func(values []int64) engine.AggregateSource {
			return engine.SourceFromEngine(hybrid.New(values, hybrid.Options{}))
		}},
	}
	for _, src := range sources {
		for _, clients := range []int{1, 4} {
			col := shard.New(d.Values, shard.Options{Shards: 4, Seed: 5, Source: src.mk})
			run := harness.Execute(engine.NewShardedNamed(col, "sharded/"+src.name), qs, clients)
			if run.Checksum != want {
				t.Errorf("%s clients=%d: checksum %d, scan %d", src.name, clients, run.Checksum, want)
			}

			// The write surface: routed writes land in the epoch chains
			// and queries see them immediately.
			before, _, _ := col.Count(ctx, -1<<40, 1<<40)
			for i := int64(0); i < 500; i++ {
				if err := col.Insert(ctx, d.Domain+i); err != nil {
					t.Fatalf("%s: Insert: %v", src.name, err)
				}
			}
			if ok, err := col.DeleteValue(ctx, d.Values[0]); err != nil || !ok {
				t.Fatalf("%s: DeleteValue = (%v, %v), want existing instance deleted", src.name, ok, err)
			}
			if n, _, _ := col.Count(ctx, -1<<40, 1<<40); n != before+500-1 {
				t.Errorf("%s: Count after writes = %d, want %d", src.name, n, before+500-1)
			}

			// Group-apply folds the epochs into a rebuilt source shard.
			applied := false
			for s := col.NumShards() - 1; s >= 0; s-- {
				if _, ok := col.ApplyShard(s); ok {
					applied = true
				}
			}
			if !applied {
				t.Errorf("%s: no shard group-applied despite pending epochs", src.name)
			}
			if n, _, _ := col.Count(ctx, -1<<40, 1<<40); n != before+500-1 {
				t.Errorf("%s: Count after apply = %d, want %d", src.name, n, before+500-1)
			}
			if err := col.Validate(); err != nil {
				t.Errorf("%s: %v", src.name, err)
			}
		}
	}
}

// TestCriticalPathStat checks the fan-out critical-path metric: for a
// query spanning several shards, Critical must be positive and no
// larger than the total work (Wait + Crack) ... it can legitimately
// exceed pure refinement time since it includes scan time, but it must
// never exceed the query's end-to-end response time.
func TestCriticalPathStat(t *testing.T) {
	d := workload.NewUniqueUniform(1<<14, 57)
	col := shard.New(d.Values, shard.Options{
		Shards: 8, Seed: 5,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	e := engine.NewSharded(col)
	start := time.Now()
	// Clip one value off each end: the fringe shards are only partially
	// covered, so the query must fan out to real sub-queries instead of
	// being answered purely from the precomputed aggregates.
	res, err := e.Sum(context.Background(), 1, d.Domain-1)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Critical <= 0 {
		t.Fatalf("Critical = %v for a fan-out query, want > 0", res.Critical)
	}
	if res.Critical > elapsed {
		t.Errorf("Critical %v exceeds end-to-end response %v", res.Critical, elapsed)
	}
}
