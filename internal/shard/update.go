// The concurrent write path and the structural operations of the
// sharded column.
//
// Routed updates: Insert and DeleteValue navigate the current shard
// map snapshot to the owning shard and land in that shard's
// differential file (crackindex updates.go), so queries see them
// immediately; the per-shard aggregates are maintained atomically
// alongside.
//
// Ordering contract between writers and the executor's aggregate fast
// path (executor.go reads rows/total BEFORE minA/maxA):
//
//	writer:  differential update  ->  widen minA/maxA  ->  rows/total
//	reader:  rows/total           ->  minA/maxA
//
// If a reader's rows (or total) load observes a writer's increment,
// the happens-before chain through the atomics guarantees it also
// observes that writer's widened min/max, so the fully-covered fast
// path can never count a value that lies outside the predicate. If the
// load misses the increment, the answer is simply serialized before
// that write.
//
// Structural operations (group-apply merge, split, merge) follow a
// seal-rebuild-publish protocol: seal the part (drain in-flight
// writers; parked writers wait on the part's replaced channel),
// snapshot its logical contents from the immutable base slice plus the
// stable differential file, build replacement part(s) — replaying the
// old index's crack boundaries so refinement knowledge survives — and
// atomically publish a new shard map. Readers never block: a query
// holding the old map keeps using the old parts, which stay intact and
// correct (their differential file is snapshotted, never cleared).
package shard

import (
	"errors"
	"sort"
)

// ErrReadOnlyShard is returned for updates routed to a shard built
// from a custom Options.Source (only cracked shards have a
// differential file).
var ErrReadOnlyShard = errors.New("shard: custom-source shard is read-only")

// Insert adds one logical instance of v to the column, routing it to
// the owning shard's differential file. Safe for concurrent use; an
// insert racing with a structural operation on the owning shard parks
// until the successor shard map is published, then re-routes.
func (c *Column) Insert(v int64) error {
	for {
		m := c.m.Load()
		p := m.shards[m.route(v)]
		if p.ix == nil {
			return ErrReadOnlyShard
		}
		ok, wait := p.tryInsert(v)
		if ok {
			return nil
		}
		<-wait
	}
}

// DeleteValue removes one logical instance of v, reporting whether one
// existed. Deletion is differential: an anti-matter record joins the
// owning shard's pending file and cancels one instance at query time.
func (c *Column) DeleteValue(v int64) (bool, error) {
	for {
		m := c.m.Load()
		p := m.shards[m.route(v)]
		if p.ix == nil {
			return false, ErrReadOnlyShard
		}
		deleted, ok, wait := p.tryDelete(v)
		if ok {
			return deleted, nil
		}
		<-wait
	}
}

// tryInsert applies the insert unless the part is sealed; when sealed
// it returns the channel the caller must wait on before re-routing.
func (p *part) tryInsert(v int64) (bool, <-chan struct{}) {
	p.wmu.RLock()
	if p.sealed {
		ch := p.replaced
		p.wmu.RUnlock()
		return false, ch
	}
	p.ix.Insert(v)
	p.widen(v)
	p.rows.Add(1)
	p.total.Add(v)
	p.wmu.RUnlock()
	return true, nil
}

func (p *part) tryDelete(v int64) (deleted, ok bool, wait <-chan struct{}) {
	p.wmu.RLock()
	if p.sealed {
		ch := p.replaced
		p.wmu.RUnlock()
		return false, false, ch
	}
	// The existence check inside DeleteValue cracks the shard's index
	// as a side effect — one user operation both querying and
	// optimizing (paper §3).
	if p.ix.DeleteValue(v) {
		p.rows.Add(-1)
		p.total.Add(-v)
		deleted = true
	}
	p.wmu.RUnlock()
	return deleted, true, nil
}

// widen extends the min/max envelope to cover v (CAS loops; the
// envelope only ever widens, see the part field docs).
func (p *part) widen(v int64) {
	for {
		cur := p.minA.Load()
		if v >= cur || p.minA.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := p.maxA.Load()
		if v <= cur || p.maxA.CompareAndSwap(cur, v) {
			break
		}
	}
}

// seal blocks new writers and drains in-flight ones. Caller must hold
// c.structMu and must eventually either retire or unseal the part.
func (p *part) seal() {
	p.wmu.Lock()
	p.sealed = true
	p.wmu.Unlock()
}

// unseal reopens a sealed part (a structural operation that found
// nothing to do). The replaced channel is rotated so parked writers
// wake, re-route, and find the same part writable again.
func (p *part) unseal() {
	p.wmu.Lock()
	p.sealed = false
	old := p.replaced
	p.replaced = make(chan struct{})
	p.wmu.Unlock()
	close(old)
}

// retire wakes writers parked on a sealed part after its successor map
// is published. The part itself stays intact for readers still holding
// the old map.
func (p *part) retire() {
	close(p.replaced)
}

// logicalValues materializes the shard's logical contents: the
// immutable base slice with the differential file applied (deletes
// cancel base instances first, then pending inserts). Caller must have
// sealed the part so the differential is stable.
func (p *part) logicalValues() []int64 {
	ins, del := p.ix.PendingSnapshot()
	return p.mergedValues(ins, del)
}

// mergedValues is logicalValues over an already-taken differential
// snapshot (ApplyShard needs the snapshot itself and avoids copying
// it twice).
func (p *part) mergedValues(ins, del []int64) []int64 {
	if len(ins) == 0 && len(del) == 0 {
		return append([]int64(nil), p.base...)
	}
	cancel := make(map[int64]int, len(del))
	for _, v := range del {
		cancel[v]++
	}
	out := make([]int64, 0, len(p.base)+len(ins)-len(del))
	for _, v := range p.base {
		if cancel[v] > 0 {
			cancel[v]--
			continue
		}
		out = append(out, v)
	}
	for _, v := range ins {
		if cancel[v] > 0 {
			cancel[v]--
			continue
		}
		out = append(out, v)
	}
	return out
}

// publish swaps old.shards[i:i+n] for repl under the given bounds and
// makes the new map visible to readers and writers atomically.
func (c *Column) publish(old *shardMap, i, n int, repl []*part, bounds []int64) {
	shards := make([]*part, 0, len(old.shards)-n+len(repl))
	shards = append(shards, old.shards[:i]...)
	shards = append(shards, repl...)
	shards = append(shards, old.shards[i+n:]...)
	c.m.Store(&shardMap{bounds: bounds, shards: shards})
}

// Applied describes one group-apply merge (ApplyShard).
type Applied struct {
	// Shard is the ordinal of the merged shard at the time of the merge.
	Shard int
	// Inserts and Deletes count the differential updates merged into
	// the rebuilt cracker array.
	Inserts, Deletes int
	// Rows is the shard's row count after the merge.
	Rows int
	// Boundaries is the number of crack boundaries replayed into the
	// rebuilt index.
	Boundaries int
}

// ApplyShard group-applies shard i's pending differential updates into
// its cracker array: the shard is rebuilt over its merged logical
// contents, the old index's crack boundaries are replayed into the
// fresh index, and the shard map is republished. Reports false when
// the shard has no pending updates (or is a custom-source shard).
//
// Readers never block: the old part keeps answering for queries that
// hold the previous map. Writers routed to the shard park until the
// rebuilt part is published. Callers that need durability wrap this in
// a system transaction and log a wal.ShardInsert record
// (internal/ingest does both).
func (c *Column) ApplyShard(i int) (Applied, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	m := c.m.Load()
	if i < 0 || i >= len(m.shards) || m.shards[i].ix == nil {
		return Applied{}, false
	}
	p := m.shards[i]
	if nIns, nDel := p.ix.PendingUpdates(); nIns == 0 && nDel == 0 {
		return Applied{}, false
	}
	p.seal()
	ins, del := p.ix.PendingSnapshot()
	vals := p.mergedValues(ins, del)
	warm := p.ix.Boundaries()
	q := c.newPart(p.loVal, p.hiVal, vals, warm)
	c.publish(m, i, 1, []*part{q}, m.bounds)
	p.retire()
	return Applied{Shard: i, Inserts: len(ins), Deletes: len(del), Rows: len(vals), Boundaries: len(warm)}, true
}

// Split describes one shard split (SplitShard).
type Split struct {
	// Shard is the ordinal of the split shard at the time of the split.
	Shard int
	// Cut is the new shard-map boundary: the left part keeps values
	// < Cut, the right part takes values >= Cut.
	Cut int64
	// LeftRows and RightRows are the resulting row counts.
	LeftRows, RightRows int
}

// SplitShard splits shard i at the median of its logical contents,
// publishing a shard map with one more shard. Pending differential
// updates are group-applied as part of the rebuild, and the old
// index's crack boundaries are replayed into whichever side owns them.
// Reports false when the shard cannot be split (custom source, or
// fewer than two distinct values).
func (c *Column) SplitShard(i int) (Split, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	m := c.m.Load()
	if i < 0 || i >= len(m.shards) || m.shards[i].ix == nil {
		return Split{}, false
	}
	p := m.shards[i]
	// Cheap pre-check: a shard whose value envelope has collapsed to a
	// single value (a storm of one repeated key) can never be split.
	// Rejecting here keeps the rebalancer from sealing the hot shard
	// and sorting its full contents on every maintenance pass.
	if p.minA.Load() >= p.maxA.Load() {
		return Split{}, false
	}
	p.seal()
	vals := p.logicalValues()
	cut, ok := chooseCut(vals)
	if !ok {
		// All remaining values are equal but the widen-only envelope
		// was stale (deletes removed the extrema). The part is sealed
		// — contents are stable — so tightening the envelope to the
		// actual min/max is safe and lets the pre-check above reject
		// the next attempt in O(1).
		if len(vals) > 0 {
			mn, mx := vals[0], vals[0]
			for _, v := range vals {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			p.minA.Store(mn)
			p.maxA.Store(mx)
		}
		p.unseal()
		return Split{}, false
	}
	left := make([]int64, 0, len(vals)/2)
	right := make([]int64, 0, len(vals)/2)
	for _, v := range vals {
		if v < cut {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	warm := p.ix.Boundaries()
	lp := c.newPart(p.loVal, cut, left, warm)
	rp := c.newPart(cut, p.hiVal, right, warm)
	bounds := make([]int64, 0, len(m.bounds)+1)
	bounds = append(bounds, m.bounds[:i]...)
	bounds = append(bounds, cut)
	bounds = append(bounds, m.bounds[i:]...)
	c.publish(m, i, 1, []*part{lp, rp}, bounds)
	p.retire()
	return Split{Shard: i, Cut: cut, LeftRows: len(left), RightRows: len(right)}, true
}

// chooseCut picks the median value of vals as a split cut, adjusted so
// both sides are non-empty. Reports false when vals holds fewer than
// two distinct values. O(n log n); splits are rare structural events.
func chooseCut(vals []int64) (int64, bool) {
	if len(vals) < 2 {
		return 0, false
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	cut := s[len(s)/2]
	if cut > s[0] {
		return cut, true
	}
	// Degenerate lower half (duplicates of the minimum): cut at the
	// first larger value so the left side keeps the minimum run.
	for _, v := range s[len(s)/2:] {
		if v > cut {
			return v, true
		}
	}
	return 0, false
}

// Merged describes one merge of two adjacent shards (MergeShards).
type Merged struct {
	// Shard is the ordinal of the left shard at the time of the merge.
	Shard int
	// RemovedBound is the shard-map cut value the merge removed.
	RemovedBound int64
	// Rows is the merged shard's row count.
	Rows int
}

// MergeShards merges adjacent shards i and i+1 into one, publishing a
// shard map with one fewer shard. The removed cut value and both old
// indexes' crack boundaries are replayed into the merged index, so no
// refinement knowledge is lost. Reports false when either shard is a
// custom-source shard or i is out of range.
func (c *Column) MergeShards(i int) (Merged, bool) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	m := c.m.Load()
	if i < 0 || i+1 >= len(m.shards) || m.shards[i].ix == nil || m.shards[i+1].ix == nil {
		return Merged{}, false
	}
	l, r := m.shards[i], m.shards[i+1]
	l.seal()
	r.seal()
	vals := append(l.logicalValues(), r.logicalValues()...)
	warm := append(l.ix.Boundaries(), r.ix.Boundaries()...)
	warm = append(warm, m.bounds[i]) // keep the removed cut as a crack boundary
	q := c.newPart(l.loVal, r.hiVal, vals, warm)
	bounds := make([]int64, 0, len(m.bounds)-1)
	bounds = append(bounds, m.bounds[:i]...)
	bounds = append(bounds, m.bounds[i+1:]...)
	c.publish(m, i, 2, []*part{q}, bounds)
	l.retire()
	r.retire()
	return Merged{Shard: i, RemovedBound: m.bounds[i], Rows: len(vals)}, true
}
