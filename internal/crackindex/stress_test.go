package crackindex

import (
	"sync"
	"testing"

	"adaptix/internal/cracker"
	"adaptix/internal/latch"
	"adaptix/internal/workload"
)

// TestValidateAfterSequentialWorkload checks every structural
// invariant after a long single-threaded workload.
func TestValidateAfterSequentialWorkload(t *testing.T) {
	d := workload.NewDuplicates(30000, 5000, 3)
	for _, opts := range []Options{
		{Latching: LatchNone},
		{Latching: LatchPiece},
		{Latching: LatchPiece, GroupCracking: true},
		{Latching: LatchPiece, Stochastic: true, StochasticMinPiece: 64},
		{Latching: LatchColumn, Layout: cracker.LayoutPairs},
	} {
		ix := New(d.Values, opts)
		qs := workload.Fixed(workload.NewUniform(workload.Sum, 5000, 0.01, 5), 200)
		for _, q := range qs {
			if got, _ := ix.Sum(q.Lo, q.Hi); got != d.TrueSum(q.Lo, q.Hi) {
				t.Fatalf("%+v: sum mismatch", opts)
			}
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
	}
}

// TestValidateUninitialized: Validate on a never-queried index is a
// no-op.
func TestValidateUninitialized(t *testing.T) {
	ix := New([]int64{3, 1, 2}, Options{})
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStressAllOperationsConcurrent hammers one index from many
// goroutines with every operation type — counts, sums, rowID selects,
// inserts, deletes — then validates all structural invariants and the
// final logical contents. Run with -race.
func TestStressAllOperationsConcurrent(t *testing.T) {
	d := workload.NewUniqueUniform(60000, 9)
	for _, opts := range []Options{
		{Latching: LatchPiece},
		{Latching: LatchPiece, GroupCracking: true, ParallelBounds: true},
		{Latching: LatchPiece, OnConflict: Skip, Stochastic: true},
	} {
		opts := opts
		ix := New(d.Values, opts)
		const clients = 8
		var wg sync.WaitGroup
		errs := make(chan string, clients)
		// Updates are confined to [50000, 60000) so query clients can
		// assert exact results below 50000 throughout the run.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 300; i++ {
				ix.Insert(50000 + i)
				if i%3 == 0 {
					ix.DeleteValue(50000 + i)
				}
			}
		}()
		for c := 0; c < clients-1; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				gen := workload.NewUniform(workload.Sum, 50000, 0.01, uint64(c*11+3))
				for i := 0; i < 60; i++ {
					q := gen.Next()
					switch i % 3 {
					case 0:
						if got, _ := ix.Count(q.Lo, q.Hi); got != q.Hi-q.Lo {
							errs <- "count mismatch"
							return
						}
					case 1:
						want := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
						if got, _ := ix.Sum(q.Lo, q.Hi); got != want {
							errs <- "sum mismatch"
							return
						}
					case 2:
						ids, _ := ix.SelectRowIDs(q.Lo, q.Hi)
						if int64(len(ids)) != q.Hi-q.Lo {
							errs <- "select size mismatch"
							return
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("%+v: %s", opts, e)
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		// Final contents: 60000 base + 300 inserts - 100 deletes.
		if n, _ := ix.Count(0, 70000); n != 60000+300-100 {
			t.Fatalf("%+v: final count %d", opts, n)
		}
	}
}

// TestStochasticCrackingBoundsSequentialWorst: under a strictly
// sequential sweep, plain cracking leaves one huge uncracked piece
// ahead of the sweep; stochastic cracking keeps cutting it, so the
// largest remaining piece must be much smaller.
func TestStochasticCrackingBoundsSequentialWorst(t *testing.T) {
	d := workload.NewUniqueUniform(100000, 17)
	largestPiece := func(ix *Index) int {
		max := 0
		ix.mu.Lock()
		for p := ix.head; p != nil; p = p.next {
			if p.hi-p.lo > max {
				max = p.hi - p.lo
			}
		}
		ix.mu.Unlock()
		return max
	}
	run := func(opts Options) int {
		ix := New(d.Values, opts)
		gen := workload.NewSequential(workload.Count, d.Domain, 0.001)
		for i := 0; i < 50; i++ { // sweep covers only 5% of the domain
			q := gen.Next()
			if got, _ := ix.Count(q.Lo, q.Hi); got != q.Hi-q.Lo {
				t.Fatal("count mismatch")
			}
		}
		if err := ix.Validate(); err != nil {
			t.Fatal(err)
		}
		return largestPiece(ix)
	}
	plain := run(Options{Latching: LatchNone})
	stoch := run(Options{Latching: LatchNone, Stochastic: true, StochasticMinPiece: 256})
	if stoch*2 > plain {
		t.Fatalf("stochastic largest piece %d not well below plain %d", stoch, plain)
	}
}

// TestStochasticStatsCounted ensures the auxiliary pivots are counted.
func TestStochasticStatsCounted(t *testing.T) {
	d := workload.NewUniqueUniform(50000, 19)
	ix := New(d.Values, Options{Latching: LatchPiece, Stochastic: true, StochasticMinPiece: 128})
	qs := workload.Fixed(workload.NewUniform(workload.Count, d.Domain, 0.01, 7), 40)
	for _, q := range qs {
		ix.Count(q.Lo, q.Hi)
	}
	if ix.Stats().StochasticCracks.Load() == 0 {
		t.Fatal("no stochastic cracks recorded")
	}
}

// TestWaiterQueueSchedulingUnderLoad exercises the middle-first grant
// path heavily: all clients crack inside one piece so the sorted
// waiter queue and redetermination machinery are under constant churn.
func TestWaiterQueueSchedulingUnderLoad(t *testing.T) {
	d := workload.NewUniqueUniform(80000, 23)
	for _, pol := range []latch.Policy{latch.MiddleFirst, latch.FIFO} {
		ix := New(d.Values, Options{Latching: LatchPiece, Scheduling: pol})
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := workload.NewRNG(uint64(c) + 1)
				for i := 0; i < 150; i++ {
					lo := r.Int64n(79000)
					hi := lo + 1 + r.Int64n(1000)
					if got, _ := ix.Count(lo, hi); got != hi-lo {
						panic("count mismatch")
					}
				}
			}(c)
		}
		wg.Wait()
		if err := ix.Validate(); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

// TestLifecycleStates walks an index through the Figure 5 states:
// nonexistent -> adaptive (fully populated, partially optimized) ->
// optimized (all pieces below the bounded-work threshold).
func TestLifecycleStates(t *testing.T) {
	d := workload.NewUniqueUniform(4096, 31)
	ix := New(d.Values, Options{Latching: LatchNone})
	if s := ix.Lifecycle(); s != StateNonexistent {
		t.Fatalf("fresh index state = %v", s)
	}
	ix.Count(100, 200)
	if s := ix.Lifecycle(); s != StateAdaptive {
		t.Fatalf("state after first query = %v", s)
	}
	// Crack densely until every piece is below the threshold.
	for v := int64(0); v < 4096; v += OptimizedPieceSize / 2 {
		ix.Count(v, v+1)
	}
	if s := ix.Lifecycle(); s != StateOptimized {
		t.Fatalf("state after dense cracking = %v", s)
	}
	if StateNonexistent.String() == "" || StateAdaptive.String() == "" || StateOptimized.String() == "" {
		t.Fatal("empty state strings")
	}
}

// TestPeriodicWorkloadReconvergence: when the focus returns to an
// already-optimized window, queries are immediately cheap (the index
// retains the earlier refinement).
func TestPeriodicWorkloadReconvergence(t *testing.T) {
	d := workload.NewUniqueUniform(200000, 37)
	ix := New(d.Values, Options{Latching: LatchPiece})
	gen := workload.NewPeriodic(workload.Count, d.Domain, 0.005, 2, 50, 9)
	var burst1, burst3 int64 // crack time of window 0's first and second visit
	for i := 0; i < 200; i++ {
		q := gen.Next()
		_, st := ix.Count(q.Lo, q.Hi)
		switch {
		case i < 50:
			burst1 += int64(st.Crack)
		case i >= 100 && i < 150:
			burst3 += int64(st.Crack)
		}
	}
	if burst3*2 >= burst1 {
		t.Fatalf("no retained refinement: first visit %dns, revisit %dns", burst1, burst3)
	}
}

// TestPhysicalAccessors covers the visualization accessors.
func TestPhysicalAccessors(t *testing.T) {
	d := workload.NewUniqueUniform(1000, 29)
	ix := New(d.Values, Options{Latching: LatchNone})
	if ix.PhysicalValues() != nil || ix.BoundaryPositions() != nil {
		if len(ix.PhysicalValues()) != 0 || len(ix.BoundaryPositions()) != 0 {
			t.Fatal("accessors non-empty before init")
		}
	}
	ix.Count(200, 700)
	vals := ix.PhysicalValues()
	if len(vals) != 1000 {
		t.Fatalf("PhysicalValues len %d", len(vals))
	}
	bps := ix.BoundaryPositions()
	if len(bps) != 2 || bps[0].Value != 200 || bps[1].Value != 700 {
		t.Fatalf("BoundaryPositions = %v", bps)
	}
	if bps[0].Pos != 200 || bps[1].Pos != 700 {
		t.Fatalf("positions = %v", bps)
	}
	for i := 0; i < bps[0].Pos; i++ {
		if vals[i] >= 200 {
			t.Fatal("physical order violates boundary")
		}
	}
}
