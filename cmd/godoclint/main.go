// Godoclint enforces the repo's documentation contract: every exported
// identifier of every library package carries a doc comment, so the
// public surface (and the internal subsystems it is built from) stays
// fully documented as it evolves. CI runs it over the module root:
//
//	go run ./cmd/godoclint .
//
// Rules, matching standard godoc conventions:
//
//   - exported functions, methods, and type declarations need a doc
//     comment;
//   - an exported const/var group is satisfied by a group doc comment
//     OR a per-spec comment on each exported name;
//   - test files, main packages (cmd/, examples/), and generated files
//     are skipped.
//
// Exit status 1 lists every violation as file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %w", path, perr)
		}
		if f.Name.Name == "main" {
			return nil
		}
		violations = append(violations, checkFile(fset, f)...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "godoclint: %d undocumented exported identifiers\n", len(violations))
		os.Exit(1)
	}
}

// checkFile returns one violation line per undocumented exported
// identifier in f.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s has no doc comment", p.Filename, p.Line, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), funcName(d))
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					if d.Doc == nil && ts.Doc == nil {
						report(ts.Pos(), ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				// A group doc covers every member; otherwise each
				// exported spec needs its own comment (doc above or
				// trailing on the line).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether d is a plain function or a method
// on an exported type (methods on unexported types — sort adapters and
// the like — are not part of the documented surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// funcName renders a method as Recv.Name for readable reports.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		if id, ok := idx.X.(*ast.Ident); ok {
			return id.Name + "." + d.Name.Name
		}
	}
	return d.Name.Name
}
