// The zero-allocation gate of the query hot path: warm Count and Sum
// must perform exactly 0 heap allocations per query, for every method,
// including while per-shard epoch chains carry unmerged differential
// writes. CI runs this test by name (see .github/workflows/ci.yml), so
// any allocation creeping back into the kernels, the piece walks, the
// fan-out executor, or the observability recording fails the build.
package adaptix_test

import (
	"context"
	"testing"

	"adaptix"
)

// allocsWarmMin reports the minimum AllocsPerRun over a few attempts.
// AllocsPerRun counts process-wide mallocs, so a GC finalizer or a
// pool repopulation during one attempt can charge a stray allocation
// to an innocent run; the warm path's own behavior is the minimum a
// clean window observes.
func allocsWarmMin(runs int, f func()) float64 {
	best := -1.0
	for attempt := 0; attempt < 5; attempt++ {
		a := testing.AllocsPerRun(runs, f)
		if best < 0 || a < best {
			best = a
		}
		if best == 0 {
			break
		}
	}
	return best
}

func TestQueryPathZeroAlloc(t *testing.T) {
	const rows = 8192
	d := adaptix.NewUniqueDataset(rows, 11)
	lo, hi := int64(1000), int64(1260)
	ctx := context.Background()

	for _, m := range []adaptix.Method{
		adaptix.Crack, adaptix.AMerge, adaptix.Hybrid, adaptix.Sort, adaptix.Scan,
	} {
		t.Run(m.String(), func(t *testing.T) {
			ix, err := adaptix.New(d.Values, adaptix.WithMethod(m), adaptix.WithShards(1))
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()

			warm := func() {
				for i := 0; i < 4; i++ {
					if _, err := ix.Count(ctx, lo, hi); err != nil {
						t.Fatal(err)
					}
					if _, err := ix.Sum(ctx, lo, hi); err != nil {
						t.Fatal(err)
					}
				}
			}
			check := func(phase string) {
				t.Helper()
				if a := allocsWarmMin(100, func() { ix.Count(ctx, lo, hi) }); a != 0 {
					t.Errorf("%s: warm Count allocates %.2f per query, want 0", phase, a)
				}
				if a := allocsWarmMin(100, func() { ix.Sum(ctx, lo, hi) }); a != 0 {
					t.Errorf("%s: warm Sum allocates %.2f per query, want 0", phase, a)
				}
			}

			warm()
			check("base")

			// Activate the differential machinery: a handful of routed
			// writes inside the predicate leave the epoch chain non-empty
			// (few enough that no group-apply or rebalance triggers), and
			// the query path must fold the adjustments in without
			// allocating.
			for i := int64(0); i < 8; i++ {
				if err := ix.Insert(ctx, 1100+i); err != nil {
					t.Fatal(err)
				}
			}
			warm()
			check("epoch-chain")
		})
	}
}

// TestQueryPathZeroAllocMultiShard pins the sharded routing path: with
// several shards, a narrow warm query routes to exactly one of them
// (the scratch-pooled single-target path) and must stay at 0
// allocations too.
func TestQueryPathZeroAllocMultiShard(t *testing.T) {
	const rows = 1 << 14
	d := adaptix.NewUniqueDataset(rows, 13)
	lo, hi := int64(300), int64(560)
	ctx := context.Background()
	ix, err := adaptix.New(d.Values, adaptix.WithMethod(adaptix.Crack), adaptix.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i := 0; i < 4; i++ {
		if _, err := ix.Sum(ctx, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	if a := allocsWarmMin(100, func() { ix.Sum(ctx, lo, hi) }); a != 0 {
		t.Errorf("warm single-target Sum across 4 shards allocates %.2f per query, want 0", a)
	}
}
