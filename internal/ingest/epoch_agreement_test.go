package ingest_test

import (
	"fmt"
	"testing"

	"adaptix/internal/baseline"
	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// TestWriteDuringMergeAgreement is the epoch write path's agreement
// test: the deterministic concurrent read/write mix runs through the
// mutable scan baseline, the single cracked column, and the sharded
// column with epoch chains — while a dedicated goroutine forces
// group-apply merges on every shard continuously, so queries and
// writes constantly race seal/rebuild/publish cycles mid-query. The
// quiesced final checksums must be identical at 1, 4, and 16 clients.
// Run under -race by CI.
func TestWriteDuringMergeAgreement(t *testing.T) {
	const rows = 1 << 13
	opsPerClient := 1500
	if testing.Short() {
		opsPerClient = 400
	}
	d := workload.NewUniqueUniform(rows, 31)
	for _, clients := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("clients=%d", clients), func(t *testing.T) {
			scan := scanAdapter{baseline.NewMutable(d.Values)}
			crack := crackAdapter{crackindex.New(d.Values, crackindex.Options{
				Latching: crackindex.LatchPiece,
			})}
			col := shard.New(d.Values, shard.Options{
				Shards: 4, Seed: 9,
				Index: crackindex.Options{Latching: crackindex.LatchPiece},
			})
			// High threshold: the merge-forcer below, not the
			// coordinator's cadence, drives the group applies.
			g := ingest.New(col, ingest.Options{
				ApplyThreshold: 1 << 20, MinShardRows: 512,
			})

			driveMixed(scan, rows, clients, opsPerClient, 0.5)
			driveMixed(crack, rows, clients, opsPerClient, 0.5)

			// The merge forcer runs on the test goroutine until the mix
			// is drained (one final pass included), so the merges
			// genuinely interleave with queries and writes even on a
			// single-core scheduler.
			mixDone := make(chan struct{})
			go func() {
				defer close(mixDone)
				driveMixed(ingestAdapter{g}, rows, clients, opsPerClient, 0.5)
			}()
			merges := 0
			for running := true; running; {
				select {
				case <-mixDone:
					running = false
				default:
				}
				for s := 0; s < col.NumShards(); s++ {
					if _, ok := col.ApplyShard(s); ok {
						merges++
					}
				}
			}
			if merges == 0 {
				t.Fatal("the merge forcer never found pending epochs: the race never happened")
			}

			want := finalChecksum(scan, rows)
			if got := finalChecksum(crack, rows); got != want {
				t.Errorf("crack final checksum %d, scan baseline %d", got, want)
			}
			if got := finalChecksum(ingestAdapter{g}, rows); got != want {
				t.Errorf("sharded+epochs final checksum %d, scan baseline %d", got, want)
			}
			if err := col.Validate(); err != nil {
				t.Error(err)
			}
		})
	}
}
